// Streaming-serving bench (docs/OPERATIONS.md "Streaming mode"):
//   1. sustained mutation load — a single StreamCoordinator absorbing
//      upsert/match/remove traffic over the AB overlay, with per-op
//      latency recorded into obs::Histogram and reported as
//      p50/p95/p99 (microseconds) plus ops/sec;
//   2. staleness churn — a registered job dependency is re-upserted
//      repeatedly; every hit must flag the job stale (lazy recompute
//      is the service layer's job, the bench pins the detection);
//   3. SIGKILL-and-resume durability — a forked writer process streams
//      upserts and reports each durable ack through a pipe; the parent
//      SIGKILLs it mid-stream, reopens the same directory, and every
//      acked record must still be matchable. Zero lost acked upserts
//      is a hard pass/fail.
// Prints a table and writes BENCH_stream.json (path override:
// CERTA_BENCH_STREAM_JSON). Op count: --ops N or
// CERTA_BENCH_STREAM_OPS (default 2000).

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "data/benchmarks.h"
#include "data/dataset.h"
#include "explain/json_export.h"
#include "obs/metrics.h"
#include "service/stream_coordinator.h"
#include "util/json_writer.h"

namespace {

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;
using certa::service::StreamCoordinator;

double MicrosSince(Clock::time_point start) {
  return std::chrono::duration<double, std::micro>(Clock::now() - start)
      .count();
}

fs::path FreshDir(const std::string& tag) {
  fs::path dir = fs::temp_directory_path() /
                 ("certa_bench_stream_" + tag + "_" +
                  std::to_string(::getpid()));
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

/// AB-arity record whose first value is a unique probe token.
certa::data::Record TokenRecord(int id, int arity,
                                const std::string& token) {
  certa::data::Record record;
  record.id = id;
  record.values.assign(static_cast<size_t>(arity), "streampad");
  record.values[0] = token;
  return record;
}

struct LatencyLeg {
  long long ops = 0;
  double wall_ms = 0.0;
  double ops_per_sec = 0.0;
  double upsert_p50 = 0.0, upsert_p95 = 0.0, upsert_p99 = 0.0;
  double match_p50 = 0.0, match_p95 = 0.0, match_p99 = 0.0;
  double remove_p50 = 0.0, remove_p95 = 0.0, remove_p99 = 0.0;
  long long checkpoints = 0;
  bool ok = false;
};

LatencyLeg RunLatencyLeg(long long ops, int arity) {
  LatencyLeg leg;
  leg.ops = ops;
  const fs::path root = FreshDir("latency");
  certa::obs::MetricsRegistry metrics;
  StreamCoordinator coordinator;
  StreamCoordinator::Options options;
  options.dir = (root / "stream").string();
  options.metrics = &metrics;
  std::string error;
  if (!coordinator.Open(options, &error)) {
    std::fprintf(stderr, "open: %s\n", error.c_str());
    return leg;
  }

  certa::obs::Histogram* upsert_us = metrics.histogram("bench.upsert_us");
  certa::obs::Histogram* match_us = metrics.histogram("bench.match_us");
  certa::obs::Histogram* remove_us = metrics.histogram("bench.remove_us");

  // Mix: mostly upserts (the sustained-write story), a match every 4th
  // op (reads absorb + rank), a remove every 16th.
  StreamCoordinator::Ack ack;
  std::vector<StreamCoordinator::Invalidation> invalidated;
  std::vector<StreamCoordinator::MatchCandidate> candidates;
  bool ok = true;
  const Clock::time_point wall0 = Clock::now();
  for (long long i = 0; i < ops && ok; ++i) {
    const int id = 950000 + static_cast<int>(i % 512);
    const std::string token = "benchtok" + std::to_string(i % 512);
    if (i % 16 == 15) {
      const Clock::time_point t0 = Clock::now();
      ok = coordinator.Remove("AB", "", 0, id, &ack, &invalidated, &error) ==
           StreamCoordinator::OpStatus::kOk;
      remove_us->Record(MicrosSince(t0));
    } else if (i % 4 == 3) {
      std::vector<std::string> probe(static_cast<size_t>(arity), "NaN");
      probe[0] = token;
      const Clock::time_point t0 = Clock::now();
      ok = coordinator.Match("AB", "", 0, probe, 5, &candidates, &error) ==
           StreamCoordinator::OpStatus::kOk;
      match_us->Record(MicrosSince(t0));
    } else {
      const Clock::time_point t0 = Clock::now();
      ok = coordinator.Upsert("AB", "", 0, TokenRecord(id, arity, token),
                              &ack, &invalidated, &error) ==
           StreamCoordinator::OpStatus::kOk;
      upsert_us->Record(MicrosSince(t0));
    }
  }
  leg.wall_ms = MicrosSince(wall0) / 1000.0;
  if (!ok) std::fprintf(stderr, "mutation failed: %s\n", error.c_str());
  leg.ok = ok;
  leg.ops_per_sec =
      leg.wall_ms > 0.0 ? 1000.0 * static_cast<double>(ops) / leg.wall_ms
                        : 0.0;
  leg.upsert_p50 = upsert_us->Quantile(0.50);
  leg.upsert_p95 = upsert_us->Quantile(0.95);
  leg.upsert_p99 = upsert_us->Quantile(0.99);
  leg.match_p50 = match_us->Quantile(0.50);
  leg.match_p95 = match_us->Quantile(0.95);
  leg.match_p99 = match_us->Quantile(0.99);
  leg.remove_p50 = remove_us->Quantile(0.50);
  leg.remove_p95 = remove_us->Quantile(0.95);
  leg.remove_p99 = remove_us->Quantile(0.99);
  leg.checkpoints = coordinator.stats().checkpoints;
  coordinator.Close();
  fs::remove_all(root);
  return leg;
}

struct StalenessLeg {
  int rounds = 0;
  int flagged = 0;
  bool ok = false;
};

/// Register a job's deps via the runner hook, then hammer one of the
/// dep records: every upsert must flag the job stale again after the
/// mark is cleared by re-registration.
StalenessLeg RunStalenessLeg(const certa::data::Dataset& base, int arity) {
  StalenessLeg leg;
  leg.rounds = 50;
  const fs::path root = FreshDir("stale");
  StreamCoordinator coordinator;
  StreamCoordinator::Options options;
  options.dir = (root / "stream").string();
  std::string error;
  if (!coordinator.Open(options, &error)) return leg;

  certa::api::ExplainRequest request;
  request.id = "bench-job";
  request.dataset = "AB";
  request.pair_index = 0;
  const int left_id = base.left.record(base.test[0].left_index).id;

  StreamCoordinator::Ack ack;
  std::vector<StreamCoordinator::Invalidation> invalidated;
  bool ok = true;
  for (int round = 0; round < leg.rounds && ok; ++round) {
    // (Re-)register the deps — clears the stale mark, like the
    // recompute's dataset hook does.
    certa::data::Dataset snapshot;
    ok = coordinator.ProvideDataset(request, &snapshot, &error);
    if (!ok) break;
    ok = coordinator.Upsert(
             "AB", "", 0,
             TokenRecord(left_id, arity, "drift" + std::to_string(round)),
             &ack, &invalidated, &error) == StreamCoordinator::OpStatus::kOk;
    if (coordinator.IsStale("bench-job")) ++leg.flagged;
  }
  leg.ok = ok && leg.flagged == leg.rounds;
  coordinator.Close();
  fs::remove_all(root);
  return leg;
}

struct DurabilityLeg {
  int acked = 0;
  int recovered = 0;
  int lost = 0;
  double reopen_ms = 0.0;
  bool killed_mid_stream = false;
  bool ok = false;
};

/// Child process streams upserts and reports each durable ack id over
/// a pipe; the parent SIGKILLs it mid-stream, reopens the directory,
/// and re-finds every acked record. WAL fsync-before-ack makes zero
/// loss a hard guarantee, not a race.
DurabilityLeg RunDurabilityLeg(int arity) {
  DurabilityLeg leg;
  const fs::path root = FreshDir("durability");
  const std::string dir = (root / "stream").string();
  int fds[2];
  if (pipe(fds) != 0) return leg;

  const pid_t child = fork();
  if (child == 0) {
    close(fds[0]);
    StreamCoordinator coordinator;
    StreamCoordinator::Options options;
    options.dir = dir;
    std::string error;
    if (!coordinator.Open(options, &error)) _exit(2);
    StreamCoordinator::Ack ack;
    std::vector<StreamCoordinator::Invalidation> invalidated;
    for (int i = 0; i < 100000; ++i) {
      if (coordinator.Upsert("AB", "", 0,
                             TokenRecord(960000 + i, arity,
                                         "killtok" + std::to_string(i)),
                             &ack, &invalidated,
                             &error) != StreamCoordinator::OpStatus::kOk) {
        _exit(3);
      }
      // The ack is durable (WAL fsync'd) the moment Upsert returned.
      const int32_t acked_id = 960000 + i;
      if (write(fds[1], &acked_id, sizeof(acked_id)) !=
          static_cast<ssize_t>(sizeof(acked_id))) {
        _exit(4);
      }
    }
    _exit(0);  // never reached at sane fsync latency
  }
  close(fds[1]);

  // Let a few dozen acks land, then kill without warning.
  std::vector<int32_t> acked_ids;
  int32_t id = 0;
  while (acked_ids.size() < 48 &&
         read(fds[0], &id, sizeof(id)) == static_cast<ssize_t>(sizeof(id))) {
    acked_ids.push_back(id);
  }
  kill(child, SIGKILL);
  int status = 0;
  waitpid(child, &status, 0);
  leg.killed_mid_stream = WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL;
  // Drain acks that raced the kill — they were durable too.
  while (read(fds[0], &id, sizeof(id)) == static_cast<ssize_t>(sizeof(id))) {
    acked_ids.push_back(id);
  }
  close(fds[0]);
  leg.acked = static_cast<int>(acked_ids.size());

  // Reopen the directory like a restarted server and probe every
  // acked record.
  const Clock::time_point t0 = Clock::now();
  StreamCoordinator coordinator;
  StreamCoordinator::Options options;
  options.dir = dir;
  std::string error;
  if (!coordinator.Open(options, &error)) {
    std::fprintf(stderr, "reopen: %s\n", error.c_str());
    return leg;
  }
  leg.reopen_ms = MicrosSince(t0) / 1000.0;
  for (const int32_t acked_id : acked_ids) {
    std::vector<std::string> probe(static_cast<size_t>(arity), "NaN");
    probe[0] = "killtok" + std::to_string(acked_id - 960000);
    std::vector<StreamCoordinator::MatchCandidate> candidates;
    if (coordinator.Match("AB", "", 0, probe, 3, &candidates, &error) !=
        StreamCoordinator::OpStatus::kOk) {
      break;
    }
    bool found = false;
    for (const auto& candidate : candidates) {
      if (candidate.id == acked_id) found = true;
    }
    if (found) ++leg.recovered;
  }
  leg.lost = leg.acked - leg.recovered;
  leg.ok = leg.killed_mid_stream && leg.acked > 0 && leg.lost == 0;
  coordinator.Close();
  fs::remove_all(root);
  return leg;
}

}  // namespace

int main(int argc, char** argv) {
  long long ops = 2000;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--ops") == 0) ops = std::atoll(argv[++i]);
  }
  if (const char* env = std::getenv("CERTA_BENCH_STREAM_OPS")) {
    ops = std::atoll(env);
  }
  const certa::data::Dataset base = certa::data::MakeBenchmark("AB");
  const int arity = base.left.schema().size();

  std::printf("streaming ingestion (AB overlay, WAL fsync per op)\n\n");
  const LatencyLeg latency = RunLatencyLeg(ops, arity);
  std::printf("  %lld ops in %.1f ms (%.0f ops/sec), %lld checkpoints\n",
              latency.ops, latency.wall_ms, latency.ops_per_sec,
              latency.checkpoints);
  std::printf("  %-8s %10s %10s %10s\n", "op", "p50 us", "p95 us", "p99 us");
  std::printf("  %-8s %10.1f %10.1f %10.1f\n", "upsert", latency.upsert_p50,
              latency.upsert_p95, latency.upsert_p99);
  std::printf("  %-8s %10.1f %10.1f %10.1f\n", "match", latency.match_p50,
              latency.match_p95, latency.match_p99);
  std::printf("  %-8s %10.1f %10.1f %10.1f\n", "remove", latency.remove_p50,
              latency.remove_p95, latency.remove_p99);

  const StalenessLeg stale = RunStalenessLeg(base, arity);
  std::printf("\nstaleness detection: %d/%d dep hits flagged\n",
              stale.flagged, stale.rounds);

  const DurabilityLeg durability = RunDurabilityLeg(arity);
  std::printf("\nSIGKILL-and-resume: %d acked, %d recovered, %d lost "
              "(reopen %.1f ms)\n",
              durability.acked, durability.recovered, durability.lost,
              durability.reopen_ms);

  certa::JsonWriter json;
  json.BeginObject();
  json.Key("bench");
  json.String("stream");
  json.Key("latency");
  json.BeginObject();
  json.Key("ops");
  json.Int(latency.ops);
  json.Key("wall_ms");
  json.Number(latency.wall_ms);
  json.Key("ops_per_sec");
  json.Number(latency.ops_per_sec);
  json.Key("checkpoints");
  json.Int(latency.checkpoints);
  json.Key("upsert_us");
  json.BeginObject();
  json.Key("p50");
  json.Number(latency.upsert_p50);
  json.Key("p95");
  json.Number(latency.upsert_p95);
  json.Key("p99");
  json.Number(latency.upsert_p99);
  json.EndObject();
  json.Key("match_us");
  json.BeginObject();
  json.Key("p50");
  json.Number(latency.match_p50);
  json.Key("p95");
  json.Number(latency.match_p95);
  json.Key("p99");
  json.Number(latency.match_p99);
  json.EndObject();
  json.Key("remove_us");
  json.BeginObject();
  json.Key("p50");
  json.Number(latency.remove_p50);
  json.Key("p95");
  json.Number(latency.remove_p95);
  json.Key("p99");
  json.Number(latency.remove_p99);
  json.EndObject();
  json.EndObject();
  json.Key("staleness");
  json.BeginObject();
  json.Key("rounds");
  json.Int(stale.rounds);
  json.Key("flagged");
  json.Int(stale.flagged);
  json.EndObject();
  json.Key("durability");
  json.BeginObject();
  json.Key("acked");
  json.Int(durability.acked);
  json.Key("recovered");
  json.Int(durability.recovered);
  json.Key("lost");
  json.Int(durability.lost);
  json.Key("reopen_ms");
  json.Number(durability.reopen_ms);
  json.Key("killed_mid_stream");
  json.Bool(durability.killed_mid_stream);
  json.EndObject();
  json.EndObject();

  const char* path_env = std::getenv("CERTA_BENCH_STREAM_JSON");
  const std::string path =
      path_env != nullptr ? path_env : "BENCH_stream.json";
  if (!certa::explain::SaveJsonFile(path, json.str())) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  std::printf("\nsummary written to %s\n", path.c_str());
  if (!latency.ok || !stale.ok || !durability.ok) {
    std::fprintf(stderr, "FAIL: latency=%d staleness=%d durability=%d\n",
                 latency.ok, stale.ok, durability.ok);
    return 1;
  }
  return 0;
}
