// Reproduces Figs. 1-2: sample record pairs from the (synthetic)
// Abt-Buy benchmark and the matching scores the three DL systems assign
// them — including disagreements on true matches, which motivate the
// need for explanations.

#include <iostream>
#include <memory>

#include "data/benchmarks.h"
#include "eval/harness.h"
#include "util/string_utils.h"
#include "util/table_printer.h"

int main() {
  certa::eval::HarnessOptions options = certa::eval::OptionsFromEnv();
  certa::data::Dataset dataset = certa::data::MakeBenchmark("AB",
                                                            options.scale);
  std::vector<std::unique_ptr<certa::models::Matcher>> models;
  for (certa::models::ModelKind kind : certa::models::AllModelKinds()) {
    models.push_back(
        certa::models::TrainMatcher(kind, dataset, options.seed));
  }

  // Prefer true matches on which the models disagree (the paper's
  // motivating pairs); fall back to the first matches.
  std::vector<certa::data::LabeledPair> chosen;
  for (const auto& pair : dataset.test) {
    if (pair.label != 1) continue;
    const auto& u = dataset.left.record(pair.left_index);
    const auto& v = dataset.right.record(pair.right_index);
    int votes = 0;
    for (const auto& model : models) votes += model->Predict(u, v) ? 1 : 0;
    bool disagreement = votes != 0 && votes != 3;
    if (disagreement) chosen.push_back(pair);
    if (chosen.size() >= 3) break;
  }
  for (const auto& pair : dataset.test) {
    if (chosen.size() >= 3) break;
    if (pair.label == 1) chosen.push_back(pair);
  }

  certa::PrintBanner(std::cout,
                     "Fig. 1 — Sample records (synthetic Abt-Buy)");
  for (size_t i = 0; i < chosen.size(); ++i) {
    const auto& u = dataset.left.record(chosen[i].left_index);
    const auto& v = dataset.right.record(chosen[i].right_index);
    std::cout << "pair " << i + 1 << ":\n";
    for (int a = 0; a < dataset.left.schema().size(); ++a) {
      std::cout << "  u." << dataset.left.schema().name(a) << " = "
                << u.value(a) << "\n";
    }
    for (int a = 0; a < dataset.right.schema().size(); ++a) {
      std::cout << "  v." << dataset.right.schema().name(a) << " = "
                << v.value(a) << "\n";
    }
  }

  certa::TablePrinter table({"Input", "Ground-Truth", "DeepER",
                             "DeepMatcher", "Ditto"});
  for (size_t i = 0; i < chosen.size(); ++i) {
    const auto& u = dataset.left.record(chosen[i].left_index);
    const auto& v = dataset.right.record(chosen[i].right_index);
    std::vector<std::string> row = {
        "pair " + std::to_string(i + 1),
        chosen[i].label == 1 ? "Match" : "Non-Match"};
    for (const auto& model : models) {
      double score = model->Score(u, v);
      row.push_back(std::string(score >= 0.5 ? "Match" : "Non-Match") +
                    " (" + certa::FormatDouble(score, 3) + ")");
    }
    table.AddRow(row);
  }
  certa::PrintBanner(std::cout,
                     "Fig. 2 — ER predictions by the three DL systems");
  table.Print(std::cout);
  return 0;
}
