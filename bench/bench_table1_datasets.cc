// Reproduces Table 1: dataset statistics of the twelve synthetic
// benchmarks (matches, attribute counts, record counts, distinct
// values). The synthetic scale is ~1/10th of the paper's (see
// DESIGN.md §2); shapes — per-dataset attribute counts, the
// small-match-count datasets (BA, FZ), the lopsided right tables (DS,
// IA, WA) — mirror the original repository.

#include <iostream>

#include "data/benchmarks.h"
#include "eval/harness.h"
#include "util/table_printer.h"

int main() {
  certa::eval::HarnessOptions options = certa::eval::OptionsFromEnv();
  certa::TablePrinter table(
      {"Dataset", "Matches", "Attr.s", "Records", "Values"});
  for (const std::string& code : certa::data::BenchmarkCodes()) {
    certa::data::Dataset dataset =
        certa::data::MakeBenchmark(code, options.scale);
    certa::data::DatasetStats stats = certa::data::ComputeStats(dataset);
    table.AddRow({code + " (" + dataset.full_name + ")",
                  std::to_string(stats.matches),
                  std::to_string(stats.attributes),
                  std::to_string(stats.left_records) + " - " +
                      std::to_string(stats.right_records),
                  std::to_string(stats.left_values) + " - " +
                      std::to_string(stats.right_values)});
  }
  certa::PrintBanner(std::cout,
                     "Table 1 — Datasets for experimental evaluation");
  table.Print(std::cout);
  return 0;
}
