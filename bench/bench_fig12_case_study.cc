// Reproduces Fig. 12: qualitative case study of Ditto predictions on
// the BA (beer) dataset. For one representative instance of each
// outcome (TP, TN, FP, FN when present in the test split):
//  - "Actual" saliency: per attribute, the |score delta| caused by
//    masking that attribute alone — the ground-truth influence;
//  - each method's saliency scores per attribute;
//  - Aggr@k: |score delta| when masking the top-k attributes according
//    to each method's ranking, for k = 1..#attributes.
// A good explanation ranks attributes like "Actual" and yields large
// Aggr@k already for small k.

#include <cmath>
#include <iostream>

#include "data/benchmarks.h"
#include "eval/harness.h"
#include "eval/saliency_metrics.h"
#include "explain/perturbation.h"
#include "util/string_utils.h"
#include "util/table_printer.h"

namespace {

using certa::eval::HarnessOptions;

double MaskedDelta(const certa::eval::Setup& setup,
                   const certa::data::Record& u,
                   const certa::data::Record& v, uint32_t left_mask,
                   uint32_t right_mask, double original) {
  certa::data::Record masked_u = certa::explain::DropAttributes(u, left_mask);
  certa::data::Record masked_v =
      certa::explain::DropAttributes(v, right_mask);
  return std::fabs(original -
                   setup.context.model->Score(masked_u, masked_v));
}

void Analyze(const certa::eval::Setup& setup,
             const certa::data::LabeledPair& pair, const std::string& title,
             const HarnessOptions& options) {
  const auto& u = setup.dataset.left.record(pair.left_index);
  const auto& v = setup.dataset.right.record(pair.right_index);
  const int left_n = setup.dataset.left.schema().size();
  const int right_n = setup.dataset.right.schema().size();
  const int total = left_n + right_n;
  double original = setup.context.model->Score(u, v);

  std::vector<std::string> header = {"Method"};
  for (int a = 0; a < left_n; ++a) {
    header.push_back("L_" + setup.dataset.left.schema().name(a));
  }
  for (int a = 0; a < right_n; ++a) {
    header.push_back("R_" + setup.dataset.right.schema().name(a));
  }
  for (int k = 1; k <= total; ++k) {
    header.push_back("Aggr@" + std::to_string(k));
  }
  certa::TablePrinter table(header);

  // Actual saliency row: single-attribute masking deltas; its Aggr@k
  // masks the top-k actually-influential attributes.
  certa::explain::SaliencyExplanation actual(left_n, right_n);
  for (int a = 0; a < left_n; ++a) {
    actual.set_score({certa::data::Side::kLeft, a},
                     MaskedDelta(setup, u, v, 1u << a, 0u, original));
  }
  for (int a = 0; a < right_n; ++a) {
    actual.set_score({certa::data::Side::kRight, a},
                     MaskedDelta(setup, u, v, 0u, 1u << a, original));
  }

  auto add_row = [&](const std::string& name,
                     const certa::explain::SaliencyExplanation& expl) {
    std::vector<std::string> cells = {name};
    for (double score : expl.Flattened()) {
      cells.push_back(certa::FormatDouble(score, 4));
    }
    for (int k = 1; k <= total; ++k) {
      certa::data::Record masked_u;
      certa::data::Record masked_v;
      certa::eval::MaskTopAttributes(
          u, v, expl, static_cast<double>(k) / total, &masked_u, &masked_v);
      double delta = std::fabs(
          original - setup.context.model->Score(masked_u, masked_v));
      cells.push_back(certa::FormatDouble(delta, 4));
    }
    table.AddRow(cells);
  };

  for (const std::string& method : certa::eval::SaliencyMethodNames()) {
    auto explainer =
        certa::eval::MakeSaliencyExplainer(method, setup, options);
    add_row(method, explainer->ExplainSaliency(u, v));
  }
  add_row("Actual", actual);

  certa::PrintBanner(std::cout,
                     title + ": label=" + std::to_string(pair.label) +
                         ", score=" + certa::FormatDouble(original, 2));
  std::cout << "record pair:\n";
  for (int a = 0; a < left_n; ++a) {
    std::cout << "  L_" << setup.dataset.left.schema().name(a) << " = "
              << u.value(a) << "\n";
  }
  for (int a = 0; a < right_n; ++a) {
    std::cout << "  R_" << setup.dataset.right.schema().name(a) << " = "
              << v.value(a) << "\n";
  }
  table.Print(std::cout);
}

}  // namespace

int main() {
  HarnessOptions options = certa::eval::OptionsFromEnv();
  auto setup = certa::eval::Prepare("BA", certa::models::ModelKind::kDitto,
                                    options);
  const certa::data::LabeledPair* cases[4] = {nullptr, nullptr, nullptr,
                                              nullptr};
  const char* names[4] = {"Fig. 12(a) True positive",
                          "Fig. 12(b) True negative",
                          "Fig. 12(c) False positive",
                          "Fig. 12(d) False negative"};
  for (const auto& pair : setup->dataset.test) {
    const auto& u = setup->dataset.left.record(pair.left_index);
    const auto& v = setup->dataset.right.record(pair.right_index);
    int predicted = setup->context.model->Predict(u, v) ? 1 : 0;
    int slot;
    if (pair.label == 1 && predicted == 1) slot = 0;
    else if (pair.label == 0 && predicted == 0) slot = 1;
    else if (pair.label == 0 && predicted == 1) slot = 2;
    else slot = 3;
    if (cases[slot] == nullptr) cases[slot] = &pair;
  }
  for (int c = 0; c < 4; ++c) {
    if (cases[c] == nullptr) {
      std::cout << "\n(" << names[c]
                << ": no such outcome in the BA test split)\n";
      continue;
    }
    Analyze(*setup, *cases[c], names[c], options);
  }
  return 0;
}
