// Reproduces Table 3: Confidence Indication (MAE of a linear probe
// predicting the model's confidence from the saliency scores; lower is
// better) for CERTA, LandMark, Mojito and SHAP.

#include <iostream>

#include "data/benchmarks.h"
#include "eval/harness.h"
#include "eval/saliency_metrics.h"
#include "util/stopwatch.h"
#include "util/string_utils.h"
#include "util/table_printer.h"

namespace {

using certa::eval::HarnessOptions;

void RunModel(certa::models::ModelKind kind, const HarnessOptions& options) {
  certa::TablePrinter table(
      {"Dataset", "CERTA", "LandMark", "Mojito", "SHAP"});
  for (const std::string& code : certa::data::BenchmarkCodes()) {
    auto setup = certa::eval::Prepare(code, kind, options);
    auto pairs = certa::eval::ExplainedPairs(*setup, options);
    std::vector<double> row;
    for (const std::string& method : certa::eval::SaliencyMethodNames()) {
      auto explanations = certa::eval::RunSaliencyCellParallel(
          method, *setup, pairs, options);
      row.push_back(certa::eval::ConfidenceIndication(
          setup->context, pairs, setup->dataset.left, setup->dataset.right,
          explanations));
    }
    table.AddRow(code, row, 3);
  }
  certa::PrintBanner(std::cout,
                     "Table 3 — Confidence Indication (lower = better), " +
                         certa::models::ModelKindName(kind));
  table.Print(std::cout);
}

}  // namespace

int main() {
  certa::Stopwatch stopwatch;
  HarnessOptions options = certa::eval::OptionsFromEnv();
  for (certa::models::ModelKind kind : certa::models::AllModelKinds()) {
    RunModel(kind, options);
  }
  std::cout << "\n[table3] total "
            << certa::FormatDouble(stopwatch.ElapsedSeconds(), 1) << "s\n";
  return 0;
}
