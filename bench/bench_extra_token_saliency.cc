// Extension experiment (paper Sect. 6, future work): token-level
// explanations. For a few Ditto predictions on the BA dataset, drill
// the most salient attribute (per CERTA) down to tokens and report each
// token's necessity, validating that the decisive tokens (shared
// identifying words) outrank filler.

#include <iostream>

#include "core/certa_explainer.h"
#include "core/token_explainer.h"
#include "data/benchmarks.h"
#include "eval/harness.h"
#include "util/string_utils.h"
#include "util/table_printer.h"

int main() {
  certa::eval::HarnessOptions options = certa::eval::OptionsFromEnv();
  auto setup = certa::eval::Prepare("BA", certa::models::ModelKind::kDitto,
                                    options);
  certa::core::CertaExplainer certa(setup->context,
                                    certa::eval::CertaOptionsFor(options));
  certa::core::TokenExplainer tokens(setup->context);

  certa::PrintBanner(std::cout,
                     "Extra — Token-level saliency (future-work "
                     "extension), Ditto on BA");
  int shown = 0;
  for (const auto& pair : setup->dataset.test) {
    if (shown >= 4) break;
    const auto& u = setup->dataset.left.record(pair.left_index);
    const auto& v = setup->dataset.right.record(pair.right_index);
    certa::core::CertaResult result = certa.Explain(u, v);
    std::vector<certa::explain::AttributeRef> ranked =
        result.saliency.Ranked();
    if (ranked.empty()) continue;
    certa::explain::AttributeRef top = ranked.front();
    certa::core::TokenExplanation explanation =
        tokens.Explain(u, v, top);
    if (explanation.tokens.size() < 2) continue;
    ++shown;
    double score = setup->context.model->Score(u, v);
    std::cout << "\npair " << shown << " (label=" << pair.label
              << ", score=" << certa::FormatDouble(score, 2)
              << "), top attribute "
              << certa::explain::QualifiedAttributeName(
                     setup->dataset.left.schema(),
                     setup->dataset.right.schema(), top)
              << " = \""
              << (top.side == certa::data::Side::kLeft
                      ? u.value(top.index)
                      : v.value(top.index))
              << "\"\n";
    certa::TablePrinter table({"token", "necessity"});
    for (int t : explanation.Ranked()) {
      table.AddRow({explanation.tokens[t],
                    certa::FormatDouble(explanation.scores[t], 3)});
    }
    table.Print(std::cout);
  }
  return 0;
}
