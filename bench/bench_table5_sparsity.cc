// Reproduces Table 5: Sparsity of counterfactual explanations (fraction
// of attributes left unchanged; higher is better) for CERTA, DiCE,
// SHAP-C and LIME-C.

#include "cf_grid.h"

int main() {
  certa_bench::RunCfGrid(
      "Table 5 — Sparsity (higher = better)",
      [](const certa::eval::CfAggregate& a) { return a.sparsity; }, 2);
  return 0;
}
