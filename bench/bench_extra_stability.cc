// Extension experiment: run-to-run stability of saliency explanations.
// Each method explains the same pairs twice with different sampling
// seeds; the cell is the mean Spearman correlation of the two attribute
// rankings (1.0 = perfectly reproducible). CERTA's triangle sampling
// and the surrogate-based baselines all have sampling noise; a method
// whose explanations reshuffle between runs is hard to act on.

#include <iostream>

#include "core/certa_explainer.h"
#include "data/benchmarks.h"
#include "eval/harness.h"
#include "eval/stability.h"
#include "explain/landmark.h"
#include "explain/mojito.h"
#include "explain/shap.h"
#include "util/stopwatch.h"
#include "util/string_utils.h"
#include "util/table_printer.h"

namespace {

std::vector<certa::explain::SaliencyExplanation> RunWithSeed(
    const std::string& method, const certa::eval::Setup& setup,
    const std::vector<certa::data::LabeledPair>& pairs,
    const certa::eval::HarnessOptions& base, uint64_t seed) {
  // Build the explainer with an overridden seed per method.
  std::unique_ptr<certa::explain::SaliencyExplainer> explainer;
  if (method == "CERTA") {
    certa::core::CertaExplainer::Options options =
        certa::eval::CertaOptionsFor(base);
    options.seed = seed;
    explainer = std::make_unique<certa::core::CertaExplainer>(
        setup.context, options);
  } else if (method == "LandMark") {
    certa::explain::LimeOptions options;
    options.seed = seed;
    explainer = std::make_unique<certa::explain::LandmarkExplainer>(
        setup.context, options);
  } else if (method == "Mojito") {
    certa::explain::LimeOptions options;
    options.seed = seed;
    explainer = std::make_unique<certa::explain::MojitoExplainer>(
        setup.context, options);
  } else {
    certa::explain::ShapExplainer::Options options;
    options.seed = seed;
    explainer = std::make_unique<certa::explain::ShapExplainer>(
        setup.context, options);
  }
  return certa::eval::RunSaliencyCell(explainer.get(), setup, pairs);
}

}  // namespace

int main() {
  certa::Stopwatch stopwatch;
  certa::eval::HarnessOptions options = certa::eval::OptionsFromEnv();
  certa::TablePrinter table(
      {"Dataset", "CERTA", "LandMark", "Mojito", "SHAP"});
  for (const std::string& code :
       {std::string("AB"), std::string("FZ"), std::string("WA")}) {
    auto setup = certa::eval::Prepare(
        code, certa::models::ModelKind::kDitto, options);
    auto pairs = certa::eval::ExplainedPairs(*setup, options);
    std::vector<double> row;
    for (const std::string& method : certa::eval::SaliencyMethodNames()) {
      auto run_a = RunWithSeed(method, *setup, pairs, options, 1001);
      auto run_b = RunWithSeed(method, *setup, pairs, options, 2002);
      row.push_back(certa::eval::SaliencyStability(run_a, run_b));
    }
    table.AddRow(code, row, 3);
  }
  certa::PrintBanner(std::cout,
                     "Extra — Run-to-run stability of saliency rankings "
                     "(mean Spearman; higher = more reproducible), Ditto");
  table.Print(std::cout);
  std::cout << "\n[extra-stability] total "
            << certa::FormatDouble(stopwatch.ElapsedSeconds(), 1) << "s\n";
  return 0;
}
