#ifndef CERTA_BENCH_CF_GRID_H_
#define CERTA_BENCH_CF_GRID_H_

// Shared driver for the counterfactual-metric tables (4, 5, 6) and
// Fig. 10: runs every CF method over the full dataset x model grid and
// prints one table per model using a caller-selected field of the
// aggregate.

#include <functional>
#include <iostream>
#include <string>

#include "data/benchmarks.h"
#include "eval/cf_metrics.h"
#include "eval/harness.h"
#include "util/stopwatch.h"
#include "util/string_utils.h"
#include "util/table_printer.h"

namespace certa_bench {

/// Runs the CF grid and prints `metric(aggregate)` per cell. `title`
/// names the experiment (e.g. "Table 4 — Proximity").
inline void RunCfGrid(
    const std::string& title,
    const std::function<double(const certa::eval::CfAggregate&)>& metric,
    int decimals) {
  certa::Stopwatch stopwatch;
  certa::eval::HarnessOptions options = certa::eval::OptionsFromEnv();
  for (certa::models::ModelKind kind : certa::models::AllModelKinds()) {
    certa::TablePrinter table(
        {"Dataset", "CERTA", "DiCE", "SHAP-C", "LIME-C"});
    for (const std::string& code : certa::data::BenchmarkCodes()) {
      auto setup = certa::eval::Prepare(code, kind, options);
      auto pairs = certa::eval::ExplainedPairs(*setup, options);
      std::vector<double> row;
      for (const std::string& method : certa::eval::CfMethodNames()) {
        certa::eval::CfAggregate aggregate =
            certa::eval::RunCfCellParallel(method, *setup, pairs, options);
        row.push_back(metric(aggregate));
      }
      table.AddRow(code, row, decimals);
    }
    certa::PrintBanner(
        std::cout, title + ", " + certa::models::ModelKindName(kind));
    table.Print(std::cout);
  }
  std::cout << "\n[cf-grid] total "
            << certa::FormatDouble(stopwatch.ElapsedSeconds(), 1) << "s\n";
}

}  // namespace certa_bench

#endif  // CERTA_BENCH_CF_GRID_H_
