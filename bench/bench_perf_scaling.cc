// Scaling benchmark for the batched + cached + pooled scoring engine:
// CertaExplainer::Explain end to end under four regimes —
//
//   serial   per-pair Score through an adapter that hides the model's
//            ScoreBatch override (the pre-engine hot path), no cache
//   batched  model-level ScoreBatch amortization, no cache
//   cached   batched + the prediction cache
//   pooled   batched + cached + a worker pool at 1/2/4/8 threads
//
// Every regime must produce a bit-identical CertaResult (verified via
// the JSON export before any timing is reported). Besides the
// google-benchmark output, the binary writes a machine-readable summary
// to BENCH_perf.json (path overridable via CERTA_BENCH_PERF_JSON) with
// per-regime wall times and speedups over the serial baseline.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "core/certa_explainer.h"
#include "data/benchmarks.h"
#include "explain/json_export.h"
#include "models/trainer.h"
#include "text/simd.h"
#include "util/json_writer.h"
#include "util/thread_pool.h"

namespace {

using certa::core::CertaExplainer;
using certa::core::CertaResult;
using certa::core::CertaResultToJson;

/// Presents the wrapped model with its ScoreBatch override hidden: the
/// inherited default loops per-pair Score, so explaining through this
/// adapter reproduces the pre-engine serial scoring cost.
class SerialAdapter : public certa::models::Matcher {
 public:
  explicit SerialAdapter(const certa::models::Matcher* base) : base_(base) {}
  double Score(const certa::data::Record& u,
               const certa::data::Record& v) const override {
    return base_->Score(u, v);
  }
  std::string name() const override { return base_->name(); }

 private:
  const certa::models::Matcher* base_;
};

struct Regime {
  std::string key;
  bool serial_model = false;  // score through SerialAdapter
  bool use_cache = false;
  int num_threads = 1;
};

std::vector<Regime> Regimes() {
  return {
      {"serial", true, false, 1},
      {"batched", false, false, 1},
      {"cached", false, true, 1},
      {"pooled_1", false, true, 1},
      {"pooled_2", false, true, 2},
      {"pooled_4", false, true, 4},
      {"pooled_8", false, true, 8},
  };
}

certa::models::ModelKind ModelFromEnv() {
  const char* name = std::getenv("CERTA_BENCH_MODEL");
  if (name == nullptr) return certa::models::ModelKind::kDitto;
  std::string value = name;
  if (value == "DeepER") return certa::models::ModelKind::kDeepEr;
  if (value == "DeepMatcher") return certa::models::ModelKind::kDeepMatcher;
  if (value == "SVM") return certa::models::ModelKind::kSvm;
  return certa::models::ModelKind::kDitto;
}

struct Fixture {
  std::string dataset_code;
  certa::data::Dataset dataset;
  std::unique_ptr<certa::models::Matcher> model;
  std::unique_ptr<SerialAdapter> serial_model;
  std::vector<certa::models::RecordPair> pairs;  // explained inputs

  Fixture() {
    // FZ's six attributes give a 62-node lattice per side — a scoring
    // mix representative of the paper's mid-size schemas. Overridable
    // for scaling studies on other generators.
    const char* code = std::getenv("CERTA_BENCH_DATASET");
    dataset_code = code != nullptr ? code : "FZ";
    dataset = certa::data::MakeBenchmark(dataset_code);
    model = certa::models::TrainMatcher(ModelFromEnv(), dataset);
    serial_model = std::make_unique<SerialAdapter>(model.get());
    const size_t max_pairs = 4;
    for (const certa::data::LabeledPair& pair : dataset.test) {
      if (pairs.size() >= max_pairs) break;
      pairs.push_back({&dataset.left.record(pair.left_index),
                       &dataset.right.record(pair.right_index)});
    }
  }

  CertaExplainer MakeExplainer(const Regime& regime) const {
    certa::explain::ExplainContext context{
        regime.serial_model
            ? static_cast<const certa::models::Matcher*>(serial_model.get())
            : model.get(),
        &dataset.left, &dataset.right};
    CertaExplainer::Options options;
    // τ = 100 is the paper's default; cache reuse across triangles is a
    // large part of the engine's win, so the bench keeps it.
    const char* triangles = std::getenv("CERTA_BENCH_TRIANGLES");
    options.num_triangles =
        triangles != nullptr ? std::max(2, std::atoi(triangles)) : 100;
    options.use_cache = regime.use_cache;
    options.num_threads = regime.num_threads;
    return CertaExplainer(context, options);
  }
};

Fixture& GetFixture() {
  static Fixture* fixture = new Fixture();
  return *fixture;
}

void BM_ExplainRegime(benchmark::State& state, const Regime& regime) {
  Fixture& fixture = GetFixture();
  CertaExplainer explainer = fixture.MakeExplainer(regime);
  size_t next = 0;
  for (auto _ : state) {
    const auto& pair = fixture.pairs[next++ % fixture.pairs.size()];
    CertaResult result = explainer.Explain(*pair.left, *pair.right);
    benchmark::DoNotOptimize(result.triangles_used);
  }
}

void RegisterBenchmarks() {
  for (const Regime& regime : Regimes()) {
    benchmark::RegisterBenchmark(("BM_Explain/" + regime.key).c_str(),
                                 [regime](benchmark::State& state) {
                                   BM_ExplainRegime(state, regime);
                                 })
        ->Unit(benchmark::kMillisecond);
  }
}

/// JSON payload of a result with the cache counters zeroed (they
/// legitimately differ across regimes; everything else must not).
std::string ComparableJson(CertaResult result, const Fixture& fixture) {
  result.cache_hits = 0;
  result.cache_misses = 0;
  result.cache_evictions = 0;
  return CertaResultToJson(result, fixture.dataset.left.schema(),
                           fixture.dataset.right.schema());
}

/// Repetitions per regime (>= 5 so the min and median are meaningful
/// on a shared machine; CERTA_BENCH_REPS raises it for quieter boxes).
int SweepReps() {
  const char* reps = std::getenv("CERTA_BENCH_REPS");
  return reps != nullptr ? std::max(5, std::atoi(reps)) : 7;
}

struct SweepTiming {
  double min_ms = 0.0;
  double median_ms = 0.0;
};

/// Times `SweepReps()` full sweeps over the explained pairs; fills
/// `payloads` with the comparable JSON of each result (warm-up
/// repetition only). The minimum is the least noise-contaminated
/// estimate; the median shows how far the tail sits from it.
SweepTiming SweepMillis(const Regime& regime, const Fixture& fixture,
                        std::vector<std::string>* payloads) {
  CertaExplainer explainer = fixture.MakeExplainer(regime);
  // Warm-up run outside the clock (thread spawn, allocator steady
  // state); also the run whose payloads are compared across regimes.
  for (const auto& pair : fixture.pairs) {
    CertaResult result = explainer.Explain(*pair.left, *pair.right);
    if (payloads != nullptr) {
      payloads->push_back(ComparableJson(std::move(result), fixture));
    }
  }
  const int reps = SweepReps();
  std::vector<double> samples;
  samples.reserve(static_cast<size_t>(reps));
  for (int rep = 0; rep < reps; ++rep) {
    auto start = std::chrono::steady_clock::now();
    for (const auto& pair : fixture.pairs) {
      CertaResult result = explainer.Explain(*pair.left, *pair.right);
      benchmark::DoNotOptimize(result.triangles_used);
    }
    auto stop = std::chrono::steady_clock::now();
    samples.push_back(
        std::chrono::duration<double, std::milli>(stop - start).count());
  }
  std::sort(samples.begin(), samples.end());
  SweepTiming timing;
  timing.min_ms = samples.front();
  timing.median_ms = samples[samples.size() / 2];
  return timing;
}

int WriteSummary() {
  Fixture& fixture = GetFixture();
  if (fixture.pairs.empty()) {
    std::fprintf(stderr, "no test pairs to explain\n");
    return 1;
  }

  std::vector<Regime> regimes = Regimes();
  std::vector<SweepTiming> millis;
  std::vector<std::vector<std::string>> payloads(regimes.size());
  for (size_t r = 0; r < regimes.size(); ++r) {
    millis.push_back(SweepMillis(regimes[r], fixture, &payloads[r]));
  }

  // Identity check: every regime's explanations must match the serial
  // baseline's exactly.
  bool identical = true;
  for (size_t r = 1; r < regimes.size(); ++r) {
    if (payloads[r] != payloads[0]) {
      identical = false;
      std::fprintf(stderr, "FAIL: regime %s diverges from serial output\n",
                   regimes[r].key.c_str());
    }
  }

  const double serial_ms = millis[0].min_ms;
  certa::JsonWriter json;
  json.BeginObject();
  json.Key("benchmark");
  json.String("perf_scaling");
  json.Key("dataset");
  json.String(fixture.dataset_code);
  json.Key("model");
  json.String(fixture.model->name());
  json.Key("pairs_per_sweep");
  json.Int(static_cast<long long>(fixture.pairs.size()));
  json.Key("reps");
  json.Int(SweepReps());
  // Thread scaling is only physically possible up to this: with one
  // hardware thread every pooled_N row measures the same serialized
  // execution plus pool bookkeeping, and the wins must come from the
  // batch/cache/kernel layers instead.
  json.Key("hardware_threads");
  json.Int(certa::util::ThreadPool::HardwareThreads());
  json.Key("kernels");
  json.String(certa::text::simd::ActiveModeName());
  json.Key("results_identical");
  json.Bool(identical);
  json.Key("regimes");
  json.BeginArray();
  for (size_t r = 0; r < regimes.size(); ++r) {
    json.BeginObject();
    json.Key("name");
    json.String(regimes[r].key);
    json.Key("threads");
    json.Int(regimes[r].num_threads);
    json.Key("cache");
    json.Bool(regimes[r].use_cache);
    json.Key("sweep_ms");
    json.Number(millis[r].min_ms);
    json.Key("sweep_ms_median");
    json.Number(millis[r].median_ms);
    json.Key("speedup_vs_serial");
    json.Number(millis[r].min_ms > 0.0 ? serial_ms / millis[r].min_ms : 0.0);
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();

  const char* path_env = std::getenv("CERTA_BENCH_PERF_JSON");
  std::string path = path_env != nullptr ? path_env : "BENCH_perf.json";
  if (!certa::explain::SaveJsonFile(path, json.str())) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }

  std::printf("\n%-10s %8s %8s %8s\n", "regime", "min_ms", "med_ms",
              "speedup");
  for (size_t r = 0; r < regimes.size(); ++r) {
    std::printf("%-10s %8.2f %8.2f %7.2fx\n", regimes[r].key.c_str(),
                millis[r].min_ms, millis[r].median_ms,
                millis[r].min_ms > 0.0 ? serial_ms / millis[r].min_ms : 0.0);
  }
  std::printf("results identical across regimes: %s\n",
              identical ? "yes" : "NO");
  std::printf("summary written to %s\n", path.c_str());
  return identical ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  RegisterBenchmarks();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return WriteSummary();
}
