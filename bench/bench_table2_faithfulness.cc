// Reproduces Table 2: Faithfulness (AUC of the masking-threshold F1
// curve; lower is better) of saliency explanations by CERTA, LandMark,
// Mojito and SHAP, for each of the 12 benchmarks and 3 ER models.

#include <iostream>

#include "data/benchmarks.h"
#include "eval/harness.h"
#include "eval/saliency_metrics.h"
#include "util/stopwatch.h"
#include "util/string_utils.h"
#include "util/table_printer.h"

namespace {

using certa::eval::HarnessOptions;

void RunModel(certa::models::ModelKind kind, const HarnessOptions& options) {
  certa::TablePrinter table({"Dataset", "CERTA", "LandMark", "Mojito",
                             "SHAP", "model F1"});
  for (const std::string& code : certa::data::BenchmarkCodes()) {
    auto setup = certa::eval::Prepare(code, kind, options);
    auto pairs = certa::eval::ExplainedPairs(*setup, options);
    std::vector<double> row;
    for (const std::string& method : certa::eval::SaliencyMethodNames()) {
      std::vector<certa::explain::SaliencyExplanation> explanations =
          certa::eval::RunSaliencyCellParallel(method, *setup, pairs,
                                               options);
      row.push_back(certa::eval::Faithfulness(setup->context, pairs,
                                              setup->dataset.left,
                                              setup->dataset.right,
                                              explanations));
    }
    row.push_back(setup->test_f1);
    table.AddRow(code, row, 3);
  }
  certa::PrintBanner(std::cout, "Table 2 — Faithfulness (lower = better), " +
                                    certa::models::ModelKindName(kind));
  table.Print(std::cout);
}

}  // namespace

int main() {
  certa::Stopwatch stopwatch;
  HarnessOptions options = certa::eval::OptionsFromEnv();
  for (certa::models::ModelKind kind : certa::models::AllModelKinds()) {
    RunModel(kind, options);
  }
  std::cout << "\n[table2] total "
            << certa::FormatDouble(stopwatch.ElapsedSeconds(), 1) << "s\n";
  return 0;
}
