// Durability cost/benefit bench (docs/OPERATIONS.md):
//   1. checkpoint overhead vs interval — what journaling + fsync
//      cadence costs on top of an in-memory run;
//   2. recovery time vs journal size — what replay costs on resume;
//   3. model calls saved vs kill point — what the journal buys when a
//      job dies at 25/50/75% of its paid work.
// Prints a table and writes BENCH_durability.json (atomically, through
// the same writer the service uses).

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "core/certa_explainer.h"
#include "data/benchmarks.h"
#include "explain/json_export.h"
#include "models/trainer.h"
#include "persist/journal.h"
#include "service/job_runner.h"
#include "util/json_writer.h"

namespace {

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

double MillisSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

fs::path FreshDir(const std::string& tag) {
  fs::path dir = fs::temp_directory_path() /
                 ("certa_bench_durability_" + tag + "_" +
                  std::to_string(::getpid()));
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

certa::service::JobSpec BenchJob(int triangles) {
  certa::service::JobSpec spec;
  spec.id = "bench";
  spec.dataset = "BA";
  spec.model = "svm";
  spec.pair_index = 1;
  spec.triangles = triangles;
  return spec;
}

int EnvInt(const char* name, int fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::atoi(value) : fallback;
}

}  // namespace

int main() {
  const int triangles = EnvInt("CERTA_BENCH_TRIANGLES", 200);

  certa::JsonWriter json;
  json.BeginObject();
  json.Key("bench");
  json.String("durability");
  json.Key("triangles");
  json.Int(triangles);

  // -- 1. checkpoint overhead vs interval ------------------------------
  // In-memory baseline covers the same whole pipeline a durable run
  // pays (dataset + training + explain), just without any persistence.
  Clock::time_point start = Clock::now();
  {
    certa::data::Dataset dataset = certa::data::MakeBenchmark("BA");
    auto model =
        certa::models::TrainMatcher(certa::models::ModelKind::kSvm, dataset);
    certa::models::ScoringEngine engine(model.get());
    certa::explain::ExplainContext context{&engine, &dataset.left,
                                           &dataset.right};
    certa::core::CertaExplainer::Options baseline_options;
    baseline_options.num_triangles = triangles;
    certa::core::CertaExplainer explainer(context, baseline_options);
    const certa::data::LabeledPair& pair = dataset.test[1];
    (void)explainer.Explain(dataset.left.record(pair.left_index),
                            dataset.right.record(pair.right_index));
  }
  const double baseline_ms = MillisSince(start);

  std::printf("durability bench (BA, svm, pair 1, %d triangles)\n\n",
              triangles);
  std::printf("checkpoint overhead vs interval (in-memory baseline %.1f ms)\n",
              baseline_ms);
  std::printf("%-12s %10s %10s %10s\n", "interval", "ms", "overhead",
              "fresh");
  json.Key("baseline_ms");
  json.Number(baseline_ms);
  json.Key("checkpoint_overhead");
  json.BeginArray();
  // 0 = flush only at phase boundaries; 1 = fsync after every score.
  for (int interval : {0, 256, 16, 1}) {
    const fs::path dir =
        FreshDir("interval_" + std::to_string(interval));
    certa::service::DurableRunOptions options;
    options.checkpoint_every = interval;
    start = Clock::now();
    certa::service::JobOutcome outcome = certa::service::RunDurableExplain(
        BenchJob(triangles), dir.string(), options);
    const double ms = MillisSince(start);
    if (outcome.state != certa::service::JobState::kComplete) {
      std::fprintf(stderr, "bench job failed: %s\n", outcome.error.c_str());
      return 1;
    }
    const char* label = interval == 0 ? "phase-only" : nullptr;
    std::printf("%-12s %10.1f %9.1f%% %10lld\n",
                label != nullptr ? label : std::to_string(interval).c_str(),
                ms, baseline_ms > 0.0 ? 100.0 * (ms - baseline_ms) / baseline_ms
                                      : 0.0,
                outcome.fresh_scores);
    json.BeginObject();
    json.Key("interval");
    json.Int(interval);
    json.Key("ms");
    json.Number(ms);
    json.Key("overhead_pct");
    json.Number(baseline_ms > 0.0 ? 100.0 * (ms - baseline_ms) / baseline_ms
                                  : 0.0);
    json.EndObject();
    fs::remove_all(dir);
  }
  json.EndArray();

  // -- 2. recovery time vs journal size --------------------------------
  std::printf("\nrecovery time vs journal size\n");
  std::printf("%-10s %10s %12s %12s\n", "triangles", "entries", "replay_ms",
              "resume_ms");
  json.Key("recovery");
  json.BeginArray();
  for (int t : {triangles / 4, triangles, triangles * 4}) {
    const fs::path dir = FreshDir("recovery_" + std::to_string(t));
    certa::service::JobOutcome full = certa::service::RunDurableExplain(
        BenchJob(t), dir.string(), certa::service::DurableRunOptions());
    if (full.state != certa::service::JobState::kComplete) {
      std::fprintf(stderr, "bench job failed: %s\n", full.error.c_str());
      return 1;
    }
    const std::string journal_path =
        certa::persist::JournalPathInDir(dir.string());
    start = Clock::now();
    certa::persist::JournalReplay replay =
        certa::persist::ReplayJournal(journal_path);
    const double replay_ms = MillisSince(start);
    start = Clock::now();
    certa::service::JobOutcome resumed = certa::service::RunDurableExplain(
        BenchJob(t), dir.string(), certa::service::DurableRunOptions());
    const double resume_ms = MillisSince(start);
    std::printf("%-10d %10zu %12.2f %12.1f\n", t, replay.entries.size(),
                replay_ms, resume_ms);
    json.BeginObject();
    json.Key("triangles");
    json.Int(t);
    json.Key("journal_entries");
    json.Int(static_cast<long long>(replay.entries.size()));
    json.Key("replay_ms");
    json.Number(replay_ms);
    json.Key("resume_ms");
    json.Number(resume_ms);
    json.Key("resume_fresh_scores");
    json.Int(resumed.fresh_scores);
    json.EndObject();
    fs::remove_all(dir);
  }
  json.EndArray();

  // -- 3. model calls saved vs kill point ------------------------------
  // Simulate a SIGKILL at k% of the paid work by seeding a fresh job
  // dir with the first k% of a complete run's journal, then resuming.
  const fs::path full_dir = FreshDir("kill_full");
  certa::service::JobOutcome full = certa::service::RunDurableExplain(
      BenchJob(triangles), full_dir.string(),
      certa::service::DurableRunOptions());
  certa::persist::JournalReplay full_journal = certa::persist::ReplayJournal(
      certa::persist::JournalPathInDir(full_dir.string()));
  const size_t total = full_journal.entries.size();
  std::printf("\nmodel calls saved vs kill point (%zu total calls)\n",
              total);
  std::printf("%-10s %10s %10s %10s\n", "kill@", "replayed", "fresh",
              "saved");
  json.Key("kill_points");
  json.BeginArray();
  for (size_t pct : {25u, 50u, 75u}) {
    const fs::path dir = FreshDir("kill_" + std::to_string(pct));
    std::vector<certa::persist::JournalEntry> prefix(
        full_journal.entries.begin(),
        full_journal.entries.begin() +
            static_cast<long>(total * pct / 100));
    certa::persist::CompactJournal(
        certa::persist::JournalPathInDir(dir.string()), prefix);
    certa::service::JobOutcome resumed = certa::service::RunDurableExplain(
        BenchJob(triangles), dir.string(),
        certa::service::DurableRunOptions());
    const double saved =
        100.0 * static_cast<double>(resumed.replayed_scores) /
        static_cast<double>(resumed.replayed_scores + resumed.fresh_scores);
    std::printf("%8zu%% %10lld %10lld %9.1f%%\n", pct,
                resumed.replayed_scores, resumed.fresh_scores, saved);
    json.BeginObject();
    json.Key("kill_pct");
    json.Int(static_cast<long long>(pct));
    json.Key("replayed");
    json.Int(resumed.replayed_scores);
    json.Key("fresh");
    json.Int(resumed.fresh_scores);
    json.Key("saved_pct");
    json.Number(saved);
    json.EndObject();
    fs::remove_all(dir);
  }
  json.EndArray();
  json.EndObject();
  fs::remove_all(full_dir);

  const char* path_env = std::getenv("CERTA_BENCH_DURABILITY_JSON");
  const std::string path =
      path_env != nullptr ? path_env : "BENCH_durability.json";
  if (!certa::explain::SaveJsonFile(path, json.str())) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  std::printf("\nsummary written to %s\n", path.c_str());
  return 0;
}
