// Reproduces Fig. 10: average number of counterfactual examples
// generated per explained input, per method and model (averaged over
// all twelve datasets). In the paper CERTA generates the most examples
// and SHAP-C/LIME-C average below one (they often fail to find a flip).

#include <iostream>

#include "data/benchmarks.h"
#include "eval/harness.h"
#include "util/stopwatch.h"
#include "util/string_utils.h"
#include "util/table_printer.h"

int main() {
  certa::Stopwatch stopwatch;
  certa::eval::HarnessOptions options = certa::eval::OptionsFromEnv();
  certa::TablePrinter table(
      {"Model", "CERTA", "DiCE", "SHAP-C", "LIME-C"});
  for (certa::models::ModelKind kind : certa::models::AllModelKinds()) {
    std::vector<double> sums(certa::eval::CfMethodNames().size(), 0.0);
    int cells = 0;
    for (const std::string& code : certa::data::BenchmarkCodes()) {
      auto setup = certa::eval::Prepare(code, kind, options);
      auto pairs = certa::eval::ExplainedPairs(*setup, options);
      const auto& methods = certa::eval::CfMethodNames();
      for (size_t m = 0; m < methods.size(); ++m) {
        sums[m] += certa::eval::RunCfCellParallel(methods[m], *setup, pairs,
                                                  options)
                       .mean_count;
      }
      ++cells;
    }
    std::vector<double> row;
    for (double sum : sums) row.push_back(sum / cells);
    table.AddRow(certa::models::ModelKindName(kind), row, 2);
  }
  certa::PrintBanner(
      std::cout,
      "Fig. 10 — Average # counterfactual examples per input (higher = "
      "more complete)");
  table.Print(std::cout);
  std::cout << "\n[fig10] total "
            << certa::FormatDouble(stopwatch.ElapsedSeconds(), 1) << "s\n";
  return 0;
}
