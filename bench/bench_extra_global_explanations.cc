// Extension experiment (paper Sect. 2, the ExplainER use case): global
// model behaviour from aggregated local explanations — mean CERTA
// saliency per predicted class plus representative explained pairs,
// for three contrasting datasets under Ditto.

#include <iostream>

#include "core/certa_explainer.h"
#include "data/benchmarks.h"
#include "eval/harness.h"
#include "explain/aggregate.h"
#include "util/stopwatch.h"
#include "util/string_utils.h"
#include "util/table_printer.h"

int main() {
  certa::Stopwatch stopwatch;
  certa::eval::HarnessOptions options = certa::eval::OptionsFromEnv();
  for (const std::string& code :
       {std::string("AB"), std::string("FZ"), std::string("DDA")}) {
    auto setup = certa::eval::Prepare(
        code, certa::models::ModelKind::kDitto, options);
    auto pairs = certa::eval::ExplainedPairs(*setup, options);
    certa::core::CertaExplainer explainer(
        setup->context, certa::eval::CertaOptionsFor(options));
    std::vector<certa::explain::SaliencyExplanation> explanations =
        certa::eval::RunSaliencyCell(&explainer, *setup, pairs);
    certa::explain::GlobalExplanation global =
        certa::explain::AggregateExplanations(
            setup->context, pairs, setup->dataset.left,
            setup->dataset.right, explanations);
    certa::PrintBanner(std::cout,
                       "Extra — Global CERTA explanation, Ditto on " +
                           code);
    std::cout << certa::explain::RenderGlobalExplanation(
        global, setup->dataset.left.schema(),
        setup->dataset.right.schema());
  }
  std::cout << "\n[extra-global] total "
            << certa::FormatDouble(stopwatch.ElapsedSeconds(), 1) << "s\n";
  return 0;
}
