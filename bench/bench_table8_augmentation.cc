// Reproduces Table 8: how many open triangles CERTA finds *without*
// the data-augmentation fallback on the triangle-starved datasets (BA,
// FZ) when targeting τ = 100, for DeepMatcher and Ditto. The paper
// observes augmentation supplies 10-39% of the requested triangles.

#include <iostream>

#include "core/certa_explainer.h"
#include "data/benchmarks.h"
#include "eval/harness.h"
#include "util/stopwatch.h"
#include "util/string_utils.h"
#include "util/table_printer.h"

int main() {
  certa::Stopwatch stopwatch;
  certa::eval::HarnessOptions options = certa::eval::OptionsFromEnv();
  const std::vector<std::string> datasets = {"BA", "FZ"};
  const std::vector<certa::models::ModelKind> kinds = {
      certa::models::ModelKind::kDeepMatcher,
      certa::models::ModelKind::kDitto};

  certa::TablePrinter table({"Dataset", "DeepMatcher", "Ditto"});
  for (const std::string& code : datasets) {
    std::vector<double> row;
    for (certa::models::ModelKind kind : kinds) {
      auto setup = certa::eval::Prepare(code, kind, options);
      auto pairs = certa::eval::ExplainedPairs(*setup, options);
      certa::core::CertaExplainer::Options certa_options =
          certa::eval::CertaOptionsFor(options);
      certa_options.allow_augmentation = false;
      certa::core::CertaExplainer explainer(setup->context, certa_options);
      long long natural = 0;
      for (const auto& pair : pairs) {
        certa::core::CertaResult result = explainer.Explain(
            setup->dataset.left.record(pair.left_index),
            setup->dataset.right.record(pair.right_index));
        natural += result.triangle_stats.natural;
      }
      row.push_back(static_cast<double>(natural) /
                    static_cast<double>(pairs.size()));
    }
    table.AddRow(code, row, 1);
  }
  certa::PrintBanner(
      std::cout,
      "Table 8 — Average natural open triangles (target " +
          std::to_string(options.num_triangles) +
          ") with data augmentation disabled");
  table.Print(std::cout);
  std::cout << "\n[table8] total "
            << certa::FormatDouble(stopwatch.ElapsedSeconds(), 1) << "s\n";
  return 0;
}
