// Reproduces Figs. 3-4: for wrong predictions, generate saliency
// explanations with every method, then *inspect their faithfulness* by
// copying the values of each method's two most salient attributes into
// the counterpart record (making the pair more similar) and re-scoring.
// A faithful explanation of a wrong Non-Match moves the matching score
// the most (the paper's CERTA column jumps while baselines barely
// move).

#include <iostream>

#include "data/benchmarks.h"
#include "eval/harness.h"
#include "util/string_utils.h"
#include "util/table_printer.h"

namespace {

/// Copies the value of attribute `ref` into the counterpart record's
/// aligned attribute (the Fig. 4 inspection operation).
void CopyAcross(certa::explain::AttributeRef ref, certa::data::Record* u,
                certa::data::Record* v) {
  if (ref.side == certa::data::Side::kLeft) {
    if (static_cast<size_t>(ref.index) < v->values.size()) {
      v->values[ref.index] = u->values[ref.index];
    }
  } else {
    if (static_cast<size_t>(ref.index) < u->values.size()) {
      u->values[ref.index] = v->values[ref.index];
    }
  }
}

}  // namespace

int main() {
  certa::eval::HarnessOptions options = certa::eval::OptionsFromEnv();
  // Copy@1 discriminates when the models are similarity-saturated by
  // two copied attributes; the paper's protocol is the top-2 variant.
  certa::TablePrinter table({"System on pair", "Original", "CERTA@1",
                             "CERTA@2", "Mojito@1", "Mojito@2",
                             "LandMark@1", "LandMark@2", "SHAP@1",
                             "SHAP@2"});
  certa::TablePrinter saliency_table(
      {"System on pair", "Method", "Top-2 salient attributes"});

  for (certa::models::ModelKind kind : certa::models::AllModelKinds()) {
    auto setup = certa::eval::Prepare("AB", kind, options);
    // A wrong prediction: prefer a false negative (true match predicted
    // Non-Match), the paper's scenario.
    const certa::data::LabeledPair* wrong = nullptr;
    for (const auto& pair : setup->dataset.test) {
      const auto& u = setup->dataset.left.record(pair.left_index);
      const auto& v = setup->dataset.right.record(pair.right_index);
      bool predicted = setup->context.model->Predict(u, v);
      if (pair.label == 1 && !predicted) {
        wrong = &pair;
        break;
      }
    }
    if (wrong == nullptr) {
      for (const auto& pair : setup->dataset.test) {
        const auto& u = setup->dataset.left.record(pair.left_index);
        const auto& v = setup->dataset.right.record(pair.right_index);
        if ((setup->context.model->Predict(u, v) ? 1 : 0) != pair.label) {
          wrong = &pair;
          break;
        }
      }
    }
    if (wrong == nullptr) {
      std::cout << "(no wrong prediction found for "
                << certa::models::ModelKindName(kind) << " on AB)\n";
      continue;
    }
    const auto& u = setup->dataset.left.record(wrong->left_index);
    const auto& v = setup->dataset.right.record(wrong->right_index);
    double original = setup->context.model->Score(u, v);
    std::vector<std::string> row = {
        certa::models::ModelKindName(kind) + " (label=" +
            std::to_string(wrong->label) + ")",
        certa::FormatDouble(original, 3)};
    for (const std::string& method :
         {std::string("CERTA"), std::string("Mojito"),
          std::string("LandMark"), std::string("SHAP")}) {
      auto explainer =
          certa::eval::MakeSaliencyExplainer(method, *setup, options);
      certa::explain::SaliencyExplanation explanation =
          explainer->ExplainSaliency(u, v);
      std::vector<certa::explain::AttributeRef> ranked =
          explanation.Ranked();
      certa::data::Record modified_u = u;
      certa::data::Record modified_v = v;
      std::string names;
      for (size_t k = 0; k < ranked.size() && k < 2; ++k) {
        CopyAcross(ranked[k], &modified_u, &modified_v);
        if (!names.empty()) names += ", ";
        names += certa::explain::QualifiedAttributeName(
            setup->dataset.left.schema(), setup->dataset.right.schema(),
            ranked[k]);
        row.push_back(certa::FormatDouble(
            setup->context.model->Score(modified_u, modified_v), 3));
      }
      saliency_table.AddRow({certa::models::ModelKindName(kind), method,
                             names});
    }
    table.AddRow(row);
  }
  certa::PrintBanner(std::cout,
                     "Fig. 3 — Top-2 saliency attributes per method on a "
                     "wrong AB prediction");
  saliency_table.Print(std::cout);
  certa::PrintBanner(std::cout,
                     "Fig. 4 — Matching score after copying each method's "
                     "top-2 salient attributes across the pair");
  table.Print(std::cout);
  return 0;
}
