// Reproduces Table 6: Diversity of counterfactual explanation sets
// (mean pairwise dissimilarity among the examples generated for one
// input; higher is better) for CERTA, DiCE, SHAP-C and LIME-C.

#include "cf_grid.h"

int main() {
  certa_bench::RunCfGrid(
      "Table 6 — Diversity (higher = better)",
      [](const certa::eval::CfAggregate& a) { return a.diversity; }, 2);
  return 0;
}
