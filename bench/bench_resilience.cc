// Resilience experiment: explanation quality under an unreliable
// matcher. The grid crosses injected transient-fault rates with hard
// model-call budgets; each cell explains the same test pairs through
// FaultInjectingMatcher → ResilientMatcher → ScoringEngine and reports
//   - coverage: % of pairs whose degraded run still produced a
//     non-empty saliency explanation (reference = fault-free run),
//   - drift: mean L1 distance of the saliency vector from the
//     fault-free unlimited-budget reference,
//   - status mix (complete / degraded / truncated) and the decorator's
//     call/retry/failure totals.
// The headline claim: at 20% transient faults with retries on, CERTA
// still explains ≥95% of pairs, and under a tight budget the results
// degrade to honest partials instead of crashes.

#include <cmath>
#include <iostream>
#include <vector>

#include "core/certa_explainer.h"
#include "data/benchmarks.h"
#include "eval/harness.h"
#include "util/stopwatch.h"
#include "util/string_utils.h"
#include "util/table_printer.h"

namespace {

using certa::core::CertaResult;
using certa::core::ExplainStatus;

bool NonEmpty(const CertaResult& result) {
  for (double score : result.saliency.left_scores()) {
    if (score > 0.0) return true;
  }
  for (double score : result.saliency.right_scores()) {
    if (score > 0.0) return true;
  }
  return false;
}

double SaliencyL1(const CertaResult& a, const CertaResult& b) {
  double distance = 0.0;
  const auto& al = a.saliency.left_scores();
  const auto& bl = b.saliency.left_scores();
  for (size_t i = 0; i < al.size(); ++i) distance += std::abs(al[i] - bl[i]);
  const auto& ar = a.saliency.right_scores();
  const auto& br = b.saliency.right_scores();
  for (size_t i = 0; i < ar.size(); ++i) distance += std::abs(ar[i] - br[i]);
  return distance;
}

}  // namespace

int main() {
  certa::Stopwatch stopwatch;
  certa::eval::HarnessOptions base = certa::eval::OptionsFromEnv();
  const std::string code = "AB";
  const std::vector<double> fault_rates = {0.0, 0.1, 0.2};
  const std::vector<long long> budgets = {0, 2000, 500};

  // Fault-free unlimited-budget reference explanations.
  certa::eval::HarnessOptions clean = base;
  clean.fault_rate = 0.0;
  clean.budget = 0;
  auto clean_setup =
      certa::eval::Prepare(code, certa::models::ModelKind::kDitto, clean);
  auto pairs = certa::eval::ExplainedPairs(*clean_setup, clean);
  std::vector<CertaResult> reference;
  {
    certa::core::CertaExplainer explainer(
        clean_setup->context, certa::eval::CertaOptionsFor(clean));
    for (const auto& pair : pairs) {
      reference.push_back(explainer.Explain(
          clean_setup->dataset.left.record(pair.left_index),
          clean_setup->dataset.right.record(pair.right_index)));
    }
  }

  certa::TablePrinter table({"Faults", "Budget", "Non-empty", "L1 drift",
                             "C/D/T", "Calls", "Retries", "Failures"});
  for (double fault_rate : fault_rates) {
    certa::eval::HarnessOptions cell = base;
    cell.fault_rate = fault_rate;
    // One setup per fault rate (training dominates); budgets reuse it.
    auto setup = fault_rate == 0.0
                     ? nullptr
                     : certa::eval::Prepare(
                           code, certa::models::ModelKind::kDitto, cell);
    for (long long budget : budgets) {
      cell.budget = budget;
      // Transient faults fire on each pair's first attempts *per
      // injector*; re-arm them so every cell sees the same fault plan.
      if (setup != nullptr) setup->faulty->ResetAttempts();
      // Any non-default knob enables the resilience layer, so the
      // fault-free unlimited cell doubles as the decorator-overhead
      // check: its results must match the reference exactly.
      certa::core::CertaExplainer::Options options =
          certa::eval::CertaOptionsFor(cell);
      options.resilience.enabled = true;
      const certa::eval::Setup& active =
          fault_rate == 0.0 ? *clean_setup : *setup;
      certa::core::CertaExplainer explainer(active.context, options);

      int non_empty = 0;
      int reference_non_empty = 0;
      double drift = 0.0;
      long long complete = 0, degraded = 0, truncated = 0;
      long long calls = 0, retries = 0, failures = 0;
      for (size_t i = 0; i < pairs.size(); ++i) {
        CertaResult result = explainer.Explain(
            active.dataset.left.record(pairs[i].left_index),
            active.dataset.right.record(pairs[i].right_index));
        if (NonEmpty(reference[i])) {
          ++reference_non_empty;
          if (NonEmpty(result)) ++non_empty;
        }
        drift += SaliencyL1(result, reference[i]);
        switch (result.status) {
          case ExplainStatus::kComplete: ++complete; break;
          case ExplainStatus::kDegraded: ++degraded; break;
          case ExplainStatus::kTruncated: ++truncated; break;
        }
        for (const certa::core::PhaseResilience* phase :
             {&result.triangle_phase, &result.lattice_phase,
              &result.cf_phase}) {
          calls += phase->calls;
          retries += phase->retries;
          failures += phase->failures;
        }
      }
      double coverage =
          reference_non_empty > 0
              ? 100.0 * non_empty / reference_non_empty
              : 100.0;
      table.AddRow({certa::FormatDouble(fault_rate, 2),
                    budget == 0 ? "inf" : std::to_string(budget),
                    certa::FormatDouble(coverage, 1) + "%",
                    certa::FormatDouble(drift / pairs.size(), 3),
                    std::to_string(complete) + "/" + std::to_string(degraded) +
                        "/" + std::to_string(truncated),
                    std::to_string(calls), std::to_string(retries),
                    std::to_string(failures)});
    }
  }

  certa::PrintBanner(std::cout,
                     "Resilience — CERTA under injected matcher faults and "
                     "model-call budgets (AB, Ditto)");
  table.Print(std::cout);
  std::cout << "\n[resilience] total "
            << certa::FormatDouble(stopwatch.ElapsedSeconds(), 1) << "s\n";
  return 0;
}
