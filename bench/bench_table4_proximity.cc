// Reproduces Table 4: Proximity of counterfactual explanations (mean
// attribute-wise similarity of counterfactuals to the original input;
// higher is better) for CERTA, DiCE, SHAP-C and LIME-C.

#include "cf_grid.h"

int main() {
  certa_bench::RunCfGrid(
      "Table 4 — Proximity (higher = better)",
      [](const certa::eval::CfAggregate& a) { return a.proximity; }, 2);
  return 0;
}
