// Reproduces Tables 9-10: the effect on every explanation metric of
// forcing CERTA to use *only* data-augmentation triangles, relative to
// the default (augmentation only on shortage). One table per model
// (Table 9: DeepMatcher, Table 10: Ditto), reporting
//   metric(only-augmented) - metric(default)
// for Proximity, Sparsity, Diversity, Faithfulness and Confidence
// Indication on BA and FZ. The paper finds the deltas are ~0 or mildly
// positive: augmentation does not hurt.

#include <iostream>

#include "core/certa_explainer.h"
#include "data/benchmarks.h"
#include "eval/cf_metrics.h"
#include "eval/harness.h"
#include "eval/saliency_metrics.h"
#include "util/stopwatch.h"
#include "util/string_utils.h"
#include "util/table_printer.h"

namespace {

struct MetricRow {
  double proximity = 0.0;
  double sparsity = 0.0;
  double diversity = 0.0;
  double faithfulness = 0.0;
  double confidence_indication = 0.0;
};

MetricRow RunVariant(const certa::eval::Setup& setup,
                     const std::vector<certa::data::LabeledPair>& pairs,
                     bool only_augmentation,
                     const certa::eval::HarnessOptions& options) {
  certa::core::CertaExplainer::Options certa_options =
      certa::eval::CertaOptionsFor(options);
  certa_options.only_augmentation = only_augmentation;
  certa::core::CertaExplainer explainer(setup.context, certa_options);

  std::vector<certa::explain::SaliencyExplanation> explanations;
  certa::eval::CfAggregator aggregator;
  for (const auto& pair : pairs) {
    const auto& u = setup.dataset.left.record(pair.left_index);
    const auto& v = setup.dataset.right.record(pair.right_index);
    certa::core::CertaResult result = explainer.Explain(u, v);
    explanations.push_back(result.saliency);
    aggregator.Add(result.counterfactuals, u, v);
  }
  certa::eval::CfAggregate aggregate = aggregator.Result();
  MetricRow row;
  row.proximity = aggregate.proximity;
  row.sparsity = aggregate.sparsity;
  row.diversity = aggregate.diversity;
  row.faithfulness =
      certa::eval::Faithfulness(setup.context, pairs, setup.dataset.left,
                                setup.dataset.right, explanations);
  row.confidence_indication = certa::eval::ConfidenceIndication(
      setup.context, pairs, setup.dataset.left, setup.dataset.right,
      explanations);
  return row;
}

void RunModel(certa::models::ModelKind kind, const std::string& table_name,
              const certa::eval::HarnessOptions& options) {
  certa::TablePrinter table({"Dataset", "Proximity", "Sparsity",
                             "Diversity", "Faithfulness", "CI"});
  for (const std::string& code : {std::string("BA"), std::string("FZ")}) {
    auto setup = certa::eval::Prepare(code, kind, options);
    auto pairs = certa::eval::ExplainedPairs(*setup, options);
    MetricRow forced = RunVariant(*setup, pairs, true, options);
    MetricRow normal = RunVariant(*setup, pairs, false, options);
    table.AddRow(code,
                 {forced.proximity - normal.proximity,
                  forced.sparsity - normal.sparsity,
                  forced.diversity - normal.diversity,
                  forced.faithfulness - normal.faithfulness,
                  forced.confidence_indication -
                      normal.confidence_indication},
                 3);
  }
  certa::PrintBanner(std::cout,
                     table_name + " — Metric deltas (augmented-only minus "
                                  "default), " +
                         certa::models::ModelKindName(kind));
  table.Print(std::cout);
}

}  // namespace

int main() {
  certa::Stopwatch stopwatch;
  certa::eval::HarnessOptions options = certa::eval::OptionsFromEnv();
  RunModel(certa::models::ModelKind::kDeepMatcher, "Table 9", options);
  RunModel(certa::models::ModelKind::kDitto, "Table 10", options);
  std::cout << "\n[table9-10] total "
            << certa::FormatDouble(stopwatch.ElapsedSeconds(), 1) << "s\n";
  return 0;
}
