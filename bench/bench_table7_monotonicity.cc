// Reproduces Table 7: the cost/accuracy trade-off of the monotone
// classification assumption. For each lattice CERTA reports the
// expected prediction count (2^l - 2), the predictions actually
// performed under flip propagation, the savings, and the error rate —
// the fraction of *saved* (inferred) predictions whose monotone outcome
// disagrees with the model's actual outcome (audited by re-running the
// model on every inferred node). Averages are per lattice, across all
// three classifiers.

#include <iostream>

#include "core/certa_explainer.h"
#include "data/benchmarks.h"
#include "eval/harness.h"
#include "util/stopwatch.h"
#include "util/string_utils.h"
#include "util/table_printer.h"

int main() {
  certa::Stopwatch stopwatch;
  certa::eval::HarnessOptions options = certa::eval::OptionsFromEnv();
  const std::vector<std::string> datasets = {"AB", "BA", "WA", "DDS", "IA"};

  certa::TablePrinter table({"Dataset", "Attributes", "Expected",
                             "Performed", "Saved", "Error rate"});
  for (const std::string& code : datasets) {
    long long expected = 0;
    long long performed = 0;
    long long errors = 0;
    long long lattices = 0;
    int attributes = 0;
    for (certa::models::ModelKind kind : certa::models::AllModelKinds()) {
      auto setup = certa::eval::Prepare(code, kind, options);
      attributes = setup->dataset.left.schema().size();
      auto pairs = certa::eval::ExplainedPairs(*setup, options);
      certa::core::CertaExplainer::Options certa_options =
          certa::eval::CertaOptionsFor(options);
      certa_options.audit_inferences = true;
      certa::core::CertaExplainer explainer(setup->context, certa_options);
      for (const auto& pair : pairs) {
        certa::core::CertaResult result = explainer.Explain(
            setup->dataset.left.record(pair.left_index),
            setup->dataset.right.record(pair.right_index));
        expected += result.predictions_expected;
        performed += result.predictions_performed;
        errors += result.inference_errors;
        lattices += result.triangles_used;
      }
    }
    if (lattices == 0) continue;
    double saved = static_cast<double>(expected - performed) / lattices;
    table.AddRow(code,
                 {static_cast<double>(attributes),
                  static_cast<double>(expected) / lattices,
                  static_cast<double>(performed) / lattices, saved,
                  saved > 0.0
                      ? static_cast<double>(errors) / (expected - performed)
                      : 0.0},
                 2);
  }
  certa::PrintBanner(std::cout,
                     "Table 7 — Per-lattice predictions: expected vs "
                     "performed under the monotonicity assumption");
  table.Print(std::cout);
  std::cout << "\n[table7] total "
            << certa::FormatDouble(stopwatch.ElapsedSeconds(), 1) << "s\n";
  return 0;
}
