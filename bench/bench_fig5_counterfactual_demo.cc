// Reproduces Fig. 5: counterfactual explanations by CERTA and DiCE for
// a wrong DeepER Non-Match prediction on Abt-Buy. Prints the modified
// attribute values and the matching score of the modified pair — a
// score above 0.5 means the explanation actually flips the prediction.

#include <iostream>

#include "data/benchmarks.h"
#include "eval/harness.h"
#include "util/string_utils.h"

namespace {

void PrintExample(const certa::eval::Setup& setup,
                  const std::string& method,
                  const certa::explain::CounterfactualExample& example,
                  const certa::data::Record& u, const certa::data::Record& v) {
  std::cout << method << " (score "
            << certa::FormatDouble(
                   setup.context.model->Score(example.left, example.right), 3)
            << "), changed:";
  for (const auto& ref : example.changed_attributes) {
    std::cout << " "
              << certa::explain::QualifiedAttributeName(
                     setup.dataset.left.schema(),
                     setup.dataset.right.schema(), ref);
  }
  std::cout << "\n";
  for (int a = 0; a < setup.dataset.left.schema().size(); ++a) {
    bool changed = example.left.values[a] != u.values[a];
    std::cout << "  L_" << setup.dataset.left.schema().name(a) << " = "
              << example.left.value(a) << (changed ? "   <== changed" : "")
              << "\n";
  }
  for (int a = 0; a < setup.dataset.right.schema().size(); ++a) {
    bool changed = example.right.values[a] != v.values[a];
    std::cout << "  R_" << setup.dataset.right.schema().name(a) << " = "
              << example.right.value(a) << (changed ? "   <== changed" : "")
              << "\n";
  }
}

}  // namespace

int main() {
  certa::eval::HarnessOptions options = certa::eval::OptionsFromEnv();
  auto setup = certa::eval::Prepare("AB", certa::models::ModelKind::kDeepEr,
                                    options);
  // A true match that DeepER scores as Non-Match, like the paper's
  // <u1, v1>; fall back to the lowest-scored true match.
  const certa::data::LabeledPair* target = nullptr;
  double lowest = 2.0;
  for (const auto& pair : setup->dataset.test) {
    if (pair.label != 1) continue;
    double score = setup->context.model->Score(
        setup->dataset.left.record(pair.left_index),
        setup->dataset.right.record(pair.right_index));
    if (score < lowest) {
      lowest = score;
      target = &pair;
    }
  }
  if (target == nullptr) {
    std::cout << "(no true match in the AB test split)\n";
    return 0;
  }
  const auto& u = setup->dataset.left.record(target->left_index);
  const auto& v = setup->dataset.right.record(target->right_index);
  std::cout << "\n=== Fig. 5 — Counterfactual explanations (DeepER on AB) "
               "===\n";
  std::cout << "original score: " << certa::FormatDouble(lowest, 3)
            << " (label = Match)\noriginal pair:\n";
  for (int a = 0; a < setup->dataset.left.schema().size(); ++a) {
    std::cout << "  L_" << setup->dataset.left.schema().name(a) << " = "
              << u.value(a) << "\n";
  }
  for (int a = 0; a < setup->dataset.right.schema().size(); ++a) {
    std::cout << "  R_" << setup->dataset.right.schema().name(a) << " = "
              << v.value(a) << "\n";
  }
  for (const std::string& method :
       {std::string("CERTA"), std::string("DiCE")}) {
    auto explainer = certa::eval::MakeCfExplainer(method, *setup, options);
    auto examples = explainer->ExplainCounterfactual(u, v);
    std::cout << "\n";
    if (examples.empty()) {
      std::cout << method << ": no counterfactual found\n";
      continue;
    }
    PrintExample(*setup, method, examples.front(), u, v);
  }
  return 0;
}
