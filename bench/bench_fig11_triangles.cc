// Reproduces Fig. 11: how CERTA's explanation quality depends on the
// number of open triangles τ. For each of the paper's four datasets
// (WA, AB, DDA, IA), every reported measure is averaged across the
// three classifiers at each τ; the paper's finding is convergence for
// τ over ~75-80. Panels: (a) avg probability of sufficiency, (b) avg
// probability of necessity, (c) Confidence Indication, (d)
// Faithfulness, (e) Proximity, (f) Sparsity, (g) Diversity.

#include <iostream>
#include <vector>

#include "core/certa_explainer.h"
#include "data/benchmarks.h"
#include "eval/cf_metrics.h"
#include "eval/harness.h"
#include "eval/saliency_metrics.h"
#include "util/stopwatch.h"
#include "util/string_utils.h"
#include "util/table_printer.h"

namespace {

struct SweepPoint {
  double sufficiency = 0.0;
  double necessity = 0.0;
  double confidence_indication = 0.0;
  double faithfulness = 0.0;
  double proximity = 0.0;
  double sparsity = 0.0;
  double diversity = 0.0;
};

SweepPoint RunCell(const certa::eval::Setup& setup,
                   const std::vector<certa::data::LabeledPair>& pairs,
                   int tau, const certa::eval::HarnessOptions& options) {
  certa::core::CertaExplainer::Options certa_options =
      certa::eval::CertaOptionsFor(options);
  certa_options.num_triangles = tau;
  certa::core::CertaExplainer explainer(setup.context, certa_options);

  SweepPoint point;
  std::vector<certa::explain::SaliencyExplanation> explanations;
  certa::eval::CfAggregator aggregator;
  double sufficiency_sum = 0.0;
  double necessity_sum = 0.0;
  for (const auto& pair : pairs) {
    const auto& u = setup.dataset.left.record(pair.left_index);
    const auto& v = setup.dataset.right.record(pair.right_index);
    certa::core::CertaResult result = explainer.Explain(u, v);
    explanations.push_back(result.saliency);
    aggregator.Add(result.counterfactuals, u, v);
    sufficiency_sum += result.best_sufficiency;
    std::vector<double> flat = result.saliency.Flattened();
    double mean = 0.0;
    for (double score : flat) mean += score;
    necessity_sum += flat.empty() ? 0.0 : mean / flat.size();
  }
  point.sufficiency = sufficiency_sum / pairs.size();
  point.necessity = necessity_sum / pairs.size();
  point.confidence_indication = certa::eval::ConfidenceIndication(
      setup.context, pairs, setup.dataset.left, setup.dataset.right,
      explanations);
  point.faithfulness =
      certa::eval::Faithfulness(setup.context, pairs, setup.dataset.left,
                                setup.dataset.right, explanations);
  certa::eval::CfAggregate aggregate = aggregator.Result();
  point.proximity = aggregate.proximity;
  point.sparsity = aggregate.sparsity;
  point.diversity = aggregate.diversity;
  return point;
}

}  // namespace

int main() {
  certa::Stopwatch stopwatch;
  certa::eval::HarnessOptions options = certa::eval::OptionsFromEnv();
  const std::vector<std::string> datasets = {"WA", "AB", "DDA", "IA"};
  const std::vector<int> taus = {10, 25, 50, 75, 100, 125};

  for (const std::string& code : datasets) {
    certa::TablePrinter table({"tau", "P(suff)", "P(nec)", "CI",
                               "Faithfulness", "Proximity", "Sparsity",
                               "Diversity"});
    // Prepare one setup per model; sweep τ on all of them.
    std::vector<std::unique_ptr<certa::eval::Setup>> setups;
    for (certa::models::ModelKind kind : certa::models::AllModelKinds()) {
      setups.push_back(certa::eval::Prepare(code, kind, options));
    }
    for (int tau : taus) {
      SweepPoint mean;
      for (const auto& setup : setups) {
        auto pairs = certa::eval::ExplainedPairs(*setup, options);
        SweepPoint point = RunCell(*setup, pairs, tau, options);
        mean.sufficiency += point.sufficiency;
        mean.necessity += point.necessity;
        mean.confidence_indication += point.confidence_indication;
        mean.faithfulness += point.faithfulness;
        mean.proximity += point.proximity;
        mean.sparsity += point.sparsity;
        mean.diversity += point.diversity;
      }
      double n = static_cast<double>(setups.size());
      table.AddRow(std::to_string(tau),
                   {mean.sufficiency / n, mean.necessity / n,
                    mean.confidence_indication / n, mean.faithfulness / n,
                    mean.proximity / n, mean.sparsity / n,
                    mean.diversity / n},
                   3);
    }
    certa::PrintBanner(std::cout,
                       "Fig. 11 — CERTA metrics vs number of triangles, "
                       "dataset " +
                           code + " (average of 3 classifiers)");
    table.Print(std::cout);
  }
  std::cout << "\n[fig11] total "
            << certa::FormatDouble(stopwatch.ElapsedSeconds(), 1) << "s\n";
  return 0;
}
