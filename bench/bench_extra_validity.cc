// Extension experiment (paper footnote 6): Validity — the fraction of
// returned counterfactual examples that actually flip the prediction.
// The paper drops this metric from its headline tables because CERTA's
// examples flip by construction while DiCE also returns best-effort
// non-flipping examples; this bench quantifies exactly that asymmetry.

#include <iostream>

#include "data/benchmarks.h"
#include "eval/harness.h"
#include "eval/validity.h"
#include "util/stopwatch.h"
#include "util/string_utils.h"
#include "util/table_printer.h"

int main() {
  certa::Stopwatch stopwatch;
  certa::eval::HarnessOptions options = certa::eval::OptionsFromEnv();
  certa::TablePrinter table({"Model", "CERTA", "DiCE", "SHAP-C",
                             "LIME-C"});
  for (certa::models::ModelKind kind : certa::models::AllModelKinds()) {
    std::vector<double> sums(certa::eval::CfMethodNames().size(), 0.0);
    int cells = 0;
    for (const std::string& code : certa::data::BenchmarkCodes()) {
      auto setup = certa::eval::Prepare(code, kind, options);
      auto pairs = certa::eval::ExplainedPairs(*setup, options);
      const auto& methods = certa::eval::CfMethodNames();
      for (size_t m = 0; m < methods.size(); ++m) {
        auto explainer =
            certa::eval::MakeCfExplainer(methods[m], *setup, options);
        certa::eval::ValidityAggregator aggregator;
        for (const auto& pair : pairs) {
          const auto& u = setup->dataset.left.record(pair.left_index);
          const auto& v = setup->dataset.right.record(pair.right_index);
          aggregator.Add(*setup->context.model,
                         explainer->ExplainCounterfactual(u, v), u, v);
        }
        sums[m] += aggregator.Result();
      }
      ++cells;
    }
    std::vector<double> row;
    for (double sum : sums) row.push_back(sum / cells);
    table.AddRow(certa::models::ModelKindName(kind), row, 3);
  }
  certa::PrintBanner(std::cout,
                     "Extra — Validity of counterfactual examples "
                     "(fraction that actually flips; paper footnote 6)");
  table.Print(std::cout);
  std::cout << "\n[extra-validity] total "
            << certa::FormatDouble(stopwatch.ElapsedSeconds(), 1) << "s\n";
  return 0;
}
