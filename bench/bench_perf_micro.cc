// Micro-benchmarks (google-benchmark) for the performance-critical
// pieces, including the DESIGN.md ablation: lattice tagging with the
// monotone-propagation optimization vs exhaustive enumeration, which is
// the paper's Sect. 4/5.6 efficiency claim in isolation.

#include <benchmark/benchmark.h>

#include <memory>

#include "core/certa_explainer.h"
#include "core/lattice.h"
#include "data/benchmarks.h"
#include "eval/harness.h"
#include "text/hashing_vectorizer.h"
#include "text/similarity.h"

namespace {

// --- Lattice tagging: monotone propagation vs exhaustive -------------
//
// The flip oracle simulates a model invocation (a few microseconds of
// feature work); the ablation measures how much of that cost the
// monotone propagation avoids. With a free oracle both variants would
// be bookkeeping-bound and the comparison meaningless.

double SimulatedModelCall(certa::explain::AttrMask mask) {
  double x = 1.0 + static_cast<double>(mask);
  for (int i = 0; i < 120; ++i) {
    x = x * 1.0000001 + 0.5 / x;
  }
  return x;
}

void BM_LatticeTagMonotone(benchmark::State& state) {
  const int attributes = static_cast<int>(state.range(0));
  certa::core::Lattice lattice(attributes);
  // Flip once any of the two lowest bits is present (a typical MFA of
  // two singletons), so propagation prunes most of the lattice.
  auto flips = [](certa::explain::AttrMask mask) {
    benchmark::DoNotOptimize(SimulatedModelCall(mask));
    return (mask & 3u) != 0u;
  };
  for (auto _ : state) {
    auto tags = lattice.Tag(flips, /*assume_monotone=*/true);
    benchmark::DoNotOptimize(tags.performed);
  }
}
BENCHMARK(BM_LatticeTagMonotone)->Arg(3)->Arg(5)->Arg(8)->Arg(12);

void BM_LatticeTagExhaustive(benchmark::State& state) {
  const int attributes = static_cast<int>(state.range(0));
  certa::core::Lattice lattice(attributes);
  auto flips = [](certa::explain::AttrMask mask) {
    benchmark::DoNotOptimize(SimulatedModelCall(mask));
    return (mask & 3u) != 0u;
  };
  for (auto _ : state) {
    auto tags = lattice.Tag(flips, /*assume_monotone=*/false);
    benchmark::DoNotOptimize(tags.performed);
  }
}
BENCHMARK(BM_LatticeTagExhaustive)->Arg(3)->Arg(5)->Arg(8)->Arg(12);

// --- String similarity kernels ----------------------------------------

void BM_Levenshtein(benchmark::State& state) {
  std::string a = "sony bravia theater black micro system davis50b";
  std::string b = "sony bravia dav-is50 / b home theater system";
  for (auto _ : state) {
    benchmark::DoNotOptimize(certa::text::LevenshteinSimilarity(a, b));
  }
}
BENCHMARK(BM_Levenshtein);

void BM_JaroWinkler(benchmark::State& state) {
  std::string a = "altec lansing inmotion";
  std::string b = "altec lansing inmotion im600";
  for (auto _ : state) {
    benchmark::DoNotOptimize(certa::text::JaroWinklerSimilarity(a, b));
  }
}
BENCHMARK(BM_JaroWinkler);

void BM_AttributeSimilarity(benchmark::State& state) {
  std::string a = "sony bravia theater black micro system davis50b";
  std::string b = "sony bravia dav-is50 / b home theater system";
  for (auto _ : state) {
    benchmark::DoNotOptimize(certa::text::AttributeSimilarity(a, b));
  }
}
BENCHMARK(BM_AttributeSimilarity);

// --- Hashing vectorizer ------------------------------------------------

void BM_HashingVectorizer(benchmark::State& state) {
  certa::text::HashingVectorizer vectorizer(96);
  std::vector<std::string> tokens = {"sony",  "bravia", "theater",
                                     "black", "micro",  "system",
                                     "davis50b"};
  for (auto _ : state) {
    benchmark::DoNotOptimize(vectorizer.TransformNormalized(tokens));
  }
}
BENCHMARK(BM_HashingVectorizer);

// --- Model scoring and full CERTA explanations -------------------------

struct Fixture {
  std::unique_ptr<certa::eval::Setup> setup;
  Fixture() {
    certa::eval::HarnessOptions options;
    setup = certa::eval::Prepare("AB", certa::models::ModelKind::kDitto,
                                 options);
  }
};

Fixture& GetFixture() {
  static Fixture* fixture = new Fixture();
  return *fixture;
}

void BM_ModelScore(benchmark::State& state) {
  Fixture& fixture = GetFixture();
  const auto& pair = fixture.setup->dataset.test.front();
  const auto& u = fixture.setup->dataset.left.record(pair.left_index);
  const auto& v = fixture.setup->dataset.right.record(pair.right_index);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fixture.setup->model->Score(u, v));
  }
}
BENCHMARK(BM_ModelScore);

void BM_CertaExplainCached(benchmark::State& state) {
  // Warm-cache regime: how the evaluation harness actually runs, where
  // repeated perturbations hit the CachingMatcher.
  Fixture& fixture = GetFixture();
  certa::core::CertaExplainer::Options options;
  options.num_triangles = static_cast<int>(state.range(0));
  certa::core::CertaExplainer explainer(fixture.setup->context, options);
  const auto& pair = fixture.setup->dataset.test.front();
  const auto& u = fixture.setup->dataset.left.record(pair.left_index);
  const auto& v = fixture.setup->dataset.right.record(pair.right_index);
  for (auto _ : state) {
    certa::core::CertaResult result = explainer.Explain(u, v);
    benchmark::DoNotOptimize(result.triangles_used);
  }
}
BENCHMARK(BM_CertaExplainCached)->Arg(10)->Arg(100)->Unit(
    benchmark::kMillisecond);

void BM_CertaExplainUncached(benchmark::State& state) {
  // Cold regime: every perturbation pays a real model invocation, so
  // the cost scales with τ and with the monotone savings.
  Fixture& fixture = GetFixture();
  certa::explain::ExplainContext raw_context{
      fixture.setup->model.get(), &fixture.setup->dataset.left,
      &fixture.setup->dataset.right};
  certa::core::CertaExplainer::Options options;
  options.num_triangles = static_cast<int>(state.range(0));
  certa::core::CertaExplainer explainer(raw_context, options);
  const auto& pair = fixture.setup->dataset.test.front();
  const auto& u = fixture.setup->dataset.left.record(pair.left_index);
  const auto& v = fixture.setup->dataset.right.record(pair.right_index);
  for (auto _ : state) {
    certa::core::CertaResult result = explainer.Explain(u, v);
    benchmark::DoNotOptimize(result.triangles_used);
  }
}
BENCHMARK(BM_CertaExplainUncached)->Arg(10)->Arg(50)->Arg(100)->Unit(
    benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
