// Micro-benchmarks (google-benchmark) for the performance-critical
// pieces, including the DESIGN.md ablation: lattice tagging with the
// monotone-propagation optimization vs exhaustive enumeration, which is
// the paper's Sect. 4/5.6 efficiency claim in isolation.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/certa_explainer.h"
#include "core/lattice.h"
#include "data/benchmarks.h"
#include "eval/harness.h"
#include "explain/json_export.h"
#include "text/hashing_vectorizer.h"
#include "text/simd.h"
#include "text/similarity.h"
#include "util/json_writer.h"
#include "util/random.h"

namespace {

// --- Lattice tagging: monotone propagation vs exhaustive -------------
//
// The flip oracle simulates a model invocation (a few microseconds of
// feature work); the ablation measures how much of that cost the
// monotone propagation avoids. With a free oracle both variants would
// be bookkeeping-bound and the comparison meaningless.

double SimulatedModelCall(certa::explain::AttrMask mask) {
  double x = 1.0 + static_cast<double>(mask);
  for (int i = 0; i < 120; ++i) {
    x = x * 1.0000001 + 0.5 / x;
  }
  return x;
}

void BM_LatticeTagMonotone(benchmark::State& state) {
  const int attributes = static_cast<int>(state.range(0));
  certa::core::Lattice lattice(attributes);
  // Flip once any of the two lowest bits is present (a typical MFA of
  // two singletons), so propagation prunes most of the lattice.
  auto flips = [](certa::explain::AttrMask mask) {
    benchmark::DoNotOptimize(SimulatedModelCall(mask));
    return (mask & 3u) != 0u;
  };
  for (auto _ : state) {
    auto tags = lattice.Tag(flips, /*assume_monotone=*/true);
    benchmark::DoNotOptimize(tags.performed);
  }
}
BENCHMARK(BM_LatticeTagMonotone)->Arg(3)->Arg(5)->Arg(8)->Arg(12);

void BM_LatticeTagExhaustive(benchmark::State& state) {
  const int attributes = static_cast<int>(state.range(0));
  certa::core::Lattice lattice(attributes);
  auto flips = [](certa::explain::AttrMask mask) {
    benchmark::DoNotOptimize(SimulatedModelCall(mask));
    return (mask & 3u) != 0u;
  };
  for (auto _ : state) {
    auto tags = lattice.Tag(flips, /*assume_monotone=*/false);
    benchmark::DoNotOptimize(tags.performed);
  }
}
BENCHMARK(BM_LatticeTagExhaustive)->Arg(3)->Arg(5)->Arg(8)->Arg(12);

// --- String similarity kernels ----------------------------------------

void BM_Levenshtein(benchmark::State& state) {
  std::string a = "sony bravia theater black micro system davis50b";
  std::string b = "sony bravia dav-is50 / b home theater system";
  for (auto _ : state) {
    benchmark::DoNotOptimize(certa::text::LevenshteinSimilarity(a, b));
  }
}
BENCHMARK(BM_Levenshtein);

void BM_JaroWinkler(benchmark::State& state) {
  std::string a = "altec lansing inmotion";
  std::string b = "altec lansing inmotion im600";
  for (auto _ : state) {
    benchmark::DoNotOptimize(certa::text::JaroWinklerSimilarity(a, b));
  }
}
BENCHMARK(BM_JaroWinkler);

void BM_AttributeSimilarity(benchmark::State& state) {
  std::string a = "sony bravia theater black micro system davis50b";
  std::string b = "sony bravia dav-is50 / b home theater system";
  for (auto _ : state) {
    benchmark::DoNotOptimize(certa::text::AttributeSimilarity(a, b));
  }
}
BENCHMARK(BM_AttributeSimilarity);

// --- Hashing vectorizer ------------------------------------------------

void BM_HashingVectorizer(benchmark::State& state) {
  certa::text::HashingVectorizer vectorizer(96);
  std::vector<std::string> tokens = {"sony",  "bravia", "theater",
                                     "black", "micro",  "system",
                                     "davis50b"};
  for (auto _ : state) {
    benchmark::DoNotOptimize(vectorizer.TransformNormalized(tokens));
  }
}
BENCHMARK(BM_HashingVectorizer);

// --- Model scoring and full CERTA explanations -------------------------

struct Fixture {
  std::unique_ptr<certa::eval::Setup> setup;
  Fixture() {
    certa::eval::HarnessOptions options;
    setup = certa::eval::Prepare("AB", certa::models::ModelKind::kDitto,
                                 options);
  }
};

Fixture& GetFixture() {
  static Fixture* fixture = new Fixture();
  return *fixture;
}

void BM_ModelScore(benchmark::State& state) {
  Fixture& fixture = GetFixture();
  const auto& pair = fixture.setup->dataset.test.front();
  const auto& u = fixture.setup->dataset.left.record(pair.left_index);
  const auto& v = fixture.setup->dataset.right.record(pair.right_index);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fixture.setup->model->Score(u, v));
  }
}
BENCHMARK(BM_ModelScore);

void BM_CertaExplainCached(benchmark::State& state) {
  // Warm-cache regime: how the evaluation harness actually runs, where
  // repeated perturbations hit the CachingMatcher.
  Fixture& fixture = GetFixture();
  certa::core::CertaExplainer::Options options;
  options.num_triangles = static_cast<int>(state.range(0));
  certa::core::CertaExplainer explainer(fixture.setup->context, options);
  const auto& pair = fixture.setup->dataset.test.front();
  const auto& u = fixture.setup->dataset.left.record(pair.left_index);
  const auto& v = fixture.setup->dataset.right.record(pair.right_index);
  for (auto _ : state) {
    certa::core::CertaResult result = explainer.Explain(u, v);
    benchmark::DoNotOptimize(result.triangles_used);
  }
}
BENCHMARK(BM_CertaExplainCached)->Arg(10)->Arg(100)->Unit(
    benchmark::kMillisecond);

void BM_CertaExplainUncached(benchmark::State& state) {
  // Cold regime: every perturbation pays a real model invocation, so
  // the cost scales with τ and with the monotone savings.
  Fixture& fixture = GetFixture();
  certa::explain::ExplainContext raw_context{
      fixture.setup->model.get(), &fixture.setup->dataset.left,
      &fixture.setup->dataset.right};
  certa::core::CertaExplainer::Options options;
  options.num_triangles = static_cast<int>(state.range(0));
  certa::core::CertaExplainer explainer(raw_context, options);
  const auto& pair = fixture.setup->dataset.test.front();
  const auto& u = fixture.setup->dataset.left.record(pair.left_index);
  const auto& v = fixture.setup->dataset.right.record(pair.right_index);
  for (auto _ : state) {
    certa::core::CertaResult result = explainer.Explain(u, v);
    benchmark::DoNotOptimize(result.triangles_used);
  }
}
BENCHMARK(BM_CertaExplainUncached)->Arg(10)->Arg(50)->Arg(100)->Unit(
    benchmark::kMillisecond);

// --- Scalar vs vectorized kernel comparison ----------------------------
//
// Times each simd::scalar kernel against its simd::vec counterpart on a
// fixed deterministic workload and writes the per-kernel speedups to
// BENCH_micro.json (path overridable via CERTA_BENCH_MICRO_JSON). The
// differential tests (tests/simd_kernel_test.cc) prove the two variants
// bit-identical; this measures what the restructuring buys.

namespace simd = certa::text::simd;

std::string RandomWord(certa::Rng* rng, int min_len, int max_len) {
  int len = rng->UniformInt(min_len, max_len);
  std::string s;
  s.reserve(static_cast<size_t>(len));
  for (int i = 0; i < len; ++i) {
    s.push_back(static_cast<char>('a' + rng->UniformInt(0, 25)));
  }
  return s;
}

/// Best-of-reps nanoseconds per call of `fn` (which runs one pass over
/// the whole workload and returns a checksum to defeat DCE).
double TimeKernelNs(const std::function<uint64_t()>& fn, int calls_per_pass) {
  uint64_t sink = fn();  // warm-up
  benchmark::DoNotOptimize(sink);
  const int reps = 5;
  double best = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    auto start = std::chrono::steady_clock::now();
    sink ^= fn();
    auto stop = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(sink);
    double ns = std::chrono::duration<double, std::nano>(stop - start)
                    .count() /
                calls_per_pass;
    if (rep == 0 || ns < best) best = ns;
  }
  return best;
}

struct KernelRow {
  const char* name;
  double scalar_ns = 0.0;
  double vector_ns = 0.0;
};

int WriteKernelSummary() {
  certa::Rng rng(0x5eed);
  std::vector<KernelRow> rows;

  {  // Levenshtein over realistic attribute-length strings (< 64 chars,
     // the Myers bit-parallel window).
    std::vector<std::pair<std::string, std::string>> pairs;
    for (int i = 0; i < 64; ++i) {
      pairs.emplace_back(RandomWord(&rng, 30, 60), RandomWord(&rng, 30, 60));
    }
    auto pass = [&pairs](auto&& kernel) {
      uint64_t sum = 0;
      for (const auto& [a, b] : pairs) {
        sum += static_cast<uint64_t>(kernel(a, b));
      }
      return sum;
    };
    KernelRow row{"levenshtein"};
    row.scalar_ns = TimeKernelNs(
        [&] { return pass(simd::scalar::LevenshteinDistance); },
        static_cast<int>(pairs.size()));
    row.vector_ns = TimeKernelNs(
        [&] { return pass(simd::vec::LevenshteinDistance); },
        static_cast<int>(pairs.size()));
    rows.push_back(row);
  }

  {  // Sorted-u64 intersection at trigram-shingle sizes.
    auto make_sorted = [&rng](size_t n) {
      std::vector<uint64_t> values;
      values.reserve(n);
      for (size_t i = 0; i < n; ++i) values.push_back(rng.UniformUint64(512));
      std::sort(values.begin(), values.end());
      values.erase(std::unique(values.begin(), values.end()), values.end());
      return values;
    };
    std::vector<std::pair<std::vector<uint64_t>, std::vector<uint64_t>>>
        sets;
    for (int i = 0; i < 64; ++i) {
      sets.emplace_back(make_sorted(200), make_sorted(200));
    }
    auto pass = [&sets](auto&& kernel) {
      uint64_t sum = 0;
      for (const auto& [a, b] : sets) {
        sum += kernel(a.data(), a.size(), b.data(), b.size());
      }
      return sum;
    };
    KernelRow row{"sorted_intersection"};
    row.scalar_ns = TimeKernelNs(
        [&] { return pass(simd::scalar::SortedIntersectionCount); },
        static_cast<int>(sets.size()));
    row.vector_ns = TimeKernelNs(
        [&] { return pass(simd::vec::SortedIntersectionCount); },
        static_cast<int>(sets.size()));
    rows.push_back(row);
  }

  {  // Token-count cosine at serialized-record lengths.
    std::vector<std::pair<std::vector<std::string>, std::vector<std::string>>>
        bags;
    for (int i = 0; i < 32; ++i) {
      std::vector<std::string> a;
      std::vector<std::string> b;
      for (int t = 0; t < 40; ++t) a.push_back(RandomWord(&rng, 2, 8));
      for (int t = 0; t < 40; ++t) b.push_back(RandomWord(&rng, 2, 8));
      bags.emplace_back(std::move(a), std::move(b));
    }
    auto pass = [&bags](auto&& kernel) {
      uint64_t sum = 0;
      for (const auto& [a, b] : bags) {
        sum += static_cast<uint64_t>(kernel(a, b) * 1e6);
      }
      return sum;
    };
    KernelRow row{"cosine_token"};
    row.scalar_ns = TimeKernelNs(
        [&] { return pass(simd::scalar::CosineTokenSimilarity); },
        static_cast<int>(bags.size()));
    row.vector_ns = TimeKernelNs(
        [&] { return pass(simd::vec::CosineTokenSimilarity); },
        static_cast<int>(bags.size()));
    rows.push_back(row);
  }

  {  // 4-gram window hashing over attribute-sized values.
    std::vector<std::string> values;
    for (int i = 0; i < 64; ++i) {
      std::string padded(1, ' ');
      padded += RandomWord(&rng, 30, 60);
      padded.push_back(' ');
      values.push_back(std::move(padded));
    }
    auto pass = [&values](auto&& kernel) {
      uint64_t sum = 0;
      std::vector<uint64_t> hashes;
      for (const std::string& padded : values) {
        hashes.clear();
        kernel(padded, 4, 0xD1770, &hashes);
        for (uint64_t h : hashes) sum ^= h;
      }
      return sum;
    };
    KernelRow row{"ngram_window_hash"};
    row.scalar_ns = TimeKernelNs(
        [&] { return pass(simd::scalar::AppendNgramWindowHashes); },
        static_cast<int>(values.size()));
    row.vector_ns = TimeKernelNs(
        [&] { return pass(simd::vec::AppendNgramWindowHashes); },
        static_cast<int>(values.size()));
    rows.push_back(row);
  }

  certa::JsonWriter json;
  json.BeginObject();
  json.Key("benchmark");
  json.String("perf_micro");
  json.Key("kernels_active");
  json.String(simd::ActiveModeName());
  json.Key("kernels");
  json.BeginArray();
  for (const KernelRow& row : rows) {
    json.BeginObject();
    json.Key("name");
    json.String(row.name);
    json.Key("scalar_ns_per_op");
    json.Number(row.scalar_ns);
    json.Key("vector_ns_per_op");
    json.Number(row.vector_ns);
    json.Key("speedup");
    json.Number(row.vector_ns > 0.0 ? row.scalar_ns / row.vector_ns : 0.0);
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();

  const char* path_env = std::getenv("CERTA_BENCH_MICRO_JSON");
  std::string path = path_env != nullptr ? path_env : "BENCH_micro.json";
  if (!certa::explain::SaveJsonFile(path, json.str())) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  std::printf("\n%-20s %12s %12s %8s\n", "kernel", "scalar_ns", "vector_ns",
              "speedup");
  for (const KernelRow& row : rows) {
    std::printf("%-20s %12.1f %12.1f %7.2fx\n", row.name, row.scalar_ns,
                row.vector_ns,
                row.vector_ns > 0.0 ? row.scalar_ns / row.vector_ns : 0.0);
  }
  std::printf("kernel summary written to %s\n", path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return WriteKernelSummary();
}
