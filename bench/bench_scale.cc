// Scale-sensitivity bench for the cross-job prediction store and the
// inverted candidate index (docs/PERSISTENCE.md):
//   1. candidate discovery at 10k/100k/... records — CandidateIndex
//      build cost, per-probe lookup vs the reference linear scan
//      (differential: both mechanisms must return the same set), and
//      end-to-end CertaResult byte-identity with the index on vs off;
//   2. store hit-rate across a simulated restart — two durable runs of
//      the same job spec in different job dirs sharing one ScoreStore;
//      the second run must pay zero fresh model calls and produce a
//      byte-identical result;
//   3. the same reuse across a simulated 2-worker fleet — worker
//      stream 0 pays the scores, worker stream 1 opens the SAME store
//      directory and must serve the whole job from its sibling's
//      stream: zero fresh calls, fleet-wide warm hit_rate == 1.0,
//      every hit a peer hit.
// Prints a table and writes BENCH_scale.json (atomically, through the
// same writer the service uses).
//
// Record counts: repeatable `--records N` flags, or the
// CERTA_BENCH_SCALE_RECORDS env var ("10000,100000"); default
// 10000 + 100000. The explain byte-identity leg is skipped above
// 200k records (training dominates; the set-equality differential
// still covers the index at every size).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include <unistd.h>

#include "core/certa_explainer.h"
#include "data/benchmarks.h"
#include "data/candidate_index.h"
#include "explain/json_export.h"
#include "models/scoring_engine.h"
#include "models/trainer.h"
#include "persist/score_store.h"
#include "service/job_runner.h"
#include "util/json_writer.h"

namespace {

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

double MillisSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

fs::path FreshDir(const std::string& tag) {
  fs::path dir = fs::temp_directory_path() /
                 ("certa_bench_scale_" + tag + "_" +
                  std::to_string(::getpid()));
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

struct IndexLeg {
  long long records_target = 0;
  long long records_actual = 0;
  int probes = 0;
  double build_ms = 0.0;
  double index_ms = 0.0;
  double linear_ms = 0.0;
  double speedup = 0.0;
  bool sets_equal = true;
  bool explain_ran = false;
  bool explain_identical = false;
  double explain_index_ms = 0.0;
  double explain_linear_ms = 0.0;
};

/// One record-count sweep over the DS profile (its right source dwarfs
/// the left one, Scholar-style — the shape the index exists for).
IndexLeg RunIndexLeg(long long records) {
  IndexLeg leg;
  leg.records_target = records;
  const double scale = certa::data::ScaleForRecords("DS", records);
  certa::data::Dataset dataset = certa::data::MakeBenchmark("DS", scale);
  const certa::data::Table& pool = dataset.right;
  leg.records_actual =
      static_cast<long long>(dataset.left.size()) + dataset.right.size();

  Clock::time_point start = Clock::now();
  certa::data::CandidateIndex index(pool);
  leg.build_ms = MillisSince(start);

  // Probes are left-source records striding the table; fewer at the
  // large end (each linear probe is a full O(pool) scan).
  leg.probes = records >= 500'000 ? 8 : records >= 50'000 ? 24 : 64;
  leg.probes = std::min(leg.probes, dataset.left.size());
  std::vector<const certa::data::Record*> probes;
  for (int p = 0; p < leg.probes; ++p) {
    probes.push_back(&dataset.left.record(
        static_cast<int>(static_cast<long long>(p) * dataset.left.size() /
                         leg.probes)));
  }

  std::vector<std::vector<int>> via_index;
  start = Clock::now();
  for (const certa::data::Record* probe : probes) {
    via_index.push_back(index.Candidates(*probe));
  }
  leg.index_ms = MillisSince(start);

  start = Clock::now();
  for (size_t p = 0; p < probes.size(); ++p) {
    if (certa::data::LinearScanCandidates(pool, *probes[p]) !=
        via_index[p]) {
      leg.sets_equal = false;
    }
  }
  leg.linear_ms = MillisSince(start);
  leg.speedup = leg.index_ms > 0.0 ? leg.linear_ms / leg.index_ms : 0.0;

  // End-to-end byte-identity: the same explanation with discovery
  // answered by the index vs the reference scan.
  if (records <= 200'000 && !dataset.test.empty()) {
    leg.explain_ran = true;
    auto model =
        certa::models::TrainMatcher(certa::models::ModelKind::kSvm, dataset);
    const certa::data::LabeledPair& pair = dataset.test[0];
    const certa::data::Record& u = dataset.left.record(pair.left_index);
    const certa::data::Record& v = dataset.right.record(pair.right_index);
    auto run = [&](bool use_index, double* ms) {
      certa::models::ScoringEngine engine(model.get());
      certa::explain::ExplainContext context{&engine, &dataset.left,
                                             &dataset.right};
      certa::core::CertaExplainer::Options options;
      options.num_triangles = 50;
      options.use_candidate_index = use_index;
      certa::core::CertaExplainer explainer(context, options);
      const Clock::time_point t0 = Clock::now();
      certa::core::CertaResult result = explainer.Explain(u, v);
      *ms = MillisSince(t0);
      return certa::core::CertaResultToJson(result, dataset.left.schema(),
                                            dataset.right.schema());
    };
    const std::string with_index = run(true, &leg.explain_index_ms);
    const std::string without = run(false, &leg.explain_linear_ms);
    leg.explain_identical = with_index == without;
  }
  return leg;
}

struct StoreLeg {
  long long run1_fresh = 0;
  long long run2_fresh = 0;
  long long run2_store_hits = 0;
  double hit_rate = 0.0;
  bool results_identical = false;
  double run1_ms = 0.0;
  double run2_ms = 0.0;
};

/// Simulated restart: same spec, two job dirs, one store directory
/// (reopened in between, like a new process would).
StoreLeg RunStoreLeg() {
  StoreLeg leg;
  const fs::path root = FreshDir("store");
  certa::service::JobSpec spec;
  spec.id = "bench";
  spec.dataset = "BA";
  spec.model = "svm";
  spec.pair_index = 1;
  spec.triangles = 200;

  std::string results[2];
  for (int run = 0; run < 2; ++run) {
    certa::persist::ScoreStore store;
    if (!store.Open((root / "store").string())) return leg;
    certa::service::DurableRunOptions options;
    options.store = &store;
    const Clock::time_point start = Clock::now();
    certa::service::JobOutcome outcome = certa::service::RunDurableExplain(
        spec, (root / ("job" + std::to_string(run))).string(), options);
    const double ms = MillisSince(start);
    store.Sync();
    results[run] = outcome.result_json;
    if (run == 0) {
      leg.run1_fresh = outcome.fresh_scores;
      leg.run1_ms = ms;
    } else {
      leg.run2_fresh = outcome.fresh_scores;
      leg.run2_store_hits = outcome.store_hits;
      leg.run2_ms = ms;
      const long long lookups = outcome.fresh_scores + outcome.store_hits;
      leg.hit_rate = lookups > 0 ? static_cast<double>(outcome.store_hits) /
                                       static_cast<double>(lookups)
                                 : 0.0;
    }
  }
  leg.results_identical =
      !results[0].empty() && results[0] == results[1];
  fs::remove_all(root);
  return leg;
}

struct SharedStoreLeg {
  bool opened = false;
  long long cold_fresh = 0;
  long long warm_fresh = 0;
  long long warm_store_hits = 0;
  long long warm_peer_hits = 0;
  double hit_rate = 0.0;
  bool results_identical = false;
  double cold_ms = 0.0;
  double warm_ms = 0.0;
};

/// Simulated 2-worker shared store: stream 0 pays every score, then
/// stream 1 joins the same directory and reruns the spec. The warm run
/// must make ZERO model calls and be served entirely by entries the
/// sibling stream paid for (hit_rate == 1.0, all hits peer hits).
SharedStoreLeg RunSharedStoreLeg() {
  SharedStoreLeg leg;
  const fs::path root = FreshDir("store_shared");
  certa::service::JobSpec spec;
  spec.id = "bench";
  spec.dataset = "BA";
  spec.model = "svm";
  spec.pair_index = 1;
  spec.triangles = 200;

  std::string results[2];
  for (int slot = 0; slot < 2; ++slot) {
    certa::persist::ScoreStore store;
    certa::persist::ScoreStore::Options store_options;
    store_options.stream_slot = slot;
    store_options.exclusive_lock = true;
    if (!store.Open((root / "store").string(), store_options)) return leg;
    leg.opened = true;
    certa::service::DurableRunOptions options;
    options.store = &store;
    const Clock::time_point start = Clock::now();
    certa::service::JobOutcome outcome = certa::service::RunDurableExplain(
        spec, (root / ("job" + std::to_string(slot))).string(), options);
    const double ms = MillisSince(start);
    store.Sync();
    results[slot] = outcome.result_json;
    if (slot == 0) {
      leg.cold_fresh = outcome.fresh_scores;
      leg.cold_ms = ms;
    } else {
      leg.warm_fresh = outcome.fresh_scores;
      leg.warm_store_hits = outcome.store_hits;
      leg.warm_peer_hits = outcome.store_peer_hits;
      leg.warm_ms = ms;
      const long long lookups = outcome.fresh_scores + outcome.store_hits;
      leg.hit_rate = lookups > 0 ? static_cast<double>(outcome.store_hits) /
                                       static_cast<double>(lookups)
                                 : 0.0;
    }
  }
  leg.results_identical =
      !results[0].empty() && results[0] == results[1];
  fs::remove_all(root);
  return leg;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<long long> record_counts;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--records") == 0) {
      record_counts.push_back(std::atoll(argv[++i]));
    }
  }
  if (const char* env = std::getenv("CERTA_BENCH_SCALE_RECORDS")) {
    for (const char* p = env; *p != '\0';) {
      record_counts.push_back(std::atoll(p));
      while (*p != '\0' && *p != ',') ++p;
      if (*p == ',') ++p;
    }
  }
  if (record_counts.empty()) record_counts = {10'000, 100'000};

  certa::JsonWriter json;
  json.BeginObject();
  json.Key("bench");
  json.String("scale");

  std::printf("candidate discovery at scale (DS profile)\n\n");
  std::printf("%10s %10s %9s %10s %10s %8s %6s %9s\n", "records", "actual",
              "build ms", "index ms", "linear ms", "speedup", "equal",
              "explain");
  bool ok = true;
  json.Key("index");
  json.BeginArray();
  for (long long records : record_counts) {
    const IndexLeg leg = RunIndexLeg(records);
    const char* explain_cell = !leg.explain_ran ? "skipped"
                               : leg.explain_identical ? "identical"
                                                       : "DIFFERS";
    std::printf("%10lld %10lld %9.1f %10.3f %10.1f %7.1fx %6s %9s\n",
                leg.records_target, leg.records_actual, leg.build_ms,
                leg.index_ms, leg.linear_ms, leg.speedup,
                leg.sets_equal ? "yes" : "NO", explain_cell);
    ok = ok && leg.sets_equal && (!leg.explain_ran || leg.explain_identical);
    json.BeginObject();
    json.Key("records_target");
    json.Int(leg.records_target);
    json.Key("records_actual");
    json.Int(leg.records_actual);
    json.Key("probes");
    json.Int(leg.probes);
    json.Key("index_build_ms");
    json.Number(leg.build_ms);
    json.Key("index_lookup_ms");
    json.Number(leg.index_ms);
    json.Key("linear_scan_ms");
    json.Number(leg.linear_ms);
    json.Key("speedup");
    json.Number(leg.speedup);
    json.Key("sets_equal");
    json.Bool(leg.sets_equal);
    json.Key("explain_ran");
    json.Bool(leg.explain_ran);
    json.Key("explain_byte_identical");
    json.Bool(leg.explain_identical);
    json.Key("explain_index_ms");
    json.Number(leg.explain_index_ms);
    json.Key("explain_linear_ms");
    json.Number(leg.explain_linear_ms);
    json.EndObject();
  }
  json.EndArray();

  const StoreLeg store = RunStoreLeg();
  std::printf("\nstore hit-rate across restart (BA, svm, 200 triangles)\n");
  std::printf("  run 1 (cold store): %lld fresh calls, %.1f ms\n",
              store.run1_fresh, store.run1_ms);
  std::printf("  run 2 (warm store): %lld fresh, %lld store hits "
              "(hit rate %.3f), %.1f ms\n",
              store.run2_fresh, store.run2_store_hits, store.hit_rate,
              store.run2_ms);
  std::printf("  results byte-identical: %s\n",
              store.results_identical ? "yes" : "NO");
  ok = ok && store.results_identical && store.run2_fresh == 0;

  json.Key("store");
  json.BeginObject();
  json.Key("run1_fresh_scores");
  json.Int(store.run1_fresh);
  json.Key("run2_fresh_scores");
  json.Int(store.run2_fresh);
  json.Key("run2_store_hits");
  json.Int(store.run2_store_hits);
  json.Key("hit_rate");
  json.Number(store.hit_rate);
  json.Key("results_byte_identical");
  json.Bool(store.results_identical);
  json.Key("run1_ms");
  json.Number(store.run1_ms);
  json.Key("run2_ms");
  json.Number(store.run2_ms);
  json.EndObject();

  // The nightly scale job asserts on this leg: a 2-worker fleet over
  // one shared store must be fully warm on the second stream.
  const SharedStoreLeg shared = RunSharedStoreLeg();
  std::printf("\nshared store across 2 worker streams (BA, svm, "
              "200 triangles)\n");
  std::printf("  stream 0 (cold): %lld fresh calls, %.1f ms\n",
              shared.cold_fresh, shared.cold_ms);
  std::printf("  stream 1 (warm): %lld fresh, %lld store hits "
              "(%lld peer, hit rate %.3f), %.1f ms\n",
              shared.warm_fresh, shared.warm_store_hits,
              shared.warm_peer_hits, shared.hit_rate, shared.warm_ms);
  std::printf("  results byte-identical: %s\n",
              shared.results_identical ? "yes" : "NO");
  ok = ok && shared.opened && shared.results_identical &&
       shared.warm_fresh == 0 && shared.hit_rate == 1.0 &&
       shared.warm_peer_hits > 0 &&
       shared.warm_peer_hits == shared.warm_store_hits;

  json.Key("store_shared");
  json.BeginObject();
  json.Key("cold_fresh_scores");
  json.Int(shared.cold_fresh);
  json.Key("warm_fresh_scores");
  json.Int(shared.warm_fresh);
  json.Key("warm_store_hits");
  json.Int(shared.warm_store_hits);
  json.Key("warm_peer_hits");
  json.Int(shared.warm_peer_hits);
  json.Key("hit_rate");
  json.Number(shared.hit_rate);
  json.Key("results_byte_identical");
  json.Bool(shared.results_identical);
  json.Key("cold_ms");
  json.Number(shared.cold_ms);
  json.Key("warm_ms");
  json.Number(shared.warm_ms);
  json.EndObject();
  json.EndObject();

  const char* path_env = std::getenv("CERTA_BENCH_SCALE_JSON");
  const std::string path =
      path_env != nullptr ? path_env : "BENCH_scale.json";
  if (!certa::explain::SaveJsonFile(path, json.str())) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  std::printf("\nsummary written to %s\n", path.c_str());
  if (!ok) {
    std::fprintf(stderr, "FAIL: differential or identity check failed\n");
    return 1;
  }
  return 0;
}
