// Observability overhead bench (docs/OBSERVABILITY.md):
//   1. end-to-end: the same cached explain run with instrumentation
//      detached vs attached (metrics registry + trace recorder) — the
//      acceptance bar is < 2% median overhead, and the result JSON must
//      be byte-identical either way;
//   2. micro: cost of one counter increment / histogram record, enabled
//      vs disabled (the disabled path is the "zero overhead" claim).
// Prints a table and writes BENCH_obs.json (atomically, through the
// same writer the service uses).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/certa_explainer.h"
#include "data/benchmarks.h"
#include "explain/json_export.h"
#include "models/trainer.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/json_writer.h"

namespace {

using Clock = std::chrono::steady_clock;

double MillisSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

int EnvInt(const char* name, int fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::atoi(value) : fallback;
}

double Median(std::vector<double> values) {
  std::sort(values.begin(), values.end());
  const size_t n = values.size();
  return n % 2 == 1 ? values[n / 2]
                    : 0.5 * (values[n / 2 - 1] + values[n / 2]);
}

}  // namespace

int main() {
  const int triangles = EnvInt("CERTA_BENCH_TRIANGLES", 200);
  const int iters = EnvInt("CERTA_BENCH_ITERS", 7);

  certa::data::Dataset dataset = certa::data::MakeBenchmark("BA");
  auto model =
      certa::models::TrainMatcher(certa::models::ModelKind::kSvm, dataset);
  certa::explain::ExplainContext context{model.get(), &dataset.left,
                                         &dataset.right};
  const certa::data::LabeledPair& pair = dataset.test[1];
  const certa::data::Record& u = dataset.left.record(pair.left_index);
  const certa::data::Record& v = dataset.right.record(pair.right_index);

  // -- 1. end-to-end overhead on the cached regime ----------------------
  // Each iteration is one full cached explain (the lattice phase's
  // repeated probes all hit the run's prediction cache). A fresh
  // explainer per iteration keeps the two variants symmetrical.
  auto run_once = [&](certa::obs::MetricsRegistry* metrics,
                      certa::obs::TraceRecorder* trace, double* ms) {
    certa::core::CertaExplainer::Options options;
    options.num_triangles = triangles;
    options.metrics = metrics;
    options.trace = trace;
    certa::core::CertaExplainer explainer(context, options);
    const Clock::time_point start = Clock::now();
    certa::core::CertaResult result = explainer.Explain(u, v);
    *ms = MillisSince(start);
    return certa::core::CertaResultToJson(result, dataset.left.schema(),
                                          dataset.right.schema());
  };

  double ms = 0.0;
  const std::string baseline_json = run_once(nullptr, nullptr, &ms);  // warm
  std::vector<double> off_ms, on_ms;
  bool identical = true;
  long long trace_events = 0;
  for (int i = 0; i < iters; ++i) {
    if (run_once(nullptr, nullptr, &ms) != baseline_json) identical = false;
    off_ms.push_back(ms);
    certa::obs::MetricsRegistry registry;
    certa::obs::TraceRecorder recorder;
    if (run_once(&registry, &recorder, &ms) != baseline_json) {
      identical = false;
    }
    on_ms.push_back(ms);
    trace_events = static_cast<long long>(recorder.event_count());
  }
  const double median_off = Median(off_ms);
  const double median_on = Median(on_ms);
  const double overhead_pct =
      median_off > 0.0 ? 100.0 * (median_on - median_off) / median_off : 0.0;

  std::printf("observability bench (BA, svm, pair 1, %d triangles, %d iters)\n\n",
              triangles, iters);
  std::printf("%-24s %10s\n", "variant", "median ms");
  std::printf("%-24s %10.2f\n", "obs detached", median_off);
  std::printf("%-24s %10.2f\n", "obs attached", median_on);
  std::printf("%-24s %9.2f%%\n", "overhead", overhead_pct);
  std::printf("%-24s %10s\n", "results byte-identical",
              identical ? "yes" : "NO");

  // -- 2. record-call micro costs ---------------------------------------
  constexpr long long kOps = 5'000'000;
  auto nanos_per_op = [&](certa::obs::MetricsRegistry* registry) {
    certa::obs::Counter* counter = registry->counter("bench.counter");
    const Clock::time_point start = Clock::now();
    for (long long i = 0; i < kOps; ++i) counter->Increment();
    return MillisSince(start) * 1e6 / static_cast<double>(kOps);
  };
  certa::obs::MetricsRegistry enabled_registry;
  certa::obs::MetricsRegistry disabled_registry(/*enabled=*/false);
  const double enabled_ns = nanos_per_op(&enabled_registry);
  const double disabled_ns = nanos_per_op(&disabled_registry);
  certa::obs::Histogram* histogram = enabled_registry.histogram(
      "bench.histogram", certa::obs::LatencyBuckets());
  const Clock::time_point hist_start = Clock::now();
  for (long long i = 0; i < kOps; ++i) {
    histogram->Record(static_cast<double>(i & 1023));
  }
  const double histogram_ns =
      MillisSince(hist_start) * 1e6 / static_cast<double>(kOps);

  std::printf("\nrecord-call cost (%lld ops)\n", kOps);
  std::printf("%-24s %8.1f ns/op\n", "counter (enabled)", enabled_ns);
  std::printf("%-24s %8.1f ns/op\n", "counter (disabled)", disabled_ns);
  std::printf("%-24s %8.1f ns/op\n", "histogram (enabled)", histogram_ns);

  certa::JsonWriter json;
  json.BeginObject();
  json.Key("bench");
  json.String("observability");
  json.Key("triangles");
  json.Int(triangles);
  json.Key("iterations");
  json.Int(iters);
  json.Key("median_ms_obs_off");
  json.Number(median_off);
  json.Key("median_ms_obs_on");
  json.Number(median_on);
  json.Key("overhead_pct");
  json.Number(overhead_pct);
  json.Key("results_byte_identical");
  json.Bool(identical);
  json.Key("trace_events_per_run");
  json.Int(trace_events);
  json.Key("counter_ns_enabled");
  json.Number(enabled_ns);
  json.Key("counter_ns_disabled");
  json.Number(disabled_ns);
  json.Key("histogram_ns_enabled");
  json.Number(histogram_ns);
  json.EndObject();

  const char* path_env = std::getenv("CERTA_BENCH_OBS_JSON");
  const std::string path = path_env != nullptr ? path_env : "BENCH_obs.json";
  if (!certa::explain::SaveJsonFile(path, json.str())) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  std::printf("\nsummary written to %s\n", path.c_str());
  if (!identical) {
    std::fprintf(stderr,
                 "FAIL: results differ with observability attached\n");
    return 1;
  }
  return 0;
}
