// The versioned ExplainRequest contract: one parse → validate →
// serialize path shared by CLI flags, serve job lines, the wire
// protocol, and checkpoints. These tests pin the contract down:
// canonical JSON round-trips exactly, aliases keep old spellings
// working (with deprecation notes), unknown keys and malformed values
// are rejected with clear errors, and inputs from a FUTURE schema
// version are refused outright — never misparsed.

#include "api/explain_request.h"

#include <gtest/gtest.h>

#include "util/json_parser.h"

namespace certa::api {
namespace {

ExplainRequest SampleRequest() {
  ExplainRequest request;
  request.id = "job-7";
  request.dataset = "BA";
  request.data_dir = "/data/dm";
  request.model = "ditto";
  request.pair_index = 3;
  request.triangles = 42;
  request.threads = 4;
  request.seed = 99;
  request.use_cache = false;
  request.budget = 1000;
  request.deadline_ms = 2500;
  request.fault_rate = 0.25;
  return request;
}

TEST(ExplainRequestTest, DefaultsAreValid) {
  ExplainRequest request;
  std::string error;
  EXPECT_TRUE(request.Validate(&error)) << error;
  EXPECT_EQ(request.schema_version, kSchemaVersion);
}

TEST(ExplainRequestTest, JsonRoundTripIsIdentity) {
  const ExplainRequest original = SampleRequest();
  ExplainRequest parsed;
  std::string error;
  ASSERT_TRUE(FromJsonText(original.ToJson(), &parsed, &error)) << error;
  // The canonical serialization of the parse must equal the input's —
  // the definition of one serialize path.
  EXPECT_EQ(parsed.ToJson(), original.ToJson());
  EXPECT_EQ(parsed.id, "job-7");
  EXPECT_EQ(parsed.pair_index, 3);
  EXPECT_EQ(parsed.seed, 99u);
  EXPECT_FALSE(parsed.use_cache);
  EXPECT_DOUBLE_EQ(parsed.fault_rate, 0.25);
}

TEST(ExplainRequestTest, DashAndUnderscoreSpellTheSameKey) {
  ExplainRequest a;
  ExplainRequest b;
  std::string error;
  ASSERT_TRUE(ApplyField("deadline-ms", "1500", &a, &error)) << error;
  ASSERT_TRUE(ApplyField("deadline_ms", "1500", &b, &error)) << error;
  EXPECT_EQ(a.deadline_ms, 1500);
  EXPECT_EQ(a.deadline_ms, b.deadline_ms);
}

TEST(ExplainRequestTest, DeprecatedAliasesStillParse) {
  ExplainRequest request;
  std::string error;
  ASSERT_TRUE(ApplyField("data", "/old/dir", &request, &error)) << error;
  EXPECT_EQ(request.data_dir, "/old/dir");
  ASSERT_TRUE(ApplyField("pair_index", "5", &request, &error)) << error;
  EXPECT_EQ(request.pair_index, 5);
  // ...and announce themselves as deprecated; canonical keys do not.
  EXPECT_FALSE(DeprecationNote("data").empty());
  EXPECT_FALSE(DeprecationNote("pair-index").empty());
  EXPECT_TRUE(DeprecationNote("data_dir").empty());
  EXPECT_TRUE(DeprecationNote("pair").empty());
  EXPECT_TRUE(DeprecationNote("triangles").empty());
}

TEST(ExplainRequestTest, RejectsUnknownKeyAndBadValues) {
  ExplainRequest request;
  std::string error;
  EXPECT_FALSE(ApplyField("quantum", "1", &request, &error));
  EXPECT_NE(error.find("not a known request field"), std::string::npos);
  EXPECT_FALSE(ApplyField("pair", "abc", &request, &error));
  EXPECT_NE(error.find("not an integer"), std::string::npos);
  EXPECT_FALSE(ApplyField("triangles", "1", &request, &error));
  EXPECT_NE(error.find(">= 2"), std::string::npos);
  EXPECT_FALSE(ApplyField("fault-rate", "1.5", &request, &error));
  EXPECT_FALSE(ApplyField("fault-rate", "nan", &request, &error));
}

TEST(ExplainRequestTest, ValidateRejectsUnknownModel) {
  ExplainRequest request = SampleRequest();
  request.model = "gpt";
  std::string error;
  EXPECT_FALSE(request.Validate(&error));
  EXPECT_NE(error.find("unknown model"), std::string::npos);
}

TEST(ExplainRequestTest, FutureSchemaVersionIsRefusedWithClearError) {
  // A v9 request may contain fields this build has never heard of; the
  // reader must say "too new" — not guess, not complain about a field.
  const std::string future =
      "{\"schema_version\":9,\"hyperdrive\":true,\"dataset\":\"AB\"}";
  ExplainRequest request;
  std::string error;
  EXPECT_FALSE(FromJsonText(future, &request, &error));
  EXPECT_NE(error.find("schema_version 9"), std::string::npos) << error;
  EXPECT_NE(error.find("supports <= " + std::to_string(kSchemaVersion)),
            std::string::npos)
      << error;
}

TEST(ExplainRequestTest, FromJsonRejectsUnknownFieldAtCurrentVersion) {
  ExplainRequest request;
  std::string error;
  EXPECT_FALSE(
      FromJsonText("{\"schema_version\":1,\"typo_knob\":3}", &request,
                   &error));
  EXPECT_NE(error.find("typo_knob"), std::string::npos) << error;
}

TEST(ExplainRequestTest, KeyValueLineParsesAtomically) {
  ExplainRequest request;
  request.triangles = 50;
  std::string error;
  // The second token is bad: the request must be left untouched, not
  // half-updated.
  EXPECT_FALSE(
      ParseKeyValueLine("triangles=80 pair=oops", &request, &error));
  EXPECT_EQ(request.triangles, 50);
  ASSERT_TRUE(ParseKeyValueLine("id=j9 dataset=FZ pair=2 cache=0 "
                                "deadline-ms=750",
                                &request, &error))
      << error;
  EXPECT_EQ(request.id, "j9");
  EXPECT_EQ(request.dataset, "FZ");
  EXPECT_EQ(request.pair_index, 2);
  EXPECT_FALSE(request.use_cache);
  EXPECT_EQ(request.deadline_ms, 750);
}

TEST(ExplainRequestTest, ModelIsLowercased) {
  ExplainRequest request;
  std::string error;
  ASSERT_TRUE(ApplyField("model", "DiTTo", &request, &error));
  EXPECT_EQ(request.model, "ditto");
  EXPECT_TRUE(request.Validate(&error)) << error;
}

// ---------------------------------------------------------------------
// The JSON parser underneath the request (and the wire protocol).

TEST(JsonParserTest, ParsesScalarsWithIntegerFidelity) {
  JsonValue value;
  std::string error;
  ASSERT_TRUE(JsonValue::Parse("9007199254740993", &value, &error));
  ASSERT_TRUE(value.is_integer());
  // 2^53 + 1 survives exactly (a double would round it).
  EXPECT_EQ(value.int_value(), 9007199254740993LL);
}

TEST(JsonParserTest, RejectsDuplicateKeys) {
  JsonValue value;
  std::string error;
  EXPECT_FALSE(JsonValue::Parse("{\"a\":1,\"a\":2}", &value, &error));
  EXPECT_NE(error.find("duplicate"), std::string::npos) << error;
}

TEST(JsonParserTest, RejectsTrailingGarbageAndBareValuesWithSuffix) {
  JsonValue value;
  std::string error;
  EXPECT_FALSE(JsonValue::Parse("{\"a\":1} trailing", &value, &error));
  EXPECT_FALSE(JsonValue::Parse("12 34", &value, &error));
}

TEST(JsonParserTest, RejectsTooDeepNesting) {
  std::string deep;
  for (int i = 0; i < 100; ++i) deep += "[";
  for (int i = 0; i < 100; ++i) deep += "]";
  JsonValue value;
  std::string error;
  EXPECT_FALSE(JsonValue::Parse(deep, &value, &error));
  EXPECT_NE(error.find("deep"), std::string::npos) << error;
}

TEST(JsonParserTest, DecodesEscapesAndSurrogatePairs) {
  JsonValue value;
  std::string error;
  ASSERT_TRUE(JsonValue::Parse("\"a\\n\\u0041\\uD83D\\uDE00\"", &value,
                               &error))
      << error;
  EXPECT_EQ(value.string_value(), "a\nA\xF0\x9F\x98\x80");
}

TEST(JsonParserTest, RejectsLoneSurrogateAndRawControlChars) {
  JsonValue value;
  std::string error;
  EXPECT_FALSE(JsonValue::Parse("\"\\uD83D\"", &value, &error));
  EXPECT_FALSE(JsonValue::Parse(std::string_view("\"a\nb\"", 5), &value,
                                &error));
}

TEST(JsonParserTest, RejectsNonFiniteNumbersAndBadLiterals) {
  JsonValue value;
  std::string error;
  EXPECT_FALSE(JsonValue::Parse("NaN", &value, &error));
  EXPECT_FALSE(JsonValue::Parse("Infinity", &value, &error));
  EXPECT_FALSE(JsonValue::Parse("tru", &value, &error));
  EXPECT_FALSE(JsonValue::Parse("", &value, &error));
}

TEST(JsonParserTest, FindOnObjects) {
  JsonValue value;
  std::string error;
  ASSERT_TRUE(JsonValue::Parse("{\"x\":{\"y\":[1,2,3]},\"z\":null}",
                               &value, &error));
  ASSERT_NE(value.Find("x"), nullptr);
  EXPECT_EQ(value.Find("missing"), nullptr);
  ASSERT_NE(value.Find("z"), nullptr);
  EXPECT_TRUE(value.Find("z")->is_null());
  EXPECT_EQ(value.Find("x")->Find("y")->array_items().size(), 3u);
}

}  // namespace
}  // namespace certa::api
