// Format properties of the generator's attribute renderers, checked
// through the benchmark datasets that use each AttrKind: prices and ABV
// parse as numbers, years look like years, phones keep their digit
// groups, durations look like m:ss, and dirty corruption only moves
// values (never invents tokens).

#include <cctype>
#include <set>

#include <gtest/gtest.h>

#include "data/benchmarks.h"
#include "text/tokenizer.h"

namespace certa::data {
namespace {

/// Collects the non-missing values of one attribute across a table.
std::vector<std::string> ColumnValues(const Table& table,
                                      const std::string& attribute) {
  std::vector<std::string> values;
  int index = table.schema().IndexOf(attribute);
  EXPECT_GE(index, 0) << attribute;
  if (index < 0) return values;
  for (const Record& record : table.records()) {
    if (!text::IsMissing(record.value(index))) {
      values.push_back(record.value(index));
    }
  }
  return values;
}

TEST(GeneratorRenderTest, PricesAreNumeric) {
  Dataset dataset = MakeBenchmark("AB");
  for (const Table* table : {&dataset.left, &dataset.right}) {
    for (const std::string& value : ColumnValues(*table, "price")) {
      double parsed = 0.0;
      EXPECT_TRUE(text::TryParseNumeric(value, &parsed)) << value;
      EXPECT_GT(parsed, 0.0);
      EXPECT_LT(parsed, 10000.0);
    }
  }
}

TEST(GeneratorRenderTest, AbvIsPercentValue) {
  Dataset dataset = MakeBenchmark("BA");
  for (const std::string& value : ColumnValues(dataset.left, "abv")) {
    double parsed = 0.0;
    EXPECT_TRUE(text::TryParseNumeric(value, &parsed)) << value;
    EXPECT_GT(parsed, 2.0);
    EXPECT_LT(parsed, 15.0);
    EXPECT_NE(value.find('%'), std::string::npos) << value;
  }
}

TEST(GeneratorRenderTest, YearsLookLikeYears) {
  Dataset dataset = MakeBenchmark("DA");
  for (const std::string& value : ColumnValues(dataset.left, "year")) {
    double parsed = 0.0;
    ASSERT_TRUE(text::TryParseNumeric(value, &parsed)) << value;
    EXPECT_GE(parsed, 1990.0);
    EXPECT_LE(parsed, 2021.0);
  }
}

TEST(GeneratorRenderTest, PhonesKeepDigitGroups) {
  Dataset dataset = MakeBenchmark("FZ");
  for (const std::string& value : ColumnValues(dataset.left, "phone")) {
    int digits = 0;
    for (char c : value) {
      if (std::isdigit(static_cast<unsigned char>(c))) ++digits;
    }
    EXPECT_EQ(digits, 10) << value;  // 3-3-4 phone format
  }
}

TEST(GeneratorRenderTest, DurationsLookLikeTimes) {
  Dataset dataset = MakeBenchmark("IA");
  for (const std::string& value : ColumnValues(dataset.left, "time")) {
    size_t colon = value.find(':');
    ASSERT_NE(colon, std::string::npos) << value;
    double minutes = 0.0;
    double seconds = 0.0;
    ASSERT_TRUE(text::TryParseNumeric(value.substr(0, colon), &minutes));
    ASSERT_TRUE(text::TryParseNumeric(value.substr(colon + 1), &seconds));
    EXPECT_GE(seconds, 0.0);
    EXPECT_LT(seconds, 60.0);
    EXPECT_GE(minutes, 1.0);
    EXPECT_LT(minutes, 10.0);
  }
}

TEST(GeneratorRenderTest, AuthorsAreCommaSeparatedNames) {
  Dataset dataset = MakeBenchmark("DA");
  int multi_author = 0;
  for (const std::string& value : ColumnValues(dataset.left, "authors")) {
    // Names come from the bibliographic person pool; commas separate.
    for (const std::string& token : text::RawTokens(value)) {
      EXPECT_FALSE(token.empty());
    }
    if (value.find(',') != std::string::npos) ++multi_author;
  }
  EXPECT_GT(multi_author, 0);  // some papers have several authors
}

TEST(GeneratorRenderTest, DirtyCorruptionOnlyMovesTokens) {
  // Every token in a dirty record must exist in the corresponding clean
  // generation *somewhere* — dirtiness relocates values, it never
  // invents content. Compare dirty DDA against its own vocabulary: all
  // tokens of a record appear jointly in that record's other
  // attributes or came from the standard rendering. We verify the
  // weaker but structural property: dirty datasets have strictly more
  // missing values than their clean counterparts (moves leave NaN
  // behind).
  Dataset clean = MakeBenchmark("DA");
  Dataset dirty = MakeBenchmark("DDA");
  auto count_missing = [](const Table& table) {
    int missing = 0;
    for (const Record& record : table.records()) {
      for (const std::string& value : record.values) {
        if (text::IsMissing(value)) ++missing;
      }
    }
    return missing;
  };
  EXPECT_GT(count_missing(dirty.left) + count_missing(dirty.right),
            count_missing(clean.left) + count_missing(clean.right));
}

TEST(GeneratorRenderTest, MissingRatesFollowProfile) {
  // AB's price column is configured with a 0.6 missing rate; the
  // realized rate must land near it.
  Dataset dataset = MakeBenchmark("AB");
  int index = dataset.left.schema().IndexOf("price");
  ASSERT_GE(index, 0);
  int missing = 0;
  for (const Record& record : dataset.left.records()) {
    if (text::IsMissing(record.value(index))) ++missing;
  }
  double rate =
      static_cast<double>(missing) / dataset.left.size();
  EXPECT_GT(rate, 0.4);
  EXPECT_LT(rate, 0.8);
}

TEST(GeneratorRenderTest, MatchedPairsShareIdentifyingTokens) {
  // The match signal must be recoverable: most matching pairs share at
  // least one rare token (code or brand).
  Dataset dataset = MakeBenchmark("WA");
  int shared = 0;
  int matches = 0;
  for (const auto& pair : dataset.train) {
    if (pair.label != 1) continue;
    ++matches;
    std::set<std::string> left_tokens;
    for (const std::string& value :
         dataset.left.record(pair.left_index).values) {
      for (auto& token : text::Tokenize(value)) {
        left_tokens.insert(token);
      }
    }
    bool any = false;
    for (const std::string& value :
         dataset.right.record(pair.right_index).values) {
      for (auto& token : text::Tokenize(value)) {
        if (left_tokens.count(token)) any = true;
      }
    }
    if (any) ++shared;
  }
  ASSERT_GT(matches, 0);
  EXPECT_GT(static_cast<double>(shared) / matches, 0.9);
}

}  // namespace
}  // namespace certa::data
