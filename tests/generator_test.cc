#include "data/generator.h"

#include <set>

#include <gtest/gtest.h>

#include "data/benchmarks.h"
#include "text/tokenizer.h"

namespace certa::data {
namespace {

GeneratorProfile SmallProfile() {
  GeneratorProfile profile;
  profile.code = "TT";
  profile.full_name = "Test-Bench";
  profile.domain = Domain::kElectronics;
  profile.attributes = {
      {"name", AttrKind::kName, 0.0},
      {"description", AttrKind::kDescription, 0.1},
      {"price", AttrKind::kPrice, 0.3},
  };
  profile.num_entities = 30;
  profile.seed = 77;
  return profile;
}

TEST(GeneratorTest, DeterministicForSameProfile) {
  Dataset a = GenerateDataset(SmallProfile());
  Dataset b = GenerateDataset(SmallProfile());
  ASSERT_EQ(a.left.size(), b.left.size());
  ASSERT_EQ(a.right.size(), b.right.size());
  for (int i = 0; i < a.left.size(); ++i) {
    EXPECT_EQ(a.left.record(i), b.left.record(i));
  }
  ASSERT_EQ(a.train.size(), b.train.size());
  for (size_t i = 0; i < a.train.size(); ++i) {
    EXPECT_EQ(a.train[i].left_index, b.train[i].left_index);
    EXPECT_EQ(a.train[i].right_index, b.train[i].right_index);
    EXPECT_EQ(a.train[i].label, b.train[i].label);
  }
}

TEST(GeneratorTest, DifferentSeedsProduceDifferentData) {
  GeneratorProfile profile = SmallProfile();
  Dataset a = GenerateDataset(profile);
  profile.seed = 78;
  Dataset b = GenerateDataset(profile);
  bool any_difference = a.left.size() != b.left.size();
  for (int i = 0; !any_difference && i < std::min(a.left.size(),
                                                  b.left.size());
       ++i) {
    any_difference = !(a.left.record(i) == b.left.record(i));
  }
  EXPECT_TRUE(any_difference);
}

TEST(GeneratorTest, SchemasMatchProfile) {
  Dataset dataset = GenerateDataset(SmallProfile());
  EXPECT_EQ(dataset.left.schema().names(),
            (std::vector<std::string>{"name", "description", "price"}));
  EXPECT_EQ(dataset.right.schema().names(), dataset.left.schema().names());
  EXPECT_EQ(dataset.left.name(), "Test");
  EXPECT_EQ(dataset.right.name(), "Bench");
}

TEST(GeneratorTest, PairsReferenceValidRecords) {
  Dataset dataset = GenerateDataset(SmallProfile());
  auto check = [&](const std::vector<LabeledPair>& pairs) {
    for (const LabeledPair& pair : pairs) {
      ASSERT_GE(pair.left_index, 0);
      ASSERT_LT(pair.left_index, dataset.left.size());
      ASSERT_GE(pair.right_index, 0);
      ASSERT_LT(pair.right_index, dataset.right.size());
      ASSERT_TRUE(pair.label == 0 || pair.label == 1);
    }
  };
  check(dataset.train);
  check(dataset.test);
  EXPECT_FALSE(dataset.train.empty());
  EXPECT_FALSE(dataset.test.empty());
}

TEST(GeneratorTest, NoDuplicatePairs) {
  Dataset dataset = GenerateDataset(SmallProfile());
  std::set<std::pair<int, int>> seen;
  for (const auto& pair : dataset.train) {
    EXPECT_TRUE(seen.insert({pair.left_index, pair.right_index}).second);
  }
  for (const auto& pair : dataset.test) {
    EXPECT_TRUE(seen.insert({pair.left_index, pair.right_index}).second);
  }
}

TEST(GeneratorTest, MatchesAreMoreSimilarThanNonMatches) {
  // Sanity on the learnability of the task: average token overlap of
  // matching pairs must exceed non-matching pairs by a clear margin.
  Dataset dataset = GenerateDataset(SmallProfile());
  auto overlap = [&](const LabeledPair& pair) {
    const Record& u = dataset.left.record(pair.left_index);
    const Record& v = dataset.right.record(pair.right_index);
    std::set<std::string> tokens_u;
    std::set<std::string> tokens_v;
    for (const auto& value : u.values) {
      for (auto& token : text::Tokenize(value)) tokens_u.insert(token);
    }
    for (const auto& value : v.values) {
      for (auto& token : text::Tokenize(value)) tokens_v.insert(token);
    }
    if (tokens_u.empty() || tokens_v.empty()) return 0.0;
    int common = 0;
    for (const auto& token : tokens_u) {
      common += tokens_v.count(token) ? 1 : 0;
    }
    return static_cast<double>(common) /
           std::min(tokens_u.size(), tokens_v.size());
  };
  double match_total = 0.0;
  int matches = 0;
  double non_total = 0.0;
  int nons = 0;
  for (const auto& pair : dataset.train) {
    if (pair.label == 1) {
      match_total += overlap(pair);
      ++matches;
    } else {
      non_total += overlap(pair);
      ++nons;
    }
  }
  ASSERT_GT(matches, 0);
  ASSERT_GT(nons, 0);
  EXPECT_GT(match_total / matches, non_total / nons + 0.2);
}

TEST(GeneratorTest, DirtyVariantMovesValues) {
  GeneratorProfile profile = SmallProfile();
  profile.dirty = true;
  profile.dirty_rate = 1.0;  // corrupt every record
  Dataset dataset = GenerateDataset(profile);
  // With certainty some records have a NaN created by the move.
  int moved = 0;
  for (const Record& record : dataset.left.records()) {
    for (const std::string& value : record.values) {
      if (value == "NaN") {
        ++moved;
        break;
      }
    }
  }
  EXPECT_GT(moved, dataset.left.size() / 2);
}

TEST(GeneratorTest, RightDistractorsInflateRightTable) {
  GeneratorProfile base = SmallProfile();
  Dataset without = GenerateDataset(base);
  base.right_distractors = 50;
  Dataset with = GenerateDataset(base);
  EXPECT_GE(with.right.size(), without.right.size() + 40);
}

TEST(GeneratorTest, ScaleChangesEntityCount) {
  Dataset small = data::MakeBenchmark("AB", 0.5);
  Dataset large = data::MakeBenchmark("AB", 1.0);
  EXPECT_LT(small.left.size(), large.left.size());
}

// Parameterized sweep over all twelve benchmark profiles: structural
// invariants that every synthesized benchmark must satisfy.
class BenchmarkProfileTest : public ::testing::TestWithParam<std::string> {};

TEST_P(BenchmarkProfileTest, StructuralInvariants) {
  const std::string& code = GetParam();
  Dataset dataset = MakeBenchmark(code);
  EXPECT_EQ(dataset.code, code);
  DatasetStats stats = ComputeStats(dataset);
  EXPECT_GT(stats.matches, 0);
  EXPECT_GE(stats.attributes, 3);
  EXPECT_LE(stats.attributes, 8);
  EXPECT_GT(stats.left_records, 10);
  EXPECT_GT(stats.right_records, 10);
  EXPECT_GT(stats.left_values, 0);
  // Every record has the right arity and ids are unique per table.
  std::set<int> left_ids;
  for (const Record& record : dataset.left.records()) {
    EXPECT_EQ(static_cast<int>(record.values.size()), stats.attributes);
    EXPECT_TRUE(left_ids.insert(record.id).second);
  }
  std::set<int> right_ids;
  for (const Record& record : dataset.right.records()) {
    EXPECT_TRUE(right_ids.insert(record.id).second);
  }
  // Train and test are disjoint, non-empty, and stratified sanely.
  EXPECT_FALSE(dataset.train.empty());
  EXPECT_FALSE(dataset.test.empty());
  int test_positives = 0;
  for (const auto& pair : dataset.test) test_positives += pair.label;
  EXPECT_GT(test_positives, 0) << "test split must contain matches";
}

TEST_P(BenchmarkProfileTest, AttributeCountsMatchPaper) {
  // The paper's Table 1 attribute counts per dataset.
  static const std::map<std::string, int> kExpected = {
      {"AB", 3},  {"AG", 3},  {"BA", 4},  {"DA", 4},
      {"DS", 4},  {"FZ", 6},  {"IA", 8},  {"WA", 5},
      {"DDA", 4}, {"DDS", 4}, {"DIA", 8}, {"DWA", 5}};
  Dataset dataset = MakeBenchmark(GetParam());
  EXPECT_EQ(dataset.left.schema().size(), kExpected.at(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, BenchmarkProfileTest,
                         ::testing::ValuesIn(BenchmarkCodes()),
                         [](const auto& info) { return info.param; });

}  // namespace
}  // namespace certa::data
