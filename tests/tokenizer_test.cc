#include "text/tokenizer.h"

#include <gtest/gtest.h>

namespace certa::text {
namespace {

TEST(NormalizeTest, LowercasesAndStripsPunctuation) {
  EXPECT_EQ(Normalize("Sony BRAVIA, Theater!"), "sony bravia theater");
}

TEST(NormalizeTest, KeepsModelNumbersAndDecimals) {
  EXPECT_EQ(Normalize("dav-is50 5.1 100%"), "dav-is50 5.1 100%");
}

TEST(NormalizeTest, DropsPurePunctuationTokens) {
  EXPECT_EQ(Normalize("a / b - - c"), "a b c");
}

TEST(NormalizeTest, EmptyInput) {
  EXPECT_EQ(Normalize(""), "");
  EXPECT_EQ(Normalize("///"), "");
}

TEST(TokenizeTest, SplitsNormalizedText) {
  std::vector<std::string> expected = {"sony", "bravia", "m-series"};
  EXPECT_EQ(Tokenize("Sony  BRAVIA (M-Series)"), expected);
}

TEST(RawTokensTest, PreservesCaseAndPunctuation) {
  std::vector<std::string> expected = {"Sony", "BRAVIA,", "X!"};
  EXPECT_EQ(RawTokens("Sony BRAVIA, X!"), expected);
}

TEST(CharNgramsTest, BoundaryMarkers) {
  std::vector<std::string> grams = CharNgrams("ab", 3);
  // "#ab#" -> "#ab", "ab#"
  ASSERT_EQ(grams.size(), 2u);
  EXPECT_EQ(grams[0], "#ab");
  EXPECT_EQ(grams[1], "ab#");
}

TEST(CharNgramsTest, ShortTextReturnsWhole) {
  std::vector<std::string> grams = CharNgrams("a", 5);
  ASSERT_EQ(grams.size(), 1u);
  EXPECT_EQ(grams[0], "#a#");
}

TEST(CharNgramsTest, EmptyAndInvalid) {
  EXPECT_TRUE(CharNgrams("", 3).empty());
  EXPECT_TRUE(CharNgrams("abc", 0).empty());
}

TEST(CharNgramHashesTest, MatchesHashOfMaterializedGrams) {
  // The documented invariant: hashing the shingles in place produces
  // exactly SeededStringHash of each CharNgrams string, in order.
  const uint64_t seed = 0x5EED5EED5EEDULL;
  for (const char* text : {"sony bravia 42in", "ab", "a", "", "x y"}) {
    for (int n : {2, 3, 4, 5}) {
      std::vector<std::string> grams = CharNgrams(text, n);
      std::vector<uint64_t> hashes = CharNgramHashes(text, n, seed);
      ASSERT_EQ(hashes.size(), grams.size()) << text << " n=" << n;
      for (size_t i = 0; i < grams.size(); ++i) {
        EXPECT_EQ(hashes[i], SeededStringHash(grams[i], seed))
            << text << " n=" << n << " gram " << i;
      }
    }
  }
}

TEST(CharNgramHashesTest, SeedChangesHashes) {
  std::vector<uint64_t> a = CharNgramHashes("sony", 3, 1);
  std::vector<uint64_t> b = CharNgramHashes("sony", 3, 2);
  ASSERT_EQ(a.size(), b.size());
  ASSERT_FALSE(a.empty());
  EXPECT_NE(a[0], b[0]);
}

TEST(IsMissingTest, RecognizesMissingMarkers) {
  EXPECT_TRUE(IsMissing(""));
  EXPECT_TRUE(IsMissing("NaN"));
  EXPECT_TRUE(IsMissing("nan"));
  EXPECT_TRUE(IsMissing(" NULL "));
  EXPECT_TRUE(IsMissing("n/a"));
  EXPECT_TRUE(IsMissing("-"));
  EXPECT_FALSE(IsMissing("0"));
  EXPECT_FALSE(IsMissing("nano"));
  EXPECT_FALSE(IsMissing("sony"));
}

TEST(TryParseNumericTest, PlainNumbers) {
  double value = 0.0;
  EXPECT_TRUE(TryParseNumeric("379.72", &value));
  EXPECT_DOUBLE_EQ(value, 379.72);
  EXPECT_TRUE(TryParseNumeric("-5", &value));
  EXPECT_DOUBLE_EQ(value, -5.0);
}

TEST(TryParseNumericTest, FormattedNumbers) {
  double value = 0.0;
  EXPECT_TRUE(TryParseNumeric("$ 1,299.99", &value));
  EXPECT_DOUBLE_EQ(value, 1299.99);
  EXPECT_TRUE(TryParseNumeric("5.40 %", &value));
  EXPECT_DOUBLE_EQ(value, 5.40);
}

TEST(TryParseNumericTest, RejectsText) {
  double value = 0.0;
  EXPECT_FALSE(TryParseNumeric("sony", &value));
  EXPECT_FALSE(TryParseNumeric("db123", &value));
  EXPECT_FALSE(TryParseNumeric("", &value));
  EXPECT_FALSE(TryParseNumeric("$", &value));
}

TEST(MissingValueTest, CanonicalMarkerIsRecognizedAsMissing) {
  // Every producer of missing cells (DiCE's pool fallback, the
  // synthetic generator) writes kMissingValue; IsMissing must agree,
  // case-insensitively, along with the other conventional spellings.
  EXPECT_TRUE(IsMissing(kMissingValue));
  EXPECT_TRUE(IsMissing("nan"));
  EXPECT_TRUE(IsMissing(""));
  EXPECT_FALSE(IsMissing("0"));
  EXPECT_FALSE(IsMissing("none of the above"));
}

}  // namespace
}  // namespace certa::text
