#include "text/hashing_vectorizer.h"

#include <cmath>

#include <gtest/gtest.h>

namespace certa::text {
namespace {

TEST(HashingVectorizerTest, StableHashing) {
  HashingVectorizer vectorizer(64);
  EXPECT_EQ(vectorizer.HashToken("sony"), vectorizer.HashToken("sony"));
  EXPECT_NE(vectorizer.HashToken("sony"), vectorizer.HashToken("sonz"));
}

TEST(HashingVectorizerTest, SeedsDecorrelate) {
  HashingVectorizer a(64, 1);
  HashingVectorizer b(64, 2);
  EXPECT_NE(a.HashToken("sony"), b.HashToken("sony"));
}

TEST(HashingVectorizerTest, TransformDimension) {
  HashingVectorizer vectorizer(32);
  std::vector<double> vec = vectorizer.Transform({"a", "b", "c"});
  EXPECT_EQ(vec.size(), 32u);
}

TEST(HashingVectorizerTest, EmptyTokensGiveZeroVector) {
  HashingVectorizer vectorizer(16);
  std::vector<double> vec = vectorizer.Transform({});
  for (double x : vec) EXPECT_DOUBLE_EQ(x, 0.0);
  // Normalizing a zero vector keeps it zero.
  std::vector<double> normalized = vectorizer.TransformNormalized({});
  for (double x : normalized) EXPECT_DOUBLE_EQ(x, 0.0);
}

TEST(HashingVectorizerTest, AdditiveComposition) {
  HashingVectorizer vectorizer(32);
  std::vector<double> ab = vectorizer.Transform({"a", "b"});
  std::vector<double> a = vectorizer.Transform({"a"});
  vectorizer.Accumulate("b", &a);
  EXPECT_EQ(a, ab);
}

TEST(HashingVectorizerTest, NormalizedHasUnitNorm) {
  HashingVectorizer vectorizer(64);
  std::vector<double> vec =
      vectorizer.TransformNormalized({"sony", "bravia", "tv"});
  double norm = 0.0;
  for (double x : vec) norm += x * x;
  EXPECT_NEAR(norm, 1.0, 1e-9);
}

TEST(HashingVectorizerTest, SharedTokensRaiseCosine) {
  HashingVectorizer vectorizer(128);
  auto u = vectorizer.TransformNormalized({"sony", "bravia", "theater"});
  auto v = vectorizer.TransformNormalized({"sony", "bravia", "system"});
  auto w = vectorizer.TransformNormalized({"zzz", "qqq", "www"});
  EXPECT_GT(CosineSimilarity(u, v), CosineSimilarity(u, w));
  EXPECT_NEAR(CosineSimilarity(u, u), 1.0, 1e-9);
}

TEST(CosineSimilarityTest, ZeroVector) {
  std::vector<double> zero(8, 0.0);
  std::vector<double> ones(8, 1.0);
  EXPECT_DOUBLE_EQ(CosineSimilarity(zero, ones), 0.0);
  EXPECT_DOUBLE_EQ(CosineSimilarity(zero, zero), 0.0);
}

TEST(L2NormalizeTest, ScalesToUnit) {
  std::vector<double> vec = {3.0, 4.0};
  L2Normalize(&vec);
  EXPECT_NEAR(vec[0], 0.6, 1e-12);
  EXPECT_NEAR(vec[1], 0.8, 1e-12);
}

}  // namespace
}  // namespace certa::text
