// Property and metamorphic tests for the full explainer under the
// resilience layer: Eq. 1 saliency invariants on seeded pairs, the
// bit-identical-across-threads/cache core invariant with injected
// faults, invisibility of the retry layer at fault rate zero, honest
// partial results under a hard budget, and full recovery from transient
// faults through retries.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "core/certa_explainer.h"
#include "eval/harness.h"
#include "models/resilience.h"
#include "util/clock.h"

namespace certa {
namespace {

using core::CertaExplainer;
using core::CertaResult;
using core::ExplainStatus;

eval::HarnessOptions TinyHarness() {
  eval::HarnessOptions options;
  options.max_pairs = 6;
  options.num_triangles = 10;
  return options;
}

CertaExplainer::Options BaseOptions() {
  CertaExplainer::Options options;
  options.num_triangles = 10;
  return options;
}

/// The explanation content of a run — everything except call-count
/// bookkeeping, which legitimately varies with cache settings and
/// injected faults.
void ExpectSameExplanation(const CertaResult& a, const CertaResult& b) {
  EXPECT_EQ(a.saliency.left_scores(), b.saliency.left_scores());
  EXPECT_EQ(a.saliency.right_scores(), b.saliency.right_scores());
  EXPECT_EQ(a.best_sufficiency, b.best_sufficiency);
  EXPECT_EQ(a.best_side, b.best_side);
  EXPECT_EQ(a.best_mask, b.best_mask);
  EXPECT_EQ(a.set_sides, b.set_sides);
  EXPECT_EQ(a.set_masks, b.set_masks);
  EXPECT_EQ(a.set_sufficiencies, b.set_sufficiencies);
  EXPECT_EQ(a.status, b.status);
  ASSERT_EQ(a.counterfactuals.size(), b.counterfactuals.size());
  for (size_t i = 0; i < a.counterfactuals.size(); ++i) {
    EXPECT_EQ(a.counterfactuals[i].left.values,
              b.counterfactuals[i].left.values);
    EXPECT_EQ(a.counterfactuals[i].right.values,
              b.counterfactuals[i].right.values);
    EXPECT_EQ(a.counterfactuals[i].score, b.counterfactuals[i].score);
    EXPECT_EQ(a.counterfactuals[i].sufficiency,
              b.counterfactuals[i].sufficiency);
  }
}

class ExplainResilienceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    setup_ = eval::Prepare("AB", models::ModelKind::kDitto, TinyHarness())
                 .release();
    pairs_ = new std::vector<data::LabeledPair>(
        eval::ExplainedPairs(*setup_, TinyHarness()));
  }
  static void TearDownTestSuite() {
    delete pairs_;
    pairs_ = nullptr;
    delete setup_;
    setup_ = nullptr;
  }

  const data::Record& Left(const data::LabeledPair& pair) {
    return setup_->dataset.left.record(pair.left_index);
  }
  const data::Record& Right(const data::LabeledPair& pair) {
    return setup_->dataset.right.record(pair.right_index);
  }

  /// A fresh fault injector over the raw trained model: transient
  /// faults only, each recovering within the default 3 attempts.
  std::unique_ptr<models::FaultInjectingMatcher> MakeFaulty(
      double fault_rate, util::ManualClock* clock) {
    models::FaultOptions faults;
    faults.fault_rate = fault_rate;
    faults.transient_fraction = 1.0;
    faults.transient_failures_per_pair = 1;
    faults.seed = 99;
    return std::make_unique<models::FaultInjectingMatcher>(
        setup_->model.get(), faults, clock);
  }

  CertaResult Run(const models::Matcher* model,
                  const CertaExplainer::Options& options,
                  const data::LabeledPair& pair) {
    explain::ExplainContext context;
    context.model = model;
    context.left = &setup_->dataset.left;
    context.right = &setup_->dataset.right;
    CertaExplainer explainer(context, options);
    return explainer.Explain(Left(pair), Right(pair));
  }

  static eval::Setup* setup_;
  static std::vector<data::LabeledPair>* pairs_;
};

eval::Setup* ExplainResilienceTest::setup_ = nullptr;
std::vector<data::LabeledPair>* ExplainResilienceTest::pairs_ = nullptr;

TEST_F(ExplainResilienceTest, SaliencyScoresObeyEquationOneInvariants) {
  // φ_a = N[a] / f (Eq. 1): every score is a probability, and when any
  // flip was observed (f > 0) every flipped subset is non-empty, so the
  // scores of one run sum to at least 1 and at most the larger side's
  // attribute count l (reached only by supremum flips, which count
  // every attribute of their side).
  const size_t l = std::max(setup_->dataset.left.schema().size(),
                            setup_->dataset.right.schema().size());
  for (const auto& pair : *pairs_) {
    CertaResult result = Run(setup_->model.get(), BaseOptions(), pair);
    double sum = 0.0;
    for (double score : result.saliency.left_scores()) {
      EXPECT_GE(score, 0.0);
      EXPECT_LE(score, 1.0);
      sum += score;
    }
    for (double score : result.saliency.right_scores()) {
      EXPECT_GE(score, 0.0);
      EXPECT_LE(score, 1.0);
      sum += score;
    }
    if (result.best_mask == 0) {
      EXPECT_EQ(sum, 0.0);  // no flips: Eq. 1 leaves all scores at zero
    } else {
      EXPECT_GE(sum, 1.0 - 1e-9);
      EXPECT_LE(sum, static_cast<double>(l) + 1e-9);
    }
    EXPECT_GE(result.best_sufficiency, 0.0);
    EXPECT_LE(result.best_sufficiency, 1.0);
    for (double sufficiency : result.set_sufficiencies) {
      EXPECT_GT(sufficiency, 0.0);
      EXPECT_LE(sufficiency, 1.0);
    }
  }
}

TEST_F(ExplainResilienceTest, ThreadCountInvariantUnderInjectedFaults) {
  // The core bit-identical invariant must survive fault injection: the
  // fault plan hashes pair content, not call order, so thread fan-out
  // cannot change which calls fail or what any score is. Only the
  // calls/retries accounting is execution metadata — batch-vs-fallback
  // attempts depend on the engine's chunk layout (docs/RESILIENCE.md) —
  // so the JSON is compared with the phase counters normalized out.
  util::ManualClock clock;
  auto faulty = MakeFaulty(0.2, &clock);
  CertaExplainer::Options serial = BaseOptions();
  serial.resilience.enabled = true;
  serial.resilience.clock = &clock;
  CertaExplainer::Options threaded = serial;
  threaded.num_threads = 4;

  const auto normalized_json = [this](CertaResult result) {
    EXPECT_EQ(result.status, ExplainStatus::kComplete);
    EXPECT_EQ(result.triangle_phase.cells_skipped, 0);
    EXPECT_EQ(result.lattice_phase.cells_skipped, 0);
    EXPECT_EQ(result.cf_phase.cells_skipped, 0);
    result.triangle_phase = core::PhaseResilience();
    result.lattice_phase = core::PhaseResilience();
    result.cf_phase = core::PhaseResilience();
    return core::CertaResultToJson(result, setup_->dataset.left.schema(),
                                   setup_->dataset.right.schema());
  };

  for (const auto& pair : *pairs_) {
    faulty->ResetAttempts();
    CertaResult one = Run(faulty.get(), serial, pair);
    faulty->ResetAttempts();
    CertaResult many = Run(faulty.get(), threaded, pair);
    EXPECT_EQ(normalized_json(one), normalized_json(many));
  }
}

TEST_F(ExplainResilienceTest, CacheSettingInvariantUnderInjectedFaults) {
  // Cache on/off changes how often the model is consulted (so call
  // counters differ) but never what the explanation says, faults or
  // not: transient faults recover on retry either way.
  util::ManualClock clock;
  auto faulty = MakeFaulty(0.2, &clock);
  CertaExplainer::Options cached = BaseOptions();
  cached.resilience.enabled = true;
  cached.resilience.clock = &clock;
  CertaExplainer::Options uncached = cached;
  uncached.use_cache = false;

  for (const auto& pair : *pairs_) {
    faulty->ResetAttempts();
    CertaResult with = Run(faulty.get(), cached, pair);
    faulty->ResetAttempts();
    CertaResult without = Run(faulty.get(), uncached, pair);
    ExpectSameExplanation(with, without);
    EXPECT_EQ(with.status, ExplainStatus::kComplete);
  }
}

TEST_F(ExplainResilienceTest, RetryLayerIsInvisibleAtFaultRateZero) {
  // Turning resilience on over a healthy model must not change a single
  // exported byte beyond the (all-zero-failure) phase counters: zeroing
  // those yields the exact JSON of the undecorated run.
  CertaExplainer::Options plain = BaseOptions();
  CertaExplainer::Options decorated = BaseOptions();
  decorated.resilience.enabled = true;

  for (const auto& pair : *pairs_) {
    CertaResult off = Run(setup_->model.get(), plain, pair);
    CertaResult on = Run(setup_->model.get(), decorated, pair);
    EXPECT_EQ(on.status, ExplainStatus::kComplete);
    EXPECT_EQ(on.triangle_phase.retries, 0);
    EXPECT_EQ(on.lattice_phase.retries, 0);
    EXPECT_EQ(on.cf_phase.retries, 0);
    EXPECT_EQ(on.triangle_phase.failures + on.lattice_phase.failures +
                  on.cf_phase.failures,
              0);
    on.triangle_phase = core::PhaseResilience();
    on.lattice_phase = core::PhaseResilience();
    on.cf_phase = core::PhaseResilience();
    EXPECT_EQ(core::CertaResultToJson(off, setup_->dataset.left.schema(),
                                      setup_->dataset.right.schema()),
              core::CertaResultToJson(on, setup_->dataset.left.schema(),
                                      setup_->dataset.right.schema()));
  }
}

TEST_F(ExplainResilienceTest, HardBudgetYieldsHonestTruncatedResult) {
  // 12 calls barely covers the pivot plus a handful of screening
  // probes — far below what any full run needs — so the budget must
  // die mid-run and the result must say so.
  CertaExplainer::Options limited = BaseOptions();
  limited.resilience.enabled = true;
  limited.resilience.max_model_calls = 12;

  const auto& pair = pairs_->front();
  CertaResult result = Run(setup_->model.get(), limited, pair);
  EXPECT_EQ(result.status, ExplainStatus::kTruncated);
  // The decorator's accounting proves the ceiling held across phases.
  EXPECT_LE(result.triangle_phase.calls + result.lattice_phase.calls +
                result.cf_phase.calls,
            12);
  EXPECT_GT(result.triangle_phase.cells_skipped +
                result.lattice_phase.cells_skipped +
                result.cf_phase.cells_skipped,
            0);
  // Whatever was computed before the budget died is still exported.
  std::string json =
      core::CertaResultToJson(result, setup_->dataset.left.schema(),
                              setup_->dataset.right.schema());
  EXPECT_NE(json.find("\"status\":\"truncated\""), std::string::npos);
}

TEST_F(ExplainResilienceTest, RetriesFullyRecoverTransientFaults) {
  // 20% transient faults, unlimited budget: every fault recovers within
  // the retry budget, so the explanation equals the fault-free one
  // bit for bit and the only trace is a positive retry counter.
  util::ManualClock clock;
  auto faulty = MakeFaulty(0.2, &clock);
  CertaExplainer::Options resilient = BaseOptions();
  resilient.resilience.enabled = true;
  resilient.resilience.clock = &clock;

  long long total_retries = 0;
  for (const auto& pair : *pairs_) {
    CertaResult clean = Run(setup_->model.get(), BaseOptions(), pair);
    faulty->ResetAttempts();
    CertaResult recovered = Run(faulty.get(), resilient, pair);
    EXPECT_EQ(recovered.status, ExplainStatus::kComplete);
    ExpectSameExplanation(clean, recovered);
    total_retries += recovered.triangle_phase.retries +
                     recovered.lattice_phase.retries +
                     recovered.cf_phase.retries;
  }
  EXPECT_GT(total_retries, 0);
}

}  // namespace
}  // namespace certa
