// Differential tests for the vectorized similarity kernels
// (src/text/simd.*): every vec:: kernel must produce BIT-IDENTICAL
// output to its scalar:: reference on random inputs and on the
// adversarial shapes (empty, single char, all-identical, non-ASCII
// bytes, >64-char Myers fallback). Run under both kernel modes by CI
// (ctest -L perf, once plain and once with CERTA_KERNELS=scalar).

#include <algorithm>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include <gtest/gtest.h>

#include "text/simd.h"
#include "text/similarity.h"
#include "text/tokenizer.h"
#include "util/random.h"

namespace certa {
namespace {

namespace simd = text::simd;

std::string RandomString(Rng* rng, int max_len, bool ascii_only) {
  int len = rng->UniformInt(0, max_len);
  std::string s;
  s.reserve(static_cast<size_t>(len));
  for (int i = 0; i < len; ++i) {
    if (ascii_only) {
      s.push_back(static_cast<char>('a' + rng->UniformInt(0, 3)));
    } else {
      // Full byte range, including 0x00 and 0x80-0xFF (UTF-8 tails,
      // latin-1 junk): the kernels treat strings as raw bytes.
      s.push_back(static_cast<char>(rng->UniformInt(0, 255)));
    }
  }
  return s;
}

// ---------------------------------------------------------------------------
// Levenshtein

TEST(SimdLevenshteinTest, AdversarialShapesMatchScalar) {
  const std::string sixty_five(65, 'x');
  std::string near = sixty_five;
  near[10] = 'y';
  const std::pair<std::string, std::string> cases[] = {
      {"", ""},
      {"", "a"},
      {"a", ""},
      {"a", "a"},
      {"a", "b"},
      {"aaaa", "aaaa"},
      {"kitten", "sitting"},
      {std::string("\x00\x01\xff", 3), std::string("\xff\x01", 2)},
      {std::string(64, 'q'), std::string(64, 'q')},
      {sixty_five, near},  // exceeds the 64-char bit-parallel window
      {std::string(200, 'a'), std::string(100, 'b')},
  };
  for (const auto& [a, b] : cases) {
    EXPECT_EQ(simd::vec::LevenshteinDistance(a, b),
              simd::scalar::LevenshteinDistance(a, b))
        << "a=" << a.size() << "B b=" << b.size() << "B";
  }
}

TEST(SimdLevenshteinTest, RandomStringsMatchScalar) {
  Rng rng(0x1eef);
  for (int round = 0; round < 400; ++round) {
    const bool ascii = round % 2 == 0;
    std::string a = RandomString(&rng, 90, ascii);
    std::string b = RandomString(&rng, 90, ascii);
    ASSERT_EQ(simd::vec::LevenshteinDistance(a, b),
              simd::scalar::LevenshteinDistance(a, b))
        << "round " << round;
  }
}

TEST(SimdLevenshteinTest, DispatchedEntryPointAgreesWithActiveMode) {
  const std::string_view a = "alphabet";
  const std::string_view b = "alphabets";
  const int expected = simd::ActiveMode() == simd::KernelMode::kVector
                           ? simd::vec::LevenshteinDistance(a, b)
                           : simd::scalar::LevenshteinDistance(a, b);
  EXPECT_EQ(simd::LevenshteinDistance(a, b), expected);
  const char* name = simd::ActiveModeName();
  EXPECT_TRUE(std::string(name) == "scalar" || std::string(name) == "vector");
}

// ---------------------------------------------------------------------------
// Sorted intersection

std::vector<uint64_t> RandomSortedUnique(Rng* rng, int max_len) {
  std::vector<uint64_t> values;
  int len = rng->UniformInt(0, max_len);
  values.reserve(static_cast<size_t>(len));
  for (int i = 0; i < len; ++i) {
    // Small range forces heavy overlap between the two sides.
    values.push_back(rng->UniformUint64(64));
  }
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  return values;
}

size_t ReferenceIntersection(const std::vector<uint64_t>& a,
                             const std::vector<uint64_t>& b) {
  size_t count = 0;
  for (uint64_t x : a) {
    count += std::binary_search(b.begin(), b.end(), x) ? 1 : 0;
  }
  return count;
}

TEST(SimdIntersectionTest, AdversarialShapesMatchScalar) {
  const std::vector<std::pair<std::vector<uint64_t>, std::vector<uint64_t>>>
      cases = {
          {{}, {}},
          {{}, {1, 2, 3}},
          {{5}, {5}},
          {{5}, {6}},
          {{1, 2, 3}, {1, 2, 3}},
          {{0, UINT64_MAX}, {0, 1, UINT64_MAX}},
          {{1, 3, 5, 7}, {2, 4, 6, 8}},
      };
  for (const auto& [a, b] : cases) {
    size_t expected =
        simd::scalar::SortedIntersectionCount(a.data(), a.size(), b.data(),
                                              b.size());
    EXPECT_EQ(simd::vec::SortedIntersectionCount(a.data(), a.size(), b.data(),
                                                 b.size()),
              expected);
    EXPECT_EQ(ReferenceIntersection(a, b), expected);
  }
}

TEST(SimdIntersectionTest, RandomSetsMatchScalarAndBinarySearch) {
  Rng rng(0xcafe);
  for (int round = 0; round < 500; ++round) {
    std::vector<uint64_t> a = RandomSortedUnique(&rng, 80);
    std::vector<uint64_t> b = RandomSortedUnique(&rng, 80);
    size_t scalar = simd::scalar::SortedIntersectionCount(
        a.data(), a.size(), b.data(), b.size());
    ASSERT_EQ(simd::vec::SortedIntersectionCount(a.data(), a.size(), b.data(),
                                                 b.size()),
              scalar)
        << "round " << round;
    ASSERT_EQ(ReferenceIntersection(a, b), scalar) << "round " << round;
  }
}

// ---------------------------------------------------------------------------
// Cosine over token counts

std::vector<std::string> RandomTokens(Rng* rng, int max_len, bool ascii) {
  std::vector<std::string> tokens;
  int len = rng->UniformInt(0, max_len);
  tokens.reserve(static_cast<size_t>(len));
  for (int i = 0; i < len; ++i) tokens.push_back(RandomString(rng, 6, ascii));
  return tokens;
}

TEST(SimdCosineTokenTest, AdversarialShapesMatchScalarBitExact) {
  using V = std::vector<std::string>;
  const std::pair<V, V> cases[] = {
      {{}, {}},
      {{}, {"a"}},
      {{"a"}, {"a"}},
      {{"a", "a", "a"}, {"a"}},
      {{"x", "x", "x", "x"}, {"x", "x", "x", "x"}},  // all-identical
      {{"a", "b", "a"}, {"b", "a", "b"}},
      {{std::string("\xc3\xa9", 2)}, {std::string("\xc3\xa9", 2), "e"}},
      {{""}, {"", ""}},  // empty-string tokens are still tokens
  };
  for (const auto& [a, b] : cases) {
    double expected = simd::scalar::CosineTokenSimilarity(a, b);
    double actual = simd::vec::CosineTokenSimilarity(a, b);
    // Bit-exact, not just close: all partial sums are small integers.
    EXPECT_EQ(expected, actual);
  }
}

TEST(SimdCosineTokenTest, RandomTokenBagsMatchScalarBitExact) {
  Rng rng(0xbeadu);
  for (int round = 0; round < 300; ++round) {
    std::vector<std::string> a = RandomTokens(&rng, 30, round % 2 == 0);
    std::vector<std::string> b = RandomTokens(&rng, 30, round % 2 == 0);
    ASSERT_EQ(simd::scalar::CosineTokenSimilarity(a, b),
              simd::vec::CosineTokenSimilarity(a, b))
        << "round " << round;
  }
}

// ---------------------------------------------------------------------------
// N-gram window hashing

TEST(SimdNgramHashTest, AdversarialShapesMatchScalar) {
  const std::string cases[] = {
      "",
      "a",
      "ab",
      "abc",
      "aaaaaaa",
      std::string("\x00\xff\x80\x7f\x01", 5),
      "  padded value  ",
  };
  for (int n : {3, 4, 5}) {  // 5 exercises the vec:: scalar fallback
    for (const std::string& padded : cases) {
      std::vector<uint64_t> expected;
      std::vector<uint64_t> actual;
      simd::scalar::AppendNgramWindowHashes(padded, n, 0xD1770, &expected);
      simd::vec::AppendNgramWindowHashes(padded, n, 0xD1770, &actual);
      EXPECT_EQ(actual, expected) << "n=" << n << " len=" << padded.size();
    }
  }
}

TEST(SimdNgramHashTest, RandomStringsMatchScalarAndAppend) {
  Rng rng(0x9d);
  for (int round = 0; round < 300; ++round) {
    std::string padded = RandomString(&rng, 120, round % 2 == 0);
    for (int n : {3, 4}) {
      // Both variants must APPEND (not overwrite) after existing data.
      std::vector<uint64_t> expected = {7u};
      std::vector<uint64_t> actual = {7u};
      simd::scalar::AppendNgramWindowHashes(padded, n, 0xABCD, &expected);
      simd::vec::AppendNgramWindowHashes(padded, n, 0xABCD, &actual);
      ASSERT_EQ(actual, expected) << "round " << round << " n=" << n;
    }
  }
}

TEST(SimdNgramHashTest, MatchesTokenizerCharNgramHashes) {
  // CharNgramHashes pads the normalized value with '#' markers;
  // reproduce that and check the tokenizer output rides on these
  // kernels. "certa kernels" is already in normal form.
  const std::string value = "certa kernels";
  const std::string padded = "#" + value + "#";
  std::vector<uint64_t> expected;
  simd::scalar::AppendNgramWindowHashes(padded, 4, 99, &expected);
  EXPECT_EQ(text::CharNgramHashes(value, 4, 99), expected);
}

// ---------------------------------------------------------------------------
// Public similarity API stays on the differential-tested kernels

TEST(SimdPublicApiTest, SimilarityFunctionsAgreeWithScalarKernels) {
  Rng rng(0x51);
  for (int round = 0; round < 100; ++round) {
    std::string a = RandomString(&rng, 40, true);
    std::string b = RandomString(&rng, 40, true);
    int direct = simd::scalar::LevenshteinDistance(a, b);
    EXPECT_EQ(text::LevenshteinDistance(a, b), direct);
  }
}

}  // namespace
}  // namespace certa
