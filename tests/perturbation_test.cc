#include "explain/perturbation.h"

#include <set>

#include <gtest/gtest.h>

#include "test_util.h"
#include "text/tokenizer.h"

namespace certa::explain {
namespace {

using certa::testing::MakeRecord;

TEST(MaskTest, SizeAndIndices) {
  EXPECT_EQ(MaskSize(0u), 0);
  EXPECT_EQ(MaskSize(0b1011u), 3);
  EXPECT_EQ(MaskToIndices(0b1011u), (std::vector<int>{0, 1, 3}));
  EXPECT_TRUE(MaskToIndices(0u).empty());
}

TEST(CopyAttributesTest, CopiesOnlyMaskedValues) {
  data::Record base = MakeRecord(0, {"a0", "a1", "a2"});
  data::Record source = MakeRecord(1, {"b0", "b1", "b2"});
  data::Record result = CopyAttributes(base, source, 0b101u);
  EXPECT_EQ(result.values, (std::vector<std::string>{"b0", "a1", "b2"}));
  // ψ(u, w, ∅) = u.
  EXPECT_EQ(CopyAttributes(base, source, 0u).values, base.values);
  // Base unchanged (value semantics).
  EXPECT_EQ(base.values[0], "a0");
}

TEST(DropAttributesTest, BlanksMaskedValues) {
  data::Record base = MakeRecord(0, {"a0", "a1"});
  data::Record result = DropAttributes(base, 0b10u);
  EXPECT_EQ(result.values, (std::vector<std::string>{"a0", ""}));
  EXPECT_TRUE(text::IsMissing(result.values[1]));
}

TEST(DropTokenRunsTest, DropsPrefixOrSuffix) {
  data::Record base = MakeRecord(0, {"t1 t2 t3 t4", "solo"});
  Rng rng(5);
  bool saw_change = false;
  for (int round = 0; round < 20; ++round) {
    data::Record result = DropTokenRuns(base, 0b01u, &rng);
    std::vector<std::string> tokens = text::RawTokens(result.values[0]);
    ASSERT_GE(tokens.size(), 1u);
    ASSERT_LT(tokens.size(), 4u);
    // Remaining tokens are a contiguous run of the original.
    std::vector<std::string> original = text::RawTokens(base.values[0]);
    bool is_prefix = std::equal(tokens.begin(), tokens.end(),
                                original.begin());
    bool is_suffix = std::equal(tokens.rbegin(), tokens.rend(),
                                original.rbegin());
    EXPECT_TRUE(is_prefix || is_suffix) << result.values[0];
    saw_change = true;
    // Single-token attributes are untouched even when masked.
    data::Record both = DropTokenRuns(base, 0b11u, &rng);
    EXPECT_EQ(both.values[1], "solo");
  }
  EXPECT_TRUE(saw_change);
}

TEST(DropTokenRunsTest, MissingValuesUntouched) {
  data::Record base = MakeRecord(0, {"NaN", "a b"});
  Rng rng(5);
  data::Record result = DropTokenRuns(base, 0b01u, &rng);
  EXPECT_EQ(result.values[0], "NaN");
}

TEST(RandomProperSubsetTest, NeverEmptyOrFull) {
  Rng rng(7);
  std::set<AttrMask> seen;
  for (int round = 0; round < 300; ++round) {
    AttrMask mask = RandomProperSubset(3, &rng);
    EXPECT_NE(mask, 0u);
    EXPECT_NE(mask, 0b111u);
    seen.insert(mask);
  }
  EXPECT_EQ(seen.size(), 6u);  // all proper non-empty subsets reached
}

}  // namespace
}  // namespace certa::explain
