#include "explain/report.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace certa::explain {
namespace {

using certa::testing::MakeRecord;

struct Fixture {
  data::Schema left{std::vector<std::string>{"name", "price"}};
  data::Schema right{std::vector<std::string>{"name", "price"}};
  data::Record u = MakeRecord(0, {"sony bravia", "99"});
  data::Record v = MakeRecord(1, {"sony tv", "98"});

  SaliencyExplanation Saliency() const {
    SaliencyExplanation explanation(2, 2);
    explanation.set_score({data::Side::kLeft, 0}, 0.8);
    explanation.set_score({data::Side::kRight, 0}, 0.6);
    explanation.set_score({data::Side::kLeft, 1}, 0.2);
    return explanation;
  }

  CounterfactualExample Example() const {
    CounterfactualExample example;
    example.left = MakeRecord(0, {"other brand", "99"});
    example.right = v;
    example.changed_attributes = {{data::Side::kLeft, 0}};
    example.score = 0.1;
    example.sufficiency = 0.75;
    return example;
  }
};

TEST(RenderSaliencyTest, RankedWithBars) {
  Fixture fixture;
  std::string text =
      RenderSaliency(fixture.Saliency(), fixture.left, fixture.right);
  // Top attribute first, with a full-length bar.
  size_t l_name = text.find("L_name");
  size_t r_name = text.find("R_name");
  size_t l_price = text.find("L_price");
  EXPECT_NE(l_name, std::string::npos);
  EXPECT_LT(l_name, r_name);
  EXPECT_LT(r_name, l_price);
  EXPECT_NE(text.find("0.800"), std::string::npos);
  EXPECT_NE(text.find("####"), std::string::npos);
}

TEST(RenderCounterfactualTest, ShowsChangeAndFlip) {
  Fixture fixture;
  std::string text = RenderCounterfactual(
      fixture.Example(), fixture.u, fixture.v, fixture.left, fixture.right,
      /*original_score=*/0.9);
  EXPECT_NE(text.find("changing {L_name}"), std::string::npos);
  EXPECT_NE(text.find("turns the Match"), std::string::npos);
  EXPECT_NE(text.find("Non-Match"), std::string::npos);
  EXPECT_NE(text.find("\"sony bravia\" -> \"other brand\""),
            std::string::npos);
  EXPECT_NE(text.find("sufficiency 0.75"), std::string::npos);
}

TEST(RenderReportTest, FullReportContainsAllSections) {
  Fixture fixture;
  std::string text = RenderReport(fixture.u, fixture.v, fixture.left,
                                  fixture.right, 0.9, fixture.Saliency(),
                                  {fixture.Example()});
  EXPECT_NE(text.find("prediction: Match (score 0.900)"),
            std::string::npos);
  EXPECT_NE(text.find("L_name = sony bravia"), std::string::npos);
  EXPECT_NE(text.find("attribute saliency"), std::string::npos);
  EXPECT_NE(text.find("counterfactuals (1 found)"), std::string::npos);
}

TEST(RenderReportTest, NoExamplesMessage) {
  Fixture fixture;
  std::string text = RenderReport(fixture.u, fixture.v, fixture.left,
                                  fixture.right, 0.2, fixture.Saliency(),
                                  {});
  EXPECT_NE(text.find("prediction: Non-Match"), std::string::npos);
  EXPECT_NE(text.find("no counterfactual examples found"),
            std::string::npos);
}

TEST(RenderReportTest, CapsExampleCount) {
  Fixture fixture;
  std::vector<CounterfactualExample> examples(5, fixture.Example());
  std::string text = RenderReport(fixture.u, fixture.v, fixture.left,
                                  fixture.right, 0.9, fixture.Saliency(),
                                  examples, /*max_examples=*/2);
  // "changing {" appears exactly twice.
  size_t first = text.find("changing {");
  size_t second = text.find("changing {", first + 1);
  size_t third = text.find("changing {", second + 1);
  EXPECT_NE(first, std::string::npos);
  EXPECT_NE(second, std::string::npos);
  EXPECT_EQ(third, std::string::npos);
  EXPECT_NE(text.find("counterfactuals (5 found)"), std::string::npos);
}

}  // namespace
}  // namespace certa::explain
