// Unit tests for the control-channel line framing shared by both ends
// of the master<->worker protocol (service::SplitControlLines). The
// framing is what makes a worker SIGKILLed mid-`STATS` write harmless:
// only newline-terminated lines are ever surfaced; a torn fragment
// stays buffered and is dropped wholesale at EOF, never parsed. The
// end-to-end version (a real fleet worker killed at a 20ms stats
// cadence) lives in fleet_store_test.cc.

#include "service/supervisor.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace certa::service {
namespace {

std::vector<std::string> Collect(std::string* buffer) {
  std::vector<std::string> lines;
  SplitControlLines(buffer,
                    [&lines](const std::string& line) { lines.push_back(line); });
  return lines;
}

TEST(SplitControlLinesTest, ExtractsCompleteLinesInOrder) {
  std::string buffer = "READY 8080\nSTATS {\"slot\":0}\n";
  const std::vector<std::string> lines = Collect(&buffer);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "READY 8080");
  EXPECT_EQ(lines[1], "STATS {\"slot\":0}");
  EXPECT_TRUE(buffer.empty());
}

TEST(SplitControlLinesTest, RetainsPartialTailForNextRead) {
  // A read() boundary mid-line: the torn fragment must not be surfaced.
  std::string buffer = "STATS {\"slot\":0,\"runner\":{\"compl";
  EXPECT_TRUE(Collect(&buffer).empty());
  EXPECT_EQ(buffer, "STATS {\"slot\":0,\"runner\":{\"compl");

  // The next read completes it (and starts another partial line).
  buffer += "eted\":4}}\nSTATS {\"sl";
  const std::vector<std::string> lines = Collect(&buffer);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], "STATS {\"slot\":0,\"runner\":{\"completed\":4}}");
  EXPECT_EQ(buffer, "STATS {\"sl");
}

TEST(SplitControlLinesTest, EmptyBufferIsANoOp) {
  std::string buffer;
  EXPECT_TRUE(Collect(&buffer).empty());
  EXPECT_TRUE(buffer.empty());
}

TEST(SplitControlLinesTest, HandlesEmptyAndBackToBackLines) {
  std::string buffer = "\nA\n\nB\n";
  const std::vector<std::string> lines = Collect(&buffer);
  ASSERT_EQ(lines.size(), 4u);
  EXPECT_EQ(lines[0], "");
  EXPECT_EQ(lines[1], "A");
  EXPECT_EQ(lines[2], "");
  EXPECT_EQ(lines[3], "B");
  EXPECT_TRUE(buffer.empty());
}

TEST(SplitControlLinesTest, TornTailAtEofIsDroppedWholesale) {
  // What HandleExit does when a SIGKILLed worker's fd reaches EOF:
  // drain complete lines, then discard whatever fragment remains.
  // The fragment must never reach the parser — clearing the buffer is
  // the drop.
  std::string buffer = "STATS {\"slot\":1,\"runner\":{\"completed\":9}}\n"
                       "STATS {\"slot\":1,\"run";
  const std::vector<std::string> lines = Collect(&buffer);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], "STATS {\"slot\":1,\"runner\":{\"completed\":9}}");
  EXPECT_EQ(buffer, "STATS {\"slot\":1,\"run");
  buffer.clear();  // the EOF drop
  EXPECT_TRUE(Collect(&buffer).empty());
}

}  // namespace
}  // namespace certa::service
