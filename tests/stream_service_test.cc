// The v2 streaming wire API over a live NetServer (labels:
// stream;service-net): per-connection version negotiation and its
// stickiness, ping capabilities, the upsert / remove / match /
// invalidations verbs against a real StreamCoordinator, v2 canonical-
// key strictness vs v1 aliases (with the once-per-connection
// deprecation note), stable rejection of future-schema frames, a
// golden corpus of literal v1 frames whose replies are pinned
// byte-for-byte, and the stale-result recompute path.

#include "net/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "data/benchmarks.h"
#include "data/dataset.h"
#include "net/wire.h"
#include "service/stream_coordinator.h"
#include "util/json_parser.h"

namespace certa::net {
namespace {

namespace fs = std::filesystem;

class ScratchDir {
 public:
  explicit ScratchDir(const std::string& tag) {
    dir_ = fs::temp_directory_path() /
           ("certa_stream_" + tag + "_" + std::to_string(::getpid()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  ~ScratchDir() {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }
  std::string dir() const { return dir_.string(); }

 private:
  fs::path dir_;
};

/// Blocking loopback client (same shape as net_service_test's): raw
/// line frames in, raw line frames out — byte-exact reads are the
/// point of half these tests.
class TestClient {
 public:
  explicit TestClient(int port, int timeout_seconds = 30) {
    fd_ = socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd_, 0);
    timeval timeout{};
    timeout.tv_sec = timeout_seconds;
    setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
    int one = 1;
    setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    connected_ = connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                         sizeof(addr)) == 0;
    EXPECT_TRUE(connected_);
  }
  ~TestClient() {
    if (fd_ >= 0) close(fd_);
  }

  bool Send(const std::string& bytes) {
    size_t sent = 0;
    while (sent < bytes.size()) {
      ssize_t n = write(fd_, bytes.data() + sent, bytes.size() - sent);
      if (n <= 0) return false;
      sent += static_cast<size_t>(n);
    }
    return true;
  }

  /// Sends one line (newline appended when missing).
  bool SendLine(std::string line) {
    if (line.empty() || line.back() != '\n') line += '\n';
    return Send(line);
  }

  bool ReadLine(std::string* line) {
    while (true) {
      size_t newline = buffer_.find('\n');
      if (newline != std::string::npos) {
        *line = buffer_.substr(0, newline);
        buffer_.erase(0, newline + 1);
        return true;
      }
      char chunk[4096];
      ssize_t n = read(fd_, chunk, sizeof(chunk));
      if (n <= 0) return false;
      buffer_.append(chunk, static_cast<size_t>(n));
    }
  }

  bool ReadFrame(JsonValue* frame) {
    std::string line;
    if (!ReadLine(&line)) return false;
    std::string error;
    bool ok = JsonValue::Parse(line, frame, &error);
    EXPECT_TRUE(ok) << error << " in: " << line;
    return ok;
  }

  /// One round trip: send the line, read the reply line verbatim.
  std::string RoundTrip(const std::string& line) {
    EXPECT_TRUE(SendLine(line));
    std::string reply;
    EXPECT_TRUE(ReadLine(&reply)) << "no reply to: " << line;
    return reply;
  }

  /// Round trip, reply parsed.
  JsonValue RoundTripFrame(const std::string& line) {
    const std::string reply = RoundTrip(line);
    JsonValue frame;
    std::string error;
    EXPECT_TRUE(JsonValue::Parse(reply, &frame, &error))
        << error << " in: " << reply;
    return frame;
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
  std::string buffer_;
};

std::string TextOf(const JsonValue& frame, const char* key) {
  const JsonValue* value = frame.Find(key);
  return value != nullptr && value->is_string() ? value->string_value()
                                                : std::string();
}

long long IntOf(const JsonValue& frame, const char* key) {
  const JsonValue* value = frame.Find(key);
  return value != nullptr && value->is_integer() ? value->int_value() : -999;
}

/// A server with streaming attached: coordinator on `<scratch>/stream`,
/// jobs on `<scratch>/jobs`, dataset hook wired — the single-process
/// shape `certa serve --listen --stream-dir` builds.
struct StreamServer {
  explicit StreamServer(const std::string& scratch, int workers = 2) {
    service::StreamCoordinator::Options stream_options;
    stream_options.dir = scratch + "/stream";
    stream_options.slot = 0;
    std::string error;
    EXPECT_TRUE(coordinator.Open(stream_options, &error)) << error;

    NetServerOptions options;
    options.runner.job_root = scratch + "/jobs";
    options.runner.workers = workers;
    options.runner.queue_capacity = 8;
    options.runner.dataset_provider =
        [this](const api::ExplainRequest& request, data::Dataset* dataset,
               std::string* provider_error) {
          return coordinator.ProvideDataset(request, dataset,
                                            provider_error);
        };
    options.stream = &coordinator;
    server = std::make_unique<NetServer>(std::move(options));
    EXPECT_TRUE(server->StartBackground(&error)) << error;
    EXPECT_GT(server->port(), 0);
  }
  ~StreamServer() {
    server.reset();
    coordinator.Close();
  }

  service::StreamCoordinator coordinator;
  std::unique_ptr<NetServer> server;
};

// ---------------------------------------------------------------------
// Wire layer: the v2 builders and the parser are one contract.

TEST(StreamWireTest, V2BuildersRoundTripThroughParser) {
  ClientFrame frame;
  std::string code, error;

  ASSERT_TRUE(ParseClientFrame(
      UpsertRequestFrame("AB", "/dm", 1, 7, {"a", "b"}), &frame, &code,
      &error))
      << error;
  EXPECT_EQ(frame.type, ClientFrame::Type::kUpsert);
  EXPECT_EQ(frame.schema_version, 2);
  EXPECT_EQ(frame.dataset, "AB");
  EXPECT_EQ(frame.data_dir, "/dm");
  EXPECT_EQ(frame.side, 1);
  EXPECT_EQ(frame.record_id, 7);
  EXPECT_EQ(frame.values, (std::vector<std::string>{"a", "b"}));

  ASSERT_TRUE(ParseClientFrame(RemoveRequestFrame("AB", "", 0, 3), &frame,
                               &code, &error))
      << error;
  EXPECT_EQ(frame.type, ClientFrame::Type::kRemove);
  EXPECT_EQ(frame.record_id, 3);

  ASSERT_TRUE(ParseClientFrame(MatchRequestFrame("AB", "", 0, {"probe"}, 5),
                               &frame, &code, &error))
      << error;
  EXPECT_EQ(frame.type, ClientFrame::Type::kMatch);
  EXPECT_EQ(frame.top_k, 5);

  ASSERT_TRUE(ParseClientFrame(InvalidationsRequestFrame(false), &frame,
                               &code, &error))
      << error;
  EXPECT_EQ(frame.type, ClientFrame::Type::kInvalidations);
  EXPECT_FALSE(frame.subscribe);
}

TEST(StreamWireTest, V2VerbsRequireDeclaredVersion) {
  ClientFrame frame;
  std::string code, error;
  // The same verb without the frame-level declaration is refused —
  // a v1 client can never stumble into streaming semantics.
  EXPECT_FALSE(ParseClientFrame(
      "{\"type\":\"upsert\",\"dataset\":\"AB\",\"side\":0,\"id\":1,"
      "\"values\":[\"x\"]}",
      &frame, &code, &error));
  EXPECT_EQ(code, kErrUnsupportedSchema);
  EXPECT_NE(error.find("schema_version 2 verb"), std::string::npos) << error;
}

TEST(StreamWireTest, FutureSchemaFrameRejectedWithStableCode) {
  ClientFrame frame;
  std::string code, error;
  EXPECT_FALSE(ParseClientFrame("{\"schema_version\":3,\"type\":\"ping\"}",
                                &frame, &code, &error));
  EXPECT_EQ(code, kErrUnsupportedSchema);
  EXPECT_EQ(error,
            "frame speaks schema_version 3; this server supports <= 2");
}

// ---------------------------------------------------------------------
// Live server: negotiation, capabilities, verbs.

TEST(StreamServiceTest, StreamingVerbsUnavailableWithoutStreamDir) {
  ScratchDir scratch("nostream");
  NetServerOptions options;
  options.runner.job_root = scratch.dir() + "/jobs";
  options.runner.workers = 1;
  auto server = std::make_unique<NetServer>(std::move(options));
  std::string error;
  ASSERT_TRUE(server->StartBackground(&error)) << error;

  TestClient client(server->port());
  JsonValue reply =
      client.RoundTripFrame(UpsertRequestFrame("AB", "", 0, 1, {"x", "x"}));
  EXPECT_EQ(TextOf(reply, "type"), "error");
  EXPECT_EQ(TextOf(reply, "code"), "streaming_unavailable");
  // The v2 frame upgraded the connection; the error is stamped v2.
  EXPECT_EQ(IntOf(reply, "schema_version"), 2);

  // Ping advertises streaming off.
  reply = client.RoundTripFrame("{\"type\":\"ping\"}");
  const JsonValue* caps = reply.Find("capabilities");
  ASSERT_NE(caps, nullptr);
  ASSERT_NE(caps->Find("streaming"), nullptr);
  EXPECT_FALSE(caps->Find("streaming")->bool_value());
  server->Stop(/*drain=*/true);
}

TEST(StreamServiceTest, NegotiationIsStickyPerConnection) {
  ScratchDir scratch("sticky");
  StreamServer ss(scratch.dir());
  TestClient client(ss.server->port());

  // A bare (v1) frame answers at v1.
  JsonValue reply = client.RoundTripFrame("{\"type\":\"ping\"}");
  EXPECT_EQ(IntOf(reply, "schema_version"), 1);
  // Declaring v2 upgrades the connection...
  reply = client.RoundTripFrame("{\"schema_version\":2,\"type\":\"ping\"}");
  EXPECT_EQ(IntOf(reply, "schema_version"), 2);
  // ...and it never downgrades, even for later version-less frames.
  reply = client.RoundTripFrame("{\"type\":\"ping\"}");
  EXPECT_EQ(IntOf(reply, "schema_version"), 2);

  // A fresh connection starts back at v1 — negotiation is per
  // connection, not per server.
  TestClient fresh(ss.server->port());
  reply = fresh.RoundTripFrame("{\"type\":\"ping\"}");
  EXPECT_EQ(IntOf(reply, "schema_version"), 1);
  ss.server->Stop(/*drain=*/true);
}

TEST(StreamServiceTest, PingCapabilitiesAdvertiseStreamingVerbs) {
  ScratchDir scratch("caps");
  StreamServer ss(scratch.dir());
  TestClient client(ss.server->port());
  JsonValue reply = client.RoundTripFrame("{\"type\":\"ping\"}");
  const JsonValue* caps = reply.Find("capabilities");
  ASSERT_NE(caps, nullptr);
  EXPECT_TRUE(caps->Find("streaming")->bool_value());
  EXPECT_EQ(caps->Find("workers")->int_value(), 1);
  EXPECT_EQ(caps->Find("store_mode")->string_value(), "none");
  const JsonValue* versions = caps->Find("schema_versions");
  ASSERT_NE(versions, nullptr);
  ASSERT_EQ(versions->array_items().size(), 2u);
  EXPECT_EQ(versions->array_items()[1].int_value(), 2);
  bool has_upsert = false;
  for (const JsonValue& verb : caps->Find("verbs")->array_items()) {
    if (verb.string_value() == "upsert") has_upsert = true;
  }
  EXPECT_TRUE(has_upsert);
  ss.server->Stop(/*drain=*/true);
}

TEST(StreamServiceTest, UpsertMatchRemoveRoundTrip) {
  ScratchDir scratch("verbs");
  StreamServer ss(scratch.dir());
  const data::Dataset base = data::MakeBenchmark("AB");
  std::vector<std::string> values(
      static_cast<size_t>(base.left.schema().size()),
      "zyzzyx streamrecord");

  TestClient client(ss.server->port());
  // Upsert a brand-new left record.
  JsonValue reply = client.RoundTripFrame(
      UpsertRequestFrame("AB", "", 0, 900001, values));
  ASSERT_EQ(TextOf(reply, "type"), "upserted") << TextOf(reply, "message");
  EXPECT_TRUE(reply.Find("created")->bool_value());
  EXPECT_GE(IntOf(reply, "seq"), 1);
  EXPECT_EQ(IntOf(reply, "slot"), 0);

  // Match finds it by its (unique) tokens.
  reply = client.RoundTripFrame(
      MatchRequestFrame("AB", "", 0, {"zyzzyx"}, 5));
  ASSERT_EQ(TextOf(reply, "type"), "match");
  const JsonValue* candidates = reply.Find("candidates");
  ASSERT_NE(candidates, nullptr);
  ASSERT_EQ(candidates->array_items().size(), 1u);
  EXPECT_EQ(candidates->array_items()[0].Find("id")->int_value(), 900001);

  // Remove tombstones it; the match goes empty.
  reply = client.RoundTripFrame(RemoveRequestFrame("AB", "", 0, 900001));
  ASSERT_EQ(TextOf(reply, "type"), "removed");
  EXPECT_TRUE(reply.Find("removed")->bool_value());
  reply = client.RoundTripFrame(MatchRequestFrame("AB", "", 0,
                                                  {"zyzzyx"}, 5));
  EXPECT_TRUE(reply.Find("candidates")->array_items().empty());

  // Removing again acks as a no-op.
  reply = client.RoundTripFrame(RemoveRequestFrame("AB", "", 0, 900001));
  ASSERT_EQ(TextOf(reply, "type"), "removed");
  EXPECT_FALSE(reply.Find("removed")->bool_value());

  // Unknown dataset / malformed record map to their stable codes.
  reply = client.RoundTripFrame(
      UpsertRequestFrame("NOPE", "", 0, 1, values));
  EXPECT_EQ(TextOf(reply, "code"), "unknown_dataset");
  reply = client.RoundTripFrame(
      UpsertRequestFrame("AB", "", 0, 1, {"wrong-arity"}));
  EXPECT_EQ(TextOf(reply, "code"), "bad_record");
  ss.server->Stop(/*drain=*/true);
}

TEST(StreamServiceTest, InvalidationSubscriberSeesUpsertEvents) {
  ScratchDir scratch("inval");
  StreamServer ss(scratch.dir());
  const data::Dataset base = data::MakeBenchmark("AB");

  // Subscribe on one connection.
  TestClient subscriber(ss.server->port());
  JsonValue reply =
      subscriber.RoundTripFrame(InvalidationsRequestFrame(true));
  ASSERT_EQ(TextOf(reply, "type"), "invalidations");
  ASSERT_NE(reply.Find("subscribed"), nullptr);
  EXPECT_TRUE(reply.Find("subscribed")->bool_value());
  ASSERT_NE(reply.Find("stale"), nullptr);
  EXPECT_TRUE(reply.Find("stale")->array_items().empty());

  // Submit a tiny job and wait for its terminal event on the submit
  // connection, so its deps are registered.
  api::ExplainRequest request;
  request.id = "watched-job";
  request.dataset = "AB";
  request.model = "svm";
  request.pair_index = 0;
  request.triangles = 10;
  TestClient submitter(ss.server->port());
  ASSERT_TRUE(submitter.SendLine(SubmitFrame(request, /*watch=*/true)));
  JsonValue frame;
  ASSERT_TRUE(submitter.ReadFrame(&frame));
  ASSERT_EQ(TextOf(frame, "type"), "accepted") << TextOf(frame, "message");
  bool terminal = false;
  while (!terminal && submitter.ReadFrame(&frame)) {
    terminal = TextOf(frame, "type") == "event" &&
               TextOf(frame, "event") == "terminal";
  }
  ASSERT_TRUE(terminal);

  // Mutate the job's left input record: the subscriber gets an
  // asynchronous invalidation event naming the job.
  const data::LabeledPair& pair = base.test[0];
  const data::Record& left = base.left.record(pair.left_index);
  std::vector<std::string> mutated = left.values;
  mutated[0] = "freshly mutated value";
  JsonValue ack = submitter.RoundTripFrame(
      UpsertRequestFrame("AB", "", 0, left.id, mutated));
  ASSERT_EQ(TextOf(ack, "type"), "upserted") << TextOf(ack, "message");

  ASSERT_TRUE(subscriber.ReadFrame(&frame));
  EXPECT_EQ(TextOf(frame, "type"), "event");
  EXPECT_EQ(TextOf(frame, "event"), "invalidation");
  EXPECT_EQ(TextOf(frame, "job_id"), "watched-job");
  EXPECT_EQ(IntOf(frame, "id"), left.id);

  // A late subscriber catches up through the stale_jobs list.
  TestClient late(ss.server->port());
  reply = late.RoundTripFrame(InvalidationsRequestFrame(true));
  ASSERT_NE(reply.Find("stale"), nullptr);
  ASSERT_EQ(reply.Find("stale")->array_items().size(), 1u);
  EXPECT_EQ(reply.Find("stale")->array_items()[0].string_value(),
            "watched-job");
  ss.server->Stop(/*drain=*/true);
}

TEST(StreamServiceTest, StaleResultAnswersThenRecomputes) {
  ScratchDir scratch("stale");
  StreamServer ss(scratch.dir());
  const data::Dataset base = data::MakeBenchmark("AB");

  api::ExplainRequest request;
  request.id = "stale-job";
  request.dataset = "AB";
  request.model = "svm";
  request.pair_index = 0;
  request.triangles = 10;

  TestClient client(ss.server->port());
  ASSERT_TRUE(client.SendLine(SubmitFrame(request, /*watch=*/true)));
  JsonValue frame;
  ASSERT_TRUE(client.ReadFrame(&frame));
  ASSERT_EQ(TextOf(frame, "type"), "accepted") << TextOf(frame, "message");
  bool terminal = false;
  while (!terminal && client.ReadFrame(&frame)) {
    terminal = TextOf(frame, "type") == "event" &&
               TextOf(frame, "event") == "terminal";
  }
  ASSERT_TRUE(terminal);

  // Clean fetch first.
  JsonValue reply = client.RoundTripFrame(ResultRequestFrame("stale-job"));
  ASSERT_EQ(TextOf(reply, "type"), "result");

  // Mutate the explained pair's right record.
  const data::LabeledPair& pair = base.test[0];
  const data::Record& right = base.right.record(pair.right_index);
  std::vector<std::string> mutated = right.values;
  mutated[0] = "drifted value";
  reply = client.RoundTripFrame(
      UpsertRequestFrame("AB", "", 1, right.id, mutated));
  ASSERT_EQ(TextOf(reply, "type"), "upserted") << TextOf(reply, "message");

  // The next result fetch says stale_recomputing and re-admits the job.
  reply = client.RoundTripFrame(ResultRequestFrame("stale-job"));
  ASSERT_EQ(TextOf(reply, "type"), "error");
  EXPECT_EQ(TextOf(reply, "code"), "stale_recomputing");

  // Poll status until the recompute lands, then the result serves
  // cleanly again (the recompute's dataset hook cleared the mark).
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  for (;;) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "recompute never completed";
    reply = client.RoundTripFrame(ResultRequestFrame("stale-job"));
    if (TextOf(reply, "type") == "result") break;
    // Early polls say stale_recomputing; once the recompute has re-
    // registered its deps (clearing the mark) they say not_complete.
    const std::string code = TextOf(reply, "code");
    EXPECT_TRUE(code == "stale_recomputing" || code == "not_complete")
        << code << ": " << TextOf(reply, "message");
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  EXPECT_FALSE(ss.coordinator.IsStale("stale-job"));
  ss.server->Stop(/*drain=*/true);
}

// ---------------------------------------------------------------------
// v1 compatibility: aliases + note-once on v1, strictness on v2, and
// the golden byte-for-byte corpus.

TEST(StreamServiceTest, V1AliasesNoteOncePerConnection) {
  ScratchDir scratch("alias");
  StreamServer ss(scratch.dir());
  TestClient client(ss.server->port());
  // Legacy "pair-index" spelling inside a v1 request: accepted, with a
  // deprecation note on the FIRST reply only.
  const std::string submit =
      "{\"type\":\"submit\",\"watch\":false,\"request\":{\"id\":\"a1\","
      "\"dataset\":\"AB\",\"model\":\"svm\",\"pair-index\":0,"
      "\"triangles\":10}}";
  JsonValue reply = client.RoundTripFrame(submit);
  ASSERT_EQ(TextOf(reply, "type"), "accepted") << TextOf(reply, "message");
  EXPECT_NE(TextOf(reply, "note").find("'pair-index' is deprecated"),
            std::string::npos)
      << "first accepted frame should nudge away from the legacy key, got: "
      << TextOf(reply, "note");

  const std::string submit2 =
      "{\"type\":\"submit\",\"watch\":false,\"request\":{\"id\":\"a2\","
      "\"dataset\":\"AB\",\"model\":\"svm\",\"pair-index\":0,"
      "\"triangles\":10}}";
  reply = client.RoundTripFrame(submit2);
  ASSERT_EQ(TextOf(reply, "type"), "accepted");
  EXPECT_EQ(reply.Find("note"), nullptr)
      << "the migration nudge is once per connection";
  ss.server->Stop(/*drain=*/true);
}

TEST(StreamServiceTest, V2RequestsRejectLegacyKeySpellings) {
  ScratchDir scratch("strict");
  StreamServer ss(scratch.dir());
  TestClient client(ss.server->port());
  // The same request at schema_version 2 must use canonical snake_case;
  // the error points at the canonical key.
  const std::string submit =
      "{\"schema_version\":2,\"type\":\"submit\",\"watch\":false,"
      "\"request\":{\"schema_version\":2,\"id\":\"s1\",\"dataset\":\"AB\","
      "\"model\":\"svm\",\"pair-index\":0,\"triangles\":10}}";
  JsonValue reply = client.RoundTripFrame(submit);
  ASSERT_EQ(TextOf(reply, "type"), "error");
  EXPECT_EQ(TextOf(reply, "code"), "bad_request");
  EXPECT_NE(TextOf(reply, "message").find("pair_index"), std::string::npos)
      << TextOf(reply, "message");
  ss.server->Stop(/*drain=*/true);
}

TEST(StreamServiceTest, GoldenV1FramesReplyByteIdentically) {
  ScratchDir scratch("golden");
  // Plain v1-era server shape: no stream, one worker.
  NetServerOptions options;
  options.runner.job_root = scratch.dir() + "/jobs";
  options.runner.workers = 1;
  auto server = std::make_unique<NetServer>(std::move(options));
  std::string error;
  ASSERT_TRUE(server->StartBackground(&error)) << error;
  TestClient client(server->port());

  // Literal v1 request frames with their reply lines pinned
  // byte-for-byte. These are the frozen v1 contract: a change here is
  // a wire-visible breaking change for deployed v1 clients.
  const struct {
    const char* request;
    const char* reply;
  } kCorpus[] = {
      {"{\"type\":\"ping\"}",
       "{\"schema_version\":1,\"type\":\"pong\",\"capabilities\":{"
       "\"schema_versions\":[1,2],\"verbs\":[\"submit\",\"status\","
       "\"result\",\"cancel\",\"stats\",\"ping\"],\"workers\":1,"
       "\"store_mode\":\"none\",\"streaming\":false}}"},
      {"{\"schema_version\":1,\"type\":\"ping\"}",
       "{\"schema_version\":1,\"type\":\"pong\",\"capabilities\":{"
       "\"schema_versions\":[1,2],\"verbs\":[\"submit\",\"status\","
       "\"result\",\"cancel\",\"stats\",\"ping\"],\"workers\":1,"
       "\"store_mode\":\"none\",\"streaming\":false}}"},
      {"{\"type\":\"status\",\"job_id\":\"ghost\"}",
       "{\"schema_version\":1,\"type\":\"error\",\"code\":\"unknown_job\","
       "\"message\":\"no job named \\\"ghost\\\"\",\"job_id\":\"ghost\"}"},
      {"{\"type\":\"warp\"}",
       "{\"schema_version\":1,\"type\":\"error\",\"code\":\"bad_frame\","
       "\"message\":\"unknown frame type \\\"warp\\\"\"}"},
      {"{\"schema_version\":3,\"type\":\"ping\"}",
       "{\"schema_version\":1,\"type\":\"error\","
       "\"code\":\"unsupported_schema\",\"message\":\"frame speaks "
       "schema_version 3; this server supports <= 2\"}"},
  };
  for (const auto& entry : kCorpus) {
    EXPECT_EQ(client.RoundTrip(entry.request), entry.reply)
        << "request: " << entry.request;
  }
  server->Stop(/*drain=*/true);
}

}  // namespace
}  // namespace certa::net
