#include "eval/stability.h"

#include <gtest/gtest.h>

namespace certa::eval {
namespace {

explain::SaliencyExplanation Make(std::vector<double> left,
                                  std::vector<double> right) {
  explain::SaliencyExplanation explanation(
      static_cast<int>(left.size()), static_cast<int>(right.size()));
  for (size_t i = 0; i < left.size(); ++i) {
    explanation.set_score({data::Side::kLeft, static_cast<int>(i)},
                          left[i]);
  }
  for (size_t i = 0; i < right.size(); ++i) {
    explanation.set_score({data::Side::kRight, static_cast<int>(i)},
                          right[i]);
  }
  return explanation;
}

TEST(StabilityTest, IdenticalRunsScoreOne) {
  std::vector<explain::SaliencyExplanation> run = {
      Make({0.9, 0.1}, {0.5, 0.3}), Make({0.2, 0.8}, {0.1, 0.7})};
  EXPECT_DOUBLE_EQ(SaliencyStability(run, run), 1.0);
}

TEST(StabilityTest, MonotoneRescalingStillScoresOne) {
  // Stability is about the *ranking*, not magnitudes.
  std::vector<explain::SaliencyExplanation> a = {
      Make({0.9, 0.1}, {0.5, 0.3})};
  std::vector<explain::SaliencyExplanation> b = {
      Make({0.09, 0.01}, {0.05, 0.03})};
  EXPECT_DOUBLE_EQ(SaliencyStability(a, b), 1.0);
}

TEST(StabilityTest, ReversedRankingScoresMinusOne) {
  std::vector<explain::SaliencyExplanation> a = {
      Make({0.9, 0.6}, {0.4, 0.1})};
  std::vector<explain::SaliencyExplanation> b = {
      Make({0.1, 0.4}, {0.6, 0.9})};
  EXPECT_DOUBLE_EQ(SaliencyStability(a, b), -1.0);
}

TEST(StabilityTest, EmptyRunsAreTriviallyStable) {
  EXPECT_DOUBLE_EQ(SaliencyStability({}, {}), 1.0);
}

TEST(StabilityTest, AveragesAcrossPairs) {
  std::vector<explain::SaliencyExplanation> a = {
      Make({0.9, 0.6}, {0.4, 0.1}), Make({0.9, 0.6}, {0.4, 0.1})};
  std::vector<explain::SaliencyExplanation> b = {
      Make({0.9, 0.6}, {0.4, 0.1}),    // identical -> +1
      Make({0.1, 0.4}, {0.6, 0.9})};   // reversed -> -1
  EXPECT_NEAR(SaliencyStability(a, b), 0.0, 1e-12);
}

}  // namespace
}  // namespace certa::eval
