#include <filesystem>
#include <fstream>

#include <unistd.h>

#include <gtest/gtest.h>

#include "data/benchmarks.h"
#include "ml/linear_svm.h"
#include "ml/logistic_regression.h"
#include "ml/mlp.h"
#include "ml/scaler.h"
#include "models/trainer.h"
#include "util/archive.h"

namespace certa {
namespace {

// --- TextArchive -----------------------------------------------------------

TEST(TextArchiveTest, RoundtripsAllTypes) {
  TextArchive archive;
  archive.PutString("name", "a value with spaces");
  archive.PutInt("count", -42);
  archive.PutDouble("pi", 3.14159265358979);
  archive.PutVector("vec", {1.5, -2.5, 0.0});

  TextArchive parsed;
  ASSERT_TRUE(TextArchive::Parse(archive.Serialize(), &parsed));
  std::string text;
  long long integer = 0;
  double number = 0.0;
  std::vector<double> vec;
  ASSERT_TRUE(parsed.GetString("name", &text));
  EXPECT_EQ(text, "a value with spaces");
  ASSERT_TRUE(parsed.GetInt("count", &integer));
  EXPECT_EQ(integer, -42);
  ASSERT_TRUE(parsed.GetDouble("pi", &number));
  EXPECT_DOUBLE_EQ(number, 3.14159265358979);
  ASSERT_TRUE(parsed.GetVector("vec", &vec));
  EXPECT_EQ(vec, (std::vector<double>{1.5, -2.5, 0.0}));
}

TEST(TextArchiveTest, ExactDoublePrecision) {
  TextArchive archive;
  double value = 0.1 + 0.2;  // not exactly 0.3
  archive.PutDouble("x", value);
  TextArchive parsed;
  ASSERT_TRUE(TextArchive::Parse(archive.Serialize(), &parsed));
  double loaded = 0.0;
  ASSERT_TRUE(parsed.GetDouble("x", &loaded));
  EXPECT_EQ(loaded, value);  // bit-exact via %.17g
}

TEST(TextArchiveTest, MissingKeysReturnFalse) {
  TextArchive archive;
  std::string text;
  double number = 0.0;
  EXPECT_FALSE(archive.GetString("nope", &text));
  EXPECT_FALSE(archive.GetDouble("nope", &number));
  EXPECT_FALSE(archive.Has("nope"));
}

TEST(TextArchiveTest, RejectsMalformedInput) {
  TextArchive parsed;
  EXPECT_FALSE(TextArchive::Parse("x badtag 1\n", &parsed));
  EXPECT_FALSE(TextArchive::Parse("v key 3 1.0 2.0\n", &parsed));  // count
  EXPECT_FALSE(TextArchive::Parse("d key notanumber\n", &parsed));
  EXPECT_TRUE(TextArchive::Parse("", &parsed));  // empty is fine
}

TEST(TextArchiveTest, SerializationIsCanonical) {
  TextArchive a;
  a.PutInt("b", 2);
  a.PutInt("a", 1);
  TextArchive b;
  b.PutInt("a", 1);
  b.PutInt("b", 2);
  EXPECT_EQ(a.Serialize(), b.Serialize());
}

// --- component round trips ---------------------------------------------------

TEST(PersistenceTest, ScalerRoundtrip) {
  ml::StandardScaler scaler;
  scaler.Fit({{1.0, 5.0}, {3.0, 5.0}});
  TextArchive archive;
  scaler.Save(&archive, "s");
  ml::StandardScaler loaded;
  ASSERT_TRUE(loaded.Load(archive, "s"));
  EXPECT_EQ(loaded.Transform({2.5, 7.0}), scaler.Transform({2.5, 7.0}));
}

TEST(PersistenceTest, LogisticRoundtrip) {
  ml::LogisticRegression model;
  model.Fit({{1.0}, {-1.0}, {0.5}, {-0.5}}, {1, 0, 1, 0});
  TextArchive archive;
  model.Save(&archive, "m");
  ml::LogisticRegression loaded;
  ASSERT_TRUE(loaded.Load(archive, "m"));
  EXPECT_DOUBLE_EQ(loaded.PredictProbability({0.7}),
                   model.PredictProbability({0.7}));
}

TEST(PersistenceTest, SvmRoundtrip) {
  ml::LinearSvm model;
  model.Fit({{1.0}, {2.0}, {-1.0}, {-2.0}}, {1, 1, 0, 0});
  TextArchive archive;
  model.Save(&archive, "m");
  ml::LinearSvm loaded;
  ASSERT_TRUE(loaded.Load(archive, "m"));
  EXPECT_DOUBLE_EQ(loaded.PredictProbability({1.3}),
                   model.PredictProbability({1.3}));
}

TEST(PersistenceTest, MlpRoundtrip) {
  ml::Mlp model;
  ml::Mlp::Options options;
  options.hidden_sizes = {4};
  options.epochs = 50;
  model.Fit({{1.0, 0.0}, {0.0, 1.0}, {1.0, 1.0}, {0.0, 0.0}},
            {1, 1, 0, 0}, options);
  TextArchive archive;
  model.Save(&archive, "m");
  ml::Mlp loaded;
  ASSERT_TRUE(loaded.Load(archive, "m"));
  EXPECT_DOUBLE_EQ(loaded.PredictProbability({0.3, 0.8}),
                   model.PredictProbability({0.3, 0.8}));
}

TEST(PersistenceTest, MlpLoadRejectsCorruptShapes) {
  TextArchive archive;
  archive.PutInt("m.layers", 1);
  archive.PutInt("m.layer0.rows", 2);
  archive.PutInt("m.layer0.cols", 2);
  archive.PutVector("m.layer0.weights", {1.0, 2.0, 3.0});  // wrong size
  archive.PutVector("m.layer0.bias", {0.0, 0.0});
  ml::Mlp loaded;
  EXPECT_FALSE(loaded.Load(archive, "m"));
}

// --- full matcher round trips ------------------------------------------------

class MatcherPersistenceTest
    : public ::testing::TestWithParam<models::ModelKind> {
 protected:
  void SetUp() override {
    directory_ = std::filesystem::temp_directory_path() /
                 ("certa_model_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(directory_);
  }
  void TearDown() override { std::filesystem::remove_all(directory_); }
  std::filesystem::path directory_;
};

TEST_P(MatcherPersistenceTest, ScoresSurviveSaveLoad) {
  data::Dataset dataset = data::MakeBenchmark("AB");
  auto model = models::TrainMatcher(GetParam(), dataset);
  std::string path = (directory_ / "model.certa").string();
  ASSERT_TRUE(models::SaveMatcher(*model, GetParam(), path));

  models::ModelKind loaded_kind;
  std::unique_ptr<models::Matcher> loaded =
      models::LoadMatcher(path, &loaded_kind);
  ASSERT_NE(loaded, nullptr);
  EXPECT_EQ(loaded_kind, GetParam());
  EXPECT_EQ(loaded->name(), model->name());
  for (size_t p = 0; p < 10 && p < dataset.test.size(); ++p) {
    const auto& pair = dataset.test[p];
    const auto& u = dataset.left.record(pair.left_index);
    const auto& v = dataset.right.record(pair.right_index);
    EXPECT_DOUBLE_EQ(loaded->Score(u, v), model->Score(u, v));
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, MatcherPersistenceTest,
    ::testing::Values(models::ModelKind::kDeepEr,
                      models::ModelKind::kDeepMatcher,
                      models::ModelKind::kDitto, models::ModelKind::kSvm),
    [](const auto& info) { return models::ModelKindName(info.param); });

TEST(MatcherPersistenceErrorsTest, MissingFileReturnsNull) {
  models::ModelKind kind;
  EXPECT_EQ(models::LoadMatcher("/nonexistent/path.certa", &kind),
            nullptr);
}

TEST(MatcherPersistenceErrorsTest, CorruptFormatReturnsNull) {
  std::filesystem::path path =
      std::filesystem::temp_directory_path() /
      ("certa_corrupt_" + std::to_string(::getpid()) + ".certa");
  {
    std::ofstream out(path);
    out << "s format wrong-format\n";
  }
  models::ModelKind kind;
  EXPECT_EQ(models::LoadMatcher(path.string(), &kind), nullptr);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace certa
