#include <gtest/gtest.h>

#include "data/profiling.h"
#include "explain/aggregate.h"
#include "test_util.h"
#include "text/tokenizer.h"

namespace certa {
namespace {

using certa::testing::FakeMatcher;
using certa::testing::MakeRecord;
using certa::testing::MakeTable;

// --- aggregate explanations ---------------------------------------------

struct AggregateFixture {
  data::Table left = MakeTable("U", {"key", "noise"},
                               {{"k1", "n"}, {"k2", "n"}});
  data::Table right = MakeTable("V", {"key", "noise"},
                                {{"k1", "m"}, {"k9", "m"}});
  FakeMatcher model{[](const data::Record& u, const data::Record& v) {
    return u.value(0) == v.value(0) ? 0.9 : 0.1;
  }};
  explain::ExplainContext context{&model, &left, &right};
  std::vector<data::LabeledPair> pairs = {
      {0, 0, 1},   // predicted match
      {0, 1, 0},   // predicted non-match
      {1, 1, 0}};  // predicted non-match

  std::vector<explain::SaliencyExplanation> Explanations() const {
    std::vector<explain::SaliencyExplanation> explanations;
    // Match explanation blames key=0.8; non-match ones blame key=0.4
    // and key=0.6 respectively.
    double key_scores[3] = {0.8, 0.4, 0.6};
    for (double score : key_scores) {
      explain::SaliencyExplanation explanation(2, 2);
      explanation.set_score({data::Side::kLeft, 0}, score);
      explanation.set_score({data::Side::kLeft, 1}, 0.1);
      explanations.push_back(explanation);
    }
    return explanations;
  }
};

TEST(AggregateTest, ClassConditionalMeans) {
  AggregateFixture fixture;
  explain::GlobalExplanation global = explain::AggregateExplanations(
      fixture.context, fixture.pairs, fixture.left, fixture.right,
      fixture.Explanations());
  EXPECT_EQ(global.match_count, 1);
  EXPECT_EQ(global.non_match_count, 2);
  EXPECT_DOUBLE_EQ(global.mean_match.score({data::Side::kLeft, 0}), 0.8);
  EXPECT_DOUBLE_EQ(global.mean_non_match.score({data::Side::kLeft, 0}),
                   0.5);  // (0.4 + 0.6) / 2
  EXPECT_DOUBLE_EQ(global.mean_non_match.score({data::Side::kLeft, 1}),
                   0.1);
}

TEST(AggregateTest, RepresentativesAreValidIndices) {
  AggregateFixture fixture;
  explain::GlobalExplanation global = explain::AggregateExplanations(
      fixture.context, fixture.pairs, fixture.left, fixture.right,
      fixture.Explanations(), /*num_representatives=*/2);
  ASSERT_EQ(global.representative_pairs.size(), 2u);
  for (int index : global.representative_pairs) {
    EXPECT_GE(index, 0);
    EXPECT_LT(index, 3);
  }
  // The most central explanation (key=0.6 sits between 0.4 and 0.8)
  // is picked first.
  EXPECT_EQ(global.representative_pairs[0], 2);
}

TEST(AggregateTest, RenderContainsSections) {
  AggregateFixture fixture;
  explain::GlobalExplanation global = explain::AggregateExplanations(
      fixture.context, fixture.pairs, fixture.left, fixture.right,
      fixture.Explanations());
  std::string text = explain::RenderGlobalExplanation(
      global, fixture.left.schema(), fixture.right.schema());
  EXPECT_NE(text.find("predicted Match"), std::string::npos);
  EXPECT_NE(text.find("predicted Non-Match"), std::string::npos);
  EXPECT_NE(text.find("L_key"), std::string::npos);
  EXPECT_NE(text.find("representative pairs"), std::string::npos);
}

TEST(AggregateTest, EmptyPairsProduceEmptyGlobal) {
  AggregateFixture fixture;
  explain::GlobalExplanation global = explain::AggregateExplanations(
      fixture.context, {}, fixture.left, fixture.right, {});
  EXPECT_EQ(global.match_count, 0);
  EXPECT_EQ(global.non_match_count, 0);
  EXPECT_TRUE(global.representative_pairs.empty());
}

// --- dataset profiling ------------------------------------------------------

TEST(ProfilingTest, ComputesPerAttributeStatistics) {
  data::Table table = MakeTable("T", {"name", "price"},
                                {{"sony bravia tv", "99.99"},
                                 {"altec lansing", "NaN"},
                                 {"sony bravia tv", "42"},
                                 {"bose dock", ""}});
  std::vector<data::AttributeProfile> profiles =
      data::ProfileTable(table);
  ASSERT_EQ(profiles.size(), 2u);
  // name: never missing, 3 distinct of 4, mean 2.5 tokens, no numbers.
  EXPECT_DOUBLE_EQ(profiles[0].missing_rate, 0.0);
  EXPECT_DOUBLE_EQ(profiles[0].mean_tokens, 2.5);
  EXPECT_DOUBLE_EQ(profiles[0].distinct_ratio, 0.75);
  EXPECT_DOUBLE_EQ(profiles[0].numeric_rate, 0.0);
  // price: half missing, all numeric among present.
  EXPECT_DOUBLE_EQ(profiles[1].missing_rate, 0.5);
  EXPECT_DOUBLE_EQ(profiles[1].numeric_rate, 1.0);
  EXPECT_DOUBLE_EQ(profiles[1].distinct_ratio, 1.0);
}

TEST(ProfilingTest, EmptyTable) {
  data::Table table("T", data::Schema({"a"}));
  std::vector<data::AttributeProfile> profiles =
      data::ProfileTable(table);
  ASSERT_EQ(profiles.size(), 1u);
  EXPECT_DOUBLE_EQ(profiles[0].missing_rate, 0.0);
  EXPECT_DOUBLE_EQ(profiles[0].mean_tokens, 0.0);
}

TEST(ProfilingTest, RenderIsTabular) {
  data::Table table = MakeTable("T", {"a"}, {{"x"}});
  std::string text = data::RenderProfiles(data::ProfileTable(table));
  EXPECT_NE(text.find("Attribute"), std::string::npos);
  EXPECT_NE(text.find("missing"), std::string::npos);
  EXPECT_NE(text.find("| a"), std::string::npos);
}

}  // namespace
}  // namespace certa
