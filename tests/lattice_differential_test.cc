// Differential tests for the monotone lattice tagger. Part A compares
// the monotone-propagation tagger against exhaustive enumeration and a
// brute-force ground truth over every upward-closed flip family on
// small lattices (and seeded random families on l = 5). Part B runs the
// full explainer with and without the monotonicity assumption on all
// four trained matchers and requires identical explanations whenever
// the audited run certifies that the model really was monotone.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "core/certa_explainer.h"
#include "core/lattice.h"
#include "eval/harness.h"
#include "util/random.h"

namespace certa {
namespace {

using core::Lattice;
using explain::AttrMask;

/// The node masks of an l-attribute lattice: every mask except 0 and
/// the full set (the paper's footnote 2).
std::vector<AttrMask> NodeMasks(int num_attributes) {
  const AttrMask full = (AttrMask{1} << num_attributes) - 1;
  std::vector<AttrMask> nodes;
  for (AttrMask mask = 1; mask < full; ++mask) nodes.push_back(mask);
  return nodes;
}

bool IsSubset(AttrMask a, AttrMask b) { return (a & b) == a; }

/// Closes `seeds` upward within the proper non-empty subsets.
std::set<AttrMask> UpwardClosure(int num_attributes,
                                 const std::vector<AttrMask>& seeds) {
  std::set<AttrMask> family;
  for (AttrMask node : NodeMasks(num_attributes)) {
    for (AttrMask seed : seeds) {
      if (IsSubset(seed, node)) {
        family.insert(node);
        break;
      }
    }
  }
  return family;
}

/// Minimal elements of a family, brute force, ascending.
std::vector<AttrMask> MinimalElements(const std::set<AttrMask>& family) {
  std::vector<AttrMask> minimal;
  for (AttrMask mask : family) {
    bool has_smaller = false;
    for (AttrMask other : family) {
      if (other != mask && IsSubset(other, mask)) {
        has_smaller = true;
        break;
      }
    }
    if (!has_smaller) minimal.push_back(mask);
  }
  return minimal;  // std::set iterates ascending already
}

/// Runs the tagger four ways (serial/batched × monotone/exhaustive)
/// against one upward-closed family and checks every result against the
/// brute-force ground truth.
void CheckFamily(int num_attributes, const std::set<AttrMask>& family) {
  Lattice lattice(num_attributes);
  const auto flips = [&family](AttrMask mask) {
    return family.count(mask) > 0;
  };
  const auto flips_batch = [&family](const std::vector<AttrMask>& batch) {
    std::vector<uint8_t> out(batch.size());
    for (size_t i = 0; i < batch.size(); ++i) {
      out[i] = family.count(batch[i]) > 0 ? 1 : 0;
    }
    return out;
  };

  const Lattice::TagResult monotone = lattice.Tag(flips, true);
  const Lattice::TagResult exhaustive = lattice.Tag(flips, false);
  const Lattice::TagResult batched_monotone =
      lattice.Tag(flips_batch, true);
  const Lattice::TagResult batched_exhaustive =
      lattice.Tag(flips_batch, false);

  // Exhaustive enumeration tests every node; the monotone tagger may
  // not test fewer flips than exist (inference only ever adds flips for
  // genuinely monotone families, never invents or removes them).
  EXPECT_EQ(exhaustive.performed, lattice.node_count());
  EXPECT_LE(monotone.performed, exhaustive.performed);

  const std::vector<AttrMask> expected_nodes(family.begin(), family.end());
  for (const Lattice::TagResult* tags :
       {&monotone, &exhaustive, &batched_monotone, &batched_exhaustive}) {
    EXPECT_EQ(tags->total_flips, static_cast<int>(family.size()));
    for (AttrMask node : NodeMasks(num_attributes)) {
      EXPECT_EQ(tags->flip[node] != 0, family.count(node) > 0)
          << "l=" << num_attributes << " mask=" << node;
    }
    EXPECT_EQ(lattice.FlippedNodes(*tags), expected_nodes);
    EXPECT_EQ(lattice.MinimalFlippingAntichain(*tags),
              MinimalElements(family));
  }

  // The batched walk is specified to test exactly the nodes the serial
  // walk tests — a drop-in for batched scoring backends.
  EXPECT_EQ(batched_monotone.performed, monotone.performed);
  EXPECT_EQ(batched_monotone.tested, monotone.tested);
  EXPECT_EQ(batched_exhaustive.tested, exhaustive.tested);
}

TEST(LatticeDifferentialTest, AllUpwardClosedFamiliesSmallLattices) {
  // l = 2..4: enumerate EVERY subset of nodes and keep the upward-closed
  // ones (2^14 candidates at l = 4). Covers the empty family, the full
  // family, and every antichain shape in between.
  for (int l = 2; l <= 4; ++l) {
    const std::vector<AttrMask> nodes = NodeMasks(l);
    const AttrMask full = (AttrMask{1} << l) - 1;
    int families = 0;
    for (uint32_t pick = 0; pick < (1u << nodes.size()); ++pick) {
      std::set<AttrMask> family;
      for (size_t i = 0; i < nodes.size(); ++i) {
        if (pick & (1u << i)) family.insert(nodes[i]);
      }
      bool closed = true;
      for (AttrMask member : family) {
        for (AttrMask node : nodes) {
          if (node != member && IsSubset(member, node) &&
              family.count(node) == 0) {
            closed = false;
            break;
          }
        }
        if (!closed) break;
      }
      if (!closed) continue;
      ASSERT_TRUE(family.count(full) == 0);
      CheckFamily(l, family);
      ++families;
    }
    // Sanity that the sweep actually covered a non-trivial space.
    EXPECT_GE(families, l == 2 ? 4 : 9);
  }
}

TEST(LatticeDifferentialTest, SeededRandomFamiliesAtFiveAttributes) {
  // 2^30 subsets is out of reach at l = 5; sample 200 seeded antichains
  // and upward-close them instead.
  Rng rng(20260806);
  const std::vector<AttrMask> nodes = NodeMasks(5);
  for (int round = 0; round < 200; ++round) {
    const int num_seeds = rng.UniformInt(0, 4);
    std::vector<AttrMask> seeds;
    for (int s = 0; s < num_seeds; ++s) {
      seeds.push_back(nodes[rng.Index(nodes.size())]);
    }
    CheckFamily(5, UpwardClosure(5, seeds));
  }
}

/// Field-by-field comparison of the explanation content of two runs
/// (bookkeeping like predictions_performed legitimately differs between
/// the monotone and exhaustive taggers, so no JSON string compare).
void ExpectSameExplanation(const core::CertaResult& a,
                           const core::CertaResult& b) {
  EXPECT_EQ(a.saliency.left_scores(), b.saliency.left_scores());
  EXPECT_EQ(a.saliency.right_scores(), b.saliency.right_scores());
  EXPECT_EQ(a.best_sufficiency, b.best_sufficiency);
  EXPECT_EQ(a.best_side, b.best_side);
  EXPECT_EQ(a.best_mask, b.best_mask);
  EXPECT_EQ(a.set_sides, b.set_sides);
  EXPECT_EQ(a.set_masks, b.set_masks);
  EXPECT_EQ(a.set_sufficiencies, b.set_sufficiencies);
  ASSERT_EQ(a.counterfactuals.size(), b.counterfactuals.size());
  for (size_t i = 0; i < a.counterfactuals.size(); ++i) {
    const auto& ca = a.counterfactuals[i];
    const auto& cb = b.counterfactuals[i];
    EXPECT_EQ(ca.left.values, cb.left.values);
    EXPECT_EQ(ca.right.values, cb.right.values);
    EXPECT_EQ(ca.score, cb.score);
    EXPECT_EQ(ca.sufficiency, cb.sufficiency);
  }
}

class EndToEndDifferentialTest
    : public ::testing::TestWithParam<models::ModelKind> {};

TEST_P(EndToEndDifferentialTest, MonotoneMatchesExhaustiveWhenAudited) {
  eval::HarnessOptions harness;
  harness.max_pairs = 4;
  harness.num_triangles = 10;
  auto setup = eval::Prepare("AB", GetParam(), harness);

  core::CertaExplainer::Options monotone = eval::CertaOptionsFor(harness);
  monotone.assume_monotone = true;
  // Audit every inferred tag so inference_errors certifies, per pair,
  // whether the model actually behaved monotonically.
  monotone.audit_inferences = true;
  core::CertaExplainer::Options exhaustive = monotone;
  exhaustive.assume_monotone = false;
  exhaustive.audit_inferences = false;

  core::CertaExplainer fast(setup->context, monotone);
  core::CertaExplainer slow(setup->context, exhaustive);

  int verified = 0;
  for (const auto& pair : eval::ExplainedPairs(*setup, harness)) {
    const data::Record& u = setup->dataset.left.record(pair.left_index);
    const data::Record& v = setup->dataset.right.record(pair.right_index);
    core::CertaResult inferred = fast.Explain(u, v);
    if (inferred.inference_errors > 0) continue;  // genuinely non-monotone
    core::CertaResult enumerated = slow.Explain(u, v);
    ExpectSameExplanation(inferred, enumerated);
    EXPECT_EQ(inferred.status, core::ExplainStatus::kComplete);
    ++verified;
  }
  // The differential claim is vacuous if auditing rejected every pair.
  EXPECT_GE(verified, 1);
}

INSTANTIATE_TEST_SUITE_P(
    AllMatchers, EndToEndDifferentialTest,
    ::testing::Values(models::ModelKind::kDeepEr,
                      models::ModelKind::kDeepMatcher,
                      models::ModelKind::kDitto, models::ModelKind::kSvm),
    [](const ::testing::TestParamInfo<models::ModelKind>& info) {
      return models::ModelKindName(info.param);
    });

}  // namespace
}  // namespace certa
