// End-to-end byte-identity battery for the scale features: the full
// CertaResult JSON must be identical with the candidate index on vs
// off, across thread counts, with the score store detached, cold, and
// warm — and across a real CLI process restart sharing a store
// directory (the second process pays zero fresh model calls). These
// are the contracts that let the flags default on (docs/PERSISTENCE.md).

#include <sys/wait.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/certa_explainer.h"
#include "data/benchmarks.h"
#include "models/scoring_engine.h"
#include "models/trainer.h"
#include "persist/score_store.h"

#ifndef CERTA_CLI_PATH
#error "CERTA_CLI_PATH must be defined to the certa CLI binary path"
#endif

namespace certa {
namespace {

namespace fs = std::filesystem;

fs::path Scratch(const std::string& tag) {
  fs::path dir = fs::temp_directory_path() /
                 ("certa_scale_eq_" + tag + "_" + std::to_string(::getpid()));
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

struct RunConfig {
  bool use_index = true;
  int threads = 1;
  persist::ScoreStore* store = nullptr;
};

/// One full explain over BA/svm with the screening partition forced on
/// (min_pool 0 — the tables are small), returning the result JSON.
std::string RunOnce(const data::Dataset& dataset,
                    const models::Matcher* model, const RunConfig& config) {
  models::ScoringEngine engine(model);
  explain::ExplainContext context{&engine, &dataset.left, &dataset.right};
  core::CertaExplainer::Options options;
  options.num_triangles = 100;
  options.num_threads = config.threads;
  options.use_candidate_index = config.use_index;
  options.support_partition_min_pool = 0;
  if (config.store != nullptr) {
    persist::ScoreStore* store = config.store;
    options.store_probe = [store](const models::PairKey& key, double* score) {
      return store->Lookup(9, key, score);
    };
    options.store_write = [store](const models::PairKey& key, double score) {
      store->Put(9, key, score);
    };
  }
  core::CertaExplainer explainer(context, options);
  const data::LabeledPair& pair = dataset.test[1];
  core::CertaResult result =
      explainer.Explain(dataset.left.record(pair.left_index),
                        dataset.right.record(pair.right_index));
  return core::CertaResultToJson(result, dataset.left.schema(),
                                 dataset.right.schema());
}

TEST(ScaleEquivalenceTest, IndexThreadsAndStoreAllByteIdentical) {
  const data::Dataset dataset = data::MakeBenchmark("BA");
  auto model = models::TrainMatcher(models::ModelKind::kSvm, dataset);
  const fs::path dir = Scratch("matrix");
  persist::ScoreStore store;
  ASSERT_TRUE(store.Open((dir / "store").string()));

  // Reference: index on, single thread, no store.
  const std::string reference =
      RunOnce(dataset, model.get(), {true, 1, nullptr});
  ASSERT_FALSE(reference.empty());

  EXPECT_EQ(RunOnce(dataset, model.get(), {false, 1, nullptr}), reference)
      << "index off changed the result";
  EXPECT_EQ(RunOnce(dataset, model.get(), {true, 4, nullptr}), reference)
      << "4 threads changed the result";
  EXPECT_EQ(RunOnce(dataset, model.get(), {false, 4, nullptr}), reference)
      << "index off + 4 threads changed the result";
  // Cold store (fills it), then warm store (serves from it), then a
  // warm run with the index off and threads up — every cell equal.
  EXPECT_EQ(RunOnce(dataset, model.get(), {true, 1, &store}), reference)
      << "cold store changed the result";
  ASSERT_TRUE(store.Sync());
  EXPECT_GT(store.entry_count(), 0u);
  EXPECT_EQ(RunOnce(dataset, model.get(), {true, 1, &store}), reference)
      << "warm store changed the result";
  EXPECT_EQ(RunOnce(dataset, model.get(), {false, 4, &store}), reference)
      << "warm store + index off + threads changed the result";
  fs::remove_all(dir);
}

TEST(ScaleEquivalenceTest, WarmStoreServesWithoutModelCalls) {
  const data::Dataset dataset = data::MakeBenchmark("BA");
  auto model = models::TrainMatcher(models::ModelKind::kSvm, dataset);
  const fs::path dir = Scratch("calls");
  persist::ScoreStore store;
  ASSERT_TRUE(store.Open((dir / "store").string()));

  const std::string cold = RunOnce(dataset, model.get(), {true, 1, &store});
  const long long paid = store.stats().appends;
  EXPECT_GT(paid, 0);
  const std::string warm = RunOnce(dataset, model.get(), {true, 1, &store});
  EXPECT_EQ(warm, cold);
  // The warm run re-put nothing: every score it needed came back from
  // the store (appends are deduped by key, so a fresh compute of an
  // already-stored pair would not append either — the hits counter is
  // the positive signal).
  EXPECT_EQ(store.stats().appends, paid);
  EXPECT_GT(store.stats().hits, 0);
  fs::remove_all(dir);
}

// -- across a real process restart --------------------------------------

int RunCli(const std::vector<std::string>& args, std::string* stdout_text) {
  std::string command = std::string("'") + CERTA_CLI_PATH + "'";
  for (const std::string& arg : args) command += " '" + arg + "'";
  command += " 2>/dev/null";
  FILE* pipe = ::popen(command.c_str(), "r");
  EXPECT_NE(pipe, nullptr);
  std::string output;
  char buffer[4096];
  size_t n;
  while ((n = ::fread(buffer, 1, sizeof(buffer), pipe)) > 0) {
    output.append(buffer, n);
  }
  const int status = ::pclose(pipe);
  if (stdout_text != nullptr) *stdout_text = std::move(output);
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

std::string ReadAll(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

TEST(ScaleEquivalenceTest, CliRestartWithSharedStoreIsFreeAndIdentical) {
  const fs::path root = Scratch("cli");
  const std::string store_dir = (root / "store").string();
  auto args = [&](const std::string& job, bool with_store) {
    std::vector<std::string> a{"explain",     "--dataset", "BA",
                               "--model",     "svm",       "--pair",
                               "1",           "--triangles", "200",
                               "--job-dir",   job};
    if (with_store) {
      a.push_back("--store-dir");
      a.push_back(store_dir);
    }
    return a;
  };
  std::string out1, out2, out3;
  ASSERT_EQ(RunCli(args((root / "j1").string(), true), &out1), 0);
  ASSERT_EQ(RunCli(args((root / "j2").string(), true), &out2), 0);
  ASSERT_EQ(RunCli(args((root / "j3").string(), false), &out3), 0);

  // First process paid fresh calls; the second paid none.
  EXPECT_NE(out1.find("store hits"), std::string::npos) << out1;
  EXPECT_NE(out2.find("0 fresh"), std::string::npos) << out2;
  EXPECT_EQ(out3.find("store hits"), std::string::npos)
      << "no-store run should not mention the store: " << out3;
  // All three result files are byte-identical.
  const std::string r1 = ReadAll(root / "j1" / "result.json");
  EXPECT_EQ(ReadAll(root / "j2" / "result.json"), r1);
  EXPECT_EQ(ReadAll(root / "j3" / "result.json"), r1);
  fs::remove_all(root);
}

}  // namespace
}  // namespace certa
