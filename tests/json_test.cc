#include <gtest/gtest.h>

#include "core/certa_explainer.h"
#include "explain/json_export.h"
#include "test_util.h"
#include "util/json_writer.h"

namespace certa {
namespace {

using certa::testing::MakeRecord;

TEST(JsonWriterTest, ScalarsAndNesting) {
  JsonWriter json;
  json.BeginObject();
  json.Key("name");
  json.String("certa");
  json.Key("score");
  json.Number(0.5);
  json.Key("count");
  json.Int(42);
  json.Key("flag");
  json.Bool(true);
  json.Key("missing");
  json.Null();
  json.Key("list");
  json.BeginArray();
  json.Int(1);
  json.Int(2);
  json.EndArray();
  json.EndObject();
  EXPECT_EQ(json.str(),
            "{\"name\":\"certa\",\"score\":0.5,\"count\":42,"
            "\"flag\":true,\"missing\":null,\"list\":[1,2]}");
}

TEST(JsonWriterTest, EscapesStrings) {
  JsonWriter json;
  json.String("he said \"hi\"\n\tback\\slash");
  EXPECT_EQ(json.str(), "\"he said \\\"hi\\\"\\n\\tback\\\\slash\"");
}

TEST(JsonWriterTest, ControlCharactersEscaped) {
  JsonWriter json;
  json.String(std::string("a\x01" "b", 3));
  EXPECT_EQ(json.str(), "\"a\\u0001b\"");
}

TEST(JsonWriterTest, NonFiniteNumbersBecomeNull) {
  JsonWriter json;
  json.BeginArray();
  json.Number(std::numeric_limits<double>::quiet_NaN());
  json.Number(std::numeric_limits<double>::infinity());
  json.Number(1.5);
  json.EndArray();
  EXPECT_EQ(json.str(), "[null,null,1.5]");
}

TEST(JsonWriterTest, NestedArraysOfObjects) {
  JsonWriter json;
  json.BeginArray();
  json.BeginObject();
  json.Key("a");
  json.Int(1);
  json.EndObject();
  json.BeginObject();
  json.Key("b");
  json.Int(2);
  json.EndObject();
  json.EndArray();
  EXPECT_EQ(json.str(), "[{\"a\":1},{\"b\":2}]");
}

TEST(JsonExportTest, SaliencyDocument) {
  data::Schema left({"name"});
  data::Schema right({"title"});
  explain::SaliencyExplanation explanation(1, 1);
  explanation.set_score({data::Side::kLeft, 0}, 0.75);
  explanation.set_score({data::Side::kRight, 0}, 0.25);
  std::string json = explain::SaliencyToJson(explanation, left, right);
  EXPECT_EQ(json,
            "{\"attributes\":[{\"name\":\"L_name\",\"score\":0.75},"
            "{\"name\":\"R_title\",\"score\":0.25}]}");
}

TEST(JsonExportTest, CounterfactualDocument) {
  data::Schema left({"name"});
  data::Schema right({"title"});
  explain::CounterfactualExample example;
  example.left = MakeRecord(3, {"new value"});
  example.right = MakeRecord(7, {"original"});
  example.changed_attributes = {{data::Side::kLeft, 0}};
  example.score = 0.1;
  example.sufficiency = 0.8;
  std::string json =
      explain::CounterfactualToJson(example, left, right);
  EXPECT_NE(json.find("\"changed_attributes\":[\"L_name\"]"),
            std::string::npos);
  EXPECT_NE(json.find("\"score\":0.1"), std::string::npos);
  EXPECT_NE(json.find("\"sufficiency\":0.8"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"new value\""), std::string::npos);
}

TEST(JsonExportTest, UnknownScoreBecomesNull) {
  data::Schema left({"a"});
  data::Schema right({"a"});
  explain::CounterfactualExample example;
  example.left = MakeRecord(0, {"x"});
  example.right = MakeRecord(1, {"y"});
  example.score = -1.0;  // unknown
  std::string json =
      explain::CounterfactualToJson(example, left, right);
  EXPECT_NE(json.find("\"score\":null"), std::string::npos);
}

TEST(JsonExportTest, CertaResultDocument) {
  data::Schema left({"a", "b"});
  data::Schema right({"a", "b"});
  core::CertaResult result;
  result.saliency = explain::SaliencyExplanation(2, 2);
  result.saliency.set_score({data::Side::kLeft, 0}, 0.9);
  result.best_sufficiency = 1.0;
  result.best_side = data::Side::kLeft;
  result.best_mask = 0b01;
  result.set_sides = {data::Side::kLeft};
  result.set_masks = {0b01};
  result.set_sufficiencies = {1.0};
  result.triangles_used = 4;
  result.predictions_expected = 8;
  result.predictions_performed = 5;
  result.predictions_saved = 3;
  std::string json = core::CertaResultToJson(result, left, right);
  EXPECT_NE(json.find("\"best_attribute_set\":[\"L_a\"]"),
            std::string::npos);
  EXPECT_NE(json.find("\"triangles_used\":4"), std::string::npos);
  EXPECT_NE(json.find("\"predictions_saved\":3"), std::string::npos);
  EXPECT_NE(json.find("\"sufficiency_per_set\":[{\"attributes\":"
                      "[\"L_a\"],\"sufficiency\":1}]"),
            std::string::npos);
}

}  // namespace
}  // namespace certa
