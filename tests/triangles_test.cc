#include "core/triangles.h"

#include <gtest/gtest.h>

#include "test_util.h"
#include "text/tokenizer.h"

namespace certa::core {
namespace {

using certa::testing::FakeMatcher;
using certa::testing::MakeRecord;
using certa::testing::MakeTable;

/// Tables where record value(0) encodes its class: "m*" records match
/// everything, "n*" records match nothing.
struct World {
  data::Table left = MakeTable(
      "U", {"a", "b"},
      {{"m0", "x y z"}, {"n0", "x y"}, {"n1", "y z"}, {"m1", "z w"}});
  data::Table right = MakeTable(
      "V", {"a", "b"},
      {{"m2", "p q"}, {"n2", "p r"}, {"n3", "q r s"}});
  FakeMatcher model{[](const data::Record& u, const data::Record& v) {
    // Pair matches iff both records are of the "m" class.
    return (u.value(0)[0] == 'm' && v.value(0)[0] == 'm') ? 0.9 : 0.1;
  }};
  explain::ExplainContext context{&model, &left, &right};
};

TEST(TrianglesTest, FindsOppositePredictionSupports) {
  World world;
  // Input pair (m0, m2) predicted Match. Left supports must satisfy
  // M(w, v) = Non-Match: n0, n1 qualify; m1 does not; m0 is self.
  Rng rng(3);
  TriangleStats stats;
  TriangleOptions options;
  options.count = 20;
  options.allow_augmentation = false;
  std::vector<OpenTriangle> triangles = CollectTriangles(
      world.context, world.left.record(0), world.right.record(0),
      /*original_prediction=*/true, options, &rng, &stats);
  int left_count = 0;
  int right_count = 0;
  for (const OpenTriangle& triangle : triangles) {
    EXPECT_FALSE(triangle.augmented);
    if (triangle.side == data::Side::kLeft) {
      ++left_count;
      EXPECT_EQ(triangle.support.value(0)[0], 'n');
    } else {
      ++right_count;
      EXPECT_EQ(triangle.support.value(0)[0], 'n');
    }
  }
  EXPECT_EQ(left_count, 2);   // n0, n1
  EXPECT_EQ(right_count, 2);  // n2, n3
  EXPECT_EQ(stats.natural, 4);
  EXPECT_EQ(stats.augmented, 0);
}

TEST(TrianglesTest, ExcludesSelfRecord) {
  World world;
  // Explaining a Non-Match (n0, m2): left supports need M(w, v) = Match
  // -> m0 and m1 qualify; n0 itself is excluded even though pairing it
  // would be checked first.
  Rng rng(3);
  TriangleStats stats;
  TriangleOptions options;
  options.count = 20;
  options.allow_augmentation = false;
  std::vector<OpenTriangle> triangles = CollectTriangles(
      world.context, world.left.record(1), world.right.record(0),
      /*original_prediction=*/false, options, &rng, &stats);
  for (const OpenTriangle& triangle : triangles) {
    EXPECT_NE(triangle.support.values, world.left.record(1).values);
  }
}

TEST(TrianglesTest, RespectsQuota) {
  World world;
  Rng rng(3);
  TriangleStats stats;
  TriangleOptions options;
  options.count = 2;  // one per side
  options.allow_augmentation = false;
  std::vector<OpenTriangle> triangles = CollectTriangles(
      world.context, world.left.record(0), world.right.record(0), true,
      options, &rng, &stats);
  EXPECT_EQ(triangles.size(), 2u);
}

TEST(TrianglesTest, AugmentationFillsShortage) {
  // A model that rejects every natural record but accepts variants with
  // fewer tokens in attribute "b".
  data::Table left = MakeTable("U", {"a", "b"},
                               {{"u", "k1 k2 k3"}, {"w", "t1 t2 t3"}});
  data::Table right = MakeTable("V", {"a", "b"}, {{"v", "p1 p2"}});
  FakeMatcher model([](const data::Record& u, const data::Record&) {
    // Match only when the left record has exactly one token in b.
    return text::RawTokens(u.value(1)).size() == 1 ? 0.9 : 0.1;
  });
  explain::ExplainContext context{&model, &left, &right};
  // Explain the Non-Match (u, v); left triangles need matches — only
  // augmented single-token variants can provide them.
  Rng rng(9);
  TriangleStats stats;
  TriangleOptions options;
  options.count = 8;
  options.max_augmentation_attempts_per_triangle = 50;
  std::vector<OpenTriangle> triangles =
      CollectTriangles(context, left.record(0), right.record(0),
                       /*original_prediction=*/false, options, &rng,
                       &stats);
  EXPECT_GT(stats.augmented, 0);
  for (const OpenTriangle& triangle : triangles) {
    if (triangle.side != data::Side::kLeft) continue;
    EXPECT_TRUE(triangle.augmented);
    EXPECT_EQ(text::RawTokens(triangle.support.value(1)).size(), 1u);
  }
}

TEST(TrianglesTest, OnlyAugmentationSkipsNaturalSupports) {
  World world;
  Rng rng(3);
  TriangleStats stats;
  TriangleOptions options;
  options.count = 6;
  options.only_augmentation = true;
  std::vector<OpenTriangle> triangles = CollectTriangles(
      world.context, world.left.record(0), world.right.record(0), true,
      options, &rng, &stats);
  EXPECT_EQ(stats.natural, 0);
  for (const OpenTriangle& triangle : triangles) {
    EXPECT_TRUE(triangle.augmented);
  }
}

TEST(TrianglesTest, DeterministicGivenSeed) {
  World world;
  TriangleOptions options;
  options.count = 4;
  auto run = [&]() {
    Rng rng(77);
    TriangleStats stats;
    return CollectTriangles(world.context, world.left.record(0),
                            world.right.record(0), true, options, &rng,
                            &stats);
  };
  std::vector<OpenTriangle> a = run();
  std::vector<OpenTriangle> b = run();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].side, b[i].side);
    EXPECT_EQ(a[i].support.values, b[i].support.values);
    EXPECT_EQ(a[i].augmented, b[i].augmented);
  }
}

}  // namespace
}  // namespace certa::core
