#include "core/lattice.h"

#include <set>

#include <gtest/gtest.h>

#include "util/random.h"

namespace certa::core {
namespace {

using explain::AttrMask;

TEST(LatticeTest, NodeCount) {
  EXPECT_EQ(Lattice(1).node_count(), 0);
  EXPECT_EQ(Lattice(2).node_count(), 2);
  EXPECT_EQ(Lattice(3).node_count(), 6);
  EXPECT_EQ(Lattice(8).node_count(), 254);
}

TEST(LatticeTest, ExhaustiveTagsEveryNode) {
  Lattice lattice(3);
  int calls = 0;
  auto flips = [&calls](AttrMask) {
    ++calls;
    return false;
  };
  Lattice::TagResult tags = lattice.Tag(flips, /*assume_monotone=*/false);
  EXPECT_EQ(calls, 6);
  EXPECT_EQ(tags.performed, 6);
  EXPECT_EQ(tags.total_flips, 0);
}

TEST(LatticeTest, MonotonePropagationSkipsSupersets) {
  Lattice lattice(3);
  // Only {attr0} flips at the base; everything above is inferred.
  auto flips = [](AttrMask mask) { return mask == 0b001u; };
  Lattice::TagResult tags = lattice.Tag(flips, /*assume_monotone=*/true);
  // Tested: 3 singletons + {attr1, attr2} = 4; inferred: {0,1}, {0,2}.
  EXPECT_EQ(tags.performed, 4);
  EXPECT_TRUE(tags.flip[0b001]);
  EXPECT_TRUE(tags.flip[0b011]);
  EXPECT_TRUE(tags.flip[0b101]);
  EXPECT_FALSE(tags.tested[0b011]);
  EXPECT_FALSE(tags.tested[0b101]);
  EXPECT_FALSE(tags.flip[0b110]);
  EXPECT_TRUE(tags.tested[0b110]);
  EXPECT_EQ(tags.total_flips, 3);
}

TEST(LatticeTest, PropagationIsTransitive) {
  Lattice lattice(4);
  auto flips = [](AttrMask mask) { return mask == 0b0001u; };
  Lattice::TagResult tags = lattice.Tag(flips, /*assume_monotone=*/true);
  // Every superset of {0} is flipped without testing, including
  // three-element sets reached through two propagation steps.
  EXPECT_TRUE(tags.flip[0b0111]);
  EXPECT_FALSE(tags.tested[0b0111]);
  EXPECT_TRUE(tags.flip[0b1011]);
  EXPECT_FALSE(tags.tested[0b1011]);
}

TEST(LatticeTest, PaperWorkedExampleCounts) {
  // Fig. 9(d): no singleton flips, all pairs flip -> every pair is
  // tested, and the MFA is all three pairs.
  Lattice lattice(3);
  auto flips = [](AttrMask mask) {
    return __builtin_popcount(mask) >= 2;
  };
  Lattice::TagResult tags = lattice.Tag(flips, /*assume_monotone=*/true);
  EXPECT_EQ(tags.performed, 6);  // 3 singletons + 3 pairs
  std::vector<AttrMask> mfa = lattice.MinimalFlippingAntichain(tags);
  EXPECT_EQ(mfa, (std::vector<AttrMask>{0b011, 0b101, 0b110}));
}

TEST(LatticeTest, MfaSingletons) {
  // Fig. 9(a): {N} and {D} flip at the base.
  Lattice lattice(3);
  auto flips = [](AttrMask mask) { return (mask & 0b011u) != 0u; };
  Lattice::TagResult tags = lattice.Tag(flips, /*assume_monotone=*/true);
  std::vector<AttrMask> mfa = lattice.MinimalFlippingAntichain(tags);
  EXPECT_EQ(mfa, (std::vector<AttrMask>{0b001, 0b010}));
  // 5 proper-subset flips: {N},{D},{ND},{NP},{DP}.
  EXPECT_EQ(tags.total_flips, 5);
}

TEST(LatticeTest, MfaMixedLevels) {
  // Fig. 9(b): {N} flips; {D},{P} don't; {D,P} flips.
  Lattice lattice(3);
  auto flips = [](AttrMask mask) {
    return (mask & 0b001u) != 0u || (mask & 0b110u) == 0b110u;
  };
  Lattice::TagResult tags = lattice.Tag(flips, /*assume_monotone=*/true);
  std::vector<AttrMask> mfa = lattice.MinimalFlippingAntichain(tags);
  EXPECT_EQ(mfa, (std::vector<AttrMask>{0b001, 0b110}));
  EXPECT_EQ(tags.performed, 4);  // singletons + {D,P}
}

TEST(LatticeTest, NoFlipsNoAntichain) {
  Lattice lattice(3);
  auto flips = [](AttrMask) { return false; };
  Lattice::TagResult tags = lattice.Tag(flips, true);
  EXPECT_TRUE(lattice.MinimalFlippingAntichain(tags).empty());
  EXPECT_TRUE(lattice.FlippedNodes(tags).empty());
}

TEST(LatticeTest, NonMonotoneFunctionExhaustiveMfa) {
  // Without the monotone assumption, a flipped superset of a flipped
  // node is still excluded from the MFA.
  Lattice lattice(3);
  // Flips: {0} and {0,1,?}: non-monotone hole at {0,1}.
  auto flips = [](AttrMask mask) {
    return mask == 0b001u || mask == 0b101u;
  };
  Lattice::TagResult tags = lattice.Tag(flips, /*assume_monotone=*/false);
  std::vector<AttrMask> mfa = lattice.MinimalFlippingAntichain(tags);
  EXPECT_EQ(mfa, (std::vector<AttrMask>{0b001}));
  EXPECT_EQ(tags.total_flips, 2);
}

TEST(LatticeTest, SingleAttributeDegenerate) {
  Lattice lattice(1);
  int calls = 0;
  auto flips = [&calls](AttrMask) {
    ++calls;
    return true;
  };
  Lattice::TagResult tags = lattice.Tag(flips, true);
  EXPECT_EQ(calls, 0);
  EXPECT_EQ(tags.performed, 0);
  EXPECT_TRUE(lattice.FlippedNodes(tags).empty());
}

// Property sweep: on *monotone* flip functions, monotone tagging must
// produce exactly the same flip labelling as exhaustive tagging while
// performing no more tests.
class LatticePropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(LatticePropertyTest, MonotoneMatchesExhaustiveOnMonotoneFunctions) {
  const int attributes = std::get<0>(GetParam());
  const int seed = std::get<1>(GetParam());
  Lattice lattice(attributes);
  Rng rng(seed);
  // Build a random monotone function as the upward closure of a random
  // set of generator masks.
  const AttrMask full = (1u << attributes) - 1u;
  std::set<AttrMask> generators;
  int count = rng.UniformInt(0, 3);
  for (int g = 0; g < count; ++g) {
    AttrMask mask = static_cast<AttrMask>(rng.UniformUint64(full) + 1);
    if (mask != full) generators.insert(mask);
  }
  auto flips = [&generators](AttrMask mask) {
    for (AttrMask g : generators) {
      if ((mask & g) == g) return true;
    }
    return false;
  };
  Lattice::TagResult fast = lattice.Tag(flips, /*assume_monotone=*/true);
  Lattice::TagResult slow = lattice.Tag(flips, /*assume_monotone=*/false);
  EXPECT_LE(fast.performed, slow.performed);
  EXPECT_EQ(fast.total_flips, slow.total_flips);
  for (AttrMask mask = 1; mask < full; ++mask) {
    EXPECT_EQ(fast.flip[mask], slow.flip[mask]) << "mask " << mask;
  }
  EXPECT_EQ(lattice.MinimalFlippingAntichain(fast),
            lattice.MinimalFlippingAntichain(slow));
}

TEST_P(LatticePropertyTest, MfaIsAnAntichainOfMinimalFlips) {
  const int attributes = std::get<0>(GetParam());
  const int seed = std::get<1>(GetParam());
  Lattice lattice(attributes);
  Rng rng(seed + 1000);
  // Arbitrary (possibly non-monotone) random flip function.
  const AttrMask full = (1u << attributes) - 1u;
  std::vector<bool> truth(full + 1, false);
  for (AttrMask mask = 1; mask < full; ++mask) {
    truth[mask] = rng.Bernoulli(0.3);
  }
  auto flips = [&truth](AttrMask mask) { return truth[mask]; };
  Lattice::TagResult tags = lattice.Tag(flips, /*assume_monotone=*/false);
  std::vector<AttrMask> mfa = lattice.MinimalFlippingAntichain(tags);
  for (AttrMask a : mfa) {
    EXPECT_TRUE(truth[a]);
    // Pairwise incomparable.
    for (AttrMask b : mfa) {
      if (a == b) continue;
      EXPECT_FALSE((a & b) == a || (a & b) == b)
          << a << " and " << b << " are comparable";
    }
    // No flipped proper subset.
    for (AttrMask sub = (a - 1) & a; sub != 0u; sub = (sub - 1) & a) {
      EXPECT_FALSE(truth[sub]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LatticePropertyTest,
    ::testing::Combine(::testing::Values(2, 3, 4, 5, 6, 8),
                       ::testing::Values(1, 2, 3, 4, 5)));

}  // namespace
}  // namespace certa::core
