// Tests for the batched + cached + pooled scoring layer: ThreadPool
// scheduling guarantees, PredictionCache accounting, ScoreBatch ≡ Score
// for every trained model kind, and bit-identical CertaExplainer output
// at any thread count / cache setting.

#include <algorithm>
#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/certa_explainer.h"
#include "data/benchmarks.h"
#include "models/scoring_engine.h"
#include "models/trainer.h"
#include "obs/metrics.h"
#include "test_util.h"
#include "util/thread_pool.h"

namespace certa {
namespace {

using models::HashPair;
using models::PairKey;
using models::PredictionCache;
using models::RecordPair;
using models::ScoringEngine;
using testing::FakeMatcher;
using testing::MakeRecord;

// ---------------------------------------------------------------------------
// ThreadPool

TEST(ThreadPoolTest, SizeClampsToAtLeastOne) {
  util::ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1);
  EXPECT_GE(util::ThreadPool::HardwareThreads(), 1);
}

TEST(ThreadPoolTest, RunsEveryIndexExactlyOnce) {
  util::ThreadPool pool(4);
  constexpr size_t kCount = 1000;
  std::vector<std::atomic<int>> hits(kCount);
  pool.ParallelFor(kCount, [&](size_t i) { ++hits[i]; });
  for (size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, HandlesEmptyAndTinyBatches) {
  util::ThreadPool pool(4);
  pool.ParallelFor(0, [](size_t) { FAIL() << "fn called for count 0"; });
  std::atomic<int> total{0};
  pool.ParallelFor(1, [&](size_t) { ++total; });
  EXPECT_EQ(total.load(), 1);
}

TEST(ThreadPoolTest, SequentialBatchesReuseWorkers) {
  util::ThreadPool pool(2);
  std::atomic<int> total{0};
  for (int round = 0; round < 50; ++round) {
    pool.ParallelFor(10, [&](size_t) { ++total; });
  }
  EXPECT_EQ(total.load(), 500);
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  util::ThreadPool pool(2);
  std::atomic<int> inner_total{0};
  pool.ParallelFor(4, [&](size_t) {
    pool.ParallelFor(8, [&](size_t) { ++inner_total; });
  });
  EXPECT_EQ(inner_total.load(), 32);
}

TEST(ThreadPoolTest, ChunkedRunsEveryIndexExactlyOnce) {
  util::ThreadPool pool(4);
  constexpr size_t kCount = 1003;  // not a multiple of any grain below
  for (size_t grain : {size_t{1}, size_t{7}, size_t{32}, size_t{5000}}) {
    std::vector<std::atomic<int>> hits(kCount);
    pool.ParallelFor(kCount, grain, [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) ++hits[i];
    });
    for (size_t i = 0; i < kCount; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "grain " << grain << " index " << i;
    }
  }
}

TEST(ThreadPoolTest, ChunkBoundariesDependOnlyOnCountAndGrain) {
  // The partition into [begin, end) ranges must be the fixed grid
  // {0, g, 2g, ...} regardless of how many workers raced for chunks —
  // that is what keeps index-addressed outputs (and everything built
  // on them) deterministic at any thread count.
  constexpr size_t kCount = 257;
  constexpr size_t kGrain = 16;
  for (int threads : {1, 2, 8}) {
    util::ThreadPool pool(threads);
    std::mutex mutex;
    std::vector<std::pair<size_t, size_t>> ranges;
    pool.ParallelFor(kCount, kGrain, [&](size_t begin, size_t end) {
      std::lock_guard<std::mutex> lock(mutex);
      ranges.emplace_back(begin, end);
    });
    std::sort(ranges.begin(), ranges.end());
    ASSERT_EQ(ranges.size(), (kCount + kGrain - 1) / kGrain);
    for (size_t c = 0; c < ranges.size(); ++c) {
      EXPECT_EQ(ranges[c].first, c * kGrain);
      EXPECT_EQ(ranges[c].second, std::min(kCount, (c + 1) * kGrain));
    }
  }
}

TEST(ThreadPoolTest, ChunkedGrainZeroAndEmptyAreSafe) {
  util::ThreadPool pool(2);
  pool.ParallelFor(0, 8, [](size_t, size_t) {
    FAIL() << "range_fn called for count 0";
  });
  std::atomic<int> total{0};
  pool.ParallelFor(5, 0, [&](size_t begin, size_t end) {  // grain clamps to 1
    total += static_cast<int>(end - begin);
  });
  EXPECT_EQ(total.load(), 5);
}

// ---------------------------------------------------------------------------
// PairKey / PredictionCache

TEST(PairKeyTest, ContentDeterminesKey) {
  data::Record u = MakeRecord(1, {"alpha", "beta"});
  data::Record v = MakeRecord(2, {"gamma", "delta"});
  data::Record u_copy = MakeRecord(99, {"alpha", "beta"});  // ids ignored
  data::Record v_copy = MakeRecord(98, {"gamma", "delta"});
  EXPECT_EQ(HashPair(u, v), HashPair(u_copy, v_copy));
  EXPECT_FALSE(HashPair(u, v) == HashPair(v, u));  // sides matter
  data::Record w = MakeRecord(3, {"alpha", "betb"});
  EXPECT_FALSE(HashPair(u, v) == HashPair(w, v));
}

TEST(PairKeyTest, ValueBoundariesAreFramed) {
  // ("ab", "c") vs ("a", "bc") must hash differently.
  data::Record u1 = MakeRecord(0, {"ab", "c"});
  data::Record u2 = MakeRecord(0, {"a", "bc"});
  data::Record v = MakeRecord(1, {"x"});
  EXPECT_FALSE(HashPair(u1, v) == HashPair(u2, v));
}

TEST(PredictionCacheTest, CountsHitsAndMisses) {
  PredictionCache cache(4, 64);
  PairKey key{1, 2};
  double score = -1.0;
  EXPECT_FALSE(cache.Lookup(key, &score));
  cache.Insert(key, 0.75);
  EXPECT_TRUE(cache.Lookup(key, &score));
  EXPECT_DOUBLE_EQ(score, 0.75);
  PredictionCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.evictions, 0);
  EXPECT_EQ(cache.entry_count(), 1u);
}

TEST(PredictionCacheTest, FullShardIsClearedAndCounted) {
  PredictionCache cache(1, 4);  // one shard, four entries max
  for (uint64_t i = 0; i < 9; ++i) {
    cache.Insert(PairKey{i, i}, static_cast<double>(i));
  }
  PredictionCache::Stats stats = cache.stats();
  EXPECT_GT(stats.evictions, 0);
  EXPECT_LE(cache.entry_count(), 4u);
}

TEST(PredictionCacheTest, ConcurrentInsertLookupIsConsistent) {
  PredictionCache cache(8, 1 << 12);
  util::ThreadPool pool(4);
  constexpr size_t kKeys = 512;
  // Insert every key from one thread each, then verify from all.
  pool.ParallelFor(kKeys, [&](size_t i) {
    cache.Insert(PairKey{i, i * 31}, static_cast<double>(i));
  });
  std::atomic<int> wrong{0};
  pool.ParallelFor(kKeys, [&](size_t i) {
    double score = -1.0;
    if (!cache.Lookup(PairKey{i, i * 31}, &score) ||
        score != static_cast<double>(i)) {
      ++wrong;
    }
  });
  EXPECT_EQ(wrong.load(), 0);
  EXPECT_EQ(cache.stats().hits, static_cast<long long>(kKeys));
}

TEST(PredictionCacheTest, ShardingSpreadsKeysSharingTheHighWord) {
  // Regression: shard selection used `key.hi % shards`, which piled
  // every key sharing `hi` (and, with power-of-two shard counts, every
  // key with the same low bits of `hi`) into one shard. 200 keys that
  // differ only in `lo` must now spread across 4 shards of 64 — no
  // shard fills, so nothing is evicted. Under the old indexing they all
  // landed in one shard and forced repeated wholesale clears.
  PredictionCache cache(4, 64);
  constexpr uint64_t kSharedHi = 42;
  for (uint64_t lo = 0; lo < 200; ++lo) {
    cache.Insert(PairKey{lo, kSharedHi}, static_cast<double>(lo));
  }
  EXPECT_EQ(cache.stats().evictions, 0);
  EXPECT_EQ(cache.entry_count(), 200u);
  double score = -1.0;
  EXPECT_TRUE(cache.Lookup(PairKey{7, kSharedHi}, &score));
  EXPECT_DOUBLE_EQ(score, 7.0);
}

TEST(PredictionCacheTest, ShardingSpreadsWithNonPowerOfTwoShardCount) {
  // Same property with 3 shards (the modulus path, not a mask).
  PredictionCache cache(3, 64);
  for (uint64_t lo = 0; lo < 150; ++lo) {
    cache.Insert(PairKey{lo, 0xDEADBEEFULL}, 0.5);
  }
  EXPECT_EQ(cache.stats().evictions, 0);
  EXPECT_EQ(cache.entry_count(), 150u);
}

TEST(PredictionCacheTest, OverflowingOneShardDoesNotEvictOthers) {
  // Regression guard for the eviction policy: a shard that fills past
  // its budget clears ITSELF only. Keys are pre-classified by the same
  // hash the cache shards with, so the flood provably targets shard 0.
  constexpr size_t kShards = 4;
  constexpr size_t kPerShard = 8;
  PredictionCache cache(kShards, kPerShard);
  models::PairKeyHasher hasher;

  // A few residents in every non-flooded shard — at most 3 per shard,
  // so no shard crosses its own budget during setup. (The key words
  // must have independent parities: the shard hash is
  // lo ^ hi * odd-constant, so keys built as {i*odd, i*odd} all share
  // low bits and pile into one shard.)
  std::vector<PairKey> residents;
  std::vector<int> per_shard(kShards, 0);
  for (uint64_t i = 0; residents.size() < 3 * (kShards - 1) && i < 4096;
       ++i) {
    PairKey key{i * 0xBF58476D1CE4E5B9ULL,
                (i >> 1) * 0x94D049BB133111EBULL + i};
    const size_t shard = hasher(key) % kShards;
    if (shard == 0 || per_shard[shard] >= 3) continue;
    ++per_shard[shard];
    residents.push_back(key);
    cache.Insert(key, static_cast<double>(i));
  }
  ASSERT_EQ(residents.size(), 3 * (kShards - 1));
  ASSERT_EQ(cache.stats().evictions, 0);

  // Flood shard 0 far past its budget: multiple wholesale clears.
  long long flooded = 0;
  for (uint64_t i = 0; flooded < 10 * static_cast<long long>(kPerShard) &&
                       i < 1 << 16;
       ++i) {
    PairKey key{i * 7919, i};
    if (hasher(key) % kShards != 0) continue;
    cache.Insert(key, 1.0);
    ++flooded;
  }
  ASSERT_EQ(flooded, 10 * static_cast<long long>(kPerShard));
  EXPECT_GT(cache.stats().evictions, 0);

  // Every other-shard resident survived the flood, score intact.
  for (size_t r = 0; r < residents.size(); ++r) {
    double score = -1.0;
    EXPECT_TRUE(cache.Lookup(residents[r], &score)) << "resident " << r;
  }
  // Counter consistency: everything ever inserted is either resident
  // now or accounted for by the eviction counter.
  EXPECT_EQ(static_cast<long long>(cache.entry_count()) +
                cache.stats().evictions,
            static_cast<long long>(residents.size()) + flooded);
}

TEST(PredictionCacheViewTest, BuffersInsertsUntilFlush) {
  PredictionCache cache(4, 64);
  PairKey key{11, 22};
  double score = -1.0;
  {
    PredictionCache::View view(&cache);
    view.Insert(key, 0.25);
    // The view sees its own write immediately...
    EXPECT_TRUE(view.Lookup(key, &score));
    EXPECT_DOUBLE_EQ(score, 0.25);
    // ...but the shards only get it at flush time.
    EXPECT_EQ(cache.entry_count(), 0u);
    view.Flush();
    EXPECT_EQ(cache.entry_count(), 1u);
    view.Insert(PairKey{33, 44}, 0.5);
  }  // destructor flushes the tail
  EXPECT_EQ(cache.entry_count(), 2u);
  EXPECT_TRUE(cache.Lookup(PairKey{33, 44}, &score));
  EXPECT_DOUBLE_EQ(score, 0.5);
}

TEST(PredictionCacheViewTest, ReadThroughCountsLikeDirectLookups) {
  PredictionCache cache(4, 64);
  cache.Insert(PairKey{1, 1}, 0.9);
  PredictionCache::View view(&cache);
  double score = -1.0;
  EXPECT_FALSE(view.Lookup(PairKey{2, 2}, &score));  // shard miss
  EXPECT_TRUE(view.Lookup(PairKey{1, 1}, &score));   // shard hit
  EXPECT_DOUBLE_EQ(score, 0.9);
  EXPECT_TRUE(view.Lookup(PairKey{1, 1}, &score));   // local hit
  PredictionCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits, 2);
  EXPECT_EQ(stats.misses, 1);
}

TEST(PredictionCacheViewTest, FlushPreservesEvictionAccounting) {
  // Inserting N distinct keys through a view must trip the same
  // shard-budget evictions as inserting them directly.
  constexpr uint64_t kKeys = 200;
  PredictionCache direct(2, 16);
  for (uint64_t i = 0; i < kKeys; ++i) {
    direct.Insert(PairKey{i, i * 31}, 0.5);
  }
  PredictionCache viewed(2, 16);
  {
    PredictionCache::View view(&viewed);
    for (uint64_t i = 0; i < kKeys; ++i) {
      view.Insert(PairKey{i, i * 31}, 0.5);
    }
  }
  EXPECT_EQ(viewed.stats().evictions, direct.stats().evictions);
  EXPECT_EQ(viewed.entry_count(), direct.entry_count());
}

// ---------------------------------------------------------------------------
// ScoringEngine

TEST(ScoringEngineTest, ScoreMatchesBaseAndCaches) {
  FakeMatcher base([](const data::Record& u, const data::Record& v) {
    return u.values[0] == v.values[0] ? 0.9 : 0.1;
  });
  ScoringEngine engine(&base);
  data::Record u = MakeRecord(0, {"same"});
  data::Record v = MakeRecord(1, {"same"});
  EXPECT_DOUBLE_EQ(engine.Score(u, v), 0.9);
  EXPECT_DOUBLE_EQ(engine.Score(u, v), 0.9);
  EXPECT_EQ(base.calls(), 1);  // second call served from cache
  PredictionCache::Stats stats = engine.cache_stats();
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.misses, 1);
}

TEST(ScoringEngineTest, DisabledCacheAlwaysCallsBase) {
  FakeMatcher base([](const data::Record&, const data::Record&) {
    return 0.4;
  });
  ScoringEngine::Options options;
  options.enable_cache = false;
  ScoringEngine engine(&base, options);
  data::Record u = MakeRecord(0, {"a"});
  data::Record v = MakeRecord(1, {"b"});
  engine.Score(u, v);
  engine.Score(u, v);
  EXPECT_EQ(base.calls(), 2);
  PredictionCache::Stats stats = engine.cache_stats();
  EXPECT_EQ(stats.hits, 0);
  EXPECT_EQ(stats.misses, 0);
}

// ---------------------------------------------------------------------------
// Cross-job store read-through hooks (the persist::ScoreStore side is
// tested in score_store_test.cc; here a plain map stands in, which
// pins the engine-side contract independent of the store format).

/// Map-backed store double wired into engine options.
struct MapStore {
  std::unordered_map<PairKey, double, models::PairKeyHasher> entries;
  int probes = 0;
  int writes = 0;

  void Wire(ScoringEngine::Options* options) {
    options->store_probe = [this](const PairKey& key, double* score) {
      ++probes;
      auto it = entries.find(key);
      if (it == entries.end()) return false;
      *score = it->second;
      return true;
    };
    options->store_write = [this](const PairKey& key, double score) {
      ++writes;
      entries.emplace(key, score);
    };
  }
};

TEST(ScoringEngineTest, StoreProbeServesMissWithoutBaseCall) {
  FakeMatcher base([](const data::Record&, const data::Record&) {
    return 0.6;
  });
  data::Record u = MakeRecord(0, {"left"});
  data::Record v = MakeRecord(1, {"right"});
  MapStore store;
  store.entries[HashPair(u, v)] = 0.6;
  ScoringEngine::Options options;
  store.Wire(&options);
  ScoringEngine engine(&base, options);
  EXPECT_DOUBLE_EQ(engine.Score(u, v), 0.6);
  EXPECT_EQ(base.calls(), 0);  // served by the store, not the model
  PredictionCache::Stats stats = engine.cache_stats();
  // A store-served probe still counts the cache miss it intercepted —
  // hits/misses stay identical with the store detached — and the
  // distinct store_hits counter is the only trace.
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.store_hits, 1);
  // The served score was inserted: the next probe is a plain cache
  // hit, no second store probe.
  EXPECT_DOUBLE_EQ(engine.Score(u, v), 0.6);
  EXPECT_EQ(store.probes, 1);
  EXPECT_EQ(engine.cache_stats().store_hits, 1);
  EXPECT_EQ(engine.cache_stats().hits, 1);
}

TEST(ScoringEngineTest, StoreWriteFiresForFreshComputesOnly) {
  FakeMatcher base([](const data::Record& u, const data::Record& v) {
    return u.values[0] == v.values[0] ? 1.0 : 0.0;
  });
  MapStore store;
  ScoringEngine::Options options;
  store.Wire(&options);
  ScoringEngine engine(&base, options);
  data::Record a = MakeRecord(0, {"a"});
  data::Record b = MakeRecord(1, {"b"});
  data::Record c = MakeRecord(2, {"c"});
  std::vector<RecordPair> pairs = {{&a, &b}, {&a, &b}, {&a, &c}};
  engine.ScoreBatch(pairs);
  EXPECT_EQ(store.writes, 2);  // one per unique computed pair
  // Cache hits and store-served probes never re-write.
  engine.ScoreBatch(pairs);
  EXPECT_EQ(store.writes, 2);
  ScoringEngine warm(&base, options);  // fresh cache, warm store
  base.reset_calls();
  warm.ScoreBatch(pairs);
  EXPECT_EQ(base.calls(), 0);
  EXPECT_EQ(store.writes, 2);
  EXPECT_EQ(warm.cache_stats().store_hits, 2);
}

TEST(ScoringEngineTest, AccountingIdenticalWithStoreAttached) {
  auto score_fn = [](const data::Record& u, const data::Record& v) {
    return 0.1 * static_cast<double>(u.values[0].size() + v.values[0].size());
  };
  std::vector<data::Record> records;
  for (int i = 0; i < 12; ++i) {
    records.push_back(MakeRecord(i, {std::string(1 + i % 5, 'x') +
                                     std::to_string(i)}));
  }
  std::vector<RecordPair> pairs;
  for (int i = 0; i + 1 < 12; ++i) {
    pairs.push_back({&records[i], &records[i + 1]});
    pairs.push_back({&records[0], &records[i]});
  }
  // Detached reference.
  FakeMatcher base_a(score_fn);
  ScoringEngine plain(&base_a);
  const std::vector<double> expected = plain.ScoreBatch(pairs);
  const PredictionCache::Stats reference = plain.cache_stats();
  // Cold store: same scores, same hit/miss/eviction stream.
  FakeMatcher base_b(score_fn);
  MapStore store;
  ScoringEngine::Options options;
  store.Wire(&options);
  ScoringEngine cold(&base_b, options);
  EXPECT_EQ(cold.ScoreBatch(pairs), expected);
  PredictionCache::Stats cold_stats = cold.cache_stats();
  EXPECT_EQ(cold_stats.hits, reference.hits);
  EXPECT_EQ(cold_stats.misses, reference.misses);
  EXPECT_EQ(cold_stats.evictions, reference.evictions);
  EXPECT_EQ(cold_stats.store_hits, 0);
  // Warm store: zero base calls, still the same counter stream.
  FakeMatcher base_c(score_fn);
  ScoringEngine warm(&base_c, options);
  EXPECT_EQ(warm.ScoreBatch(pairs), expected);
  PredictionCache::Stats warm_stats = warm.cache_stats();
  EXPECT_EQ(base_c.calls(), 0);
  EXPECT_EQ(warm_stats.hits, reference.hits);
  EXPECT_EQ(warm_stats.misses, reference.misses);
  EXPECT_EQ(warm_stats.evictions, reference.evictions);
  EXPECT_EQ(warm_stats.store_hits, reference.misses);
}

TEST(ScoringEngineTest, ObserverStaysSilentForStoreServedScores) {
  // The observer feeds the write-ahead journal; a store-served score
  // was never computed in this run, so journaling it would double-pay
  // on replay. Only fresh computes may fire it.
  FakeMatcher base([](const data::Record&, const data::Record&) {
    return 0.5;
  });
  data::Record u = MakeRecord(0, {"u"});
  data::Record v = MakeRecord(1, {"v"});
  data::Record w = MakeRecord(2, {"w"});
  MapStore store;
  store.entries[HashPair(u, v)] = 0.5;
  ScoringEngine::Options options;
  store.Wire(&options);
  std::vector<PairKey> observed;
  options.observer = [&observed](const PairKey& key, double) {
    observed.push_back(key);
  };
  ScoringEngine engine(&base, options);
  std::vector<RecordPair> pairs = {{&u, &v}, {&u, &w}};
  engine.ScoreBatch(pairs);
  ASSERT_EQ(observed.size(), 1u);           // only the fresh {u, w}
  EXPECT_EQ(observed[0], HashPair(u, w));
  EXPECT_EQ(engine.cache_stats().store_hits, 1);
}

TEST(ScoringEngineTest, StoreHitsExportedToMetricsRegistry) {
  FakeMatcher base([](const data::Record&, const data::Record&) {
    return 0.3;
  });
  data::Record u = MakeRecord(0, {"u"});
  data::Record v = MakeRecord(1, {"v"});
  MapStore store;
  store.entries[HashPair(u, v)] = 0.3;
  obs::MetricsRegistry registry;
  ScoringEngine::Options options;
  store.Wire(&options);
  options.metrics = &registry;
  ScoringEngine engine(&base, options);
  engine.Score(u, v);
  const std::string json = registry.ToJson();
  EXPECT_NE(json.find("scoring.cache.store_hits"), std::string::npos)
      << json;
  // Regression guard: the registry value mirrors the engine's own
  // counter (1 store-served probe).
  EXPECT_EQ(engine.cache_stats().store_hits, 1);
}

TEST(ScoringEngineTest, BatchDedupesIdenticalPairs) {
  FakeMatcher base([](const data::Record& u, const data::Record& v) {
    return u.values[0] == v.values[0] ? 1.0 : 0.0;
  });
  ScoringEngine engine(&base);
  data::Record a = MakeRecord(0, {"a"});
  data::Record b = MakeRecord(1, {"b"});
  data::Record a2 = MakeRecord(2, {"a"});  // same content as a
  std::vector<RecordPair> pairs = {
      {&a, &b}, {&a, &b}, {&a2, &b}, {&b, &a}, {&a, &a2}};
  std::vector<double> scores = engine.ScoreBatch(pairs);
  ASSERT_EQ(scores.size(), pairs.size());
  EXPECT_DOUBLE_EQ(scores[0], 0.0);
  EXPECT_DOUBLE_EQ(scores[1], 0.0);
  EXPECT_DOUBLE_EQ(scores[2], 0.0);  // deduped with slot 0 by content
  EXPECT_DOUBLE_EQ(scores[3], 0.0);
  EXPECT_DOUBLE_EQ(scores[4], 1.0);
  EXPECT_EQ(base.calls(), 3);  // {a,b}, {b,a}, {a,a}
  // A second batch over the same pairs is served fully from cache.
  base.reset_calls();
  std::vector<double> again = engine.ScoreBatch(pairs);
  EXPECT_EQ(base.calls(), 0);
  EXPECT_EQ(again, scores);
}

TEST(ScoringEngineTest, PooledBatchMatchesSerial) {
  FakeMatcher base([](const data::Record& u, const data::Record& v) {
    return (u.values[0].size() * 7 + v.values[0].size()) / 100.0;
  });
  util::ThreadPool pool(4);
  ScoringEngine::Options pooled_options;
  pooled_options.pool = &pool;
  pooled_options.enable_cache = false;
  pooled_options.min_parallel_batch = 2;
  pooled_options.parallel_chunk = 3;
  ScoringEngine pooled(&base, pooled_options);
  ScoringEngine serial(&base);

  std::vector<data::Record> lefts;
  std::vector<data::Record> rights;
  for (int i = 0; i < 64; ++i) {
    lefts.push_back(MakeRecord(i, {std::string(i % 11, 'x')}));
    rights.push_back(MakeRecord(i, {std::string(i % 7, 'y')}));
  }
  std::vector<RecordPair> pairs;
  for (int i = 0; i < 64; ++i) pairs.push_back({&lefts[i], &rights[i]});

  EXPECT_EQ(pooled.ScoreBatch(pairs), serial.ScoreBatch(pairs));
}

// ScoreBatch must agree bit-for-bit with per-pair Score for every
// trained model kind (the contract the hot paths rely on).
class ScoreBatchEquivalenceTest
    : public ::testing::TestWithParam<models::ModelKind> {};

TEST_P(ScoreBatchEquivalenceTest, BatchEqualsPerPairScore) {
  data::Dataset dataset = data::MakeBenchmark("AB");
  auto model = models::TrainMatcher(GetParam(), dataset);
  std::vector<RecordPair> pairs;
  for (const data::LabeledPair& pair : dataset.test) {
    pairs.push_back({&dataset.left.record(pair.left_index),
                     &dataset.right.record(pair.right_index)});
  }
  ASSERT_FALSE(pairs.empty());
  std::vector<double> batch = model->ScoreBatch(pairs);
  ASSERT_EQ(batch.size(), pairs.size());
  for (size_t i = 0; i < pairs.size(); ++i) {
    EXPECT_EQ(batch[i], model->Score(*pairs[i].left, *pairs[i].right))
        << "pair " << i;
  }
  // Through the engine (cache + dedupe) the scores are still identical.
  ScoringEngine engine(model.get());
  EXPECT_EQ(engine.ScoreBatch(pairs), batch);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, ScoreBatchEquivalenceTest,
                         ::testing::Values(models::ModelKind::kDeepEr,
                                           models::ModelKind::kDeepMatcher,
                                           models::ModelKind::kDitto,
                                           models::ModelKind::kSvm),
                         [](const auto& info) {
                           return models::ModelKindName(info.param);
                         });

// ---------------------------------------------------------------------------
// End-to-end determinism: CertaExplainer::Explain must produce the same
// CertaResult (saliency, counterfactuals, Table 7/8 counters) at any
// thread count, with or without the prediction cache.

struct ExplainConfig {
  int num_threads;
  bool use_cache;
};

class ExplainDeterminismTest
    : public ::testing::TestWithParam<ExplainConfig> {};

TEST_P(ExplainDeterminismTest, MatchesSingleThreadCachedRun) {
  data::Dataset dataset = data::MakeBenchmark("AB");
  auto model = models::TrainMatcher(models::ModelKind::kDeepEr, dataset);
  explain::ExplainContext context{model.get(), &dataset.left,
                                  &dataset.right};
  core::CertaExplainer::Options base_options;
  base_options.num_triangles = 12;

  core::CertaExplainer reference(context, base_options);
  core::CertaExplainer::Options options = base_options;
  options.num_threads = GetParam().num_threads;
  options.use_cache = GetParam().use_cache;
  core::CertaExplainer variant(context, options);

  int checked = 0;
  for (const data::LabeledPair& pair : dataset.test) {
    if (checked >= 3) break;
    ++checked;
    const data::Record& u = dataset.left.record(pair.left_index);
    const data::Record& v = dataset.right.record(pair.right_index);
    core::CertaResult expected = reference.Explain(u, v);
    core::CertaResult actual = variant.Explain(u, v);
    if (!GetParam().use_cache) {
      EXPECT_EQ(actual.cache_hits + actual.cache_misses, 0);
    }
    // JSON covers saliency scores, counterfactuals, sufficiency table
    // and the Table 7/8 counters in one deterministic serialization.
    // Cache counters legitimately differ across configs, so zero them
    // before comparing the payloads.
    expected.cache_hits = actual.cache_hits = 0;
    expected.cache_misses = actual.cache_misses = 0;
    expected.cache_evictions = actual.cache_evictions = 0;
    EXPECT_EQ(core::CertaResultToJson(actual, dataset.left.schema(),
                                      dataset.right.schema()),
              core::CertaResultToJson(expected, dataset.left.schema(),
                                      dataset.right.schema()));
  }
  EXPECT_GT(checked, 0);
}

INSTANTIATE_TEST_SUITE_P(
    ThreadsAndCache, ExplainDeterminismTest,
    ::testing::Values(ExplainConfig{1, false}, ExplainConfig{2, true},
                      ExplainConfig{4, true}, ExplainConfig{4, false},
                      ExplainConfig{8, true}),
    [](const auto& info) {
      return "Threads" + std::to_string(info.param.num_threads) +
             (info.param.use_cache ? "Cached" : "NoCache");
    });

TEST(ExplainGroupLockstepTest, GroupSizeNeverChangesTheResult) {
  // The lattice phase merges up to lattice_group_size triangles into
  // each scoring batch; only batch boundaries may move, never the
  // per-triangle node order — so every group size (including 1, the
  // old one-triangle-at-a-time shape) must yield the same CertaResult.
  data::Dataset dataset = data::MakeBenchmark("AB");
  auto model = models::TrainMatcher(models::ModelKind::kDeepEr, dataset);
  explain::ExplainContext context{model.get(), &dataset.left,
                                  &dataset.right};
  const data::LabeledPair& pair = dataset.test.front();
  const data::Record& u = dataset.left.record(pair.left_index);
  const data::Record& v = dataset.right.record(pair.right_index);

  core::CertaExplainer::Options options;
  options.num_triangles = 12;
  options.lattice_group_size = 1;
  core::CertaResult reference =
      core::CertaExplainer(context, options).Explain(u, v);
  reference.cache_hits = reference.cache_misses = reference.cache_evictions =
      0;
  const std::string expected = core::CertaResultToJson(
      reference, dataset.left.schema(), dataset.right.schema());

  for (int group : {2, 5, 16, 1000}) {
    options.lattice_group_size = group;
    core::CertaResult actual =
        core::CertaExplainer(context, options).Explain(u, v);
    actual.cache_hits = actual.cache_misses = actual.cache_evictions = 0;
    EXPECT_EQ(core::CertaResultToJson(actual, dataset.left.schema(),
                                      dataset.right.schema()),
              expected)
        << "group size " << group;
  }
}

}  // namespace
}  // namespace certa
