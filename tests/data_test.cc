#include <cstdio>
#include <fstream>
#include <filesystem>

#include <unistd.h>

#include <gtest/gtest.h>

#include "data/csv.h"
#include "data/dataset.h"
#include "data/table.h"
#include "test_util.h"
#include "text/tokenizer.h"
#include "util/random.h"
#include "util/string_utils.h"

namespace certa::data {
namespace {

using certa::testing::MakeRecord;
using certa::testing::MakeTable;

// --- Schema / Record / Table --------------------------------------------

TEST(SchemaTest, NamesAndLookup) {
  Schema schema({"name", "price"});
  EXPECT_EQ(schema.size(), 2);
  EXPECT_EQ(schema.name(0), "name");
  EXPECT_EQ(schema.IndexOf("price"), 1);
  EXPECT_EQ(schema.IndexOf("missing"), -1);
  EXPECT_EQ(schema, Schema({"name", "price"}));
}

TEST(SideTest, OppositeAndPrefix) {
  EXPECT_EQ(Opposite(Side::kLeft), Side::kRight);
  EXPECT_EQ(Opposite(Side::kRight), Side::kLeft);
  EXPECT_STREQ(SidePrefix(Side::kLeft), "L");
  EXPECT_STREQ(SidePrefix(Side::kRight), "R");
}

TEST(TableTest, AddAndLookup) {
  Table table = MakeTable("T", {"a", "b"}, {{"x", "y"}, {"p", "q"}});
  EXPECT_EQ(table.size(), 2);
  EXPECT_EQ(table.record(1).value(0), "p");
  ASSERT_NE(table.FindById(0), nullptr);
  EXPECT_EQ(table.FindById(0)->value(1), "y");
  EXPECT_EQ(table.FindById(99), nullptr);
}

TEST(TableTest, DistinctValuesSkipMissing) {
  Table table = MakeTable("T", {"a", "b"},
                          {{"x", "NaN"}, {"x", "y"}, {"", "y"}});
  // Distinct non-missing: {x, y}.
  EXPECT_EQ(table.CountDistinctValues(), 2);
}

// --- Dataset / split -------------------------------------------------------

TEST(DatasetTest, CountMatches) {
  Dataset dataset;
  dataset.train = {{0, 0, 1}, {0, 1, 0}};
  dataset.test = {{1, 0, 1}, {1, 1, 1}};
  EXPECT_EQ(dataset.CountMatches(), 3);
}

TEST(StratifiedSplitTest, PreservesLabelCounts) {
  std::vector<LabeledPair> pairs;
  for (int i = 0; i < 40; ++i) pairs.push_back({i, i, 1});
  for (int i = 0; i < 60; ++i) pairs.push_back({i, i, 0});
  Rng rng(5);
  std::vector<LabeledPair> train;
  std::vector<LabeledPair> test;
  StratifiedSplit(pairs, 0.25, &rng, &train, &test);
  EXPECT_EQ(train.size() + test.size(), 100u);
  int test_positives = 0;
  for (const auto& pair : test) test_positives += pair.label;
  int train_positives = 0;
  for (const auto& pair : train) train_positives += pair.label;
  EXPECT_EQ(test_positives, 10);   // 25% of 40
  EXPECT_EQ(train_positives, 30);
  EXPECT_EQ(test.size(), 25u);
}

TEST(StratifiedSplitTest, ZeroTestFraction) {
  std::vector<LabeledPair> pairs = {{0, 0, 1}, {1, 1, 0}};
  Rng rng(5);
  std::vector<LabeledPair> train;
  std::vector<LabeledPair> test;
  StratifiedSplit(pairs, 0.0, &rng, &train, &test);
  EXPECT_EQ(train.size(), 2u);
  EXPECT_TRUE(test.empty());
}

// --- CSV -------------------------------------------------------------------

TEST(CsvTest, ParsesSimpleRows) {
  auto rows = ParseCsv("a,b\n1,2\n");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(rows[1], (std::vector<std::string>{"1", "2"}));
}

TEST(CsvTest, ParsesQuotedFields) {
  auto rows = ParseCsv("\"a,b\",\"say \"\"hi\"\"\",\"line\nbreak\"\n");
  ASSERT_EQ(rows.size(), 1u);
  ASSERT_EQ(rows[0].size(), 3u);
  EXPECT_EQ(rows[0][0], "a,b");
  EXPECT_EQ(rows[0][1], "say \"hi\"");
  EXPECT_EQ(rows[0][2], "line\nbreak");
}

TEST(CsvTest, HandlesCrLfAndMissingTrailingNewline) {
  auto rows = ParseCsv("a,b\r\nc,d");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1], (std::vector<std::string>{"c", "d"}));
}

TEST(CsvTest, EmptyFields) {
  auto rows = ParseCsv(",x,\n");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"", "x", ""}));
}

TEST(CsvTest, WriteQuotesWhenNeeded) {
  std::string csv = WriteCsv({{"plain", "with,comma", "with\"quote"}});
  EXPECT_EQ(csv, "plain,\"with,comma\",\"with\"\"quote\"\n");
}

TEST(CsvTest, RoundtripThroughParse) {
  std::vector<std::vector<std::string>> rows = {
      {"a", "b,c", "d\"e", "f\ng"}, {"1", "", "3", "4"}};
  auto parsed = ParseCsv(WriteCsv(rows));
  EXPECT_EQ(parsed, rows);
}

class CsvFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    directory_ = std::filesystem::temp_directory_path() /
                 ("certa_csv_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(directory_);
  }
  void TearDown() override { std::filesystem::remove_all(directory_); }
  std::filesystem::path directory_;
};

TEST_F(CsvFileTest, TableRoundtrip) {
  Table table = MakeTable("A", {"name", "price"},
                          {{"sony, bravia", "99.99"}, {"altec", "NaN"}});
  std::string path = (directory_ / "table.csv").string();
  ASSERT_TRUE(SaveTableCsv(path, table));
  Table loaded;
  ASSERT_TRUE(LoadTableCsv(path, "A", &loaded));
  EXPECT_EQ(loaded.size(), 2);
  EXPECT_EQ(loaded.schema().names(), table.schema().names());
  EXPECT_EQ(loaded.record(0).values, table.record(0).values);
  EXPECT_EQ(loaded.record(1).id, 1);
}

TEST_F(CsvFileTest, LoadTableRejectsBadHeader) {
  std::string path = (directory_ / "bad.csv").string();
  {
    std::ofstream out(path);
    out << "name,price\nsony,1\n";  // missing id column
  }
  Table loaded;
  EXPECT_FALSE(LoadTableCsv(path, "A", &loaded));
}

TEST_F(CsvFileTest, LoadTableRejectsRaggedRows) {
  std::string path = (directory_ / "ragged.csv").string();
  {
    std::ofstream out(path);
    out << "id,a,b\n0,x\n";  // row arity mismatch
  }
  Table loaded;
  EXPECT_FALSE(LoadTableCsv(path, "A", &loaded));
}

TEST_F(CsvFileTest, MissingCellsRoundTripByteIdentically) {
  // "NaN" is the canonical *string* missing marker
  // (text::kMissingValue): it must survive a CSV save/load unchanged,
  // still be recognized as missing, and never be read back as a number.
  Table table = MakeTable("A", {"name", "price"},
                          {{"sony", certa::text::kMissingValue}});
  std::string path = (directory_ / "missing.csv").string();
  ASSERT_TRUE(SaveTableCsv(path, table));
  Table loaded;
  ASSERT_TRUE(LoadTableCsv(path, "A", &loaded));
  EXPECT_EQ(loaded.record(0).value(1), certa::text::kMissingValue);
  EXPECT_TRUE(certa::text::IsMissing(loaded.record(0).value(1)));
  double as_number = 0.0;
  EXPECT_FALSE(certa::ParseDouble(loaded.record(0).value(1), &as_number));
}

TEST_F(CsvFileTest, LoadTableRejectsNonNumericId) {
  // An id cell of "NaN" used to flow through ParseDouble into
  // static_cast<int>(NaN) — undefined behavior. It must now fail the
  // load cleanly.
  std::string path = (directory_ / "nan_id.csv").string();
  {
    std::ofstream out(path);
    out << "id,a\nNaN,x\n";
  }
  Table loaded;
  EXPECT_FALSE(LoadTableCsv(path, "A", &loaded));
}

TEST_F(CsvFileTest, MissingFileFails) {
  Table loaded;
  EXPECT_FALSE(LoadTableCsv((directory_ / "nope.csv").string(), "A",
                            &loaded));
}

TEST_F(CsvFileTest, DatasetDirectoryRoundtrip) {
  Dataset dataset;
  dataset.code = "XY";
  dataset.full_name = "X-Y";
  dataset.left = MakeTable("X", {"a"}, {{"u0"}, {"u1"}});
  dataset.right = MakeTable("Y", {"a"}, {{"v0"}, {"v1"}, {"v2"}});
  dataset.train = {{0, 0, 1}, {1, 2, 0}};
  dataset.test = {{1, 1, 1}};
  ASSERT_TRUE(SaveDatasetDirectory(directory_.string(), dataset));
  Dataset loaded;
  ASSERT_TRUE(LoadDatasetDirectory(directory_.string(), "XY", &loaded));
  EXPECT_EQ(loaded.left.size(), 2);
  EXPECT_EQ(loaded.right.size(), 3);
  ASSERT_EQ(loaded.train.size(), 2u);
  EXPECT_EQ(loaded.train[0].left_index, 0);
  EXPECT_EQ(loaded.train[0].label, 1);
  EXPECT_EQ(loaded.train[1].right_index, 2);
  ASSERT_EQ(loaded.test.size(), 1u);
  EXPECT_EQ(loaded.test[0].label, 1);
}

TEST_F(CsvFileTest, PairsWithUnknownIdFail) {
  Table left = MakeTable("X", {"a"}, {{"u0"}});
  Table right = MakeTable("Y", {"a"}, {{"v0"}});
  std::string path = (directory_ / "pairs.csv").string();
  {
    std::ofstream out(path);
    out << "ltable_id,rtable_id,label\n0,999,1\n";
  }
  std::vector<LabeledPair> pairs;
  EXPECT_FALSE(LoadPairsCsv(path, left, right, &pairs));
}

}  // namespace
}  // namespace certa::data
