// Unit + corruption-fuzz tests for persist::ScoreStore: roundtrip and
// reopen, scope separation, torn/bit-flipped/truncated segments (the
// longest-valid-prefix recovery rule), bad headers, segment roll and
// compaction, mmap/read parity, concurrent access, and shared-stream
// mode (per-stream locks, peer absorption, lease'd compaction). The
// crash battery proper (SIGKILL subprocesses) lives in
// score_store_crash_test.cc.

#include "persist/score_store.h"

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "persist/dir_lock.h"
#include "util/crc32.h"

namespace certa::persist {
namespace {

namespace fs = std::filesystem;

// On-disk layout constants (score_store.cc) — the corruption tests
// need byte positions, not just the API.
constexpr size_t kHeaderSize = 12;
constexpr size_t kRecordSize = 36;

fs::path Scratch(const std::string& tag) {
  fs::path dir = fs::temp_directory_path() /
                 ("certa_score_store_" + tag + "_" +
                  std::to_string(::getpid()));
  fs::remove_all(dir);
  return dir;
}

models::PairKey Key(uint64_t i) {
  return models::PairKey{i * 2654435761u + 1, ~i * 40503u + 7};
}

double ScoreOf(uint64_t i) {
  return 0.001 * static_cast<double>(i % 997) + 1e-9;
}

std::string ActiveSegment(const fs::path& dir) {
  std::string latest;
  for (const auto& entry : fs::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.size() > 4 && name.compare(name.size() - 4, 4, ".seg") == 0 &&
        name > latest) {
      latest = name;
    }
  }
  return (dir / latest).string();
}

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteAll(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// Fills a store with entries i in [0, n) under `scope` and syncs.
void Fill(ScoreStore* store, uint64_t scope, uint64_t n) {
  for (uint64_t i = 0; i < n; ++i) {
    ASSERT_TRUE(store->Put(scope, Key(i), ScoreOf(i)));
  }
  ASSERT_TRUE(store->Sync());
}

/// Counts how many of entries [0, n) are present AND correct; any hit
/// with a wrong score fails the test immediately (a corrupted entry
/// served is the one unacceptable outcome).
uint64_t CountIntact(ScoreStore* store, uint64_t scope, uint64_t n) {
  uint64_t intact = 0;
  for (uint64_t i = 0; i < n; ++i) {
    double score = 0.0;
    if (!store->Lookup(scope, Key(i), &score)) continue;
    EXPECT_DOUBLE_EQ(score, ScoreOf(i)) << "entry " << i;
    ++intact;
  }
  return intact;
}

TEST(ScoreStoreTest, RoundtripAcrossReopen) {
  const fs::path dir = Scratch("roundtrip");
  constexpr uint64_t kN = 500;
  {
    ScoreStore store;
    ASSERT_TRUE(store.Open(dir.string()));
    Fill(&store, 42, kN);
    EXPECT_EQ(store.entry_count(), kN);
    store.Close();
  }
  ScoreStore store;
  ASSERT_TRUE(store.Open(dir.string()));
  EXPECT_EQ(store.entry_count(), kN);
  EXPECT_EQ(CountIntact(&store, 42, kN), kN);
  EXPECT_EQ(store.stats().replayed_records, static_cast<long long>(kN));
  EXPECT_EQ(store.stats().dropped_bytes, 0);
  double score = 0.0;
  EXPECT_FALSE(store.Lookup(42, Key(kN + 1), &score));
  fs::remove_all(dir);
}

TEST(ScoreStoreTest, OpenCreatesMissingDirectory) {
  const fs::path dir = Scratch("create") / "nested";
  ScoreStore store;
  ASSERT_TRUE(store.Open(dir.string()));
  EXPECT_TRUE(fs::exists(dir));
  EXPECT_TRUE(store.is_open());
  fs::remove_all(dir.parent_path());
}

TEST(ScoreStoreTest, ScopesAreDisjoint) {
  const fs::path dir = Scratch("scopes");
  ScoreStore store;
  ASSERT_TRUE(store.Open(dir.string()));
  const models::PairKey shared = Key(9);
  ASSERT_TRUE(store.Put(1, shared, 0.25));
  ASSERT_TRUE(store.Put(2, shared, 0.75));
  double score = 0.0;
  ASSERT_TRUE(store.Lookup(1, shared, &score));
  EXPECT_DOUBLE_EQ(score, 0.25);
  ASSERT_TRUE(store.Lookup(2, shared, &score));
  EXPECT_DOUBLE_EQ(score, 0.75);
  EXPECT_FALSE(store.Lookup(3, shared, &score));
  fs::remove_all(dir);
}

TEST(ScoreStoreTest, HashScopeSeparatesModelsAndData) {
  const uint64_t a = HashScope("svm", 111);
  EXPECT_NE(a, HashScope("ditto", 111));  // different matcher
  EXPECT_NE(a, HashScope("svm", 112));    // different fingerprint
  EXPECT_EQ(a, HashScope("svm", 111));    // stable
  // The separator prevents ("ab", ...) / ("a", ...) style collisions
  // from concatenation.
  EXPECT_NE(HashScope("ab", 0), HashScope("a", 0));
}

TEST(ScoreStoreTest, PutDedupesRepeatedKeys) {
  const fs::path dir = Scratch("dedupe");
  ScoreStore store;
  ASSERT_TRUE(store.Open(dir.string()));
  for (int round = 0; round < 5; ++round) {
    ASSERT_TRUE(store.Put(1, Key(1), 0.5));
  }
  ASSERT_TRUE(store.Sync());
  EXPECT_EQ(store.stats().appends, 1);
  EXPECT_EQ(fs::file_size(ActiveSegment(dir)), kHeaderSize + kRecordSize);
  fs::remove_all(dir);
}

TEST(ScoreStoreTest, TornTailIsTruncatedNotTrusted) {
  const fs::path dir = Scratch("torn");
  constexpr uint64_t kN = 64;
  {
    ScoreStore store;
    ASSERT_TRUE(store.Open(dir.string()));
    Fill(&store, 7, kN);
    store.Close();
  }
  // A torn write: half a record of garbage at the tail.
  const std::string segment = ActiveSegment(dir);
  std::string bytes = ReadAll(segment);
  bytes.append(kRecordSize / 2, '\x5A');
  WriteAll(segment, bytes);

  ScoreStore store;
  ASSERT_TRUE(store.Open(dir.string()));
  EXPECT_EQ(CountIntact(&store, 7, kN), kN);
  EXPECT_EQ(store.stats().dropped_bytes,
            static_cast<long long>(kRecordSize / 2));
  EXPECT_EQ(store.stats().corrupt_tails, 1);
  // The open truncated the file back to the valid prefix, so appends
  // land on a clean boundary and survive the next reopen.
  Fill(&store, 7, kN + 8);
  store.Close();
  ScoreStore reopened;
  ASSERT_TRUE(reopened.Open(dir.string()));
  EXPECT_EQ(CountIntact(&reopened, 7, kN + 8), kN + 8);
  EXPECT_EQ(reopened.stats().dropped_bytes, 0);
  fs::remove_all(dir);
}

TEST(ScoreStoreTest, BitFlipFuzzNeverServesCorruptEntries) {
  const fs::path dir = Scratch("bitflip");
  constexpr uint64_t kN = 48;
  {
    ScoreStore store;
    ASSERT_TRUE(store.Open(dir.string()));
    Fill(&store, 3, kN);
    store.Close();
  }
  const std::string segment = ActiveSegment(dir);
  const std::string clean = ReadAll(segment);
  ASSERT_EQ(clean.size(), kHeaderSize + kN * kRecordSize);

  std::mt19937 rng(1234);
  for (int round = 0; round < 200; ++round) {
    const size_t bit =
        kHeaderSize * 8 + rng() % ((clean.size() - kHeaderSize) * 8);
    std::string flipped = clean;
    flipped[bit / 8] = static_cast<char>(flipped[bit / 8] ^ (1 << (bit % 8)));
    WriteAll(segment, flipped);

    ScoreStore store;
    ASSERT_TRUE(store.Open(dir.string()));
    // Prefix rule: everything before the flipped record loads intact,
    // the flipped record and everything after are dropped. CountIntact
    // fails the test if any served score is wrong.
    const uint64_t flipped_record = (bit / 8 - kHeaderSize) / kRecordSize;
    EXPECT_EQ(CountIntact(&store, 3, kN), flipped_record) << "bit " << bit;
    EXPECT_EQ(store.stats().corrupt_tails, 1);
    store.Close();
    WriteAll(segment, clean);  // restore for the next round
  }
  fs::remove_all(dir);
}

TEST(ScoreStoreTest, TruncationAtEveryLengthIsSafe) {
  const fs::path dir = Scratch("truncate");
  constexpr uint64_t kN = 8;
  {
    ScoreStore store;
    ASSERT_TRUE(store.Open(dir.string()));
    Fill(&store, 5, kN);
    store.Close();
  }
  const std::string segment = ActiveSegment(dir);
  const std::string clean = ReadAll(segment);
  for (size_t len = 0; len <= clean.size(); ++len) {
    WriteAll(segment, clean.substr(0, len));
    ScoreStore store;
    ASSERT_TRUE(store.Open(dir.string()));
    const uint64_t expected =
        len < kHeaderSize ? 0 : (len - kHeaderSize) / kRecordSize;
    EXPECT_EQ(CountIntact(&store, 5, kN), expected) << "len " << len;
    store.Close();
  }
  fs::remove_all(dir);
}

TEST(ScoreStoreTest, BadHeaderSegmentIsSkippedEntirely) {
  const fs::path dir = Scratch("badheader");
  constexpr uint64_t kN = 16;
  {
    ScoreStore store;
    ASSERT_TRUE(store.Open(dir.string()));
    Fill(&store, 11, kN);
    store.Close();
  }
  const std::string segment = ActiveSegment(dir);
  std::string bytes = ReadAll(segment);
  bytes[0] ^= 0x20;  // wrong magic: nothing in this file is trusted
  WriteAll(segment, bytes);

  ScoreStore store;
  ASSERT_TRUE(store.Open(dir.string()));
  EXPECT_EQ(store.entry_count(), 0u);
  EXPECT_EQ(store.stats().bad_headers, 1);
  // Still a usable store: the active segment was rewritten clean.
  Fill(&store, 11, 4);
  store.Close();
  ScoreStore reopened;
  ASSERT_TRUE(reopened.Open(dir.string()));
  EXPECT_EQ(CountIntact(&reopened, 11, 4), 4u);
  EXPECT_EQ(reopened.stats().bad_headers, 0);
  fs::remove_all(dir);
}

TEST(ScoreStoreTest, SegmentsRollAndCompactToOne) {
  const fs::path dir = Scratch("compact");
  constexpr uint64_t kN = 300;
  ScoreStore::Options options;
  options.max_segment_bytes = 1024;  // force frequent rolls
  ScoreStore store;
  ASSERT_TRUE(store.Open(dir.string(), options));
  Fill(&store, 1, kN);
  EXPECT_GT(store.stats().segments, 3u);
  ASSERT_TRUE(store.Compact());
  EXPECT_EQ(store.stats().segments, 1u);
  EXPECT_EQ(store.stats().compactions, 1);
  EXPECT_EQ(CountIntact(&store, 1, kN), kN);
  // No stale segment or temp files survive.
  size_t files = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    ++files;
    EXPECT_EQ(entry.path().extension(), ".seg") << entry.path();
  }
  EXPECT_EQ(files, 1u);
  // The compacted store reopens whole, and the compacted segment
  // accepts appends.
  Fill(&store, 1, kN + 16);
  store.Close();
  ScoreStore reopened;
  ASSERT_TRUE(reopened.Open(dir.string(), options));
  EXPECT_EQ(CountIntact(&reopened, 1, kN + 16), kN + 16);
  fs::remove_all(dir);
}

TEST(ScoreStoreTest, LeftoverTempFilesAreSweptOnOpen) {
  const fs::path dir = Scratch("sweep");
  fs::create_directories(dir);
  WriteAll((dir / "segment-000009.seg.tmp").string(), "half-written junk");
  ScoreStore store;
  ASSERT_TRUE(store.Open(dir.string()));
  EXPECT_FALSE(fs::exists(dir / "segment-000009.seg.tmp"));
  fs::remove_all(dir);
}

TEST(ScoreStoreTest, MmapAndPlainReadLoadsAgree) {
  const fs::path dir = Scratch("mmap");
  constexpr uint64_t kN = 200;
  {
    ScoreStore store;
    ASSERT_TRUE(store.Open(dir.string()));
    Fill(&store, 21, kN);
    store.Close();
  }
  for (const bool use_mmap : {true, false}) {
    ScoreStore::Options options;
    options.use_mmap = use_mmap;
    ScoreStore store;
    ASSERT_TRUE(store.Open(dir.string(), options));
    EXPECT_EQ(CountIntact(&store, 21, kN), kN) << "mmap=" << use_mmap;
    EXPECT_EQ(store.stats().replayed_records, static_cast<long long>(kN));
  }
  fs::remove_all(dir);
}

TEST(ScoreStoreTest, SyncEverySelfSyncs) {
  const fs::path dir = Scratch("synccadence");
  ScoreStore::Options options;
  options.sync_every = 1;
  constexpr uint64_t kN = 32;
  {
    ScoreStore store;
    ASSERT_TRUE(store.Open(dir.string(), options));
    for (uint64_t i = 0; i < kN; ++i) {
      ASSERT_TRUE(store.Put(8, Key(i), ScoreOf(i)));
    }
    // No explicit Sync: every Put self-synced, so the bytes are on
    // disk regardless of how this handle goes away.
  }
  ScoreStore store;
  ASSERT_TRUE(store.Open(dir.string()));
  EXPECT_EQ(CountIntact(&store, 8, kN), kN);
  fs::remove_all(dir);
}

TEST(ScoreStoreTest, BindMetricsMirrorsCounters) {
  const fs::path dir = Scratch("metrics");
  obs::MetricsRegistry registry;
  ScoreStore store;
  ASSERT_TRUE(store.Open(dir.string()));
  store.BindMetrics(&registry);
  Fill(&store, 2, 10);
  double score = 0.0;
  EXPECT_TRUE(store.Lookup(2, Key(3), &score));
  EXPECT_FALSE(store.Lookup(2, Key(99), &score));
  const std::string json = registry.ToJson();
  EXPECT_NE(json.find("store.appends"), std::string::npos);
  EXPECT_NE(json.find("store.lookups"), std::string::npos);
  EXPECT_NE(json.find("store.hits"), std::string::npos);
  fs::remove_all(dir);
}

TEST(ScoreStoreTest, ConcurrentPutsAndLookupsStayConsistent) {
  const fs::path dir = Scratch("threads");
  ScoreStore store;
  ASSERT_TRUE(store.Open(dir.string()));
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 400;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&store, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        const uint64_t id = static_cast<uint64_t>(t) * kPerThread + i;
        store.Put(6, Key(id), ScoreOf(id));
        double score = 0.0;
        // Lookups race with writers; a hit must carry the right score.
        if (store.Lookup(6, Key(id / 2), &score)) {
          EXPECT_DOUBLE_EQ(score, ScoreOf(id / 2));
        }
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  ASSERT_TRUE(store.Sync());
  EXPECT_EQ(store.entry_count(), kThreads * kPerThread);
  store.Close();
  ScoreStore reopened;
  ASSERT_TRUE(reopened.Open(dir.string()));
  EXPECT_EQ(CountIntact(&reopened, 6, kThreads * kPerThread),
            kThreads * kPerThread);
  fs::remove_all(dir);
}

// -- hand-crafted segment bytes (for forging peer-stream files) --

std::string RawHeader() {
  std::string header("CERTASST", 8);
  const uint32_t version = 1;
  header.append(reinterpret_cast<const char*>(&version), sizeof(version));
  return header;
}

std::string RawRecord(uint64_t scope, const models::PairKey& key,
                      double score) {
  char payload[32];
  std::memcpy(payload, &scope, 8);
  std::memcpy(payload + 8, &key.lo, 8);
  std::memcpy(payload + 16, &key.hi, 8);
  std::memcpy(payload + 24, &score, 8);
  const uint32_t crc = util::Crc32(payload, sizeof(payload));
  std::string out(payload, sizeof(payload));
  out.append(reinterpret_cast<const char*>(&crc), sizeof(crc));
  return out;
}

// -- satellite: reopen hygiene --

TEST(ScoreStoreTest, FailedOpenSetsErrorAndReopenStartsClean) {
  const fs::path good = Scratch("reopen_good");
  const fs::path locked = Scratch("reopen_locked");

  ScoreStore store;
  // Build up non-trivial counters first, so leakage would be visible.
  ASSERT_TRUE(store.Open(good.string()));
  Fill(&store, 4, 5);
  EXPECT_EQ(store.stats().appends, 5);
  store.Close();

  // Failure path 1: directory held by another "process".
  DirLock holder;
  std::string error;
  ASSERT_TRUE(holder.Acquire(locked.string(), &error));
  ScoreStore::Options exclusive;
  exclusive.exclusive_lock = true;
  EXPECT_FALSE(store.Open(locked.string(), exclusive));
  EXPECT_FALSE(store.is_open());
  EXPECT_FALSE(store.open_error().empty())
      << "a failed Open must say why";
  EXPECT_NE(store.open_error().find("locked"), std::string::npos)
      << store.open_error();

  // Failure path 2: the store path is a plain file.
  const fs::path file_path = Scratch("reopen_file");
  fs::create_directories(file_path.parent_path());
  WriteAll(file_path.string(), "not a directory");
  EXPECT_FALSE(store.Open(file_path.string()));
  EXPECT_FALSE(store.open_error().empty());

  // A subsequent successful Open on the SAME object starts clean:
  // no stale error text, no stale counters from the earlier namespace
  // or the failed attempts.
  holder.Release();
  ASSERT_TRUE(store.Open(locked.string(), exclusive));
  EXPECT_TRUE(store.is_open());
  EXPECT_TRUE(store.open_error().empty());
  EXPECT_EQ(store.stats().appends, 0);
  EXPECT_EQ(store.stats().lookups, 0);
  EXPECT_EQ(store.entry_count(), 0u);
  Fill(&store, 4, 3);
  EXPECT_EQ(store.stats().appends, 3);
  store.Close();

  fs::remove_all(good);
  fs::remove_all(locked);
  fs::remove(file_path);
}

TEST(ScoreStoreTest, FailedExclusiveOpenHoldsNoLock) {
  const fs::path dir = Scratch("faillock");
  DirLock holder;
  std::string error;
  ASSERT_TRUE(holder.Acquire(dir.string(), &error));
  {
    ScoreStore store;
    ScoreStore::Options exclusive;
    exclusive.exclusive_lock = true;
    EXPECT_FALSE(store.Open(dir.string(), exclusive));
    // The failed store must not die holding the lock: destruction (or
    // reuse) of the object must leave the directory acquirable.
  }
  holder.Release();
  DirLock probe;
  EXPECT_TRUE(probe.Acquire(dir.string(), &error))
      << "failed Open leaked a lock: " << error;
  probe.Release();
  fs::remove_all(dir);
}

// -- satellite: sync_every cadence across Compact --

TEST(ScoreStoreTest, CompactRestartsSyncEveryCadence) {
  const fs::path dir = Scratch("cadence");
  obs::MetricsRegistry registry;
  ScoreStore::Options options;
  options.sync_every = 4;
  ScoreStore store;
  ASSERT_TRUE(store.Open(dir.string(), options));
  store.BindMetrics(&registry);
  obs::Counter* syncs = registry.counter("store.syncs");

  // Three appends: under the cadence, so no self-sync yet.
  for (uint64_t i = 0; i < 3; ++i) {
    ASSERT_TRUE(store.Put(1, Key(i), ScoreOf(i)));
  }
  EXPECT_EQ(syncs->value(), 0);

  // Compact flushes everything (its own sync) and must reset the
  // countdown: the pre-compact backlog of 3 is gone, so the next 3
  // appends are again under the cadence — a carried-over count would
  // force a premature fsync on the very first post-compact append.
  ASSERT_TRUE(store.Compact());
  const long long after_compact = syncs->value();
  EXPECT_GE(after_compact, 1);
  for (uint64_t i = 3; i < 6; ++i) {
    ASSERT_TRUE(store.Put(1, Key(i), ScoreOf(i)));
  }
  EXPECT_EQ(syncs->value(), after_compact)
      << "an append under the cadence fsynced right after a compact: "
         "unsynced_appends_ leaked through Compact()";
  // The fourth post-compact append completes the cadence: exactly one
  // self-sync.
  ASSERT_TRUE(store.Put(1, Key(6), ScoreOf(6)));
  EXPECT_EQ(syncs->value(), after_compact + 1);
  fs::remove_all(dir);
}

// -- shared-stream mode --

TEST(ScoreStoreSharedTest, TwoStreamsShareOneDirectory) {
  const fs::path dir = Scratch("shared_two");
  constexpr uint64_t kA = 100, kB = 60;

  ScoreStore::Options opt_a;
  opt_a.stream_slot = 0;
  opt_a.exclusive_lock = true;
  ScoreStore::Options opt_b;
  opt_b.stream_slot = 1;
  opt_b.exclusive_lock = true;

  ScoreStore a;
  ScoreStore b;
  // Both exclusive locks coexist: exclusivity is per stream, not per
  // directory.
  ASSERT_TRUE(a.Open(dir.string(), opt_a)) << a.open_error();
  ASSERT_TRUE(b.Open(dir.string(), opt_b)) << b.open_error();

  Fill(&a, 1, kA);
  ASSERT_TRUE(b.RefreshPeers());
  EXPECT_EQ(b.stats().peer_records, static_cast<long long>(kA));
  EXPECT_EQ(b.stats().peer_refreshes, 1);
  EXPECT_EQ(CountIntact(&b, 1, kA), kA);
  EXPECT_EQ(b.stats().peer_hits, static_cast<long long>(kA));

  // Peer provenance is reported per lookup.
  double score = 0.0;
  bool from_peer = false;
  ASSERT_TRUE(b.Lookup(1, Key(0), &score, &from_peer));
  EXPECT_TRUE(from_peer);

  // B pays for its own range; A absorbs it symmetrically.
  for (uint64_t i = kA; i < kA + kB; ++i) {
    ASSERT_TRUE(b.Put(1, Key(i), ScoreOf(i)));
  }
  ASSERT_TRUE(b.Sync());
  ASSERT_TRUE(a.RefreshPeers());
  EXPECT_EQ(CountIntact(&a, 1, kA + kB), kA + kB);
  ASSERT_TRUE(a.Lookup(1, Key(0), &score, &from_peer));
  EXPECT_FALSE(from_peer) << "own entry misreported as peer-paid";
  ASSERT_TRUE(a.Lookup(1, Key(kA), &score, &from_peer));
  EXPECT_TRUE(from_peer);

  // Segment accounting is per stream: each writer reports only its own
  // file chain.
  EXPECT_EQ(a.stats().segments, 1u);
  EXPECT_EQ(b.stats().segments, 1u);

  // A refresh with nothing new absorbs nothing and counts no refresh.
  const long long refreshes = a.stats().peer_refreshes;
  ASSERT_TRUE(a.RefreshPeers());
  EXPECT_EQ(a.stats().peer_refreshes, refreshes);

  a.Close();
  b.Close();
  // A fresh slot-2 reader opening the shared dir sees both streams.
  ScoreStore::Options opt_c;
  opt_c.stream_slot = 2;
  ScoreStore c;
  ASSERT_TRUE(c.Open(dir.string(), opt_c));
  EXPECT_EQ(CountIntact(&c, 1, kA + kB), kA + kB);
  EXPECT_EQ(c.stats().peer_records, static_cast<long long>(kA + kB));
  fs::remove_all(dir);
}

TEST(ScoreStoreSharedTest, SameStreamSlotIsExclusive) {
  const fs::path dir = Scratch("shared_excl");
  ScoreStore::Options options;
  options.stream_slot = 3;
  options.exclusive_lock = true;
  ScoreStore first;
  ASSERT_TRUE(first.Open(dir.string(), options));
  ScoreStore second;
  EXPECT_FALSE(second.Open(dir.string(), options))
      << "two writers must never own one stream";
  EXPECT_FALSE(second.open_error().empty());
  fs::remove_all(dir);
}

TEST(ScoreStoreSharedTest, PeerTornTailIsNeverInterpretedOrModified) {
  const fs::path dir = Scratch("shared_torn");
  ScoreStore::Options options;
  options.stream_slot = 0;
  ScoreStore store;
  ASSERT_TRUE(store.Open(dir.string(), options));

  // Forge a sibling stream file: two whole records, then half a third
  // — exactly what a SIGKILL mid-append (or an append still in flight)
  // leaves behind.
  const std::string peer_path = (dir / "segment-w7-000001.seg").string();
  const std::string full_third = RawRecord(9, Key(2), ScoreOf(2));
  std::string bytes = RawHeader();
  bytes += RawRecord(9, Key(0), ScoreOf(0));
  bytes += RawRecord(9, Key(1), ScoreOf(1));
  bytes += full_third.substr(0, full_third.size() / 2);
  WriteAll(peer_path, bytes);

  ASSERT_TRUE(store.RefreshPeers());
  EXPECT_EQ(store.stats().peer_records, 2);
  EXPECT_EQ(CountIntact(&store, 9, 2), 2u);
  double score = 0.0;
  EXPECT_FALSE(store.Lookup(9, Key(2), &score))
      << "a torn peer record must not be served";
  // Unlike own-segment recovery, the peer file is NOT truncated or
  // counted as corruption — the tail may simply be an append its owner
  // has not finished yet.
  EXPECT_EQ(ReadAll(peer_path), bytes) << "peer file bytes were modified";
  EXPECT_EQ(store.stats().dropped_bytes, 0);
  EXPECT_EQ(store.stats().corrupt_tails, 0);

  // The owner finishes the append: the completed record is absorbed
  // from exactly where the last refresh stopped.
  bytes.resize(bytes.size() - full_third.size() / 2);
  bytes += full_third;
  WriteAll(peer_path, bytes);
  ASSERT_TRUE(store.RefreshPeers());
  EXPECT_EQ(store.stats().peer_records, 3);
  ASSERT_TRUE(store.Lookup(9, Key(2), &score));
  EXPECT_DOUBLE_EQ(score, ScoreOf(2));
  fs::remove_all(dir);
}

TEST(ScoreStoreSharedTest, BadHeaderPeerFileIsIgnoredForever) {
  const fs::path dir = Scratch("shared_badpeer");
  ScoreStore::Options options;
  options.stream_slot = 0;
  ScoreStore store;
  ASSERT_TRUE(store.Open(dir.string(), options));
  std::string bytes = RawHeader();
  bytes[0] ^= 0x20;  // wrong magic
  bytes += RawRecord(5, Key(0), ScoreOf(0));
  WriteAll((dir / "segment-w4-000001.seg").string(), bytes);
  ASSERT_TRUE(store.RefreshPeers());
  EXPECT_EQ(store.stats().peer_records, 0);
  double score = 0.0;
  EXPECT_FALSE(store.Lookup(5, Key(0), &score));
  // Still ignored on later refreshes (no re-reads, no absorption).
  ASSERT_TRUE(store.RefreshPeers());
  EXPECT_EQ(store.stats().peer_records, 0);
  fs::remove_all(dir);
}

TEST(ScoreStoreSharedTest, CompactRewritesOwnEntriesOnlyAndHonorsLease) {
  const fs::path dir = Scratch("shared_compact");
  constexpr uint64_t kOwn = 50, kPeer = 30;
  ScoreStore::Options opt_a;
  opt_a.stream_slot = 0;
  ScoreStore::Options opt_b;
  opt_b.stream_slot = 1;

  ScoreStore a;
  ScoreStore b;
  ASSERT_TRUE(a.Open(dir.string(), opt_a));
  ASSERT_TRUE(b.Open(dir.string(), opt_b));
  Fill(&a, 1, kOwn);
  for (uint64_t i = kOwn; i < kOwn + kPeer; ++i) {
    ASSERT_TRUE(b.Put(1, Key(i), ScoreOf(i)));
  }
  ASSERT_TRUE(b.Sync());
  ASSERT_TRUE(a.RefreshPeers());
  ASSERT_EQ(CountIntact(&a, 1, kOwn + kPeer), kOwn + kPeer);

  // A busy lease skips the compaction silently (a sibling is already
  // churning the directory); nothing changes.
  {
    DirLock lease;
    std::string error;
    ASSERT_TRUE(lease.AcquireFile(dir.string(),
                                  ScoreStore::CompactionLeaseFileName(),
                                  &error));
    ASSERT_TRUE(a.Compact());
    EXPECT_EQ(a.stats().compactions, 0);
  }

  // With the lease free, A compacts: its rewritten segment holds ONLY
  // the entries A paid for — sibling-paid entries stay durable in the
  // sibling's stream, where their owner compacts them.
  ASSERT_TRUE(a.Compact());
  EXPECT_EQ(a.stats().compactions, 1);
  EXPECT_EQ(a.stats().segments, 1u);
  // Still serves everything from memory...
  EXPECT_EQ(CountIntact(&a, 1, kOwn + kPeer), kOwn + kPeer);
  a.Close();
  b.Close();
  // ...and a reopen reloads own entries from the compacted segment and
  // peer entries from the sibling stream: nothing was lost.
  ScoreStore reopened;
  ASSERT_TRUE(reopened.Open(dir.string(), opt_a));
  EXPECT_EQ(CountIntact(&reopened, 1, kOwn + kPeer), kOwn + kPeer);
  EXPECT_EQ(reopened.stats().replayed_records, static_cast<long long>(kOwn));
  EXPECT_EQ(reopened.stats().peer_records, static_cast<long long>(kPeer));
  fs::remove_all(dir);
}

TEST(ScoreStoreSharedTest, VanishedPeerSegmentKeepsAbsorbedEntries) {
  const fs::path dir = Scratch("shared_vanish");
  constexpr uint64_t kPeer = 40;
  ScoreStore::Options opt_a;
  opt_a.stream_slot = 0;
  ScoreStore::Options opt_b;
  opt_b.stream_slot = 1;
  opt_b.max_segment_bytes = 512;  // force B onto several segments

  ScoreStore a;
  ScoreStore b;
  ASSERT_TRUE(a.Open(dir.string(), opt_a));
  ASSERT_TRUE(b.Open(dir.string(), opt_b));
  for (uint64_t i = 0; i < kPeer; ++i) {
    ASSERT_TRUE(b.Put(2, Key(i), ScoreOf(i)));
  }
  ASSERT_TRUE(b.Sync());
  ASSERT_TRUE(a.RefreshPeers());
  ASSERT_EQ(CountIntact(&a, 2, kPeer), kPeer);

  // B compacts: its old segment names vanish and one new name appears.
  ASSERT_TRUE(b.Compact());
  ASSERT_TRUE(a.RefreshPeers());
  // Absorbed entries survive the vanish, and re-absorbing B's compacted
  // segment deduplicates (no double counting beyond the file overlap).
  EXPECT_EQ(CountIntact(&a, 2, kPeer), kPeer);
  fs::remove_all(dir);
}

TEST(ScoreStoreSharedTest, ReopenTruncatesOwnTornTailButNeverPeerFiles) {
  const fs::path dir = Scratch("shared_owntail");
  constexpr uint64_t kOwn = 20;
  ScoreStore::Options options;
  options.stream_slot = 0;
  {
    ScoreStore store;
    ASSERT_TRUE(store.Open(dir.string(), options));
    Fill(&store, 6, kOwn);
    store.Close();
  }
  // Tear this stream's own tail and forge a torn sibling alongside.
  const std::string own_path = (dir / "segment-w0-000001.seg").string();
  std::string own_bytes = ReadAll(own_path);
  ASSERT_EQ(own_bytes.size(), kHeaderSize + kOwn * kRecordSize);
  own_bytes.append(kRecordSize / 2, '\x5A');
  WriteAll(own_path, own_bytes);
  const std::string peer_path = (dir / "segment-w1-000001.seg").string();
  std::string peer_bytes = RawHeader();
  peer_bytes += RawRecord(6, Key(kOwn), ScoreOf(kOwn));
  peer_bytes.append(kRecordSize / 2, '\x33');  // torn peer tail
  WriteAll(peer_path, peer_bytes);

  ScoreStore store;
  ASSERT_TRUE(store.Open(dir.string(), options));
  // Own torn tail: truncated and accounted, exactly as in single-writer
  // mode.
  EXPECT_EQ(store.stats().dropped_bytes,
            static_cast<long long>(kRecordSize / 2));
  EXPECT_EQ(store.stats().corrupt_tails, 1);
  EXPECT_EQ(fs::file_size(own_path), kHeaderSize + kOwn * kRecordSize);
  // Peer torn tail: valid prefix absorbed, file untouched.
  EXPECT_EQ(store.stats().peer_records, 1);
  EXPECT_EQ(ReadAll(peer_path), peer_bytes);
  EXPECT_EQ(CountIntact(&store, 6, kOwn + 1), kOwn + 1);
  fs::remove_all(dir);
}

TEST(ScoreStoreSharedTest, MixedLegacyAndStreamSegments) {
  const fs::path dir = Scratch("shared_mixed");
  constexpr uint64_t kLegacy = 25, kStream = 15;
  // A legacy single-writer store populates the directory first.
  {
    ScoreStore store;
    ASSERT_TRUE(store.Open(dir.string()));
    Fill(&store, 8, kLegacy);
    store.Close();
  }
  // A shared-mode writer joining the directory treats the legacy
  // segments as a peer stream: absorbed read-only, never rewritten.
  {
    ScoreStore::Options options;
    options.stream_slot = 0;
    ScoreStore store;
    ASSERT_TRUE(store.Open(dir.string(), options));
    EXPECT_EQ(store.stats().peer_records, static_cast<long long>(kLegacy));
    EXPECT_EQ(store.stats().replayed_records, 0);
    for (uint64_t i = kLegacy; i < kLegacy + kStream; ++i) {
      ASSERT_TRUE(store.Put(8, Key(i), ScoreOf(i)));
    }
    ASSERT_TRUE(store.Sync());
    EXPECT_EQ(CountIntact(&store, 8, kLegacy + kStream), kLegacy + kStream);
    store.Close();
  }
  EXPECT_TRUE(fs::exists(dir / "segment-000001.seg"))
      << "legacy segment must survive a shared-mode writer";
  // And the reverse: a single-writer open of the ex-fleet directory
  // absorbs the stream-named segments as peers.
  ScoreStore store;
  ASSERT_TRUE(store.Open(dir.string()));
  EXPECT_EQ(store.stats().replayed_records, static_cast<long long>(kLegacy));
  EXPECT_EQ(store.stats().peer_records, static_cast<long long>(kStream));
  EXPECT_EQ(CountIntact(&store, 8, kLegacy + kStream), kLegacy + kStream);
  // RefreshPeers outside shared mode is a harmless no-op.
  EXPECT_TRUE(store.RefreshPeers());
  fs::remove_all(dir);
}

TEST(ScoreStoreSharedTest, OpenSweepsOnlyOwnStreamTemps) {
  const fs::path dir = Scratch("shared_sweep");
  fs::create_directories(dir);
  // A sibling's in-flight compaction temp must survive this writer's
  // Open — unlinking it mid-rename would lose the sibling's rewrite.
  WriteAll((dir / "segment-w1-000005.seg.tmp").string(), "sibling temp");
  WriteAll((dir / "segment-w0-000003.seg.tmp").string(), "own stale temp");
  ScoreStore::Options options;
  options.stream_slot = 0;
  ScoreStore store;
  ASSERT_TRUE(store.Open(dir.string(), options));
  EXPECT_TRUE(fs::exists(dir / "segment-w1-000005.seg.tmp"));
  EXPECT_FALSE(fs::exists(dir / "segment-w0-000003.seg.tmp"));
  fs::remove_all(dir);
}

TEST(ScoreStoreSharedTest, PeerMetricsAreMirrored) {
  const fs::path dir = Scratch("shared_metrics");
  obs::MetricsRegistry registry;
  // Bind B's metrics before the peer writes land: counters mirror
  // events after binding (absorption at Open time predates any
  // registry and lands only in stats()).
  ScoreStore::Options opt_b;
  opt_b.stream_slot = 1;
  ScoreStore b;
  ASSERT_TRUE(b.Open(dir.string(), opt_b));
  b.BindMetrics(&registry);
  ScoreStore::Options opt_a;
  opt_a.stream_slot = 0;
  ScoreStore a;
  ASSERT_TRUE(a.Open(dir.string(), opt_a));
  Fill(&a, 3, 10);
  ASSERT_TRUE(b.RefreshPeers());
  double score = 0.0;
  ASSERT_TRUE(b.Lookup(3, Key(0), &score));
  EXPECT_EQ(registry.counter("store.peer_records")->value(), 10);
  EXPECT_EQ(registry.counter("store.peer_hits")->value(), 1);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace certa::persist
