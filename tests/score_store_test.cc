// Unit + corruption-fuzz tests for persist::ScoreStore: roundtrip and
// reopen, scope separation, torn/bit-flipped/truncated segments (the
// longest-valid-prefix recovery rule), bad headers, segment roll and
// compaction, mmap/read parity, and concurrent access. The crash
// battery proper (SIGKILL subprocesses) lives in
// score_store_crash_test.cc.

#include "persist/score_store.h"

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"

namespace certa::persist {
namespace {

namespace fs = std::filesystem;

// On-disk layout constants (score_store.cc) — the corruption tests
// need byte positions, not just the API.
constexpr size_t kHeaderSize = 12;
constexpr size_t kRecordSize = 36;

fs::path Scratch(const std::string& tag) {
  fs::path dir = fs::temp_directory_path() /
                 ("certa_score_store_" + tag + "_" +
                  std::to_string(::getpid()));
  fs::remove_all(dir);
  return dir;
}

models::PairKey Key(uint64_t i) {
  return models::PairKey{i * 2654435761u + 1, ~i * 40503u + 7};
}

double ScoreOf(uint64_t i) {
  return 0.001 * static_cast<double>(i % 997) + 1e-9;
}

std::string ActiveSegment(const fs::path& dir) {
  std::string latest;
  for (const auto& entry : fs::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.size() > 4 && name.compare(name.size() - 4, 4, ".seg") == 0 &&
        name > latest) {
      latest = name;
    }
  }
  return (dir / latest).string();
}

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteAll(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// Fills a store with entries i in [0, n) under `scope` and syncs.
void Fill(ScoreStore* store, uint64_t scope, uint64_t n) {
  for (uint64_t i = 0; i < n; ++i) {
    ASSERT_TRUE(store->Put(scope, Key(i), ScoreOf(i)));
  }
  ASSERT_TRUE(store->Sync());
}

/// Counts how many of entries [0, n) are present AND correct; any hit
/// with a wrong score fails the test immediately (a corrupted entry
/// served is the one unacceptable outcome).
uint64_t CountIntact(ScoreStore* store, uint64_t scope, uint64_t n) {
  uint64_t intact = 0;
  for (uint64_t i = 0; i < n; ++i) {
    double score = 0.0;
    if (!store->Lookup(scope, Key(i), &score)) continue;
    EXPECT_DOUBLE_EQ(score, ScoreOf(i)) << "entry " << i;
    ++intact;
  }
  return intact;
}

TEST(ScoreStoreTest, RoundtripAcrossReopen) {
  const fs::path dir = Scratch("roundtrip");
  constexpr uint64_t kN = 500;
  {
    ScoreStore store;
    ASSERT_TRUE(store.Open(dir.string()));
    Fill(&store, 42, kN);
    EXPECT_EQ(store.entry_count(), kN);
    store.Close();
  }
  ScoreStore store;
  ASSERT_TRUE(store.Open(dir.string()));
  EXPECT_EQ(store.entry_count(), kN);
  EXPECT_EQ(CountIntact(&store, 42, kN), kN);
  EXPECT_EQ(store.stats().replayed_records, static_cast<long long>(kN));
  EXPECT_EQ(store.stats().dropped_bytes, 0);
  double score = 0.0;
  EXPECT_FALSE(store.Lookup(42, Key(kN + 1), &score));
  fs::remove_all(dir);
}

TEST(ScoreStoreTest, OpenCreatesMissingDirectory) {
  const fs::path dir = Scratch("create") / "nested";
  ScoreStore store;
  ASSERT_TRUE(store.Open(dir.string()));
  EXPECT_TRUE(fs::exists(dir));
  EXPECT_TRUE(store.is_open());
  fs::remove_all(dir.parent_path());
}

TEST(ScoreStoreTest, ScopesAreDisjoint) {
  const fs::path dir = Scratch("scopes");
  ScoreStore store;
  ASSERT_TRUE(store.Open(dir.string()));
  const models::PairKey shared = Key(9);
  ASSERT_TRUE(store.Put(1, shared, 0.25));
  ASSERT_TRUE(store.Put(2, shared, 0.75));
  double score = 0.0;
  ASSERT_TRUE(store.Lookup(1, shared, &score));
  EXPECT_DOUBLE_EQ(score, 0.25);
  ASSERT_TRUE(store.Lookup(2, shared, &score));
  EXPECT_DOUBLE_EQ(score, 0.75);
  EXPECT_FALSE(store.Lookup(3, shared, &score));
  fs::remove_all(dir);
}

TEST(ScoreStoreTest, HashScopeSeparatesModelsAndData) {
  const uint64_t a = HashScope("svm", 111);
  EXPECT_NE(a, HashScope("ditto", 111));  // different matcher
  EXPECT_NE(a, HashScope("svm", 112));    // different fingerprint
  EXPECT_EQ(a, HashScope("svm", 111));    // stable
  // The separator prevents ("ab", ...) / ("a", ...) style collisions
  // from concatenation.
  EXPECT_NE(HashScope("ab", 0), HashScope("a", 0));
}

TEST(ScoreStoreTest, PutDedupesRepeatedKeys) {
  const fs::path dir = Scratch("dedupe");
  ScoreStore store;
  ASSERT_TRUE(store.Open(dir.string()));
  for (int round = 0; round < 5; ++round) {
    ASSERT_TRUE(store.Put(1, Key(1), 0.5));
  }
  ASSERT_TRUE(store.Sync());
  EXPECT_EQ(store.stats().appends, 1);
  EXPECT_EQ(fs::file_size(ActiveSegment(dir)), kHeaderSize + kRecordSize);
  fs::remove_all(dir);
}

TEST(ScoreStoreTest, TornTailIsTruncatedNotTrusted) {
  const fs::path dir = Scratch("torn");
  constexpr uint64_t kN = 64;
  {
    ScoreStore store;
    ASSERT_TRUE(store.Open(dir.string()));
    Fill(&store, 7, kN);
    store.Close();
  }
  // A torn write: half a record of garbage at the tail.
  const std::string segment = ActiveSegment(dir);
  std::string bytes = ReadAll(segment);
  bytes.append(kRecordSize / 2, '\x5A');
  WriteAll(segment, bytes);

  ScoreStore store;
  ASSERT_TRUE(store.Open(dir.string()));
  EXPECT_EQ(CountIntact(&store, 7, kN), kN);
  EXPECT_EQ(store.stats().dropped_bytes,
            static_cast<long long>(kRecordSize / 2));
  EXPECT_EQ(store.stats().corrupt_tails, 1);
  // The open truncated the file back to the valid prefix, so appends
  // land on a clean boundary and survive the next reopen.
  Fill(&store, 7, kN + 8);
  store.Close();
  ScoreStore reopened;
  ASSERT_TRUE(reopened.Open(dir.string()));
  EXPECT_EQ(CountIntact(&reopened, 7, kN + 8), kN + 8);
  EXPECT_EQ(reopened.stats().dropped_bytes, 0);
  fs::remove_all(dir);
}

TEST(ScoreStoreTest, BitFlipFuzzNeverServesCorruptEntries) {
  const fs::path dir = Scratch("bitflip");
  constexpr uint64_t kN = 48;
  {
    ScoreStore store;
    ASSERT_TRUE(store.Open(dir.string()));
    Fill(&store, 3, kN);
    store.Close();
  }
  const std::string segment = ActiveSegment(dir);
  const std::string clean = ReadAll(segment);
  ASSERT_EQ(clean.size(), kHeaderSize + kN * kRecordSize);

  std::mt19937 rng(1234);
  for (int round = 0; round < 200; ++round) {
    const size_t bit =
        kHeaderSize * 8 + rng() % ((clean.size() - kHeaderSize) * 8);
    std::string flipped = clean;
    flipped[bit / 8] = static_cast<char>(flipped[bit / 8] ^ (1 << (bit % 8)));
    WriteAll(segment, flipped);

    ScoreStore store;
    ASSERT_TRUE(store.Open(dir.string()));
    // Prefix rule: everything before the flipped record loads intact,
    // the flipped record and everything after are dropped. CountIntact
    // fails the test if any served score is wrong.
    const uint64_t flipped_record = (bit / 8 - kHeaderSize) / kRecordSize;
    EXPECT_EQ(CountIntact(&store, 3, kN), flipped_record) << "bit " << bit;
    EXPECT_EQ(store.stats().corrupt_tails, 1);
    store.Close();
    WriteAll(segment, clean);  // restore for the next round
  }
  fs::remove_all(dir);
}

TEST(ScoreStoreTest, TruncationAtEveryLengthIsSafe) {
  const fs::path dir = Scratch("truncate");
  constexpr uint64_t kN = 8;
  {
    ScoreStore store;
    ASSERT_TRUE(store.Open(dir.string()));
    Fill(&store, 5, kN);
    store.Close();
  }
  const std::string segment = ActiveSegment(dir);
  const std::string clean = ReadAll(segment);
  for (size_t len = 0; len <= clean.size(); ++len) {
    WriteAll(segment, clean.substr(0, len));
    ScoreStore store;
    ASSERT_TRUE(store.Open(dir.string()));
    const uint64_t expected =
        len < kHeaderSize ? 0 : (len - kHeaderSize) / kRecordSize;
    EXPECT_EQ(CountIntact(&store, 5, kN), expected) << "len " << len;
    store.Close();
  }
  fs::remove_all(dir);
}

TEST(ScoreStoreTest, BadHeaderSegmentIsSkippedEntirely) {
  const fs::path dir = Scratch("badheader");
  constexpr uint64_t kN = 16;
  {
    ScoreStore store;
    ASSERT_TRUE(store.Open(dir.string()));
    Fill(&store, 11, kN);
    store.Close();
  }
  const std::string segment = ActiveSegment(dir);
  std::string bytes = ReadAll(segment);
  bytes[0] ^= 0x20;  // wrong magic: nothing in this file is trusted
  WriteAll(segment, bytes);

  ScoreStore store;
  ASSERT_TRUE(store.Open(dir.string()));
  EXPECT_EQ(store.entry_count(), 0u);
  EXPECT_EQ(store.stats().bad_headers, 1);
  // Still a usable store: the active segment was rewritten clean.
  Fill(&store, 11, 4);
  store.Close();
  ScoreStore reopened;
  ASSERT_TRUE(reopened.Open(dir.string()));
  EXPECT_EQ(CountIntact(&reopened, 11, 4), 4u);
  EXPECT_EQ(reopened.stats().bad_headers, 0);
  fs::remove_all(dir);
}

TEST(ScoreStoreTest, SegmentsRollAndCompactToOne) {
  const fs::path dir = Scratch("compact");
  constexpr uint64_t kN = 300;
  ScoreStore::Options options;
  options.max_segment_bytes = 1024;  // force frequent rolls
  ScoreStore store;
  ASSERT_TRUE(store.Open(dir.string(), options));
  Fill(&store, 1, kN);
  EXPECT_GT(store.stats().segments, 3u);
  ASSERT_TRUE(store.Compact());
  EXPECT_EQ(store.stats().segments, 1u);
  EXPECT_EQ(store.stats().compactions, 1);
  EXPECT_EQ(CountIntact(&store, 1, kN), kN);
  // No stale segment or temp files survive.
  size_t files = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    ++files;
    EXPECT_EQ(entry.path().extension(), ".seg") << entry.path();
  }
  EXPECT_EQ(files, 1u);
  // The compacted store reopens whole, and the compacted segment
  // accepts appends.
  Fill(&store, 1, kN + 16);
  store.Close();
  ScoreStore reopened;
  ASSERT_TRUE(reopened.Open(dir.string(), options));
  EXPECT_EQ(CountIntact(&reopened, 1, kN + 16), kN + 16);
  fs::remove_all(dir);
}

TEST(ScoreStoreTest, LeftoverTempFilesAreSweptOnOpen) {
  const fs::path dir = Scratch("sweep");
  fs::create_directories(dir);
  WriteAll((dir / "segment-000009.seg.tmp").string(), "half-written junk");
  ScoreStore store;
  ASSERT_TRUE(store.Open(dir.string()));
  EXPECT_FALSE(fs::exists(dir / "segment-000009.seg.tmp"));
  fs::remove_all(dir);
}

TEST(ScoreStoreTest, MmapAndPlainReadLoadsAgree) {
  const fs::path dir = Scratch("mmap");
  constexpr uint64_t kN = 200;
  {
    ScoreStore store;
    ASSERT_TRUE(store.Open(dir.string()));
    Fill(&store, 21, kN);
    store.Close();
  }
  for (const bool use_mmap : {true, false}) {
    ScoreStore::Options options;
    options.use_mmap = use_mmap;
    ScoreStore store;
    ASSERT_TRUE(store.Open(dir.string(), options));
    EXPECT_EQ(CountIntact(&store, 21, kN), kN) << "mmap=" << use_mmap;
    EXPECT_EQ(store.stats().replayed_records, static_cast<long long>(kN));
  }
  fs::remove_all(dir);
}

TEST(ScoreStoreTest, SyncEverySelfSyncs) {
  const fs::path dir = Scratch("synccadence");
  ScoreStore::Options options;
  options.sync_every = 1;
  constexpr uint64_t kN = 32;
  {
    ScoreStore store;
    ASSERT_TRUE(store.Open(dir.string(), options));
    for (uint64_t i = 0; i < kN; ++i) {
      ASSERT_TRUE(store.Put(8, Key(i), ScoreOf(i)));
    }
    // No explicit Sync: every Put self-synced, so the bytes are on
    // disk regardless of how this handle goes away.
  }
  ScoreStore store;
  ASSERT_TRUE(store.Open(dir.string()));
  EXPECT_EQ(CountIntact(&store, 8, kN), kN);
  fs::remove_all(dir);
}

TEST(ScoreStoreTest, BindMetricsMirrorsCounters) {
  const fs::path dir = Scratch("metrics");
  obs::MetricsRegistry registry;
  ScoreStore store;
  ASSERT_TRUE(store.Open(dir.string()));
  store.BindMetrics(&registry);
  Fill(&store, 2, 10);
  double score = 0.0;
  EXPECT_TRUE(store.Lookup(2, Key(3), &score));
  EXPECT_FALSE(store.Lookup(2, Key(99), &score));
  const std::string json = registry.ToJson();
  EXPECT_NE(json.find("store.appends"), std::string::npos);
  EXPECT_NE(json.find("store.lookups"), std::string::npos);
  EXPECT_NE(json.find("store.hits"), std::string::npos);
  fs::remove_all(dir);
}

TEST(ScoreStoreTest, ConcurrentPutsAndLookupsStayConsistent) {
  const fs::path dir = Scratch("threads");
  ScoreStore store;
  ASSERT_TRUE(store.Open(dir.string()));
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 400;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&store, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        const uint64_t id = static_cast<uint64_t>(t) * kPerThread + i;
        store.Put(6, Key(id), ScoreOf(id));
        double score = 0.0;
        // Lookups race with writers; a hit must carry the right score.
        if (store.Lookup(6, Key(id / 2), &score)) {
          EXPECT_DOUBLE_EQ(score, ScoreOf(id / 2));
        }
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  ASSERT_TRUE(store.Sync());
  EXPECT_EQ(store.entry_count(), kThreads * kPerThread);
  store.Close();
  ScoreStore reopened;
  ASSERT_TRUE(reopened.Open(dir.string()));
  EXPECT_EQ(CountIntact(&reopened, 6, kThreads * kPerThread),
            kThreads * kPerThread);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace certa::persist
