// Tests for the saliency baselines: the LIME core, Mojito, LandMark and
// KernelSHAP. A scripted linear model with known attribute dependence
// serves as ground truth.

#include <gtest/gtest.h>

#include "explain/landmark.h"
#include "explain/lime.h"
#include "explain/mojito.h"
#include "explain/shap.h"
#include "test_util.h"
#include "text/tokenizer.h"

namespace certa::explain {
namespace {

using certa::testing::FakeMatcher;
using certa::testing::MakeRecord;
using certa::testing::MakeTable;

/// A model that only looks at attribute 0 of both records: score is
/// high iff both first attributes are non-missing (a "presence AND"
/// on attribute 0). Attribute 1 is ignored entirely.
FakeMatcher::ScoreFn FirstAttributeModel() {
  return [](const data::Record& u, const data::Record& v) {
    bool u_ok = !text::IsMissing(u.value(0));
    bool v_ok = !text::IsMissing(v.value(0));
    return (u_ok && v_ok) ? 0.9 : 0.1;
  };
}

struct Context {
  data::Table left = MakeTable("U", {"key", "junk"},
                               {{"k1", "j1"}, {"k2", "j2"}});
  data::Table right = MakeTable("V", {"key", "junk"},
                                {{"k1", "j9"}, {"k3", "j8"}});
  FakeMatcher model{FirstAttributeModel()};
  ExplainContext context{&model, &left, &right};
};

TEST(ApplyPerturbOpTest, DropBlanksTarget) {
  data::Record u = MakeRecord(0, {"a", "b"});
  data::Record v = MakeRecord(1, {"c", "d"});
  data::Record out_u;
  data::Record out_v;
  ApplyPerturbOp(u, v, data::Side::kLeft, 0b01u, PerturbOp::kDrop, &out_u,
                 &out_v);
  EXPECT_EQ(out_u.values, (std::vector<std::string>{"", "b"}));
  EXPECT_EQ(out_v.values, v.values);
}

TEST(ApplyPerturbOpTest, CopyTakesCounterpartValue) {
  data::Record u = MakeRecord(0, {"a", "b"});
  data::Record v = MakeRecord(1, {"c", "d"});
  data::Record out_u;
  data::Record out_v;
  ApplyPerturbOp(u, v, data::Side::kRight, 0b10u, PerturbOp::kCopy, &out_u,
                 &out_v);
  EXPECT_EQ(out_u.values, u.values);
  EXPECT_EQ(out_v.values, (std::vector<std::string>{"c", "b"}));
}

TEST(ApplyPerturbOpTest, CopyFallsBackToDropOnMisalignedSchemas) {
  data::Record u = MakeRecord(0, {"a", "b", "extra"});
  data::Record v = MakeRecord(1, {"c", "d"});
  data::Record out_u;
  data::Record out_v;
  ApplyPerturbOp(u, v, data::Side::kLeft, 0b001u, PerturbOp::kCopy, &out_u,
                 &out_v);
  EXPECT_EQ(out_u.values[0], "");  // dropped, not copied
}

TEST(LimeTest, FindsTheInfluentialAttribute) {
  Context fixture;
  LimeOptions options;
  SaliencyExplanation explanation = FitLimeSurrogate(
      fixture.context, fixture.left.record(0), fixture.right.record(0),
      PerturbOp::kDrop, true, true, options);
  // Attribute 0 on both sides drives the model; attribute 1 never does.
  EXPECT_GT(explanation.score({data::Side::kLeft, 0}),
            explanation.score({data::Side::kLeft, 1}) + 0.05);
  EXPECT_GT(explanation.score({data::Side::kRight, 0}),
            explanation.score({data::Side::kRight, 1}) + 0.05);
}

TEST(LimeTest, RespectsSideRestriction) {
  Context fixture;
  LimeOptions options;
  SaliencyExplanation left_only = FitLimeSurrogate(
      fixture.context, fixture.left.record(0), fixture.right.record(0),
      PerturbOp::kDrop, true, false, options);
  EXPECT_GT(left_only.score({data::Side::kLeft, 0}), 0.0);
  EXPECT_DOUBLE_EQ(left_only.score({data::Side::kRight, 0}), 0.0);
  EXPECT_DOUBLE_EQ(left_only.score({data::Side::kRight, 1}), 0.0);
}

TEST(LimeTest, DeterministicForSameInput) {
  Context fixture;
  LimeOptions options;
  auto run = [&]() {
    return FitLimeSurrogate(fixture.context, fixture.left.record(0),
                            fixture.right.record(0), PerturbOp::kDrop,
                            true, true, options);
  };
  EXPECT_EQ(run().Flattened(), run().Flattened());
}

TEST(MojitoTest, UsesDropForMatchAndCopyForNonMatch) {
  // Model keyed on the literal content so the two operators produce
  // visibly different perturbation outcomes: value "same" on both sides
  // scores as match.
  data::Table left = MakeTable("U", {"a"}, {{"same"}, {"other"}});
  data::Table right = MakeTable("V", {"a"}, {{"same"}, {"diff"}});
  FakeMatcher model([](const data::Record& u, const data::Record& v) {
    return u.value(0) == v.value(0) && !u.value(0).empty() ? 0.9 : 0.1;
  });
  ExplainContext context{&model, &left, &right};
  MojitoExplainer mojito(context);
  // Match input: drop semantics -> removing "a" kills the match, so the
  // attribute has positive saliency.
  SaliencyExplanation match_expl =
      mojito.ExplainSaliency(left.record(0), right.record(0));
  EXPECT_GT(match_expl.score({data::Side::kLeft, 0}), 0.1);
  // Non-match input: copy semantics -> copying flips toward match.
  SaliencyExplanation non_match_expl =
      mojito.ExplainSaliency(left.record(1), right.record(1));
  EXPECT_GT(non_match_expl.score({data::Side::kLeft, 0}) +
                non_match_expl.score({data::Side::kRight, 0}),
            0.1);
}

TEST(LandmarkTest, ScoresBothSidesIndependently) {
  Context fixture;
  LandmarkExplainer landmark(fixture.context);
  SaliencyExplanation explanation = landmark.ExplainSaliency(
      fixture.left.record(0), fixture.right.record(0));
  EXPECT_GT(explanation.score({data::Side::kLeft, 0}),
            explanation.score({data::Side::kLeft, 1}));
  EXPECT_GT(explanation.score({data::Side::kRight, 0}),
            explanation.score({data::Side::kRight, 1}));
}

TEST(ShapTest, ExactShapleyOnAdditiveModel) {
  // Additive model: score = 0.1 + 0.4*[u0 present] + 0.2*[v0 present].
  // Shapley values of an additive game are exactly the coefficients.
  data::Table left = MakeTable("U", {"x", "pad"}, {{"a", "p"}});
  data::Table right = MakeTable("V", {"x", "pad"}, {{"b", "q"}});
  FakeMatcher model([](const data::Record& u, const data::Record& v) {
    double score = 0.1;
    if (!text::IsMissing(u.value(0))) score += 0.4;
    if (!text::IsMissing(v.value(0))) score += 0.2;
    return score;
  });
  ExplainContext context{&model, &left, &right};
  ShapExplainer shap(context);  // 4 attributes -> exact enumeration
  SaliencyExplanation explanation =
      shap.ExplainSaliency(left.record(0), right.record(0));
  EXPECT_NEAR(explanation.score({data::Side::kLeft, 0}), 0.4, 1e-6);
  EXPECT_NEAR(explanation.score({data::Side::kRight, 0}), 0.2, 1e-6);
  EXPECT_NEAR(explanation.score({data::Side::kLeft, 1}), 0.0, 1e-6);
  EXPECT_NEAR(explanation.score({data::Side::kRight, 1}), 0.0, 1e-6);
}

TEST(ShapTest, SampledModeStillRanksCorrectly) {
  // 8+ attributes force sampling; the influential attribute must still
  // rank on top.
  std::vector<std::string> names;
  std::vector<std::string> row;
  for (int a = 0; a < 5; ++a) {
    std::string suffix = std::to_string(a);
    names.push_back(std::string("a").append(suffix));
    row.push_back(std::string("value").append(suffix));
  }
  data::Table left = MakeTable("U", names, {row});
  data::Table right = MakeTable("V", names, {row});
  FakeMatcher model([](const data::Record& u, const data::Record& v) {
    return (!text::IsMissing(u.value(2)) && !text::IsMissing(v.value(2)))
               ? 0.9
               : 0.1;
  });
  ExplainContext context{&model, &left, &right};
  ShapExplainer::Options options;
  options.max_coalitions = 200;  // below 2^10 - 2
  ShapExplainer shap(context, options);
  SaliencyExplanation explanation =
      shap.ExplainSaliency(left.record(0), right.record(0));
  auto ranked = explanation.Ranked();
  // Top two must be the (L,2) and (R,2) attributes in some order.
  std::set<std::pair<int, int>> top = {
      {static_cast<int>(ranked[0].side), ranked[0].index},
      {static_cast<int>(ranked[1].side), ranked[1].index}};
  EXPECT_TRUE(top.count({0, 2}));
  EXPECT_TRUE(top.count({1, 2}));
}

TEST(SaliencyExplanationTest, RankedIsDeterministicOnTies) {
  SaliencyExplanation explanation(2, 2);
  explanation.set_score({data::Side::kLeft, 0}, 0.5);
  explanation.set_score({data::Side::kLeft, 1}, 0.5);
  explanation.set_score({data::Side::kRight, 0}, 0.7);
  auto ranked = explanation.Ranked();
  ASSERT_EQ(ranked.size(), 4u);
  EXPECT_EQ(ranked[0].side, data::Side::kRight);
  EXPECT_EQ(ranked[0].index, 0);
  // Ties broken left-first then by index.
  EXPECT_EQ(ranked[1].side, data::Side::kLeft);
  EXPECT_EQ(ranked[1].index, 0);
  EXPECT_EQ(ranked[2].side, data::Side::kLeft);
  EXPECT_EQ(ranked[2].index, 1);
}

TEST(QualifiedAttributeNameTest, SidePrefixes) {
  data::Schema left({"name", "price"});
  data::Schema right({"title"});
  EXPECT_EQ(QualifiedAttributeName(left, right, {data::Side::kLeft, 1}),
            "L_price");
  EXPECT_EQ(QualifiedAttributeName(left, right, {data::Side::kRight, 0}),
            "R_title");
}

}  // namespace
}  // namespace certa::explain
