#include "core/token_explainer.h"

#include <gtest/gtest.h>

#include "test_util.h"
#include "text/tokenizer.h"

namespace certa::core {
namespace {

using certa::testing::FakeMatcher;
using certa::testing::MakeRecord;
using certa::testing::MakeTable;

/// Model: match iff the left record's attribute 0 still contains the
/// token "key". Other tokens are irrelevant.
FakeMatcher::ScoreFn KeyTokenModel() {
  return [](const data::Record& u, const data::Record&) {
    for (const std::string& token : text::RawTokens(u.value(0))) {
      if (token == "key") return 0.9;
    }
    return 0.1;
  };
}

struct Fixture {
  data::Table left = MakeTable("U", {"a"}, {{"pad1 key pad2 pad3"}});
  data::Table right = MakeTable("V", {"a"}, {{"whatever"}});
  FakeMatcher model{KeyTokenModel()};
  explain::ExplainContext context{&model, &left, &right};
};

TEST(TokenExplainerTest, IdentifiesTheDecisiveToken) {
  Fixture fixture;
  TokenExplainer explainer(fixture.context);
  TokenExplanation explanation = explainer.Explain(
      fixture.left.record(0), fixture.right.record(0),
      {data::Side::kLeft, 0});
  ASSERT_EQ(explanation.tokens.size(), 4u);
  EXPECT_GT(explanation.flips, 0);
  // "key" (index 1) must be the top-ranked token with probability 1:
  // every flip required dropping it.
  EXPECT_EQ(explanation.Ranked().front(), 1);
  EXPECT_DOUBLE_EQ(explanation.scores[1], 1.0);
  // Pads score strictly lower.
  EXPECT_LT(explanation.scores[0], 1.0);
  EXPECT_LT(explanation.scores[2], 1.0);
}

TEST(TokenExplainerTest, ScoresAreBounded) {
  Fixture fixture;
  TokenExplainer explainer(fixture.context);
  TokenExplanation explanation = explainer.Explain(
      fixture.left.record(0), fixture.right.record(0),
      {data::Side::kLeft, 0});
  for (double score : explanation.scores) {
    EXPECT_GE(score, 0.0);
    EXPECT_LE(score, 1.0);
  }
}

TEST(TokenExplainerTest, FallsBackToOcclusionWithoutFlips) {
  // Continuous model that never crosses 0.5: score shrinks with every
  // dropped token of attribute 0, more for longer tokens.
  data::Table left = MakeTable("U", {"a"}, {{"aaaaaa b"}});
  data::Table right = MakeTable("V", {"a"}, {{"x"}});
  FakeMatcher model([](const data::Record& u, const data::Record&) {
    double score = 0.1;
    for (const std::string& token : text::RawTokens(u.value(0))) {
      score += 0.02 * static_cast<double>(token.size());
    }
    return std::min(score, 0.49);
  });
  explain::ExplainContext context{&model, &left, &right};
  TokenExplainer explainer(context);
  TokenExplanation explanation = explainer.Explain(
      left.record(0), right.record(0), {data::Side::kLeft, 0});
  EXPECT_EQ(explanation.flips, 0);
  ASSERT_EQ(explanation.scores.size(), 2u);
  // The long token moves the score more -> ranks first; max normalized
  // to 1.
  EXPECT_EQ(explanation.Ranked().front(), 0);
  EXPECT_DOUBLE_EQ(explanation.scores[0], 1.0);
  EXPECT_LT(explanation.scores[1], 1.0);
}

TEST(TokenExplainerTest, RightSideAttribute) {
  data::Table left = MakeTable("U", {"a"}, {{"anything"}});
  data::Table right = MakeTable("V", {"a"}, {{"alpha beta"}});
  FakeMatcher model([](const data::Record&, const data::Record& v) {
    for (const std::string& token : text::RawTokens(v.value(0))) {
      if (token == "beta") return 0.9;
    }
    return 0.1;
  });
  explain::ExplainContext context{&model, &left, &right};
  TokenExplainer explainer(context);
  TokenExplanation explanation = explainer.Explain(
      left.record(0), right.record(0), {data::Side::kRight, 0});
  ASSERT_EQ(explanation.tokens.size(), 2u);
  EXPECT_EQ(explanation.Ranked().front(), 1);  // "beta"
}

TEST(TokenExplainerTest, EmptyAttributeYieldsEmptyExplanation) {
  data::Table left = MakeTable("U", {"a", "b"}, {{"", "x"}});
  data::Table right = MakeTable("V", {"a", "b"}, {{"y", "z"}});
  FakeMatcher model(
      [](const data::Record&, const data::Record&) { return 0.7; });
  explain::ExplainContext context{&model, &left, &right};
  TokenExplainer explainer(context);
  TokenExplanation explanation = explainer.Explain(
      left.record(0), right.record(0), {data::Side::kLeft, 0});
  EXPECT_TRUE(explanation.tokens.empty());
  EXPECT_TRUE(explanation.scores.empty());
}

TEST(TokenExplainerTest, SingleTokenAttributeIsDegenerate) {
  // One token: every non-degenerate mask is excluded, so no samples run
  // and the score stays 0 — but nothing crashes.
  data::Table left = MakeTable("U", {"a"}, {{"solo"}});
  data::Table right = MakeTable("V", {"a"}, {{"x"}});
  FakeMatcher model(
      [](const data::Record&, const data::Record&) { return 0.7; });
  explain::ExplainContext context{&model, &left, &right};
  TokenExplainer explainer(context);
  TokenExplanation explanation = explainer.Explain(
      left.record(0), right.record(0), {data::Side::kLeft, 0});
  ASSERT_EQ(explanation.scores.size(), 1u);
  EXPECT_DOUBLE_EQ(explanation.scores[0], 0.0);
}

TEST(TokenExplainerTest, Deterministic) {
  Fixture fixture;
  TokenExplainer explainer(fixture.context);
  TokenExplanation a = explainer.Explain(fixture.left.record(0),
                                         fixture.right.record(0),
                                         {data::Side::kLeft, 0});
  TokenExplanation b = explainer.Explain(fixture.left.record(0),
                                         fixture.right.record(0),
                                         {data::Side::kLeft, 0});
  EXPECT_EQ(a.scores, b.scores);
}

}  // namespace
}  // namespace certa::core
