// Fleet serving tests (label: fleet): `certa serve --listen --workers N`
// with N >= 2 forks a supervised master/worker fleet. These tests drive
// the real binaries end to end: stats fan-in across workers, per-worker
// connection limits and slow-reader shedding, SIGHUP rolling restart
// under a live watching client, SIGTERM fleet drain with parked work,
// the inherited-listener fallback (CERTA_FLEET_NO_REUSEPORT=1), and a
// SIGKILL'd worker being respawned with its job recovered to a
// byte-identical result. The heavier randomized kill-storm lives in
// fleet_chaos_test.cc.

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/json_parser.h"

#ifndef CERTA_CLI_PATH
#error "CERTA_CLI_PATH must be defined to the certa CLI binary path"
#endif
#ifndef CERTA_CLIENT_PATH
#error "CERTA_CLIENT_PATH must be defined to the certa_client binary path"
#endif

namespace certa {
namespace {

namespace fs = std::filesystem;

fs::path Scratch(const std::string& tag) {
  fs::path dir = fs::temp_directory_path() /
                 ("certa_fleet_" + tag + "_" + std::to_string(::getpid()));
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::string ReadAll(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

std::string Chomp(std::string text) {
  while (!text.empty() && (text.back() == '\n' || text.back() == '\r')) {
    text.pop_back();
  }
  return text;
}

int RunShell(const std::string& command, std::string* output) {
  FILE* pipe = ::popen((command + " 2>&1").c_str(), "r");
  if (pipe == nullptr) return -1;
  output->clear();
  char buffer[4096];
  size_t n = 0;
  while ((n = ::fread(buffer, 1, sizeof(buffer), pipe)) > 0) {
    output->append(buffer, n);
  }
  const int status = ::pclose(pipe);
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

/// Forks `certa serve <args>` as a direct child (stdout+stderr into
/// `log`) so tests can signal the master itself and read its exit code.
pid_t SpawnFleet(const std::vector<std::string>& args, const fs::path& log,
                 bool no_reuseport = false) {
  pid_t pid = fork();
  if (pid != 0) return pid;
  if (no_reuseport) setenv("CERTA_FLEET_NO_REUSEPORT", "1", 1);
  std::freopen("/dev/null", "r", stdin);
  FILE* out = std::freopen(log.string().c_str(), "w", stdout);
  if (out != nullptr) dup2(fileno(stdout), fileno(stderr));
  std::vector<char*> argv;
  std::string binary = CERTA_CLI_PATH;
  argv.push_back(binary.data());
  std::string serve = "serve";
  argv.push_back(serve.data());
  std::vector<std::string> owned = args;
  for (std::string& arg : owned) argv.push_back(arg.data());
  argv.push_back(nullptr);
  execv(CERTA_CLI_PATH, argv.data());
  _exit(127);
}

/// Polls the master log for "LISTENING host:port"; 0 on timeout.
int WaitForPort(const fs::path& log) {
  for (int attempt = 0; attempt < 800; ++attempt) {
    const std::string text = ReadAll(log);
    const size_t at = text.find("LISTENING ");
    if (at != std::string::npos) {
      const size_t colon = text.find(':', at);
      const size_t end = text.find('\n', at);
      if (colon != std::string::npos && end != std::string::npos) {
        return std::stoi(text.substr(colon + 1, end - colon - 1));
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
  }
  return 0;
}

bool WaitForPattern(const fs::path& log, const std::string& pattern,
                    int timeout_ms = 20000) {
  for (int waited = 0; waited < timeout_ms; waited += 25) {
    if (ReadAll(log).find(pattern) != std::string::npos) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
  }
  return false;
}

int StopServer(pid_t pid, int sig) {
  kill(pid, sig);
  int status = 0;
  if (waitpid(pid, &status, 0) != pid) return -1;
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

std::string ClientCmd(int port, const std::string& rest) {
  return std::string(CERTA_CLIENT_PATH) + " " + rest + " --port " +
         std::to_string(port);
}

struct WorkerLine {
  int slot = -1;
  pid_t pid = -1;
};

/// Every "WORKER <slot> pid=<pid>" line the master printed, in order —
/// respawns append, so the latest entry per slot is the live pid.
std::vector<WorkerLine> ParseWorkerLines(const std::string& text) {
  std::vector<WorkerLine> workers;
  size_t at = 0;
  while ((at = text.find("WORKER ", at)) != std::string::npos) {
    // Only count line starts (the word can appear in other output).
    if (at != 0 && text[at - 1] != '\n') {
      at += 7;
      continue;
    }
    WorkerLine line;
    if (std::sscanf(text.c_str() + at, "WORKER %d pid=%d", &line.slot,
                    &line.pid) == 2) {
      workers.push_back(line);
    }
    at += 7;
  }
  return workers;
}

/// Non-blocking connect with a bounded wait; -1 when the connection
/// cannot even establish (SYN dropped by a full backlog).
int ConnectNonBlocking(int port, int establish_timeout_ms) {
  int fd = socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  const int rc = connect(fd, reinterpret_cast<sockaddr*>(&addr),
                         sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) {
    close(fd);
    return -1;
  }
  pollfd pfd{fd, POLLOUT, 0};
  if (poll(&pfd, 1, establish_timeout_ms) != 1) {
    close(fd);
    return -1;
  }
  int so_error = 0;
  socklen_t len = sizeof(so_error);
  if (getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len) != 0 ||
      so_error != 0) {
    close(fd);
    return -1;
  }
  return fd;
}

/// Sends a ping frame and waits for any response line. True only when
/// the worker actually serviced the connection (pong; an error frame
/// such as too_many_connections counts as not serviced).
bool PingAnswered(int fd, int timeout_ms) {
  const std::string ping = "{\"schema_version\":1,\"type\":\"ping\"}\n";
  if (write(fd, ping.data(), ping.size()) !=
      static_cast<ssize_t>(ping.size())) {
    return false;
  }
  std::string line;
  char byte = 0;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    pollfd pfd{fd, POLLIN, 0};
    if (poll(&pfd, 1, 50) != 1) continue;
    const ssize_t n = read(fd, &byte, 1);
    if (n <= 0) return false;  // closed (e.g. rejected over-limit)
    if (byte == '\n') return line.find("\"pong\"") != std::string::npos;
    line.push_back(byte);
  }
  return false;
}

/// Finds a job's dir across fleet partitions (`<root>/w<slot>/<id>`).
fs::path FindJobDir(const fs::path& job_root, const std::string& id) {
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(job_root, ec)) {
    if (!entry.is_directory()) continue;
    const fs::path candidate = entry.path() / id;
    if (fs::exists(candidate)) return candidate;
  }
  return {};
}

/// Digs a number out of the stats frame: stats["fleet"][section][key].
long long FleetStat(const std::string& stats_output,
                    const std::string& section, const std::string& key) {
  // The client prints exactly one frame line; find it.
  const size_t brace = stats_output.find('{');
  if (brace == std::string::npos) return -1;
  const size_t end = stats_output.find('\n', brace);
  JsonValue frame;
  std::string error;
  if (!JsonValue::Parse(stats_output.substr(brace, end - brace), &frame,
                        &error)) {
    return -1;
  }
  const JsonValue* fleet = frame.Find("fleet");
  if (fleet == nullptr || !fleet->is_object()) return -1;
  const JsonValue* node = fleet;
  if (!section.empty()) {
    node = fleet->Find(section);
    if (node == nullptr || !node->is_object()) return -1;
  }
  const JsonValue* value = node->Find(key);
  return value != nullptr && value->is_integer() ? value->int_value() : -1;
}

TEST(FleetE2eTest, StatsFanInAggregatesAcrossWorkers) {
  const fs::path root = Scratch("stats");
  const fs::path log = root / "server.log";
  const std::string job_root = (root / "jobs").string();
  pid_t master = SpawnFleet({"--listen", "0", "--job-root", job_root,
                             "--workers", "2", "--queue", "8",
                             "--stats-interval-ms", "50"},
                            log);
  ASSERT_GT(master, 0);
  const int port = WaitForPort(log);
  ASSERT_GT(port, 0) << ReadAll(log);

  // Four quick jobs, spread by the kernel across the two workers.
  for (int i = 0; i < 4; ++i) {
    std::string output;
    ASSERT_EQ(RunShell(ClientCmd(port, "submit --id s" + std::to_string(i) +
                                           " --dataset AB --model svm "
                                           "--pair " + std::to_string(i) +
                                           " --triangles 10"),
                       &output),
              0)
        << output;
  }

  // The fleet aggregate is eventually consistent on the stats cadence;
  // poll until it has fanned in all four completions.
  long long completed = -1;
  long long workers_configured = -1;
  std::string output;
  for (int waited = 0; waited < 10000; waited += 100) {
    ASSERT_EQ(RunShell(ClientCmd(port, "stats"), &output), 0) << output;
    completed = FleetStat(output, "runner", "completed");
    workers_configured = FleetStat(output, "", "workers_configured");
    if (completed >= 4) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  EXPECT_EQ(workers_configured, 2) << output;
  EXPECT_EQ(completed, 4) << output;
  EXPECT_EQ(FleetStat(output, "", "workers_live"), 2) << output;
  EXPECT_GE(FleetStat(output, "server", "connections_accepted"), 4)
      << output;

  EXPECT_EQ(StopServer(master, SIGTERM), 0) << ReadAll(log);
  fs::remove_all(root);
}

TEST(FleetE2eTest, PerWorkerConnectionLimitsHoldIndependently) {
  const fs::path root = Scratch("maxconn");
  const fs::path log = root / "server.log";
  const std::string job_root = (root / "jobs").string();
  pid_t master = SpawnFleet({"--listen", "0", "--job-root", job_root,
                             "--workers", "2", "--max-connections", "1"},
                            log);
  ASSERT_GT(master, 0);
  const int port = WaitForPort(log);
  ASSERT_GT(port, 0) << ReadAll(log);

  // Each worker caps at 1 admitted connection: a full worker stops
  // accepting and lets the kernel backlog absorb the overflow. Service
  // is the evidence of admission — an admitted connection answers
  // ping, a backlogged one stays silent. Fleet-wide ceiling is 2
  // (1 per worker); if the limit were fleet-global it would be 1, if
  // it leaked it would be unbounded. SO_REUSEPORT hashes connections
  // by source port, so the rare draw where every attempt lands on one
  // worker (≈2^-7 per round) yields a single admission and is retried.
  int serviced = 0;
  std::vector<int> held;
  for (int attempt = 0; attempt < 5 && serviced < 2; ++attempt) {
    for (int fd : held) close(fd);
    held.clear();
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    serviced = 0;
    for (int i = 0; i < 8 && serviced < 2; ++i) {
      const int fd = ConnectNonBlocking(port, /*establish_timeout_ms=*/500);
      if (fd < 0) continue;  // backlog full on the hashed worker
      if (PingAnswered(fd, /*timeout_ms=*/750)) {
        ++serviced;
        held.push_back(fd);  // keep it open: its worker is now full
      } else {
        close(fd);  // backlogged (or rejected) — not serviced
      }
    }
  }
  ASSERT_EQ(serviced, 2) << "both workers should admit one connection each";

  // With one connection held per worker the whole fleet is at capacity:
  // a probe may establish into a backlog but must get no service.
  const int probe = ConnectNonBlocking(port, 500);
  if (probe >= 0) {
    EXPECT_FALSE(PingAnswered(probe, 750))
        << "a third connection was serviced past two per-worker limits";
  }
  // The held connections are unaffected by the over-limit pressure.
  for (int fd : held) EXPECT_TRUE(PingAnswered(fd, 2000));
  if (probe >= 0) close(probe);

  // Releasing capacity restores service for fresh connections.
  for (int fd : held) close(fd);
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  const int fresh = ConnectNonBlocking(port, 2000);
  ASSERT_GE(fresh, 0);
  EXPECT_TRUE(PingAnswered(fresh, 2000));
  close(fresh);

  EXPECT_EQ(StopServer(master, SIGTERM), 0) << ReadAll(log);
  fs::remove_all(root);
}

TEST(FleetE2eTest, SlowReadersAreShedPerWorkerAndCountedFleetWide) {
  const fs::path root = Scratch("slowread");
  const fs::path log = root / "server.log";
  const std::string job_root = (root / "jobs").string();
  // A 2 KiB cap keeps the backlog threshold small, so a reader that
  // pipelines requests without ever draining the answers is shed
  // quickly. The cap bounds *backlog*, not the size of one frame — a
  // single response larger than the cap is still delivered whole
  // (net_service_test pins that side of the contract).
  pid_t master = SpawnFleet({"--listen", "0", "--job-root", job_root,
                             "--workers", "2", "--stats-interval-ms", "50",
                             "--max-write-buffer", "2048"},
                            log);
  ASSERT_GT(master, 0);
  const int port = WaitForPort(log);
  ASSERT_GT(port, 0) << ReadAll(log);

  // Two readers that pipeline stats requests and never read a byte
  // back: once the kernel buffers between them and their worker fill,
  // the per-connection write buffer backs up past the cap and the
  // next required response finds the backlog over the limit —
  // whichever worker serves each closes it as a slow reader.
  std::vector<int> fds;
  for (int i = 0; i < 2; ++i) {
    const int fd = ConnectNonBlocking(port, 2000);
    ASSERT_GE(fd, 0);
    fds.push_back(fd);  // never read
  }
  const std::string request = "{\"schema_version\":1,\"type\":\"stats\"}\n";
  std::string batch;
  for (int i = 0; i < 100; ++i) batch += request;
  std::vector<size_t> offsets(fds.size(), 0);

  // The shed shows up in the fleet aggregate regardless of which
  // worker each slow reader landed on.
  std::string output;
  long long closes = -1;
  for (int attempt = 0; attempt < 3000 && closes < 2; ++attempt) {
    for (size_t i = 0; i < fds.size(); ++i) {
      // Resume mid-batch after a partial write so frames stay aligned
      // (a torn line would draw bad_json errors, not backlog).
      const ssize_t n =
          send(fds[i], batch.data() + offsets[i], batch.size() - offsets[i],
               MSG_NOSIGNAL | MSG_DONTWAIT);
      if (n > 0) offsets[i] = (offsets[i] + n) % batch.size();
    }
    if (attempt % 20 == 0) {
      ASSERT_EQ(RunShell(ClientCmd(port, "stats"), &output), 0) << output;
      closes = FleetStat(output, "server", "slow_reader_closes");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(closes, 2) << output;
  for (int fd : fds) close(fd);

  EXPECT_EQ(StopServer(master, SIGTERM), 0) << ReadAll(log);
  fs::remove_all(root);
}

TEST(FleetE2eTest, RollingRestartServesThroughout) {
  const fs::path root = Scratch("rolling");
  const fs::path log = root / "server.log";
  const std::string job_root = (root / "jobs").string();
  pid_t master = SpawnFleet({"--listen", "0", "--job-root", job_root,
                             "--workers", "2", "--stats-interval-ms", "50",
                             "--restart-backoff-ms", "50",
                             "--checkpoint-every", "16"},
                            log);
  ASSERT_GT(master, 0);
  const int port = WaitForPort(log);
  ASSERT_GT(port, 0) << ReadAll(log);

  // A long watching job rides through the restart: its worker drains
  // (parking it), the replacement's resume sweep finishes it, and the
  // reconnecting client still exits 0 with the result.
  int client_code = -1;
  std::string client_output;
  std::thread client([&] {
    client_code = RunShell(
        ClientCmd(port,
                  "submit --id roll0 --dataset AB --model ditto "
                  "--triangles 3000 --no-cache --quiet"),
        &client_output);
  });

  // Let the job start, then roll the whole fleet one worker at a time.
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  ASSERT_EQ(kill(master, SIGHUP), 0);
  EXPECT_TRUE(WaitForPattern(log, "rolling restart complete", 60000))
      << ReadAll(log);

  client.join();
  EXPECT_EQ(client_code, 0) << client_output;
  EXPECT_NE(client_output.find("\"type\":\"result\""), std::string::npos)
      << client_output;

  // Both original workers were replaced: two initial spawns + two
  // rolling respawns.
  const std::vector<WorkerLine> workers = ParseWorkerLines(ReadAll(log));
  EXPECT_GE(workers.size(), 4u) << ReadAll(log);

  // The rolled job's result is byte-identical to a direct run.
  std::string direct;
  ASSERT_EQ(RunShell(std::string(CERTA_CLI_PATH) +
                         " explain --dataset AB --model ditto "
                         "--triangles 3000 --no-cache --json",
                     &direct),
            0)
      << direct;
  const fs::path job_dir = FindJobDir(fs::path(job_root), "roll0");
  ASSERT_FALSE(job_dir.empty());
  EXPECT_EQ(Chomp(ReadAll(job_dir / "result.json")), Chomp(direct));

  EXPECT_EQ(StopServer(master, SIGTERM), 0) << ReadAll(log);
  fs::remove_all(root);
}

TEST(FleetE2eTest, SigtermDrainParksInFlightWorkFleetWide) {
  const fs::path root = Scratch("drain");
  const fs::path log = root / "server.log";
  const std::string job_root = (root / "jobs").string();
  pid_t master = SpawnFleet({"--listen", "0", "--job-root", job_root,
                             "--workers", "2", "--queue", "8"},
                            log);
  ASSERT_GT(master, 0);
  const int port = WaitForPort(log);
  ASSERT_GT(port, 0) << ReadAll(log);

  std::string output;
  for (int i = 0; i < 2; ++i) {
    ASSERT_EQ(RunShell(ClientCmd(port, "submit --no-watch --id d" +
                                           std::to_string(i) +
                                           " --dataset AB --model ditto "
                                           "--triangles 6000 --no-cache"),
                       &output),
              0)
        << output;
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(600));

  // Parked (resumable) work fleet-wide → master exit 3.
  EXPECT_EQ(StopServer(master, SIGTERM), 3) << ReadAll(log);
  for (int i = 0; i < 2; ++i) {
    const fs::path dir =
        FindJobDir(fs::path(job_root), "d" + std::to_string(i));
    ASSERT_FALSE(dir.empty()) << "d" << i;
    EXPECT_TRUE(fs::exists(dir / "checkpoint.ckpt")) << dir;
    EXPECT_FALSE(fs::exists(dir / "result.json")) << dir;
  }
  fs::remove_all(root);
}

TEST(FleetE2eTest, InheritedListenerFallbackServes) {
  const fs::path root = Scratch("fallback");
  const fs::path log = root / "server.log";
  const std::string job_root = (root / "jobs").string();
  pid_t master = SpawnFleet({"--listen", "0", "--job-root", job_root,
                             "--workers", "2"},
                            log, /*no_reuseport=*/true);
  ASSERT_GT(master, 0);
  const int port = WaitForPort(log);
  ASSERT_GT(port, 0) << ReadAll(log);
  EXPECT_TRUE(WaitForPattern(log, "inherited listener", 2000)) << ReadAll(log);

  std::string output;
  ASSERT_EQ(RunShell(ClientCmd(port, "ping"), &output), 0) << output;
  for (int i = 0; i < 2; ++i) {
    ASSERT_EQ(RunShell(ClientCmd(port, "submit --id f" + std::to_string(i) +
                                           " --dataset AB --model svm "
                                           "--triangles 10"),
                       &output),
              0)
        << output;
    EXPECT_NE(output.find("\"type\":\"result\""), std::string::npos)
        << output;
  }
  EXPECT_EQ(StopServer(master, SIGTERM), 0) << ReadAll(log);
  fs::remove_all(root);
}

TEST(FleetE2eTest, KilledWorkerRespawnsAndItsJobRecovers) {
  const fs::path root = Scratch("respawn");
  const fs::path log = root / "server.log";
  const std::string job_root = (root / "jobs").string();
  pid_t master = SpawnFleet({"--listen", "0", "--job-root", job_root,
                             "--workers", "2", "--stats-interval-ms", "50",
                             "--restart-backoff-ms", "50",
                             "--checkpoint-every", "16"},
                            log);
  ASSERT_GT(master, 0);
  const int port = WaitForPort(log);
  ASSERT_GT(port, 0) << ReadAll(log);

  std::string output;
  ASSERT_EQ(RunShell(ClientCmd(port,
                               "submit --no-watch --id victim --dataset AB "
                               "--model ditto --triangles 3000 --no-cache"),
                     &output),
            0)
      << output;
  std::this_thread::sleep_for(std::chrono::milliseconds(400));

  // SIGKILL the worker that owns the job, mid-run.
  const fs::path job_dir = FindJobDir(fs::path(job_root), "victim");
  ASSERT_FALSE(job_dir.empty());
  const std::string partition = job_dir.parent_path().filename().string();
  ASSERT_EQ(partition.rfind('w', 0), 0u) << partition;
  const int victim_slot = std::stoi(partition.substr(1));
  std::vector<WorkerLine> workers = ParseWorkerLines(ReadAll(log));
  pid_t victim_pid = -1;
  for (const WorkerLine& line : workers) {
    if (line.slot == victim_slot) victim_pid = line.pid;
  }
  ASSERT_GT(victim_pid, 0);
  const size_t spawns_before = workers.size();
  ASSERT_EQ(kill(victim_pid, SIGKILL), 0);

  // The master respawns the slot; the replacement's resume sweep
  // re-admits the orphaned job and completes it — zero lost work.
  for (int waited = 0; waited < 20000; waited += 50) {
    workers = ParseWorkerLines(ReadAll(log));
    if (workers.size() > spawns_before) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  ASSERT_GT(workers.size(), spawns_before) << ReadAll(log);
  EXPECT_EQ(workers.back().slot, victim_slot);

  int code = -1;
  for (int waited = 0; waited < 90000; waited += 250) {
    code = RunShell(ClientCmd(port, "status --job victim"), &output);
    if (code == 0 && output.find("\"state\":\"complete\"") !=
                         std::string::npos) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(250));
  }
  EXPECT_NE(output.find("\"state\":\"complete\""), std::string::npos)
      << output;

  std::string direct;
  ASSERT_EQ(RunShell(std::string(CERTA_CLI_PATH) +
                         " explain --dataset AB --model ditto "
                         "--triangles 3000 --no-cache --json",
                     &direct),
            0)
      << direct;
  EXPECT_EQ(Chomp(ReadAll(job_dir / "result.json")), Chomp(direct));

  EXPECT_EQ(StopServer(master, SIGTERM), 0) << ReadAll(log);
  fs::remove_all(root);
}

}  // namespace
}  // namespace certa
