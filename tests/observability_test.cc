// Tests for the observability layer (src/obs): counter/gauge/histogram
// correctness under concurrent pool writers, quantile estimation, the
// zero-overhead-when-disabled contract, trace-event JSON schema, and
// the determinism invariant — a CertaResult is byte-identical whether
// metrics/tracing are attached or not.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include <gtest/gtest.h>

#include "core/certa_explainer.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "persist/journal.h"
#include "test_util.h"
#include "util/thread_pool.h"

namespace certa {
namespace {

using certa::testing::FakeMatcher;
using certa::testing::MakeTable;

// ---------------------------------------------------------------------------
// Minimal JSON syntax checker (the repo has a writer, not a parser):
// validates the value grammar so snapshots/traces are known loadable.

class JsonChecker {
 public:
  explicit JsonChecker(std::string_view text) : text_(text) {}

  bool Valid() {
    SkipSpace();
    if (!Value()) return false;
    SkipSpace();
    return pos_ == text_.size();
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\n' ||
            text_[pos_] == '\r' || text_[pos_] == '\t')) {
      ++pos_;
    }
  }
  bool Literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }
  bool String() {
    if (pos_ >= text_.size() || text_[pos_] != '"') return false;
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }
  bool Number() {
    size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' ||
            text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool Value() {
    SkipSpace();
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': {
        ++pos_;
        SkipSpace();
        if (pos_ < text_.size() && text_[pos_] == '}') { ++pos_; return true; }
        while (true) {
          SkipSpace();
          if (!String()) return false;
          SkipSpace();
          if (pos_ >= text_.size() || text_[pos_] != ':') return false;
          ++pos_;
          if (!Value()) return false;
          SkipSpace();
          if (pos_ < text_.size() && text_[pos_] == ',') { ++pos_; continue; }
          break;
        }
        if (pos_ >= text_.size() || text_[pos_] != '}') return false;
        ++pos_;
        return true;
      }
      case '[': {
        ++pos_;
        SkipSpace();
        if (pos_ < text_.size() && text_[pos_] == ']') { ++pos_; return true; }
        while (true) {
          if (!Value()) return false;
          SkipSpace();
          if (pos_ < text_.size() && text_[pos_] == ',') { ++pos_; continue; }
          break;
        }
        if (pos_ >= text_.size() || text_[pos_] != ']') return false;
        ++pos_;
        return true;
      }
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

bool IsValidJson(std::string_view text) { return JsonChecker(text).Valid(); }

TEST(JsonCheckerTest, SelfTest) {
  EXPECT_TRUE(IsValidJson(R"({"a":[1,2.5,-3e4],"b":{"c":null},"d":"x"})"));
  EXPECT_FALSE(IsValidJson(R"({"a":})"));
  EXPECT_FALSE(IsValidJson(R"({"a":1)"));
  EXPECT_FALSE(IsValidJson("{} trailing"));
}

// ---------------------------------------------------------------------------
// Counters / gauges

TEST(MetricsTest, CounterCountsExactlyUnderConcurrency) {
  obs::MetricsRegistry registry;
  obs::Counter* counter = registry.counter("test.counter");
  util::ThreadPool pool(8);
  constexpr int kRounds = 200;
  constexpr int kTasks = 64;
  for (int round = 0; round < kRounds; ++round) {
    pool.ParallelFor(kTasks, [&](size_t) { counter->Increment(); });
  }
  EXPECT_EQ(counter->value(), kRounds * kTasks);
}

TEST(MetricsTest, CounterAddAccumulatesDeltas) {
  obs::MetricsRegistry registry;
  obs::Counter* counter = registry.counter("test.bytes");
  counter->Add(100);
  counter->Add(23);
  EXPECT_EQ(counter->value(), 123);
}

TEST(MetricsTest, GaugeSetAndAdd) {
  obs::MetricsRegistry registry;
  obs::Gauge* gauge = registry.gauge("test.depth");
  gauge->Set(7);
  EXPECT_EQ(gauge->value(), 7);
  gauge->Add(-3);
  EXPECT_EQ(gauge->value(), 4);
}

TEST(MetricsTest, HandlesAreStablePerName) {
  obs::MetricsRegistry registry;
  EXPECT_EQ(registry.counter("same"), registry.counter("same"));
  EXPECT_NE(registry.counter("same"), registry.counter("other"));
  EXPECT_EQ(registry.histogram("h"), registry.histogram("h"));
}

TEST(MetricsTest, DisabledRegistryRecordsNothing) {
  obs::MetricsRegistry registry(/*enabled=*/false);
  obs::Counter* counter = registry.counter("test.counter");
  obs::Gauge* gauge = registry.gauge("test.gauge");
  obs::Histogram* histogram = registry.histogram("test.histogram");
  counter->Add(5);
  gauge->Set(5);
  histogram->Record(5.0);
  EXPECT_EQ(counter->value(), 0);
  EXPECT_EQ(gauge->value(), 0);
  EXPECT_EQ(histogram->count(), 0);
  registry.set_enabled(true);
  counter->Add(5);
  EXPECT_EQ(counter->value(), 5);
}

// ---------------------------------------------------------------------------
// Histograms

TEST(MetricsTest, HistogramCountSumMinMax) {
  obs::MetricsRegistry registry;
  obs::Histogram* histogram =
      registry.histogram("h", obs::ExponentialBuckets(1.0, 2.0, 10));
  histogram->Record(3.0);
  histogram->Record(1.0);
  histogram->Record(40.0);
  EXPECT_EQ(histogram->count(), 3);
  EXPECT_NEAR(histogram->sum(), 44.0, 1e-6);
  EXPECT_DOUBLE_EQ(histogram->min(), 1.0);
  EXPECT_DOUBLE_EQ(histogram->max(), 40.0);
}

TEST(MetricsTest, HistogramQuantilesLandInTheRightBucket) {
  obs::MetricsRegistry registry;
  // Bounds 100, 200, ..., 1000: uniform samples 1..1000 put the true
  // p50/p95/p99 at 500/950/990; bucket interpolation must stay within
  // one bucket width.
  std::vector<double> bounds;
  for (int b = 100; b <= 1000; b += 100) bounds.push_back(b);
  obs::Histogram* histogram = registry.histogram("h", bounds);
  for (int i = 1; i <= 1000; ++i) histogram->Record(i);
  EXPECT_NEAR(histogram->Quantile(0.50), 500.0, 100.0);
  EXPECT_NEAR(histogram->Quantile(0.95), 950.0, 100.0);
  EXPECT_NEAR(histogram->Quantile(0.99), 990.0, 100.0);
  EXPECT_EQ(histogram->Quantile(0.5), histogram->Quantile(0.5));
}

TEST(MetricsTest, HistogramOverflowBucketReportsObservedMax) {
  obs::MetricsRegistry registry;
  obs::Histogram* histogram = registry.histogram("h", {1.0, 2.0});
  histogram->Record(1e9);
  EXPECT_EQ(histogram->count(), 1);
  EXPECT_DOUBLE_EQ(histogram->Quantile(0.99), 1e9);
  EXPECT_EQ(histogram->bucket_count(2), 1);  // overflow bucket
}

TEST(MetricsTest, HistogramExactCountUnderConcurrency) {
  obs::MetricsRegistry registry;
  obs::Histogram* histogram =
      registry.histogram("h", obs::LatencyBuckets());
  util::ThreadPool pool(8);
  constexpr int kSamples = 20000;
  pool.ParallelFor(kSamples, [&](size_t i) {
    histogram->Record(static_cast<double>(i % 1000) + 1.0);
  });
  EXPECT_EQ(histogram->count(), kSamples);
  long long bucket_total = 0;
  for (size_t b = 0; b <= histogram->bounds().size(); ++b) {
    bucket_total += histogram->bucket_count(b);
  }
  EXPECT_EQ(bucket_total, kSamples);
}

TEST(MetricsTest, SnapshotIsValidJsonWithExpectedShape) {
  obs::MetricsRegistry registry;
  registry.counter("scoring.cache.hits")->Add(3);
  registry.gauge("service.queue.depth")->Set(2);
  registry.histogram("scoring.batch.latency_us", obs::LatencyBuckets())
      ->Record(123.0);
  const std::string json = registry.ToJson();
  EXPECT_TRUE(IsValidJson(json)) << json;
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"scoring.cache.hits\":3"), std::string::npos);
  EXPECT_NE(json.find("\"p95\""), std::string::npos);
  EXPECT_NE(json.find("\"buckets\""), std::string::npos);
  EXPECT_NE(json.find("\"le\":null"), std::string::npos);  // overflow bucket
}

// ---------------------------------------------------------------------------
// Trace recorder

TEST(TraceTest, SpansRecordNameArgsAndNesting) {
  obs::TraceRecorder recorder;
  {
    obs::TraceSpan outer(&recorder, "explain");
    {
      obs::TraceSpan inner(&recorder, "phase:lattice");
      inner.AddArg("flips", 19);
    }
    outer.AddArg("status", 0);
  }
  // Inner destructs first, so it is event 0.
  EXPECT_EQ(recorder.event_count(), 2u);
  const std::string json = recorder.ToJson();
  EXPECT_TRUE(IsValidJson(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"phase:lattice\""), std::string::npos);
  EXPECT_NE(json.find("\"flips\":19"), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
}

TEST(TraceTest, NullAndDisabledRecordersAreNoOps) {
  {
    obs::TraceSpan span(nullptr, "nothing");
    span.AddArg("k", 1);  // must not crash
  }
  obs::TraceRecorder disabled(/*enabled=*/false);
  {
    obs::TraceSpan span(&disabled, "nothing");
  }
  EXPECT_EQ(disabled.event_count(), 0u);
}

TEST(TraceTest, ConcurrentSpansGetDistinctTids) {
  obs::TraceRecorder recorder;
  util::ThreadPool pool(4);
  pool.ParallelFor(64, [&](size_t i) {
    obs::TraceSpan span(&recorder, "work");
    span.AddArg("i", static_cast<long long>(i));
  });
  EXPECT_EQ(recorder.event_count(), 64u);
  EXPECT_TRUE(IsValidJson(recorder.ToJson()));
}

// ---------------------------------------------------------------------------
// Instrumented layers

TEST(ObservabilityIntegrationTest, JournalMirrorsAppendsAndSyncs) {
  const std::string path =
      ::testing::TempDir() + "/obs_journal_" +
      std::to_string(::getpid()) + ".wal";
  obs::MetricsRegistry registry;
  persist::JournalWriter writer;
  writer.BindMetrics(&registry);
  ASSERT_TRUE(writer.Open(path));
  // Open() syncs once itself (header / truncation durability).
  const long long syncs_after_open =
      registry.counter("journal.syncs")->value();
  ASSERT_TRUE(writer.Append({1, 2}, 0.5));
  ASSERT_TRUE(writer.Append({3, 4}, 0.25));
  ASSERT_TRUE(writer.Sync());
  writer.Close();
  EXPECT_EQ(registry.counter("journal.appends")->value(), 2);
  EXPECT_GT(registry.counter("journal.bytes")->value(), 0);
  EXPECT_EQ(registry.counter("journal.syncs")->value(),
            syncs_after_open + 1);
  EXPECT_EQ(registry.histogram("journal.fsync_us")->count(),
            registry.counter("journal.syncs")->value());
  ::remove(path.c_str());
}

/// A deterministic black-box model: score depends only on the pair's
/// attribute text, so two runs over the same tables issue identical
/// call streams and scores.
double HashScore(const data::Record& u, const data::Record& v) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (const std::string& value : u.values) {
    for (char c : value) h = (h ^ (unsigned char)c) * 0x100000001b3ULL;
    h = (h ^ 0x1f) * 0x100000001b3ULL;
  }
  for (const std::string& value : v.values) {
    for (char c : value) h = (h ^ (unsigned char)c) * 0x100000001b3ULL;
    h = (h ^ 0x1e) * 0x100000001b3ULL;
  }
  h ^= h >> 33;
  return static_cast<double>(h % 1000) / 999.0;
}

TEST(ObservabilityIntegrationTest, CertaResultIsByteIdenticalObsOnOrOff) {
  data::Table left = MakeTable("L", {"name", "brand", "price"},
                               {{"ipad pro 11", "apple", "799"},
                                {"galaxy tab s9", "samsung", "919"},
                                {"pixel tablet", "google", "499"},
                                {"fire hd 10", "amazon", "149"},
                                {"surface go 4", "microsoft", "579"}});
  data::Table right = MakeTable("R", {"name", "brand", "price"},
                                {{"ipad pro 11 inch", "apple", "801"},
                                 {"tab s9 wifi", "samsung", "899"},
                                 {"pixel tablet 2023", "google", "489"}});
  FakeMatcher model(HashScore);
  explain::ExplainContext context{&model, &left, &right};

  auto run = [&](obs::MetricsRegistry* metrics, obs::TraceRecorder* trace,
                 core::CertaResult* result_out) {
    core::CertaExplainer::Options options;
    options.num_triangles = 4;
    options.metrics = metrics;
    options.trace = trace;
    core::CertaExplainer explainer(context, options);
    *result_out = explainer.Explain(left.record(0), right.record(0));
    return core::CertaResultToJson(*result_out, left.schema(),
                                   right.schema());
  };

  core::CertaResult result_off, result_on;
  const std::string without_obs = run(nullptr, nullptr, &result_off);
  obs::MetricsRegistry registry;
  obs::TraceRecorder recorder;
  const std::string with_obs = run(&registry, &recorder, &result_on);

  EXPECT_EQ(without_obs, with_obs);  // byte-identical result
  // The internal cache stats (which feed CertaResult) are identical too;
  // the registry mirrors them without becoming authoritative.
  EXPECT_EQ(result_off.cache_hits, result_on.cache_hits);
  EXPECT_EQ(result_off.cache_misses, result_on.cache_misses);
  EXPECT_EQ(registry.counter("scoring.cache.hits")->value(),
            result_on.cache_hits);
  EXPECT_EQ(registry.counter("scoring.cache.misses")->value(),
            result_on.cache_misses);
  // The explainer reported phases and at least one model call.
  EXPECT_EQ(registry.counter("explain.runs")->value(), 1);
  EXPECT_GT(registry.counter("scoring.scores.computed")->value(), 0);
  EXPECT_GT(recorder.event_count(), 0u);  // explain + phase spans
  const std::string trace_json = recorder.ToJson();
  EXPECT_NE(trace_json.find("\"name\":\"explain\""), std::string::npos);
  EXPECT_NE(trace_json.find("\"name\":\"phase:"), std::string::npos);
}

TEST(ObservabilityIntegrationTest, PhaseModelCallCountsSumToTotal) {
  data::Table left = MakeTable("L", {"a", "b"},
                               {{"one", "red"},
                                {"two", "green"},
                                {"three", "blue"},
                                {"four", "cyan"}});
  data::Table right = MakeTable("R", {"a", "b"},
                                {{"one x", "red"}, {"two y", "green"}});
  FakeMatcher model(HashScore);
  explain::ExplainContext context{&model, &left, &right};
  obs::MetricsRegistry registry;
  core::CertaExplainer::Options options;
  options.num_triangles = 3;
  options.metrics = &registry;
  core::CertaExplainer explainer(context, options);
  explainer.Explain(left.record(0), right.record(0));
  const long long total =
      registry.counter("scoring.scores.computed")->value();
  long long phases = 0;
  for (const char* phase :
       {"pivot", "triangles", "lattice", "counterfactuals"}) {
    phases += registry
                  .counter(std::string("explain.phase.") + phase +
                           ".model_calls")
                  ->value();
  }
  EXPECT_EQ(phases, total);
}

}  // namespace
}  // namespace certa
