#include "util/random.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

namespace certa {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, UniformDoubleInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double x = rng.UniformDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, UniformDoubleCoversRange) {
  Rng rng(7);
  double lo = 1.0;
  double hi = 0.0;
  for (int i = 0; i < 1000; ++i) {
    double x = rng.UniformDouble();
    lo = std::min(lo, x);
    hi = std::max(hi, x);
  }
  EXPECT_LT(lo, 0.05);
  EXPECT_GT(hi, 0.95);
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(3);
  std::set<int> seen;
  for (int i = 0; i < 500; ++i) {
    int x = rng.UniformInt(2, 5);
    EXPECT_GE(x, 2);
    EXPECT_LE(x, 5);
    seen.insert(x);
  }
  EXPECT_EQ(seen.size(), 4u);  // all four values appear
}

TEST(RngTest, UniformIntSingleValue) {
  Rng rng(3);
  EXPECT_EQ(rng.UniformInt(7, 7), 7);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(11);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliRoughlyCalibrated) {
  Rng rng(13);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  double rate = static_cast<double>(hits) / n;
  EXPECT_NEAR(rate, 0.3, 0.02);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(17);
  const int n = 50000;
  double sum = 0.0;
  double sum_squares = 0.0;
  for (int i = 0; i < n; ++i) {
    double x = rng.Gaussian();
    sum += x;
    sum_squares += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum_squares / n, 1.0, 0.05);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(19);
  std::vector<int> values = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = values;
  rng.Shuffle(&shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, values);
}

TEST(RngTest, ShuffleEmptyAndSingleton) {
  Rng rng(19);
  std::vector<int> empty;
  rng.Shuffle(&empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one = {42};
  rng.Shuffle(&one);
  EXPECT_EQ(one, std::vector<int>{42});
}

TEST(RngTest, SampleIndicesDistinct) {
  Rng rng(23);
  std::vector<size_t> sample = rng.SampleIndices(100, 10);
  EXPECT_EQ(sample.size(), 10u);
  std::set<size_t> distinct(sample.begin(), sample.end());
  EXPECT_EQ(distinct.size(), 10u);
  for (size_t index : sample) EXPECT_LT(index, 100u);
}

TEST(RngTest, SampleIndicesAllWhenKExceedsN) {
  Rng rng(23);
  std::vector<size_t> sample = rng.SampleIndices(5, 10);
  EXPECT_EQ(sample.size(), 5u);
  std::set<size_t> distinct(sample.begin(), sample.end());
  EXPECT_EQ(distinct.size(), 5u);
}

TEST(RngTest, WeightedIndexRespectsWeights) {
  Rng rng(29);
  std::vector<double> weights = {0.0, 10.0, 0.0};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.WeightedIndex(weights), 1u);
  }
}

TEST(RngTest, WeightedIndexZeroWeightsFallsBackToUniform) {
  Rng rng(31);
  std::vector<double> weights = {0.0, 0.0, 0.0};
  std::set<size_t> seen;
  for (int i = 0; i < 200; ++i) {
    size_t index = rng.WeightedIndex(weights);
    EXPECT_LT(index, 3u);
    seen.insert(index);
  }
  EXPECT_EQ(seen.size(), 3u);
}

TEST(RngTest, ForkIsIndependent) {
  Rng parent(37);
  Rng child = parent.Fork();
  // The child should not replay the parent's stream.
  Rng parent_copy(37);
  parent_copy.Fork();
  int equal = 0;
  for (int i = 0; i < 50; ++i) {
    if (child.NextUint64() == parent.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

}  // namespace
}  // namespace certa
