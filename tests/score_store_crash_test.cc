// Crash-fuzz battery for persist::ScoreStore: writer subprocesses are
// SIGKILLed at size-triggered points mid-append and mid-compaction,
// then the survivor directory is reopened and every recovered entry is
// checked against the deterministic score function the writer used —
// the acceptance bar is ZERO corrupted entries served, ever; losing an
// unsynced tail is fine, serving a wrong score is not. A final
// end-to-end case kills the real CLI mid-durable-run and requires the
// store to recover and the rerun to be byte-identical.

#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "persist/score_store.h"

#ifndef CERTA_CLI_PATH
#error "CERTA_CLI_PATH must be defined to the certa CLI binary path"
#endif

namespace certa::persist {
namespace {

namespace fs = std::filesystem;

constexpr uint64_t kScope = 77;
constexpr long long kHeaderSize = 12;
constexpr long long kRecordSize = 36;

fs::path Scratch(const std::string& tag) {
  fs::path dir = fs::temp_directory_path() /
                 ("certa_store_crash_" + tag + "_" +
                  std::to_string(::getpid()));
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

models::PairKey Key(uint64_t i) {
  return models::PairKey{i * 2654435761u + 1, ~i * 40503u + 7};
}

double ScoreOf(uint64_t i) {
  return 1.0 / (1.0 + static_cast<double>(i % 1013));
}

long long TotalSegmentBytes(const fs::path& dir) {
  long long total = 0;
  if (!fs::exists(dir)) return 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() == ".seg") {
      total += static_cast<long long>(fs::file_size(entry.path()));
    }
  }
  return total;
}

/// Forked writer: appends entries 0..n-1 with sync_every=1 (each Put
/// durable on return) until killed. _exit, never exit — no destructors
/// or exit handlers run, like a real power cut.
pid_t SpawnWriter(const fs::path& dir, uint64_t n) {
  const pid_t pid = fork();
  if (pid == 0) {
    ScoreStore store;
    ScoreStore::Options options;
    options.sync_every = 1;
    if (!store.Open(dir.string(), options)) _exit(1);
    for (uint64_t i = 0; i < n; ++i) {
      store.Put(kScope, Key(i), ScoreOf(i));
    }
    store.Sync();
    _exit(0);
  }
  return pid;
}

/// Kills `pid` once the segment bytes under `dir` reach `threshold`;
/// returns false if the writer finished first.
bool KillAtSize(pid_t pid, const fs::path& dir, long long threshold) {
  for (;;) {
    int status = 0;
    if (::waitpid(pid, &status, WNOHANG) == pid) return false;
    if (TotalSegmentBytes(dir) >= threshold) {
      ::kill(pid, SIGKILL);
      int killed = 0;
      ::waitpid(pid, &killed, 0);
      EXPECT_TRUE(WIFSIGNALED(killed));
      return true;
    }
    ::usleep(500);
  }
}

/// Opens the survivor directory and validates every recoverable entry:
/// a Lookup hit with a wrong score is an instant failure. Returns the
/// number of intact entries.
uint64_t VerifyZeroCorruption(const fs::path& dir, uint64_t n,
                              ScoreStore::Stats* stats = nullptr) {
  ScoreStore store;
  EXPECT_TRUE(store.Open(dir.string()));
  uint64_t intact = 0;
  for (uint64_t i = 0; i < n; ++i) {
    double score = 0.0;
    if (!store.Lookup(kScope, Key(i), &score)) continue;
    EXPECT_DOUBLE_EQ(score, ScoreOf(i)) << "corrupted entry " << i;
    ++intact;
  }
  if (stats != nullptr) *stats = store.stats();
  return intact;
}

TEST(ScoreStoreCrashTest, SigkillDuringAppendsNeverCorrupts) {
  constexpr uint64_t kN = 20000;
  constexpr int kRounds = 8;
  for (int round = 0; round < kRounds; ++round) {
    const fs::path dir = Scratch("append" + std::to_string(round));
    // Kill points spread across the write: after ~(round+1)/9 of the
    // records have hit the disk.
    const long long threshold =
        kHeaderSize +
        kRecordSize * static_cast<long long>(kN) * (round + 1) / (kRounds + 1);
    const pid_t pid = SpawnWriter(dir, kN);
    const bool killed = KillAtSize(pid, dir, threshold);

    ScoreStore::Stats stats;
    const uint64_t intact = VerifyZeroCorruption(dir, kN, &stats);
    if (killed) {
      // sync_every=1: every record whose Put returned is durable, so
      // at least the records below the kill threshold must be intact
      // (minus at most one record torn mid-write).
      const uint64_t durable_floor =
          static_cast<uint64_t>((threshold - kHeaderSize) / kRecordSize);
      EXPECT_GE(intact + 1, durable_floor) << "round " << round;
      // Recovery may drop at most one torn tail record's bytes.
      EXPECT_LE(stats.dropped_bytes, kRecordSize) << "round " << round;
    } else {
      EXPECT_EQ(intact, kN);
    }
    // The survivor is writable: finishing the interrupted work and
    // reopening yields the full set.
    {
      ScoreStore store;
      ASSERT_TRUE(store.Open(dir.string()));
      for (uint64_t i = 0; i < kN; ++i) {
        store.Put(kScope, Key(i), ScoreOf(i));
      }
      ASSERT_TRUE(store.Sync());
    }
    EXPECT_EQ(VerifyZeroCorruption(dir, kN), kN);
    fs::remove_all(dir);
  }
}

/// Forked shared-stream writer: appends entries [begin, end) to its own
/// stream slot inside one shared directory, sync_every=1.
pid_t SpawnStreamWriter(const fs::path& dir, int slot, uint64_t begin,
                        uint64_t end) {
  const pid_t pid = fork();
  if (pid == 0) {
    ScoreStore store;
    ScoreStore::Options options;
    options.sync_every = 1;
    options.stream_slot = slot;
    options.exclusive_lock = true;
    if (!store.Open(dir.string(), options)) _exit(1);
    for (uint64_t i = begin; i < end; ++i) {
      store.Put(kScope, Key(i), ScoreOf(i));
    }
    store.Sync();
    _exit(0);
  }
  return pid;
}

TEST(ScoreStoreCrashTest, SigkillSharedStreamsNeverCorruptSiblings) {
  // Two sibling writers share one directory, each on its own stream;
  // both are SIGKILLed mid-append. A reader joining the shared dir
  // afterwards must absorb every durable record from BOTH streams and
  // serve zero corrupted entries — a sibling's torn tail is skipped,
  // never interpreted.
  constexpr uint64_t kPerWriter = 12000;
  constexpr int kRounds = 4;
  for (int round = 0; round < kRounds; ++round) {
    const fs::path dir = Scratch("shared" + std::to_string(round));
    const pid_t w0 = SpawnStreamWriter(dir, 0, 0, kPerWriter);
    const pid_t w1 = SpawnStreamWriter(dir, 1, kPerWriter, 2 * kPerWriter);
    ASSERT_GT(w0, 0);
    ASSERT_GT(w1, 0);
    // Kill once the combined streams reach a round-varying size so the
    // two writers die at interleaved, unsynchronized points.
    const long long threshold =
        2 * kHeaderSize +
        kRecordSize * static_cast<long long>(2 * kPerWriter) * (round + 1) /
            (kRounds + 2);
    for (;;) {
      if (TotalSegmentBytes(dir) >= threshold) break;
      int status = 0;
      if (::waitpid(w0, &status, WNOHANG) == w0 &&
          ::waitpid(w1, &status, WNOHANG) == w1) {
        break;  // both finished before the kill point
      }
      ::usleep(500);
    }
    ::kill(w0, SIGKILL);
    ::kill(w1, SIGKILL);
    int status = 0;
    ::waitpid(w0, &status, 0);
    ::waitpid(w1, &status, 0);

    // A slot-2 reader in the same shared namespace sees the union.
    ScoreStore store;
    ScoreStore::Options options;
    options.stream_slot = 2;
    ASSERT_TRUE(store.Open(dir.string(), options)) << store.open_error();
    uint64_t intact = 0;
    for (uint64_t i = 0; i < 2 * kPerWriter; ++i) {
      double score = 0.0;
      if (!store.Lookup(kScope, Key(i), &score)) continue;
      EXPECT_DOUBLE_EQ(score, ScoreOf(i))
          << "corrupted entry " << i << " round " << round;
      ++intact;
    }
    // sync_every=1 both sides: everything below the kill threshold is
    // durable minus at most one torn record per stream — and the reader
    // never truncates the dead siblings' files.
    const uint64_t durable_floor =
        static_cast<uint64_t>((threshold - 2 * kHeaderSize) / kRecordSize);
    EXPECT_GE(intact + 2, durable_floor) << "round " << round;
    EXPECT_EQ(store.stats().dropped_bytes, 0)
        << "reader truncated a sibling stream";
    EXPECT_GT(store.stats().peer_records, 0) << "round " << round;
    store.Close();
    fs::remove_all(dir);
  }
}

TEST(ScoreStoreCrashTest, SigkillDuringCompactionNeverLosesEntries) {
  constexpr uint64_t kN = 3000;
  constexpr int kRounds = 6;
  for (int round = 0; round < kRounds; ++round) {
    const fs::path dir = Scratch("compact" + std::to_string(round));
    {
      // Seed a multi-segment store (small segments force several
      // files, the shape compaction exists for).
      ScoreStore store;
      ScoreStore::Options options;
      options.max_segment_bytes = 4096;
      ASSERT_TRUE(store.Open(dir.string(), options));
      for (uint64_t i = 0; i < kN; ++i) {
        ASSERT_TRUE(store.Put(kScope, Key(i), ScoreOf(i)));
      }
      ASSERT_TRUE(store.Sync());
    }
    const pid_t pid = fork();
    if (pid == 0) {
      ScoreStore store;
      ScoreStore::Options options;
      options.max_segment_bytes = 4096;
      if (!store.Open(dir.string(), options)) _exit(1);
      for (;;) store.Compact();  // killed mid-loop
    }
    ASSERT_GT(pid, 0);
    // Compaction rewrites + unlinks continuously; sleep a varying
    // beat so rounds die in different windows (mid-rewrite, between
    // rename and unlink, ...).
    ::usleep(1000 * (1 + round * 7));
    ::kill(pid, SIGKILL);
    int status = 0;
    ::waitpid(pid, &status, 0);
    EXPECT_TRUE(WIFSIGNALED(status));

    // Every entry was synced before compaction started; whatever
    // window the kill hit, nothing may be lost or corrupted (old and
    // new segments can coexist — duplicates agree).
    EXPECT_EQ(VerifyZeroCorruption(dir, kN), kN) << "round " << round;
    fs::remove_all(dir);
  }
}

// -- end-to-end: kill the real CLI mid-durable-run ----------------------

int RunCli(const std::vector<std::string>& args, std::string* stdout_text) {
  std::string command = std::string("'") + CERTA_CLI_PATH + "'";
  for (const std::string& arg : args) command += " '" + arg + "'";
  command += " 2>/dev/null";
  FILE* pipe = ::popen(command.c_str(), "r");
  EXPECT_NE(pipe, nullptr);
  std::string output;
  char buffer[4096];
  size_t n;
  while ((n = ::fread(buffer, 1, sizeof(buffer), pipe)) > 0) {
    output.append(buffer, n);
  }
  const int status = ::pclose(pipe);
  if (stdout_text != nullptr) *stdout_text = std::move(output);
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

TEST(ScoreStoreCrashTest, CliKilledMidRunLeavesUsableStore) {
  const fs::path root = Scratch("cli");
  const std::string store_dir = (root / "store").string();
  auto explain_args = [&](const std::string& job) {
    return std::vector<std::string>{
        "explain",     "--dataset", "BA",  "--model",
        "svm",         "--pair",    "1",   "--triangles",
        "400",         "--job-dir", job,   "--checkpoint-every",
        "8",           "--store-dir",      store_dir};
  };
  // Reference result from an undisturbed run without any store.
  std::string reference_out;
  ASSERT_EQ(RunCli({"explain", "--dataset", "BA", "--model", "svm",
                    "--pair", "1", "--triangles", "400", "--job-dir",
                    (root / "ref").string(), "--json"},
                   &reference_out),
            0);

  // Kill a store-backed run once the store holds a few dozen records.
  {
    const std::vector<std::string> args = explain_args((root / "j1").string());
    std::vector<char*> argv;
    std::vector<std::string> storage;
    storage.push_back(CERTA_CLI_PATH);
    for (const std::string& arg : args) storage.push_back(arg);
    for (std::string& arg : storage) argv.push_back(arg.data());
    argv.push_back(nullptr);
    const pid_t pid = fork();
    if (pid == 0) {
      const int devnull = ::open("/dev/null", O_WRONLY);
      ::dup2(devnull, 1);
      ::dup2(devnull, 2);
      ::execv(CERTA_CLI_PATH, argv.data());
      _exit(127);
    }
    ASSERT_GT(pid, 0);
    const long long threshold = kHeaderSize + 40 * kRecordSize;
    bool killed = false;
    for (;;) {
      int status = 0;
      if (::waitpid(pid, &status, WNOHANG) == pid) break;
      if (TotalSegmentBytes(root / "store") >= threshold) {
        ::kill(pid, SIGKILL);
        ::waitpid(pid, &status, 0);
        killed = true;
        break;
      }
      ::usleep(1000);
    }
    // Either way the store directory must open cleanly...
    ScoreStore store;
    ASSERT_TRUE(store.Open(store_dir));
    store.Close();
    if (!killed) {
      GTEST_LOG_(INFO) << "run finished before the kill point; "
                          "recovery still verified";
    }
  }
  // ...and a fresh run against the survivor store completes with a
  // byte-identical result.
  std::string after_out;
  std::vector<std::string> rerun = explain_args((root / "j2").string());
  rerun.push_back("--json");
  ASSERT_EQ(RunCli(rerun, &after_out), 0);
  EXPECT_EQ(after_out, reference_out);
  fs::remove_all(root);
}

}  // namespace
}  // namespace certa::persist
