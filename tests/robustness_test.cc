// Fuzz-ish robustness tests for the two text-format boundaries:
// data/csv.cc (CSV in/out, table/pair/dataset loaders) and
// util/json_writer.cc (explanation export). Malformed inputs —
// truncated rows, embedded quotes and newlines, non-UTF8 bytes, empty
// attribute sets — must produce clean error returns or well-formed
// output, never crashes or partially-mutated outputs.

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "core/certa_explainer.h"
#include "data/csv.h"
#include "data/table.h"
#include "test_util.h"
#include "util/json_writer.h"
#include "util/random.h"

namespace certa {
namespace {

using data::LabeledPair;
using data::ParseCsv;
using data::Table;
using data::WriteCsv;
using testing::MakeTable;

class CsvFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    directory_ = std::filesystem::temp_directory_path() /
                 ("certa_robustness_" + std::to_string(::getpid()));
    std::filesystem::create_directories(directory_);
  }
  void TearDown() override { std::filesystem::remove_all(directory_); }

  std::string WriteFile(const std::string& name, const std::string& content) {
    std::filesystem::path path = directory_ / name;
    std::ofstream out(path, std::ios::binary);
    out << content;
    return path.string();
  }

  std::filesystem::path directory_;
};

TEST(ParseCsvTest, TruncatedAndRaggedRowsDoNotCrash) {
  for (const std::string& text :
       {std::string("a,b,c\nd,e"), std::string("a,b\nc,d,e,f\n"),
        std::string("a,"), std::string(","), std::string("\n\n\n"),
        std::string("a,b\nc")}) {
    auto rows = ParseCsv(text);  // arity validation is the caller's job
    for (const auto& row : rows) EXPECT_FALSE(row.empty());
  }
  EXPECT_TRUE(ParseCsv("").empty());
  // An unterminated quote swallows the rest of the input cleanly.
  auto rows = ParseCsv("a,\"unterminated\nnext,row");
  ASSERT_EQ(1u, rows.size());
  EXPECT_EQ("unterminated\nnext,row", rows[0][1]);
}

TEST(ParseCsvTest, QuotesNewlinesAndNonUtf8BytesRoundTrip) {
  std::vector<std::vector<std::string>> rows = {
      {"plain", "with,comma", "with\"quote"},
      {"line1\nline2", "crlf\r\nfield", "quoted \"\" doubled"},
      {std::string("\xff\xfe raw bytes \x80\x81"), "", "trailing"},
  };
  EXPECT_EQ(rows, ParseCsv(WriteCsv(rows)));
}

TEST(ParseCsvTest, RandomByteSoupNeverCrashes) {
  Rng rng(4242);
  for (int round = 0; round < 200; ++round) {
    std::string soup;
    const int length = static_cast<int>(rng.UniformUint64(120));
    for (int i = 0; i < length; ++i) {
      // Bias toward CSV metacharacters so the quote state machine is
      // actually exercised, with plenty of non-UTF8 bytes mixed in.
      switch (rng.UniformUint64(6)) {
        case 0: soup.push_back('"'); break;
        case 1: soup.push_back(','); break;
        case 2: soup.push_back('\n'); break;
        case 3: soup.push_back('\r'); break;
        default:
          soup.push_back(static_cast<char>(rng.UniformUint64(256)));
      }
    }
    auto rows = ParseCsv(soup);
    // Parsed content re-serializes and re-parses to the same rows
    // (WriteCsv quoting must cover everything ParseCsv can emit). The
    // one unrepresentable row is a single empty field — it serializes
    // to a blank line, which the parser rightly skips — so drop those.
    std::vector<std::vector<std::string>> filtered;
    for (auto& row : rows) {
      if (row.size() == 1 && row[0].empty()) continue;
      filtered.push_back(std::move(row));
    }
    EXPECT_EQ(filtered, ParseCsv(WriteCsv(filtered)));
  }
}

TEST_F(CsvFileTest, LoadTableRejectsMalformedInputCleanly) {
  Table table = MakeTable("keep", {"name"}, {{"sentinel"}});
  const Table untouched = table;
  // Missing file, empty file, bad header, ragged row, non-numeric id:
  // all must return false and leave the output table untouched.
  EXPECT_FALSE(data::LoadTableCsv((directory_ / "missing.csv").string(),
                                  "t", &table));
  EXPECT_FALSE(data::LoadTableCsv(WriteFile("empty.csv", ""), "t", &table));
  EXPECT_FALSE(data::LoadTableCsv(
      WriteFile("badheader.csv", "name,price\n1,a\n"), "t", &table));
  EXPECT_FALSE(data::LoadTableCsv(
      WriteFile("noattrs.csv", "id\n1\n"), "t", &table));
  EXPECT_FALSE(data::LoadTableCsv(
      WriteFile("ragged.csv", "id,name,price\n1,widget\n"), "t", &table));
  EXPECT_FALSE(data::LoadTableCsv(
      WriteFile("badid.csv", "id,name\nseven,widget\n"), "t", &table));
  EXPECT_FALSE(data::LoadTableCsv(
      WriteFile("floatid.csv", "id,name\n1.5,widget\n"), "t", &table));
  EXPECT_EQ(untouched.size(), table.size());
  EXPECT_EQ("sentinel", table.record(0).value(0));

  // Sanity: a well-formed file with quoted newlines and non-UTF8 bytes
  // still loads.
  EXPECT_TRUE(data::LoadTableCsv(
      WriteFile("good.csv",
                "id,name,notes\n1,\"a,b\",\"line1\nline2\"\n2,\xff\x80,ok\n"),
      "t", &table));
  EXPECT_EQ(2, table.size());
  EXPECT_EQ("line1\nline2", table.record(0).value(1));
}

TEST_F(CsvFileTest, LoadPairsRejectsUnknownIdsAndRaggedRows) {
  Table left = MakeTable("L", {"name"}, {{"a"}, {"b"}});
  Table right = MakeTable("R", {"name"}, {{"c"}});
  std::vector<LabeledPair> pairs;
  EXPECT_FALSE(data::LoadPairsCsv(
      WriteFile("unknown.csv", "ltable_id,rtable_id,label\n7,0,1\n"), left,
      right, &pairs));
  EXPECT_FALSE(data::LoadPairsCsv(
      WriteFile("ragged_pairs.csv", "ltable_id,rtable_id,label\n0,0\n"),
      left, right, &pairs));
  EXPECT_FALSE(data::LoadPairsCsv(
      WriteFile("badlabel.csv", "ltable_id,rtable_id,label\n0,0,yes\n"),
      left, right, &pairs));
  EXPECT_TRUE(pairs.empty());
  EXPECT_TRUE(data::LoadPairsCsv(
      WriteFile("good_pairs.csv", "ltable_id,rtable_id,label\n1,0,1\n"),
      left, right, &pairs));
  ASSERT_EQ(1u, pairs.size());
  EXPECT_EQ(1, pairs[0].left_index);
}

TEST_F(CsvFileTest, LoadTableFuzzedFilesReturnCleanly) {
  Rng rng(777);
  Table table("t", data::Schema({"a"}));
  for (int round = 0; round < 100; ++round) {
    std::string soup = "id,name\n";
    const int length = static_cast<int>(rng.UniformUint64(80));
    for (int i = 0; i < length; ++i) {
      soup.push_back(static_cast<char>(rng.UniformUint64(256)));
    }
    // Must return a bool (either way), never crash or throw.
    data::LoadTableCsv(WriteFile("fuzz.csv", soup), "t", &table);
  }
}

/// Scans a JSON document and checks structural well-formedness the
/// streaming writer must guarantee: balanced quotes outside strings,
/// no raw control characters inside strings, balanced braces/brackets.
void ExpectStructurallyValidJson(const std::string& json) {
  bool in_string = false;
  bool escaped = false;
  int depth = 0;
  for (char c : json) {
    unsigned char byte = static_cast<unsigned char>(c);
    if (in_string) {
      EXPECT_GE(byte, 0x20u) << "raw control character inside string";
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_FALSE(in_string) << "unterminated string";
  EXPECT_EQ(0, depth) << "unbalanced braces/brackets";
}

TEST(JsonWriterRobustnessTest, HostileStringsAreEscaped) {
  JsonWriter json;
  json.BeginObject();
  json.Key("quotes\"and\\slashes");
  json.String("line\nbreak\ttab\rret");
  json.Key("controls");
  json.String(std::string("\x01\x02\x1f zero:\x00 end", 14));
  json.Key("non-utf8");
  json.String("\xff\xfe\x80\x81");
  json.EndObject();
  ExpectStructurallyValidJson(json.str());
  EXPECT_NE(json.str().find("\\n"), std::string::npos);
  EXPECT_NE(json.str().find("\\u0001"), std::string::npos);
  EXPECT_NE(json.str().find("\\u0000"), std::string::npos);
}

TEST(JsonWriterRobustnessTest, RandomStringsProduceValidDocuments) {
  Rng rng(31337);
  for (int round = 0; round < 100; ++round) {
    JsonWriter json;
    json.BeginObject();
    json.Key("values");
    json.BeginArray();
    for (int i = 0; i < 8; ++i) {
      std::string value;
      const int length = static_cast<int>(rng.UniformUint64(40));
      for (int k = 0; k < length; ++k) {
        value.push_back(static_cast<char>(rng.UniformUint64(256)));
      }
      json.String(value);
    }
    json.EndArray();
    json.EndObject();
    ExpectStructurallyValidJson(json.str());
  }
}

TEST(JsonWriterRobustnessTest, NonFiniteNumbersBecomeNull) {
  JsonWriter json;
  json.BeginArray();
  json.Number(std::numeric_limits<double>::quiet_NaN());
  json.Number(std::numeric_limits<double>::infinity());
  json.Number(-std::numeric_limits<double>::infinity());
  json.EndArray();
  EXPECT_EQ("[null,null,null]", json.str());
}

TEST(JsonWriterRobustnessTest, EmptyResultExportsValidDocument) {
  // A default result — no saliency, no counterfactuals, no sufficiency
  // sets — must export a structurally valid document: the degenerate
  // case a truncated run with zero triangles produces. (Schema itself
  // rejects an empty attribute list by CHECK, so one attribute is the
  // smallest legal export.)
  core::CertaResult result;
  data::Schema minimal(std::vector<std::string>{"a"});
  std::string json = core::CertaResultToJson(result, minimal, minimal);
  ExpectStructurallyValidJson(json);
  EXPECT_NE(json.find("\"status\":\"complete\""), std::string::npos);

  // Hostile attribute names and values survive export too.
  core::CertaResult hostile;
  hostile.saliency = explain::SaliencyExplanation(2, 1);
  hostile.saliency.set_score({data::Side::kLeft, 0}, 0.5);
  data::Schema left(std::vector<std::string>{"name\"quoted", "new\nline"});
  data::Schema right(std::vector<std::string>{"\xff\x80" "bytes"});
  ExpectStructurallyValidJson(core::CertaResultToJson(hostile, left, right));
}

}  // namespace
}  // namespace certa
