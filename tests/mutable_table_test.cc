// data::MutableTable — the incremental index layer under the streaming
// verbs (label: stream;store). The load-bearing property is
// differential: after ANY randomized history of upserts and removals,
// Candidates(probe) must be byte-identical to a from-scratch
// CandidateIndex rebuilt over Materialize() — the exact table a batch
// run over the same data would load.

#include "data/mutable_table.h"

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "data/candidate_index.h"
#include "util/random.h"

namespace certa::data {
namespace {

Table SmallBase() {
  Table table("base", Schema({"name", "city"}));
  table.Add({1, {"anna karin", "oslo"}});
  table.Add({2, {"bert olsen", "bergen"}});
  table.Add({3, {"anna olsen", "bergen"}});
  return table;
}

Record MakeRecord(int id, const std::string& name, const std::string& city) {
  return Record{id, {name, city}};
}

TEST(MutableTableTest, SeedsFromBaseTable) {
  MutableTable table(SmallBase());
  EXPECT_EQ(table.size(), 3);
  EXPECT_EQ(table.live_size(), 3);
  EXPECT_EQ(table.schema().size(), 2);
  ASSERT_NE(table.FindById(2), nullptr);
  EXPECT_EQ(table.FindById(2)->values[1], "bergen");
  EXPECT_EQ(table.FindById(99), nullptr);
}

TEST(MutableTableTest, UpsertReplacesInPlaceAndAppendsNewIds) {
  MutableTable table(SmallBase());
  bool created = true;
  std::string error;
  // Known id: replaced in its slot, no new row.
  int row = table.Upsert(MakeRecord(2, "bert hansen", "tromso"), &created,
                         &error);
  EXPECT_EQ(row, 1);
  EXPECT_FALSE(created);
  EXPECT_EQ(table.size(), 3);
  EXPECT_EQ(table.FindById(2)->values[0], "bert hansen");
  // New id: appended.
  row = table.Upsert(MakeRecord(7, "carl berg", "oslo"), &created, &error);
  EXPECT_EQ(row, 3);
  EXPECT_TRUE(created);
  EXPECT_EQ(table.size(), 4);
  EXPECT_EQ(table.live_size(), 4);
}

TEST(MutableTableTest, UpsertRejectsWrongValueCount) {
  MutableTable table(SmallBase());
  std::string error;
  EXPECT_EQ(table.Upsert(Record{5, {"only one value"}}, nullptr, &error), -1);
  EXPECT_FALSE(error.empty());
  EXPECT_EQ(table.size(), 3);
}

TEST(MutableTableTest, RemoveTombstonesAndReusesTheSlot) {
  MutableTable table(SmallBase());
  ASSERT_TRUE(table.Remove(2));
  EXPECT_EQ(table.size(), 3);  // slot stays
  EXPECT_EQ(table.live_size(), 2);
  EXPECT_EQ(table.FindById(2), nullptr);
  EXPECT_FALSE(table.alive(1));
  // Removing again is a no-op.
  EXPECT_FALSE(table.Remove(2));
  EXPECT_FALSE(table.Remove(42));
  // A tombstoned record shares no tokens anymore ("bert" appears only
  // in the removed record).
  EXPECT_TRUE(table.Candidates(MakeRecord(-1, "bert", "NaN")).empty());
  // Re-upsert of the id reuses row 1 instead of shifting rows.
  bool created = true;
  std::string error;
  EXPECT_EQ(table.Upsert(MakeRecord(2, "bert again", "bergen"), &created,
                         &error),
            1);
  EXPECT_FALSE(created);
  EXPECT_EQ(table.live_size(), 3);
}

TEST(MutableTableTest, TopKRanksByOverlapThenRow) {
  MutableTable table(SmallBase());
  // Probe shares 2 tokens with row 2 ("anna" + "olsen"... row 2 is
  // {anna olsen, bergen}), fewer with rows 0 and 1.
  const Record probe = MakeRecord(-1, "anna olsen", "NaN");
  std::vector<MutableTable::MatchCandidate> top = table.TopK(probe, 10);
  ASSERT_GE(top.size(), 2u);
  EXPECT_EQ(top[0].id, 3);
  EXPECT_GE(top[0].overlap, 2);
  for (size_t i = 1; i < top.size(); ++i) {
    const bool ordered =
        top[i - 1].overlap > top[i].overlap ||
        (top[i - 1].overlap == top[i].overlap && top[i - 1].row < top[i].row);
    EXPECT_TRUE(ordered) << "rank " << i;
  }
  // k truncates.
  EXPECT_EQ(table.TopK(probe, 1).size(), 1u);
}

TEST(MutableTableTest, MaterializeKeepsRowNumberingWithTombstones) {
  MutableTable table(SmallBase());
  table.Remove(1);
  std::string error;
  table.Upsert(MakeRecord(9, "dora lund", "narvik"), nullptr, &error);
  Table frozen = table.Materialize();
  ASSERT_EQ(frozen.size(), table.size());
  for (int row = 0; row < frozen.size(); ++row) {
    EXPECT_EQ(frozen.record(row).id, table.record(row).id);
  }
  // The tombstoned slot rides along as all-missing values.
  for (const std::string& value : frozen.record(0).values) {
    EXPECT_EQ(value, "NaN");
  }
}

// ---------------------------------------------------------------------
// The differential contract: incremental index == from-scratch rebuild,
// byte-identical, after any mutation history.

std::string RandomWord(Rng* rng) {
  static const char* kWords[] = {"anna", "bert",  "carl",  "dora", "olsen",
                                 "berg", "lund",  "oslo",  "bergen", "narvik",
                                 "NaN",  "karin", "hansen", "tromso"};
  return kWords[rng->Index(sizeof(kWords) / sizeof(kWords[0]))];
}

Record RandomRecord(int id, Rng* rng) {
  return MakeRecord(id, RandomWord(rng) + " " + RandomWord(rng),
                    RandomWord(rng));
}

TEST(MutableTableDifferentialTest, MatchesRebuildAfterRandomHistories) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed * 7919);
    MutableTable table(SmallBase());
    for (int step = 0; step < 200; ++step) {
      const int id = rng.UniformInt(1, 20);
      if (rng.Bernoulli(0.3)) {
        table.Remove(id);
      } else {
        std::string error;
        ASSERT_GE(table.Upsert(RandomRecord(id, &rng), nullptr, &error), 0)
            << error;
      }
      if (step % 20 != 0) continue;
      // Rebuild from scratch over the materialized table and compare
      // candidate lists for a batch of probes — exact equality, which
      // is what makes streaming jobs equal batch jobs.
      const Table frozen = table.Materialize();
      const CandidateIndex rebuilt(frozen);
      for (int p = 0; p < 10; ++p) {
        const Record probe = RandomRecord(-1, &rng);
        EXPECT_EQ(table.Candidates(probe), rebuilt.Candidates(probe))
            << "seed " << seed << " step " << step;
        EXPECT_EQ(table.Candidates(probe),
                  LinearScanCandidates(frozen, probe));
      }
    }
  }
}

TEST(MutableTableDifferentialTest, TopKAgreesWithCandidateOverlapCounts) {
  Rng rng(4242);
  MutableTable table(SmallBase());
  std::string error;
  for (int id = 10; id < 40; ++id) {
    ASSERT_GE(table.Upsert(RandomRecord(id, &rng), nullptr, &error), 0);
  }
  const Record probe = RandomRecord(-1, &rng);
  const std::vector<int> candidates = table.Candidates(probe);
  const std::vector<MutableTable::MatchCandidate> top =
      table.TopK(probe, table.size());
  // Every candidate row appears in the full top list and vice versa.
  EXPECT_EQ(top.size(), candidates.size());
  for (const auto& match : top) {
    EXPECT_GE(match.overlap, 1);
    EXPECT_NE(std::find(candidates.begin(), candidates.end(), match.row),
              candidates.end());
  }
}

}  // namespace
}  // namespace certa::data
