// Fleet chaos test (label: fleet) — the headline acceptance criterion.
// A 4-worker fleet shares ONE `--store-dir` and serves 8 concurrent
// watching clients while the test SIGKILLs random live workers
// mid-load. Required outcome: every client exits 0 with its result,
// every job has exactly one result.json across the partitioned
// namespace (no lost work, no duplicated execution), every result is
// byte-identical to a direct single-process `certa explain --json`,
// the shared store shows cross-worker reuse (`store.peer_hits` > 0)
// despite workers dying mid-append to their streams, and the master
// drains to exit 0 on SIGTERM. The fleet also shares one `--stream-dir`
// and absorbs a concurrent stream of v2 upserts (against a dataset no
// explain job touches) throughout the storm: every acked upsert must be
// matchable fleet-wide afterwards, and the explain results must stay
// byte-identical to single-process runs despite the interleaved writes.
// Runs under ASan and TSan in CI via `ctest -L fleet`.

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "data/benchmarks.h"
#include "data/dataset.h"
#include "util/json_parser.h"

#ifndef CERTA_CLI_PATH
#error "CERTA_CLI_PATH must be defined to the certa CLI binary path"
#endif
#ifndef CERTA_CLIENT_PATH
#error "CERTA_CLIENT_PATH must be defined to the certa_client binary path"
#endif

namespace certa {
namespace {

namespace fs = std::filesystem;

fs::path Scratch(const std::string& tag) {
  fs::path dir = fs::temp_directory_path() /
                 ("certa_chaos_" + tag + "_" + std::to_string(::getpid()));
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::string ReadAll(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

std::string Chomp(std::string text) {
  while (!text.empty() && (text.back() == '\n' || text.back() == '\r')) {
    text.pop_back();
  }
  return text;
}

int RunShell(const std::string& command, std::string* output) {
  FILE* pipe = ::popen((command + " 2>&1").c_str(), "r");
  if (pipe == nullptr) return -1;
  output->clear();
  char buffer[4096];
  size_t n = 0;
  while ((n = ::fread(buffer, 1, sizeof(buffer), pipe)) > 0) {
    output->append(buffer, n);
  }
  const int status = ::pclose(pipe);
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

pid_t SpawnFleet(const std::vector<std::string>& args, const fs::path& log) {
  pid_t pid = fork();
  if (pid != 0) return pid;
  std::freopen("/dev/null", "r", stdin);
  FILE* out = std::freopen(log.string().c_str(), "w", stdout);
  if (out != nullptr) dup2(fileno(stdout), fileno(stderr));
  std::vector<char*> argv;
  std::string binary = CERTA_CLI_PATH;
  argv.push_back(binary.data());
  std::string serve = "serve";
  argv.push_back(serve.data());
  std::vector<std::string> owned = args;
  for (std::string& arg : owned) argv.push_back(arg.data());
  argv.push_back(nullptr);
  execv(CERTA_CLI_PATH, argv.data());
  _exit(127);
}

int WaitForPort(const fs::path& log) {
  for (int attempt = 0; attempt < 800; ++attempt) {
    const std::string text = ReadAll(log);
    const size_t at = text.find("LISTENING ");
    if (at != std::string::npos) {
      const size_t colon = text.find(':', at);
      const size_t end = text.find('\n', at);
      if (colon != std::string::npos && end != std::string::npos) {
        return std::stoi(text.substr(colon + 1, end - colon - 1));
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
  }
  return 0;
}

int StopServer(pid_t pid, int sig) {
  kill(pid, sig);
  int status = 0;
  if (waitpid(pid, &status, 0) != pid) {
    std::fprintf(stderr, "StopServer: waitpid failed: %s\n",
                 std::strerror(errno));
    return -1;
  }
  if (!WIFEXITED(status)) {
    std::fprintf(stderr, "StopServer: abnormal exit, raw status 0x%x%s\n",
                 status,
                 WIFSIGNALED(status)
                     ? (" signal " + std::to_string(WTERMSIG(status))).c_str()
                     : "");
    return -1;
  }
  return WEXITSTATUS(status);
}

std::string ClientCmd(int port, const std::string& rest) {
  return std::string(CERTA_CLIENT_PATH) + " " + rest + " --port " +
         std::to_string(port);
}

/// Latest pid per slot from the master's "WORKER <slot> pid=<pid>"
/// lines — respawns overwrite, so this is the fleet's current census.
std::vector<pid_t> CurrentWorkerPids(const std::string& text, int workers) {
  std::vector<pid_t> pids(static_cast<size_t>(workers), -1);
  size_t at = 0;
  while ((at = text.find("WORKER ", at)) != std::string::npos) {
    if (at == 0 || text[at - 1] == '\n') {
      int slot = -1;
      int pid = -1;
      if (std::sscanf(text.c_str() + at, "WORKER %d pid=%d", &slot, &pid) ==
              2 &&
          slot >= 0 && slot < workers) {
        pids[static_cast<size_t>(slot)] = pid;
      }
    }
    at += 7;
  }
  return pids;
}

/// Digs a number out of the stats frame: stats["fleet"][section][key].
long long FleetStat(const std::string& stats_output,
                    const std::string& section, const std::string& key) {
  const size_t brace = stats_output.find('{');
  if (brace == std::string::npos) return -1;
  const size_t end = stats_output.find('\n', brace);
  JsonValue frame;
  std::string error;
  if (!JsonValue::Parse(stats_output.substr(brace, end - brace), &frame,
                        &error)) {
    return -1;
  }
  const JsonValue* fleet = frame.Find("fleet");
  if (fleet == nullptr || !fleet->is_object()) return -1;
  const JsonValue* node = fleet->Find(section);
  if (node == nullptr || !node->is_object()) return -1;
  const JsonValue* value = node->Find(key);
  return value != nullptr && value->is_integer() ? value->int_value() : -1;
}

TEST(FleetChaosTest, SigkillStormLosesNoWorkAndStaysByteIdentical) {
  constexpr int kWorkers = 4;
  constexpr int kClients = 8;
  constexpr int kKills = 3;

  const fs::path root = Scratch("storm");
  const fs::path log = root / "server.log";
  const std::string job_root = (root / "jobs").string();
  const std::string store_dir = (root / "store").string();
  const std::string stream_dir = (root / "stream").string();
  pid_t master = SpawnFleet(
      {"--listen", "0", "--job-root", job_root, "--workers",
       std::to_string(kWorkers), "--queue", "16", "--checkpoint-every", "32",
       "--restart-backoff-ms", "50", "--stable-after-ms", "200",
       "--stats-interval-ms", "50", "--store-dir", store_dir,
       "--stream-dir", stream_dir},
      log);
  ASSERT_GT(master, 0);
  const int port = WaitForPort(log);
  ASSERT_GT(port, 0) << ReadAll(log);

  // 8 watching clients, each a real `certa_client` process with default
  // reconnect retries. The jobs are slow enough (~0.5s of uncached
  // ditto inference each) that kills land mid-run and mid-queue.
  std::vector<int> exit_codes(kClients, -1);
  std::vector<std::string> outputs(kClients);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&, i] {
      exit_codes[i] = RunShell(
          ClientCmd(port, "submit --id k" + std::to_string(i) +
                              " --dataset AB --model ditto --pair " +
                              std::to_string(i % 4) +
                              " --triangles 1000 --no-cache --quiet"),
          &outputs[i]);
    });
  }

  // A concurrent v2 upsert stream rides through the whole storm,
  // against a dataset no explain job touches ("FZ") so the byte-
  // identity checks below see only the batch inputs. An upsert whose
  // worker dies pre-ack simply doesn't count as acked (a client retry
  // replays it idempotently — last-writer-wins on the shared seq).
  constexpr int kUpserts = 24;
  const int fz_arity = data::MakeBenchmark("FZ").left.schema().size();
  std::string fz_values;
  for (int i = 0; i < fz_arity; ++i) {
    if (i > 0) fz_values += "|";
    fz_values += "chaostok";
  }
  std::vector<bool> acked(kUpserts, false);
  std::thread upserter([&] {
    for (int i = 0; i < kUpserts; ++i) {
      std::string out;
      const int code = RunShell(
          ClientCmd(port, "upsert --dataset FZ --side left --record " +
                              std::to_string(930000 + i) + " --values '" +
                              fz_values + std::to_string(i) + "'"),
          &out);
      acked[static_cast<size_t>(i)] =
          code == 0 && out.find("\"type\":\"upserted\"") != std::string::npos;
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
  });

  // Kill storm: after the submits have landed, SIGKILL a random live
  // worker every ~300ms. Deterministic seed so a failure reproduces.
  std::mt19937 rng(20260807);
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  int kills = 0;
  for (int round = 0; round < 10 && kills < kKills; ++round) {
    std::vector<pid_t> pids = CurrentWorkerPids(ReadAll(log), kWorkers);
    std::vector<pid_t> live;
    for (pid_t pid : pids) {
      if (pid > 0 && kill(pid, 0) == 0) live.push_back(pid);
    }
    if (!live.empty()) {
      const pid_t victim = live[rng() % live.size()];
      if (kill(victim, SIGKILL) == 0) ++kills;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
  }
  EXPECT_EQ(kills, kKills);

  for (std::thread& t : clients) t.join();
  upserter.join();

  // The master must have outlived the storm; a premature death here
  // (reaped with WNOHANG) is its own failure with the raw status.
  {
    int status = 0;
    const pid_t reaped = waitpid(master, &status, WNOHANG);
    EXPECT_EQ(reaped, 0) << "master died mid-test, raw status 0x" << std::hex
                         << status << std::dec
                         << (WIFSIGNALED(status)
                                 ? " (signal " +
                                       std::to_string(WTERMSIG(status)) + ")"
                                 : "")
                         << "\nserver log:\n"
                         << ReadAll(log);
  }

  // Zero lost jobs: every client got its result despite the kills.
  for (int i = 0; i < kClients; ++i) {
    EXPECT_EQ(exit_codes[i], 0) << "client " << i << ": " << outputs[i]
                                << "\nserver log:\n" << ReadAll(log);
  }

  // Zero duplicated work: exactly one result.json per job id across the
  // whole partitioned namespace (an adopted or resumed job must not
  // also re-run in a second partition).
  std::vector<fs::path> result_dirs(kClients);
  for (int i = 0; i < kClients; ++i) {
    const std::string id = "k" + std::to_string(i);
    int copies = 0;
    std::error_code ec;
    for (const auto& partition : fs::directory_iterator(job_root, ec)) {
      if (!partition.is_directory()) continue;
      const fs::path candidate = partition.path() / id;
      if (fs::exists(candidate / "result.json")) {
        ++copies;
        result_dirs[static_cast<size_t>(i)] = candidate;
      }
    }
    EXPECT_EQ(copies, 1) << id;
  }

  // Zero corruption: each stored result is byte-identical to a direct
  // single-process run of the same request.
  for (int pair = 0; pair < 4; ++pair) {
    std::string direct;
    ASSERT_EQ(RunShell(std::string(CERTA_CLI_PATH) +
                           " explain --dataset AB --model ditto --pair " +
                           std::to_string(pair) +
                           " --triangles 1000 --no-cache --json",
                       &direct),
              0)
        << direct;
    for (int i = pair; i < kClients; i += 4) {
      const fs::path dir = result_dirs[static_cast<size_t>(i)];
      ASSERT_FALSE(dir.empty()) << "client " << i;
      EXPECT_EQ(Chomp(ReadAll(dir / "result.json")), Chomp(direct))
          << "client " << i;
    }
  }

  // Zero lost upserts: every op a client got an `upserted` ack for was
  // fsync'd to the shared stream dir before the ack left, so it is
  // matchable through whatever workers survived (match absorbs every
  // sibling's WAL before answering). Most of the stream must have
  // landed despite the storm.
  int acked_count = 0;
  for (int i = 0; i < kUpserts; ++i) {
    if (!acked[static_cast<size_t>(i)]) continue;
    ++acked_count;
    std::string match_out;
    ASSERT_EQ(RunShell(ClientCmd(port, "match --dataset FZ --side left "
                                       "--values 'chaostok" +
                                           std::to_string(i) + "' --top-k 3"),
                       &match_out),
              0)
        << match_out;
    EXPECT_NE(match_out.find("\"id\":" + std::to_string(930000 + i)),
              std::string::npos)
        << "acked upsert " << i << " lost in the storm: " << match_out;
  }
  EXPECT_GT(acked_count, kUpserts / 2) << "upsert stream mostly failed";

  // The storm must not have broken the shared store: warm reruns of
  // the storm's own requests (new ids, so the job layer re-runs them)
  // are served from scores a sibling paid. SIGKILLed workers died
  // mid-append to their streams; torn tails are skipped, paid prefixes
  // still count. One rerun lands on the paying worker's stream about
  // half the time, so a handful of attempts makes a miss astronomically
  // unlikely.
  long long peer_hits = 0;
  std::string warm_output;
  for (int attempt = 0; attempt < 20 && peer_hits <= 0; ++attempt) {
    ASSERT_EQ(
        RunShell(ClientCmd(port, "submit --id warm" + std::to_string(attempt) +
                                     " --dataset AB --model ditto --pair " +
                                     std::to_string(attempt % 4) +
                                     " --triangles 1000 --no-cache --quiet"),
                 &warm_output),
        0)
        << warm_output;
    for (int waited = 0; waited < 2000 && peer_hits <= 0; waited += 100) {
      ASSERT_EQ(RunShell(ClientCmd(port, "stats"), &warm_output), 0)
          << warm_output;
      peer_hits = FleetStat(warm_output, "store", "peer_hits");
      if (peer_hits <= 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
      }
    }
  }
  EXPECT_GT(peer_hits, 0)
      << "no cross-worker score reuse after the storm\n"
      << warm_output << "\nserver log:\n"
      << ReadAll(log);
  EXPECT_GT(FleetStat(warm_output, "store", "entries"), 0) << warm_output;

  // All work complete fleet-wide → the drain exits 0.
  EXPECT_EQ(StopServer(master, SIGTERM), 0) << ReadAll(log);
  fs::remove_all(root);
}

}  // namespace
}  // namespace certa
