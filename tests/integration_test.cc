// End-to-end integration: synthesize a benchmark, train every model,
// run every explainer, evaluate every metric — the full pipeline the
// benches drive, at a miniature budget.

#include <cstdlib>

#include <gtest/gtest.h>

#include "data/benchmarks.h"
#include "eval/harness.h"
#include "eval/saliency_metrics.h"

namespace certa::eval {
namespace {

HarnessOptions TinyOptions() {
  HarnessOptions options;
  options.max_pairs = 4;
  options.num_triangles = 12;
  return options;
}

TEST(HarnessTest, PrepareTrainsAWorkingModel) {
  auto setup = Prepare("AB", models::ModelKind::kDitto, TinyOptions());
  EXPECT_EQ(setup->dataset.code, "AB");
  EXPECT_GT(setup->test_f1, 0.5);
  EXPECT_TRUE(setup->context.valid());
  // The context's model is the caching wrapper.
  EXPECT_EQ(setup->context.model, setup->engine.get());
}

TEST(HarnessTest, ExplainedPairsHonorsCap) {
  HarnessOptions options = TinyOptions();
  auto setup = Prepare("AB", models::ModelKind::kDeepEr, options);
  auto pairs = ExplainedPairs(*setup, options);
  EXPECT_EQ(pairs.size(), 4u);
  options.max_pairs = 100000;
  EXPECT_EQ(ExplainedPairs(*setup, options).size(),
            setup->dataset.test.size());
}

TEST(HarnessTest, MethodNameColumnsMatchPaper) {
  EXPECT_EQ(SaliencyMethodNames(),
            (std::vector<std::string>{"CERTA", "LandMark", "Mojito",
                                      "SHAP"}));
  EXPECT_EQ(CfMethodNames(),
            (std::vector<std::string>{"CERTA", "DiCE", "SHAP-C",
                                      "LIME-C"}));
}

TEST(HarnessTest, FactoriesProduceNamedExplainers) {
  HarnessOptions options = TinyOptions();
  auto setup = Prepare("AB", models::ModelKind::kDeepEr, options);
  for (const std::string& method : SaliencyMethodNames()) {
    auto explainer = MakeSaliencyExplainer(method, *setup, options);
    ASSERT_NE(explainer, nullptr);
    EXPECT_EQ(explainer->name(), method);
  }
  for (const std::string& method : CfMethodNames()) {
    auto explainer = MakeCfExplainer(method, *setup, options);
    ASSERT_NE(explainer, nullptr);
    EXPECT_EQ(explainer->name(), method);
  }
}

TEST(HarnessTest, OptionsFromEnvOverrides) {
  ::setenv("CERTA_BENCH_PAIRS", "7", 1);
  ::setenv("CERTA_BENCH_SCALE", "0.5", 1);
  ::setenv("CERTA_BENCH_TRIANGLES", "33", 1);
  HarnessOptions options = OptionsFromEnv();
  EXPECT_EQ(options.max_pairs, 7);
  EXPECT_DOUBLE_EQ(options.scale, 0.5);
  EXPECT_EQ(options.num_triangles, 33);
  ::unsetenv("CERTA_BENCH_PAIRS");
  ::unsetenv("CERTA_BENCH_SCALE");
  ::unsetenv("CERTA_BENCH_TRIANGLES");
  HarnessOptions defaults = OptionsFromEnv();
  EXPECT_EQ(defaults.max_pairs, 20);
  EXPECT_DOUBLE_EQ(defaults.scale, 1.0);
}

// Full-pipeline sweep: every (model, saliency method) cell runs and
// produces bounded metrics on a small dataset.
class PipelineTest : public ::testing::TestWithParam<models::ModelKind> {};

TEST_P(PipelineTest, SaliencyMethodsProduceBoundedMetrics) {
  HarnessOptions options = TinyOptions();
  auto setup = Prepare("FZ", GetParam(), options);
  auto pairs = ExplainedPairs(*setup, options);
  for (const std::string& method : SaliencyMethodNames()) {
    auto explainer = MakeSaliencyExplainer(method, *setup, options);
    auto explanations = RunSaliencyCell(explainer.get(), *setup, pairs);
    ASSERT_EQ(explanations.size(), pairs.size());
    for (const auto& explanation : explanations) {
      EXPECT_EQ(explanation.left_size(), 6);
      EXPECT_EQ(explanation.right_size(), 6);
    }
    double faithfulness =
        Faithfulness(setup->context, pairs, setup->dataset.left,
                     setup->dataset.right, explanations);
    EXPECT_GE(faithfulness, 0.0);
    EXPECT_LE(faithfulness, 1.0);
    double confidence =
        ConfidenceIndication(setup->context, pairs, setup->dataset.left,
                             setup->dataset.right, explanations);
    EXPECT_GE(confidence, 0.0);
    EXPECT_LE(confidence, 1.0);
  }
}

TEST_P(PipelineTest, CfMethodsProduceBoundedMetrics) {
  HarnessOptions options = TinyOptions();
  auto setup = Prepare("AB", GetParam(), options);
  auto pairs = ExplainedPairs(*setup, options);
  for (const std::string& method : CfMethodNames()) {
    auto explainer = MakeCfExplainer(method, *setup, options);
    CfAggregate aggregate = RunCfCell(explainer.get(), *setup, pairs);
    EXPECT_EQ(aggregate.inputs, static_cast<int>(pairs.size()));
    EXPECT_GE(aggregate.proximity, 0.0);
    EXPECT_LE(aggregate.proximity, 1.0);
    EXPECT_GE(aggregate.sparsity, 0.0);
    EXPECT_LE(aggregate.sparsity, 1.0);
    EXPECT_GE(aggregate.diversity, 0.0);
    EXPECT_LE(aggregate.diversity, 1.0);
    EXPECT_GE(aggregate.mean_count, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, PipelineTest,
    ::testing::Values(models::ModelKind::kDeepEr,
                      models::ModelKind::kDeepMatcher,
                      models::ModelKind::kDitto),
    [](const auto& info) { return models::ModelKindName(info.param); });

TEST(IntegrationTest, CertaAblationsRunEndToEnd) {
  HarnessOptions options = TinyOptions();
  auto setup = Prepare("BA", models::ModelKind::kDitto, options);
  auto pairs = ExplainedPairs(*setup, options);
  // Monotone vs exhaustive vs audited vs augmentation-only all complete
  // and report consistent bookkeeping.
  for (bool monotone : {true, false}) {
    core::CertaExplainer::Options certa_options = CertaOptionsFor(options);
    certa_options.assume_monotone = monotone;
    certa_options.audit_inferences = monotone;
    core::CertaExplainer explainer(setup->context, certa_options);
    for (const auto& pair : pairs) {
      core::CertaResult result = explainer.Explain(
          setup->dataset.left.record(pair.left_index),
          setup->dataset.right.record(pair.right_index));
      EXPECT_EQ(result.predictions_expected,
                result.predictions_performed + result.predictions_saved);
      if (!monotone) {
        EXPECT_EQ(result.predictions_saved, 0);
        EXPECT_EQ(result.inference_errors, 0);
      } else {
        EXPECT_LE(result.inference_errors, result.predictions_saved);
      }
    }
  }
}

}  // namespace
}  // namespace certa::eval
