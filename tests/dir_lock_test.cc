// DirLock exclusivity tests (label: fleet): the flock-based directory
// lock that guarantees one process per job-root / store-dir / job-dir
// namespace. Covers in-process conflicts, real two-process contention
// over fork(), automatic release on holder death (the property the
// fleet's crash recovery leans on — a SIGKILL'd worker must not wedge
// its partition), the ScoreStore's opt-in exclusive_lock, and the CLI
// refusing to start a second serve on a busy job root.

#include "persist/dir_lock.h"

#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "persist/score_store.h"

#ifndef CERTA_CLI_PATH
#error "CERTA_CLI_PATH must be defined to the certa CLI binary path"
#endif

namespace certa::persist {
namespace {

namespace fs = std::filesystem;

fs::path Scratch(const std::string& tag) {
  fs::path dir = fs::temp_directory_path() /
                 ("certa_dirlock_" + tag + "_" + std::to_string(::getpid()));
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

TEST(DirLockTest, AcquireCreatesDirRecordsPidAndReleases) {
  const fs::path root = Scratch("basic");
  const std::string dir = (root / "made" / "by" / "lock").string();
  DirLock lock;
  std::string error;
  ASSERT_TRUE(lock.Acquire(dir, &error)) << error;
  EXPECT_TRUE(lock.held());
  EXPECT_TRUE(fs::exists(fs::path(dir) / DirLock::LockFileName()));

  std::ifstream in(lock.path());
  long long pid = 0;
  in >> pid;
  EXPECT_EQ(pid, static_cast<long long>(::getpid()));

  lock.Release();
  EXPECT_FALSE(lock.held());
  // The lock file stays (unlinking would race a concurrent acquirer),
  // but the directory is immediately re-lockable.
  ASSERT_TRUE(lock.Acquire(dir, &error)) << error;
  fs::remove_all(root);
}

TEST(DirLockTest, SecondHolderRejectedAndErrorNamesTheHolder) {
  const fs::path root = Scratch("conflict");
  const std::string dir = root.string();
  DirLock first;
  std::string error;
  ASSERT_TRUE(first.Acquire(dir, &error)) << error;

  // flock ownership is per open file description, so even a second
  // descriptor in the same process conflicts — exactly what guards two
  // JobRunner threads racing one job dir.
  DirLock second;
  EXPECT_FALSE(second.Acquire(dir, &error));
  EXPECT_FALSE(second.held());
  EXPECT_NE(error.find("locked"), std::string::npos) << error;
  EXPECT_NE(error.find(std::to_string(::getpid())), std::string::npos)
      << error;

  first.Release();
  ASSERT_TRUE(second.Acquire(dir, &error)) << error;
  fs::remove_all(root);
}

TEST(DirLockTest, TwoProcessContentionThenHandoff) {
  const fs::path root = Scratch("twoproc");
  const std::string dir = root.string();
  DirLock mine;
  std::string error;
  ASSERT_TRUE(mine.Acquire(dir, &error)) << error;

  // While this process holds the lock, a forked child must fail.
  pid_t child = fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    DirLock theirs;
    std::string child_error;
    _exit(theirs.Acquire(dir, &child_error) ? 10 : 11);
  }
  int status = 0;
  ASSERT_EQ(waitpid(child, &status, 0), child);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 11) << "child acquired a held lock";

  // After release, a fresh child succeeds.
  mine.Release();
  child = fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    DirLock theirs;
    std::string child_error;
    _exit(theirs.Acquire(dir, &child_error) ? 10 : 11);
  }
  ASSERT_EQ(waitpid(child, &status, 0), child);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 10);
  fs::remove_all(root);
}

TEST(DirLockTest, LockDiesWithTheHolderProcess) {
  const fs::path root = Scratch("death");
  const std::string dir = root.string();
  int ready[2];
  ASSERT_EQ(pipe(ready), 0);

  // The child takes the lock and exits WITHOUT releasing (_exit skips
  // destructors) — the crash-recovery case. The kernel must release.
  pid_t child = fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    close(ready[0]);
    DirLock theirs;
    std::string child_error;
    const char ok = theirs.Acquire(dir, &child_error) ? '1' : '0';
    ssize_t n = write(ready[1], &ok, 1);
    (void)n;
    _exit(0);  // lock fd still open; never Released
  }
  close(ready[1]);
  char ok = '0';
  ASSERT_EQ(read(ready[0], &ok, 1), 1);
  close(ready[0]);
  ASSERT_EQ(ok, '1');
  int status = 0;
  ASSERT_EQ(waitpid(child, &status, 0), child);

  DirLock mine;
  std::string error;
  EXPECT_TRUE(mine.Acquire(dir, &error))
      << "dead holder still owns the lock: " << error;
  fs::remove_all(root);
}

TEST(DirLockTest, ScoreStoreExclusiveLockIsOptIn) {
  const fs::path root = Scratch("store");
  const std::string dir = (root / "store").string();
  ScoreStore::Options locked;
  locked.exclusive_lock = true;

  ScoreStore first;
  ASSERT_TRUE(first.Open(dir, locked)) << first.open_error();

  ScoreStore second;
  EXPECT_FALSE(second.Open(dir, locked));
  EXPECT_NE(second.open_error().find("locked"), std::string::npos)
      << second.open_error();

  // Lock-free open (the default) still works against a locked store —
  // read-only tooling may inspect a live store's segments.
  ScoreStore reader;
  EXPECT_TRUE(reader.Open(dir)) << reader.open_error();
  reader.Close();

  // Close releases; the namespace is reusable.
  first.Close();
  EXPECT_TRUE(second.Open(dir, locked)) << second.open_error();
  second.Close();
  fs::remove_all(root);
}

TEST(DirLockTest, ServeCliRefusesBusyJobRoot) {
  const fs::path root = Scratch("cli");
  const std::string job_root = (root / "jobs").string();

  // First serve: stdin held open through a pipe so it keeps running.
  FILE* serve = ::popen((std::string(CERTA_CLI_PATH) + " serve --job-root " +
                         job_root + " > /dev/null 2>&1")
                            .c_str(),
                        "w");
  ASSERT_NE(serve, nullptr);
  // Wait until the first serve actually holds the lock.
  const fs::path lock_file = fs::path(job_root) / DirLock::LockFileName();
  for (int i = 0; i < 400 && !fs::exists(lock_file); ++i) {
    usleep(25 * 1000);
  }
  ASSERT_TRUE(fs::exists(lock_file));
  usleep(100 * 1000);  // let it flock, not just create the file

  // Second serve over the same root: fails fast with "busy", touching
  // nothing.
  FILE* second = ::popen((std::string(CERTA_CLI_PATH) + " serve --job-root " +
                          job_root + " --jobs /dev/null 2>&1")
                             .c_str(),
                         "r");
  ASSERT_NE(second, nullptr);
  std::string output;
  char buffer[4096];
  size_t n = 0;
  while ((n = fread(buffer, 1, sizeof(buffer), second)) > 0) {
    output.append(buffer, n);
  }
  const int second_status = ::pclose(second);
  ASSERT_TRUE(WIFEXITED(second_status));
  EXPECT_EQ(WEXITSTATUS(second_status), 1) << output;
  EXPECT_NE(output.find("busy"), std::string::npos) << output;

  // EOF on stdin drains the first serve cleanly.
  const int first_status = ::pclose(serve);
  ASSERT_TRUE(WIFEXITED(first_status));
  EXPECT_EQ(WEXITSTATUS(first_status), 0);
  fs::remove_all(root);
}

}  // namespace
}  // namespace certa::persist
