// Networked explanation service tests (label: service-net): the wire
// protocol's parse/build symmetry, then a real NetServer on an
// ephemeral loopback port driven through raw sockets — partial and
// oversized frames, garbage input, admission rejection codes,
// slow-reader disconnects, client disconnect mid-job, and
// stop-without-drain leaving every admitted job resumable on disk.
//
// End-to-end coverage through the real `certa serve --listen` binary
// (concurrent clients, SIGTERM) lives in net_e2e_test.cc.

#include "net/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "net/wire.h"
#include "persist/checkpoint.h"
#include "service/job_runner.h"
#include "util/atomic_file.h"
#include "util/json_parser.h"

namespace certa::net {
namespace {

namespace fs = std::filesystem;

/// Fresh scratch directory per test, removed on destruction.
class ScratchDir {
 public:
  explicit ScratchDir(const std::string& tag) {
    dir_ = fs::temp_directory_path() /
           ("certa_net_" + tag + "_" + std::to_string(::getpid()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  ~ScratchDir() {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }
  std::string dir() const { return dir_.string(); }

 private:
  fs::path dir_;
};

api::ExplainRequest SmallRequest(const std::string& id) {
  api::ExplainRequest request;
  request.id = id;
  request.dataset = "AB";
  request.model = "svm";
  request.pair_index = 0;
  request.triangles = 10;
  return request;
}

/// A request that runs long enough (~2s) for the test to act while the
/// job is demonstrably still in flight.
api::ExplainRequest LongRequest(const std::string& id) {
  api::ExplainRequest request = SmallRequest(id);
  request.model = "ditto";
  request.triangles = 8000;
  request.use_cache = false;
  return request;
}

/// Blocking loopback test client: whole-buffer sends, newline-framed
/// reads with an OS-level receive timeout so a broken server fails the
/// test instead of hanging it.
class TestClient {
 public:
  explicit TestClient(int port, int timeout_seconds = 30) {
    fd_ = socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd_, 0);
    timeval timeout{};
    timeout.tv_sec = timeout_seconds;
    setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
    int one = 1;
    setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    connected_ = connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                         sizeof(addr)) == 0;
  }
  ~TestClient() { Close(); }

  bool connected() const { return connected_; }

  void Close() {
    if (fd_ >= 0) close(fd_);
    fd_ = -1;
  }

  bool Send(const std::string& bytes) {
    size_t sent = 0;
    while (sent < bytes.size()) {
      ssize_t n = write(fd_, bytes.data() + sent, bytes.size() - sent);
      if (n <= 0) return false;
      sent += static_cast<size_t>(n);
    }
    return true;
  }

  /// Reads one '\n'-terminated line (newline stripped). False on EOF,
  /// timeout, or error.
  bool ReadLine(std::string* line) {
    while (true) {
      size_t newline = buffer_.find('\n');
      if (newline != std::string::npos) {
        *line = buffer_.substr(0, newline);
        buffer_.erase(0, newline + 1);
        return true;
      }
      char chunk[4096];
      ssize_t n = read(fd_, chunk, sizeof(chunk));
      if (n <= 0) return false;
      buffer_.append(chunk, static_cast<size_t>(n));
    }
  }

  /// Reads one line and parses it as a JSON frame.
  bool ReadFrame(JsonValue* frame) {
    std::string line;
    if (!ReadLine(&line)) return false;
    std::string error;
    bool ok = JsonValue::Parse(line, frame, &error);
    EXPECT_TRUE(ok) << error << " in: " << line;
    return ok;
  }

  /// Reads frames until one of type `type` arrives (events in between
  /// are allowed). False on EOF first.
  bool ReadUntilType(const std::string& type, JsonValue* frame) {
    while (ReadFrame(frame)) {
      const JsonValue* t = frame->Find("type");
      if (t != nullptr && t->is_string() && t->string_value() == type) {
        return true;
      }
    }
    return false;
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
  std::string buffer_;
};

std::string FrameType(const JsonValue& frame) {
  const JsonValue* type = frame.Find("type");
  return type != nullptr && type->is_string() ? type->string_value() : "";
}

std::string FrameCode(const JsonValue& frame) {
  const JsonValue* code = frame.Find("code");
  return code != nullptr && code->is_string() ? code->string_value() : "";
}

std::unique_ptr<NetServer> StartServer(NetServerOptions options) {
  auto server = std::make_unique<NetServer>(std::move(options));
  std::string error;
  EXPECT_TRUE(server->StartBackground(&error)) << error;
  EXPECT_GT(server->port(), 0);
  return server;
}

NetServerOptions BaseOptions(const std::string& job_root) {
  NetServerOptions options;
  options.runner.job_root = job_root;
  options.runner.workers = 2;
  options.runner.queue_capacity = 8;
  return options;
}

// ---------------------------------------------------------------------
// Wire protocol: the client builders and the server parser are the two
// halves of one contract.

TEST(NetWireTest, ClientBuildersRoundTripThroughParser) {
  ClientFrame frame;
  std::string code, error;

  const api::ExplainRequest request = LongRequest("rt");
  ASSERT_TRUE(ParseClientFrame(
      SubmitFrame(request, /*watch=*/false), &frame, &code, &error))
      << error;
  EXPECT_EQ(frame.type, ClientFrame::Type::kSubmit);
  EXPECT_FALSE(frame.watch);
  // The embedded request survives byte-for-byte in canonical form.
  EXPECT_EQ(frame.request.ToJson(), request.ToJson());

  ASSERT_TRUE(ParseClientFrame(StatusRequestFrame("j1"), &frame, &code,
                               &error));
  EXPECT_EQ(frame.type, ClientFrame::Type::kStatus);
  EXPECT_EQ(frame.job_id, "j1");
  ASSERT_TRUE(ParseClientFrame(ResultRequestFrame("j2"), &frame, &code,
                               &error));
  EXPECT_EQ(frame.type, ClientFrame::Type::kResult);
  ASSERT_TRUE(ParseClientFrame(CancelRequestFrame("j3"), &frame, &code,
                               &error));
  EXPECT_EQ(frame.type, ClientFrame::Type::kCancel);
  ASSERT_TRUE(ParseClientFrame(StatsRequestFrame(), &frame, &code, &error));
  EXPECT_EQ(frame.type, ClientFrame::Type::kStats);
  ASSERT_TRUE(ParseClientFrame(PingFrame(), &frame, &code, &error));
  EXPECT_EQ(frame.type, ClientFrame::Type::kPing);
}

TEST(NetWireTest, ParseRejectsGarbageWithStableCodes) {
  ClientFrame frame;
  std::string code, error;
  EXPECT_FALSE(ParseClientFrame("not json at all", &frame, &code, &error));
  EXPECT_EQ(code, kErrBadJson);
  EXPECT_FALSE(ParseClientFrame("[1,2,3]", &frame, &code, &error));
  EXPECT_EQ(code, kErrBadFrame);
  EXPECT_FALSE(ParseClientFrame("{\"no_type\":1}", &frame, &code, &error));
  EXPECT_EQ(code, kErrBadFrame);
  EXPECT_FALSE(ParseClientFrame("{\"type\":\"teleport\"}", &frame, &code,
                                &error));
  EXPECT_EQ(code, kErrBadFrame);
  EXPECT_NE(error.find("teleport"), std::string::npos);
}

TEST(NetWireTest, ParseRejectsFutureSchemaBeforeAnythingElse) {
  ClientFrame frame;
  std::string code, error;
  // The frame gate fires even when the rest of the frame is nonsense a
  // v1 parser would otherwise complain about first.
  EXPECT_FALSE(ParseClientFrame(
      "{\"schema_version\":3,\"type\":\"warp\",\"gibberish\":true}", &frame,
      &code, &error));
  EXPECT_EQ(code, kErrUnsupportedSchema);
  EXPECT_NE(error.find("schema_version 3"), std::string::npos);

  // Same for a future-versioned *request* inside a v1 submit frame.
  EXPECT_FALSE(ParseClientFrame(
      "{\"schema_version\":1,\"type\":\"submit\","
      "\"request\":{\"schema_version\":7,\"flux\":1}}",
      &frame, &code, &error));
  EXPECT_EQ(code, kErrUnsupportedSchema);
}

TEST(NetWireTest, ParseValidatesSubmitAndJobFrames) {
  ClientFrame frame;
  std::string code, error;
  EXPECT_FALSE(ParseClientFrame("{\"type\":\"submit\"}", &frame, &code,
                                &error));
  EXPECT_EQ(code, kErrBadFrame);
  EXPECT_FALSE(ParseClientFrame(
      "{\"type\":\"submit\",\"request\":{\"pair\":-4}}", &frame, &code,
      &error));
  EXPECT_EQ(code, kErrBadRequest);
  EXPECT_FALSE(ParseClientFrame(
      "{\"type\":\"submit\",\"request\":{},\"watch\":\"yes\"}", &frame,
      &code, &error));
  EXPECT_EQ(code, kErrBadFrame);
  for (const char* type : {"status", "result", "cancel"}) {
    EXPECT_FALSE(ParseClientFrame("{\"type\":\"" + std::string(type) + "\"}",
                                  &frame, &code, &error));
    EXPECT_EQ(code, kErrBadFrame) << type;
    EXPECT_FALSE(ParseClientFrame(
        "{\"type\":\"" + std::string(type) + "\",\"job_id\":\"\"}", &frame,
        &code, &error));
    EXPECT_EQ(code, kErrBadFrame) << type;
  }
}

TEST(NetWireTest, EveryServerFrameIsOneVersionStampedJsonLine) {
  service::JobOutcome outcome;
  outcome.job_id = "j";
  outcome.state = service::JobState::kComplete;
  const std::vector<std::string> frames = {
      ErrorFrame(kErrBadJson, "m", "j"),
      AcceptedFrame("j"),
      StatusFrame("j", service::JobQueryState::kRunning, outcome),
      StatusFrame("j", service::JobQueryState::kComplete, outcome),
      ResultFrame("j", "{\"schema_version\":1}"),
      CancelledFrame("j"),
      PongFrame(),
      StatsFrame(service::JobRunner::Counters(), ServerStats()),
      ProgressEventFrame("j", "lattice", 10, 3, 100, 2),
      TerminalEventFrame(outcome),
      ShutdownEventFrame(),
  };
  for (const std::string& frame : frames) {
    ASSERT_FALSE(frame.empty());
    EXPECT_EQ(frame.back(), '\n');
    // Exactly one line: no interior newline to break line framing.
    EXPECT_EQ(frame.find('\n'), frame.size() - 1) << frame;
    JsonValue parsed;
    std::string error;
    ASSERT_TRUE(JsonValue::Parse(
        std::string_view(frame.data(), frame.size() - 1), &parsed, &error))
        << error << " in: " << frame;
    const JsonValue* version = parsed.Find("schema_version");
    ASSERT_NE(version, nullptr) << frame;
    EXPECT_EQ(version->int_value(), api::kSchemaVersion);
    EXPECT_FALSE(FrameType(parsed).empty()) << frame;
  }
}

// ---------------------------------------------------------------------
// Live server over real sockets.

TEST(NetServerTest, PingPongAndStats) {
  ScratchDir scratch("pingpong");
  auto server = StartServer(BaseOptions(scratch.dir()));
  TestClient client(server->port());
  ASSERT_TRUE(client.connected());

  ASSERT_TRUE(client.Send(PingFrame()));
  JsonValue frame;
  ASSERT_TRUE(client.ReadFrame(&frame));
  EXPECT_EQ(FrameType(frame), "pong");

  ASSERT_TRUE(client.Send(StatsRequestFrame()));
  ASSERT_TRUE(client.ReadFrame(&frame));
  ASSERT_EQ(FrameType(frame), "stats");
  const JsonValue* net = frame.Find("server");
  ASSERT_NE(net, nullptr);
  EXPECT_GE(net->Find("connections_accepted")->int_value(), 1);
  EXPECT_GE(net->Find("frames_in")->int_value(), 2);
  ASSERT_NE(frame.Find("runner"), nullptr);
}

TEST(NetServerTest, SubmitStreamsEventsThenServesVerbatimResult) {
  ScratchDir scratch("submit");
  auto server = StartServer(BaseOptions(scratch.dir()));
  TestClient client(server->port());
  ASSERT_TRUE(client.connected());

  ASSERT_TRUE(client.Send(SubmitFrame(SmallRequest("s1"), /*watch=*/true)));
  JsonValue frame;
  ASSERT_TRUE(client.ReadFrame(&frame));
  ASSERT_EQ(FrameType(frame), "accepted") << frame.Find("message");
  EXPECT_EQ(frame.Find("job_id")->string_value(), "s1");

  // Watched submit: events flow until the terminal one; progress frames
  // are optional (coalesced, and a fast job may outrun them).
  bool saw_terminal = false;
  while (client.ReadFrame(&frame)) {
    ASSERT_EQ(FrameType(frame), "event");
    const std::string event = frame.Find("event")->string_value();
    if (event == "progress") {
      EXPECT_EQ(frame.Find("job_id")->string_value(), "s1");
      continue;
    }
    ASSERT_EQ(event, "terminal");
    EXPECT_EQ(frame.Find("job_id")->string_value(), "s1");
    EXPECT_EQ(frame.Find("state")->string_value(), "complete");
    saw_terminal = true;
    break;
  }
  ASSERT_TRUE(saw_terminal);

  ASSERT_TRUE(client.Send(ResultRequestFrame("s1")));
  ASSERT_TRUE(client.ReadFrame(&frame));
  ASSERT_EQ(FrameType(frame), "result") << FrameCode(frame);
  const JsonValue* result = frame.Find("result");
  ASSERT_NE(result, nullptr);
  EXPECT_EQ(result->Find("schema_version")->int_value(),
            api::kSchemaVersion);
  ASSERT_NE(result->Find("saliency"), nullptr);

  // The frame splices the stored result.json document verbatim (modulo
  // the trailing newline the file carries).
  std::string stored;
  ASSERT_TRUE(util::ReadFileToString(
      persist::ResultPathInDir(scratch.dir() + "/s1"), &stored));
  while (!stored.empty() && stored.back() == '\n') stored.pop_back();
  const std::string raw = ResultFrame("s1", stored);
  ASSERT_TRUE(client.Send(ResultRequestFrame("s1")));
  std::string line;
  ASSERT_TRUE(client.ReadLine(&line));
  EXPECT_EQ(line + "\n", raw);
}

TEST(NetServerTest, PartialAndCoalescedWritesFrameCorrectly) {
  ScratchDir scratch("partial");
  auto server = StartServer(BaseOptions(scratch.dir()));
  TestClient client(server->port());
  ASSERT_TRUE(client.connected());

  // One frame dribbled across three writes...
  const std::string ping = PingFrame();
  ASSERT_TRUE(client.Send(ping.substr(0, 5)));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ASSERT_TRUE(client.Send(ping.substr(5, 7)));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ASSERT_TRUE(client.Send(ping.substr(12)));
  JsonValue frame;
  ASSERT_TRUE(client.ReadFrame(&frame));
  EXPECT_EQ(FrameType(frame), "pong");

  // ...and three frames in one write; blank and CRLF lines are noise,
  // not errors.
  ASSERT_TRUE(client.Send(ping + "\r\n" + StatsRequestFrame() + ping));
  ASSERT_TRUE(client.ReadFrame(&frame));
  EXPECT_EQ(FrameType(frame), "pong");
  ASSERT_TRUE(client.ReadFrame(&frame));
  EXPECT_EQ(FrameType(frame), "stats");
  ASSERT_TRUE(client.ReadFrame(&frame));
  EXPECT_EQ(FrameType(frame), "pong");
}

TEST(NetServerTest, OversizedFrameGetsErrorThenDisconnect) {
  ScratchDir scratch("oversize");
  NetServerOptions options = BaseOptions(scratch.dir());
  options.max_frame_bytes = 256;
  auto server = StartServer(std::move(options));
  TestClient client(server->port());
  ASSERT_TRUE(client.connected());

  // No newline in sight: the unterminated prefix crosses the cap.
  ASSERT_TRUE(client.Send(std::string(1024, 'x')));
  JsonValue frame;
  ASSERT_TRUE(client.ReadFrame(&frame));
  EXPECT_EQ(FrameType(frame), "error");
  EXPECT_EQ(FrameCode(frame), kErrFrameTooLarge);
  std::string line;
  EXPECT_FALSE(client.ReadLine(&line));  // then the server hangs up
}

TEST(NetServerTest, GarbageLineLeavesConnectionUsable) {
  ScratchDir scratch("garbage");
  auto server = StartServer(BaseOptions(scratch.dir()));
  TestClient client(server->port());
  ASSERT_TRUE(client.connected());

  ASSERT_TRUE(client.Send("this is not a frame\n"));
  JsonValue frame;
  ASSERT_TRUE(client.ReadFrame(&frame));
  EXPECT_EQ(FrameType(frame), "error");
  EXPECT_EQ(FrameCode(frame), kErrBadJson);

  ASSERT_TRUE(client.Send("{\"type\":\"submit\",\"request\":"
                          "{\"triangles\":1}}\n"));
  ASSERT_TRUE(client.ReadFrame(&frame));
  EXPECT_EQ(FrameCode(frame), kErrBadRequest);

  // A bad frame costs the frame, not the connection.
  ASSERT_TRUE(client.Send(PingFrame()));
  ASSERT_TRUE(client.ReadFrame(&frame));
  EXPECT_EQ(FrameType(frame), "pong");
}

TEST(NetServerTest, UnknownJobAndNotCompleteCodes) {
  ScratchDir scratch("unknown");
  auto server = StartServer(BaseOptions(scratch.dir()));
  TestClient client(server->port());
  ASSERT_TRUE(client.connected());

  JsonValue frame;
  ASSERT_TRUE(client.Send(StatusRequestFrame("ghost")));
  ASSERT_TRUE(client.ReadFrame(&frame));
  EXPECT_EQ(FrameCode(frame), kErrUnknownJob);
  ASSERT_TRUE(client.Send(ResultRequestFrame("ghost")));
  ASSERT_TRUE(client.ReadFrame(&frame));
  EXPECT_EQ(FrameCode(frame), kErrUnknownJob);
  ASSERT_TRUE(client.Send(CancelRequestFrame("ghost")));
  ASSERT_TRUE(client.ReadFrame(&frame));
  EXPECT_EQ(FrameCode(frame), kErrUnknownJob);

  // A job still in flight: result is premature, status names the state.
  ASSERT_TRUE(client.Send(SubmitFrame(LongRequest("slow1"),
                                      /*watch=*/false)));
  ASSERT_TRUE(client.ReadFrame(&frame));
  ASSERT_EQ(FrameType(frame), "accepted");
  ASSERT_TRUE(client.Send(ResultRequestFrame("slow1")));
  ASSERT_TRUE(client.ReadFrame(&frame));
  EXPECT_EQ(FrameCode(frame), kErrNotComplete);
  ASSERT_TRUE(client.Send(StatusRequestFrame("slow1")));
  ASSERT_TRUE(client.ReadFrame(&frame));
  ASSERT_EQ(FrameType(frame), "status");
  const std::string state = frame.Find("state")->string_value();
  EXPECT_TRUE(state == "queued" || state == "running") << state;

  // Cancel parks it promptly instead of making teardown wait it out.
  ASSERT_TRUE(client.Send(CancelRequestFrame("slow1")));
  ASSERT_TRUE(client.ReadFrame(&frame));
  EXPECT_EQ(FrameType(frame), "cancelled");
}

TEST(NetServerTest, QueueFullSubmissionsGetStableRejectCode) {
  ScratchDir scratch("queuefull");
  NetServerOptions options = BaseOptions(scratch.dir());
  options.runner.workers = 1;
  options.runner.queue_capacity = 1;
  auto server = StartServer(std::move(options));
  TestClient client(server->port());
  ASSERT_TRUE(client.connected());

  // One long job occupies the worker, one fills the queue slot; a burst
  // behind them must shed with rejected_queue_full — reject-new, never
  // degrade-running.
  int accepted = 0, rejected = 0;
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(client.Send(
        SubmitFrame(LongRequest("q" + std::to_string(i)),
                    /*watch=*/false)));
    JsonValue frame;
    ASSERT_TRUE(client.ReadFrame(&frame));
    if (FrameType(frame) == "accepted") {
      ++accepted;
    } else {
      ASSERT_EQ(FrameType(frame), "error");
      EXPECT_EQ(FrameCode(frame), kErrRejectedQueueFull);
      ++rejected;
    }
  }
  EXPECT_GE(accepted, 1);
  EXPECT_GE(rejected, 1);
  EXPECT_EQ(accepted + rejected, 6);
  EXPECT_EQ(server->runner().counters().rejected_queue_full, rejected);

  // Park the in-flight work so teardown does not wait for ~2s jobs.
  for (int i = 0; i < 6; ++i) {
    JsonValue frame;
    ASSERT_TRUE(client.Send(CancelRequestFrame("q" + std::to_string(i))));
    ASSERT_TRUE(client.ReadFrame(&frame));
  }
}

TEST(NetServerTest, ConnectionCapAnswersThenHangsUp) {
  ScratchDir scratch("conncap");
  NetServerOptions options = BaseOptions(scratch.dir());
  options.max_connections = 1;
  auto server = StartServer(std::move(options));

  TestClient first(server->port());
  ASSERT_TRUE(first.connected());
  ASSERT_TRUE(first.Send(PingFrame()));
  JsonValue frame;
  ASSERT_TRUE(first.ReadFrame(&frame));
  EXPECT_EQ(FrameType(frame), "pong");

  // With the cap held by `first`, the listener stops accepting; the
  // second connect must not steal service from the first.
  TestClient second(server->port(), /*timeout_seconds=*/2);
  std::string line;
  bool got_line = second.connected() && second.ReadLine(&line);
  if (got_line) {
    JsonValue rejected;
    std::string error;
    ASSERT_TRUE(JsonValue::Parse(line, &rejected, &error)) << error;
    EXPECT_EQ(FrameCode(rejected), kErrTooManyConnections);
  }
  // Either way the first connection still works.
  ASSERT_TRUE(first.Send(PingFrame()));
  ASSERT_TRUE(first.ReadFrame(&frame));
  EXPECT_EQ(FrameType(frame), "pong");
}

TEST(NetServerTest, ClientDisconnectMidJobDoesNotLoseTheJob) {
  ScratchDir scratch("disconnect");
  auto server = StartServer(BaseOptions(scratch.dir()));
  {
    TestClient client(server->port());
    ASSERT_TRUE(client.connected());
    ASSERT_TRUE(client.Send(SubmitFrame(SmallRequest("d1"),
                                        /*watch=*/true)));
    JsonValue frame;
    ASSERT_TRUE(client.ReadFrame(&frame));
    ASSERT_EQ(FrameType(frame), "accepted");
    // Hang up while watched events may be in flight.
  }

  TestClient later(server->port());
  ASSERT_TRUE(later.connected());
  JsonValue frame;
  for (int attempt = 0; attempt < 200; ++attempt) {
    ASSERT_TRUE(later.Send(StatusRequestFrame("d1")));
    ASSERT_TRUE(later.ReadFrame(&frame));
    ASSERT_EQ(FrameType(frame), "status");
    if (frame.Find("state")->string_value() == "complete") break;
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
  }
  EXPECT_EQ(frame.Find("state")->string_value(), "complete");
  ASSERT_TRUE(later.Send(ResultRequestFrame("d1")));
  ASSERT_TRUE(later.ReadFrame(&frame));
  EXPECT_EQ(FrameType(frame), "result");
}

TEST(NetServerTest, OversizedRequiredResponseIsDeliveredNotDropped) {
  ScratchDir scratch("bigframe");
  NetServerOptions options = BaseOptions(scratch.dir());
  // The cap bounds a stalled reader's backlog, never the size of one
  // response: with an empty buffer, a frame bigger than the whole cap
  // must still arrive. (The regression this pins: a result.json larger
  // than --max-write-buffer was unconditionally answered with a
  // disconnect, so the client re-requested it forever.)
  options.max_write_buffer = 64;
  auto server = StartServer(std::move(options));
  TestClient client(server->port());
  ASSERT_TRUE(client.connected());

  ASSERT_TRUE(client.Send(StatsRequestFrame()));
  JsonValue frame;
  ASSERT_TRUE(client.ReadFrame(&frame));
  EXPECT_EQ(FrameType(frame), "stats");
  EXPECT_EQ(server->stats().slow_reader_closes, 0);
}

TEST(NetServerTest, SlowReaderWithBacklogIsDisconnectedNotBuffered) {
  ScratchDir scratch("slowreader");
  NetServerOptions options = BaseOptions(scratch.dir());
  options.max_write_buffer = 64;
  auto server = StartServer(std::move(options));
  TestClient client(server->port());
  ASSERT_TRUE(client.connected());

  // Pipeline stats requests without ever reading a response. Once the
  // kernel socket buffers fill, responses accumulate in the server's
  // write buffer past the cap and the next required response closes
  // the connection instead of ballooning memory. Send() starts failing
  // (EPIPE/RST) once the server hangs up.
  const std::string request = StatsRequestFrame();
  for (int batch = 0; batch < 2000; ++batch) {
    if (server->stats().slow_reader_closes > 0) break;
    bool sendable = true;
    for (int i = 0; i < 100 && sendable; ++i) sendable = client.Send(request);
    if (!sendable) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  for (int attempt = 0; attempt < 100; ++attempt) {
    if (server->stats().slow_reader_closes > 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(server->stats().slow_reader_closes, 1);

  // The shed protected the server, not just punished the client: a
  // fresh connection still gets served.
  TestClient second(server->port());
  ASSERT_TRUE(second.connected());
  ASSERT_TRUE(second.Send(PingFrame()));
  JsonValue frame;
  ASSERT_TRUE(second.ReadFrame(&frame));
  EXPECT_EQ(FrameType(frame), "pong");
}

TEST(NetServerTest, StopWithoutDrainParksRunningJobResumable) {
  ScratchDir scratch("stoppark");
  ScratchDir reference_dir("stoppark_ref");
  const api::ExplainRequest request = LongRequest("park1");

  std::string served_shutdown;
  {
    NetServerOptions options = BaseOptions(scratch.dir());
    options.runner.workers = 1;
    auto server = StartServer(std::move(options));
    TestClient client(server->port());
    ASSERT_TRUE(client.connected());
    ASSERT_TRUE(client.Send(SubmitFrame(request, /*watch=*/false)));
    JsonValue frame;
    ASSERT_TRUE(client.ReadFrame(&frame));
    ASSERT_EQ(FrameType(frame), "accepted");

    // Let the job demonstrably start, then stop without draining.
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    server->Stop(/*drain=*/false);

    // Every open connection is told, then the server hangs up; EOF here
    // means BeginDrain (and the runner shutdown inside it) finished.
    ASSERT_TRUE(client.ReadFrame(&frame));
    EXPECT_EQ(FrameType(frame), "event");
    EXPECT_EQ(frame.Find("event")->string_value(), "shutdown");
    std::string line;
    EXPECT_FALSE(client.ReadLine(&line));
  }

  // The job dir is parked resumable: checkpoint present, no result.
  const std::string job_dir = scratch.dir() + "/park1";
  persist::JobCheckpoint checkpoint;
  std::string error;
  ASSERT_TRUE(persist::LoadCheckpoint(
      persist::CheckpointPathInDir(job_dir), &checkpoint, &error))
      << error;
  EXPECT_NE(checkpoint.state, "complete");
  EXPECT_FALSE(
      util::PathExists(persist::ResultPathInDir(job_dir)));

  // Resume completes it — bit-identical to a never-interrupted run.
  service::JobOutcome reference = service::RunDurableExplain(
      request, reference_dir.dir(), service::DurableRunOptions());
  ASSERT_EQ(reference.state, service::JobState::kComplete)
      << reference.error;
  service::JobOutcome resumed = service::RunDurableExplain(
      request, job_dir, service::DurableRunOptions());
  ASSERT_EQ(resumed.state, service::JobState::kComplete) << resumed.error;
  EXPECT_TRUE(resumed.resumed);
  EXPECT_EQ(resumed.result_json, reference.result_json);
}

TEST(NetServerTest, ResultsSurviveAcrossServerLifetimes) {
  ScratchDir scratch("restart");
  std::string first_line;
  {
    auto server = StartServer(BaseOptions(scratch.dir()));
    TestClient client(server->port());
    ASSERT_TRUE(client.connected());
    ASSERT_TRUE(client.Send(SubmitFrame(SmallRequest("r1"),
                                        /*watch=*/true)));
    JsonValue frame;
    bool terminal = false;
    while (client.ReadFrame(&frame)) {
      const JsonValue* event = frame.Find("event");
      if (event != nullptr && event->string_value() == "terminal") {
        terminal = true;
        break;
      }
    }
    ASSERT_TRUE(terminal);
    ASSERT_TRUE(client.Send(ResultRequestFrame("r1")));
    ASSERT_TRUE(client.ReadLine(&first_line));
    ASSERT_NE(first_line.find("\"type\":\"result\""), std::string::npos)
        << first_line;
  }

  // A fresh server over the same job_root has never heard of r1 — the
  // job dir on disk is the durable source of truth.
  auto server = StartServer(BaseOptions(scratch.dir()));
  TestClient client(server->port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.Send(ResultRequestFrame("r1")));
  std::string second_line;
  ASSERT_TRUE(client.ReadLine(&second_line));
  EXPECT_EQ(second_line, first_line);
}

}  // namespace
}  // namespace certa::net
