// Tests for the resilience layer: the deterministic fault injector, the
// ResilientMatcher decorator (retries, deadline, budget, breaker), and
// the fault-tolerant batch paths of the scoring engine — including the
// regression pinning that failed scores never enter the prediction
// cache.

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "models/resilience.h"
#include "models/scoring_engine.h"
#include "test_util.h"
#include "util/clock.h"

namespace certa {
namespace {

using data::Record;
using models::BudgetExhausted;
using models::FaultInjectingMatcher;
using models::FaultOptions;
using models::RecordPair;
using models::ResilienceOptions;
using models::ResilientMatcher;
using models::ScoringEngine;
using models::ScoringError;
using models::TransientError;
using models::UnavailableError;
using testing::FakeMatcher;
using testing::MakeRecord;

std::vector<Record> MakePairsPool(int count) {
  std::vector<Record> records;
  for (int i = 0; i < count; ++i) {
    std::string value = "value-";
    value += std::to_string(i);
    std::string extra = "x";
    extra += std::to_string(i);
    records.push_back(MakeRecord(i, {value, extra}));
  }
  return records;
}

/// Outcome fingerprint of scoring `pool[i]` against `pivot` once:
/// 's' success, 't' transient, 'p' permanent.
std::string OutcomePattern(const FaultInjectingMatcher& faulty,
                           const std::vector<Record>& pool,
                           const Record& pivot,
                           const std::vector<size_t>& order) {
  std::string pattern(pool.size(), '?');
  for (size_t index : order) {
    try {
      faulty.Score(pool[index], pivot);
      pattern[index] = 's';
    } catch (const TransientError&) {
      pattern[index] = 't';
    } catch (const UnavailableError&) {
      pattern[index] = 'p';
    }
  }
  return pattern;
}

TEST(FaultInjectingMatcherTest, FaultPlanIsContentHashedNotOrderDependent) {
  FakeMatcher base([](const Record&, const Record&) { return 0.7; });
  FaultOptions options;
  options.fault_rate = 0.5;
  options.transient_fraction = 0.5;
  options.seed = 11;
  util::ManualClock clock;
  FaultInjectingMatcher faulty(&base, options, &clock);

  std::vector<Record> pool = MakePairsPool(64);
  Record pivot = MakeRecord(1000, {"pivot", "p"});
  std::vector<size_t> forward, backward;
  for (size_t i = 0; i < pool.size(); ++i) forward.push_back(i);
  backward.assign(forward.rbegin(), forward.rend());

  std::string first = OutcomePattern(faulty, pool, pivot, forward);
  faulty.ResetAttempts();
  std::string reversed = OutcomePattern(faulty, pool, pivot, backward);
  EXPECT_EQ(first, reversed);
  // The rate knobs actually produce a mix at this size.
  EXPECT_NE(first.find('s'), std::string::npos);
  EXPECT_NE(first.find('t'), std::string::npos);
  EXPECT_NE(first.find('p'), std::string::npos);
}

TEST(FaultInjectingMatcherTest, TransientFaultsRecoverPermanentOnesDoNot) {
  FakeMatcher base([](const Record&, const Record&) { return 0.7; });
  Record pivot = MakeRecord(1000, {"pivot", "p"});
  std::vector<Record> pool = MakePairsPool(64);

  FaultOptions options;
  options.fault_rate = 1.0;
  options.transient_fraction = 1.0;
  options.transient_failures_per_pair = 2;
  util::ManualClock clock;
  {
    FaultInjectingMatcher faulty(&base, options, &clock);
    EXPECT_THROW(faulty.Score(pool[0], pivot), TransientError);
    EXPECT_THROW(faulty.Score(pool[0], pivot), TransientError);
    EXPECT_DOUBLE_EQ(0.7, faulty.Score(pool[0], pivot));
    EXPECT_EQ(2, faulty.stats().transient_thrown);
    // ResetAttempts re-arms the transient faults.
    faulty.ResetAttempts();
    EXPECT_THROW(faulty.Score(pool[0], pivot), TransientError);
  }
  options.transient_fraction = 0.0;
  {
    FaultInjectingMatcher faulty(&base, options, &clock);
    for (int attempt = 0; attempt < 5; ++attempt) {
      EXPECT_THROW(faulty.Score(pool[0], pivot), UnavailableError);
    }
    EXPECT_EQ(5, faulty.stats().permanent_thrown);
  }
}

TEST(FaultInjectingMatcherTest, RateZeroIsAPassThrough) {
  FakeMatcher base([](const Record& u, const Record&) {
    return u.values[0] == "value-3" ? 0.9 : 0.1;
  });
  util::ManualClock clock;
  FaultInjectingMatcher faulty(&base, FaultOptions(), &clock);
  std::vector<Record> pool = MakePairsPool(8);
  Record pivot = MakeRecord(1000, {"pivot", "p"});
  for (const Record& record : pool) {
    EXPECT_DOUBLE_EQ(base.Score(record, pivot), faulty.Score(record, pivot));
  }
  EXPECT_EQ(0, faulty.stats().transient_thrown);
  EXPECT_EQ(0, faulty.stats().permanent_thrown);
  EXPECT_EQ(0, clock.NowMicros());
}

TEST(FaultInjectingMatcherTest, PerturbationModeStaysDeterministicAndInRange) {
  FakeMatcher base([](const Record&, const Record&) { return 0.5; });
  FaultOptions options;
  options.score_perturbation = 0.8;
  options.seed = 3;
  util::ManualClock clock;
  FaultInjectingMatcher faulty(&base, options, &clock);
  std::vector<Record> pool = MakePairsPool(32);
  Record pivot = MakeRecord(1000, {"pivot", "p"});
  std::set<double> distinct;
  for (const Record& record : pool) {
    double score = faulty.Score(record, pivot);
    EXPECT_GE(score, 0.0);
    EXPECT_LE(score, 1.0);
    EXPECT_DOUBLE_EQ(score, faulty.Score(record, pivot));
    distinct.insert(score);
  }
  EXPECT_GT(distinct.size(), 16u);  // per-pair offsets, not one global shift
}

TEST(FaultInjectingMatcherTest, LatencyAdvancesTheInjectedClock) {
  FakeMatcher base([](const Record&, const Record&) { return 0.7; });
  FaultOptions options;
  options.latency_micros = 250;
  options.spike_rate = 1.0;
  options.spike_latency_micros = 5000;
  options.transient_failures_per_pair = 1;
  util::ManualClock clock;
  FaultInjectingMatcher faulty(&base, options, &clock);
  Record pivot = MakeRecord(1000, {"pivot", "p"});
  Record record = MakeRecord(0, {"a", "b"});
  faulty.Score(record, pivot);  // attempt 1: spike
  EXPECT_EQ(5000, clock.NowMicros());
  faulty.Score(record, pivot);  // attempt 2: base latency
  EXPECT_EQ(5250, clock.NowMicros());
}

TEST(ResilientMatcherTest, InertOptionsAndCleanBaseAreInvisible) {
  FakeMatcher base([](const Record& u, const Record&) {
    return u.values[0].size() > 4 ? 0.8 : 0.2;
  });
  ResilienceOptions options;
  options.enabled = true;
  util::ManualClock clock;
  options.clock = &clock;
  ResilientMatcher resilient(&base, options);
  std::vector<Record> pool = MakePairsPool(16);
  Record pivot = MakeRecord(1000, {"pivot", "p"});
  std::vector<RecordPair> pairs;
  for (const Record& record : pool) pairs.push_back({&record, &pivot});
  std::vector<double> via_decorator = resilient.ScoreBatch(pairs);
  std::vector<double> direct = base.ScoreBatch(pairs);
  EXPECT_EQ(direct, via_decorator);
  ResilientMatcher::Stats stats = resilient.stats();
  EXPECT_EQ(static_cast<long long>(pool.size()), stats.calls);
  EXPECT_EQ(0, stats.retries);
  EXPECT_EQ(0, stats.failures);
  EXPECT_EQ(0, clock.NowMicros());  // no backoff ever slept
}

TEST(ResilientMatcherTest, RetriesRecoverTransientFaultsWithBackoff) {
  FakeMatcher base([](const Record&, const Record&) { return 0.7; });
  FaultOptions fault_options;
  fault_options.fault_rate = 1.0;
  fault_options.transient_failures_per_pair = 2;
  util::ManualClock clock;
  FaultInjectingMatcher faulty(&base, fault_options, &clock);

  ResilienceOptions options;
  options.enabled = true;
  options.max_attempts = 3;
  options.backoff_base_micros = 100;
  options.backoff_max_micros = 1000;
  options.clock = &clock;
  ResilientMatcher resilient(&faulty, options);

  Record pivot = MakeRecord(1000, {"pivot", "p"});
  Record record = MakeRecord(0, {"a", "b"});
  EXPECT_DOUBLE_EQ(0.7, resilient.Score(record, pivot));
  ResilientMatcher::Stats stats = resilient.stats();
  EXPECT_EQ(3, stats.calls);  // 2 failed attempts + 1 success
  EXPECT_EQ(2, stats.retries);
  EXPECT_EQ(0, stats.failures);
  // Exponential backoff: 100 then 200 micros.
  EXPECT_EQ(300, clock.NowMicros());
}

TEST(ResilientMatcherTest, GivesUpAfterMaxAttempts) {
  FakeMatcher base([](const Record&, const Record&) { return 0.7; });
  FaultOptions fault_options;
  fault_options.fault_rate = 1.0;
  fault_options.transient_failures_per_pair = 10;
  util::ManualClock clock;
  FaultInjectingMatcher faulty(&base, fault_options, &clock);
  ResilienceOptions options;
  options.enabled = true;
  options.max_attempts = 3;
  options.clock = &clock;
  ResilientMatcher resilient(&faulty, options);
  Record pivot = MakeRecord(1000, {"pivot", "p"});
  Record record = MakeRecord(0, {"a", "b"});
  EXPECT_THROW(resilient.Score(record, pivot), TransientError);
  ResilientMatcher::Stats stats = resilient.stats();
  EXPECT_EQ(3, stats.calls);
  EXPECT_EQ(2, stats.retries);
  EXPECT_EQ(1, stats.failures);
}

TEST(ResilientMatcherTest, DeadlineExceededIsRetriedOnTheInjectedClock) {
  FakeMatcher base([](const Record&, const Record&) { return 0.7; });
  FaultOptions fault_options;
  fault_options.spike_rate = 1.0;
  fault_options.spike_latency_micros = 5000;
  fault_options.latency_micros = 100;
  fault_options.transient_failures_per_pair = 1;
  util::ManualClock clock;
  FaultInjectingMatcher faulty(&base, fault_options, &clock);
  ResilienceOptions options;
  options.enabled = true;
  options.deadline_micros = 1000;
  options.max_attempts = 2;
  options.clock = &clock;
  ResilientMatcher resilient(&faulty, options);
  Record pivot = MakeRecord(1000, {"pivot", "p"});
  Record record = MakeRecord(0, {"a", "b"});
  // Attempt 1 spikes past the deadline; the retry rides the fast path.
  EXPECT_DOUBLE_EQ(0.7, resilient.Score(record, pivot));
  ResilientMatcher::Stats stats = resilient.stats();
  EXPECT_EQ(1, stats.deadline_hits);
  EXPECT_EQ(1, stats.retries);
  EXPECT_EQ(0, stats.failures);
}

TEST(ResilientMatcherTest, BudgetIsAHardCeiling) {
  FakeMatcher base([](const Record&, const Record&) { return 0.7; });
  ResilienceOptions options;
  options.enabled = true;
  options.max_model_calls = 3;
  util::ManualClock clock;
  options.clock = &clock;
  ResilientMatcher resilient(&base, options);
  std::vector<Record> pool = MakePairsPool(5);
  Record pivot = MakeRecord(1000, {"pivot", "p"});
  for (int i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(0.7, resilient.Score(pool[static_cast<size_t>(i)], pivot));
  }
  EXPECT_EQ(0, resilient.budget_remaining());
  EXPECT_THROW(resilient.Score(pool[3], pivot), BudgetExhausted);
  EXPECT_THROW(resilient.Score(pool[4], pivot), BudgetExhausted);
  // The rejected calls never reached the base model.
  EXPECT_EQ(3, base.calls());
  EXPECT_EQ(3, resilient.stats().calls);
  EXPECT_EQ(2, resilient.stats().failures);
}

TEST(ResilientMatcherTest, BatchThatCannotFitBudgetIsRejectedUpfront) {
  FakeMatcher base([](const Record&, const Record&) { return 0.7; });
  ResilienceOptions options;
  options.enabled = true;
  options.max_model_calls = 2;
  util::ManualClock clock;
  options.clock = &clock;
  ResilientMatcher resilient(&base, options);
  std::vector<Record> pool = MakePairsPool(4);
  Record pivot = MakeRecord(1000, {"pivot", "p"});
  std::vector<RecordPair> pairs;
  for (const Record& record : pool) pairs.push_back({&record, &pivot});
  // The batch does not fit the budget: rejected before any base call,
  // so the remaining budget stays available for per-pair salvage.
  EXPECT_THROW(resilient.ScoreBatch(pairs), BudgetExhausted);
  EXPECT_EQ(0, base.calls());
  EXPECT_EQ(2, resilient.budget_remaining());
  // Per-pair calls can still spend it.
  EXPECT_DOUBLE_EQ(0.7, resilient.Score(pool[0], pivot));
  EXPECT_DOUBLE_EQ(0.7, resilient.Score(pool[1], pivot));
  EXPECT_THROW(resilient.Score(pool[2], pivot), BudgetExhausted);
}

TEST(ResilientMatcherTest, BreakerOpensFailsFastAndHalfOpens) {
  FakeMatcher base([](const Record&, const Record&) -> double {
    throw UnavailableError("backend down");
  });
  ResilienceOptions options;
  options.enabled = true;
  options.max_attempts = 1;
  options.breaker_threshold = 2;
  options.breaker_cooldown_calls = 3;
  util::ManualClock clock;
  options.clock = &clock;
  ResilientMatcher resilient(&base, options);
  std::vector<Record> pool = MakePairsPool(16);
  Record pivot = MakeRecord(1000, {"pivot", "p"});
  // Two real failures open the breaker.
  EXPECT_THROW(resilient.Score(pool[0], pivot), UnavailableError);
  EXPECT_THROW(resilient.Score(pool[1], pivot), UnavailableError);
  EXPECT_EQ(2, base.calls());
  // The next 3 calls are rejected without touching the base model.
  for (int i = 2; i < 5; ++i) {
    EXPECT_THROW(resilient.Score(pool[static_cast<size_t>(i)], pivot),
                 UnavailableError);
  }
  EXPECT_EQ(2, base.calls());
  EXPECT_EQ(3, resilient.stats().breaker_rejections);
  // Cooldown spent: the next call is a half-open probe that reaches the
  // base again (and re-opens the breaker when it fails).
  EXPECT_THROW(resilient.Score(pool[5], pivot), UnavailableError);
  EXPECT_EQ(3, base.calls());
}

TEST(ResilientMatcherTest, BreakerClosesOnSuccessfulProbe) {
  int failures_left = 2;
  FakeMatcher base([&failures_left](const Record&, const Record&) -> double {
    if (failures_left > 0) {
      --failures_left;
      throw UnavailableError("backend down");
    }
    return 0.6;
  });
  ResilienceOptions options;
  options.enabled = true;
  options.max_attempts = 1;
  options.breaker_threshold = 2;
  options.breaker_cooldown_calls = 1;
  util::ManualClock clock;
  options.clock = &clock;
  ResilientMatcher resilient(&base, options);
  std::vector<Record> pool = MakePairsPool(8);
  Record pivot = MakeRecord(1000, {"pivot", "p"});
  EXPECT_THROW(resilient.Score(pool[0], pivot), UnavailableError);
  EXPECT_THROW(resilient.Score(pool[1], pivot), UnavailableError);
  EXPECT_THROW(resilient.Score(pool[2], pivot), UnavailableError);  // fast
  // Half-open probe succeeds; the breaker closes and stays closed.
  EXPECT_DOUBLE_EQ(0.6, resilient.Score(pool[3], pivot));
  EXPECT_DOUBLE_EQ(0.6, resilient.Score(pool[4], pivot));
  EXPECT_EQ(1, resilient.stats().breaker_rejections);
}

/// Regression for the latent bug class the resilience work uncovered:
/// scores from failed or partially-failed batches must never be
/// inserted into the prediction cache, or a later cache hit would
/// silently serve a value the model never produced.
TEST(ScoringEngineResilienceTest, FailedPairsNeverPoisonTheCache) {
  bool broken = true;
  FakeMatcher base([&broken](const Record& u, const Record&) -> double {
    if (broken && u.values[0] == "value-2") {
      throw TransientError("flaky pair");
    }
    return u.values[0] == "value-2" ? 0.9 : 0.3;
  });
  ScoringEngine engine(&base);
  std::vector<Record> pool = MakePairsPool(4);
  Record pivot = MakeRecord(1000, {"pivot", "p"});
  std::vector<RecordPair> pairs;
  for (const Record& record : pool) pairs.push_back({&record, &pivot});

  ScoringEngine::BatchOutcome outcome = engine.TryScoreBatch(pairs);
  ASSERT_EQ(4u, outcome.ok.size());
  EXPECT_EQ(1u, outcome.failures);
  EXPECT_FALSE(outcome.budget_exhausted);
  EXPECT_EQ(0, outcome.ok[2]);
  for (size_t i : {size_t{0}, size_t{1}, size_t{3}}) {
    EXPECT_EQ(1, outcome.ok[i]);
    EXPECT_DOUBLE_EQ(0.3, outcome.scores[i]);
  }

  // The survivors were cached: re-scoring them costs no base calls.
  base.reset_calls();
  std::vector<double> again =
      engine.ScoreBatch({pairs.begin(), pairs.begin() + 2});
  EXPECT_DOUBLE_EQ(0.3, again[0]);
  EXPECT_DOUBLE_EQ(0.3, again[1]);
  EXPECT_EQ(0, base.calls());

  // The failed pair was NOT cached: once the fault clears, the engine
  // fetches the real score instead of serving a poisoned entry.
  broken = false;
  EXPECT_DOUBLE_EQ(0.9, engine.Score(pool[2], pivot));
  EXPECT_EQ(1, base.calls());
}

TEST(ScoringEngineResilienceTest, PlainScoreBatchStillThrowsAndCachesNothing) {
  FakeMatcher base([](const Record& u, const Record&) -> double {
    if (u.values[0] == "value-1") throw UnavailableError("down");
    return 0.4;
  });
  ScoringEngine engine(&base);
  std::vector<Record> pool = MakePairsPool(3);
  Record pivot = MakeRecord(1000, {"pivot", "p"});
  std::vector<RecordPair> pairs;
  for (const Record& record : pool) pairs.push_back({&record, &pivot});
  EXPECT_THROW(engine.ScoreBatch(pairs), ScoringError);
  // Nothing from the failed batch entered the cache — not even the
  // pairs the base scored before the throw.
  EXPECT_EQ(0, engine.cache_stats().hits);
  base.reset_calls();
  EXPECT_DOUBLE_EQ(0.4, engine.Score(pool[0], pivot));
  EXPECT_EQ(1, base.calls());
}

TEST(ScoringEngineResilienceTest, BudgetExhaustionFailsTheTailOfTheBatch) {
  FakeMatcher base([](const Record&, const Record&) { return 0.7; });
  ResilienceOptions options;
  options.enabled = true;
  options.max_model_calls = 2;
  util::ManualClock clock;
  options.clock = &clock;
  ResilientMatcher resilient(&base, options);
  ScoringEngine engine(&resilient);
  std::vector<Record> pool = MakePairsPool(5);
  Record pivot = MakeRecord(1000, {"pivot", "p"});
  std::vector<RecordPair> pairs;
  for (const Record& record : pool) pairs.push_back({&record, &pivot});
  ScoringEngine::BatchOutcome outcome = engine.TryScoreBatch(pairs);
  EXPECT_TRUE(outcome.budget_exhausted);
  EXPECT_EQ(2u, outcome.ok.size() - outcome.failures);
  // Cached survivors stay servable after exhaustion (no model calls).
  std::vector<double> cached =
      engine.ScoreBatch({pairs.begin(), pairs.begin() + 2});
  EXPECT_DOUBLE_EQ(0.7, cached[0]);
  EXPECT_DOUBLE_EQ(0.7, cached[1]);
}

TEST(TryScoreBatchHelperTest, GenericPathMatchesEnginePath) {
  auto behavior = [](const Record& u, const Record&) -> double {
    if (u.values[0] == "value-1") throw UnavailableError("down");
    if (u.values[0] == "value-3") throw TransientError("blip");
    return 0.25;
  };
  FakeMatcher plain(behavior);
  FakeMatcher for_engine(behavior);
  ScoringEngine engine(&for_engine);
  std::vector<Record> pool = MakePairsPool(5);
  Record pivot = MakeRecord(1000, {"pivot", "p"});
  std::vector<RecordPair> pairs;
  for (const Record& record : pool) pairs.push_back({&record, &pivot});

  ScoringEngine::BatchOutcome generic = models::TryScoreBatch(plain, pairs);
  ScoringEngine::BatchOutcome batched = models::TryScoreBatch(engine, pairs);
  EXPECT_EQ(generic.ok, batched.ok);
  EXPECT_EQ(generic.failures, batched.failures);
  for (size_t i = 0; i < pairs.size(); ++i) {
    if (generic.ok[i] != 0) {
      EXPECT_DOUBLE_EQ(generic.scores[i], batched.scores[i]);
    }
  }
}

}  // namespace
}  // namespace certa
