#ifndef CERTA_TESTS_TEST_UTIL_H_
#define CERTA_TESTS_TEST_UTIL_H_

#include <atomic>
#include <functional>
#include <string>
#include <vector>

#include "data/table.h"
#include "models/matcher.h"

namespace certa::testing {

/// Matcher whose behaviour is a std::function — lets tests script
/// arbitrary black-box models (linear, rule-based, adversarial).
class FakeMatcher : public models::Matcher {
 public:
  using ScoreFn =
      std::function<double(const data::Record&, const data::Record&)>;

  explicit FakeMatcher(ScoreFn score) : score_(std::move(score)) {}

  double Score(const data::Record& u,
               const data::Record& v) const override {
    ++calls_;
    return score_(u, v);
  }

  std::string name() const override { return "Fake"; }

  /// Number of Score invocations so far (for cost assertions).
  /// Atomic so pooled ScoreBatch calls can count concurrently.
  int calls() const { return calls_.load(); }
  void reset_calls() { calls_ = 0; }

 private:
  ScoreFn score_;
  mutable std::atomic<int> calls_ = 0;
};

/// Builds a record with the given id and values.
inline data::Record MakeRecord(int id, std::vector<std::string> values) {
  data::Record record;
  record.id = id;
  record.values = std::move(values);
  return record;
}

/// Builds a table from rows; ids are assigned 0..n-1.
inline data::Table MakeTable(const std::string& name,
                             std::vector<std::string> attributes,
                             std::vector<std::vector<std::string>> rows) {
  data::Table table(name, data::Schema(std::move(attributes)));
  int id = 0;
  for (auto& row : rows) {
    table.Add(MakeRecord(id++, std::move(row)));
  }
  return table;
}

}  // namespace certa::testing

#endif  // CERTA_TESTS_TEST_UTIL_H_
