#include "models/rule_model.h"

#include <gtest/gtest.h>

#include "core/certa_explainer.h"
#include "data/benchmarks.h"
#include "models/trainer.h"
#include "test_util.h"

namespace certa::models {
namespace {

using certa::testing::MakeRecord;
using certa::testing::MakeTable;

/// A tiny dataset where matching is exactly "attribute 0 similar":
/// matches share value(0); non-matches don't.
data::Dataset KeyDataset() {
  data::Dataset dataset;
  dataset.code = "KEY";
  dataset.left = MakeTable("U", {"key", "noise"},
                           {{"alpha one", "x1"},
                            {"beta two", "x2"},
                            {"gamma three", "x3"},
                            {"delta four", "x4"}});
  dataset.right = MakeTable("V", {"key", "noise"},
                            {{"alpha one", "y1"},
                             {"beta two", "y2"},
                             {"gamma three", "y3"},
                             {"epsilon five", "y4"}});
  // Matches on the diagonal, non-matches off it.
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      dataset.train.push_back({i, j, i == j && i < 3 ? 1 : 0});
    }
  }
  dataset.test = dataset.train;
  return dataset;
}

TEST(RuleModelTest, LearnsAKeyRule) {
  data::Dataset dataset = KeyDataset();
  RuleModel model;
  model.Fit(dataset);
  ASSERT_TRUE(model.is_fitted());
  ASSERT_FALSE(model.rules().empty());
  // The first rule conditions on attribute 0 (the key).
  EXPECT_EQ(model.rules()[0].conditions[0].attribute, 0);
  EXPECT_GE(model.rules()[0].precision, 0.9);
}

TEST(RuleModelTest, PerfectOnItsTrainingConcept) {
  data::Dataset dataset = KeyDataset();
  RuleModel model;
  model.Fit(dataset);
  double f1 = EvaluateF1(model, dataset.left, dataset.right, dataset.test);
  EXPECT_DOUBLE_EQ(f1, 1.0);
}

TEST(RuleModelTest, ScoresAreCalibratedAroundThreshold) {
  data::Dataset dataset = KeyDataset();
  RuleModel model;
  model.Fit(dataset);
  // Fired rule -> above 0.5; no rule -> below 0.5.
  EXPECT_GE(model.Score(dataset.left.record(0), dataset.right.record(0)),
            0.51);
  EXPECT_LT(model.Score(dataset.left.record(0), dataset.right.record(1)),
            0.5);
}

TEST(RuleModelTest, DescribeRendersRules) {
  data::Dataset dataset = KeyDataset();
  RuleModel model;
  model.Fit(dataset);
  std::string description = model.Describe(dataset.left.schema());
  EXPECT_NE(description.find("IF sim(key)"), std::string::npos);
  EXPECT_NE(description.find("THEN Match"), std::string::npos);
  EXPECT_NE(description.find("precision"), std::string::npos);
}

TEST(RuleModelTest, RespectsRuleBudget) {
  data::Dataset dataset = data::MakeBenchmark("AB");
  RuleModel model;
  RuleModel::Options options;
  options.max_rules = 2;
  options.max_conditions = 2;
  model.Fit(dataset, options);
  EXPECT_LE(model.rules().size(), 2u);
  for (const MatchingRule& rule : model.rules()) {
    EXPECT_LE(rule.conditions.size(), 2u);
  }
}

TEST(RuleModelTest, ReasonableOnSyntheticBenchmark) {
  data::Dataset dataset = data::MakeBenchmark("FZ");
  RuleModel model;
  model.Fit(dataset);
  double f1 = EvaluateF1(model, dataset.left, dataset.right, dataset.test);
  EXPECT_GT(f1, 0.6);
}

TEST(RuleModelTest, CertaCanExplainTheRuleModel) {
  // The point of an interpretable model here: CERTA's explanation of it
  // should surface the attributes the rules actually use.
  data::Dataset dataset = KeyDataset();
  RuleModel model;
  model.Fit(dataset);
  explain::ExplainContext context{&model, &dataset.left, &dataset.right};
  core::CertaExplainer explainer(context);
  core::CertaResult result = explainer.Explain(dataset.left.record(0),
                                               dataset.right.record(0));
  // key attributes outrank noise on whichever sides have triangles.
  double key_saliency = result.saliency.score({data::Side::kLeft, 0}) +
                        result.saliency.score({data::Side::kRight, 0});
  double noise_saliency = result.saliency.score({data::Side::kLeft, 1}) +
                          result.saliency.score({data::Side::kRight, 1});
  EXPECT_GT(key_saliency, noise_saliency);
}

}  // namespace
}  // namespace certa::models
