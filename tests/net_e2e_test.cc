// End-to-end service tests through the real binaries (label:
// service-net): `certa serve --listen` on one side, `certa_client` on
// the other. Covers the ISSUE's acceptance criteria directly — many
// concurrent clients whose served results are byte-identical to direct
// `certa explain --json`, and SIGTERM under load exiting with code 3
// and every admitted job dir either complete or parked resumable (then
// actually resumed to completion).

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#ifndef CERTA_CLI_PATH
#error "CERTA_CLI_PATH must be defined to the certa CLI binary path"
#endif
#ifndef CERTA_CLIENT_PATH
#error "CERTA_CLIENT_PATH must be defined to the certa_client binary path"
#endif

namespace certa {
namespace {

namespace fs = std::filesystem;

fs::path Scratch(const std::string& tag) {
  fs::path dir = fs::temp_directory_path() /
                 ("certa_net_e2e_" + tag + "_" + std::to_string(::getpid()));
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::string ReadAll(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

/// Strips trailing newlines only — the document bytes must match.
std::string Chomp(std::string text) {
  while (!text.empty() && (text.back() == '\n' || text.back() == '\r')) {
    text.pop_back();
  }
  return text;
}

/// Runs a shell command, captures stdout+stderr, returns the exit code.
int RunShell(const std::string& command, std::string* output) {
  FILE* pipe = ::popen((command + " 2>&1").c_str(), "r");
  if (pipe == nullptr) return -1;
  output->clear();
  char buffer[4096];
  size_t n = 0;
  while ((n = ::fread(buffer, 1, sizeof(buffer), pipe)) > 0) {
    output->append(buffer, n);
  }
  const int status = ::pclose(pipe);
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

/// Forks `certa serve <args>` as a direct child (stdout+stderr into
/// `log`, stdin from /dev/null) so the test can SIGTERM the server
/// itself and collect its real exit code. No shell in between — the
/// signal must reach certa, not a wrapper.
pid_t SpawnServer(const std::vector<std::string>& args,
                  const fs::path& log) {
  pid_t pid = fork();
  if (pid != 0) return pid;
  std::freopen("/dev/null", "r", stdin);
  FILE* out = std::freopen(log.string().c_str(), "w", stdout);
  if (out != nullptr) dup2(fileno(stdout), fileno(stderr));
  std::vector<char*> argv;
  std::string binary = CERTA_CLI_PATH;
  argv.push_back(binary.data());
  std::string serve = "serve";
  argv.push_back(serve.data());
  std::vector<std::string> owned = args;
  for (std::string& arg : owned) argv.push_back(arg.data());
  argv.push_back(nullptr);
  execv(CERTA_CLI_PATH, argv.data());
  _exit(127);
}

/// Polls the server log for "LISTENING host:port"; 0 on timeout.
int WaitForPort(const fs::path& log) {
  for (int attempt = 0; attempt < 400; ++attempt) {
    const std::string text = ReadAll(log);
    const size_t at = text.find("LISTENING ");
    if (at != std::string::npos) {
      const size_t colon = text.find(':', at);
      const size_t end = text.find('\n', at);
      if (colon != std::string::npos && end != std::string::npos) {
        return std::stoi(text.substr(colon + 1, end - colon - 1));
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
  }
  return 0;
}

/// Signals the child and returns its exit code (-1 on abnormal exit).
int StopServer(pid_t pid, int sig) {
  kill(pid, sig);
  int status = 0;
  if (waitpid(pid, &status, 0) != pid) return -1;
  // The sh wrapper exec's certa, so this is certa's own status.
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

/// `rest` starts with the subcommand (e.g. "submit --id x").
std::string ClientCmd(int port, const std::string& rest) {
  return std::string(CERTA_CLIENT_PATH) + " " + rest + " --port " +
         std::to_string(port);
}

/// Locates a job dir under a fleet job root: jobs live in the partition
/// (`<root>/w<slot>`) of whichever worker admitted them. Falls back to
/// `<root>/<id>` for single-process layouts.
fs::path FindJobDir(const fs::path& job_root, const std::string& id) {
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(job_root, ec)) {
    if (!entry.is_directory()) continue;
    const fs::path candidate = entry.path() / id;
    if (fs::exists(candidate / "result.json") ||
        fs::exists(candidate / "checkpoint.ckpt")) {
      return candidate;
    }
  }
  return job_root / id;
}

TEST(NetE2eTest, EightConcurrentClientsMatchDirectExplainByteForByte) {
  const fs::path root = Scratch("concurrent");
  const fs::path log = root / "server.log";
  const std::string job_root = (root / "jobs").string();
  pid_t server = SpawnServer({"--listen", "0", "--job-root", job_root,
                              "--workers", "4", "--queue", "16"},
                             log);
  ASSERT_GT(server, 0);
  const int port = WaitForPort(log);
  ASSERT_GT(port, 0) << ReadAll(log);

  // Sanity: the wire answers before the fleet launches.
  std::string output;
  ASSERT_EQ(RunShell(ClientCmd(port, "ping"), &output), 0) << output;

  constexpr int kClients = 8;
  std::vector<int> exit_codes(kClients, -1);
  std::vector<std::string> outputs(kClients);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&, i] {
      exit_codes[i] = RunShell(
          ClientCmd(port, "submit --id c" + std::to_string(i) +
                              " --dataset AB --model svm --pair " +
                              std::to_string(i % 4) + " --triangles 20"),
          &outputs[i]);
    });
  }
  for (std::thread& t : clients) t.join();

  for (int i = 0; i < kClients; ++i) {
    EXPECT_EQ(exit_codes[i], 0) << "client " << i << ": " << outputs[i];
    EXPECT_NE(outputs[i].find("\"type\":\"result\""), std::string::npos)
        << outputs[i];
  }

  // Every served job's stored result is byte-identical to what a direct
  // `certa explain --json` of the same request produces.
  for (int pair = 0; pair < 4; ++pair) {
    std::string direct;
    ASSERT_EQ(RunShell(std::string(CERTA_CLI_PATH) +
                           " explain --dataset AB --model svm --pair " +
                           std::to_string(pair) + " --triangles 20 --json",
                       &direct),
              0)
        << direct;
    for (int i = pair; i < kClients; i += 4) {
      // --workers 4 + --listen is fleet mode: the job landed in the
      // partition of whichever worker the kernel handed the connection.
      const std::string served = ReadAll(
          FindJobDir(fs::path(job_root), "c" + std::to_string(i)) /
          "result.json");
      ASSERT_FALSE(served.empty()) << "client " << i;
      EXPECT_EQ(Chomp(served), Chomp(direct)) << "client " << i;
    }
  }

  // SIGTERM after the work is done: the fleet drains with every job
  // complete and nothing parked, so the master exits 0.
  EXPECT_EQ(StopServer(server, SIGTERM), 0) << ReadAll(log);
  const std::string text = ReadAll(log);
  for (int i = 0; i < kClients; ++i) {
    EXPECT_NE(text.find("DONE c" + std::to_string(i) + " complete"),
              std::string::npos)
        << text;
  }
}

TEST(NetE2eTest, SigtermUnderLoadLeavesEveryJobDirResumable) {
  const fs::path root = Scratch("sigterm");
  const fs::path log = root / "server.log";
  const std::string job_root = (root / "jobs").string();
  pid_t server = SpawnServer({"--listen", "0", "--job-root", job_root,
                              "--workers", "1", "--queue", "8"},
                             log);
  ASSERT_GT(server, 0);
  const int port = WaitForPort(log);
  ASSERT_GT(port, 0) << ReadAll(log);

  // A ~2s job occupies the single worker; a second job sits queued.
  std::string output;
  ASSERT_EQ(RunShell(ClientCmd(port,
                               "submit --no-watch --id big --dataset AB "
                               "--model ditto --triangles 4000 --no-cache"),
                     &output),
            0)
      << output;
  ASSERT_EQ(RunShell(ClientCmd(port,
                               "submit --no-watch --id queued1 --dataset AB "
                               "--model svm --triangles 10"),
                     &output),
            0)
      << output;

  // Let the big job demonstrably start, then SIGTERM mid-flight.
  std::this_thread::sleep_for(std::chrono::milliseconds(500));
  ASSERT_EQ(StopServer(server, SIGTERM), 3) << ReadAll(log);

  // Both admitted jobs parked resumable: durable state on disk, no
  // result yet.
  for (const char* id : {"big", "queued1"}) {
    const fs::path dir = fs::path(job_root) / id;
    EXPECT_TRUE(fs::exists(dir / "checkpoint.ckpt")) << id;
    EXPECT_FALSE(fs::exists(dir / "result.json")) << id;
  }
  const std::string text = ReadAll(log);
  EXPECT_NE(text.find("DONE big parked"), std::string::npos) << text;
  EXPECT_NE(text.find("DONE queued1 parked"), std::string::npos) << text;

  // `serve --resume` finishes each parked dir; the interrupted job's
  // final bytes equal an uninterrupted direct run's.
  for (const char* id : {"big", "queued1"}) {
    const fs::path dir = fs::path(job_root) / id;
    ASSERT_EQ(RunShell(std::string(CERTA_CLI_PATH) + " serve --resume " +
                           dir.string(),
                       &output),
              0)
        << id << ": " << output;
    EXPECT_TRUE(fs::exists(dir / "result.json")) << id;
  }
  std::string direct;
  ASSERT_EQ(RunShell(std::string(CERTA_CLI_PATH) +
                         " explain --dataset AB --model ditto "
                         "--triangles 4000 --no-cache --json",
                     &direct),
            0)
      << direct;
  EXPECT_EQ(Chomp(ReadAll(fs::path(job_root) / "big" / "result.json")),
            Chomp(direct));
}

}  // namespace
}  // namespace certa
