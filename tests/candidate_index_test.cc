// CandidateIndex unit tests + the differential battery: on 100+
// randomized tables (missing markers, unicode bytes, heavy token
// repetition, empty values) the inverted index must return exactly the
// set the reference linear scan returns, for every probe. The two
// mechanisms answering identically is what makes the triangle-phase
// screening partition flag-independent (core/triangles.cc).

#include "data/candidate_index.h"

#include <algorithm>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "data/benchmarks.h"
#include "data/blocking.h"
#include "test_util.h"

namespace certa::data {
namespace {

using certa::testing::MakeRecord;
using certa::testing::MakeTable;

TEST(CandidateIndexTest, SharersAscendingAndDeduplicated) {
  Table pool = MakeTable("V", {"name", "desc"},
                         {{"sony bravia tv", "oled panel"},
                          {"altec speaker", "bass"},
                          {"sony headphones", "wired sony"},
                          {"unrelated widget", "none"}});
  CandidateIndex index(pool);
  // Probe shares "sony" with records 0 and 2 — record 2 holds it in
  // two attributes and twice, but appears once.
  std::vector<int> got = index.Candidates(MakeRecord(0, {"sony", "thing"}));
  EXPECT_EQ(got, (std::vector<int>{0, 2}));
  EXPECT_EQ(got, LinearScanCandidates(pool, MakeRecord(0, {"sony", "thing"})));
}

TEST(CandidateIndexTest, NoStopTokenPruningUnlikeBlocker) {
  // The blocker drops high-frequency tokens for selectivity; the
  // candidate index must NOT — the screening partition needs the exact
  // sharer set, and a token in every record means every record shares.
  std::vector<std::vector<std::string>> rows;
  for (int i = 0; i < 10; ++i) rows.push_back({"common item" + std::to_string(i)});
  Table pool = MakeTable("V", {"name"}, rows);
  CandidateIndex index(pool);
  std::vector<int> got = index.Candidates(MakeRecord(0, {"common"}));
  ASSERT_EQ(got.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(got[static_cast<size_t>(i)], i);
}

TEST(CandidateIndexTest, MissingValuesProduceNoTokens) {
  Table pool = MakeTable("V", {"a", "b"},
                         {{"NaN", "null"}, {"", "n/a"}, {"real value", ""}});
  CandidateIndex index(pool);
  // An all-missing probe shares nothing with anyone.
  EXPECT_TRUE(index.Candidates(MakeRecord(0, {"NaN", ""})).empty());
  EXPECT_TRUE(LinearScanCandidates(pool, MakeRecord(0, {"NaN", ""})).empty());
  // Records 0 and 1 contribute no postings at all.
  EXPECT_EQ(index.Candidates(MakeRecord(0, {"real", "x"})),
            (std::vector<int>{2}));
}

TEST(CandidateIndexTest, EmptyTableAndEmptyProbe) {
  Table empty("E", Schema({"a"}));
  CandidateIndex index(empty);
  EXPECT_TRUE(index.Candidates(MakeRecord(0, {"anything"})).empty());
  EXPECT_TRUE(LinearScanCandidates(empty, MakeRecord(0, {"anything"})).empty());
}

TEST(CandidateIndexTest, UnicodeBytesMatchExactly) {
  // Tokenization is byte-oriented with ASCII lowercasing: multi-byte
  // sequences pass through untouched inside mixed tokens ("café" !=
  // "cafe"), while tokens with no ASCII alphanumerics at all ("東京")
  // are dropped by the tokenizer — in the index and the linear scan
  // alike.
  Table pool = MakeTable("V", {"name"},
                         {{"café münchen"}, {"cafe munchen"}, {"東京 tower"}});
  CandidateIndex index(pool);
  EXPECT_EQ(index.Candidates(MakeRecord(0, {"café"})),
            LinearScanCandidates(pool, MakeRecord(0, {"café"})));
  EXPECT_EQ(index.Candidates(MakeRecord(0, {"café"})),
            (std::vector<int>{0}));
  EXPECT_EQ(index.Candidates(MakeRecord(0, {"東京"})),
            LinearScanCandidates(pool, MakeRecord(0, {"東京"})));
  EXPECT_TRUE(index.Candidates(MakeRecord(0, {"東京"})).empty());
  EXPECT_EQ(index.Candidates(MakeRecord(0, {"東京 tower"})),
            (std::vector<int>{2}));
}

TEST(CandidateIndexTest, AgreesWithRecordTokenSetPredicate) {
  // The documented predicate: r is a candidate iff the normalized
  // token sets intersect. Spot-check against RecordTokenSet directly.
  Table pool = MakeTable("V", {"name", "price"},
                         {{"Sony TV", "120"}, {"LG oled", "999"}});
  CandidateIndex index(pool);
  const Record probe = MakeRecord(0, {"the tv 120", "7"});
  const auto probe_tokens = RecordTokenSet(probe);
  std::vector<int> expected;
  for (int r = 0; r < pool.size(); ++r) {
    bool shares = false;
    for (const std::string& token : RecordTokenSet(pool.record(r))) {
      if (probe_tokens.count(token) > 0) shares = true;
    }
    if (shares) expected.push_back(r);
  }
  EXPECT_EQ(index.Candidates(probe), expected);
  EXPECT_EQ(LinearScanCandidates(pool, probe), expected);
}

// -- differential battery ----------------------------------------------

/// Vocabulary mixing ordinary tokens, canonical missing markers,
/// unicode, punctuation-adjacent and numeric strings — everything the
/// tokenizer normalizes in interesting ways.
const char* const kVocabulary[] = {
    "sony",  "tv",      "oled",   "4k",     "café",   "münchen", "NaN",
    "null",  "n/a",     "-",      "12.99",  "USB-C",  "東京",     "the",
    "panel", "SPEAKER", "bass",   "wired",  "",       "a",       "zz9",
};

std::string RandomValue(std::mt19937* rng) {
  const int tokens = static_cast<int>((*rng)() % 4);  // 0..3 tokens
  std::string value;
  for (int t = 0; t < tokens; ++t) {
    if (!value.empty()) value += ' ';
    value += kVocabulary[(*rng)() % (sizeof(kVocabulary) /
                                     sizeof(kVocabulary[0]))];
  }
  return value;
}

TEST(CandidateIndexDifferentialTest, MatchesLinearScanOn120RandomTables) {
  std::mt19937 rng(987654321);
  for (int round = 0; round < 120; ++round) {
    const int attributes = 1 + static_cast<int>(rng() % 3);
    const int records = 1 + static_cast<int>(rng() % 60);
    std::vector<std::string> schema;
    for (int a = 0; a < attributes; ++a) {
      schema.push_back("attr" + std::to_string(a));
    }
    std::vector<std::vector<std::string>> rows;
    for (int r = 0; r < records; ++r) {
      std::vector<std::string> row;
      for (int a = 0; a < attributes; ++a) row.push_back(RandomValue(&rng));
      rows.push_back(std::move(row));
    }
    Table pool = MakeTable("T" + std::to_string(round), schema, rows);
    CandidateIndex index(pool);
    for (int p = 0; p < 8; ++p) {
      std::vector<std::string> probe_values;
      for (int a = 0; a < attributes; ++a) {
        probe_values.push_back(RandomValue(&rng));
      }
      const Record probe = MakeRecord(1000 + p, probe_values);
      EXPECT_EQ(index.Candidates(probe), LinearScanCandidates(pool, probe))
          << "round " << round << " probe " << p;
    }
    // Probing with the pool's own records exercises self-matches.
    for (int r = 0; r < std::min(records, 4); ++r) {
      const Record& probe = pool.record(r);
      EXPECT_EQ(index.Candidates(probe), LinearScanCandidates(pool, probe))
          << "round " << round << " self-probe " << r;
    }
  }
}

TEST(CandidateIndexDifferentialTest, MatchesLinearScanOnBenchmarks) {
  // Realistic value distributions: every benchmark profile, probing
  // each source with records of the other.
  for (const std::string& code : BenchmarkCodes()) {
    const Dataset dataset = MakeBenchmark(code, 0.5);
    const CandidateIndex right_index(dataset.right);
    const CandidateIndex left_index(dataset.left);
    const int probes = std::min(10, dataset.left.size());
    for (int p = 0; p < probes; ++p) {
      const Record& probe =
          dataset.left.record(p * dataset.left.size() / probes);
      EXPECT_EQ(right_index.Candidates(probe),
                LinearScanCandidates(dataset.right, probe))
          << code << " left probe " << p;
    }
    const int rprobes = std::min(10, dataset.right.size());
    for (int p = 0; p < rprobes; ++p) {
      const Record& probe =
          dataset.right.record(p * dataset.right.size() / rprobes);
      EXPECT_EQ(left_index.Candidates(probe),
                LinearScanCandidates(dataset.left, probe))
          << code << " right probe " << p;
    }
  }
}

}  // namespace
}  // namespace certa::data
