// Crash-recovery tests: run the real certa CLI as a subprocess, kill it
// (SIGKILL — no chance to clean up) at points chosen by watching its
// journal grow, then resume and require a bit-identical result with
// strictly fewer model calls paid. Also covers SIGTERM park-and-exit-3
// and serve-loop load shedding. The CLI binary path is injected at
// compile time (CERTA_CLI_PATH).

#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "persist/checkpoint.h"
#include "persist/journal.h"

#ifndef CERTA_CLI_PATH
#error "CERTA_CLI_PATH must be defined to the certa CLI binary path"
#endif

namespace certa {
namespace {

namespace fs = std::filesystem;

fs::path Scratch(const std::string& tag) {
  fs::path dir = fs::temp_directory_path() /
                 ("certa_crash_" + tag + "_" + std::to_string(::getpid()));
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

/// Launches the CLI with stdout/stderr to /dev/null (optionally stdin
/// from an open fd); returns the child pid.
pid_t Spawn(const std::vector<std::string>& args, int stdin_fd = -1) {
  std::vector<char*> argv;
  static std::vector<std::string> storage;  // keep c_str()s alive in child
  storage.clear();
  storage.push_back(CERTA_CLI_PATH);
  for (const std::string& arg : args) storage.push_back(arg);
  for (std::string& arg : storage) argv.push_back(arg.data());
  argv.push_back(nullptr);
  const pid_t pid = fork();
  if (pid == 0) {
    const int devnull = ::open("/dev/null", O_WRONLY);
    ::dup2(devnull, 1);
    ::dup2(devnull, 2);
    if (stdin_fd >= 0) ::dup2(stdin_fd, 0);
    ::execv(CERTA_CLI_PATH, argv.data());
    _exit(127);
  }
  return pid;
}

/// Reaps `pid`, SIGKILLing it if it outlives `timeout_ms`. Returns the
/// raw waitpid status.
int WaitWithTimeout(pid_t pid, int timeout_ms) {
  int status = 0;
  for (int waited = 0; waited < timeout_ms; waited += 10) {
    if (::waitpid(pid, &status, WNOHANG) == pid) return status;
    ::usleep(10 * 1000);
  }
  ::kill(pid, SIGKILL);
  ::waitpid(pid, &status, 0);
  return status;
}

/// Runs the CLI to completion, capturing stdout. Returns the exit code.
int RunCli(const std::vector<std::string>& args, std::string* stdout_text) {
  std::string command = std::string("'") + CERTA_CLI_PATH + "'";
  for (const std::string& arg : args) command += " '" + arg + "'";
  command += " 2>/dev/null";
  FILE* pipe = ::popen(command.c_str(), "r");
  EXPECT_NE(pipe, nullptr);
  std::string output;
  char buffer[4096];
  size_t n;
  while ((n = ::fread(buffer, 1, sizeof(buffer), pipe)) > 0) {
    output.append(buffer, n);
  }
  const int status = ::pclose(pipe);
  if (stdout_text != nullptr) *stdout_text = std::move(output);
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

long long FileSize(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0 ? st.st_size : -1;
}

std::vector<std::string> ExplainArgs(const std::string& job_dir,
                                     int triangles) {
  return {"explain",     "--dataset",          "BA",
          "--model",     "svm",                "--pair",
          "1",           "--triangles",        std::to_string(triangles),
          "--job-dir",   job_dir,              "--checkpoint-every",
          "8"};
}

/// Spawns the durable explain and SIGKILLs it once its journal holds at
/// least `min_records` records. Returns false if the job finished first
/// (kill point unreachable on this machine — caller skips the
/// fewer-calls assertion, identity still checked).
bool KillOnceJournalReaches(const std::string& job_dir, int triangles,
                            size_t min_records) {
  const pid_t pid = Spawn(ExplainArgs(job_dir, triangles));
  const std::string journal = persist::JournalPathInDir(job_dir);
  const long long threshold =
      12 + 28 * static_cast<long long>(min_records);  // header + records
  for (;;) {
    int status = 0;
    if (::waitpid(pid, &status, WNOHANG) == pid) return false;
    if (FileSize(journal) >= threshold) {
      ::kill(pid, SIGKILL);
      int killed_status = 0;
      ::waitpid(pid, &killed_status, 0);
      EXPECT_TRUE(WIFSIGNALED(killed_status));
      return true;
    }
    ::usleep(2 * 1000);
  }
}

constexpr int kTriangles = 400;

TEST(CrashRecoveryTest, SigkillAtGrowingPointsThenResumeBitIdentical) {
  // Reference: one uninterrupted run.
  const fs::path reference_dir = Scratch("ref");
  ASSERT_EQ(RunCli(ExplainArgs(reference_dir.string(), kTriangles), nullptr),
            0);
  const std::string reference_json =
      ReadAll(persist::ResultPathInDir(reference_dir.string()));
  const persist::JournalReplay reference_journal = persist::ReplayJournal(
      persist::JournalPathInDir(reference_dir.string()));
  ASSERT_GT(reference_journal.entries.size(), 100u);

  // Kill at ~25%, ~50%, ~75% of the journal the full run writes.
  const size_t total = reference_journal.entries.size();
  for (const size_t fraction_pct : {25u, 50u, 75u}) {
    const fs::path job_dir =
        Scratch("kill" + std::to_string(fraction_pct));
    const bool killed = KillOnceJournalReaches(
        job_dir.string(), kTriangles, total * fraction_pct / 100);

    std::string resume_stdout;
    ASSERT_EQ(RunCli(ExplainArgs(job_dir.string(), kTriangles),
                     &resume_stdout),
              0)
        << "kill point " << fraction_pct << "%";
    EXPECT_EQ(ReadAll(persist::ResultPathInDir(job_dir.string())),
              reference_json)
        << "kill point " << fraction_pct << "%";
    if (killed) {
      // The resumed run replayed the journal instead of re-paying the
      // model: strictly fewer fresh calls than the whole job.
      EXPECT_NE(resume_stdout.find("resumed:"), std::string::npos)
          << resume_stdout;
      persist::JobCheckpoint checkpoint;
      ASSERT_TRUE(persist::LoadCheckpoint(
          persist::CheckpointPathInDir(job_dir.string()), &checkpoint));
      EXPECT_EQ(checkpoint.state, "complete");
      EXPECT_GT(checkpoint.replayed_scores, 0);
      EXPECT_LT(checkpoint.fresh_scores,
                static_cast<long long>(total));
    }
    fs::remove_all(job_dir);
  }
  fs::remove_all(reference_dir);
}

TEST(CrashRecoveryTest, SigkillThenResumeOfResumeConverges) {
  const fs::path reference_dir = Scratch("rr_ref");
  ASSERT_EQ(RunCli(ExplainArgs(reference_dir.string(), kTriangles), nullptr),
            0);
  const std::string reference_json =
      ReadAll(persist::ResultPathInDir(reference_dir.string()));

  // Kill twice at successively later points, then let the third run
  // finish: journals from interrupted *resumes* must also compose.
  const fs::path job_dir = Scratch("rr");
  KillOnceJournalReaches(job_dir.string(), kTriangles, 40);
  KillOnceJournalReaches(job_dir.string(), kTriangles, 160);
  ASSERT_EQ(RunCli(ExplainArgs(job_dir.string(), kTriangles), nullptr), 0);
  EXPECT_EQ(ReadAll(persist::ResultPathInDir(job_dir.string())),
            reference_json);
  fs::remove_all(job_dir);
  fs::remove_all(reference_dir);
}

TEST(CrashRecoveryTest, SigtermParksWithExitCode3AndServeResumeFinishes) {
  const fs::path job_dir = Scratch("sigterm");
  const pid_t pid = Spawn(ExplainArgs(job_dir.string(), 2000));
  // Let it get into paid work before interrupting.
  const std::string journal = persist::JournalPathInDir(job_dir.string());
  for (int waited = 0; waited < 20000 && FileSize(journal) < 12 + 28 * 20;
       waited += 2) {
    ::usleep(2 * 1000);
  }
  ::kill(pid, SIGTERM);
  const int status = WaitWithTimeout(pid, 20000);
  ASSERT_TRUE(WIFEXITED(status));
  // Exit code 3: interrupted, durable state flushed.
  EXPECT_EQ(WEXITSTATUS(status), 3);
  persist::JobCheckpoint checkpoint;
  ASSERT_TRUE(persist::LoadCheckpoint(
      persist::CheckpointPathInDir(job_dir.string()), &checkpoint));
  EXPECT_EQ(checkpoint.state, "interrupted");

  // The parked dir is self-describing: serve --resume needs only it.
  std::string resume_stdout;
  ASSERT_EQ(RunCli({"serve", "--resume", job_dir.string()}, &resume_stdout),
            0)
      << resume_stdout;
  EXPECT_TRUE(
      fs::exists(persist::ResultPathInDir(job_dir.string())));
  fs::remove_all(job_dir);
}

TEST(CrashRecoveryTest, ServeShedsOverloadAndCompletesAccepted) {
  const fs::path root = Scratch("serve");
  const std::string jobs_path = (root / "jobs.txt").string();
  {
    std::ofstream jobs(jobs_path);
    jobs << "# overload burst\n";
    for (int i = 0; i < 8; ++i) {
      jobs << "id=burst-" << i
           << " dataset=AB model=svm pair=" << i % 4
           << " triangles=200\n";
    }
  }
  std::string output;
  ASSERT_EQ(RunCli({"serve", "--job-root", (root / "jobs").string(),
                    "--queue", "1", "--workers", "1", "--jobs", jobs_path},
                   &output),
            0)
      << output;
  // Bounded queue + busy worker: the burst sheds with explicit
  // rejections, and every accepted job still completes.
  EXPECT_NE(output.find("ACCEPT "), std::string::npos) << output;
  EXPECT_NE(output.find("REJECT - queue full"), std::string::npos) << output;
  size_t done_complete = 0, accepts = 0;
  for (size_t pos = 0; (pos = output.find("ACCEPT ", pos)) != std::string::npos;
       pos += 7) {
    ++accepts;
  }
  for (size_t pos = 0;
       (pos = output.find(" complete ", pos)) != std::string::npos;
       pos += 9) {
    ++done_complete;
  }
  EXPECT_EQ(done_complete, accepts) << output;
  fs::remove_all(root);
}

TEST(CrashRecoveryTest, ServeSigtermExitsWithCode3) {
  const fs::path root = Scratch("serve_term");
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  const pid_t pid =
      Spawn({"serve", "--job-root", (root / "jobs").string()}, fds[0]);
  ::close(fds[0]);
  ::usleep(150 * 1000);  // serve is blocked reading job lines
  ::kill(pid, SIGTERM);
  const int status = WaitWithTimeout(pid, 20000);
  ::close(fds[1]);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 3);
  fs::remove_all(root);
}

}  // namespace
}  // namespace certa
