#include "core/certa_explainer.h"

#include <gtest/gtest.h>

#include "test_util.h"
#include "text/tokenizer.h"

namespace certa::core {
namespace {

using certa::testing::FakeMatcher;
using certa::testing::MakeRecord;
using certa::testing::MakeTable;

/// Reconstructs the paper's Sect. 4 worked example: the pair <u1, v1>
/// is predicted Match; four left open triangles with supports w1..w4
/// yield the four lattices of Fig. 9. The expected probabilities are
/// φ_N = 15/19, φ_P = 11/19, χ_{N} = 3/4, χ_{N,D} = χ_{N,P} = 1.
///
/// (The paper states φ_D = 13/19, but its own flip inventory sums to
/// 12 appearances of D — 19 total flips contribute 15+12+11 = 38 = the
/// sum of flipped-set sizes — so 12/19 is the arithmetically consistent
/// value this implementation produces.)
class PaperExampleFixture : public ::testing::Test {
 protected:
  PaperExampleFixture()
      : left_(MakeTable("U", {"N", "D", "P"},
                        {{"u_n", "u_d", "u_p"},
                         {"w1_n", "w1_d", "w1_p"},
                         {"w2_n", "w2_d", "w2_p"},
                         {"w3_n", "w3_d", "w3_p"},
                         {"w4_n", "w4_d", "w4_p"}})),
        right_(MakeTable("V", {"N", "D", "P"}, {{"v_n", "v_d", "v_p"}})),
        model_([this](const data::Record& u, const data::Record& v) {
          return ScorePair(u, v);
        }),
        context_{&model_, &left_, &right_} {}

  /// Which support record the perturbed left record draws from, and the
  /// perturbed attribute set A (bitmask N=1, D=2, P=4).
  static void Decompose(const data::Record& u, int* support,
                        uint32_t* mask) {
    *support = 0;
    *mask = 0;
    for (int a = 0; a < 3; ++a) {
      const std::string& value = u.values[a];
      if (value.rfind("u_", 0) == 0) continue;  // unperturbed
      *mask |= 1u << a;
      ASSERT_TRUE(value.size() >= 3 && value[0] == 'w')
          << "unexpected value " << value;
      *support = value[1] - '0';
    }
  }

  double ScorePair(const data::Record& u, const data::Record& v) {
    // Only pairs against the original v are issued in this example.
    EXPECT_EQ(v.values[0], "v_n");
    if (u.values[0].rfind("u_", 0) == 0 && u.values[1] == "u_d" &&
        u.values[2] == "u_p") {
      return 0.9;  // M(u1, v1) = Match
    }
    int support = 0;
    uint32_t mask = 0;
    Decompose(u, &support, &mask);
    if (mask == 0b111u || (mask != 0u && support == 0)) {
      // Full support record (triangle screening): all w are non-matches
      // with v.
      return 0.1;
    }
    bool flip = false;
    switch (support) {
      case 1:  // Fig. 9(a): {N} and {D} flip.
        flip = (mask & 0b011u) != 0u;
        break;
      case 2:  // Fig. 9(b): {N} flips, and {D,P} flips.
        flip = (mask & 0b001u) != 0u || (mask & 0b110u) == 0b110u;
        break;
      case 3:  // Fig. 9(c): only {N} (and supersets).
        flip = (mask & 0b001u) != 0u;
        break;
      case 4:  // Fig. 9(d): exactly the pairs (and the full set).
        flip = __builtin_popcount(mask) >= 2;
        break;
      default:
        ADD_FAILURE() << "unknown support " << support;
    }
    return flip ? 0.1 : 0.9;
  }

  data::Table left_;
  data::Table right_;
  FakeMatcher model_;
  explain::ExplainContext context_;
};

TEST_F(PaperExampleFixture, ReproducesSection4Probabilities) {
  CertaExplainer::Options options;
  options.num_triangles = 8;  // 4 left (all of w1..w4) + 4 right (none)
  options.allow_augmentation = false;
  CertaExplainer explainer(context_, options);
  CertaResult result =
      explainer.Explain(left_.record(0), right_.record(0));

  EXPECT_EQ(result.triangles_used, 4);

  // Saliency: φ_N = 15/19, φ_D = 12/19, φ_P = 11/19 (see fixture note).
  EXPECT_NEAR(result.saliency.score({data::Side::kLeft, 0}), 15.0 / 19.0,
              1e-12);
  EXPECT_NEAR(result.saliency.score({data::Side::kLeft, 1}), 12.0 / 19.0,
              1e-12);
  EXPECT_NEAR(result.saliency.score({data::Side::kLeft, 2}), 11.0 / 19.0,
              1e-12);
  // No right triangles -> right saliency is zero.
  for (int a = 0; a < 3; ++a) {
    EXPECT_DOUBLE_EQ(result.saliency.score({data::Side::kRight, a}), 0.0);
  }

  // Sufficiency: χ_{N} = 3/4, χ_{D} = 1/4, χ_{N,D} = χ_{N,P} = 1,
  // χ_{D,P} = 3/4; {P} never flips so it is absent.
  auto chi = [&](uint32_t mask) {
    for (size_t i = 0; i < result.set_masks.size(); ++i) {
      if (result.set_sides[i] == data::Side::kLeft &&
          result.set_masks[i] == mask) {
        return result.set_sufficiencies[i];
      }
    }
    return -1.0;
  };
  EXPECT_NEAR(chi(0b001), 3.0 / 4.0, 1e-12);
  EXPECT_NEAR(chi(0b010), 1.0 / 4.0, 1e-12);
  EXPECT_DOUBLE_EQ(chi(0b100), -1.0);
  EXPECT_NEAR(chi(0b011), 1.0, 1e-12);
  EXPECT_NEAR(chi(0b101), 1.0, 1e-12);
  EXPECT_NEAR(chi(0b110), 3.0 / 4.0, 1e-12);

  // A* = {N, D} (χ = 1, two attributes, first in deterministic order);
  // counterfactuals: one ψ(u, w, {N,D}) per triangle.
  EXPECT_DOUBLE_EQ(result.best_sufficiency, 1.0);
  EXPECT_EQ(result.best_side, data::Side::kLeft);
  EXPECT_EQ(result.best_mask, 0b011u);
  EXPECT_EQ(result.counterfactuals.size(), 4u);
  for (const auto& example : result.counterfactuals) {
    ASSERT_EQ(example.changed_attributes.size(), 2u);
    EXPECT_EQ(example.changed_attributes[0].index, 0);
    EXPECT_EQ(example.changed_attributes[1].index, 1);
    EXPECT_LT(example.score, 0.5);  // every example actually flips
    EXPECT_DOUBLE_EQ(example.sufficiency, 1.0);
    // Unchanged attribute stays original.
    EXPECT_EQ(example.left.values[2], "u_p");
    EXPECT_EQ(example.right.values, right_.record(0).values);
  }

  // Lattice bookkeeping: per-triangle performed counts 3+4+4+6 = 17 of
  // 24 expected.
  EXPECT_EQ(result.predictions_expected, 24);
  EXPECT_EQ(result.predictions_performed, 17);
  EXPECT_EQ(result.predictions_saved, 7);
}

TEST_F(PaperExampleFixture, AuditFindsNoErrorsOnMonotoneModel) {
  CertaExplainer::Options options;
  options.num_triangles = 8;
  options.allow_augmentation = false;
  options.audit_inferences = true;
  CertaExplainer explainer(context_, options);
  CertaResult result =
      explainer.Explain(left_.record(0), right_.record(0));
  EXPECT_EQ(result.inference_errors, 0);
}

TEST_F(PaperExampleFixture, ExhaustiveModeTestsEverything) {
  CertaExplainer::Options options;
  options.num_triangles = 8;
  options.allow_augmentation = false;
  options.assume_monotone = false;
  CertaExplainer explainer(context_, options);
  CertaResult result =
      explainer.Explain(left_.record(0), right_.record(0));
  EXPECT_EQ(result.predictions_performed, 24);
  EXPECT_EQ(result.predictions_saved, 0);
  // Flip labelling identical to the monotone run on this monotone model.
  EXPECT_NEAR(result.saliency.score({data::Side::kLeft, 0}), 15.0 / 19.0,
              1e-12);
}

TEST_F(PaperExampleFixture, DeterministicAcrossRuns) {
  CertaExplainer::Options options;
  options.num_triangles = 8;
  options.allow_augmentation = false;
  CertaExplainer explainer(context_, options);
  CertaResult a = explainer.Explain(left_.record(0), right_.record(0));
  CertaResult b = explainer.Explain(left_.record(0), right_.record(0));
  EXPECT_EQ(a.saliency.Flattened(), b.saliency.Flattened());
  EXPECT_EQ(a.counterfactuals.size(), b.counterfactuals.size());
}

TEST(CertaExplainerTest, NoTrianglesYieldsEmptyExplanation) {
  // A constant model never produces opposite predictions, and the
  // single-record pools offer no candidates anyway.
  data::Table left = MakeTable("U", {"a", "b"}, {{"x", "y"}});
  data::Table right = MakeTable("V", {"a", "b"}, {{"p", "q"}});
  FakeMatcher model(
      [](const data::Record&, const data::Record&) { return 0.9; });
  explain::ExplainContext context{&model, &left, &right};
  CertaExplainer explainer(context);
  CertaResult result = explainer.Explain(left.record(0), right.record(0));
  EXPECT_EQ(result.triangles_used, 0);
  EXPECT_TRUE(result.counterfactuals.empty());
  for (double score : result.saliency.Flattened()) {
    EXPECT_DOUBLE_EQ(score, 0.0);
  }
}

TEST(CertaExplainerTest, SaliencyScoresAreProbabilities) {
  // Random-ish model over small tables: scores must stay in [0, 1].
  data::Table left = MakeTable(
      "U", {"a", "b"},
      {{"k r", "1 2"}, {"m n", "3 4"}, {"o p", "5 6"}, {"q s", "7 8"}});
  data::Table right = MakeTable(
      "V", {"a", "b"}, {{"k r", "1 2"}, {"zz", "9"}, {"m p", "4 5"}});
  FakeMatcher model([](const data::Record& u, const data::Record& v) {
    // Match iff first attribute shares a token.
    auto tu = text::RawTokens(u.value(0));
    auto tv = text::RawTokens(v.value(0));
    for (const auto& a : tu) {
      for (const auto& b : tv) {
        if (a == b) return 0.8;
      }
    }
    return 0.2;
  });
  explain::ExplainContext context{&model, &left, &right};
  CertaExplainer::Options options;
  options.num_triangles = 10;
  CertaExplainer explainer(context, options);
  for (int li = 0; li < left.size(); ++li) {
    for (int ri = 0; ri < right.size(); ++ri) {
      CertaResult result =
          explainer.Explain(left.record(li), right.record(ri));
      for (double score : result.saliency.Flattened()) {
        EXPECT_GE(score, 0.0);
        EXPECT_LE(score, 1.0);
      }
      for (size_t s = 0; s < result.set_sufficiencies.size(); ++s) {
        EXPECT_GE(result.set_sufficiencies[s], 0.0);
        EXPECT_LE(result.set_sufficiencies[s], 1.0);
      }
      // Counterfactual examples produced by CERTA genuinely flip.
      bool original = model.Score(left.record(li), right.record(ri)) >= 0.5;
      for (const auto& example : result.counterfactuals) {
        bool flipped =
            model.Score(example.left, example.right) >= 0.5;
        EXPECT_NE(original, flipped);
      }
    }
  }
}

}  // namespace
}  // namespace certa::core
