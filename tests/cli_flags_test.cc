// CLI flag-parsing regression tests, run through the real certa binary
// (path injected via CERTA_CLI_PATH). Before the checked-parsing fix,
// std::atoi/atoll silently turned "--pair=abc" into 0 and overflowed on
// out-of-range values; every malformed number must be rejected with a
// clear error and a nonzero exit. Explain flags and serve job lines now
// both parse through api::ExplainRequest, so the expected messages are
// the request parser's. Also covers the --metrics-out / --trace-out /
// serve --stats-every export paths end to end.

#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#ifndef CERTA_CLI_PATH
#error "CERTA_CLI_PATH must be defined to the certa CLI binary path"
#endif

namespace certa {
namespace {

namespace fs = std::filesystem;

fs::path Scratch(const std::string& tag) {
  fs::path dir = fs::temp_directory_path() /
                 ("certa_cli_flags_" + tag + "_" + std::to_string(::getpid()));
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::string ReadAll(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

/// Runs a shell command, captures stdout+stderr into *output, and
/// returns the exit code (-1 on spawn failure).
int RunShell(const std::string& command, std::string* output) {
  FILE* pipe = ::popen((command + " 2>&1").c_str(), "r");
  if (pipe == nullptr) return -1;
  output->clear();
  char buffer[4096];
  size_t n = 0;
  while ((n = ::fread(buffer, 1, sizeof(buffer), pipe)) > 0) {
    output->append(buffer, n);
  }
  const int status = ::pclose(pipe);
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

/// Runs `certa <args>` (stdin closed so `serve` drains immediately).
int RunCli(const std::string& args, std::string* output) {
  return RunShell(std::string(CERTA_CLI_PATH) + " " + args + " </dev/null",
                  output);
}

TEST(CliFlagsTest, RejectsNonNumericPair) {
  std::string output;
  EXPECT_EQ(RunCli("explain --dataset AB --pair abc", &output), 2) << output;
  EXPECT_NE(output.find("pair is not an integer"), std::string::npos)
      << output;
}

TEST(CliFlagsTest, RejectsNegativePair) {
  std::string output;
  EXPECT_EQ(RunCli("explain --dataset AB --pair -1", &output), 2) << output;
  EXPECT_NE(output.find("must be >= 0"), std::string::npos) << output;
}

TEST(CliFlagsTest, RejectsNonNumericTriangles) {
  std::string output;
  EXPECT_EQ(RunCli("explain --dataset AB --triangles xyz", &output), 2)
      << output;
  EXPECT_NE(output.find("triangles is not an integer"),
            std::string::npos)
      << output;
}

TEST(CliFlagsTest, RejectsTrianglesBelowMinimum) {
  std::string output;
  EXPECT_EQ(RunCli("explain --dataset AB --triangles 1", &output), 2)
      << output;
  EXPECT_NE(output.find("must be >= 2"), std::string::npos) << output;
}

TEST(CliFlagsTest, RejectsOutOfRangeBudget) {
  std::string output;
  EXPECT_EQ(
      RunCli("explain --dataset AB --budget 99999999999999999999999",
             &output),
      2)
      << output;
  EXPECT_NE(output.find("not an integer"), std::string::npos) << output;
}

TEST(CliFlagsTest, RejectsPartiallyNumericValue) {
  std::string output;
  // atoi would have happily read "8jobs" as 8.
  EXPECT_EQ(RunCli("explain --dataset AB --threads 8jobs", &output), 2)
      << output;
  EXPECT_NE(output.find("not an integer"), std::string::npos) << output;
}

TEST(CliFlagsTest, RejectsNonFiniteFaultRate) {
  std::string output;
  // strtod accepts "nan" — and NaN slips through a `< 0 || > 1` range
  // check because every comparison with NaN is false. ParseDouble now
  // rejects non-finite values outright.
  EXPECT_EQ(RunCli("explain --dataset AB --fault-rate nan", &output), 2)
      << output;
  EXPECT_NE(output.find("fault_rate must be in [0, 1]"),
            std::string::npos)
      << output;
  EXPECT_EQ(RunCli("explain --dataset AB --fault-rate inf", &output), 2)
      << output;
}

TEST(CliFlagsTest, RejectsBadServeFlags) {
  std::string output;
  EXPECT_EQ(RunCli("serve --workers zero", &output), 2) << output;
  EXPECT_NE(output.find("--workers=zero is not an integer"),
            std::string::npos)
      << output;
  EXPECT_EQ(RunCli("serve --stats-every -5", &output), 2) << output;
}

TEST(CliFlagsTest, ServeRejectsMalformedJobLine) {
  const fs::path root = Scratch("serve_reject");
  std::string output;
  const int exit_code = RunShell(
      "printf 'pair=abc triangles=4\\n' | " +
          std::string(CERTA_CLI_PATH) + " serve --job-root " +
          root.string(),
      &output);
  EXPECT_EQ(exit_code, 0) << output;
  EXPECT_NE(output.find("REJECT - pair is not an integer"),
            std::string::npos)
      << output;
  fs::remove_all(root);
}

TEST(CliFlagsTest, ExplainWritesMetricsAndTraceFiles) {
  const fs::path dir = Scratch("explain_obs");
  const fs::path metrics_path = dir / "metrics.json";
  const fs::path trace_path = dir / "trace.json";
  std::string output;
  const int exit_code = RunCli(
      "explain --dataset AB --pair 0 --triangles 2 --json --metrics-out " +
          metrics_path.string() + " --trace-out " + trace_path.string(),
      &output);
  EXPECT_EQ(exit_code, 0) << output;

  const std::string metrics = ReadAll(metrics_path);
  EXPECT_NE(metrics.find("\"counters\""), std::string::npos) << metrics;
  EXPECT_NE(metrics.find("\"explain.runs\":1"), std::string::npos)
      << metrics;
  EXPECT_NE(metrics.find("scoring.batch.latency_us"), std::string::npos);

  const std::string trace = ReadAll(trace_path);
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos) << trace;
  EXPECT_NE(trace.find("\"name\":\"explain\""), std::string::npos);
  EXPECT_NE(trace.find("\"name\":\"phase:lattice\""), std::string::npos);
  fs::remove_all(dir);
}

TEST(CliFlagsTest, ServeStatsEveryWritesSnapshots) {
  const fs::path root = Scratch("serve_stats");
  std::string output;
  const int exit_code = RunShell(
      "printf 'id=j1 dataset=AB pair=0 triangles=2\\n' | " +
          std::string(CERTA_CLI_PATH) + " serve --job-root " +
          root.string() + " --stats-every 1",
      &output);
  EXPECT_EQ(exit_code, 0) << output;
  EXPECT_NE(output.find("ACCEPT j1"), std::string::npos) << output;
  EXPECT_NE(output.find("DONE j1"), std::string::npos) << output;
  const fs::path stats = root / "metrics.json";
  ASSERT_TRUE(fs::exists(stats)) << output;
  const std::string json = ReadAll(stats);
  EXPECT_NE(json.find("\"service.jobs.completed\":1"), std::string::npos)
      << json;
  EXPECT_NE(json.find("service.job_us"), std::string::npos) << json;
  EXPECT_NE(json.find("journal.appends"), std::string::npos) << json;
  fs::remove_all(root);
}

}  // namespace
}  // namespace certa
