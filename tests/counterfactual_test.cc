// Tests for the counterfactual baselines: DiCE and the SEDC-style
// LIME-C / SHAP-C searches.

#include <gtest/gtest.h>

#include "explain/dice.h"
#include "explain/sedc.h"
#include "test_util.h"
#include "text/tokenizer.h"

namespace certa::explain {
namespace {

using certa::testing::FakeMatcher;
using certa::testing::MakeRecord;
using certa::testing::MakeTable;

/// Model: match iff attribute 0 values are equal and non-missing.
FakeMatcher::ScoreFn KeyEqualityModel() {
  return [](const data::Record& u, const data::Record& v) {
    return (!text::IsMissing(u.value(0)) && u.value(0) == v.value(0))
               ? 0.9
               : 0.1;
  };
}

struct Fixture {
  data::Table left = MakeTable(
      "U", {"key", "other"},
      {{"alpha", "o1"}, {"beta", "o2"}, {"gamma", "o3"}, {"delta", "o4"}});
  data::Table right = MakeTable(
      "V", {"key", "other"},
      {{"alpha", "p1"}, {"beta", "p2"}, {"gamma", "p3"}, {"epsilon", "p4"}});
  FakeMatcher model{KeyEqualityModel()};
  ExplainContext context{&model, &left, &right};
};

TEST(DiceTest, FlipsMatchPrediction) {
  Fixture fixture;
  DiceExplainer dice(fixture.context);
  // (alpha, alpha) is a match; a counterfactual must break the key.
  auto examples = dice.ExplainCounterfactual(fixture.left.record(0),
                                             fixture.right.record(0));
  ASSERT_FALSE(examples.empty());
  for (const auto& example : examples) {
    EXPECT_LT(fixture.model.Score(example.left, example.right), 0.5);
    EXPECT_FALSE(example.changed_attributes.empty());
  }
}

TEST(DiceTest, FlipsNonMatchUsingPoolValues) {
  Fixture fixture;
  DiceExplainer::Options options;
  options.max_proposals = 600;
  DiceExplainer dice(fixture.context, options);
  // (alpha, beta): flipping requires drawing the counterpart's key from
  // the pools, which both tables contain.
  auto examples = dice.ExplainCounterfactual(fixture.left.record(0),
                                             fixture.right.record(1));
  ASSERT_FALSE(examples.empty());
  bool any_flip = false;
  for (const auto& example : examples) {
    if (fixture.model.Score(example.left, example.right) >= 0.5) {
      any_flip = true;
    }
  }
  EXPECT_TRUE(any_flip);
}

TEST(DiceTest, SparsityPassRemovesUnneededChanges) {
  Fixture fixture;
  DiceExplainer dice(fixture.context);
  auto examples = dice.ExplainCounterfactual(fixture.left.record(0),
                                             fixture.right.record(0));
  ASSERT_FALSE(examples.empty());
  // Only key changes can matter for this model; the sparsity pass must
  // have reverted any "other"-attribute edits that snuck in alongside a
  // key change. Verify every retained change is necessary: reverting it
  // un-flips the prediction.
  for (const auto& example : examples) {
    for (const AttributeRef& ref : example.changed_attributes) {
      data::Record u = example.left;
      data::Record v = example.right;
      std::string& slot = ref.side == data::Side::kLeft
                              ? u.values[ref.index]
                              : v.values[ref.index];
      slot = ref.side == data::Side::kLeft
                 ? fixture.left.record(0).value(ref.index)
                 : fixture.right.record(0).value(ref.index);
      EXPECT_GE(fixture.model.Score(u, v), 0.5)
          << "change was not necessary";
    }
  }
}

TEST(DiceTest, ReturnsBestEffortWhenNoFlipExists) {
  // A constant model can never flip; DiCE still returns (non-flipping)
  // examples, mirroring the real system's validity < 1.
  data::Table left = MakeTable("U", {"a"}, {{"x"}, {"y"}});
  data::Table right = MakeTable("V", {"a"}, {{"p"}, {"q"}});
  FakeMatcher model(
      [](const data::Record&, const data::Record&) { return 0.9; });
  ExplainContext context{&model, &left, &right};
  DiceExplainer dice(context);
  auto examples =
      dice.ExplainCounterfactual(left.record(0), right.record(0));
  EXPECT_FALSE(examples.empty());
  for (const auto& example : examples) {
    EXPECT_GE(example.score, 0.5);  // none of them flips
  }
}

TEST(DiceTest, Deterministic) {
  Fixture fixture;
  DiceExplainer dice(fixture.context);
  auto a = dice.ExplainCounterfactual(fixture.left.record(0),
                                      fixture.right.record(0));
  auto b = dice.ExplainCounterfactual(fixture.left.record(0),
                                      fixture.right.record(0));
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].left.values, b[i].left.values);
    EXPECT_EQ(a[i].right.values, b[i].right.values);
  }
}

class SedcTest : public ::testing::TestWithParam<SedcExplainer::Base> {};

TEST_P(SedcTest, FlipsMatchByDroppingKey) {
  Fixture fixture;
  SedcExplainer sedc(fixture.context, GetParam());
  auto examples = sedc.ExplainCounterfactual(fixture.left.record(0),
                                             fixture.right.record(0));
  ASSERT_EQ(examples.size(), 1u);
  const auto& example = examples[0];
  EXPECT_LT(fixture.model.Score(example.left, example.right), 0.5);
  EXPECT_LT(example.score, 0.5);
  EXPECT_FALSE(example.changed_attributes.empty());
}

TEST_P(SedcTest, FlipsNonMatchByCopyingKey) {
  Fixture fixture;
  SedcExplainer sedc(fixture.context, GetParam());
  // (alpha, beta): copying the key across makes them equal.
  auto examples = sedc.ExplainCounterfactual(fixture.left.record(0),
                                             fixture.right.record(1));
  ASSERT_EQ(examples.size(), 1u);
  EXPECT_GE(fixture.model.Score(examples[0].left, examples[0].right), 0.5);
}

TEST_P(SedcTest, ReturnsNothingWhenNoFlipExists) {
  data::Table left = MakeTable("U", {"a"}, {{"x"}});
  data::Table right = MakeTable("V", {"a"}, {{"p"}});
  FakeMatcher model(
      [](const data::Record&, const data::Record&) { return 0.9; });
  ExplainContext context{&model, &left, &right};
  SedcExplainer sedc(context, GetParam());
  EXPECT_TRUE(
      sedc.ExplainCounterfactual(left.record(0), right.record(0)).empty());
}

INSTANTIATE_TEST_SUITE_P(
    Bases, SedcTest,
    ::testing::Values(SedcExplainer::Base::kLimeC,
                      SedcExplainer::Base::kShapC),
    [](const auto& info) {
      return info.param == SedcExplainer::Base::kLimeC ? "LimeC" : "ShapC";
    });

TEST(SedcNameTest, MatchPaperColumns) {
  Fixture fixture;
  EXPECT_EQ(
      SedcExplainer(fixture.context, SedcExplainer::Base::kLimeC).name(),
      "LIME-C");
  EXPECT_EQ(
      SedcExplainer(fixture.context, SedcExplainer::Base::kShapC).name(),
      "SHAP-C");
  EXPECT_EQ(DiceExplainer(fixture.context).name(), "DiCE");
}

}  // namespace
}  // namespace certa::explain
