// Shared-store fleet tests (label: fleet). A fleet serves one shared
// `--store-dir`: every worker appends paid scores to its own segment
// stream and absorbs siblings' streams read-only, so a score any
// worker pays is a warm hit fleet-wide. These tests drive the real
// binaries end to end:
//
//   - cross-worker reuse: a job resubmitted until it lands on the
//     OTHER worker is served from the sibling's stream (fleet
//     `store.peer_hits` > 0), and a brand-new fleet over the same
//     store runs the job with ZERO fresh model calls and a
//     byte-identical result;
//   - client retry budget: `--retries` bounds each consecutive-failure
//     streak, not the connection's lifetime, so a watching client
//     rides through more rolling restarts than its budget;
//   - stats fan-in: a worker SIGKILLed mid-`STATS` write must not
//     wedge the master or leak a torn fragment into the aggregate.
//
// The randomized kill-storm over a shared store is in
// fleet_chaos_test.cc; the in-process store semantics are in
// score_store_test.cc.

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/json_parser.h"

#ifndef CERTA_CLI_PATH
#error "CERTA_CLI_PATH must be defined to the certa CLI binary path"
#endif
#ifndef CERTA_CLIENT_PATH
#error "CERTA_CLIENT_PATH must be defined to the certa_client binary path"
#endif

namespace certa {
namespace {

namespace fs = std::filesystem;

fs::path Scratch(const std::string& tag) {
  fs::path dir = fs::temp_directory_path() /
                 ("certa_fstore_" + tag + "_" + std::to_string(::getpid()));
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::string ReadAll(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

std::string Chomp(std::string text) {
  while (!text.empty() && (text.back() == '\n' || text.back() == '\r')) {
    text.pop_back();
  }
  return text;
}

int RunShell(const std::string& command, std::string* output) {
  FILE* pipe = ::popen((command + " 2>&1").c_str(), "r");
  if (pipe == nullptr) return -1;
  output->clear();
  char buffer[4096];
  size_t n = 0;
  while ((n = ::fread(buffer, 1, sizeof(buffer), pipe)) > 0) {
    output->append(buffer, n);
  }
  const int status = ::pclose(pipe);
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

pid_t SpawnFleet(const std::vector<std::string>& args, const fs::path& log) {
  pid_t pid = fork();
  if (pid != 0) return pid;
  std::freopen("/dev/null", "r", stdin);
  FILE* out = std::freopen(log.string().c_str(), "w", stdout);
  if (out != nullptr) dup2(fileno(stdout), fileno(stderr));
  std::vector<char*> argv;
  std::string binary = CERTA_CLI_PATH;
  argv.push_back(binary.data());
  std::string serve = "serve";
  argv.push_back(serve.data());
  std::vector<std::string> owned = args;
  for (std::string& arg : owned) argv.push_back(arg.data());
  argv.push_back(nullptr);
  execv(CERTA_CLI_PATH, argv.data());
  _exit(127);
}

int WaitForPort(const fs::path& log) {
  for (int attempt = 0; attempt < 800; ++attempt) {
    const std::string text = ReadAll(log);
    const size_t at = text.find("LISTENING ");
    if (at != std::string::npos) {
      const size_t colon = text.find(':', at);
      const size_t end = text.find('\n', at);
      if (colon != std::string::npos && end != std::string::npos) {
        return std::stoi(text.substr(colon + 1, end - colon - 1));
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
  }
  return 0;
}

int StopServer(pid_t pid, int sig) {
  kill(pid, sig);
  int status = 0;
  if (waitpid(pid, &status, 0) != pid) return -1;
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

std::string ClientCmd(int port, const std::string& rest) {
  return std::string(CERTA_CLIENT_PATH) + " " + rest + " --port " +
         std::to_string(port);
}

/// Digs a number out of the stats frame: stats["fleet"][section][key].
long long FleetStat(const std::string& stats_output,
                    const std::string& section, const std::string& key) {
  const size_t brace = stats_output.find('{');
  if (brace == std::string::npos) return -1;
  const size_t end = stats_output.find('\n', brace);
  JsonValue frame;
  std::string error;
  if (!JsonValue::Parse(stats_output.substr(brace, end - brace), &frame,
                        &error)) {
    return -1;
  }
  const JsonValue* fleet = frame.Find("fleet");
  if (fleet == nullptr || !fleet->is_object()) return -1;
  const JsonValue* node = fleet;
  if (!section.empty()) {
    node = fleet->Find(section);
    if (node == nullptr || !node->is_object()) return -1;
  }
  const JsonValue* value = node->Find(key);
  return value != nullptr && value->is_integer() ? value->int_value() : -1;
}

/// The "key=value" integer from a job's DONE line in the master log
/// ("DONE <id> complete replayed=R fresh=F store=S peer=P"); -1 if the
/// line or field is missing.
long long DoneField(const std::string& log_text, const std::string& job_id,
                    const std::string& field) {
  const std::string needle = "DONE " + job_id + " ";
  const size_t at = log_text.find(needle);
  if (at == std::string::npos) return -1;
  const size_t line_end = log_text.find('\n', at);
  const std::string line = log_text.substr(at, line_end - at);
  const size_t key = line.find(field + "=");
  if (key == std::string::npos) return -1;
  return std::stoll(line.substr(key + field.size() + 1));
}

std::vector<pid_t> CurrentWorkerPids(const std::string& text, int workers) {
  std::vector<pid_t> pids(static_cast<size_t>(workers), -1);
  size_t at = 0;
  while ((at = text.find("WORKER ", at)) != std::string::npos) {
    if (at == 0 || text[at - 1] == '\n') {
      int slot = -1;
      int pid = -1;
      if (std::sscanf(text.c_str() + at, "WORKER %d pid=%d", &slot, &pid) ==
              2 &&
          slot >= 0 && slot < workers) {
        pids[static_cast<size_t>(slot)] = pid;
      }
    }
    at += 7;
  }
  return pids;
}

TEST(FleetStoreTest, SiblingsReuseEachOthersScoresAndWarmFleetPaysNothing) {
  const fs::path root = Scratch("reuse");
  const fs::path log = root / "server.log";
  const std::string store_dir = (root / "store").string();
  const std::string spec =
      "--dataset AB --model svm --pair 1 --triangles 200 --no-cache";

  pid_t master = SpawnFleet(
      {"--listen", "0", "--job-root", (root / "jobs").string(), "--workers",
       "2", "--store-dir", store_dir, "--stats-interval-ms", "50",
       "--checkpoint-every", "16"},
      log);
  ASSERT_GT(master, 0);
  const int port = WaitForPort(log);
  ASSERT_GT(port, 0) << ReadAll(log);

  // Submit the same request repeatedly (distinct ids, so nothing is
  // deduplicated at the job layer). The first run pays fresh model
  // scores into its worker's stream; SO_REUSEPORT spreads connections
  // by source port, so within a few attempts a rerun lands on the
  // OTHER worker and is served from the sibling's paid entries —
  // visible fleet-wide as store.peer_hits > 0. Each attempt is a
  // coin flip, so 15 attempts fail spuriously with p ~ 2^-14.
  long long peer_hits = 0;
  std::string output;
  for (int attempt = 0; attempt < 15 && peer_hits <= 0; ++attempt) {
    ASSERT_EQ(RunShell(ClientCmd(port, "submit --id r" +
                                           std::to_string(attempt) + " " +
                                           spec),
                       &output),
              0)
        << output;
    for (int waited = 0; waited < 3000 && peer_hits <= 0; waited += 100) {
      ASSERT_EQ(RunShell(ClientCmd(port, "stats"), &output), 0) << output;
      peer_hits = FleetStat(output, "store", "peer_hits");
      if (peer_hits <= 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
      }
    }
  }
  EXPECT_GT(peer_hits, 0)
      << "no cross-worker reuse through the shared store\n"
      << output << "\nserver log:\n"
      << ReadAll(log);
  EXPECT_GT(FleetStat(output, "store", "entries"), 0) << output;
  EXPECT_EQ(StopServer(master, SIGTERM), 0) << ReadAll(log);

  // A brand-new fleet (fresh job root, fresh processes) over the SAME
  // store directory: every score the first fleet paid is warm, so the
  // job completes with zero fresh model calls, entirely store-served.
  const fs::path log2 = root / "server2.log";
  master = SpawnFleet(
      {"--listen", "0", "--job-root", (root / "jobs2").string(), "--workers",
       "2", "--store-dir", store_dir, "--stats-interval-ms", "50"},
      log2);
  ASSERT_GT(master, 0);
  const int port2 = WaitForPort(log2);
  ASSERT_GT(port2, 0) << ReadAll(log2);
  ASSERT_EQ(RunShell(ClientCmd(port2, "submit --id warm0 " + spec), &output),
            0)
      << output;
  EXPECT_EQ(StopServer(master, SIGTERM), 0) << ReadAll(log2);
  const std::string log2_text = ReadAll(log2);
  EXPECT_EQ(DoneField(log2_text, "warm0", "fresh"), 0)
      << "warm fleet paid model calls the store already held\n"
      << log2_text;
  EXPECT_GT(DoneField(log2_text, "warm0", "store"), 0) << log2_text;

  // Store-served scores are bit-exact: the warm result is
  // byte-identical to a direct single-process run.
  std::string direct;
  ASSERT_EQ(RunShell(std::string(CERTA_CLI_PATH) + " explain " + spec +
                         " --json",
                     &direct),
            0)
      << direct;
  fs::path warm_dir;
  std::error_code ec;
  for (const auto& partition :
       fs::directory_iterator(root / "jobs2", ec)) {
    if (fs::exists(partition.path() / "warm0" / "result.json")) {
      warm_dir = partition.path() / "warm0";
    }
  }
  ASSERT_FALSE(warm_dir.empty()) << log2_text;
  EXPECT_EQ(Chomp(ReadAll(warm_dir / "result.json")), Chomp(direct));
  fs::remove_all(root);
}

TEST(FleetStoreTest, RollingRestartsDoNotExhaustWatcherRetryBudget) {
  const fs::path root = Scratch("retries");
  const fs::path log = root / "server.log";
  pid_t master = SpawnFleet(
      {"--listen", "0", "--job-root", (root / "jobs").string(), "--workers",
       "2", "--stats-interval-ms", "50", "--restart-backoff-ms", "50",
       "--checkpoint-every", "16"},
      log);
  ASSERT_GT(master, 0);
  const int port = WaitForPort(log);
  ASSERT_GT(port, 0) << ReadAll(log);

  // A watching client with a retry budget of 2 rides through TWO full
  // rolling restarts. Each roll replaces both workers one at a time,
  // so over its life the client can be disconnected up to four times —
  // far more lifetime failures than one streak's budget allows. It
  // survives because the budget bounds *consecutive* failures and
  // resets on every successful reconnect; the lifetime-counting bug
  // this pins down exhausted the shared counter across disconnects.
  // (This job's result.json is also larger than the default
  // --max-write-buffer, pinning the oversized-result delivery fix —
  // the old backlog check disconnected every fetch of it forever.)
  // The `timeout` wrapper turns any wedge into a visible failure
  // instead of a hung CI job.
  int client_code = -1;
  std::string client_output;
  std::thread client([&] {
    client_code = RunShell(
        "timeout 240 " +
            ClientCmd(port,
                      "submit --id ride0 --dataset AB --model ditto "
                      "--triangles 6000 --no-cache --retries 2 --quiet"),
        &client_output);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(500));

  auto count_rolls = [&] {
    const std::string text = ReadAll(log);
    size_t rolls = 0;
    for (size_t at = text.find("rolling restart complete");
         at != std::string::npos;
         at = text.find("rolling restart complete", at + 1)) {
      ++rolls;
    }
    return rolls;
  };
  for (size_t round = 1; round <= 2; ++round) {
    ASSERT_EQ(kill(master, SIGHUP), 0);
    bool rolled = false;
    for (int waited = 0; waited < 90000 && !rolled; waited += 50) {
      rolled = count_rolls() >= round;
      if (!rolled) {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
      }
    }
    ASSERT_TRUE(rolled) << ReadAll(log);
  }

  client.join();
  EXPECT_EQ(client_code, 0) << client_output << "\nserver log:\n"
                            << ReadAll(log);
  EXPECT_NE(client_output.find("\"type\":\"result\""), std::string::npos)
      << client_output;
  EXPECT_EQ(StopServer(master, SIGTERM), 0) << ReadAll(log);
  fs::remove_all(root);
}

TEST(FleetStoreTest, StatsFanInSurvivesWorkerKilledMidStatsWrite) {
  const fs::path root = Scratch("fanin");
  const fs::path log = root / "server.log";
  constexpr int kWorkers = 2;
  // The fastest stats cadence the CLI allows maximizes the chance each
  // SIGKILL lands mid-`STATS` write; correctness must not depend on
  // where it lands — the master drops the torn fragment wholesale.
  pid_t master = SpawnFleet(
      {"--listen", "0", "--job-root", (root / "jobs").string(), "--workers",
       std::to_string(kWorkers), "--stats-interval-ms", "20",
       "--restart-backoff-ms", "50", "--stable-after-ms", "200"},
      log);
  ASSERT_GT(master, 0);
  const int port = WaitForPort(log);
  ASSERT_GT(port, 0) << ReadAll(log);

  std::string output;
  for (int i = 0; i < 2; ++i) {
    ASSERT_EQ(RunShell(ClientCmd(port, "submit --id f" + std::to_string(i) +
                                           " --dataset AB --model svm "
                                           "--triangles 10"),
                       &output),
              0)
        << output;
  }

  // Kill a live worker several times. At a 20ms cadence its control fd
  // is busy writing STATS lines near-constantly, so these kills hit
  // mid-write with high probability across rounds.
  for (int round = 0; round < 3; ++round) {
    const std::vector<pid_t> pids =
        CurrentWorkerPids(ReadAll(log), kWorkers);
    pid_t victim = -1;
    for (pid_t pid : pids) {
      if (pid > 0 && kill(pid, 0) == 0) victim = pid;
    }
    ASSERT_GT(victim, 0) << ReadAll(log);
    ASSERT_EQ(kill(victim, SIGKILL), 0);
    // Wait for the respawn before the next round.
    for (int waited = 0; waited < 10000; waited += 50) {
      const std::vector<pid_t> now =
          CurrentWorkerPids(ReadAll(log), kWorkers);
      bool replaced = true;
      for (pid_t pid : now) {
        replaced = replaced && pid > 0 && (pid != victim) &&
                   kill(pid, 0) == 0;
      }
      if (replaced) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }

  // The master must still be alive and the aggregate must still parse
  // with sane values: a torn STATS fragment that leaked into the JSON
  // would fail the parse (FleetStat returns -1), a wedged fan-in would
  // never show 2 live workers again.
  {
    int status = 0;
    ASSERT_EQ(waitpid(master, &status, WNOHANG), 0)
        << "master died, raw status 0x" << std::hex << status << std::dec
        << "\n"
        << ReadAll(log);
  }
  // Counter caveat: the fleet view sums each slot's *current* worker
  // generation, so a SIGKILLed worker's completed count legitimately
  // vanishes from the aggregate. The durable truth for the pre-kill
  // jobs is their result.json on disk; the fan-in pipeline itself is
  // proven live by a post-kill job whose completion must flow through
  // the freshly respawned workers' STATS pushes.
  ASSERT_EQ(RunShell(ClientCmd(port, "submit --id f2 --dataset AB "
                               "--model svm --triangles 10"),
                     &output),
            0)
      << output;
  long long live = -1;
  long long completed = -1;
  for (int waited = 0; waited < 15000; waited += 100) {
    ASSERT_EQ(RunShell(ClientCmd(port, "stats"), &output), 0) << output;
    live = FleetStat(output, "", "workers_live");
    completed = FleetStat(output, "runner", "completed");
    if (live == kWorkers && completed >= 1) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  EXPECT_EQ(live, kWorkers) << output;
  EXPECT_GE(completed, 1) << output;
  EXPECT_GE(FleetStat(output, "server", "connections_accepted"), 1)
      << output;
  for (int i = 0; i < 3; ++i) {
    const std::string id = "f" + std::to_string(i);
    bool on_disk = false;
    std::error_code ec;
    for (const auto& partition :
         fs::directory_iterator(root / "jobs", ec)) {
      if (fs::exists(partition.path() / id / "result.json")) {
        on_disk = true;
      }
    }
    EXPECT_TRUE(on_disk) << id << " lost\n" << ReadAll(log);
  }

  EXPECT_EQ(StopServer(master, SIGTERM), 0) << ReadAll(log);
  fs::remove_all(root);
}

}  // namespace
}  // namespace certa
