#include <cmath>

#include <gtest/gtest.h>

#include "ml/dense.h"
#include "ml/logistic_regression.h"
#include "ml/metrics.h"
#include "ml/mlp.h"
#include "ml/scaler.h"
#include "util/random.h"

namespace certa::ml {
namespace {

// --- dense -------------------------------------------------------------

TEST(DenseTest, DotAxpyNorm) {
  Vector a = {1.0, 2.0, 3.0};
  Vector b = {4.0, 5.0, 6.0};
  EXPECT_DOUBLE_EQ(Dot(a, b), 32.0);
  Axpy(2.0, a, &b);
  EXPECT_DOUBLE_EQ(b[0], 6.0);
  EXPECT_DOUBLE_EQ(b[2], 12.0);
  EXPECT_DOUBLE_EQ(Norm({3.0, 4.0}), 5.0);
}

TEST(DenseTest, SigmoidStable) {
  EXPECT_NEAR(Sigmoid(0.0), 0.5, 1e-12);
  EXPECT_NEAR(Sigmoid(1000.0), 1.0, 1e-12);
  EXPECT_NEAR(Sigmoid(-1000.0), 0.0, 1e-12);
  EXPECT_NEAR(Sigmoid(2.0) + Sigmoid(-2.0), 1.0, 1e-12);
}

TEST(DenseTest, MatrixMultiply) {
  Matrix m(2, 3);
  // [[1 2 3], [4 5 6]]
  for (size_t r = 0; r < 2; ++r) {
    for (size_t c = 0; c < 3; ++c) {
      m.at(r, c) = static_cast<double>(r * 3 + c + 1);
    }
  }
  Vector x = {1.0, 1.0, 1.0};
  Vector y = m.Multiply(x);
  ASSERT_EQ(y.size(), 2u);
  EXPECT_DOUBLE_EQ(y[0], 6.0);
  EXPECT_DOUBLE_EQ(y[1], 15.0);
  Vector z = m.MultiplyTransposed({1.0, 1.0});
  ASSERT_EQ(z.size(), 3u);
  EXPECT_DOUBLE_EQ(z[0], 5.0);
  EXPECT_DOUBLE_EQ(z[2], 9.0);
}

TEST(DenseTest, SolveSpdRecoversSolution) {
  // A = [[4,1],[1,3]], b = A * [1, 2] = [6, 7].
  Matrix a(2, 2);
  a.at(0, 0) = 4.0;
  a.at(0, 1) = 1.0;
  a.at(1, 0) = 1.0;
  a.at(1, 1) = 3.0;
  Vector x;
  ASSERT_TRUE(SolveSpd(a, {6.0, 7.0}, &x));
  EXPECT_NEAR(x[0], 1.0, 1e-9);
  EXPECT_NEAR(x[1], 2.0, 1e-9);
}

TEST(DenseTest, WeightedRidgeFitsLinearData) {
  // y = 2 x0 - 3 x1, exact fit expected with tiny ridge.
  Rng rng(5);
  const int n = 50;
  Matrix design(n, 2);
  Vector y(n, 0.0);
  Vector w(n, 1.0);
  for (int i = 0; i < n; ++i) {
    double x0 = rng.UniformDouble(-1, 1);
    double x1 = rng.UniformDouble(-1, 1);
    design.at(i, 0) = x0;
    design.at(i, 1) = x1;
    y[i] = 2.0 * x0 - 3.0 * x1;
  }
  Vector beta;
  ASSERT_TRUE(WeightedRidge(design, y, w, 1e-9, &beta));
  EXPECT_NEAR(beta[0], 2.0, 1e-4);
  EXPECT_NEAR(beta[1], -3.0, 1e-4);
}

TEST(DenseTest, WeightedRidgeIgnoresZeroWeightSamples) {
  // Two contradictory points; weights keep only the first.
  Matrix design(2, 1);
  design.at(0, 0) = 1.0;
  design.at(1, 0) = 1.0;
  Vector beta;
  ASSERT_TRUE(WeightedRidge(design, {1.0, 100.0}, {1.0, 0.0}, 1e-9, &beta));
  EXPECT_NEAR(beta[0], 1.0, 1e-6);
}

// --- logistic regression ------------------------------------------------

TEST(LogisticTest, LearnsSeparableData) {
  Rng rng(11);
  std::vector<Vector> features;
  std::vector<int> labels;
  for (int i = 0; i < 200; ++i) {
    double x = rng.UniformDouble(-2.0, 2.0);
    features.push_back({x});
    labels.push_back(x > 0.0 ? 1 : 0);
  }
  LogisticRegression model;
  model.Fit(features, labels);
  EXPECT_TRUE(model.is_fitted());
  EXPECT_EQ(model.Predict({1.5}), 1);
  EXPECT_EQ(model.Predict({-1.5}), 0);
  EXPECT_GT(model.PredictProbability({2.0}), 0.9);
  EXPECT_LT(model.PredictProbability({-2.0}), 0.1);
}

TEST(LogisticTest, WeightedFitShiftsBoundary) {
  // Same point with both labels; the weighted copy dominates.
  std::vector<Vector> features = {{1.0}, {1.0}};
  std::vector<int> labels = {1, 0};
  LogisticRegression model;
  model.FitWeighted(features, labels, {10.0, 1.0});
  EXPECT_GT(model.PredictProbability({1.0}), 0.5);
  LogisticRegression other;
  other.FitWeighted(features, labels, {1.0, 10.0});
  EXPECT_LT(other.PredictProbability({1.0}), 0.5);
}

TEST(LogisticTest, DeterministicGivenSeed) {
  std::vector<Vector> features = {{0.5}, {-0.5}, {1.0}, {-1.0}};
  std::vector<int> labels = {1, 0, 1, 0};
  LogisticRegression a;
  LogisticRegression b;
  a.Fit(features, labels);
  b.Fit(features, labels);
  EXPECT_DOUBLE_EQ(a.PredictProbability({0.3}),
                   b.PredictProbability({0.3}));
}

// --- MLP ----------------------------------------------------------------

TEST(MlpTest, LearnsXor) {
  std::vector<Vector> features = {{0, 0}, {0, 1}, {1, 0}, {1, 1}};
  std::vector<int> labels = {0, 1, 1, 0};
  // Replicate so batches have enough signal.
  std::vector<Vector> train;
  std::vector<int> train_labels;
  for (int rep = 0; rep < 30; ++rep) {
    for (size_t i = 0; i < features.size(); ++i) {
      train.push_back(features[i]);
      train_labels.push_back(labels[i]);
    }
  }
  Mlp model;
  Mlp::Options options;
  options.hidden_sizes = {8};
  options.epochs = 400;
  model.Fit(train, train_labels, options);
  for (size_t i = 0; i < features.size(); ++i) {
    EXPECT_EQ(model.Predict(features[i]), labels[i])
        << "XOR case " << i;
  }
}

TEST(MlpTest, OutputsAreProbabilities) {
  std::vector<Vector> features = {{1.0}, {-1.0}};
  std::vector<int> labels = {1, 0};
  Mlp model;
  model.Fit(features, labels);
  for (double x = -3.0; x <= 3.0; x += 0.5) {
    double p = model.PredictProbability({x});
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

// --- metrics --------------------------------------------------------------

TEST(MetricsTest, ConfusionAndDerived) {
  std::vector<int> labels = {1, 1, 0, 0, 1};
  std::vector<int> preds = {1, 0, 0, 1, 1};
  Confusion c = ComputeConfusion(labels, preds);
  EXPECT_EQ(c.true_positive, 2);
  EXPECT_EQ(c.false_negative, 1);
  EXPECT_EQ(c.false_positive, 1);
  EXPECT_EQ(c.true_negative, 1);
  EXPECT_DOUBLE_EQ(Accuracy(c), 0.6);
  EXPECT_DOUBLE_EQ(Precision(c), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(Recall(c), 2.0 / 3.0);
  EXPECT_NEAR(F1(c), 2.0 / 3.0, 1e-12);
}

TEST(MetricsTest, DegenerateF1) {
  EXPECT_DOUBLE_EQ(F1Score({0, 0}, {0, 0}), 0.0);
  EXPECT_DOUBLE_EQ(F1Score({1, 1}, {1, 1}), 1.0);
  EXPECT_DOUBLE_EQ(Accuracy(Confusion{}), 0.0);
}

TEST(MetricsTest, MeanAbsoluteError) {
  EXPECT_DOUBLE_EQ(MeanAbsoluteError({1.0, 2.0}, {1.5, 1.5}), 0.5);
  EXPECT_DOUBLE_EQ(MeanAbsoluteError({}, {}), 0.0);
}

TEST(MetricsTest, RocAucPerfectAndRandom) {
  std::vector<int> labels = {0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(RocAuc(labels, {0.1, 0.2, 0.8, 0.9}), 1.0);
  EXPECT_DOUBLE_EQ(RocAuc(labels, {0.9, 0.8, 0.2, 0.1}), 0.0);
  // One class only -> 0.5 by convention.
  EXPECT_DOUBLE_EQ(RocAuc({1, 1}, {0.4, 0.6}), 0.5);
  // All-tied scores -> 0.5.
  EXPECT_DOUBLE_EQ(RocAuc(labels, {0.5, 0.5, 0.5, 0.5}), 0.5);
}

TEST(MetricsTest, SpearmanPerfectAndInverse) {
  EXPECT_DOUBLE_EQ(
      SpearmanCorrelation({1.0, 2.0, 3.0}, {10.0, 20.0, 30.0}), 1.0);
  EXPECT_DOUBLE_EQ(
      SpearmanCorrelation({1.0, 2.0, 3.0}, {30.0, 20.0, 10.0}), -1.0);
  // Monotone transform leaves rank correlation at 1.
  EXPECT_DOUBLE_EQ(
      SpearmanCorrelation({1.0, 2.0, 3.0}, {1.0, 100.0, 10000.0}), 1.0);
}

TEST(MetricsTest, SpearmanDegenerateCases) {
  EXPECT_DOUBLE_EQ(SpearmanCorrelation({1.0}, {2.0}), 0.0);
  EXPECT_DOUBLE_EQ(SpearmanCorrelation({}, {}), 0.0);
  // Constant vector -> 0 by convention.
  EXPECT_DOUBLE_EQ(
      SpearmanCorrelation({5.0, 5.0, 5.0}, {1.0, 2.0, 3.0}), 0.0);
}

TEST(MetricsTest, SpearmanHandlesTies) {
  // Ties get midranks; the correlation stays within [-1, 1].
  double value =
      SpearmanCorrelation({1.0, 1.0, 2.0, 3.0}, {2.0, 1.0, 3.0, 4.0});
  EXPECT_GT(value, 0.5);
  EXPECT_LE(value, 1.0);
}

TEST(MetricsTest, TrapezoidAuc) {
  // Unit square: y = 1 over [0, 1].
  EXPECT_DOUBLE_EQ(TrapezoidAuc({0.0, 1.0}, {1.0, 1.0}), 1.0);
  // Triangle: y from 0 to 1 over [0, 1].
  EXPECT_DOUBLE_EQ(TrapezoidAuc({0.0, 1.0}, {0.0, 1.0}), 0.5);
  // Unsorted xs are sorted internally.
  EXPECT_DOUBLE_EQ(TrapezoidAuc({1.0, 0.0}, {1.0, 0.0}), 0.5);
  EXPECT_DOUBLE_EQ(TrapezoidAuc({0.5}, {1.0}), 0.0);
}

// --- scaler ----------------------------------------------------------------

TEST(ScalerTest, StandardizesColumns) {
  StandardScaler scaler;
  std::vector<Vector> rows = {{0.0, 10.0}, {2.0, 10.0}, {4.0, 10.0}};
  std::vector<Vector> scaled = scaler.FitTransform(rows);
  // Column 0: mean 2, values -1.22.., 0, 1.22..
  EXPECT_NEAR(scaled[1][0], 0.0, 1e-12);
  EXPECT_NEAR(scaled[0][0], -scaled[2][0], 1e-12);
  // Constant column maps to 0.
  for (const Vector& row : scaled) EXPECT_DOUBLE_EQ(row[1], 0.0);
}

TEST(ScalerTest, TransformUsesTrainingStatistics) {
  StandardScaler scaler;
  scaler.Fit({{0.0}, {2.0}});
  Vector out = scaler.Transform({4.0});
  EXPECT_NEAR(out[0], 3.0, 1e-12);  // (4 - 1) / 1
}

}  // namespace
}  // namespace certa::ml
