#include "data/blocking.h"

#include <gtest/gtest.h>

#include "data/benchmarks.h"
#include "test_util.h"

namespace certa::data {
namespace {

using certa::testing::MakeRecord;
using certa::testing::MakeTable;

TEST(TokenBlockerTest, FindsSharedTokenCandidates) {
  Table right = MakeTable("V", {"name"},
                          {{"sony bravia tv"},
                           {"altec speaker"},
                           {"sony headphones"},
                           {"unrelated widget"}});
  BlockingOptions options;
  options.max_token_frequency = 0.6;  // keep "sony" (df = 2/4) indexed
  TokenBlocker blocker(right, options);
  std::vector<int> candidates =
      blocker.Candidates(MakeRecord(0, {"sony bravia"}));
  // Records 0 (sony+bravia) and 2 (sony) share tokens; 0 ranks first.
  ASSERT_EQ(candidates.size(), 2u);
  EXPECT_EQ(candidates[0], 0);
  EXPECT_EQ(candidates[1], 2);
}

TEST(TokenBlockerTest, NoSharedTokensNoCandidates) {
  Table right = MakeTable("V", {"name"}, {{"alpha"}, {"beta"}});
  TokenBlocker blocker(right);
  EXPECT_TRUE(blocker.Candidates(MakeRecord(0, {"gamma delta"})).empty());
}

TEST(TokenBlockerTest, StopTokenPruning) {
  // "common" appears in every record and exceeds max_token_frequency;
  // it must not generate candidates by itself.
  Table right = MakeTable("V", {"name"},
                          {{"common a"},
                           {"common b"},
                           {"common c"},
                           {"common d"},
                           {"common e"}});
  BlockingOptions options;
  options.max_token_frequency = 0.5;
  TokenBlocker blocker(right, options);
  EXPECT_TRUE(blocker.Candidates(MakeRecord(0, {"common zzz"})).empty());
  // A rare token still works.
  EXPECT_EQ(blocker.Candidates(MakeRecord(0, {"b"})).size(), 1u);
}

TEST(TokenBlockerTest, CapsCandidatesPerRecord) {
  std::vector<std::vector<std::string>> rows;
  for (int i = 0; i < 30; ++i) {
    rows.push_back({"shared token" + std::to_string(i)});
  }
  Table right = MakeTable("V", {"name"}, rows);
  BlockingOptions options;
  options.max_candidates_per_record = 5;
  options.max_token_frequency = 1.1;  // keep even the shared token
  TokenBlocker blocker(right, options);
  EXPECT_EQ(blocker.Candidates(MakeRecord(0, {"shared"})).size(), 5u);
}

TEST(TokenBlockerTest, MinSharedTokensThreshold) {
  Table right = MakeTable("V", {"name"},
                          {{"one two three"}, {"one zzz qqq"}});
  BlockingOptions options;
  options.min_shared_tokens = 2;
  options.max_token_frequency = 1.1;
  TokenBlocker blocker(right, options);
  std::vector<int> candidates =
      blocker.Candidates(MakeRecord(0, {"one two"}));
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates[0], 0);
}

TEST(TokenBlockerTest, MissingValuesIgnored) {
  Table right = MakeTable("V", {"a", "b"}, {{"NaN", "match me"}});
  TokenBlocker blocker(right);
  EXPECT_TRUE(blocker.Candidates(MakeRecord(0, {"nan", "nothing"})).empty());
  EXPECT_EQ(blocker.Candidates(MakeRecord(0, {"x", "match"})).size(), 1u);
}

TEST(TokenBlockerTest, EmptyAttributesYieldNoTokens) {
  // Records whose every value is empty contribute nothing to the
  // index, and an all-empty probe matches nothing.
  Table right = MakeTable("V", {"a", "b"},
                          {{"", ""}, {"real thing", ""}});
  TokenBlocker blocker(right);
  EXPECT_TRUE(blocker.Candidates(MakeRecord(0, {"", ""})).empty());
  EXPECT_EQ(blocker.Candidates(MakeRecord(0, {"real", ""})).size(), 1u);
  // RecordTokenSet (shared with CandidateIndex) agrees: empty in,
  // empty out.
  EXPECT_TRUE(RecordTokenSet(MakeRecord(0, {"", ""})).empty());
}

TEST(TokenBlockerTest, AllStopwordRecordsPruneToEmptyIndex) {
  // Every token exceeds max_token_frequency, so pruning empties the
  // whole index — probes must return nothing rather than everything.
  Table right = MakeTable("V", {"name"},
                          {{"the item"}, {"the item"}, {"the item"}});
  BlockingOptions options;
  options.max_token_frequency = 0.5;
  TokenBlocker blocker(right, options);
  EXPECT_EQ(blocker.IndexedTokenCount(), 0);
  EXPECT_TRUE(blocker.Candidates(MakeRecord(0, {"the item"})).empty());
}

TEST(TokenBlockerTest, UnicodeTokensSurviveNormalization) {
  // Normalization lowercases ASCII only; multi-byte UTF-8 sequences
  // must pass through byte-identical, so "café" matches "café" and
  // not its ASCII-folded lookalike.
  Table right = MakeTable("V", {"name"},
                          {{"Café MÜNCHEN"}, {"cafe munchen"}});
  BlockingOptions options;
  options.max_token_frequency = 1.1;
  TokenBlocker blocker(right, options);
  std::vector<int> candidates = blocker.Candidates(MakeRecord(0, {"café"}));
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates[0], 0);
  EXPECT_EQ(blocker.Candidates(MakeRecord(0, {"cafe"})).size(), 1u);
}

TEST(TokenBlockerTest, CanonicalizedMissingMarkersProduceNoTokens) {
  // Every spelling text::IsMissing canonicalizes — NaN, null, n/a,
  // dashes — is a non-value: indexed records built from them are
  // empty, and probing with them finds nothing.
  Table right = MakeTable("V", {"a", "b"},
                          {{"NaN", "null"}, {"n/a", "-"}, {"widget", "NaN"}});
  TokenBlocker blocker(right);
  for (const char* marker : {"NaN", "null", "n/a", "-"}) {
    EXPECT_TRUE(RecordTokenSet(MakeRecord(0, {marker, marker})).empty())
        << marker;
    EXPECT_TRUE(blocker.Candidates(MakeRecord(0, {marker, marker})).empty())
        << marker;
  }
  EXPECT_EQ(blocker.Candidates(MakeRecord(0, {"widget", ""})).size(), 1u);
}

TEST(BlockingRecallTest, CountsRecoveredMatches) {
  std::vector<std::pair<int, int>> candidates = {{0, 0}, {1, 1}, {2, 9}};
  std::vector<LabeledPair> truth = {
      {0, 0, 1}, {1, 1, 1}, {2, 2, 1}, {3, 3, 0}};
  EXPECT_NEAR(BlockingRecall(candidates, truth), 2.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(BlockingRecall({}, {{0, 0, 0}}), 1.0);  // no matches
}

TEST(BlockingIntegrationTest, HighRecallOnSyntheticBenchmark) {
  Dataset dataset = MakeBenchmark("AB");
  BlockingOptions options;
  options.max_candidates_per_record = 15;
  auto candidates = BlockAll(dataset.left, dataset.right, options);
  // Far fewer candidates than the cross product, with high match recall.
  EXPECT_LT(candidates.size(),
            static_cast<size_t>(dataset.left.size()) *
                static_cast<size_t>(dataset.right.size()) / 4);
  double recall = BlockingRecall(candidates, dataset.test);
  EXPECT_GT(recall, 0.85);
}

}  // namespace
}  // namespace certa::data
