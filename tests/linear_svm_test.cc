#include "ml/linear_svm.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace certa::ml {
namespace {

TEST(LinearSvmTest, LearnsSeparableData) {
  Rng rng(3);
  std::vector<Vector> features;
  std::vector<int> labels;
  for (int i = 0; i < 300; ++i) {
    double x = rng.UniformDouble(-2.0, 2.0);
    double y = rng.UniformDouble(-2.0, 2.0);
    features.push_back({x, y});
    labels.push_back(x + y > 0.0 ? 1 : 0);
  }
  LinearSvm svm;
  svm.Fit(features, labels);
  EXPECT_TRUE(svm.is_fitted());
  EXPECT_EQ(svm.Predict({1.5, 1.5}), 1);
  EXPECT_EQ(svm.Predict({-1.5, -1.5}), 0);
}

TEST(LinearSvmTest, CalibratedProbabilitiesAreMonotoneInMargin) {
  Rng rng(5);
  std::vector<Vector> features;
  std::vector<int> labels;
  for (int i = 0; i < 200; ++i) {
    double x = rng.UniformDouble(-2.0, 2.0);
    features.push_back({x});
    labels.push_back(x > 0.0 ? 1 : 0);
  }
  LinearSvm svm;
  svm.Fit(features, labels);
  double previous = 0.0;
  for (double x = -3.0; x <= 3.0; x += 0.5) {
    double p = svm.PredictProbability({x});
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
    EXPECT_GE(p, previous - 1e-9);  // monotone in the margin
    previous = p;
  }
  EXPECT_GT(svm.PredictProbability({2.5}), 0.8);
  EXPECT_LT(svm.PredictProbability({-2.5}), 0.2);
}

TEST(LinearSvmTest, MarginSignMatchesPrediction) {
  std::vector<Vector> features = {{1.0}, {2.0}, {-1.0}, {-2.0}};
  std::vector<int> labels = {1, 1, 0, 0};
  LinearSvm svm;
  svm.Fit(features, labels);
  EXPECT_GT(svm.DecisionValue({2.0}), 0.0);
  EXPECT_LT(svm.DecisionValue({-2.0}), 0.0);
}

TEST(LinearSvmTest, DeterministicForSameSeed) {
  std::vector<Vector> features = {{1.0}, {-1.0}, {0.5}, {-0.5}};
  std::vector<int> labels = {1, 0, 1, 0};
  LinearSvm a;
  LinearSvm b;
  a.Fit(features, labels);
  b.Fit(features, labels);
  EXPECT_DOUBLE_EQ(a.PredictProbability({0.3}),
                   b.PredictProbability({0.3}));
}

TEST(LinearSvmTest, ToleratesNoisyLabels) {
  Rng rng(7);
  std::vector<Vector> features;
  std::vector<int> labels;
  for (int i = 0; i < 400; ++i) {
    double x = rng.UniformDouble(-2.0, 2.0);
    features.push_back({x});
    int label = x > 0.0 ? 1 : 0;
    if (rng.Bernoulli(0.1)) label = 1 - label;  // 10% label noise
    labels.push_back(label);
  }
  LinearSvm svm;
  svm.Fit(features, labels);
  int correct = 0;
  for (double x : {-1.5, -1.0, -0.5, 0.5, 1.0, 1.5}) {
    if (svm.Predict({x}) == (x > 0.0 ? 1 : 0)) ++correct;
  }
  EXPECT_GE(correct, 5);
}

}  // namespace
}  // namespace certa::ml
