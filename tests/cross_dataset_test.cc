// Property sweep across all twelve benchmark profiles: the full
// generator → model → CERTA pipeline satisfies its invariants on every
// dataset shape (attribute counts 3-8, starved and abundant triangle
// regimes, dirty corruption).

#include <gtest/gtest.h>

#include "core/certa_explainer.h"
#include "data/benchmarks.h"
#include "data/vocab.h"
#include "eval/harness.h"

namespace certa {
namespace {

class CrossDatasetTest : public ::testing::TestWithParam<std::string> {};

TEST_P(CrossDatasetTest, CertaInvariantsHold) {
  eval::HarnessOptions options;
  options.max_pairs = 3;
  options.num_triangles = 16;
  auto setup = eval::Prepare(GetParam(), models::ModelKind::kDitto,
                             options);
  core::CertaExplainer explainer(setup->context,
                                 eval::CertaOptionsFor(options));
  for (const data::LabeledPair& pair :
       eval::ExplainedPairs(*setup, options)) {
    const data::Record& u = setup->dataset.left.record(pair.left_index);
    const data::Record& v = setup->dataset.right.record(pair.right_index);
    core::CertaResult result = explainer.Explain(u, v);

    // Probabilities bounded.
    for (double score : result.saliency.Flattened()) {
      EXPECT_GE(score, 0.0);
      EXPECT_LE(score, 1.0);
    }
    for (double chi : result.set_sufficiencies) {
      EXPECT_GT(chi, 0.0);  // only flipped sets are recorded
      EXPECT_LE(chi, 1.0);
    }
    EXPECT_GE(result.best_sufficiency, 0.0);
    EXPECT_LE(result.best_sufficiency, 1.0);

    // Bookkeeping consistent.
    EXPECT_LE(result.triangles_used, options.num_triangles);
    EXPECT_EQ(result.triangle_stats.natural +
                  result.triangle_stats.augmented,
              result.triangles_used);
    EXPECT_EQ(result.predictions_expected,
              result.predictions_performed + result.predictions_saved);
    EXPECT_GE(result.predictions_saved, 0);

    // A* never uses the full attribute set (Eq. 3 excludes it), and
    // counterfactual examples only change attributes in A*.
    const int attributes = setup->dataset.left.schema().size();
    const uint32_t full = (1u << attributes) - 1u;
    EXPECT_NE(result.best_mask, full);
    bool original = setup->context.model->Predict(u, v);
    for (const explain::CounterfactualExample& example :
         result.counterfactuals) {
      EXPECT_EQ(example.changed_attributes.size(),
                static_cast<size_t>(explain::MaskSize(result.best_mask)));
      // Every example flips (CERTA examples flip by construction up to
      // the monotonicity error; with τ=16 on these models actual flips
      // dominate — require at least agreement of the recorded score).
      bool flipped = example.score >= 0.5;
      EXPECT_NE(original, flipped)
          << GetParam() << ": counterfactual did not flip";
    }
  }
}

TEST_P(CrossDatasetTest, GenerationIsDeterministic) {
  data::Dataset a = data::MakeBenchmark(GetParam());
  data::Dataset b = data::MakeBenchmark(GetParam());
  ASSERT_EQ(a.left.size(), b.left.size());
  ASSERT_EQ(a.test.size(), b.test.size());
  for (int r = 0; r < a.left.size(); ++r) {
    ASSERT_EQ(a.left.record(r), b.left.record(r));
  }
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, CrossDatasetTest,
                         ::testing::ValuesIn(data::BenchmarkCodes()),
                         [](const auto& info) { return info.param; });

TEST(VocabTest, EveryDomainHasUsablePools) {
  for (data::Domain domain :
       {data::Domain::kElectronics, data::Domain::kSoftware,
        data::Domain::kBeer, data::Domain::kBibliographic,
        data::Domain::kRestaurant, data::Domain::kMusic,
        data::Domain::kGeneralProduct}) {
    const data::DomainVocab& vocab = data::GetVocab(domain);
    EXPECT_GE(vocab.brands.size(), 10u);
    EXPECT_GE(vocab.descriptors.size(), 10u);
    EXPECT_FALSE(vocab.categories.empty());
    // Pools are lowercase (the generator relies on it for normalized
    // comparisons).
    for (const std::string& brand : vocab.brands) {
      for (char c : brand) {
        EXPECT_FALSE(c >= 'A' && c <= 'Z') << brand;
      }
    }
  }
}

TEST(VocabTest, DomainsAreDistinct) {
  const auto& beer = data::GetVocab(data::Domain::kBeer);
  const auto& music = data::GetVocab(data::Domain::kMusic);
  EXPECT_NE(beer.brands, music.brands);
  EXPECT_NE(beer.categories, music.categories);
}

TEST(BenchmarkProfileTest, DirtyVariantsShareBaseSchema) {
  for (const auto& [dirty, base] :
       std::vector<std::pair<std::string, std::string>>{
           {"DDA", "DA"}, {"DDS", "DS"}, {"DIA", "IA"}, {"DWA", "WA"}}) {
    data::GeneratorProfile dirty_profile = data::BenchmarkProfile(dirty);
    data::GeneratorProfile base_profile = data::BenchmarkProfile(base);
    EXPECT_TRUE(dirty_profile.dirty);
    EXPECT_FALSE(base_profile.dirty);
    ASSERT_EQ(dirty_profile.attributes.size(),
              base_profile.attributes.size());
    for (size_t a = 0; a < base_profile.attributes.size(); ++a) {
      EXPECT_EQ(dirty_profile.attributes[a].name,
                base_profile.attributes[a].name);
    }
  }
}

}  // namespace
}  // namespace certa
