// Durability layer tests: CRC32, atomic file I/O, write-ahead journal
// (including fuzzed torn/corrupted tails), checkpoints, lattice tag
// serialization, cache prewarming, and in-process kill/resume of a full
// durable explanation run. Subprocess SIGKILL coverage lives in
// crash_recovery_test.cc.

#include <atomic>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/lattice.h"
#include "data/benchmarks.h"
#include "models/scoring_engine.h"
#include "persist/checkpoint.h"
#include "persist/journal.h"
#include "service/job_runner.h"
#include "test_util.h"
#include "util/atomic_file.h"
#include "util/crc32.h"

namespace certa {
namespace {

namespace fs = std::filesystem;

// Journal on-disk geometry (see persist/journal.h).
constexpr size_t kHeaderBytes = 12;
constexpr size_t kRecordBytes = 28;

/// Fresh scratch directory per test, removed on destruction.
class ScratchDir {
 public:
  explicit ScratchDir(const std::string& tag) {
    dir_ = fs::temp_directory_path() /
           ("certa_durability_" + tag + "_" +
            std::to_string(::getpid()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  ~ScratchDir() {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }
  std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }
  std::string dir() const { return dir_.string(); }

 private:
  fs::path dir_;
};

std::string ReadAll(const std::string& path) {
  std::string content;
  EXPECT_TRUE(util::ReadFileToString(path, &content));
  return content;
}

void WriteRaw(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(content.data(), static_cast<std::streamsize>(content.size()));
}

models::PairKey Key(uint64_t lo, uint64_t hi) {
  models::PairKey key;
  key.lo = lo;
  key.hi = hi;
  return key;
}

/// Writes a synced journal of `n` distinct records and returns its raw
/// bytes.
std::string MakeJournal(const std::string& path, int n) {
  persist::JournalWriter writer;
  EXPECT_TRUE(writer.Open(path));
  for (int i = 0; i < n; ++i) {
    EXPECT_TRUE(writer.Append(Key(i + 1, 1000 + i), 0.01 * i));
  }
  EXPECT_TRUE(writer.Sync());
  writer.Close();
  return ReadAll(path);
}

// ---------------------------------------------------------------------
// CRC32

TEST(Crc32Test, KnownVectors) {
  // IEEE 802.3 check value.
  EXPECT_EQ(util::Crc32(std::string("123456789")), 0xCBF43926u);
  EXPECT_EQ(util::Crc32(std::string("")), 0u);
}

TEST(Crc32Test, IncrementalMatchesOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  for (size_t split = 0; split <= data.size(); ++split) {
    uint32_t crc = util::Crc32Update(0, data.data(), split);
    crc = util::Crc32Update(crc, data.data() + split, data.size() - split);
    EXPECT_EQ(crc, util::Crc32(data)) << "split at " << split;
  }
}

TEST(Crc32Test, SingleBitFlipAlwaysDetected) {
  const std::string data = "durability";
  const uint32_t clean = util::Crc32(data);
  for (size_t byte = 0; byte < data.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string flipped = data;
      flipped[byte] = static_cast<char>(flipped[byte] ^ (1 << bit));
      EXPECT_NE(util::Crc32(flipped), clean);
    }
  }
}

// ---------------------------------------------------------------------
// Atomic file I/O

TEST(AtomicFileTest, RoundTripAndOverwrite) {
  ScratchDir scratch("atomic");
  const std::string path = scratch.path("file.txt");
  EXPECT_FALSE(util::PathExists(path));
  EXPECT_TRUE(util::AtomicWriteFile(path, "first\n"));
  EXPECT_TRUE(util::PathExists(path));
  EXPECT_EQ(ReadAll(path), "first\n");
  // Overwrite is all-or-nothing: the old content is fully replaced.
  EXPECT_TRUE(util::AtomicWriteFile(path, "second, longer content\n"));
  EXPECT_EQ(ReadAll(path), "second, longer content\n");
  // No temp file left behind.
  int files = 0;
  for ([[maybe_unused]] const auto& entry :
       fs::directory_iterator(scratch.dir())) {
    ++files;
  }
  EXPECT_EQ(files, 1);
}

TEST(AtomicFileTest, EnsureDirectoryNested) {
  ScratchDir scratch("dirs");
  const std::string nested = scratch.path("a/b/c");
  EXPECT_TRUE(util::EnsureDirectory(nested));
  EXPECT_TRUE(util::EnsureDirectory(nested));  // idempotent
  EXPECT_TRUE(util::AtomicWriteFile(nested + "/f", "x"));
}

TEST(AtomicFileTest, ReadMissingFails) {
  std::string content = "sentinel";
  EXPECT_FALSE(util::ReadFileToString("/nonexistent/certa/file", &content));
}

// ---------------------------------------------------------------------
// Journal

TEST(JournalTest, RoundTrip) {
  ScratchDir scratch("journal_rt");
  const std::string path = scratch.path("journal.wal");
  MakeJournal(path, 5);
  persist::JournalReplay replay = persist::ReplayJournal(path);
  EXPECT_FALSE(replay.missing);
  EXPECT_FALSE(replay.bad_header);
  EXPECT_FALSE(replay.corrupt_tail);
  EXPECT_EQ(replay.duplicates, 0u);
  ASSERT_EQ(replay.entries.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(replay.entries[i].key, Key(i + 1, 1000 + i));
    EXPECT_DOUBLE_EQ(replay.entries[i].score, 0.01 * i);
  }
}

TEST(JournalTest, MissingFileIsFreshJob) {
  persist::JournalReplay replay =
      persist::ReplayJournal("/nonexistent/certa/journal.wal");
  EXPECT_TRUE(replay.missing);
  EXPECT_TRUE(replay.entries.empty());
}

TEST(JournalTest, TruncationFuzzEveryLength) {
  ScratchDir scratch("journal_trunc");
  const std::string path = scratch.path("journal.wal");
  const std::string full = MakeJournal(path, 4);
  ASSERT_EQ(full.size(), kHeaderBytes + 4 * kRecordBytes);
  // Every possible torn-write length recovers exactly the whole-record
  // prefix; the tail is discarded, never interpreted.
  for (size_t len = 0; len <= full.size(); ++len) {
    WriteRaw(path, full.substr(0, len));
    persist::JournalReplay replay = persist::ReplayJournal(path);
    if (len < kHeaderBytes) {
      EXPECT_TRUE(replay.bad_header) << "len " << len;
      EXPECT_TRUE(replay.entries.empty()) << "len " << len;
      continue;
    }
    const size_t expected = (len - kHeaderBytes) / kRecordBytes;
    EXPECT_EQ(replay.entries.size(), expected) << "len " << len;
    EXPECT_EQ(replay.corrupt_tail, (len - kHeaderBytes) % kRecordBytes != 0)
        << "len " << len;
    EXPECT_EQ(replay.dropped_bytes, (len - kHeaderBytes) % kRecordBytes)
        << "len " << len;
    for (size_t i = 0; i < replay.entries.size(); ++i) {
      EXPECT_EQ(replay.entries[i].key, Key(i + 1, 1000 + i));
    }
  }
}

TEST(JournalTest, BitFlipFuzzEveryByte) {
  ScratchDir scratch("journal_flip");
  const std::string path = scratch.path("journal.wal");
  const std::string full = MakeJournal(path, 3);
  for (size_t byte = 0; byte < full.size(); ++byte) {
    std::string corrupted = full;
    corrupted[byte] = static_cast<char>(corrupted[byte] ^ 0x40);
    WriteRaw(path, corrupted);
    persist::JournalReplay replay = persist::ReplayJournal(path);
    if (byte < kHeaderBytes) {
      EXPECT_TRUE(replay.bad_header) << "byte " << byte;
      EXPECT_TRUE(replay.entries.empty()) << "byte " << byte;
      continue;
    }
    // A flip inside record i invalidates its CRC; recovery keeps the
    // records before it and discards from i on.
    const size_t flipped_record = (byte - kHeaderBytes) / kRecordBytes;
    EXPECT_EQ(replay.entries.size(), flipped_record) << "byte " << byte;
    EXPECT_TRUE(replay.corrupt_tail) << "byte " << byte;
    for (size_t i = 0; i < replay.entries.size(); ++i) {
      EXPECT_EQ(replay.entries[i].key, Key(i + 1, 1000 + i));
    }
  }
}

TEST(JournalTest, DuplicatesCountedAndReplayedInOrder) {
  ScratchDir scratch("journal_dup");
  const std::string path = scratch.path("journal.wal");
  persist::JournalWriter writer;
  ASSERT_TRUE(writer.Open(path));
  writer.Append(Key(1, 1), 0.5);
  writer.Append(Key(2, 2), 0.25);
  writer.Append(Key(1, 1), 0.5);  // re-logged on a resume-of-resume
  ASSERT_TRUE(writer.Sync());
  writer.Close();
  persist::JournalReplay replay = persist::ReplayJournal(path);
  ASSERT_EQ(replay.entries.size(), 3u);
  EXPECT_EQ(replay.duplicates, 1u);
}

TEST(JournalTest, AppendAfterTornTailExtendsValidPrefix) {
  ScratchDir scratch("journal_tear");
  const std::string path = scratch.path("journal.wal");
  const std::string full = MakeJournal(path, 3);
  // Tear mid-record: half of record 2 survives.
  WriteRaw(path, full.substr(0, kHeaderBytes + 2 * kRecordBytes + 13));

  persist::JournalReplay replay;
  persist::JournalWriter writer;
  ASSERT_TRUE(writer.Open(path, &replay));
  EXPECT_TRUE(replay.corrupt_tail);
  ASSERT_EQ(replay.entries.size(), 2u);
  // Open() truncated the torn tail, so this append lands on a whole-
  // record boundary and is recoverable.
  writer.Append(Key(99, 99), 0.75);
  ASSERT_TRUE(writer.Sync());
  writer.Close();

  persist::JournalReplay after = persist::ReplayJournal(path);
  EXPECT_FALSE(after.corrupt_tail);
  ASSERT_EQ(after.entries.size(), 3u);
  EXPECT_EQ(after.entries[2].key, Key(99, 99));
}

TEST(JournalTest, BadHeaderTreatedAsEmptyAndRewrittenOnOpen) {
  ScratchDir scratch("journal_hdr");
  const std::string path = scratch.path("journal.wal");
  WriteRaw(path, "not a journal at all, definitely longer than a header");
  persist::JournalReplay replay;
  persist::JournalWriter writer;
  ASSERT_TRUE(writer.Open(path, &replay));
  EXPECT_TRUE(replay.bad_header);
  EXPECT_TRUE(replay.entries.empty());
  writer.Append(Key(7, 7), 1.0);
  ASSERT_TRUE(writer.Sync());
  writer.Close();
  persist::JournalReplay after = persist::ReplayJournal(path);
  EXPECT_FALSE(after.bad_header);
  ASSERT_EQ(after.entries.size(), 1u);
  EXPECT_EQ(after.entries[0].key, Key(7, 7));
}

TEST(JournalTest, CompactRewritesExactly) {
  ScratchDir scratch("journal_compact");
  const std::string path = scratch.path("journal.wal");
  MakeJournal(path, 4);
  std::vector<persist::JournalEntry> unique;
  unique.push_back({Key(1, 1001), 0.0});
  unique.push_back({Key(3, 1003), 0.02});
  ASSERT_TRUE(persist::CompactJournal(path, unique));
  persist::JournalReplay replay = persist::ReplayJournal(path);
  ASSERT_EQ(replay.entries.size(), 2u);
  EXPECT_EQ(replay.entries[0].key, Key(1, 1001));
  EXPECT_EQ(replay.entries[1].key, Key(3, 1003));
}

// ---------------------------------------------------------------------
// Checkpoint

persist::JobCheckpoint SampleCheckpoint() {
  persist::JobCheckpoint checkpoint;
  checkpoint.request.id = "job-0042";
  checkpoint.request.dataset = "BA";
  checkpoint.request.data_dir = "";  // empty string must round-trip
  checkpoint.request.model = "svm";
  checkpoint.request.pair_index = 3;
  checkpoint.request.triangles = 40;
  checkpoint.request.threads = 2;
  checkpoint.request.seed = 12345;
  checkpoint.request.use_cache = true;
  checkpoint.state = "parked";
  checkpoint.phase = "lattice";
  checkpoint.triangles_total = 40;
  checkpoint.triangles_tagged = 17;
  checkpoint.predictions_performed = 901;
  checkpoint.total_flips = 55;
  checkpoint.fresh_scores = 640;
  checkpoint.replayed_scores = 261;
  checkpoint.tagged_lattices = {"v1;l=3;p=4;f=1,3;t=1,2,4",
                                "v1;l=3;p=6;f=;t=1,2,3,4,5,6"};
  return checkpoint;
}

void ExpectCheckpointsEqual(const persist::JobCheckpoint& a,
                            const persist::JobCheckpoint& b) {
  EXPECT_EQ(a.request.id, b.request.id);
  EXPECT_EQ(a.request.dataset, b.request.dataset);
  EXPECT_EQ(a.request.data_dir, b.request.data_dir);
  EXPECT_EQ(a.request.model, b.request.model);
  EXPECT_EQ(a.request.pair_index, b.request.pair_index);
  EXPECT_EQ(a.request.triangles, b.request.triangles);
  EXPECT_EQ(a.request.threads, b.request.threads);
  EXPECT_EQ(a.request.seed, b.request.seed);
  EXPECT_EQ(a.request.use_cache, b.request.use_cache);
  EXPECT_EQ(a.state, b.state);
  EXPECT_EQ(a.phase, b.phase);
  EXPECT_EQ(a.triangles_total, b.triangles_total);
  EXPECT_EQ(a.triangles_tagged, b.triangles_tagged);
  EXPECT_EQ(a.predictions_performed, b.predictions_performed);
  EXPECT_EQ(a.total_flips, b.total_flips);
  EXPECT_EQ(a.fresh_scores, b.fresh_scores);
  EXPECT_EQ(a.replayed_scores, b.replayed_scores);
  EXPECT_EQ(a.tagged_lattices, b.tagged_lattices);
}

TEST(CheckpointTest, SerializeParseRoundTrip) {
  const persist::JobCheckpoint original = SampleCheckpoint();
  persist::JobCheckpoint parsed;
  ASSERT_TRUE(
      persist::ParseCheckpoint(persist::SerializeCheckpoint(original),
                               &parsed));
  ExpectCheckpointsEqual(original, parsed);
}

TEST(CheckpointTest, SaveLoadRoundTrip) {
  ScratchDir scratch("ckpt");
  const std::string path = scratch.path("checkpoint.ckpt");
  ASSERT_TRUE(persist::SaveCheckpoint(path, SampleCheckpoint()));
  persist::JobCheckpoint loaded;
  ASSERT_TRUE(persist::LoadCheckpoint(path, &loaded));
  ExpectCheckpointsEqual(SampleCheckpoint(), loaded);
}

TEST(CheckpointTest, EveryByteFlipRejected) {
  ScratchDir scratch("ckpt_flip");
  const std::string path = scratch.path("checkpoint.ckpt");
  ASSERT_TRUE(persist::SaveCheckpoint(path, SampleCheckpoint()));
  const std::string clean = ReadAll(path);
  persist::JobCheckpoint loaded;
  for (size_t byte = 0; byte < clean.size(); ++byte) {
    std::string corrupted = clean;
    corrupted[byte] = static_cast<char>(corrupted[byte] ^ 0x01);
    WriteRaw(path, corrupted);
    // A corrupt checkpoint must never be trusted — some flips are
    // syntax errors, the rest are CRC mismatches.
    EXPECT_FALSE(persist::LoadCheckpoint(path, &loaded)) << "byte " << byte;
  }
}

TEST(CheckpointTest, TruncationRejected) {
  ScratchDir scratch("ckpt_trunc");
  const std::string path = scratch.path("checkpoint.ckpt");
  ASSERT_TRUE(persist::SaveCheckpoint(path, SampleCheckpoint()));
  const std::string clean = ReadAll(path);
  persist::JobCheckpoint loaded;
  for (size_t len = 0; len < clean.size(); ++len) {
    WriteRaw(path, clean.substr(0, len));
    EXPECT_FALSE(persist::LoadCheckpoint(path, &loaded)) << "len " << len;
  }
  EXPECT_FALSE(persist::LoadCheckpoint(scratch.path("missing"), &loaded));
}

// ---------------------------------------------------------------------
// Lattice tag serialization

TEST(LatticeTagsTest, SerializeParseRoundTrip) {
  core::Lattice lattice(4);
  core::Lattice::TagResult tags = lattice.Tag(
      [](explain::AttrMask mask) { return (mask & 0b0011) != 0; },
      /*assume_monotone=*/true);
  const std::string serialized = lattice.SerializeTags(tags);
  core::Lattice::TagResult parsed;
  ASSERT_TRUE(lattice.ParseTags(serialized, &parsed));
  EXPECT_EQ(parsed.flip, tags.flip);
  EXPECT_EQ(parsed.tested, tags.tested);
  EXPECT_EQ(parsed.performed, tags.performed);
  EXPECT_EQ(parsed.total_flips, tags.total_flips);
  // Derived artefacts agree too.
  EXPECT_EQ(lattice.MinimalFlippingAntichain(parsed),
            lattice.MinimalFlippingAntichain(tags));
}

TEST(LatticeTagsTest, MalformedRejected) {
  core::Lattice lattice(3);
  core::Lattice::TagResult tags;
  EXPECT_FALSE(lattice.ParseTags("", &tags));
  EXPECT_FALSE(lattice.ParseTags("v2;l=3;p=0;f=;t=", &tags));
  EXPECT_FALSE(lattice.ParseTags("v1;l=4;p=0;f=;t=", &tags));  // wrong size
  EXPECT_FALSE(lattice.ParseTags("v1;l=3;p=0;f=9;t=", &tags));  // mask > full
  EXPECT_FALSE(lattice.ParseTags("v1;l=3;p=0;f=7;t=", &tags));  // full mask
  EXPECT_FALSE(lattice.ParseTags("v1;l=3;p=0;f=0;t=", &tags));  // empty mask
  EXPECT_FALSE(lattice.ParseTags("v1;l=3;p=zz;f=;t=", &tags));
}

// ---------------------------------------------------------------------
// Cache prewarming (the replay half of the journal contract)

TEST(PrewarmTest, ReplayedScoresSkipBaseModelButKeepCounters) {
  testing::FakeMatcher fake([](const data::Record& u, const data::Record& v) {
    return u.id == v.id ? 0.9 : 0.1;
  });
  data::Table table = testing::MakeTable("T", {"a"}, {{"x"}, {"y"}});
  const data::Record& r0 = table.record(0);
  const data::Record& r1 = table.record(1);

  // Uninterrupted run: two fresh scores, observer fires for each.
  std::vector<std::pair<models::PairKey, double>> journal;
  models::ScoringEngine::Options options;
  options.observer = [&](const models::PairKey& key, double score) {
    journal.emplace_back(key, score);
  };
  models::ScoringEngine first(&fake, options);
  const double s00 = first.Score(r0, r0);
  const double s01 = first.Score(r0, r1);
  EXPECT_EQ(journal.size(), 2u);
  EXPECT_EQ(fake.calls(), 2);
  const models::PredictionCache::Stats first_stats = first.cache_stats();

  // Resumed run: prewarm from the "journal", score the same pairs.
  fake.reset_calls();
  std::vector<std::pair<models::PairKey, double>> second_journal;
  models::ScoringEngine::Options resumed_options;
  resumed_options.observer = [&](const models::PairKey& key, double score) {
    second_journal.emplace_back(key, score);
  };
  models::ScoringEngine second(&fake, resumed_options);
  for (const auto& [key, score] : journal) second.Prewarm(key, score);
  EXPECT_DOUBLE_EQ(second.Score(r0, r0), s00);
  EXPECT_DOUBLE_EQ(second.Score(r0, r1), s01);
  // Zero base-model calls, zero re-journaled scores...
  EXPECT_EQ(fake.calls(), 0);
  EXPECT_TRUE(second_journal.empty());
  // ...and bit-identical cache accounting: the first touch of a
  // prewarmed entry counts as the miss it replaced.
  const models::PredictionCache::Stats second_stats = second.cache_stats();
  EXPECT_EQ(second_stats.hits, first_stats.hits);
  EXPECT_EQ(second_stats.misses, first_stats.misses);

  // Second touches are plain hits in both worlds.
  (void)first.Score(r0, r0);
  (void)second.Score(r0, r0);
  EXPECT_EQ(second.cache_stats().hits, first.cache_stats().hits);
}

TEST(PrewarmTest, PrewarmNeverOverwritesComputedScore) {
  testing::FakeMatcher fake(
      [](const data::Record&, const data::Record&) { return 0.42; });
  data::Table table = testing::MakeTable("T", {"a"}, {{"x"}});
  const data::Record& r0 = table.record(0);
  models::ScoringEngine engine(&fake);
  const double computed = engine.Score(r0, r0);
  engine.Prewarm(models::HashPair(r0, r0), 0.99);  // stale/bogus replay
  EXPECT_DOUBLE_EQ(engine.Score(r0, r0), computed);
}

// ---------------------------------------------------------------------
// In-process durable runs: cancel at many points, resume, compare.

service::JobSpec SmallJob() {
  service::JobSpec spec;
  spec.id = "t";
  spec.dataset = "AB";
  spec.model = "svm";
  spec.pair_index = 0;
  spec.triangles = 10;
  return spec;
}

TEST(DurableRunTest, FreshThenNoOpResume) {
  ScratchDir scratch("durable_fresh");
  service::DurableRunOptions options;
  options.checkpoint_every = 4;
  service::JobOutcome first =
      service::RunDurableExplain(SmallJob(), scratch.dir(), options);
  ASSERT_EQ(first.state, service::JobState::kComplete) << first.error;
  EXPECT_FALSE(first.resumed);
  EXPECT_GT(first.fresh_scores, 0);
  EXPECT_EQ(ReadAll(persist::ResultPathInDir(scratch.dir())),
            first.result_json);

  service::JobOutcome second =
      service::RunDurableExplain(SmallJob(), scratch.dir(), options);
  ASSERT_EQ(second.state, service::JobState::kComplete) << second.error;
  EXPECT_TRUE(second.resumed);
  // All paid work replayed; the re-run is free and bit-identical.
  EXPECT_EQ(second.replayed_scores, first.fresh_scores);
  EXPECT_EQ(second.fresh_scores, 0);
  EXPECT_EQ(second.result_json, first.result_json);
}

TEST(DurableRunTest, CancelAtManyPointsThenResumeBitIdentical) {
  ScratchDir reference_dir("durable_ref");
  service::DurableRunOptions reference_options;
  service::JobOutcome reference = service::RunDurableExplain(
      SmallJob(), reference_dir.dir(), reference_options);
  ASSERT_EQ(reference.state, service::JobState::kComplete)
      << reference.error;

  // Park the run after k heartbeats — k sweeps early (mid-triangles)
  // through late (mid-counterfactuals) interruption points.
  for (int k : {1, 5, 15, 30, 60}) {
    ScratchDir scratch("durable_cancel_" + std::to_string(k));
    std::atomic<bool> cancel{false};
    int beats = 0;
    service::DurableRunOptions options;
    options.checkpoint_every = 3;
    options.cancel = &cancel;
    options.heartbeat = [&] {
      if (++beats >= k) cancel.store(true);
    };
    service::JobOutcome parked =
        service::RunDurableExplain(SmallJob(), scratch.dir(), options);
    ASSERT_EQ(parked.state, service::JobState::kParked) << "k=" << k;

    service::DurableRunOptions resume_options;
    service::JobOutcome resumed =
        service::RunDurableExplain(SmallJob(), scratch.dir(), resume_options);
    ASSERT_EQ(resumed.state, service::JobState::kComplete)
        << "k=" << k << ": " << resumed.error;
    EXPECT_EQ(resumed.result_json, reference.result_json) << "k=" << k;
    // The resumed run paid strictly less than the whole job.
    EXPECT_LT(resumed.fresh_scores, reference.fresh_scores) << "k=" << k;
    EXPECT_EQ(resumed.replayed_scores + resumed.fresh_scores,
              reference.fresh_scores)
        << "k=" << k;
  }
}

TEST(DurableRunTest, EveryMatcherResumesBitIdentical) {
  for (const std::string& model :
       {std::string("deeper"), std::string("deepmatcher"),
        std::string("ditto"), std::string("svm")}) {
    service::JobSpec spec = SmallJob();
    spec.model = model;

    ScratchDir reference_dir("matcher_ref_" + model);
    service::JobOutcome reference = service::RunDurableExplain(
        spec, reference_dir.dir(), service::DurableRunOptions());
    ASSERT_EQ(reference.state, service::JobState::kComplete)
        << model << ": " << reference.error;

    ScratchDir scratch("matcher_kill_" + model);
    std::atomic<bool> cancel{false};
    int beats = 0;
    service::DurableRunOptions options;
    options.checkpoint_every = 4;
    options.cancel = &cancel;
    options.heartbeat = [&] {
      if (++beats >= 12) cancel.store(true);
    };
    ASSERT_EQ(service::RunDurableExplain(spec, scratch.dir(), options).state,
              service::JobState::kParked)
        << model;
    service::JobOutcome resumed = service::RunDurableExplain(
        spec, scratch.dir(), service::DurableRunOptions());
    ASSERT_EQ(resumed.state, service::JobState::kComplete)
        << model << ": " << resumed.error;
    EXPECT_EQ(resumed.result_json, reference.result_json) << model;
    EXPECT_GT(resumed.replayed_scores, 0) << model;
    EXPECT_LT(resumed.fresh_scores, reference.fresh_scores) << model;
  }
}

TEST(DurableRunTest, ResumeAfterJournalTailCorruptionStillBitIdentical) {
  ScratchDir reference_dir("durable_corrupt_ref");
  service::JobOutcome reference = service::RunDurableExplain(
      SmallJob(), reference_dir.dir(), service::DurableRunOptions());
  ASSERT_EQ(reference.state, service::JobState::kComplete);

  ScratchDir scratch("durable_corrupt");
  std::atomic<bool> cancel{false};
  int beats = 0;
  service::DurableRunOptions options;
  options.checkpoint_every = 2;
  options.cancel = &cancel;
  options.heartbeat = [&] {
    if (++beats >= 20) cancel.store(true);
  };
  ASSERT_EQ(service::RunDurableExplain(SmallJob(), scratch.dir(), options)
                .state,
            service::JobState::kParked);

  // Simulate a torn final write: chop the journal mid-record.
  const std::string journal_path =
      persist::JournalPathInDir(scratch.dir());
  std::string bytes = ReadAll(journal_path);
  ASSERT_GT(bytes.size(), kHeaderBytes + kRecordBytes);
  WriteRaw(journal_path, bytes.substr(0, bytes.size() - 9));

  service::JobOutcome resumed = service::RunDurableExplain(
      SmallJob(), scratch.dir(), service::DurableRunOptions());
  ASSERT_EQ(resumed.state, service::JobState::kComplete) << resumed.error;
  EXPECT_EQ(resumed.result_json, reference.result_json);
}

TEST(DurableRunTest, BadSpecFailsCleanly) {
  ScratchDir scratch("durable_bad");
  service::JobSpec bad = SmallJob();
  bad.dataset = "ZZ";
  EXPECT_EQ(service::RunDurableExplain(bad, scratch.dir(),
                                       service::DurableRunOptions())
                .state,
            service::JobState::kFailed);
  bad = SmallJob();
  bad.pair_index = 1 << 20;
  EXPECT_EQ(service::RunDurableExplain(bad, scratch.dir(),
                                       service::DurableRunOptions())
                .state,
            service::JobState::kFailed);
  bad = SmallJob();
  bad.model = "gpt";
  EXPECT_EQ(service::RunDurableExplain(bad, scratch.dir(),
                                       service::DurableRunOptions())
                .state,
            service::JobState::kFailed);
}

// ---------------------------------------------------------------------
// Job runner: admission control, shedding, watchdog, shutdown.

TEST(JobRunnerTest, RunsJobsAndCounts) {
  ScratchDir scratch("runner_basic");
  service::JobRunnerOptions options;
  options.job_root = scratch.dir();
  options.workers = 2;
  options.queue_capacity = 8;
  service::JobRunner runner(options);
  for (int i = 0; i < 3; ++i) {
    service::JobSpec spec = SmallJob();
    spec.id = "";
    spec.pair_index = i;
    service::JobRunner::SubmitResult submitted = runner.Submit(spec);
    ASSERT_TRUE(submitted.accepted) << submitted.reason;
    EXPECT_FALSE(submitted.job_id.empty());
  }
  runner.Wait();
  service::JobRunner::Counters counters = runner.counters();
  EXPECT_EQ(counters.accepted, 3);
  EXPECT_EQ(counters.completed, 3);
  for (const service::JobOutcome& outcome : runner.outcomes()) {
    EXPECT_EQ(outcome.state, service::JobState::kComplete) << outcome.error;
    EXPECT_TRUE(util::PathExists(persist::ResultPathInDir(outcome.job_dir)));
  }
}

TEST(JobRunnerTest, FullQueueShedsNewJobs) {
  ScratchDir scratch("runner_shed");
  service::JobRunnerOptions options;
  options.job_root = scratch.dir();
  options.workers = 1;
  options.queue_capacity = 1;
  service::JobRunner runner(options);
  // Burst-submit: with one busy worker and one queue slot, the burst
  // must shed — and shedding is reject-new, never degrade-running.
  int accepted = 0, rejected = 0;
  for (int i = 0; i < 8; ++i) {
    service::JobSpec spec = SmallJob();
    spec.id = "burst-" + std::to_string(i);
    service::JobRunner::SubmitResult submitted = runner.Submit(spec);
    if (submitted.accepted) {
      ++accepted;
    } else {
      ++rejected;
      EXPECT_NE(submitted.reason.find("queue full"), std::string::npos);
    }
  }
  EXPECT_GE(accepted, 1);
  EXPECT_GE(rejected, 1);
  runner.Wait();
  // Every accepted job still ran to completion.
  EXPECT_EQ(runner.counters().completed, accepted);
}

TEST(JobRunnerTest, WatchdogParksDeadlineOverrun) {
  ScratchDir scratch("runner_deadline");
  service::JobRunnerOptions options;
  options.job_root = scratch.dir();
  options.watchdog_poll_ms = 2;
  service::JobRunner runner(options);
  service::JobSpec spec = SmallJob();
  spec.id = "late";
  spec.triangles = 400;  // big enough to overrun a 1ms deadline
  spec.deadline_ms = 1;
  ASSERT_TRUE(runner.Submit(spec).accepted);
  runner.Wait();
  std::vector<service::JobOutcome> outcomes = runner.outcomes();
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_EQ(outcomes[0].state, service::JobState::kParked);
  // Parked ≠ lost: the job dir resumes to a complete result.
  service::JobOutcome resumed = service::RunDurableExplain(
      spec, outcomes[0].job_dir, service::DurableRunOptions());
  EXPECT_EQ(resumed.state, service::JobState::kComplete) << resumed.error;
}

TEST(JobRunnerTest, NonDrainShutdownParksEverythingResumably) {
  ScratchDir scratch("runner_shutdown");
  service::JobRunnerOptions options;
  options.job_root = scratch.dir();
  options.workers = 1;
  options.queue_capacity = 4;
  service::JobRunner runner(options);
  std::vector<service::JobSpec> specs;
  for (int i = 0; i < 3; ++i) {
    service::JobSpec spec = SmallJob();
    spec.id = "shut-" + std::to_string(i);
    spec.triangles = 200;
    specs.push_back(spec);
    ASSERT_TRUE(runner.Submit(spec).accepted);
  }
  runner.Shutdown(/*drain=*/false);
  EXPECT_FALSE(runner.Submit(SmallJob()).accepted);  // admission closed
  EXPECT_GT(runner.counters().rejected_closed, 0);
  // Every admitted job has a terminal outcome and a resumable trail.
  std::vector<service::JobOutcome> outcomes = runner.outcomes();
  ASSERT_EQ(outcomes.size(), specs.size());
  for (const service::JobOutcome& outcome : outcomes) {
    if (outcome.state == service::JobState::kComplete) continue;
    EXPECT_EQ(outcome.state, service::JobState::kParked);
    persist::JobCheckpoint checkpoint;
    ASSERT_TRUE(persist::LoadCheckpoint(
        persist::CheckpointPathInDir(outcome.job_dir), &checkpoint))
        << outcome.job_dir;
    service::JobOutcome resumed = service::RunDurableExplain(
        service::SpecFromCheckpoint(checkpoint), outcome.job_dir,
        service::DurableRunOptions());
    EXPECT_EQ(resumed.state, service::JobState::kComplete) << resumed.error;
  }
}

}  // namespace
}  // namespace certa
