// Known-answer and property tests for util::Crc32 — the one checksum
// implementation shared by the write-ahead journal, the checkpoint
// format, and the cross-job score store (docs/PERSISTENCE.md). The
// durability suites already fuzz CRC *behaviour* in situ; this file
// pins the *algorithm* (CRC-32/ISO-HDLC, reflected 0xEDB88320) against
// published vectors, so a silent table or finalization change cannot
// re-key every store on disk without a test going red.

#include "util/crc32.h"

#include <cstdint>
#include <random>
#include <string>

#include <gtest/gtest.h>

namespace certa::util {
namespace {

TEST(Crc32KatTest, PublishedVectors) {
  // The catalogue "check" value plus single-char and short strings,
  // all from the CRC-32/ISO-HDLC reference (RFC 1952 / zlib crc32).
  EXPECT_EQ(Crc32(""), 0u);
  EXPECT_EQ(Crc32("a"), 0xE8B7BE43u);
  EXPECT_EQ(Crc32("abc"), 0x352441C2u);
  EXPECT_EQ(Crc32("message digest"), 0x20159D7Fu);
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32("The quick brown fox jumps over the lazy dog"),
            0x414FA339u);
}

TEST(Crc32KatTest, OverloadsAgree) {
  const std::string payload = "score store payload \x00\x01\xFF";
  EXPECT_EQ(Crc32(payload), Crc32(payload.data(), payload.size()));
  EXPECT_EQ(Crc32(payload), Crc32Update(0, payload.data(), payload.size()));
}

TEST(Crc32KatTest, EmbeddedNulBytesAreSignificant) {
  // Store records are raw structs; a stray zero fill must change the
  // checksum, not vanish into a string terminator.
  const std::string with_nul("ab\0cd", 5);
  const std::string without("abcd", 4);
  EXPECT_NE(Crc32(with_nul), Crc32(without));
  EXPECT_NE(Crc32(std::string(4, '\0')), Crc32(std::string(5, '\0')));
}

TEST(Crc32KatTest, UpdateChainsMatchOneShotAtEverySplit) {
  const std::string payload =
      "segment-000001.seg: uint64 scope | uint64 lo | uint64 hi | "
      "double score";
  const uint32_t expected = Crc32(payload);
  for (size_t split = 0; split <= payload.size(); ++split) {
    uint32_t crc = Crc32Update(0, payload.data(), split);
    crc = Crc32Update(crc, payload.data() + split, payload.size() - split);
    EXPECT_EQ(crc, expected) << "split at " << split;
  }
}

TEST(Crc32KatTest, ThreeWayChainOnRandomPayloads) {
  std::mt19937 rng(20240807);
  for (int round = 0; round < 50; ++round) {
    std::string payload(1 + rng() % 256, '\0');
    for (char& c : payload) c = static_cast<char>(rng());
    const size_t a = rng() % (payload.size() + 1);
    const size_t b = a + rng() % (payload.size() - a + 1);
    uint32_t crc = Crc32Update(0, payload.data(), a);
    crc = Crc32Update(crc, payload.data() + a, b - a);
    crc = Crc32Update(crc, payload.data() + b, payload.size() - b);
    EXPECT_EQ(crc, Crc32(payload));
  }
}

TEST(Crc32KatTest, SingleBitFlipsOn36ByteRecordsAlwaysDetected) {
  // Exhaustive over a score-store-record-sized buffer: CRC-32 detects
  // every single-bit error (burst errors <= 32 bits, in fact).
  std::string record(36, '\0');
  std::mt19937 rng(7);
  for (char& c : record) c = static_cast<char>(rng());
  const uint32_t clean = Crc32(record);
  for (size_t bit = 0; bit < record.size() * 8; ++bit) {
    std::string flipped = record;
    flipped[bit / 8] = static_cast<char>(flipped[bit / 8] ^ (1 << (bit % 8)));
    EXPECT_NE(Crc32(flipped), clean) << "bit " << bit;
  }
}

}  // namespace
}  // namespace certa::util
