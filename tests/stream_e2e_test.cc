// Streaming end-to-end through the real binaries (label: stream):
// `certa serve --listen --stream-dir` on one side, `certa_client`
// upsert/remove/match/result on the other. Pins the ISSUE's acceptance
// criteria directly:
//   - an explained-then-upserted job is flagged stale and its recompute
//     produces byte-identical results to a fresh run over the same
//     mutated records;
//   - SIGKILL mid-stream loses zero acked upserts — the WAL fsync
//     happens before the ack frame leaves the server;
//   - a worker fleet shares one stream directory: an upsert acked by
//     any worker is immediately matchable through every worker.

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "data/benchmarks.h"
#include "data/dataset.h"

#ifndef CERTA_CLI_PATH
#error "CERTA_CLI_PATH must be defined to the certa CLI binary path"
#endif
#ifndef CERTA_CLIENT_PATH
#error "CERTA_CLIENT_PATH must be defined to the certa_client binary path"
#endif

namespace certa {
namespace {

namespace fs = std::filesystem;

fs::path Scratch(const std::string& tag) {
  fs::path dir =
      fs::temp_directory_path() /
      ("certa_stream_e2e_" + tag + "_" + std::to_string(::getpid()));
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::string ReadAll(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

std::string Chomp(std::string text) {
  while (!text.empty() && (text.back() == '\n' || text.back() == '\r')) {
    text.pop_back();
  }
  return text;
}

int RunShell(const std::string& command, std::string* output) {
  FILE* pipe = ::popen((command + " 2>&1").c_str(), "r");
  if (pipe == nullptr) return -1;
  output->clear();
  char buffer[4096];
  size_t n = 0;
  while ((n = ::fread(buffer, 1, sizeof(buffer), pipe)) > 0) {
    output->append(buffer, n);
  }
  const int status = ::pclose(pipe);
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

pid_t SpawnServer(const std::vector<std::string>& args,
                  const fs::path& log) {
  pid_t pid = fork();
  if (pid != 0) return pid;
  std::freopen("/dev/null", "r", stdin);
  FILE* out = std::freopen(log.string().c_str(), "w", stdout);
  if (out != nullptr) dup2(fileno(stdout), fileno(stderr));
  std::vector<char*> argv;
  std::string binary = CERTA_CLI_PATH;
  argv.push_back(binary.data());
  std::string serve = "serve";
  argv.push_back(serve.data());
  std::vector<std::string> owned = args;
  for (std::string& arg : owned) argv.push_back(arg.data());
  argv.push_back(nullptr);
  execv(CERTA_CLI_PATH, argv.data());
  _exit(127);
}

int WaitForPort(const fs::path& log) {
  for (int attempt = 0; attempt < 400; ++attempt) {
    const std::string text = ReadAll(log);
    const size_t at = text.find("LISTENING ");
    if (at != std::string::npos) {
      const size_t colon = text.find(':', at);
      const size_t end = text.find('\n', at);
      if (colon != std::string::npos && end != std::string::npos) {
        return std::stoi(text.substr(colon + 1, end - colon - 1));
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
  }
  return 0;
}

int StopServer(pid_t pid, int sig) {
  kill(pid, sig);
  int status = 0;
  if (waitpid(pid, &status, 0) != pid) return -1;
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

std::string ClientCmd(int port, const std::string& rest) {
  return std::string(CERTA_CLIENT_PATH) + " " + rest + " --port " +
         std::to_string(port);
}

/// Values flag for a record whose every attribute is `token <i>` —
/// schema-arity correct for the benchmark, trivially shell-safe.
std::string ValuesFlag(int attributes, const std::string& token) {
  std::string values;
  for (int i = 0; i < attributes; ++i) {
    if (i > 0) values += "|";
    values += token;
  }
  return "--values '" + values + "'";
}

TEST(StreamE2eTest, StaleRecomputeMatchesFreshRunByteForByte) {
  const data::Dataset base = data::MakeBenchmark("AB");
  const data::LabeledPair& pair = base.test[0];
  const int left_id = base.left.record(pair.left_index).id;
  const int attributes = base.left.schema().size();
  const std::string upsert_args =
      "upsert --dataset AB --side left --record " + std::to_string(left_id) +
      " " + ValuesFlag(attributes, "drifted attribute value");

  // Server A: explain first, then mutate, then refetch — the stale
  // recompute path.
  const fs::path root_a = Scratch("stale_a");
  const fs::path log_a = root_a / "server.log";
  pid_t server_a = SpawnServer(
      {"--listen", "0", "--job-root", (root_a / "jobs").string(),
       "--stream-dir", (root_a / "stream").string(), "--workers", "1"},
      log_a);
  ASSERT_GT(server_a, 0);
  const int port_a = WaitForPort(log_a);
  ASSERT_GT(port_a, 0) << ReadAll(log_a);

  std::string output;
  ASSERT_EQ(RunShell(ClientCmd(port_a,
                               "submit --id live --dataset AB --model svm "
                               "--pair 0 --triangles 20"),
                     &output),
            0)
      << output;
  ASSERT_NE(output.find("\"type\":\"result\""), std::string::npos) << output;

  ASSERT_EQ(RunShell(ClientCmd(port_a, upsert_args), &output), 0) << output;
  ASSERT_NE(output.find("\"type\":\"upserted\""), std::string::npos)
      << output;

  // The client's `result` rides out stale_recomputing by polling status
  // and prints the recomputed result.
  ASSERT_EQ(RunShell(ClientCmd(port_a, "result --job live"), &output), 0)
      << output;
  EXPECT_NE(output.find("\"type\":\"result\""), std::string::npos) << output;
  EXPECT_NE(output.find("stale"), std::string::npos)
      << "expected the stale notice on stderr: " << output;

  // Server B: the same mutation applied BEFORE the job ever runs — a
  // fresh batch run over the mutated records.
  const fs::path root_b = Scratch("stale_b");
  const fs::path log_b = root_b / "server.log";
  pid_t server_b = SpawnServer(
      {"--listen", "0", "--job-root", (root_b / "jobs").string(),
       "--stream-dir", (root_b / "stream").string(), "--workers", "1"},
      log_b);
  ASSERT_GT(server_b, 0);
  const int port_b = WaitForPort(log_b);
  ASSERT_GT(port_b, 0) << ReadAll(log_b);

  ASSERT_EQ(RunShell(ClientCmd(port_b, upsert_args), &output), 0) << output;
  ASSERT_EQ(RunShell(ClientCmd(port_b,
                               "submit --id live --dataset AB --model svm "
                               "--pair 0 --triangles 20"),
                     &output),
            0)
      << output;

  // Single-process serve exits kInterruptedExitCode (3) on SIGTERM.
  EXPECT_EQ(StopServer(server_a, SIGTERM), 3) << ReadAll(log_a);
  EXPECT_EQ(StopServer(server_b, SIGTERM), 3) << ReadAll(log_b);

  const std::string recomputed =
      ReadAll(root_a / "jobs" / "live" / "result.json");
  const std::string fresh = ReadAll(root_b / "jobs" / "live" / "result.json");
  ASSERT_FALSE(recomputed.empty());
  ASSERT_FALSE(fresh.empty());
  // The acceptance criterion: recompute-after-mutation equals a fresh
  // run over the same mutated records, byte for byte.
  EXPECT_EQ(Chomp(recomputed), Chomp(fresh));
}

TEST(StreamE2eTest, SigkillLosesNoAckedUpsert) {
  const data::Dataset base = data::MakeBenchmark("AB");
  const int attributes = base.left.schema().size();
  const fs::path root = Scratch("sigkill");
  const fs::path log = root / "server.log";
  const std::vector<std::string> serve_args = {
      "--listen",     "0",
      "--job-root",   (root / "jobs").string(),
      "--stream-dir", (root / "stream").string(),
      "--workers",    "1"};
  pid_t server = SpawnServer(serve_args, log);
  ASSERT_GT(server, 0);
  const int port = WaitForPort(log);
  ASSERT_GT(port, 0) << ReadAll(log);

  // Ack a batch of upserts, each with a unique probe token. Every one
  // of these was fsync'd to the WAL before its ack frame went out.
  constexpr int kRecords = 20;
  std::string output;
  for (int i = 0; i < kRecords; ++i) {
    const std::string token = "sigkilltok" + std::to_string(i);
    ASSERT_EQ(RunShell(ClientCmd(
                           port, "upsert --dataset AB --side left --record " +
                                     std::to_string(910000 + i) + " " +
                                     ValuesFlag(attributes, token)),
                       &output),
              0)
        << output;
    ASSERT_NE(output.find("\"type\":\"upserted\""), std::string::npos)
        << output;
  }

  // SIGKILL: no drain, no final checkpoint, no flushed state beyond the
  // WAL itself.
  ASSERT_EQ(kill(server, SIGKILL), 0);
  int status = 0;
  ASSERT_EQ(waitpid(server, &status, 0), server);
  ASSERT_TRUE(WIFSIGNALED(status));

  // Restart over the same directories: recovery replays the WAL tail.
  const fs::path log2 = root / "server2.log";
  pid_t server2 = SpawnServer(serve_args, log2);
  ASSERT_GT(server2, 0);
  const int port2 = WaitForPort(log2);
  ASSERT_GT(port2, 0) << ReadAll(log2);

  // Every acked record is still matchable — zero lost upserts.
  for (int i = 0; i < kRecords; ++i) {
    const std::string token = "sigkilltok" + std::to_string(i);
    ASSERT_EQ(RunShell(ClientCmd(port2,
                                 "match --dataset AB --side left --values '" +
                                     token + "' --top-k 3"),
                       &output),
              0)
        << output;
    EXPECT_NE(output.find("\"id\":" + std::to_string(910000 + i)),
              std::string::npos)
        << "acked upsert " << i << " lost after SIGKILL: " << output;
  }
  // Single-process serve exits kInterruptedExitCode (3) on SIGTERM.
  EXPECT_EQ(StopServer(server2, SIGTERM), 3) << ReadAll(log2);
}

TEST(StreamE2eTest, FleetSharesOneStreamDirectory) {
  const data::Dataset base = data::MakeBenchmark("AB");
  const int attributes = base.left.schema().size();
  const fs::path root = Scratch("fleet");
  const fs::path log = root / "server.log";
  pid_t server = SpawnServer(
      {"--listen", "0", "--job-root", (root / "jobs").string(),
       "--stream-dir", (root / "stream").string(), "--workers", "2"},
      log);
  ASSERT_GT(server, 0);
  const int port = WaitForPort(log);
  ASSERT_GT(port, 0) << ReadAll(log);

  // The fleet advertises itself in the ping capabilities.
  std::string output;
  ASSERT_EQ(RunShell(ClientCmd(port, "ping"), &output), 0) << output;
  EXPECT_NE(output.find("\"workers\":2"), std::string::npos) << output;
  EXPECT_NE(output.find("\"streaming\":true"), std::string::npos) << output;

  // Each upsert lands on whichever worker the kernel picks; each match
  // absorbs sibling streams before answering, so an acked upsert is
  // matchable through EVERY worker immediately — no retry loop needed.
  constexpr int kRecords = 12;
  for (int i = 0; i < kRecords; ++i) {
    const std::string token = "fleettok" + std::to_string(i);
    ASSERT_EQ(RunShell(ClientCmd(
                           port, "upsert --dataset AB --side right --record " +
                                     std::to_string(920000 + i) + " " +
                                     ValuesFlag(attributes, token)),
                       &output),
              0)
        << output;
    ASSERT_NE(output.find("\"type\":\"upserted\""), std::string::npos)
        << output;
    ASSERT_EQ(
        RunShell(ClientCmd(port,
                           "match --dataset AB --side right --values '" +
                               token + "' --top-k 3"),
                 &output),
        0)
        << output;
    EXPECT_NE(output.find("\"id\":" + std::to_string(920000 + i)),
              std::string::npos)
        << "upsert " << i << " not visible fleet-wide: " << output;
  }
  EXPECT_EQ(StopServer(server, SIGTERM), 0) << ReadAll(log);
}

}  // namespace
}  // namespace certa
