#include <gtest/gtest.h>

#include "eval/validity.h"
#include "explain/anchors.h"
#include "test_util.h"
#include "text/tokenizer.h"

namespace certa {
namespace {

using certa::testing::FakeMatcher;
using certa::testing::MakeRecord;
using certa::testing::MakeTable;

/// Model: match iff left attribute 0 equals right attribute 0 and both
/// are present; the other attributes are noise.
FakeMatcher::ScoreFn KeyModel() {
  return [](const data::Record& u, const data::Record& v) {
    return (!text::IsMissing(u.value(0)) && u.value(0) == v.value(0))
               ? 0.9
               : 0.1;
  };
}

struct Fixture {
  data::Table left = MakeTable("U", {"key", "noise"},
                               {{"k1", "n1"}, {"k2", "n2"}, {"k3", "n3"}});
  data::Table right = MakeTable("V", {"key", "noise"},
                                {{"k1", "m1"}, {"k2", "m2"}, {"k9", "m3"}});
  FakeMatcher model{KeyModel()};
  explain::ExplainContext context{&model, &left, &right};
};

TEST(AnchorsTest, AnchorsTheDecisiveAttributes) {
  Fixture fixture;
  explain::AnchorsExplainer anchors(fixture.context);
  // (k1, k1) is a Match: stability requires holding BOTH key attributes
  // (perturbing either breaks equality).
  explain::AnchorExplanation anchor = anchors.ExplainAnchor(
      fixture.left.record(0), fixture.right.record(0));
  EXPECT_GE(anchor.precision, 0.9);
  ASSERT_GE(anchor.anchor.size(), 2u);
  bool has_left_key = false;
  bool has_right_key = false;
  for (const explain::AttributeRef& ref : anchor.anchor) {
    if (ref.index == 0 && ref.side == data::Side::kLeft) {
      has_left_key = true;
    }
    if (ref.index == 0 && ref.side == data::Side::kRight) {
      has_right_key = true;
    }
  }
  EXPECT_TRUE(has_left_key);
  EXPECT_TRUE(has_right_key);
}

TEST(AnchorsTest, StablePredictionNeedsNoAnchor) {
  // A constant model is already maximally stable: the anchor is empty.
  data::Table left = MakeTable("U", {"a"}, {{"x"}});
  data::Table right = MakeTable("V", {"a"}, {{"y"}});
  FakeMatcher model(
      [](const data::Record&, const data::Record&) { return 0.9; });
  explain::ExplainContext context{&model, &left, &right};
  explain::AnchorsExplainer anchors(context);
  explain::AnchorExplanation anchor =
      anchors.ExplainAnchor(left.record(0), right.record(0));
  EXPECT_TRUE(anchor.anchor.empty());
  EXPECT_DOUBLE_EQ(anchor.precision, 1.0);
}

TEST(AnchorsTest, SaliencyAdapterScoresByInsertionOrder) {
  Fixture fixture;
  explain::AnchorsExplainer anchors(fixture.context);
  explain::SaliencyExplanation saliency = anchors.ExplainSaliency(
      fixture.left.record(0), fixture.right.record(0));
  // The anchored attributes outrank non-anchored ones.
  auto ranked = saliency.Ranked();
  EXPECT_EQ(ranked[0].index, 0);  // a key attribute comes first
  EXPECT_GT(saliency.score(ranked[0]), 0.0);
  EXPECT_EQ(anchors.name(), "Anchors");
}

TEST(AnchorsTest, Deterministic) {
  Fixture fixture;
  explain::AnchorsExplainer anchors(fixture.context);
  auto a = anchors.ExplainAnchor(fixture.left.record(0),
                                 fixture.right.record(0));
  auto b = anchors.ExplainAnchor(fixture.left.record(0),
                                 fixture.right.record(0));
  EXPECT_EQ(a.anchor.size(), b.anchor.size());
  EXPECT_DOUBLE_EQ(a.precision, b.precision);
}

TEST(ValidityTest, CountsActualFlips) {
  Fixture fixture;
  const data::Record& u = fixture.left.record(0);
  const data::Record& v = fixture.right.record(0);  // match

  explain::CounterfactualExample flipping;
  flipping.left = MakeRecord(0, {"zzz", "n1"});
  flipping.right = v;
  explain::CounterfactualExample not_flipping;
  not_flipping.left = u;
  not_flipping.right = v;

  EXPECT_DOUBLE_EQ(
      eval::Validity(fixture.model, {flipping, not_flipping}, u, v), 0.5);
  EXPECT_DOUBLE_EQ(eval::Validity(fixture.model, {flipping}, u, v), 1.0);
  EXPECT_DOUBLE_EQ(eval::Validity(fixture.model, {}, u, v), 1.0);
}

TEST(ValidityAggregatorTest, PoolsAcrossInputs) {
  Fixture fixture;
  const data::Record& u = fixture.left.record(0);
  const data::Record& v = fixture.right.record(0);
  explain::CounterfactualExample flipping;
  flipping.left = MakeRecord(0, {"zzz", "n1"});
  flipping.right = v;
  explain::CounterfactualExample not_flipping;
  not_flipping.left = u;
  not_flipping.right = v;

  eval::ValidityAggregator aggregator;
  aggregator.Add(fixture.model, {flipping}, u, v);
  aggregator.Add(fixture.model, {not_flipping, not_flipping}, u, v);
  EXPECT_EQ(aggregator.example_count(), 3);
  EXPECT_NEAR(aggregator.Result(), 1.0 / 3.0, 1e-12);
}

}  // namespace
}  // namespace certa
