#include "text/similarity.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace certa::text {
namespace {

TEST(LevenshteinTest, KnownDistances) {
  EXPECT_EQ(LevenshteinDistance("kitten", "sitting"), 3);
  EXPECT_EQ(LevenshteinDistance("", ""), 0);
  EXPECT_EQ(LevenshteinDistance("abc", ""), 3);
  EXPECT_EQ(LevenshteinDistance("", "abc"), 3);
  EXPECT_EQ(LevenshteinDistance("abc", "abc"), 0);
  EXPECT_EQ(LevenshteinDistance("abc", "abd"), 1);
}

TEST(LevenshteinTest, SymmetricAndBounded) {
  EXPECT_EQ(LevenshteinDistance("sony", "snoy"),
            LevenshteinDistance("snoy", "sony"));
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("abc", "abc"), 1.0);
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("abc", "xyz"), 0.0);
}

TEST(JaroTest, KnownValues) {
  EXPECT_DOUBLE_EQ(JaroSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity("abc", ""), 0.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity("abc", "abc"), 1.0);
  // Classic textbook value: JARO(martha, marhta) = 0.944...
  EXPECT_NEAR(JaroSimilarity("martha", "marhta"), 0.9444, 1e-3);
}

TEST(JaroWinklerTest, PrefixBoost) {
  double jaro = JaroSimilarity("prefixend", "prefixxyz");
  double jw = JaroWinklerSimilarity("prefixend", "prefixxyz");
  EXPECT_GT(jw, jaro);
  EXPECT_LE(jw, 1.0);
  // Textbook: JW(dwayne, duane) ~ 0.84.
  EXPECT_NEAR(JaroWinklerSimilarity("dwayne", "duane"), 0.84, 0.01);
}

TEST(JaccardTest, SetSemantics) {
  std::vector<std::string> a = {"x", "y", "y"};
  std::vector<std::string> b = {"y", "z"};
  // Sets {x,y} and {y,z}: intersection 1, union 3.
  EXPECT_NEAR(JaccardSimilarity(a, b), 1.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(JaccardSimilarity({}, {}), 1.0);
  EXPECT_DOUBLE_EQ(JaccardSimilarity(a, {}), 0.0);
  EXPECT_DOUBLE_EQ(JaccardSimilarity(a, a), 1.0);
}

TEST(OverlapTest, MinNormalization) {
  std::vector<std::string> small = {"a"};
  std::vector<std::string> large = {"a", "b", "c", "d"};
  EXPECT_DOUBLE_EQ(OverlapCoefficient(small, large), 1.0);
  EXPECT_DOUBLE_EQ(OverlapCoefficient({}, large), 0.0);
  EXPECT_DOUBLE_EQ(OverlapCoefficient({}, {}), 1.0);
}

TEST(DiceTest, KnownValue) {
  std::vector<std::string> a = {"a", "b"};
  std::vector<std::string> b = {"b", "c"};
  EXPECT_NEAR(DiceCoefficient(a, b), 0.5, 1e-12);
}

TEST(CosineTest, OrthogonalAndParallel) {
  std::vector<std::string> a = {"x", "y"};
  std::vector<std::string> b = {"z", "w"};
  EXPECT_DOUBLE_EQ(CosineTokenSimilarity(a, b), 0.0);
  EXPECT_NEAR(CosineTokenSimilarity(a, a), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(CosineTokenSimilarity({}, {}), 1.0);
  EXPECT_DOUBLE_EQ(CosineTokenSimilarity(a, {}), 0.0);
}

TEST(MongeElkanTest, AsymmetryAndSymmetrization) {
  std::vector<std::string> a = {"sony"};
  std::vector<std::string> b = {"sony", "unrelatedzzz"};
  double ab = MongeElkanSimilarity(a, b);
  double ba = MongeElkanSimilarity(b, a);
  EXPECT_DOUBLE_EQ(ab, 1.0);  // every token of a matches perfectly
  EXPECT_LT(ba, 1.0);
  EXPECT_NEAR(SymmetricMongeElkan(a, b), (ab + ba) / 2.0, 1e-12);
}

TEST(TokenSetTest, UniqueDecompositionMatches) {
  // The precomputed-set forms must reproduce the plain forms exactly.
  std::vector<std::vector<std::string>> lists = {
      {}, {"sony"}, {"sony", "bravia", "sony"}, {"a", "b", "c"},
      {"b", "a"}};
  for (const auto& a : lists) {
    for (const auto& b : lists) {
      auto ua = UniqueTokens(a);
      auto ub = UniqueTokens(b);
      EXPECT_EQ(JaccardOfUnique(ua, ub), JaccardSimilarity(a, b));
      EXPECT_EQ(OverlapOfUnique(ua, ub), OverlapCoefficient(a, b));
    }
  }
}

TEST(TrigramTest, ShingleDecompositionMatches) {
  // Precomputed-shingle path must reproduce the string path bit for bit
  // (it is the memoized form the models' batch featurizers rely on).
  for (const char* a : {"sony bravia", "sony brava", "", "ab", "zzz qqq"}) {
    for (const char* b : {"sony bravia", "", "x"}) {
      EXPECT_EQ(TrigramSimilarityOfShingles(TrigramShingles(a),
                                            TrigramShingles(b)),
                TrigramSimilarity(a, b))
          << "a=" << a << " b=" << b;
    }
  }
}

TEST(TrigramTest, TypoRobustness) {
  double clean = TrigramSimilarity("sony bravia", "sony bravia");
  double typo = TrigramSimilarity("sony bravia", "sony brava");
  double unrelated = TrigramSimilarity("sony bravia", "zzz qqq");
  EXPECT_DOUBLE_EQ(clean, 1.0);
  EXPECT_GT(typo, 0.5);
  EXPECT_LT(unrelated, 0.1);
}

TEST(NumericSimilarityTest, RelativeScale) {
  EXPECT_DOUBLE_EQ(NumericSimilarity(100.0, 100.0), 1.0);
  EXPECT_DOUBLE_EQ(NumericSimilarity(0.0, 0.0), 1.0);
  EXPECT_NEAR(NumericSimilarity(100.0, 90.0), 0.9, 1e-12);
  EXPECT_DOUBLE_EQ(NumericSimilarity(1.0, -1.0), 0.0);
  EXPECT_DOUBLE_EQ(NumericSimilarity(0.0, 5.0), 0.0);
}

TEST(AttributeSimilarityTest, MissingValueSemantics) {
  EXPECT_DOUBLE_EQ(AttributeSimilarity("NaN", "NaN"), 1.0);
  EXPECT_DOUBLE_EQ(AttributeSimilarity("NaN", "sony"), 0.0);
  EXPECT_DOUBLE_EQ(AttributeSimilarity("", ""), 1.0);
}

TEST(AttributeSimilarityTest, NumericDispatch) {
  EXPECT_NEAR(AttributeSimilarity("100", "90"), 0.9, 1e-9);
  EXPECT_NEAR(AttributeSimilarity("$100.00", "100"), 1.0, 1e-9);
}

TEST(AttributeSimilarityTest, TextBlend) {
  double same = AttributeSimilarity("sony bravia tv", "sony bravia tv");
  double close = AttributeSimilarity("sony bravia tv", "sony bravia");
  double far = AttributeSimilarity("sony bravia tv", "altec lansing");
  EXPECT_DOUBLE_EQ(same, 1.0);
  EXPECT_GT(close, far);
  EXPECT_GT(close, 0.4);
  EXPECT_LT(far, 0.1);
}

// Property sweep: every similarity stays in [0, 1] on random inputs and
// is exactly 1 on identical inputs.
class SimilarityPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(SimilarityPropertyTest, BoundsAndIdentity) {
  Rng rng(GetParam());
  auto random_token = [&rng]() {
    std::string token;
    int length = rng.UniformInt(1, 8);
    for (int i = 0; i < length; ++i) {
      token.push_back(static_cast<char>('a' + rng.UniformInt(0, 25)));
    }
    return token;
  };
  for (int round = 0; round < 20; ++round) {
    std::vector<std::string> a;
    std::vector<std::string> b;
    int na = rng.UniformInt(0, 6);
    int nb = rng.UniformInt(0, 6);
    for (int i = 0; i < na; ++i) a.push_back(random_token());
    for (int i = 0; i < nb; ++i) b.push_back(random_token());
    std::string sa;
    for (const auto& t : a) sa += t + " ";
    std::string sb;
    for (const auto& t : b) sb += t + " ";

    for (double value :
         {LevenshteinSimilarity(sa, sb), JaroSimilarity(sa, sb),
          JaroWinklerSimilarity(sa, sb), JaccardSimilarity(a, b),
          OverlapCoefficient(a, b), DiceCoefficient(a, b),
          CosineTokenSimilarity(a, b), MongeElkanSimilarity(a, b),
          SymmetricMongeElkan(a, b), TrigramSimilarity(sa, sb),
          AttributeSimilarity(sa, sb)}) {
      EXPECT_GE(value, 0.0);
      EXPECT_LE(value, 1.0 + 1e-12);
    }
    EXPECT_DOUBLE_EQ(JaccardSimilarity(a, a), 1.0);
    EXPECT_NEAR(CosineTokenSimilarity(a, a), a.empty() ? 1.0 : 1.0, 1e-9);
    EXPECT_DOUBLE_EQ(LevenshteinSimilarity(sa, sa), 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimilarityPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace certa::text
