#include <gtest/gtest.h>

#include "eval/cf_metrics.h"
#include "eval/saliency_metrics.h"
#include "test_util.h"
#include "text/tokenizer.h"

namespace certa::eval {
namespace {

using certa::testing::FakeMatcher;
using certa::testing::MakeRecord;
using certa::testing::MakeTable;

// --- counterfactual metrics ----------------------------------------------

explain::CounterfactualExample MakeExample(
    std::vector<std::string> left, std::vector<std::string> right) {
  explain::CounterfactualExample example;
  example.left = MakeRecord(0, std::move(left));
  example.right = MakeRecord(1, std::move(right));
  return example;
}

TEST(CfMetricsTest, ProximityIdenticalIsOne) {
  data::Record u = MakeRecord(0, {"a", "b"});
  data::Record v = MakeRecord(1, {"c", "d"});
  auto example = MakeExample({"a", "b"}, {"c", "d"});
  EXPECT_DOUBLE_EQ(Proximity(example, u, v), 1.0);
}

TEST(CfMetricsTest, ProximityDropsWithChanges) {
  data::Record u = MakeRecord(0, {"sony bravia", "theater"});
  data::Record v = MakeRecord(1, {"sony bravia", "system"});
  auto close = MakeExample({"sony bravia", "theater"},
                           {"sony bravia x", "system"});
  auto far = MakeExample({"qqq zzz", "www"}, {"rrr", "ttt"});
  EXPECT_GT(Proximity(close, u, v), Proximity(far, u, v));
  EXPECT_GE(Proximity(far, u, v), 0.0);
}

TEST(CfMetricsTest, SparsityCountsUnchangedAttributes) {
  data::Record u = MakeRecord(0, {"a", "b"});
  data::Record v = MakeRecord(1, {"c", "d"});
  EXPECT_DOUBLE_EQ(Sparsity(MakeExample({"a", "b"}, {"c", "d"}), u, v),
                   1.0);
  EXPECT_DOUBLE_EQ(Sparsity(MakeExample({"X", "b"}, {"c", "d"}), u, v),
                   0.75);
  EXPECT_DOUBLE_EQ(Sparsity(MakeExample({"X", "Y"}, {"Z", "W"}), u, v),
                   0.0);
}

TEST(CfMetricsTest, DiversityNeedsTwoExamples) {
  data::Record u = MakeRecord(0, {"orig"});
  data::Record v = MakeRecord(1, {"base"});
  EXPECT_DOUBLE_EQ(Diversity({}, u, v), 0.0);
  EXPECT_DOUBLE_EQ(Diversity({MakeExample({"a"}, {"b"})}, u, v), 0.0);
}

TEST(CfMetricsTest, DiversityOfIdenticalExamplesIsZero) {
  data::Record u = MakeRecord(0, {"orig"});
  data::Record v = MakeRecord(1, {"base"});
  auto example = MakeExample({"a"}, {"base"});
  EXPECT_DOUBLE_EQ(Diversity({example, example}, u, v), 0.0);
}

TEST(CfMetricsTest, DiversityGrowsWithSpread) {
  data::Record u = MakeRecord(0, {"alpha"});
  data::Record v = MakeRecord(1, {"base"});
  auto a = MakeExample({"alpha y"}, {"base"});
  auto b = MakeExample({"alpha x"}, {"base"});
  auto c = MakeExample({"zzz qq"}, {"base"});
  EXPECT_GT(Diversity({a, c}, u, v), Diversity({a, b}, u, v));
}

TEST(CfMetricsTest, DiversityMeasuresOnlyChangedAttributes) {
  // Two examples that each change attribute 0 to very different values
  // while attribute 1 stays untouched: the unchanged attribute must not
  // dilute the measure.
  data::Record u = MakeRecord(0, {"orig", "same"});
  data::Record v = MakeRecord(1, {"base"});
  auto a = MakeExample({"alpha words", "same"}, {"base"});
  auto b = MakeExample({"zzz qqq", "same"}, {"base"});
  double diversity = Diversity({a, b}, u, v);
  EXPECT_GT(diversity, 0.8);  // near-maximal despite 2 of 3 attrs equal
}

TEST(CfAggregatorTest, AveragesAcrossInputs) {
  data::Record u = MakeRecord(0, {"a", "b"});
  data::Record v = MakeRecord(1, {"c", "d"});
  CfAggregator aggregator;
  // Input 1: two examples.
  aggregator.Add({MakeExample({"a", "b"}, {"c", "d"}),
                  MakeExample({"X", "b"}, {"c", "d"})},
                 u, v);
  // Input 2: none.
  aggregator.Add({}, u, v);
  CfAggregate result = aggregator.Result();
  EXPECT_EQ(result.inputs, 2);
  EXPECT_EQ(result.examples, 2);
  EXPECT_DOUBLE_EQ(result.mean_count, 1.0);
  EXPECT_DOUBLE_EQ(result.sparsity, (1.0 + 0.75) / 2.0);
}

// --- saliency metrics -------------------------------------------------------

struct MetricFixture {
  data::Table left = MakeTable("U", {"key", "junk"},
                               {{"k1", "j1"}, {"k2", "j2"}});
  data::Table right = MakeTable("V", {"key", "junk"},
                                {{"k1", "j9"}, {"k2", "j8"}});
  // Match iff keys equal; junk ignored.
  FakeMatcher model{[](const data::Record& u, const data::Record& v) {
    return (!text::IsMissing(u.value(0)) && u.value(0) == v.value(0))
               ? 0.9
               : 0.1;
  }};
  explain::ExplainContext context{&model, &left, &right};
  std::vector<data::LabeledPair> pairs = {
      {0, 0, 1}, {1, 1, 1}, {0, 1, 0}, {1, 0, 0}};

  explain::SaliencyExplanation KeyExplanation() const {
    explain::SaliencyExplanation explanation(2, 2);
    explanation.set_score({data::Side::kLeft, 0}, 1.0);
    explanation.set_score({data::Side::kRight, 0}, 0.9);
    explanation.set_score({data::Side::kLeft, 1}, 0.1);
    explanation.set_score({data::Side::kRight, 1}, 0.05);
    return explanation;
  }
  explain::SaliencyExplanation JunkExplanation() const {
    explain::SaliencyExplanation explanation(2, 2);
    explanation.set_score({data::Side::kLeft, 1}, 1.0);
    explanation.set_score({data::Side::kRight, 1}, 0.9);
    explanation.set_score({data::Side::kLeft, 0}, 0.1);
    explanation.set_score({data::Side::kRight, 0}, 0.05);
    return explanation;
  }
};

TEST(MaskTopAttributesTest, MasksByRankAndFraction) {
  MetricFixture fixture;
  data::Record u = fixture.left.record(0);
  data::Record v = fixture.right.record(0);
  data::Record masked_u;
  data::Record masked_v;
  // 25% of 4 attributes -> top-1 (L_key).
  MaskTopAttributes(u, v, fixture.KeyExplanation(), 0.25, &masked_u,
                    &masked_v);
  EXPECT_TRUE(text::IsMissing(masked_u.value(0)));
  EXPECT_FALSE(text::IsMissing(masked_v.value(0)));
  // 50% -> top-2 (both keys).
  MaskTopAttributes(u, v, fixture.KeyExplanation(), 0.5, &masked_u,
                    &masked_v);
  EXPECT_TRUE(text::IsMissing(masked_u.value(0)));
  EXPECT_TRUE(text::IsMissing(masked_v.value(0)));
  EXPECT_FALSE(text::IsMissing(masked_u.value(1)));
  // 0 -> nothing masked.
  MaskTopAttributes(u, v, fixture.KeyExplanation(), 0.0, &masked_u,
                    &masked_v);
  EXPECT_EQ(masked_u.values, u.values);
}

TEST(FaithfulnessTest, FaithfulExplanationScoresLowerAuc) {
  MetricFixture fixture;
  // The key explanation destroys F1 at the very first threshold; the
  // junk explanation leaves the model intact until the keys finally get
  // masked at high thresholds, so its AUC is higher.
  std::vector<explain::SaliencyExplanation> key_explanations(
      fixture.pairs.size(), fixture.KeyExplanation());
  std::vector<explain::SaliencyExplanation> junk_explanations(
      fixture.pairs.size(), fixture.JunkExplanation());
  double faithful = Faithfulness(fixture.context, fixture.pairs,
                                 fixture.left, fixture.right,
                                 key_explanations);
  double unfaithful = Faithfulness(fixture.context, fixture.pairs,
                                   fixture.left, fixture.right,
                                   junk_explanations);
  EXPECT_LT(faithful, unfaithful);
  EXPECT_GE(faithful, 0.0);
  EXPECT_LE(unfaithful, 1.0);
}

TEST(FaithfulnessTest, EmptyPairsIsZero) {
  MetricFixture fixture;
  EXPECT_DOUBLE_EQ(Faithfulness(fixture.context, {}, fixture.left,
                                fixture.right, {}),
                   0.0);
}

TEST(ConfidenceIndicationTest, InformativeScoresLowerError) {
  MetricFixture fixture;
  // Explanations that track the model's confidence: saliency equals the
  // pair's score on attribute 0.
  std::vector<explain::SaliencyExplanation> informative;
  std::vector<explain::SaliencyExplanation> constant;
  for (const auto& pair : fixture.pairs) {
    double score = fixture.model.Score(fixture.left.record(pair.left_index),
                                       fixture.right.record(pair.right_index));
    explain::SaliencyExplanation tracking(2, 2);
    tracking.set_score({data::Side::kLeft, 0}, score);
    informative.push_back(tracking);
    constant.emplace_back(2, 2);
  }
  // Make the confidence target non-constant across pairs: perturb the
  // model? Here all pairs have confidence 0.9, so both probes fit
  // perfectly; the metric must simply be finite and bounded.
  double informative_mae =
      ConfidenceIndication(fixture.context, fixture.pairs, fixture.left,
                           fixture.right, informative);
  double constant_mae =
      ConfidenceIndication(fixture.context, fixture.pairs, fixture.left,
                           fixture.right, constant);
  EXPECT_GE(informative_mae, 0.0);
  EXPECT_LE(informative_mae, 0.01);
  EXPECT_GE(constant_mae, 0.0);
  EXPECT_LE(constant_mae, 1.0);
}

TEST(FaithfulnessThresholdsTest, MatchPaper) {
  EXPECT_EQ(FaithfulnessThresholds(),
            (std::vector<double>{0.1, 0.2, 0.33, 0.5, 0.7, 0.9}));
}

}  // namespace
}  // namespace certa::eval
