#include "util/string_utils.h"

#include <gtest/gtest.h>

#include "util/table_printer.h"

namespace certa {
namespace {

TEST(StringUtilsTest, ToLowerAscii) {
  EXPECT_EQ(ToLowerAscii("SoNy BRAVIA"), "sony bravia");
  EXPECT_EQ(ToLowerAscii(""), "");
  EXPECT_EQ(ToLowerAscii("123-ABC"), "123-abc");
}

TEST(StringUtilsTest, StripAsciiWhitespace) {
  EXPECT_EQ(StripAsciiWhitespace("  hi  "), "hi");
  EXPECT_EQ(StripAsciiWhitespace("\t\nhi"), "hi");
  EXPECT_EQ(StripAsciiWhitespace("hi"), "hi");
  EXPECT_EQ(StripAsciiWhitespace("   "), "");
  EXPECT_EQ(StripAsciiWhitespace(""), "");
}

TEST(StringUtilsTest, SplitBasic) {
  std::vector<std::string> expected = {"a", "b", "c"};
  EXPECT_EQ(Split("a,b,c", ','), expected);
}

TEST(StringUtilsTest, SplitEmptyFields) {
  std::vector<std::string> expected = {"", "a", "", ""};
  EXPECT_EQ(Split(",a,,", ','), expected);
}

TEST(StringUtilsTest, SplitEmptyInput) {
  std::vector<std::string> expected = {""};
  EXPECT_EQ(Split("", ','), expected);
}

TEST(StringUtilsTest, SplitWhitespaceCollapsesRuns) {
  std::vector<std::string> expected = {"a", "b", "c"};
  EXPECT_EQ(SplitWhitespace("  a \t b \n c  "), expected);
  EXPECT_TRUE(SplitWhitespace("   ").empty());
  EXPECT_TRUE(SplitWhitespace("").empty());
}

TEST(StringUtilsTest, JoinRoundtrip) {
  std::vector<std::string> parts = {"a", "b", "c"};
  EXPECT_EQ(Join(parts, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
}

TEST(StringUtilsTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("prefix_rest", "prefix"));
  EXPECT_FALSE(StartsWith("pre", "prefix"));
  EXPECT_TRUE(EndsWith("file.csv", ".csv"));
  EXPECT_FALSE(EndsWith("csv", ".csv"));
  EXPECT_TRUE(StartsWith("x", ""));
  EXPECT_TRUE(EndsWith("x", ""));
}

TEST(StringUtilsTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(0.1234, 2), "0.12");
  EXPECT_EQ(FormatDouble(1.0, 3), "1.000");
  EXPECT_EQ(FormatDouble(-2.5, 1), "-2.5");
  EXPECT_EQ(FormatDouble(0.005, 2), "0.01");  // rounding
}

TEST(StringUtilsTest, ParseDoubleValid) {
  double value = 0.0;
  EXPECT_TRUE(ParseDouble("3.25", &value));
  EXPECT_DOUBLE_EQ(value, 3.25);
  EXPECT_TRUE(ParseDouble("  -7 ", &value));
  EXPECT_DOUBLE_EQ(value, -7.0);
  EXPECT_TRUE(ParseDouble("1e3", &value));
  EXPECT_DOUBLE_EQ(value, 1000.0);
}

TEST(StringUtilsTest, ParseDoubleInvalid) {
  double value = 0.0;
  EXPECT_FALSE(ParseDouble("", &value));
  EXPECT_FALSE(ParseDouble("abc", &value));
  EXPECT_FALSE(ParseDouble("1.5x", &value));
  EXPECT_FALSE(ParseDouble("   ", &value));
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter printer({"A", "Long header"});
  printer.AddRow({"wide value", "x"});
  std::ostringstream out;
  printer.Print(out);
  std::string text = out.str();
  // Header, separator, one data row.
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 3);
  EXPECT_NE(text.find("wide value"), std::string::npos);
  EXPECT_NE(text.find("Long header"), std::string::npos);
}

TEST(TablePrinterTest, FormatsDoubleRows) {
  TablePrinter printer({"name", "x", "y"});
  printer.AddRow("row", {0.135, 2.0}, 2);
  EXPECT_EQ(printer.row_count(), 1u);
  std::ostringstream out;
  printer.Print(out);
  EXPECT_NE(out.str().find("0.14"), std::string::npos);
  EXPECT_NE(out.str().find("2.00"), std::string::npos);
}

}  // namespace
}  // namespace certa
