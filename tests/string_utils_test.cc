#include "util/string_utils.h"

#include <gtest/gtest.h>

#include "util/table_printer.h"

namespace certa {
namespace {

TEST(StringUtilsTest, ToLowerAscii) {
  EXPECT_EQ(ToLowerAscii("SoNy BRAVIA"), "sony bravia");
  EXPECT_EQ(ToLowerAscii(""), "");
  EXPECT_EQ(ToLowerAscii("123-ABC"), "123-abc");
}

TEST(StringUtilsTest, StripAsciiWhitespace) {
  EXPECT_EQ(StripAsciiWhitespace("  hi  "), "hi");
  EXPECT_EQ(StripAsciiWhitespace("\t\nhi"), "hi");
  EXPECT_EQ(StripAsciiWhitespace("hi"), "hi");
  EXPECT_EQ(StripAsciiWhitespace("   "), "");
  EXPECT_EQ(StripAsciiWhitespace(""), "");
}

TEST(StringUtilsTest, SplitBasic) {
  std::vector<std::string> expected = {"a", "b", "c"};
  EXPECT_EQ(Split("a,b,c", ','), expected);
}

TEST(StringUtilsTest, SplitEmptyFields) {
  std::vector<std::string> expected = {"", "a", "", ""};
  EXPECT_EQ(Split(",a,,", ','), expected);
}

TEST(StringUtilsTest, SplitEmptyInput) {
  std::vector<std::string> expected = {""};
  EXPECT_EQ(Split("", ','), expected);
}

TEST(StringUtilsTest, SplitWhitespaceCollapsesRuns) {
  std::vector<std::string> expected = {"a", "b", "c"};
  EXPECT_EQ(SplitWhitespace("  a \t b \n c  "), expected);
  EXPECT_TRUE(SplitWhitespace("   ").empty());
  EXPECT_TRUE(SplitWhitespace("").empty());
}

TEST(StringUtilsTest, JoinRoundtrip) {
  std::vector<std::string> parts = {"a", "b", "c"};
  EXPECT_EQ(Join(parts, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
}

TEST(StringUtilsTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("prefix_rest", "prefix"));
  EXPECT_FALSE(StartsWith("pre", "prefix"));
  EXPECT_TRUE(EndsWith("file.csv", ".csv"));
  EXPECT_FALSE(EndsWith("csv", ".csv"));
  EXPECT_TRUE(StartsWith("x", ""));
  EXPECT_TRUE(EndsWith("x", ""));
}

TEST(StringUtilsTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(0.1234, 2), "0.12");
  EXPECT_EQ(FormatDouble(1.0, 3), "1.000");
  EXPECT_EQ(FormatDouble(-2.5, 1), "-2.5");
  EXPECT_EQ(FormatDouble(0.005, 2), "0.01");  // rounding
}

TEST(StringUtilsTest, ParseDoubleValid) {
  double value = 0.0;
  EXPECT_TRUE(ParseDouble("3.25", &value));
  EXPECT_DOUBLE_EQ(value, 3.25);
  EXPECT_TRUE(ParseDouble("  -7 ", &value));
  EXPECT_DOUBLE_EQ(value, -7.0);
  EXPECT_TRUE(ParseDouble("1e3", &value));
  EXPECT_DOUBLE_EQ(value, 1000.0);
}

TEST(StringUtilsTest, ParseDoubleInvalid) {
  double value = 0.0;
  EXPECT_FALSE(ParseDouble("", &value));
  EXPECT_FALSE(ParseDouble("abc", &value));
  EXPECT_FALSE(ParseDouble("1.5x", &value));
  EXPECT_FALSE(ParseDouble("   ", &value));
}

TEST(StringUtilsTest, ParseDoubleRejectsNonFinite) {
  // strtod happily reads "nan" and "inf" — but a NaN that reaches a
  // `< 0 || > 1` range check passes it (every NaN comparison is false),
  // and "NaN" is this codebase's *string* missing-value marker. Reject
  // non-finite outright.
  double value = 123.0;
  EXPECT_FALSE(ParseDouble("nan", &value));
  EXPECT_FALSE(ParseDouble("NaN", &value));
  EXPECT_FALSE(ParseDouble("inf", &value));
  EXPECT_FALSE(ParseDouble("-inf", &value));
  EXPECT_FALSE(ParseDouble("infinity", &value));
  EXPECT_FALSE(ParseDouble("1e999", &value));  // overflows to +inf
}

TEST(StringUtilsTest, ParseInt64Valid) {
  long long value = 0;
  EXPECT_TRUE(ParseInt64("42", &value));
  EXPECT_EQ(value, 42);
  EXPECT_TRUE(ParseInt64("  -7 ", &value));
  EXPECT_EQ(value, -7);
  EXPECT_TRUE(ParseInt64("0", &value));
  EXPECT_EQ(value, 0);
  EXPECT_TRUE(ParseInt64("9223372036854775807", &value));
  EXPECT_EQ(value, 9223372036854775807LL);
}

TEST(StringUtilsTest, ParseInt64Invalid) {
  long long value = 99;
  EXPECT_FALSE(ParseInt64("", &value));
  EXPECT_FALSE(ParseInt64("   ", &value));
  EXPECT_FALSE(ParseInt64("abc", &value));
  EXPECT_FALSE(ParseInt64("8jobs", &value));  // atoi would read 8
  EXPECT_FALSE(ParseInt64("1.5", &value));
  EXPECT_FALSE(ParseInt64("0x10", &value));   // base 10 only
  EXPECT_FALSE(ParseInt64("9223372036854775808", &value));  // overflow
  EXPECT_FALSE(ParseInt64("-9223372036854775809", &value));
  EXPECT_EQ(value, 99) << "*out must stay untouched on failure";
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter printer({"A", "Long header"});
  printer.AddRow({"wide value", "x"});
  std::ostringstream out;
  printer.Print(out);
  std::string text = out.str();
  // Header, separator, one data row.
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 3);
  EXPECT_NE(text.find("wide value"), std::string::npos);
  EXPECT_NE(text.find("Long header"), std::string::npos);
}

TEST(TablePrinterTest, FormatsDoubleRows) {
  TablePrinter printer({"name", "x", "y"});
  printer.AddRow("row", {0.135, 2.0}, 2);
  EXPECT_EQ(printer.row_count(), 1u);
  std::ostringstream out;
  printer.Print(out);
  EXPECT_NE(out.str().find("0.14"), std::string::npos);
  EXPECT_NE(out.str().find("2.00"), std::string::npos);
}

}  // namespace
}  // namespace certa
