#include <set>

#include <gtest/gtest.h>

#include "data/benchmarks.h"
#include "models/deeper_model.h"
#include "models/deepmatcher_model.h"
#include "models/ditto_model.h"
#include "models/trainer.h"
#include "test_util.h"

namespace certa::models {
namespace {

using certa::testing::FakeMatcher;
using certa::testing::MakeRecord;

// Parameterized across the three models: the invariants every trained
// matcher must satisfy.
class TrainedModelTest : public ::testing::TestWithParam<ModelKind> {
 protected:
  static data::Dataset& Dataset() {
    static data::Dataset* dataset =
        new data::Dataset(data::MakeBenchmark("AB"));
    return *dataset;
  }
};

TEST_P(TrainedModelTest, ScoresAreProbabilities) {
  auto model = TrainMatcher(GetParam(), Dataset());
  for (size_t p = 0; p < 20 && p < Dataset().test.size(); ++p) {
    const auto& pair = Dataset().test[p];
    double score = model->Score(Dataset().left.record(pair.left_index),
                                Dataset().right.record(pair.right_index));
    EXPECT_GE(score, 0.0);
    EXPECT_LE(score, 1.0);
  }
}

TEST_P(TrainedModelTest, BeatsChanceOnTestSplit) {
  auto model = TrainMatcher(GetParam(), Dataset());
  double f1 = EvaluateF1(*model, Dataset().left, Dataset().right,
                         Dataset().test);
  EXPECT_GT(f1, 0.6) << ModelKindName(GetParam());
}

TEST_P(TrainedModelTest, DeterministicScoring) {
  auto model = TrainMatcher(GetParam(), Dataset());
  const auto& pair = Dataset().test.front();
  const auto& u = Dataset().left.record(pair.left_index);
  const auto& v = Dataset().right.record(pair.right_index);
  EXPECT_DOUBLE_EQ(model->Score(u, v), model->Score(u, v));
}

TEST_P(TrainedModelTest, RetrainingIsReproducible) {
  auto a = TrainMatcher(GetParam(), Dataset(), 42);
  auto b = TrainMatcher(GetParam(), Dataset(), 42);
  const auto& pair = Dataset().test.front();
  const auto& u = Dataset().left.record(pair.left_index);
  const auto& v = Dataset().right.record(pair.right_index);
  EXPECT_DOUBLE_EQ(a->Score(u, v), b->Score(u, v));
}

TEST_P(TrainedModelTest, IdenticalRecordsScoreHigh) {
  auto model = TrainMatcher(GetParam(), Dataset());
  // A record paired with an exact copy of itself should look like a
  // match to any sane ER model.
  int agreements = 0;
  int total = 0;
  for (int r = 0; r < 10 && r < Dataset().left.size(); ++r) {
    data::Record self = Dataset().left.record(r);
    ++total;
    if (model->Score(self, self) >= 0.5) ++agreements;
  }
  EXPECT_GE(agreements, total - 2) << ModelKindName(GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, TrainedModelTest,
    ::testing::Values(ModelKind::kDeepEr, ModelKind::kDeepMatcher,
                      ModelKind::kDitto),
    [](const auto& info) { return ModelKindName(info.param); });

TEST(ModelKindTest, NamesMatchPaper) {
  EXPECT_EQ(ModelKindName(ModelKind::kDeepEr), "DeepER");
  EXPECT_EQ(ModelKindName(ModelKind::kDeepMatcher), "DeepMatcher");
  EXPECT_EQ(ModelKindName(ModelKind::kDitto), "Ditto");
  EXPECT_EQ(AllModelKinds().size(), 3u);
}

TEST(DittoSerializeTest, ColValMarkers) {
  data::Schema schema({"name", "price"});
  data::Record record = MakeRecord(0, {"sony bravia", "NaN"});
  std::string serialized = DittoModel::Serialize(schema, record);
  EXPECT_EQ(serialized, "[COL] name [VAL] sony bravia [COL] price [VAL]");
}

TEST(EvaluateF1Test, PerfectOracle) {
  data::Dataset dataset = data::MakeBenchmark("FZ");
  // Oracle matcher: peeks at the ground truth via a lookup set.
  std::set<std::pair<std::string, std::string>> matches;
  for (const auto& pair : dataset.test) {
    if (pair.label == 1) {
      matches.insert({dataset.left.record(pair.left_index).value(0),
                      dataset.right.record(pair.right_index).value(0)});
    }
  }
  FakeMatcher oracle([&](const data::Record& u, const data::Record& v) {
    return matches.count({u.value(0), v.value(0)}) ? 1.0 : 0.0;
  });
  EXPECT_DOUBLE_EQ(
      EvaluateF1(oracle, dataset.left, dataset.right, dataset.test), 1.0);
}

TEST(CachingMatcherTest, CachesByValue) {
  int base_calls = 0;
  FakeMatcher base([&](const data::Record&, const data::Record&) {
    ++base_calls;
    return 0.7;
  });
  CachingMatcher cached(&base);
  data::Record u = MakeRecord(0, {"a", "b"});
  data::Record v = MakeRecord(1, {"c", "d"});
  EXPECT_DOUBLE_EQ(cached.Score(u, v), 0.7);
  EXPECT_DOUBLE_EQ(cached.Score(u, v), 0.7);
  EXPECT_EQ(base_calls, 1);
  EXPECT_EQ(cached.hit_count(), 1u);
  EXPECT_EQ(cached.miss_count(), 1u);
  // Same values, different id: still a cache hit (value-keyed).
  data::Record u2 = MakeRecord(99, {"a", "b"});
  cached.Score(u2, v);
  EXPECT_EQ(base_calls, 1);
}

TEST(CachingMatcherTest, DistinguishesSides) {
  // <u, v> and <v, u> must not collide in the cache.
  FakeMatcher base([](const data::Record& u, const data::Record&) {
    return u.value(0) == "left" ? 0.9 : 0.1;
  });
  CachingMatcher cached(&base);
  data::Record a = MakeRecord(0, {"left"});
  data::Record b = MakeRecord(1, {"right"});
  EXPECT_DOUBLE_EQ(cached.Score(a, b), 0.9);
  EXPECT_DOUBLE_EQ(cached.Score(b, a), 0.1);
}

TEST(CachingMatcherTest, DistinguishesValueBoundaries) {
  // {"ab", "c"} vs {"a", "bc"} must hash to different keys.
  FakeMatcher base([](const data::Record& u, const data::Record&) {
    return u.value(0).size() == 2 ? 0.9 : 0.1;
  });
  CachingMatcher cached(&base);
  data::Record v = MakeRecord(9, {"x"});
  EXPECT_DOUBLE_EQ(cached.Score(MakeRecord(0, {"ab", "c"}), v), 0.9);
  EXPECT_DOUBLE_EQ(cached.Score(MakeRecord(1, {"a", "bc"}), v), 0.1);
}

TEST(CachingMatcherTest, EvictsWhenFull) {
  FakeMatcher base([](const data::Record&, const data::Record&) {
    return 0.5;
  });
  CachingMatcher cached(&base, /*max_entries=*/2);
  data::Record v = MakeRecord(0, {"v"});
  cached.Score(MakeRecord(1, {"a"}), v);
  cached.Score(MakeRecord(2, {"b"}), v);
  cached.Score(MakeRecord(3, {"c"}), v);  // triggers reset, no crash
  EXPECT_EQ(cached.miss_count(), 3u);
}

TEST(DeepMatcherModelTest, FeatureDimensionPerAttribute) {
  // The DeepMatcher stand-in is attribute-aligned: records with
  // different arities are a programmer error (covered by CHECK), and
  // the feature block is kFeaturesPerAttribute per attribute — verified
  // indirectly by training on two schemas of different widths.
  data::Dataset ab = data::MakeBenchmark("AB");   // 3 attributes
  data::Dataset fz = data::MakeBenchmark("FZ");   // 6 attributes
  auto model_ab = TrainMatcher(ModelKind::kDeepMatcher, ab);
  auto model_fz = TrainMatcher(ModelKind::kDeepMatcher, fz);
  EXPECT_GT(EvaluateF1(*model_ab, ab.left, ab.right, ab.test), 0.5);
  EXPECT_GT(EvaluateF1(*model_fz, fz.left, fz.right, fz.test), 0.5);
}

TEST(SvmModelTest, ClassicalMatcherTrainsAndScores) {
  // The classical SVM matcher (not in the paper's trio) still learns
  // the synthetic benchmarks well and produces calibrated scores.
  data::Dataset dataset = data::MakeBenchmark("FZ");
  auto model = TrainMatcher(ModelKind::kSvm, dataset);
  EXPECT_EQ(model->name(), "SVM");
  EXPECT_EQ(ModelKindName(ModelKind::kSvm), "SVM");
  double f1 = EvaluateF1(*model, dataset.left, dataset.right, dataset.test);
  EXPECT_GT(f1, 0.6);
  for (size_t p = 0; p < 10 && p < dataset.test.size(); ++p) {
    const auto& pair = dataset.test[p];
    double score = model->Score(dataset.left.record(pair.left_index),
                                dataset.right.record(pair.right_index));
    EXPECT_GE(score, 0.0);
    EXPECT_LE(score, 1.0);
  }
}

TEST(SvmModelTest, ExcludedFromPaperTrio) {
  for (ModelKind kind : AllModelKinds()) {
    EXPECT_NE(kind, ModelKind::kSvm);
  }
}

TEST(DeepErModelTest, RecordLevelGranularity) {
  // DeepER fuses attributes into one token bag: moving a token from one
  // attribute to another barely changes the score (only the character
  // n-gram channel sees the moved value boundary). An attribute-level
  // model has no such invariance.
  data::Dataset dataset = data::MakeBenchmark("AB");
  auto model = TrainMatcher(ModelKind::kDeepEr, dataset);
  data::Record u = MakeRecord(0, {"sony bravia", "theater system", "99"});
  data::Record u_moved =
      MakeRecord(0, {"sony", "bravia theater system", "99"});
  data::Record v = MakeRecord(1, {"sony bravia", "home theater", "98"});
  EXPECT_NEAR(model->Score(u, v), model->Score(u_moved, v), 0.15);
}

}  // namespace
}  // namespace certa::models
