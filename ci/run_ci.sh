#!/usr/bin/env bash
# Full CI gate, runnable locally or from .github/workflows/ci.yml:
#   1. Release build + complete ctest suite;
#   2. address+undefined sanitizer build + the suites most likely to
#      hide memory/UB bugs (resilience fault paths, durability journal
#      recovery and kill/resume);
#   3. thread sanitizer build (CERTA_SANITIZE=thread) + the concurrency
#      suite (thread pool, sharded metrics, cache shards under pooled
#      writers);
#   4. the perf suite (SIMD kernel differentials + scaling determinism):
#      portable build with the dispatched kernels, the same build with
#      CERTA_KERNELS=scalar forcing the reference kernels, a
#      -DCERTA_NATIVE=ON build when the host compiler supports
#      -march=native, and the TSan build;
#   5. the observability overhead bench, which fails if instrumentation
#      changes a result byte and writes BENCH_obs.json;
#   6. the store suite (score-store crash-fuzz — including SIGKILLed
#      sibling streams sharing one directory — + candidate-index
#      differential battery) in the Release, ASan and TSan builds, plus
#      an optional 100k-record scale smoke gated on CERTA_CI_SCALE=1
#      whose bench also asserts the 2-worker shared-store warm rerun
#      (fleet-wide hit_rate == 1.0, zero fresh model calls);
#   7. the fleet suite (multi-process master/worker serving: dir-lock
#      contention, crash recovery, rolling restart, the shared
#      cross-worker score store, and the randomized SIGKILL chaos
#      battery — which also absorbs a concurrent v2 upsert stream) in
#      the Release, ASan and TSan builds;
#   8. the stream suite (incremental MutableTable differential, v2 wire
#      verbs + negotiation + golden v1 byte corpus, SIGKILL/resume and
#      recompute-equals-fresh-batch e2e) in the Release, ASan and TSan
#      builds, plus the streaming-latency/durability bench which writes
#      BENCH_stream.json and fails on any lost acked upsert.
# Any failure fails the script.
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
JOBS="${CERTA_CI_JOBS:-$(nproc)}"

echo "== Release build =="
cmake -B "${REPO_ROOT}/build-ci" -S "${REPO_ROOT}" \
  -DCMAKE_BUILD_TYPE=Release
cmake --build "${REPO_ROOT}/build-ci" -j "${JOBS}"

echo "== Full test suite (Release) =="
ctest --test-dir "${REPO_ROOT}/build-ci" --output-on-failure -j "${JOBS}"

echo "== Labelled suites (Release) =="
ctest --test-dir "${REPO_ROOT}/build-ci" --output-on-failure -L resilience
ctest --test-dir "${REPO_ROOT}/build-ci" --output-on-failure -L durability
# Networked service: wire edge cases, live server, and the e2e round
# trip through the real serve/client binaries (8 concurrent clients
# byte-compared against direct `certa explain`, SIGTERM drain).
ctest --test-dir "${REPO_ROOT}/build-ci" --output-on-failure -L service-net
# Cross-job score store + candidate index: CRC known answers, crash-fuzz
# (SIGKILL mid-append/mid-compaction, kill the real CLI mid-run), the
# index-vs-linear-scan differential battery, and flag/thread/restart
# byte-identity.
ctest --test-dir "${REPO_ROOT}/build-ci" --output-on-failure -L store
# Multi-process fleet serving: flock exclusivity across processes,
# supervised worker SIGKILL recovery, SIGHUP rolling restart, per-worker
# backpressure, the shared cross-worker score store (sibling reuse,
# warm-fleet reruns, retry-streak budgets, torn-STATS fan-in), and the
# chaos battery (random worker kills under live multi-client load over
# one shared store dir, byte-compared against single-process explains).
ctest --test-dir "${REPO_ROOT}/build-ci" --output-on-failure -L fleet
# Streaming/incremental serving: the MutableTable incremental-index
# differential, v2 wire verbs + per-connection version negotiation +
# the golden v1 byte-for-byte corpus, and the SIGKILL/resume +
# stale-recompute-equals-fresh-batch e2e through the real binaries.
ctest --test-dir "${REPO_ROOT}/build-ci" --output-on-failure -L stream

echo "== address+undefined sanitizer build =="
cmake -B "${REPO_ROOT}/build-ci-asan" -S "${REPO_ROOT}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo -DCERTA_SANITIZE=address+undefined
cmake --build "${REPO_ROOT}/build-ci-asan" -j "${JOBS}"

echo "== Sanitized resilience + durability + service-net + store suites =="
ctest --test-dir "${REPO_ROOT}/build-ci-asan" --output-on-failure -L resilience
ctest --test-dir "${REPO_ROOT}/build-ci-asan" --output-on-failure -L durability
ctest --test-dir "${REPO_ROOT}/build-ci-asan" --output-on-failure -L service-net
ctest --test-dir "${REPO_ROOT}/build-ci-asan" --output-on-failure -L store
ctest --test-dir "${REPO_ROOT}/build-ci-asan" --output-on-failure -L fleet
ctest --test-dir "${REPO_ROOT}/build-ci-asan" --output-on-failure -L stream

echo "== thread sanitizer build =="
cmake -B "${REPO_ROOT}/build-ci-tsan" -S "${REPO_ROOT}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo -DCERTA_SANITIZE=thread
cmake --build "${REPO_ROOT}/build-ci-tsan" -j "${JOBS}"

echo "== Sanitized concurrency suite (TSan) =="
ctest --test-dir "${REPO_ROOT}/build-ci-tsan" --output-on-failure \
  -L concurrency

echo "== Sanitized store suite (TSan) =="
ctest --test-dir "${REPO_ROOT}/build-ci-tsan" --output-on-failure -L store

echo "== Sanitized fleet suite (TSan) =="
ctest --test-dir "${REPO_ROOT}/build-ci-tsan" --output-on-failure -L fleet

echo "== Sanitized stream suite (TSan) =="
ctest --test-dir "${REPO_ROOT}/build-ci-tsan" --output-on-failure -L stream

echo "== Perf suite: portable build, dispatched (vector) kernels =="
ctest --test-dir "${REPO_ROOT}/build-ci" --output-on-failure -L perf

echo "== Perf suite: forced scalar kernels (CERTA_KERNELS=scalar) =="
CERTA_KERNELS=scalar \
  ctest --test-dir "${REPO_ROOT}/build-ci" --output-on-failure -L perf

echo "== Perf suite: -march=native build (skipped if unsupported) =="
if cmake -B "${REPO_ROOT}/build-ci-native" -S "${REPO_ROOT}" \
  -DCMAKE_BUILD_TYPE=Release -DCERTA_NATIVE=ON; then
  cmake --build "${REPO_ROOT}/build-ci-native" -j "${JOBS}" --target \
    simd_kernel_test scoring_engine_test
  ctest --test-dir "${REPO_ROOT}/build-ci-native" --output-on-failure -L perf
else
  echo "   -march=native unavailable; skipping the native perf pass"
fi

echo "== Perf suite under TSan =="
ctest --test-dir "${REPO_ROOT}/build-ci-tsan" --output-on-failure -L perf

echo "== Observability overhead bench =="
CERTA_BENCH_OBS_JSON="${REPO_ROOT}/BENCH_obs.json" \
  "${REPO_ROOT}/build-ci/bench/bench_observability"

# Streaming bench: sustained upsert/match/remove p50/p95/p99 through the
# WAL'd coordinator, staleness-detection churn, and a SIGKILL-and-resume
# leg that fails the build on any lost acked upsert.
echo "== Streaming latency + durability bench =="
CERTA_BENCH_STREAM_JSON="${REPO_ROOT}/BENCH_stream.json" \
  "${REPO_ROOT}/build-ci/bench/bench_stream"

# Scale smoke: candidate-index speedup + store warm-hit verification,
# including the 2-worker shared-store leg (stream 1 must rerun the job
# with zero fresh model calls, hit_rate == 1.0, every hit paid by its
# sibling stream — the bench exits nonzero otherwise).
# Minutes of wall clock, so gated — set CERTA_CI_SCALE=1 to run it.
# Defaults to 100k records (manual dispatch); the nightly workflow sets
# CERTA_CI_SCALE_RECORDS=1000000 for the full 1M-record pass.
if [[ "${CERTA_CI_SCALE:-0}" == "1" ]]; then
  SCALE_RECORDS="${CERTA_CI_SCALE_RECORDS:-100000}"
  echo "== Scale smoke (bench_scale, ${SCALE_RECORDS} records) =="
  CERTA_BENCH_SCALE_JSON="${REPO_ROOT}/BENCH_scale.json" \
    "${REPO_ROOT}/build-ci/bench/bench_scale" --records "${SCALE_RECORDS}"
else
  echo "== Scale smoke skipped (set CERTA_CI_SCALE=1 to run) =="
fi

echo "CI passed."
