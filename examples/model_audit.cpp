// Model governance audit: before trusting a matcher, profile the data,
// learn an interpretable reference rule set, aggregate CERTA
// explanations over the test split, and check whether the black-box
// model attends to the same attributes as the transparent rules — the
// "check whether a classifier is making correct predictions for sound
// reasons" use case from the paper's introduction.
//
//   ./build/examples/model_audit

#include <iostream>

#include "core/certa_explainer.h"
#include "data/benchmarks.h"
#include "data/profiling.h"
#include "explain/aggregate.h"
#include "models/rule_model.h"
#include "models/trainer.h"
#include "util/string_utils.h"

int main() {
  certa::data::Dataset dataset = certa::data::MakeBenchmark("FZ");

  // 1. Data profile: what do the sources even look like?
  std::cout << "=== data profile ===\n"
            << "table " << dataset.left.name() << ":\n"
            << certa::data::RenderProfiles(
                   certa::data::ProfileTable(dataset.left));

  // 2. Transparent reference: a rule set whose logic is readable.
  certa::models::RuleModel rules;
  rules.Fit(dataset);
  std::cout << "\n=== interpretable reference model ===\n"
            << "rule-set test F1 = "
            << certa::FormatDouble(
                   certa::models::EvaluateF1(rules, dataset.left,
                                             dataset.right, dataset.test),
                   3)
            << "\n"
            << rules.Describe(dataset.left.schema());

  // 3. The black box under audit.
  auto model = certa::models::TrainMatcher(
      certa::models::ModelKind::kDitto, dataset);
  certa::models::CachingMatcher cached(model.get());
  std::cout << "\n=== black box under audit ===\n"
            << model->name() << " test F1 = "
            << certa::FormatDouble(
                   certa::models::EvaluateF1(cached, dataset.left,
                                             dataset.right, dataset.test),
                   3)
            << "\n";

  // 4. Aggregate CERTA explanations of the black box.
  certa::explain::ExplainContext context{&cached, &dataset.left,
                                         &dataset.right};
  certa::core::CertaExplainer explainer(context);
  std::vector<certa::data::LabeledPair> pairs = dataset.test;
  if (pairs.size() > 16) pairs.resize(16);
  std::vector<certa::explain::SaliencyExplanation> explanations;
  for (const auto& pair : pairs) {
    explanations.push_back(explainer.ExplainSaliency(
        dataset.left.record(pair.left_index),
        dataset.right.record(pair.right_index)));
  }
  certa::explain::GlobalExplanation global =
      certa::explain::AggregateExplanations(context, pairs, dataset.left,
                                            dataset.right, explanations);
  std::cout << "\n=== global CERTA explanation of the black box ===\n"
            << certa::explain::RenderGlobalExplanation(
                   global, dataset.left.schema(), dataset.right.schema());

  // 5. The audit question: do the black box's most necessary attributes
  //    appear in the transparent rules?
  std::cout << "\n=== audit verdict ===\n";
  std::vector<bool> used_by_rules(
      static_cast<size_t>(dataset.left.schema().size()), false);
  for (const certa::models::MatchingRule& rule : rules.rules()) {
    for (const auto& condition : rule.conditions) {
      used_by_rules[static_cast<size_t>(condition.attribute)] = true;
    }
  }
  int agreement = 0;
  int checked = 0;
  for (const certa::explain::AttributeRef& ref :
       global.mean_match.Ranked()) {
    if (checked >= 3) break;  // top-3 black-box attributes
    ++checked;
    bool sound = used_by_rules[static_cast<size_t>(ref.index)];
    if (sound) ++agreement;
    std::cout << "  " << certa::explain::QualifiedAttributeName(
                     dataset.left.schema(), dataset.right.schema(), ref)
              << (sound ? "  — also used by the transparent rules"
                        : "  — NOT used by the transparent rules")
              << "\n";
  }
  std::cout << (agreement >= 2
                    ? "verdict: the black box attends to rule-backed "
                      "attributes (predicting for sound reasons)\n"
                    : "verdict: the black box relies on attributes the "
                      "rules do not — investigate before trusting it\n");
  return 0;
}
