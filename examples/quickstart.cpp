// Quickstart: synthesize an ER benchmark, train a matcher, and explain
// one of its predictions with CERTA — both the saliency scores and the
// counterfactual examples.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <iostream>

#include "core/certa_explainer.h"
#include "data/benchmarks.h"
#include "models/trainer.h"
#include "util/string_utils.h"

int main() {
  // 1. A dataset: two sources plus labelled train/test pairs. Here the
  //    synthetic Abt-Buy benchmark; data::LoadDatasetDirectory() reads
  //    real DeepMatcher-format CSVs instead if you have them.
  certa::data::Dataset dataset = certa::data::MakeBenchmark("AB");
  std::cout << "dataset " << dataset.full_name << ": "
            << dataset.left.size() << " + " << dataset.right.size()
            << " records, " << dataset.train.size() << " train pairs\n";

  // 2. A black-box matcher. Any models::Matcher works; we train the
  //    Ditto stand-in on the train split.
  std::unique_ptr<certa::models::Matcher> model = certa::models::TrainMatcher(
      certa::models::ModelKind::kDitto, dataset);
  std::cout << "trained " << model->name() << ", test F1 = "
            << certa::FormatDouble(
                   certa::models::EvaluateF1(*model, dataset.left,
                                             dataset.right, dataset.test),
                   3)
            << "\n";

  // 3. Wrap the model in a score cache (explanations re-score many
  //    perturbed copies) and build the explainer.
  certa::models::CachingMatcher cached(model.get());
  certa::explain::ExplainContext context{&cached, &dataset.left,
                                         &dataset.right};
  certa::core::CertaExplainer certa(context);

  // 4. Explain the first test pair.
  const certa::data::LabeledPair& pair = dataset.test.front();
  const certa::data::Record& u = dataset.left.record(pair.left_index);
  const certa::data::Record& v = dataset.right.record(pair.right_index);
  double score = cached.Score(u, v);
  std::cout << "\nexplaining <u, v>, model score "
            << certa::FormatDouble(score, 3) << " ("
            << (score >= 0.5 ? "Match" : "Non-Match") << ", label "
            << pair.label << ")\n";

  certa::core::CertaResult result = certa.Explain(u, v);

  std::cout << "\nsaliency (probability of necessity):\n";
  for (const certa::explain::AttributeRef& ref : result.saliency.Ranked()) {
    std::cout << "  "
              << certa::explain::QualifiedAttributeName(
                     dataset.left.schema(), dataset.right.schema(), ref)
              << " = "
              << certa::FormatDouble(result.saliency.score(ref), 3) << "\n";
  }

  std::cout << "\ncounterfactuals: " << result.counterfactuals.size()
            << " examples, sufficiency "
            << certa::FormatDouble(result.best_sufficiency, 2) << "\n";
  if (!result.counterfactuals.empty()) {
    const certa::explain::CounterfactualExample& example =
        result.counterfactuals.front();
    std::cout << "first example flips the score to "
              << certa::FormatDouble(example.score, 3) << " by changing:\n";
    for (const certa::explain::AttributeRef& ref :
         example.changed_attributes) {
      const certa::data::Record& changed =
          ref.side == certa::data::Side::kLeft ? example.left
                                               : example.right;
      std::cout << "  "
                << certa::explain::QualifiedAttributeName(
                       dataset.left.schema(), dataset.right.schema(), ref)
                << " -> \"" << changed.value(ref.index) << "\"\n";
    }
  }
  return 0;
}
