// A full ER pipeline on raw tables, the way a downstream user would run
// the library in production: block candidate pairs, score them with a
// trained matcher, and explain the decisions — including drilling one
// attribute down to token level (the paper's future-work extension).
//
//   ./build/examples/end_to_end_er

#include <iostream>

#include "core/certa_explainer.h"
#include "core/token_explainer.h"
#include "data/benchmarks.h"
#include "data/blocking.h"
#include "explain/report.h"
#include "models/trainer.h"
#include "util/string_utils.h"

int main() {
  // Raw input: two product tables (we reuse the synthetic Walmart-
  // Amazon sources; the labelled pairs are used for training the
  // matcher and for measuring blocking recall only).
  certa::data::Dataset dataset = certa::data::MakeBenchmark("WA");

  // Stage 1 — blocking: candidate generation by IDF-weighted token
  // overlap, instead of scoring all |U| x |V| pairs.
  certa::data::BlockingOptions blocking;
  blocking.max_candidates_per_record = 10;
  auto candidates = certa::data::BlockAll(dataset.left, dataset.right,
                                          blocking);
  double recall = certa::data::BlockingRecall(candidates, dataset.test);
  std::cout << "blocking: " << candidates.size() << " candidates out of "
            << dataset.left.size() * dataset.right.size()
            << " possible pairs; recall on test matches = "
            << certa::FormatDouble(recall, 3) << "\n";

  // Stage 2 — matching: score each candidate with a trained model.
  auto model = certa::models::TrainMatcher(
      certa::models::ModelKind::kDeepMatcher, dataset);
  certa::models::CachingMatcher cached(model.get());
  std::vector<std::pair<int, int>> matches;
  for (const auto& [li, ri] : candidates) {
    if (cached.Predict(dataset.left.record(li), dataset.right.record(ri))) {
      matches.emplace_back(li, ri);
    }
  }
  std::cout << "matching: " << matches.size()
            << " predicted matches among the candidates\n";
  if (matches.empty()) return 0;

  // Stage 3 — explanation: a full CERTA report for the first match.
  certa::explain::ExplainContext context{&cached, &dataset.left,
                                         &dataset.right};
  certa::core::CertaExplainer certa(context);
  const auto& [li, ri] = matches.front();
  const auto& u = dataset.left.record(li);
  const auto& v = dataset.right.record(ri);
  certa::core::CertaResult result = certa.Explain(u, v);
  std::cout << "\n--- explanation report ---\n"
            << certa::explain::RenderReport(
                   u, v, dataset.left.schema(), dataset.right.schema(),
                   cached.Score(u, v), result.saliency,
                   result.counterfactuals);

  // Stage 4 — token drill-down on the most salient attribute.
  certa::explain::AttributeRef top = result.saliency.Ranked().front();
  certa::core::TokenExplainer tokens(context);
  certa::core::TokenExplanation token_explanation =
      tokens.Explain(u, v, top);
  std::cout << "\ntoken-level saliency for "
            << certa::explain::QualifiedAttributeName(
                   dataset.left.schema(), dataset.right.schema(), top)
            << ":\n";
  for (int t : token_explanation.Ranked()) {
    std::cout << "  " << token_explanation.tokens[t] << " = "
              << certa::FormatDouble(token_explanation.scores[t], 3)
              << "\n";
  }
  return 0;
}
