// CERTA treats the ER model as a black box — anything implementing
// models::Matcher can be explained, not just the three bundled DL
// stand-ins. This example plugs in a hand-written rule-based matcher
// (the kind a practitioner might already have in production) and asks
// CERTA which attributes its rules actually depend on. The explanation
// recovers the rule structure without reading the code.
//
//   ./build/examples/custom_matcher

#include <algorithm>
#include <iostream>

#include "core/certa_explainer.h"
#include "data/benchmarks.h"
#include "models/trainer.h"
#include "text/similarity.h"
#include "text/tokenizer.h"
#include "util/string_utils.h"

namespace {

/// A hand-written matcher for the restaurant benchmark: two records
/// match when the phone numbers agree, or when both the name and the
/// street address are very similar. City and type are ignored entirely
/// — which the explanation should expose.
class RuleBasedMatcher : public certa::models::Matcher {
 public:
  explicit RuleBasedMatcher(const certa::data::Schema& schema)
      : name_index_(schema.IndexOf("name")),
        addr_index_(schema.IndexOf("addr")),
        phone_index_(schema.IndexOf("phone")) {}

  double Score(const certa::data::Record& u,
               const certa::data::Record& v) const override {
    // Rule 1: identical normalized phone number -> match.
    if (phone_index_ >= 0) {
      std::string phone_u = certa::text::Normalize(u.value(phone_index_));
      std::string phone_v = certa::text::Normalize(v.value(phone_index_));
      if (!phone_u.empty() && phone_u == phone_v) return 0.95;
    }
    // Rule 2: name AND address highly similar -> match.
    double name_similarity =
        name_index_ >= 0 ? certa::text::AttributeSimilarity(
                               u.value(name_index_), v.value(name_index_))
                         : 0.0;
    double addr_similarity =
        addr_index_ >= 0 ? certa::text::AttributeSimilarity(
                               u.value(addr_index_), v.value(addr_index_))
                         : 0.0;
    double rule2 = std::min(name_similarity, addr_similarity);
    return rule2 >= 0.55 ? 0.5 + 0.5 * rule2 : 0.45 * rule2;
  }

  std::string name() const override { return "RuleBased"; }

 private:
  int name_index_;
  int addr_index_;
  int phone_index_;
};

}  // namespace

int main() {
  certa::data::Dataset dataset = certa::data::MakeBenchmark("FZ");
  RuleBasedMatcher matcher(dataset.left.schema());
  std::cout << "rule-based matcher test F1 = "
            << certa::FormatDouble(
                   certa::models::EvaluateF1(matcher, dataset.left,
                                             dataset.right, dataset.test),
                   3)
            << "\n";

  certa::models::CachingMatcher cached(&matcher);
  certa::explain::ExplainContext context{&cached, &dataset.left,
                                         &dataset.right};
  certa::core::CertaExplainer explainer(context);

  // Average the saliency over several predicted matches: the profile
  // shows which attributes the rules actually consult.
  std::vector<double> totals;
  int explained = 0;
  for (const auto& pair : dataset.test) {
    const auto& u = dataset.left.record(pair.left_index);
    const auto& v = dataset.right.record(pair.right_index);
    if (!cached.Predict(u, v)) continue;
    certa::core::CertaResult result = explainer.Explain(u, v);
    std::vector<double> flat = result.saliency.Flattened();
    if (totals.empty()) totals.assign(flat.size(), 0.0);
    for (size_t i = 0; i < flat.size(); ++i) totals[i] += flat[i];
    if (++explained >= 10) break;
  }
  if (explained == 0) {
    std::cout << "no predicted matches to explain\n";
    return 0;
  }
  std::cout << "\nmean CERTA saliency over " << explained
            << " predicted matches (the rules use phone, name, addr — "
               "and the explanation should rank city/type/class "
               "lowest):\n";
  const int left_n = dataset.left.schema().size();
  for (size_t i = 0; i < totals.size(); ++i) {
    bool is_left = static_cast<int>(i) < left_n;
    std::string name =
        std::string(is_left ? "L_" : "R_") +
        (is_left ? dataset.left.schema().name(static_cast<int>(i))
                 : dataset.right.schema().name(static_cast<int>(i) - left_n));
    std::cout << "  " << name << " = "
              << certa::FormatDouble(totals[i] / explained, 3) << "\n";
  }
  return 0;
}
