// The paper's motivating workflow (Sect. 1): a model misclassifies some
// pairs; explanations tell you *why*, and applying the explanation back
// to the input verifies which method is faithful. This example finds
// wrong predictions on the synthetic Amazon-Google benchmark (a hard
// one), compares CERTA with Mojito/LandMark/SHAP on them, and measures
// how much each explanation actually moves the score.
//
//   ./build/examples/debug_misclassification

#include <iostream>

#include "core/certa_explainer.h"
#include "data/benchmarks.h"
#include "explain/landmark.h"
#include "explain/mojito.h"
#include "explain/shap.h"
#include "models/trainer.h"
#include "util/string_utils.h"
#include "util/table_printer.h"

namespace {

/// Applies a saliency explanation the way Fig. 4 does: copy the top-2
/// salient attribute values across the pair (making it more similar)
/// and report the new score.
double ApplyExplanation(const certa::models::Matcher& model,
                        const certa::data::Record& u,
                        const certa::data::Record& v,
                        const certa::explain::SaliencyExplanation& expl) {
  certa::data::Record mu = u;
  certa::data::Record mv = v;
  std::vector<certa::explain::AttributeRef> ranked = expl.Ranked();
  for (size_t k = 0; k < ranked.size() && k < 2; ++k) {
    const certa::explain::AttributeRef& ref = ranked[k];
    if (ref.side == certa::data::Side::kLeft) {
      if (static_cast<size_t>(ref.index) < mv.values.size()) {
        mv.values[ref.index] = mu.values[ref.index];
      }
    } else if (static_cast<size_t>(ref.index) < mu.values.size()) {
      mu.values[ref.index] = mv.values[ref.index];
    }
  }
  return model.Score(mu, mv);
}

}  // namespace

int main() {
  certa::data::Dataset dataset = certa::data::MakeBenchmark("AG");
  auto model = certa::models::TrainMatcher(
      certa::models::ModelKind::kDeepMatcher, dataset);
  certa::models::CachingMatcher cached(model.get());
  certa::explain::ExplainContext context{&cached, &dataset.left,
                                         &dataset.right};

  // Collect the false negatives: true matches the model rejects.
  std::vector<const certa::data::LabeledPair*> wrong;
  for (const auto& pair : dataset.test) {
    const auto& u = dataset.left.record(pair.left_index);
    const auto& v = dataset.right.record(pair.right_index);
    if (pair.label == 1 && !cached.Predict(u, v)) wrong.push_back(&pair);
    if (wrong.size() >= 3) break;
  }
  std::cout << "found " << wrong.size()
            << " false negatives on AG with " << model->name() << "\n";
  if (wrong.empty()) return 0;

  certa::core::CertaExplainer certa(context);
  certa::explain::MojitoExplainer mojito(context);
  certa::explain::LandmarkExplainer landmark(context);
  certa::explain::ShapExplainer shap(context);
  std::vector<certa::explain::SaliencyExplainer*> methods = {
      &certa, &mojito, &landmark, &shap};

  certa::TablePrinter table({"Pair", "Original", "CERTA", "Mojito",
                             "LandMark", "SHAP"});
  for (size_t w = 0; w < wrong.size(); ++w) {
    const auto& u = dataset.left.record(wrong[w]->left_index);
    const auto& v = dataset.right.record(wrong[w]->right_index);
    std::vector<std::string> row = {
        "fn " + std::to_string(w + 1),
        certa::FormatDouble(cached.Score(u, v), 3)};
    for (certa::explain::SaliencyExplainer* method : methods) {
      double moved =
          ApplyExplanation(cached, u, v, method->ExplainSaliency(u, v));
      row.push_back(certa::FormatDouble(moved, 3));
    }
    table.AddRow(row);

    // Show what CERTA blames, in plain words.
    certa::explain::SaliencyExplanation expl = certa.ExplainSaliency(u, v);
    auto top = expl.Ranked().front();
    std::cout << "fn " << w + 1 << ": most necessary attribute is "
              << certa::explain::QualifiedAttributeName(
                     dataset.left.schema(), dataset.right.schema(), top)
              << " (phi = " << certa::FormatDouble(expl.score(top), 3)
              << ")\n";
  }
  std::cout << "\nscore after copying each method's top-2 salient "
               "attributes across the pair\n(faithful explanations push "
               "the false negative back toward Match):\n";
  table.Print(std::cout);
  return 0;
}
