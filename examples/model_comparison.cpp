// Explain the same prediction under all three ER models. Record-level
// models (DeepER) spread necessity across attributes — the model cannot
// tell which attribute a token came from — while attribute-level models
// (DeepMatcher) concentrate it, and sequence models with attribute
// markers (Ditto) sit in between. This mirrors the paper's discussion
// of why attribute-level explanations fit how each architecture reads
// its input.
//
//   ./build/examples/model_comparison

#include <iostream>

#include "core/certa_explainer.h"
#include "data/benchmarks.h"
#include "models/trainer.h"
#include "util/string_utils.h"
#include "util/table_printer.h"

int main() {
  certa::data::Dataset dataset = certa::data::MakeBenchmark("WA");

  // One true match explained under every model.
  const certa::data::LabeledPair* pair = nullptr;
  for (const auto& candidate : dataset.test) {
    if (candidate.label == 1) {
      pair = &candidate;
      break;
    }
  }
  if (pair == nullptr) {
    std::cout << "no match in the WA test split\n";
    return 0;
  }
  const auto& u = dataset.left.record(pair->left_index);
  const auto& v = dataset.right.record(pair->right_index);

  std::cout << "pair (true match) on " << dataset.full_name << ":\n";
  for (int a = 0; a < dataset.left.schema().size(); ++a) {
    std::cout << "  L_" << dataset.left.schema().name(a) << " = "
              << u.value(a) << "\n";
  }
  for (int a = 0; a < dataset.right.schema().size(); ++a) {
    std::cout << "  R_" << dataset.right.schema().name(a) << " = "
              << v.value(a) << "\n";
  }

  std::vector<std::string> header = {"Model", "score"};
  for (int a = 0; a < dataset.left.schema().size(); ++a) {
    header.push_back("L_" + dataset.left.schema().name(a));
  }
  for (int a = 0; a < dataset.right.schema().size(); ++a) {
    header.push_back("R_" + dataset.right.schema().name(a));
  }
  certa::TablePrinter table(header);

  for (certa::models::ModelKind kind : certa::models::AllModelKinds()) {
    auto model = certa::models::TrainMatcher(kind, dataset);
    certa::models::CachingMatcher cached(model.get());
    certa::explain::ExplainContext context{&cached, &dataset.left,
                                           &dataset.right};
    certa::core::CertaExplainer explainer(context);
    certa::core::CertaResult result = explainer.Explain(u, v);
    std::vector<std::string> row = {
        model->name(), certa::FormatDouble(cached.Score(u, v), 3)};
    for (double score : result.saliency.Flattened()) {
      row.push_back(certa::FormatDouble(score, 3));
    }
    table.AddRow(row);
  }
  std::cout << "\nCERTA saliency (probability of necessity) per model:\n";
  table.Print(std::cout);
  return 0;
}
