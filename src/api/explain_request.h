#ifndef CERTA_API_EXPLAIN_REQUEST_H_
#define CERTA_API_EXPLAIN_REQUEST_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "api/version.h"
#include "util/json_parser.h"

namespace certa::api {

/// One explanation request — THE request contract of this codebase.
///
/// Every front door builds it through the same parse → validate →
/// serialize path in this file:
///   - CLI flags (`certa explain`, tools/certa_cli.cc) via ApplyField;
///   - serve job lines (`key=value ...`) via ParseKeyValueLine;
///   - the network wire protocol (src/net) via FromJson;
///   - job checkpoints (src/persist) via ToJson/FromJson, so a job dir
///     records exactly the request it is running.
/// Before this existed the same fields lived in three divergent copies
/// (ad-hoc CLI parsing, service::JobSpec, a subset of
/// core::CertaExplainer::Options) with three validation behaviors.
///
/// Canonical field names are the snake_case JSON keys listed per field
/// below; ApplyField also accepts dashed spellings ("deadline-ms") and
/// the deprecated aliases kept for old clients (DeprecationNote).
struct ExplainRequest {
  /// "schema_version". Always serialized; inputs newer than
  /// kSchemaVersion are rejected, never guessed at.
  int schema_version = kSchemaVersion;
  /// "id": job-dir name under the runner's job root; empty = assigned.
  std::string id;
  /// "dataset": built-in benchmark code, or any code when data_dir set.
  std::string dataset = "AB";
  /// "data_dir" (deprecated alias "data"): DeepMatcher-format
  /// directory; empty = built-in benchmark.
  std::string data_dir;
  /// "model": "deeper" | "deepmatcher" | "ditto" | "svm".
  std::string model = "svm";
  /// "pair": index into the dataset's test split.
  int pair_index = 0;
  /// "triangles": τ, the number of open triangles (paper uses 100).
  int triangles = 100;
  /// "threads": scoring worker threads; results are bit-identical at
  /// any value.
  int threads = 1;
  /// "seed" for triangle sampling and augmentation.
  uint64_t seed = 7;
  /// "cache": memoize perturbed-pair scores within the run.
  bool use_cache = true;
  /// "budget": hard model-call budget; 0 = unlimited. Exhaustion
  /// truncates the result (status "truncated") instead of failing.
  long long budget = 0;
  /// "deadline_ms": whole-job deadline; 0 = none. Durable runs park on
  /// overrun (watchdog), in-process runs truncate via resilience.
  long long deadline_ms = 0;
  /// "fault_rate" in [0, 1]: injected model-call failure rate (testing
  /// and chaos drills). Rejected for durable jobs — journaled scores
  /// must come from the real model.
  double fault_rate = 0.0;

  /// Range/enum validation (model name, pair >= 0, triangles >= 2,
  /// threads >= 1, budget/deadline >= 0, fault_rate in [0,1], and
  /// schema_version <= kSchemaVersion). False + *error on violation.
  bool Validate(std::string* error) const;

  /// Canonical compact-JSON serialization; FromJson(ToJson()) is the
  /// identity for any valid request.
  std::string ToJson() const;
};

/// Sets one field from its canonical name (or an accepted alias) and a
/// string value — the single field-level parse used by every text front
/// end. Key spelling is normalized ('-' == '_'). Returns false with a
/// clear *error for unknown keys and malformed values; values are
/// parsed with the strict numeric parsers (never atoi semantics).
bool ApplyField(std::string_view key, std::string_view value,
                ExplainRequest* request, std::string* error);

/// Non-empty exactly when `key` is a deprecated alias: a note telling
/// the caller what to use instead (front ends print it once per use).
std::string DeprecationNote(std::string_view key);

/// Parses a whitespace-separated "key=value ..." job line (the `certa
/// serve` stdin protocol). False + *error on the first bad token.
bool ParseKeyValueLine(std::string_view line, ExplainRequest* request,
                       std::string* error);

/// Parses a JSON object into *request. Unknown keys are rejected (a
/// typo'd knob must not silently fall back to a default), and a
/// schema_version newer than kSchemaVersion fails with a clear
/// "speaks schema N, this build supports <= M" error.
///
/// Strictness follows the request's own declared version: a request
/// declaring schema_version >= 2 must use canonical snake_case keys —
/// dashed spellings and the deprecated aliases ("data", "pair_index")
/// are rejected with a pointer to the canonical key. Requests
/// declaring v1 (or nothing) keep the permissive surface; when
/// `deprecation_notes` is non-null each accepted legacy spelling
/// appends one human-readable migration note (callers decide how
/// often to surface them — the wire server emits at most one per
/// connection).
bool FromJson(const JsonValue& value, ExplainRequest* request,
              std::string* error,
              std::vector<std::string>* deprecation_notes = nullptr);
bool FromJsonText(std::string_view text, ExplainRequest* request,
                  std::string* error,
                  std::vector<std::string>* deprecation_notes = nullptr);

}  // namespace certa::api

#endif  // CERTA_API_EXPLAIN_REQUEST_H_
