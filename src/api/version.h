#ifndef CERTA_API_VERSION_H_
#define CERTA_API_VERSION_H_

namespace certa::api {

/// Version of the ExplainRequest schema and everything stamped with it:
/// wire-protocol frames (docs/SERVICE.md), result.json, metrics.json,
/// and job-checkpoint headers. Bump when a field changes meaning or a
/// required field is added; readers accept anything up to their own
/// version and reject newer inputs with a clear error rather than
/// misparse them.
///
/// Header-only on purpose: exporters (core, obs) stamp the constant
/// without linking the api library.
///
/// Version history:
///   1 — batch protocol: submit/status/result/cancel/stats/ping;
///       dashed key spellings and the aliases "data"/"pair_index"
///       accepted everywhere.
///   2 — streaming protocol: adds upsert/remove/match/invalidations
///       verbs and the ping `capabilities` block; requests declaring
///       schema_version >= 2 accept canonical snake_case keys only
///       (aliases and dashed spellings are rejected, not renamed).
///       v1 frames keep parsing bit-identically.
inline constexpr int kSchemaVersion = 2;

}  // namespace certa::api

#endif  // CERTA_API_VERSION_H_
