#ifndef CERTA_API_VERSION_H_
#define CERTA_API_VERSION_H_

namespace certa::api {

/// Version of the ExplainRequest schema and everything stamped with it:
/// wire-protocol frames (docs/SERVICE.md), result.json, metrics.json,
/// and job-checkpoint headers. Bump when a field changes meaning or a
/// required field is added; readers accept anything up to their own
/// version and reject newer inputs with a clear error rather than
/// misparse them.
///
/// Header-only on purpose: exporters (core, obs) stamp the constant
/// without linking the api library.
inline constexpr int kSchemaVersion = 1;

}  // namespace certa::api

#endif  // CERTA_API_VERSION_H_
