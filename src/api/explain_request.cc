#include "api/explain_request.h"

#include <limits>

#include "util/json_writer.h"
#include "util/string_utils.h"

namespace certa::api {
namespace {

/// '-' and '_' spell the same key: CLI flags use dashes
/// ("--deadline-ms"), wire/JSON fields use underscores ("deadline_ms").
std::string NormalizeKey(std::string_view key) {
  std::string normalized(key);
  for (char& c : normalized) {
    if (c == '-') c = '_';
  }
  return normalized;
}

bool FailField(const std::string& key, const std::string& what,
               std::string* error) {
  if (error != nullptr) *error = key + " " + what;
  return false;
}

bool ParseIntField(const std::string& key, std::string_view value,
                   long long min_value, long long* out, std::string* error) {
  long long parsed = 0;
  if (!ParseInt64(value, &parsed)) {
    return FailField(key, "is not an integer: '" + std::string(value) + "'",
                     error);
  }
  if (parsed < min_value) {
    return FailField(key, "must be >= " + std::to_string(min_value) +
                              " (got " + std::to_string(parsed) + ")",
                     error);
  }
  *out = parsed;
  return true;
}

bool NarrowToInt(const std::string& key, long long value, int* out,
                 std::string* error) {
  if (value > std::numeric_limits<int>::max()) {
    return FailField(key, "is out of range (got " + std::to_string(value) +
                              ")",
                     error);
  }
  *out = static_cast<int>(value);
  return true;
}

bool KnownModel(const std::string& model) {
  return model == "deeper" || model == "deepmatcher" || model == "ditto" ||
         model == "svm";
}

}  // namespace

bool ExplainRequest::Validate(std::string* error) const {
  auto fail = [&](const std::string& message) {
    if (error != nullptr) *error = message;
    return false;
  };
  if (schema_version > kSchemaVersion) {
    return fail("request speaks schema_version " +
                std::to_string(schema_version) +
                "; this build supports <= " +
                std::to_string(kSchemaVersion) +
                " (upgrade the server, or send an older schema)");
  }
  if (schema_version < 1) {
    return fail("schema_version must be >= 1 (got " +
                std::to_string(schema_version) + ")");
  }
  if (dataset.empty()) return fail("dataset must not be empty");
  if (!KnownModel(model)) {
    return fail("unknown model '" + model +
                "' (want deeper | deepmatcher | ditto | svm)");
  }
  if (pair_index < 0) return fail("pair must be >= 0");
  if (triangles < 2) return fail("triangles must be >= 2");
  if (threads < 1) return fail("threads must be >= 1");
  if (budget < 0) return fail("budget must be >= 0");
  if (deadline_ms < 0) return fail("deadline_ms must be >= 0");
  if (!(fault_rate >= 0.0 && fault_rate <= 1.0)) {
    return fail("fault_rate must be in [0, 1]");
  }
  return true;
}

std::string ExplainRequest::ToJson() const {
  JsonWriter json;
  json.BeginObject();
  json.Key("schema_version");
  json.Int(schema_version);
  json.Key("id");
  json.String(id);
  json.Key("dataset");
  json.String(dataset);
  json.Key("data_dir");
  json.String(data_dir);
  json.Key("model");
  json.String(model);
  json.Key("pair");
  json.Int(pair_index);
  json.Key("triangles");
  json.Int(triangles);
  json.Key("threads");
  json.Int(threads);
  json.Key("seed");
  json.Int(static_cast<long long>(seed));
  json.Key("cache");
  json.Bool(use_cache);
  json.Key("budget");
  json.Int(budget);
  json.Key("deadline_ms");
  json.Int(deadline_ms);
  json.Key("fault_rate");
  json.Number(fault_rate);
  json.EndObject();
  return json.str();
}

bool ApplyField(std::string_view key, std::string_view value,
                ExplainRequest* request, std::string* error) {
  const std::string k = NormalizeKey(key);
  long long parsed = 0;
  if (k == "schema_version") {
    if (!ParseIntField(k, value, 1, &parsed, error)) return false;
    // Future versions pass here so Validate can phrase the rejection;
    // what must never happen is silently misreading their fields.
    if (parsed > std::numeric_limits<int>::max()) {
      return FailField(k, "is out of range", error);
    }
    request->schema_version = static_cast<int>(parsed);
    return true;
  }
  if (k == "id") {
    request->id = std::string(value);
    return true;
  }
  if (k == "dataset") {
    request->dataset = std::string(value);
    return true;
  }
  if (k == "data_dir" || k == "data") {
    request->data_dir = std::string(value);
    return true;
  }
  if (k == "model") {
    request->model = ToLowerAscii(value);
    return true;
  }
  if (k == "pair" || k == "pair_index") {
    if (!ParseIntField("pair", value, 0, &parsed, error)) return false;
    return NarrowToInt("pair", parsed, &request->pair_index, error);
  }
  if (k == "triangles") {
    if (!ParseIntField(k, value, 2, &parsed, error)) return false;
    return NarrowToInt(k, parsed, &request->triangles, error);
  }
  if (k == "threads") {
    if (!ParseIntField(k, value, 1, &parsed, error)) return false;
    return NarrowToInt(k, parsed, &request->threads, error);
  }
  if (k == "seed") {
    if (!ParseIntField(k, value, 0, &parsed, error)) return false;
    request->seed = static_cast<uint64_t>(parsed);
    return true;
  }
  if (k == "cache") {
    request->use_cache = value != "0" && value != "false";
    return true;
  }
  if (k == "budget") {
    return ParseIntField(k, value, 0, &request->budget, error);
  }
  if (k == "deadline_ms") {
    return ParseIntField(k, value, 0, &request->deadline_ms, error);
  }
  if (k == "fault_rate") {
    double rate = 0.0;
    if (!ParseDouble(value, &rate) || rate < 0.0 || rate > 1.0) {
      return FailField(k, "must be in [0, 1]", error);
    }
    request->fault_rate = rate;
    return true;
  }
  return FailField(std::string(key), "is not a known request field", error);
}

std::string DeprecationNote(std::string_view key) {
  const std::string k = NormalizeKey(key);
  std::string note;
  if (k == "data") {
    note.append("'").append(key).append(
        "' is deprecated; use 'data_dir' (--data-dir)");
  } else if (k == "pair_index") {
    note.append("'").append(key).append("' is deprecated; use 'pair'");
  }
  return note;
}

bool ParseKeyValueLine(std::string_view line, ExplainRequest* request,
                       std::string* error) {
  ExplainRequest parsed = *request;
  for (const std::string& token : SplitWhitespace(line)) {
    const size_t eq = token.find('=');
    if (eq == std::string::npos) {
      if (error != nullptr) {
        *error = "bad token '" + token + "' (want key=value)";
      }
      return false;
    }
    if (!ApplyField(token.substr(0, eq), token.substr(eq + 1), &parsed,
                    error)) {
      return false;
    }
  }
  *request = parsed;
  return true;
}

bool FromJson(const JsonValue& value, ExplainRequest* request,
              std::string* error,
              std::vector<std::string>* deprecation_notes) {
  auto fail = [&](const std::string& message) {
    if (error != nullptr) *error = message;
    return false;
  };
  if (!value.is_object()) return fail("request must be a JSON object");

  // Version first: a future-versioned request must get the version
  // error, not a confusing unknown-key one for a field we do not know.
  const JsonValue* version = value.Find("schema_version");
  long long declared_version = 1;
  if (version != nullptr) {
    if (!version->is_integer()) {
      return fail("schema_version must be an integer");
    }
    if (version->int_value() > kSchemaVersion) {
      return fail("request speaks schema_version " +
                  std::to_string(version->int_value()) +
                  "; this build supports <= " +
                  std::to_string(kSchemaVersion));
    }
    declared_version = version->int_value();
  }
  // The request's own declared version picks the key surface: v2 is
  // canonical-only, v1 keeps the legacy spellings bit-identically.
  const bool canonical_only = declared_version >= 2;

  ExplainRequest parsed;
  for (const auto& [key, member] : value.object_items()) {
    if (canonical_only) {
      const std::string normalized = NormalizeKey(key);
      if (normalized != key) {
        return fail("'" + key + "' is not accepted at schema_version " +
                    std::to_string(declared_version) +
                    "; canonical keys are snake_case (use '" + normalized +
                    "')");
      }
      if (key == "data" || key == "pair_index") {
        return fail("'" + key + "' was retired at schema_version 2; use '" +
                    std::string(key == "data" ? "data_dir" : "pair") + "'");
      }
    } else if (deprecation_notes != nullptr) {
      std::string note = DeprecationNote(key);
      if (note.empty() && key.find('-') != std::string::npos) {
        note = "'" + key + "' uses a dashed key; canonical wire keys are "
               "snake_case ('" + NormalizeKey(key) +
               "'), required from schema_version 2";
      }
      if (!note.empty()) deprecation_notes->push_back(note);
    }
    std::string text;
    switch (member.type()) {
      case JsonValue::Type::kString:
        text = member.string_value();
        break;
      case JsonValue::Type::kBool:
        text.push_back(member.bool_value() ? '1' : '0');
        break;
      case JsonValue::Type::kNumber:
        if (member.is_integer()) {
          text = std::to_string(member.int_value());
        } else {
          text = FormatDouble(member.number_value(), 9);
        }
        break;
      default:
        return fail("field '" + key + "' has unsupported JSON type");
    }
    if (!ApplyField(key, text, &parsed, error)) return false;
  }
  *request = parsed;
  return true;
}

bool FromJsonText(std::string_view text, ExplainRequest* request,
                  std::string* error,
                  std::vector<std::string>* deprecation_notes) {
  JsonValue value;
  if (!JsonValue::Parse(text, &value, error)) return false;
  return FromJson(value, request, error, deprecation_notes);
}

}  // namespace certa::api
