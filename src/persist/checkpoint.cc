#include "persist/checkpoint.h"

#include <cinttypes>
#include <cstdio>
#include <cstring>

#include "util/archive.h"
#include "util/atomic_file.h"
#include "util/crc32.h"

namespace certa::persist {
namespace {

/// Header line: "CERTACKPT <version> <crc32-hex>\n"; the CRC covers the
/// payload that follows the newline.
constexpr char kTag[] = "CERTACKPT";
constexpr int kVersion = 1;

/// TextArchive cannot round-trip an empty string value (its line
/// parser requires three fields), so every string field is stored with
/// a one-character prefix that the reader strips.
std::string Enc(const std::string& value) { return "-" + value; }

bool Dec(const TextArchive& archive, const std::string& key,
         std::string* out) {
  std::string raw;
  if (!archive.GetString(key, &raw) || raw.empty() || raw[0] != '-') {
    return false;
  }
  *out = raw.substr(1);
  return true;
}

std::string PayloadOf(const JobCheckpoint& c) {
  TextArchive archive;
  archive.PutString("job_id", Enc(c.job_id));
  archive.PutString("dataset", Enc(c.dataset));
  archive.PutString("data_dir", Enc(c.data_dir));
  archive.PutString("model", Enc(c.model));
  archive.PutInt("pair_index", c.pair_index);
  archive.PutInt("triangles", c.triangles);
  archive.PutInt("threads", c.threads);
  archive.PutInt("seed", static_cast<long long>(c.seed));
  archive.PutInt("use_cache", c.use_cache ? 1 : 0);
  archive.PutString("state", Enc(c.state));
  archive.PutString("phase", Enc(c.phase));
  archive.PutInt("triangles_total", c.triangles_total);
  archive.PutInt("triangles_tagged", c.triangles_tagged);
  archive.PutInt("predictions_performed", c.predictions_performed);
  archive.PutInt("total_flips", c.total_flips);
  archive.PutInt("fresh_scores", c.fresh_scores);
  archive.PutInt("replayed_scores", c.replayed_scores);
  archive.PutInt("tagged_lattices",
                 static_cast<long long>(c.tagged_lattices.size()));
  for (size_t i = 0; i < c.tagged_lattices.size(); ++i) {
    archive.PutString("lattice_" + std::to_string(i),
                      Enc(c.tagged_lattices[i]));
  }
  return archive.Serialize();
}

}  // namespace

std::string SerializeCheckpoint(const JobCheckpoint& checkpoint) {
  std::string payload = PayloadOf(checkpoint);
  char header[64];
  std::snprintf(header, sizeof(header), "%s %d %08x\n", kTag, kVersion,
                util::Crc32(payload));
  return std::string(header) + payload;
}

bool ParseCheckpoint(const std::string& text, JobCheckpoint* checkpoint) {
  size_t newline = text.find('\n');
  if (newline == std::string::npos) return false;
  const std::string header = text.substr(0, newline);
  char tag[16] = {0};
  int version = 0;
  unsigned int stored_crc = 0;
  if (std::sscanf(header.c_str(), "%15s %d %x", tag, &version,
                  &stored_crc) != 3 ||
      std::strcmp(tag, kTag) != 0 || version != kVersion) {
    return false;
  }
  const std::string payload = text.substr(newline + 1);
  if (util::Crc32(payload) != stored_crc) return false;

  TextArchive archive;
  if (!TextArchive::Parse(payload, &archive)) return false;
  JobCheckpoint c;
  long long value = 0;
  auto get_int = [&](const char* key, long long* out) {
    return archive.GetInt(key, out);
  };
  if (!Dec(archive, "job_id", &c.job_id) ||
      !Dec(archive, "dataset", &c.dataset) ||
      !Dec(archive, "data_dir", &c.data_dir) ||
      !Dec(archive, "model", &c.model) ||
      !Dec(archive, "state", &c.state) ||
      !Dec(archive, "phase", &c.phase)) {
    return false;
  }
  if (!get_int("pair_index", &value)) return false;
  c.pair_index = static_cast<int>(value);
  if (!get_int("triangles", &value)) return false;
  c.triangles = static_cast<int>(value);
  if (!get_int("threads", &value)) return false;
  c.threads = static_cast<int>(value);
  if (!get_int("seed", &value)) return false;
  c.seed = static_cast<uint64_t>(value);
  if (!get_int("use_cache", &value)) return false;
  c.use_cache = value != 0;
  if (!get_int("triangles_total", &value)) return false;
  c.triangles_total = static_cast<int>(value);
  if (!get_int("triangles_tagged", &value)) return false;
  c.triangles_tagged = static_cast<int>(value);
  if (!get_int("predictions_performed", &c.predictions_performed) ||
      !get_int("total_flips", &c.total_flips) ||
      !get_int("fresh_scores", &c.fresh_scores) ||
      !get_int("replayed_scores", &c.replayed_scores)) {
    return false;
  }
  if (!get_int("tagged_lattices", &value) || value < 0) return false;
  c.tagged_lattices.resize(static_cast<size_t>(value));
  for (size_t i = 0; i < c.tagged_lattices.size(); ++i) {
    if (!Dec(archive, "lattice_" + std::to_string(i),
             &c.tagged_lattices[i])) {
      return false;
    }
  }
  *checkpoint = std::move(c);
  return true;
}

bool SaveCheckpoint(const std::string& path,
                    const JobCheckpoint& checkpoint) {
  return util::AtomicWriteFile(path, SerializeCheckpoint(checkpoint));
}

bool LoadCheckpoint(const std::string& path, JobCheckpoint* checkpoint) {
  std::string text;
  if (!util::ReadFileToString(path, &text)) return false;
  return ParseCheckpoint(text, checkpoint);
}

std::string JournalPathInDir(const std::string& job_dir) {
  return job_dir + "/journal.wal";
}

std::string CheckpointPathInDir(const std::string& job_dir) {
  return job_dir + "/checkpoint.ckpt";
}

std::string ResultPathInDir(const std::string& job_dir) {
  return job_dir + "/result.json";
}

}  // namespace certa::persist
