#include "persist/checkpoint.h"

#include <cinttypes>
#include <cstdio>
#include <cstring>

#include "util/archive.h"
#include "util/atomic_file.h"
#include "util/crc32.h"

namespace certa::persist {
namespace {

/// Header line: "CERTACKPT <format> <schema_version> <crc32-hex>\n";
/// the CRC covers the payload that follows the newline. Format 1 (the
/// pre-ExplainRequest layout, header "CERTACKPT 1 <crc>") is still
/// readable; format 2 stores the request through its canonical JSON
/// path and stamps the request's schema_version into the header so a
/// checkpoint from a newer build is rejected up front with a clear
/// error.
constexpr char kTag[] = "CERTACKPT";
constexpr int kFormatVersion = 2;

/// TextArchive cannot round-trip an empty string value (its line
/// parser requires three fields), so every string field is stored with
/// a one-character prefix that the reader strips.
std::string Enc(const std::string& value) { return "-" + value; }

bool Dec(const TextArchive& archive, const std::string& key,
         std::string* out) {
  std::string raw;
  if (!archive.GetString(key, &raw) || raw.empty() || raw[0] != '-') {
    return false;
  }
  *out = raw.substr(1);
  return true;
}

std::string PayloadOf(const JobCheckpoint& c) {
  TextArchive archive;
  // The whole request rides as its canonical JSON — one serialize path
  // shared with the wire protocol, not a second field-by-field copy.
  archive.PutString("request", Enc(c.request.ToJson()));
  archive.PutString("state", Enc(c.state));
  archive.PutString("phase", Enc(c.phase));
  archive.PutInt("triangles_total", c.triangles_total);
  archive.PutInt("triangles_tagged", c.triangles_tagged);
  archive.PutInt("predictions_performed", c.predictions_performed);
  archive.PutInt("total_flips", c.total_flips);
  archive.PutInt("fresh_scores", c.fresh_scores);
  archive.PutInt("replayed_scores", c.replayed_scores);
  archive.PutInt("tagged_lattices",
                 static_cast<long long>(c.tagged_lattices.size()));
  for (size_t i = 0; i < c.tagged_lattices.size(); ++i) {
    archive.PutString("lattice_" + std::to_string(i),
                      Enc(c.tagged_lattices[i]));
  }
  return archive.Serialize();
}

bool SetError(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

/// Format-1 payloads carried the spec as loose archive fields; map
/// them onto the request so old job dirs stay resumable.
bool ParseLegacySpec(const TextArchive& archive, JobCheckpoint* c) {
  long long value = 0;
  if (!Dec(archive, "job_id", &c->request.id) ||
      !Dec(archive, "dataset", &c->request.dataset) ||
      !Dec(archive, "data_dir", &c->request.data_dir) ||
      !Dec(archive, "model", &c->request.model)) {
    return false;
  }
  if (!archive.GetInt("pair_index", &value)) return false;
  c->request.pair_index = static_cast<int>(value);
  if (!archive.GetInt("triangles", &value)) return false;
  c->request.triangles = static_cast<int>(value);
  if (!archive.GetInt("threads", &value)) return false;
  c->request.threads = static_cast<int>(value);
  if (!archive.GetInt("seed", &value)) return false;
  c->request.seed = static_cast<uint64_t>(value);
  if (!archive.GetInt("use_cache", &value)) return false;
  c->request.use_cache = value != 0;
  c->request.schema_version = 1;
  return true;
}

}  // namespace

std::string SerializeCheckpoint(const JobCheckpoint& checkpoint) {
  std::string payload = PayloadOf(checkpoint);
  char header[80];
  std::snprintf(header, sizeof(header), "%s %d %d %08x\n", kTag,
                kFormatVersion, checkpoint.request.schema_version,
                util::Crc32(payload));
  return std::string(header) + payload;
}

bool ParseCheckpoint(const std::string& text, JobCheckpoint* checkpoint,
                     std::string* error) {
  size_t newline = text.find('\n');
  if (newline == std::string::npos) {
    return SetError(error, "missing checkpoint header");
  }
  const std::string header = text.substr(0, newline);
  char tag[16] = {0};
  int format = 0;
  int schema_version = 0;
  unsigned int stored_crc = 0;
  bool legacy = false;
  if (std::sscanf(header.c_str(), "%15s %d %d %x", tag, &format,
                  &schema_version, &stored_crc) == 4 &&
      std::strcmp(tag, kTag) == 0) {
    if (format > kFormatVersion) {
      return SetError(error,
                      "checkpoint format " + std::to_string(format) +
                          " is newer than this build supports (<= " +
                          std::to_string(kFormatVersion) + ")");
    }
    // Four-token headers started at format 2; anything lower here is
    // corruption, not an old writer.
    if (format < 2) {
      return SetError(error, "malformed checkpoint header");
    }
    if (schema_version > api::kSchemaVersion) {
      return SetError(error,
                      "checkpoint request schema_version " +
                          std::to_string(schema_version) +
                          " is newer than this build supports (<= " +
                          std::to_string(api::kSchemaVersion) + ")");
    }
    if (schema_version < 1) {
      return SetError(error, "malformed checkpoint header");
    }
  } else if (std::sscanf(header.c_str(), "%15s %d %x", tag, &format,
                         &stored_crc) == 3 &&
             std::strcmp(tag, kTag) == 0 && format == 1) {
    legacy = true;
  } else {
    return SetError(error, "malformed checkpoint header");
  }
  const std::string payload = text.substr(newline + 1);
  if (util::Crc32(payload) != stored_crc) {
    return SetError(error, "checkpoint CRC mismatch");
  }

  TextArchive archive;
  if (!TextArchive::Parse(payload, &archive)) {
    return SetError(error, "malformed checkpoint payload");
  }
  JobCheckpoint c;
  if (legacy) {
    if (!ParseLegacySpec(archive, &c)) {
      return SetError(error, "malformed legacy checkpoint spec");
    }
  } else {
    std::string request_json;
    std::string request_error;
    if (!Dec(archive, "request", &request_json) ||
        !api::FromJsonText(request_json, &c.request, &request_error)) {
      return SetError(error, "bad checkpoint request: " + request_error);
    }
    // The header stamp must agree with the embedded request — a
    // disagreement means header corruption the CRC cannot see (it only
    // covers the payload).
    if (c.request.schema_version != schema_version) {
      return SetError(error,
                      "checkpoint header schema_version disagrees with "
                      "the stored request");
    }
  }
  long long value = 0;
  auto get_int = [&](const char* key, long long* out) {
    return archive.GetInt(key, out);
  };
  if (!Dec(archive, "state", &c.state) || !Dec(archive, "phase", &c.phase)) {
    return SetError(error, "malformed checkpoint lifecycle fields");
  }
  if (!get_int("triangles_total", &value)) return SetError(error, "malformed checkpoint");
  c.triangles_total = static_cast<int>(value);
  if (!get_int("triangles_tagged", &value)) return SetError(error, "malformed checkpoint");
  c.triangles_tagged = static_cast<int>(value);
  if (!get_int("predictions_performed", &c.predictions_performed) ||
      !get_int("total_flips", &c.total_flips) ||
      !get_int("fresh_scores", &c.fresh_scores) ||
      !get_int("replayed_scores", &c.replayed_scores)) {
    return SetError(error, "malformed checkpoint counters");
  }
  if (!get_int("tagged_lattices", &value) || value < 0) {
    return SetError(error, "malformed checkpoint lattice count");
  }
  c.tagged_lattices.resize(static_cast<size_t>(value));
  for (size_t i = 0; i < c.tagged_lattices.size(); ++i) {
    if (!Dec(archive, "lattice_" + std::to_string(i),
             &c.tagged_lattices[i])) {
      return SetError(error, "malformed checkpoint lattice entry");
    }
  }
  *checkpoint = std::move(c);
  return true;
}

bool SaveCheckpoint(const std::string& path,
                    const JobCheckpoint& checkpoint) {
  return util::AtomicWriteFile(path, SerializeCheckpoint(checkpoint));
}

bool LoadCheckpoint(const std::string& path, JobCheckpoint* checkpoint,
                    std::string* error) {
  std::string text;
  if (!util::ReadFileToString(path, &text)) {
    return SetError(error, "cannot read " + path);
  }
  return ParseCheckpoint(text, checkpoint, error);
}

std::string JournalPathInDir(const std::string& job_dir) {
  return job_dir + "/journal.wal";
}

std::string CheckpointPathInDir(const std::string& job_dir) {
  return job_dir + "/checkpoint.ckpt";
}

std::string ResultPathInDir(const std::string& job_dir) {
  return job_dir + "/result.json";
}

}  // namespace certa::persist
