#include "persist/journal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <unordered_set>

#include "util/atomic_file.h"
#include "util/crc32.h"

namespace certa::persist {
namespace {

constexpr char kMagic[8] = {'C', 'E', 'R', 'T', 'A', 'W', 'A', 'L'};
constexpr uint32_t kVersion = 1;
constexpr size_t kHeaderSize = sizeof(kMagic) + sizeof(kVersion);
constexpr size_t kPayloadSize =
    sizeof(uint64_t) + sizeof(uint64_t) + sizeof(double);
constexpr size_t kRecordSize = kPayloadSize + sizeof(uint32_t);

void AppendHeader(std::string* out) {
  out->append(kMagic, sizeof(kMagic));
  out->append(reinterpret_cast<const char*>(&kVersion), sizeof(kVersion));
}

void AppendRecord(const models::PairKey& key, double score,
                  std::string* out) {
  char payload[kPayloadSize];
  std::memcpy(payload, &key.lo, sizeof(key.lo));
  std::memcpy(payload + sizeof(key.lo), &key.hi, sizeof(key.hi));
  std::memcpy(payload + sizeof(key.lo) + sizeof(key.hi), &score,
              sizeof(score));
  uint32_t crc = util::Crc32(payload, kPayloadSize);
  out->append(payload, kPayloadSize);
  out->append(reinterpret_cast<const char*>(&crc), sizeof(crc));
}

/// Parses the valid record prefix of `data` (which includes the
/// header). Returns the byte offset one past the last valid record.
size_t ParseValidPrefix(const std::string& data, JournalReplay* replay) {
  if (data.size() < kHeaderSize ||
      std::memcmp(data.data(), kMagic, sizeof(kMagic)) != 0) {
    replay->bad_header = true;
    return 0;
  }
  uint32_t version = 0;
  std::memcpy(&version, data.data() + sizeof(kMagic), sizeof(version));
  if (version != kVersion) {
    replay->bad_header = true;
    return 0;
  }
  size_t offset = kHeaderSize;
  std::unordered_set<models::PairKey, models::PairKeyHasher> seen;
  while (offset + kRecordSize <= data.size()) {
    const char* record = data.data() + offset;
    uint32_t stored = 0;
    std::memcpy(&stored, record + kPayloadSize, sizeof(stored));
    if (util::Crc32(record, kPayloadSize) != stored) break;
    JournalEntry entry;
    std::memcpy(&entry.key.lo, record, sizeof(entry.key.lo));
    std::memcpy(&entry.key.hi, record + sizeof(entry.key.lo),
                sizeof(entry.key.hi));
    std::memcpy(&entry.score,
                record + sizeof(entry.key.lo) + sizeof(entry.key.hi),
                sizeof(entry.score));
    if (!seen.insert(entry.key).second) ++replay->duplicates;
    replay->entries.push_back(entry);
    offset += kRecordSize;
  }
  if (offset < data.size()) {
    replay->dropped_bytes = data.size() - offset;
    replay->corrupt_tail = true;
  }
  return offset;
}

}  // namespace

JournalReplay ReplayJournal(const std::string& path) {
  JournalReplay replay;
  std::string data;
  if (!util::ReadFileToString(path, &data)) {
    replay.missing = true;
    return replay;
  }
  ParseValidPrefix(data, &replay);
  return replay;
}

JournalWriter::~JournalWriter() { Close(); }

bool JournalWriter::Open(const std::string& path, JournalReplay* replay) {
  Close();
  JournalReplay local;
  JournalReplay* out = replay != nullptr ? replay : &local;
  *out = JournalReplay();

  std::string data;
  size_t valid_end = 0;
  bool rewrite = false;
  if (!util::ReadFileToString(path, &data)) {
    out->missing = true;
    rewrite = true;  // fresh file: write the header
  } else {
    valid_end = ParseValidPrefix(data, out);
    // A bad header means nothing in the file is trustworthy; start
    // over. (valid_end is 0 and entries is empty.)
    if (out->bad_header) rewrite = true;
  }

  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT, 0644);
  if (fd_ < 0) return false;
  if (rewrite) {
    std::string header;
    AppendHeader(&header);
    if (::ftruncate(fd_, 0) != 0) {
      Close();
      return false;
    }
    buffer_ = header;
    if (!Sync()) {
      Close();
      return false;
    }
    return true;
  }
  // Truncate the torn/corrupt tail so appends extend the valid prefix.
  if (::ftruncate(fd_, static_cast<off_t>(valid_end)) != 0 ||
      ::lseek(fd_, 0, SEEK_END) < 0) {
    Close();
    return false;
  }
  return true;
}

void JournalWriter::BindMetrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    metric_appends_ = nullptr;
    metric_bytes_ = nullptr;
    metric_syncs_ = nullptr;
    metric_fsync_us_ = nullptr;
    return;
  }
  metric_appends_ = registry->counter("journal.appends");
  metric_bytes_ = registry->counter("journal.bytes");
  metric_syncs_ = registry->counter("journal.syncs");
  metric_fsync_us_ =
      registry->histogram("journal.fsync_us", obs::LatencyBuckets());
}

bool JournalWriter::Append(const models::PairKey& key, double score) {
  if (fd_ < 0) return false;
  AppendRecord(key, score, &buffer_);
  ++appended_;
  if (metric_appends_ != nullptr) metric_appends_->Increment();
  if (metric_bytes_ != nullptr) {
    metric_bytes_->Add(static_cast<long long>(kRecordSize));
  }
  return true;
}

bool JournalWriter::Sync() {
  if (fd_ < 0) return false;
  const bool timed = metric_fsync_us_ != nullptr;
  const auto sync_start = timed ? std::chrono::steady_clock::now()
                                : std::chrono::steady_clock::time_point();
  size_t written = 0;
  while (written < buffer_.size()) {
    ssize_t n =
        ::write(fd_, buffer_.data() + written, buffer_.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      // Drop what did make it out of the buffer; the journal's valid
      // prefix on disk is still consistent (CRCs gate the tail).
      buffer_.erase(0, written);
      return false;
    }
    written += static_cast<size_t>(n);
  }
  buffer_.clear();
  const bool synced = ::fsync(fd_) == 0;
  if (metric_syncs_ != nullptr) metric_syncs_->Increment();
  if (timed) {
    metric_fsync_us_->Record(static_cast<double>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - sync_start)
            .count()));
  }
  return synced;
}

void JournalWriter::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

bool CompactJournal(const std::string& path,
                    const std::vector<JournalEntry>& entries) {
  std::string data;
  data.reserve(kHeaderSize + entries.size() * kRecordSize);
  AppendHeader(&data);
  for (const JournalEntry& entry : entries) {
    AppendRecord(entry.key, entry.score, &data);
  }
  return util::AtomicWriteFile(path, data);
}

}  // namespace certa::persist
