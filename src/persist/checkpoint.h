#ifndef CERTA_PERSIST_CHECKPOINT_H_
#define CERTA_PERSIST_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "api/explain_request.h"

namespace certa::persist {

/// Periodic snapshot of one explanation job's progress, durably written
/// (temp + fsync + atomic rename) alongside its score journal. The
/// journal alone makes resume *correct* (replay → bit-identical rerun);
/// the checkpoint makes a job dir *self-describing* — it carries the
/// full versioned request, the phase/frontier the run had reached, and
/// the tagged-lattice snapshots, so `certa serve --resume <job-dir>`
/// needs nothing but the directory, and operators can inspect how far a
/// parked or interrupted job got.
struct JobCheckpoint {
  /// The full versioned request this job runs (api::ExplainRequest is
  /// the one spec shared by CLI, wire protocol and checkpoints; its
  /// schema_version is stamped into the checkpoint and re-validated on
  /// load, so a checkpoint from a newer build is rejected with a clear
  /// error instead of misparsed). request.id is the job id.
  api::ExplainRequest request;

  // -- lifecycle --
  /// "running" | "complete" | "parked" | "interrupted" | "failed".
  /// Anything but "complete" is resumable.
  std::string state = "running";
  /// Last phase entered: "pivot" | "triangles" | "lattice" |
  /// "counterfactuals" | "done".
  std::string phase = "pivot";

  // -- progress counters (the explainer's frontier) --
  int triangles_total = 0;
  int triangles_tagged = 0;
  long long predictions_performed = 0;
  long long total_flips = 0;
  /// Model calls actually paid by runs of this job so far.
  long long fresh_scores = 0;
  /// Journal entries replayed when the latest run started.
  long long replayed_scores = 0;

  /// Per-triangle tagged-lattice snapshots (core::Lattice::SerializeTags
  /// strings), in tagging order — the antichain record of every lattice
  /// the run finished.
  std::vector<std::string> tagged_lattices;
};

/// Canonical text serialization (TextArchive payload behind a CRC'd
/// header line; the header carries both the checkpoint format version
/// and the request's schema_version) and its inverse. Parse returns
/// false — never a partial object — on any malformation, including a
/// CRC mismatch; a future-versioned header fails with a clear message
/// in *error (optional) instead of being misparsed.
std::string SerializeCheckpoint(const JobCheckpoint& checkpoint);
bool ParseCheckpoint(const std::string& text, JobCheckpoint* checkpoint,
                     std::string* error = nullptr);

/// Atomic durable write; false on I/O error (the previous checkpoint,
/// if any, is left intact).
bool SaveCheckpoint(const std::string& path, const JobCheckpoint& checkpoint);

/// Loads and validates; false when missing, unreadable, or corrupt.
/// A corrupt checkpoint is never trusted — callers fall back to
/// journal-only resume, which is always safe.
bool LoadCheckpoint(const std::string& path, JobCheckpoint* checkpoint,
                    std::string* error = nullptr);

// -- job directory layout --
// A job dir holds everything one explanation job needs to resume:
//   journal.wal       write-ahead score journal
//   checkpoint.ckpt   latest JobCheckpoint (atomic snapshot)
//   result.json       final CertaResult (atomic; exists iff complete)

std::string JournalPathInDir(const std::string& job_dir);
std::string CheckpointPathInDir(const std::string& job_dir);
std::string ResultPathInDir(const std::string& job_dir);

}  // namespace certa::persist

#endif  // CERTA_PERSIST_CHECKPOINT_H_
