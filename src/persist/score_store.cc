#include "persist/score_store.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <unordered_set>

#include "util/atomic_file.h"
#include "util/crc32.h"
#include "util/logging.h"

namespace certa::persist {
namespace {

constexpr char kMagic[8] = {'C', 'E', 'R', 'T', 'A', 'S', 'S', 'T'};
constexpr uint32_t kVersion = 1;
constexpr size_t kHeaderSize = sizeof(kMagic) + sizeof(uint32_t);  // 12
constexpr size_t kPayloadSize =
    sizeof(uint64_t) * 3 + sizeof(double);                    // 32
constexpr size_t kRecordSize = kPayloadSize + sizeof(uint32_t);  // 36

std::string SegmentHeader() {
  std::string header(kHeaderSize, '\0');
  std::memcpy(header.data(), kMagic, sizeof(kMagic));
  std::memcpy(header.data() + sizeof(kMagic), &kVersion, sizeof(kVersion));
  return header;
}

void AppendRecord(std::string* out, uint64_t scope, uint64_t lo, uint64_t hi,
                  double score) {
  char payload[kPayloadSize];
  std::memcpy(payload, &scope, sizeof(scope));
  std::memcpy(payload + 8, &lo, sizeof(lo));
  std::memcpy(payload + 16, &hi, sizeof(hi));
  std::memcpy(payload + 24, &score, sizeof(score));
  uint32_t crc = util::Crc32(payload, kPayloadSize);
  out->append(payload, kPayloadSize);
  out->append(reinterpret_cast<const char*>(&crc), sizeof(crc));
}

/// Parses a segment file name into (stream slot, segment number).
/// "segment-NNNNNN.seg" → slot -1 (legacy single-writer naming);
/// "segment-w<slot>-NNNNNN.seg" → that stream's slot. False for
/// anything else (temp leftovers, lock files, foreign files).
bool ParseSegmentName(const std::string& name, int* slot, long long* number) {
  constexpr std::string_view kPrefix = "segment-";
  constexpr std::string_view kSuffix = ".seg";
  if (name.size() <= kPrefix.size() + kSuffix.size()) return false;
  if (name.compare(0, kPrefix.size(), kPrefix) != 0) return false;
  if (name.compare(name.size() - kSuffix.size(), kSuffix.size(), kSuffix) !=
      0) {
    return false;
  }
  size_t pos = kPrefix.size();
  const size_t end = name.size() - kSuffix.size();
  int parsed_slot = -1;
  if (name[pos] == 'w') {
    ++pos;
    size_t dash = name.find('-', pos);
    if (dash == std::string::npos || dash >= end || dash == pos) return false;
    parsed_slot = 0;
    for (size_t i = pos; i < dash; ++i) {
      if (name[i] < '0' || name[i] > '9') return false;
      parsed_slot = parsed_slot * 10 + (name[i] - '0');
    }
    pos = dash + 1;
  }
  if (pos >= end) return false;
  long long parsed_number = 0;
  for (size_t i = pos; i < end; ++i) {
    if (name[i] < '0' || name[i] > '9') return false;
    parsed_number = parsed_number * 10 + (name[i] - '0');
  }
  *slot = parsed_slot;
  *number = parsed_number;
  return true;
}

/// fsync on the directory makes newly created/renamed segment files
/// durable; failure is ignored (some filesystems refuse dir fsync).
void SyncDirectory(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

bool WriteAll(int fd, const char* data, size_t size, size_t* written) {
  *written = 0;
  while (*written < size) {
    ssize_t n = ::write(fd, data + *written, size - *written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    *written += static_cast<size_t>(n);
  }
  return true;
}

bool PreadAll(int fd, char* data, size_t size, off_t offset) {
  size_t done = 0;
  while (done < size) {
    ssize_t n = ::pread(fd, data + done, size - done,
                        offset + static_cast<off_t>(done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;  // shrank under us; retry next refresh
    done += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

ScoreStore::~ScoreStore() { Close(); }

const char* ScoreStore::CompactionLeaseFileName() { return ".compact-lease"; }

std::string ScoreStore::SegmentPath(long long number) const {
  char name[48];
  if (options_.stream_slot >= 0) {
    std::snprintf(name, sizeof(name), "segment-w%d-%06lld.seg",
                  options_.stream_slot, number);
  } else {
    std::snprintf(name, sizeof(name), "segment-%06lld.seg", number);
  }
  return dir_ + "/" + name;
}

std::string ScoreStore::StreamLockName() const {
  if (options_.stream_slot < 0) return DirLock::LockFileName();
  return ".lock-w" + std::to_string(options_.stream_slot);
}

size_t ScoreStore::AbsorbSegment(const char* data, size_t size,
                                 bool* bad_header) {
  *bad_header = false;
  if (size < kHeaderSize || std::memcmp(data, kMagic, sizeof(kMagic)) != 0) {
    *bad_header = true;
    return 0;
  }
  uint32_t version = 0;
  std::memcpy(&version, data + sizeof(kMagic), sizeof(version));
  if (version != kVersion) {
    *bad_header = true;
    return 0;
  }
  size_t offset = kHeaderSize;
  while (offset + kRecordSize <= size) {
    const char* payload = data + offset;
    uint32_t stored = 0;
    std::memcpy(&stored, payload + kPayloadSize, sizeof(stored));
    if (util::Crc32(payload, kPayloadSize) != stored) break;
    StoreKey key;
    double score = 0.0;
    std::memcpy(&key.scope, payload, sizeof(key.scope));
    std::memcpy(&key.lo, payload + 8, sizeof(key.lo));
    std::memcpy(&key.hi, payload + 16, sizeof(key.hi));
    std::memcpy(&score, payload + 24, sizeof(score));
    // Own bytes: overwrite, so a key a peer was absorbed for first
    // regains its own provenance (this writer also paid for it).
    index_[key] = Entry{score, /*from_peer=*/false};
    ++stats_.replayed_records;
    offset += kRecordSize;
  }
  return offset;
}

bool ScoreStore::LoadSegment(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return false;
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return false;
  }
  const size_t size = static_cast<size_t>(st.st_size);
  bool bad_header = false;
  size_t valid = 0;
  bool absorbed = false;
  if (options_.use_mmap && size > 0) {
    void* mapped = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    if (mapped != MAP_FAILED) {
      valid = AbsorbSegment(static_cast<const char*>(mapped), size,
                            &bad_header);
      ::munmap(mapped, size);
      absorbed = true;
    }
  }
  ::close(fd);
  if (!absorbed) {
    std::string content;
    if (!util::ReadFileToString(path, &content)) return false;
    valid = AbsorbSegment(content.data(), content.size(), &bad_header);
  }
  if (bad_header) {
    ++stats_.bad_headers;
    return true;
  }
  if (valid < size) {
    stats_.dropped_bytes += static_cast<long long>(size - valid);
    ++stats_.corrupt_tails;
  }
  segment_valid_bytes_ = valid;
  return true;
}

void ScoreStore::AbsorbPeerTail(const std::string& name, PeerFile* peer) {
  if (peer->ignored) return;
  const std::string path = dir_ + "/" + name;
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return;  // vanished between scan and open; next pass prunes
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return;
  }
  const size_t size = static_cast<size_t>(st.st_size);
  if (!peer->header_ok) {
    // Too small to judge: the owner may still be writing its header.
    // Not an error and not ignorable yet — just not absorbable.
    if (size < kHeaderSize) {
      ::close(fd);
      return;
    }
    char header[kHeaderSize];
    if (!PreadAll(fd, header, kHeaderSize, 0)) {
      ::close(fd);
      return;
    }
    uint32_t version = 0;
    std::memcpy(&version, header + sizeof(kMagic), sizeof(version));
    if (std::memcmp(header, kMagic, sizeof(kMagic)) != 0 ||
        version != kVersion) {
      // A complete header that is wrong never becomes right: skip this
      // file forever (mirrors bad_headers handling of own segments,
      // but the count is the owner's to report).
      peer->ignored = true;
      ::close(fd);
      return;
    }
    peer->header_ok = true;
    peer->absorbed = kHeaderSize;
  }
  if (size <= peer->absorbed) {
    ::close(fd);
    return;
  }
  std::string tail(size - peer->absorbed, '\0');
  if (!PreadAll(fd, tail.data(), tail.size(),
                static_cast<off_t>(peer->absorbed))) {
    ::close(fd);
    return;
  }
  ::close(fd);
  // Absorb exactly the whole-record CRC-valid prefix. A failing CRC in
  // a live sibling file is most often an append in flight, not
  // corruption — so unlike own-segment recovery we neither truncate
  // the file (its owner will, if it really is torn) nor count
  // dropped_bytes: we simply stop and re-check from the same offset on
  // the next refresh.
  size_t offset = 0;
  while (offset + kRecordSize <= tail.size()) {
    const char* payload = tail.data() + offset;
    uint32_t stored = 0;
    std::memcpy(&stored, payload + kPayloadSize, sizeof(stored));
    if (util::Crc32(payload, kPayloadSize) != stored) break;
    StoreKey key;
    double score = 0.0;
    std::memcpy(&key.scope, payload, sizeof(key.scope));
    std::memcpy(&key.lo, payload + 8, sizeof(key.lo));
    std::memcpy(&key.hi, payload + 16, sizeof(key.hi));
    std::memcpy(&score, payload + 24, sizeof(score));
    // try_emplace: an entry this writer paid for (or absorbed earlier)
    // wins — deterministic scores agree, only provenance differs.
    auto [it, inserted] = index_.try_emplace(key, Entry{score, true});
    (void)it;
    if (inserted) {
      ++stats_.peer_records;
      if (metric_peer_records_ != nullptr) metric_peer_records_->Increment();
    }
    offset += kRecordSize;
  }
  peer->absorbed += offset;
}

bool ScoreStore::RefreshPeersLocked() {
  DIR* handle = ::opendir(dir_.c_str());
  if (handle == nullptr) return false;
  std::unordered_set<std::string> present;
  while (struct dirent* entry = ::readdir(handle)) {
    const std::string name = entry->d_name;
    int slot = -1;
    long long number = 0;
    if (!ParseSegmentName(name, &slot, &number)) continue;
    if (slot == options_.stream_slot) continue;  // own stream
    present.insert(name);
    AbsorbPeerTail(name, &peers_[name]);
  }
  ::closedir(handle);
  // A tracked peer file that vanished was compacted (or removed) by
  // its owner. Its absorbed entries stay in memory; the replacement
  // segment shows up as a new name and re-absorbs from offset 0, with
  // try_emplace deduplicating the overlap.
  for (auto it = peers_.begin(); it != peers_.end();) {
    if (present.count(it->first) == 0) {
      it = peers_.erase(it);
    } else {
      ++it;
    }
  }
  return true;
}

bool ScoreStore::RefreshPeers() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (fd_ < 0) return false;
  if (options_.stream_slot < 0) return true;  // single-writer namespace
  const long long before = stats_.peer_records;
  if (!RefreshPeersLocked()) return false;
  if (stats_.peer_records > before) ++stats_.peer_refreshes;
  return true;
}

bool ScoreStore::OpenActiveSegment(long long number, bool truncate_to,
                                   size_t valid) {
  const std::string path = SegmentPath(number);
  fd_ = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd_ < 0) return false;
  if (truncate_to) {
    // Cut any torn/corrupt tail away so appended records extend the
    // valid prefix instead of hiding behind garbage forever.
    if (::ftruncate(fd_, static_cast<off_t>(valid)) != 0) {
      ::close(fd_);
      fd_ = -1;
      return false;
    }
    active_bytes_ = valid;
  } else {
    std::string header = SegmentHeader();
    size_t written = 0;
    if (::ftruncate(fd_, 0) != 0 ||
        !WriteAll(fd_, header.data(), header.size(), &written) ||
        ::fsync(fd_) != 0) {
      ::close(fd_);
      fd_ = -1;
      return false;
    }
    SyncDirectory(dir_);
    active_bytes_ = header.size();
  }
  if (::lseek(fd_, 0, SEEK_END) < 0) {
    ::close(fd_);
    fd_ = -1;
    return false;
  }
  active_segment_ = number;
  return true;
}

bool ScoreStore::FailOpen(const std::string& message) {
  if (open_error_.empty()) open_error_ = message;
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  dir_lock_.Release();
  return false;
}

bool ScoreStore::Open(const std::string& dir, const Options& options) {
  std::lock_guard<std::mutex> lock(mutex_);
  CERTA_CHECK(fd_ < 0);
  dir_ = dir;
  options_ = options;
  index_.clear();
  peers_.clear();
  buffer_.clear();
  unsynced_appends_ = 0;
  stats_ = Stats();
  open_error_.clear();
  if (!util::EnsureDirectory(dir_)) {
    return FailOpen("cannot create " + dir_ + ": " + std::strerror(errno));
  }
  if (options_.exclusive_lock &&
      !dir_lock_.AcquireFile(dir_, StreamLockName(), &open_error_)) {
    return FailOpen("cannot lock " + dir_);
  }

  const bool shared = options_.stream_slot >= 0;
  // Shared mode: a temp is sweepable only when it belongs to this
  // writer's own stream — a sibling's `.seg.tmp` may be an in-flight
  // compaction, and unlinking it mid-rename would lose the rewrite.
  const std::string own_temp_prefix =
      "segment-w" + std::to_string(options_.stream_slot) + "-";
  std::vector<long long> segments;
  std::vector<std::string> peer_names;
  std::vector<std::string> leftovers;
  DIR* handle = ::opendir(dir_.c_str());
  if (handle == nullptr) {
    return FailOpen("cannot scan " + dir_ + ": " + std::strerror(errno));
  }
  while (struct dirent* entry = ::readdir(handle)) {
    const std::string name = entry->d_name;
    int slot = -1;
    long long number = 0;
    if (ParseSegmentName(name, &slot, &number)) {
      if (slot == options_.stream_slot) {
        segments.push_back(number);
      } else {
        // A sibling stream's segment — or, in single-writer mode, a
        // stream-named file left by an ex-fleet directory. Either way
        // it is absorbed read-only below, never written or swept.
        peer_names.push_back(name);
      }
    } else if (name.find(".seg.tmp") != std::string::npos &&
               (!shared || name.compare(0, own_temp_prefix.size(),
                                        own_temp_prefix) == 0)) {
      // A compaction killed between temp-write and rename; the temp
      // file was never trusted and is swept here.
      leftovers.push_back(dir_ + "/" + name);
    }
  }
  ::closedir(handle);
  for (const std::string& path : leftovers) ::unlink(path.c_str());
  std::sort(segments.begin(), segments.end());
  std::sort(peer_names.begin(), peer_names.end());

  if (segments.empty()) {
    if (!OpenActiveSegment(1, /*truncate_to=*/false, 0)) {
      return FailOpen("cannot create active segment " + SegmentPath(1) +
                      ": " + std::strerror(errno));
    }
    stats_.segments = 1;
  } else {
    for (long long number : segments) {
      segment_valid_bytes_ = 0;
      if (!LoadSegment(SegmentPath(number))) {
        // Unreadable segment file: treat like a bad header — skip it.
        ++stats_.bad_headers;
      }
    }
    // The highest-numbered segment stays active; its recovery scan told
    // us the valid prefix to truncate to. A bad-header active segment
    // is rewritten from scratch (nothing in it was trusted).
    const long long active = segments.back();
    const bool rewrite = segment_valid_bytes_ < kHeaderSize;
    if (!OpenActiveSegment(active, /*truncate_to=*/!rewrite,
                           segment_valid_bytes_)) {
      return FailOpen("cannot open active segment " + SegmentPath(active) +
                      ": " + std::strerror(errno));
    }
    stats_.segments = segments.size();
  }
  // Own segments first, peers second: a key both paid for keeps its
  // own provenance (own loads overwrite, peer absorption only inserts)
  // and peer_records counts only genuinely foreign entries.
  for (const std::string& name : peer_names) {
    AbsorbPeerTail(name, &peers_[name]);
  }
  return true;
}

bool ScoreStore::Lookup(uint64_t scope, const models::PairKey& key,
                        double* score, bool* from_peer) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (from_peer != nullptr) *from_peer = false;
  if (fd_ < 0) return false;
  ++stats_.lookups;
  if (metric_lookups_ != nullptr) metric_lookups_->Increment();
  auto it = index_.find(StoreKey{scope, key.lo, key.hi});
  if (it == index_.end()) return false;
  ++stats_.hits;
  if (metric_hits_ != nullptr) metric_hits_->Increment();
  if (it->second.from_peer) {
    ++stats_.peer_hits;
    if (metric_peer_hits_ != nullptr) metric_peer_hits_->Increment();
  }
  if (score != nullptr) *score = it->second.score;
  if (from_peer != nullptr) *from_peer = it->second.from_peer;
  return true;
}

bool ScoreStore::Put(uint64_t scope, const models::PairKey& key,
                     double score) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (fd_ < 0) return false;
  auto [it, inserted] = index_.try_emplace(StoreKey{scope, key.lo, key.hi},
                                           Entry{score, /*from_peer=*/false});
  (void)it;
  if (!inserted) return true;  // deterministic scores: re-put is a no-op
  AppendRecord(&buffer_, scope, key.lo, key.hi, score);
  ++stats_.appends;
  if (metric_appends_ != nullptr) metric_appends_->Increment();
  ++unsynced_appends_;
  if (options_.sync_every > 0 && unsynced_appends_ >= options_.sync_every) {
    if (!SyncLocked()) return false;
  }
  if (active_bytes_ + buffer_.size() > options_.max_segment_bytes) {
    if (!SyncLocked()) return false;
    if (!RollSegmentLocked()) return false;
  }
  return true;
}

bool ScoreStore::RollSegmentLocked() {
  ::close(fd_);
  fd_ = -1;
  if (!OpenActiveSegment(active_segment_ + 1, /*truncate_to=*/false, 0)) {
    return false;
  }
  // The roll was preceded by a SyncLocked (nothing buffered crosses a
  // segment boundary), so the self-sync cadence starts over with the
  // fresh segment rather than inheriting the old file's countdown.
  unsynced_appends_ = 0;
  ++stats_.segments;
  return true;
}

bool ScoreStore::SyncLocked() {
  if (fd_ < 0) return false;
  if (!buffer_.empty()) {
    size_t written = 0;
    bool ok = WriteAll(fd_, buffer_.data(), buffer_.size(), &written);
    active_bytes_ += written;
    buffer_.erase(0, written);
    if (!ok) return false;
  }
  unsynced_appends_ = 0;
  if (metric_syncs_ != nullptr) metric_syncs_->Increment();
  return ::fsync(fd_) == 0;
}

bool ScoreStore::Sync() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (fd_ < 0) return false;
  return SyncLocked();
}

bool ScoreStore::Compact() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (fd_ < 0) return false;
  if (!SyncLocked()) return false;

  // Shared mode: the directory-wide lease serializes compactions so at
  // most one worker churns the directory at a time. Busy means a
  // sibling is mid-rewrite — skipping is safe (this stream's segments
  // are untouched by the sibling, and a later Compact retries), so a
  // held lease is "done for now", not failure.
  DirLock lease;
  if (options_.stream_slot >= 0) {
    std::string lease_error;
    if (!lease.AcquireFile(dir_, CompactionLeaseFileName(), &lease_error)) {
      return true;
    }
  }

  // Only entries this writer paid for (or replayed from its own
  // stream) are rewritten: every byte on disk keeps exactly one
  // writer, and a sibling-paid entry stays durable in the sibling's
  // stream where its owner compacts it.
  std::string content = SegmentHeader();
  content.reserve(kHeaderSize + index_.size() * kRecordSize);
  for (const auto& [key, entry] : index_) {
    if (entry.from_peer) continue;
    AppendRecord(&content, key.scope, key.lo, key.hi, entry.score);
  }
  const long long next = active_segment_ + 1;
  // util::AtomicWriteFile is the append-then-rename discipline: temp in
  // the same directory, fsync, rename, directory fsync. A kill before
  // the rename leaves only a swept-on-open temp; after it, the new
  // segment is complete and old ones are at worst duplicated.
  if (!util::AtomicWriteFile(SegmentPath(next), content)) return false;
  ::close(fd_);
  fd_ = -1;
  for (long long number = active_segment_; number >= 1; --number) {
    const std::string path = SegmentPath(number);
    if (util::PathExists(path)) ::unlink(path.c_str());
  }
  SyncDirectory(dir_);
  if (!OpenActiveSegment(next, /*truncate_to=*/true, content.size())) {
    return false;
  }
  // Everything buffered was flushed above and the rewrite is fully
  // fsynced — the self-sync countdown restarts at zero.
  unsynced_appends_ = 0;
  stats_.segments = 1;
  ++stats_.compactions;
  if (metric_compactions_ != nullptr) metric_compactions_->Increment();
  return true;
}

void ScoreStore::Close() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (fd_ >= 0) {
    SyncLocked();
    ::close(fd_);
    fd_ = -1;
  }
  dir_lock_.Release();
}

void ScoreStore::BindMetrics(obs::MetricsRegistry* registry) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (registry == nullptr) {
    metric_lookups_ = metric_hits_ = metric_peer_hits_ =
        metric_peer_records_ = metric_appends_ = metric_syncs_ =
            metric_compactions_ = nullptr;
    return;
  }
  metric_lookups_ = registry->counter("store.lookups");
  metric_hits_ = registry->counter("store.hits");
  metric_peer_hits_ = registry->counter("store.peer_hits");
  metric_peer_records_ = registry->counter("store.peer_records");
  metric_appends_ = registry->counter("store.appends");
  metric_syncs_ = registry->counter("store.syncs");
  metric_compactions_ = registry->counter("store.compactions");
}

ScoreStore::Stats ScoreStore::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats out = stats_;
  out.entries = index_.size();
  return out;
}

size_t ScoreStore::entry_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return index_.size();
}

uint64_t HashScope(const std::string& matcher_id,
                   uint64_t model_fingerprint) {
  uint64_t hash = 1469598103934665603ULL;  // FNV-1a offset basis
  auto mix = [&hash](unsigned char byte) {
    hash ^= byte;
    hash *= 1099511628211ULL;  // FNV-1a prime
  };
  for (char c : matcher_id) mix(static_cast<unsigned char>(c));
  mix(0x1F);  // unit separator: "ab"+"c" != "a"+"bc"
  for (int i = 0; i < 8; ++i) {
    mix(static_cast<unsigned char>(model_fingerprint >> (8 * i)));
  }
  // splitmix64 finalizer: avalanche so nearby fingerprints land far
  // apart.
  hash ^= hash >> 30;
  hash *= 0xBF58476D1CE4E5B9ULL;
  hash ^= hash >> 27;
  hash *= 0x94D049BB133111EBULL;
  hash ^= hash >> 31;
  return hash;
}

}  // namespace certa::persist
