#include "persist/score_store.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "util/atomic_file.h"
#include "util/crc32.h"
#include "util/logging.h"

namespace certa::persist {
namespace {

constexpr char kMagic[8] = {'C', 'E', 'R', 'T', 'A', 'S', 'S', 'T'};
constexpr uint32_t kVersion = 1;
constexpr size_t kHeaderSize = sizeof(kMagic) + sizeof(uint32_t);  // 12
constexpr size_t kPayloadSize =
    sizeof(uint64_t) * 3 + sizeof(double);                    // 32
constexpr size_t kRecordSize = kPayloadSize + sizeof(uint32_t);  // 36

std::string SegmentHeader() {
  std::string header(kHeaderSize, '\0');
  std::memcpy(header.data(), kMagic, sizeof(kMagic));
  std::memcpy(header.data() + sizeof(kMagic), &kVersion, sizeof(kVersion));
  return header;
}

void AppendRecord(std::string* out, uint64_t scope, uint64_t lo, uint64_t hi,
                  double score) {
  char payload[kPayloadSize];
  std::memcpy(payload, &scope, sizeof(scope));
  std::memcpy(payload + 8, &lo, sizeof(lo));
  std::memcpy(payload + 16, &hi, sizeof(hi));
  std::memcpy(payload + 24, &score, sizeof(score));
  uint32_t crc = util::Crc32(payload, kPayloadSize);
  out->append(payload, kPayloadSize);
  out->append(reinterpret_cast<const char*>(&crc), sizeof(crc));
}

/// Parses "segment-NNNNNN.seg" → NNNNNN; -1 for anything else
/// (temp leftovers, foreign files).
long long SegmentNumber(const std::string& name) {
  constexpr std::string_view kPrefix = "segment-";
  constexpr std::string_view kSuffix = ".seg";
  if (name.size() <= kPrefix.size() + kSuffix.size()) return -1;
  if (name.compare(0, kPrefix.size(), kPrefix) != 0) return -1;
  if (name.compare(name.size() - kSuffix.size(), kSuffix.size(), kSuffix) !=
      0) {
    return -1;
  }
  long long number = 0;
  for (size_t i = kPrefix.size(); i < name.size() - kSuffix.size(); ++i) {
    if (name[i] < '0' || name[i] > '9') return -1;
    number = number * 10 + (name[i] - '0');
  }
  return number;
}

/// fsync on the directory makes newly created/renamed segment files
/// durable; failure is ignored (some filesystems refuse dir fsync).
void SyncDirectory(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

bool WriteAll(int fd, const char* data, size_t size, size_t* written) {
  *written = 0;
  while (*written < size) {
    ssize_t n = ::write(fd, data + *written, size - *written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    *written += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

ScoreStore::~ScoreStore() { Close(); }

std::string ScoreStore::SegmentPath(long long number) const {
  char name[32];
  std::snprintf(name, sizeof(name), "segment-%06lld.seg", number);
  return dir_ + "/" + name;
}

size_t ScoreStore::AbsorbSegment(const char* data, size_t size,
                                 bool* bad_header) {
  *bad_header = false;
  if (size < kHeaderSize || std::memcmp(data, kMagic, sizeof(kMagic)) != 0) {
    *bad_header = true;
    return 0;
  }
  uint32_t version = 0;
  std::memcpy(&version, data + sizeof(kMagic), sizeof(version));
  if (version != kVersion) {
    *bad_header = true;
    return 0;
  }
  size_t offset = kHeaderSize;
  while (offset + kRecordSize <= size) {
    const char* payload = data + offset;
    uint32_t stored = 0;
    std::memcpy(&stored, payload + kPayloadSize, sizeof(stored));
    if (util::Crc32(payload, kPayloadSize) != stored) break;
    StoreKey key;
    double score = 0.0;
    std::memcpy(&key.scope, payload, sizeof(key.scope));
    std::memcpy(&key.lo, payload + 8, sizeof(key.lo));
    std::memcpy(&key.hi, payload + 16, sizeof(key.hi));
    std::memcpy(&score, payload + 24, sizeof(score));
    index_[key] = score;
    ++stats_.replayed_records;
    offset += kRecordSize;
  }
  return offset;
}

bool ScoreStore::LoadSegment(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return false;
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return false;
  }
  const size_t size = static_cast<size_t>(st.st_size);
  bool bad_header = false;
  size_t valid = 0;
  bool absorbed = false;
  if (options_.use_mmap && size > 0) {
    void* mapped = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    if (mapped != MAP_FAILED) {
      valid = AbsorbSegment(static_cast<const char*>(mapped), size,
                            &bad_header);
      ::munmap(mapped, size);
      absorbed = true;
    }
  }
  ::close(fd);
  if (!absorbed) {
    std::string content;
    if (!util::ReadFileToString(path, &content)) return false;
    valid = AbsorbSegment(content.data(), content.size(), &bad_header);
  }
  if (bad_header) {
    ++stats_.bad_headers;
    return true;
  }
  if (valid < size) {
    stats_.dropped_bytes += static_cast<long long>(size - valid);
    ++stats_.corrupt_tails;
  }
  segment_valid_bytes_ = valid;
  return true;
}

bool ScoreStore::OpenActiveSegment(long long number, bool truncate_to,
                                   size_t valid) {
  const std::string path = SegmentPath(number);
  fd_ = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd_ < 0) return false;
  if (truncate_to) {
    // Cut any torn/corrupt tail away so appended records extend the
    // valid prefix instead of hiding behind garbage forever.
    if (::ftruncate(fd_, static_cast<off_t>(valid)) != 0) {
      ::close(fd_);
      fd_ = -1;
      return false;
    }
    active_bytes_ = valid;
  } else {
    std::string header = SegmentHeader();
    size_t written = 0;
    if (::ftruncate(fd_, 0) != 0 ||
        !WriteAll(fd_, header.data(), header.size(), &written) ||
        ::fsync(fd_) != 0) {
      ::close(fd_);
      fd_ = -1;
      return false;
    }
    SyncDirectory(dir_);
    active_bytes_ = header.size();
  }
  if (::lseek(fd_, 0, SEEK_END) < 0) {
    ::close(fd_);
    fd_ = -1;
    return false;
  }
  active_segment_ = number;
  return true;
}

bool ScoreStore::Open(const std::string& dir, const Options& options) {
  std::lock_guard<std::mutex> lock(mutex_);
  CERTA_CHECK(fd_ < 0);
  dir_ = dir;
  options_ = options;
  index_.clear();
  buffer_.clear();
  unsynced_appends_ = 0;
  stats_ = Stats();
  open_error_.clear();
  if (!util::EnsureDirectory(dir_)) {
    open_error_ = "cannot create " + dir_;
    return false;
  }
  if (options_.exclusive_lock && !dir_lock_.Acquire(dir_, &open_error_)) {
    return false;
  }

  std::vector<long long> segments;
  std::vector<std::string> leftovers;
  DIR* handle = ::opendir(dir_.c_str());
  if (handle == nullptr) return false;
  while (struct dirent* entry = ::readdir(handle)) {
    const std::string name = entry->d_name;
    long long number = SegmentNumber(name);
    if (number >= 0) {
      segments.push_back(number);
    } else if (name.find(".seg.tmp") != std::string::npos) {
      // A compaction killed between temp-write and rename; the temp
      // file was never trusted and is swept here.
      leftovers.push_back(dir_ + "/" + name);
    }
  }
  ::closedir(handle);
  for (const std::string& path : leftovers) ::unlink(path.c_str());
  std::sort(segments.begin(), segments.end());

  if (segments.empty()) {
    if (!OpenActiveSegment(1, /*truncate_to=*/false, 0)) return false;
    stats_.segments = 1;
    return true;
  }
  for (long long number : segments) {
    segment_valid_bytes_ = 0;
    if (!LoadSegment(SegmentPath(number))) {
      // Unreadable segment file: treat like a bad header — skip it.
      ++stats_.bad_headers;
    }
  }
  // The highest-numbered segment stays active; its recovery scan told
  // us the valid prefix to truncate to. A bad-header active segment is
  // rewritten from scratch (nothing in it was trusted).
  const long long active = segments.back();
  const bool rewrite = segment_valid_bytes_ < kHeaderSize;
  if (!OpenActiveSegment(active, /*truncate_to=*/!rewrite,
                         segment_valid_bytes_)) {
    return false;
  }
  stats_.segments = segments.size();
  return true;
}

bool ScoreStore::Lookup(uint64_t scope, const models::PairKey& key,
                        double* score) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (fd_ < 0) return false;
  ++stats_.lookups;
  if (metric_lookups_ != nullptr) metric_lookups_->Increment();
  auto it = index_.find(StoreKey{scope, key.lo, key.hi});
  if (it == index_.end()) return false;
  ++stats_.hits;
  if (metric_hits_ != nullptr) metric_hits_->Increment();
  if (score != nullptr) *score = it->second;
  return true;
}

bool ScoreStore::Put(uint64_t scope, const models::PairKey& key,
                     double score) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (fd_ < 0) return false;
  auto [it, inserted] = index_.try_emplace(StoreKey{scope, key.lo, key.hi},
                                           score);
  if (!inserted) return true;  // deterministic scores: re-put is a no-op
  AppendRecord(&buffer_, scope, key.lo, key.hi, score);
  ++stats_.appends;
  if (metric_appends_ != nullptr) metric_appends_->Increment();
  ++unsynced_appends_;
  if (options_.sync_every > 0 && unsynced_appends_ >= options_.sync_every) {
    if (!SyncLocked()) return false;
  }
  if (active_bytes_ + buffer_.size() > options_.max_segment_bytes) {
    if (!SyncLocked()) return false;
    if (!RollSegmentLocked()) return false;
  }
  return true;
}

bool ScoreStore::RollSegmentLocked() {
  ::close(fd_);
  fd_ = -1;
  if (!OpenActiveSegment(active_segment_ + 1, /*truncate_to=*/false, 0)) {
    return false;
  }
  ++stats_.segments;
  return true;
}

bool ScoreStore::SyncLocked() {
  if (fd_ < 0) return false;
  if (!buffer_.empty()) {
    size_t written = 0;
    bool ok = WriteAll(fd_, buffer_.data(), buffer_.size(), &written);
    active_bytes_ += written;
    buffer_.erase(0, written);
    if (!ok) return false;
  }
  unsynced_appends_ = 0;
  if (metric_syncs_ != nullptr) metric_syncs_->Increment();
  return ::fsync(fd_) == 0;
}

bool ScoreStore::Sync() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (fd_ < 0) return false;
  return SyncLocked();
}

bool ScoreStore::Compact() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (fd_ < 0) return false;
  if (!SyncLocked()) return false;

  std::string content = SegmentHeader();
  content.reserve(kHeaderSize + index_.size() * kRecordSize);
  for (const auto& [key, score] : index_) {
    AppendRecord(&content, key.scope, key.lo, key.hi, score);
  }
  const long long next = active_segment_ + 1;
  // util::AtomicWriteFile is the append-then-rename discipline: temp in
  // the same directory, fsync, rename, directory fsync. A kill before
  // the rename leaves only a swept-on-open temp; after it, the new
  // segment is complete and old ones are at worst duplicated.
  if (!util::AtomicWriteFile(SegmentPath(next), content)) return false;
  ::close(fd_);
  fd_ = -1;
  for (long long number = active_segment_; number >= 1; --number) {
    const std::string path = SegmentPath(number);
    if (util::PathExists(path)) ::unlink(path.c_str());
  }
  SyncDirectory(dir_);
  if (!OpenActiveSegment(next, /*truncate_to=*/true, content.size())) {
    return false;
  }
  stats_.segments = 1;
  ++stats_.compactions;
  if (metric_compactions_ != nullptr) metric_compactions_->Increment();
  return true;
}

void ScoreStore::Close() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (fd_ >= 0) {
    SyncLocked();
    ::close(fd_);
    fd_ = -1;
  }
  dir_lock_.Release();
}

void ScoreStore::BindMetrics(obs::MetricsRegistry* registry) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (registry == nullptr) {
    metric_lookups_ = metric_hits_ = metric_appends_ = metric_syncs_ =
        metric_compactions_ = nullptr;
    return;
  }
  metric_lookups_ = registry->counter("store.lookups");
  metric_hits_ = registry->counter("store.hits");
  metric_appends_ = registry->counter("store.appends");
  metric_syncs_ = registry->counter("store.syncs");
  metric_compactions_ = registry->counter("store.compactions");
}

ScoreStore::Stats ScoreStore::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats out = stats_;
  out.entries = index_.size();
  return out;
}

size_t ScoreStore::entry_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return index_.size();
}

uint64_t HashScope(const std::string& matcher_id,
                   uint64_t model_fingerprint) {
  uint64_t hash = 1469598103934665603ULL;  // FNV-1a offset basis
  auto mix = [&hash](unsigned char byte) {
    hash ^= byte;
    hash *= 1099511628211ULL;  // FNV-1a prime
  };
  for (char c : matcher_id) mix(static_cast<unsigned char>(c));
  mix(0x1F);  // unit separator: "ab"+"c" != "a"+"bc"
  for (int i = 0; i < 8; ++i) {
    mix(static_cast<unsigned char>(model_fingerprint >> (8 * i)));
  }
  // splitmix64 finalizer: avalanche so nearby fingerprints land far
  // apart.
  hash ^= hash >> 30;
  hash *= 0xBF58476D1CE4E5B9ULL;
  hash ^= hash >> 27;
  hash *= 0x94D049BB133111EBULL;
  hash ^= hash >> 31;
  return hash;
}

}  // namespace certa::persist
