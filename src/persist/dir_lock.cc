#include "persist/dir_lock.h"

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string>
#include <utility>

#include "util/atomic_file.h"

namespace certa::persist {

DirLock::DirLock(DirLock&& other) noexcept
    : fd_(other.fd_), path_(std::move(other.path_)) {
  other.fd_ = -1;
  other.path_.clear();
}

DirLock& DirLock::operator=(DirLock&& other) noexcept {
  if (this != &other) {
    Release();
    fd_ = other.fd_;
    path_ = std::move(other.path_);
    other.fd_ = -1;
    other.path_.clear();
  }
  return *this;
}

const char* DirLock::LockFileName() { return ".lock"; }

bool DirLock::Acquire(const std::string& dir, std::string* error) {
  return AcquireFile(dir, LockFileName(), error);
}

bool DirLock::AcquireFile(const std::string& dir,
                          const std::string& lock_file_name,
                          std::string* error) {
  Release();
  if (!util::EnsureDirectory(dir)) {
    if (error) *error = "cannot create " + dir + ": " + std::strerror(errno);
    return false;
  }
  const std::string lock_path = dir + "/" + lock_file_name;
  int fd = ::open(lock_path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) {
    if (error) {
      *error = "cannot open " + lock_path + ": " + std::strerror(errno);
    }
    return false;
  }
  if (::flock(fd, LOCK_EX | LOCK_NB) != 0) {
    std::string holder;
    char buffer[64];
    ssize_t n = ::pread(fd, buffer, sizeof(buffer) - 1, 0);
    if (n > 0) {
      buffer[n] = '\0';
      holder = buffer;
      while (!holder.empty() &&
             (holder.back() == '\n' || holder.back() == '\r')) {
        holder.pop_back();
      }
    }
    if (error) {
      *error = dir + " is locked by another process" +
               (holder.empty() ? std::string()
                               : " (holder pid " + holder + ")");
    }
    ::close(fd);
    return false;
  }
  // Record the holder pid for operators. Best-effort: the flock is
  // already held, so a write failure only loses the diagnostic.
  const std::string pid = std::to_string(::getpid()) + "\n";
  if (::ftruncate(fd, 0) == 0) {
    (void)::pwrite(fd, pid.data(), pid.size(), 0);
  }
  fd_ = fd;
  path_ = lock_path;
  return true;
}

void DirLock::Release() {
  if (fd_ >= 0) {
    ::flock(fd_, LOCK_UN);
    ::close(fd_);
    fd_ = -1;
  }
  path_.clear();
}

}  // namespace certa::persist
