#ifndef CERTA_PERSIST_SCORE_STORE_H_
#define CERTA_PERSIST_SCORE_STORE_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "models/scoring_engine.h"
#include "obs/metrics.h"
#include "persist/dir_lock.h"

namespace certa::persist {

/// Durable, cross-job prediction store.
///
/// The write-ahead journal (src/persist/journal) makes ONE job
/// resumable; it lives inside that job's directory and dies with it.
/// The score store is the cross-job complement: a directory of
/// CRC32-checksummed segment files shared by every job that runs the
/// same model over the same data, surviving server restarts. The
/// ScoringEngine reads through it (Options::store_probe /
/// store_write), so a repeated or resumed job skips every model call
/// the store already holds while producing byte-identical results —
/// scores are deterministic, so a stored value IS the value the model
/// would return.
///
/// Keying. Entries are keyed by a fixed-size hashed triple: a 64-bit
/// *scope* identifying (matcher id, model fingerprint) and the 128-bit
/// pair content hash (models::PairKey). Different models — or the same
/// model retrained on different data — land in disjoint scopes, so one
/// store directory safely serves heterogeneous traffic.
///
/// On-disk format (host-endian, single-machine durability), one or
/// more segment files:
///   header:  8-byte magic "CERTASST" + uint32 version (1)
///   record:  uint64 scope | uint64 key.lo | uint64 key.hi |
///            double score | uint32 crc
/// where crc is CRC-32 (util::Crc32) over the 32 payload bytes. The
/// highest-numbered segment is the active one; appends go there
/// (buffered; Sync() is the durability boundary, journal-style).
/// Recovery trusts exactly the longest CRC-valid record prefix of each
/// segment — torn, truncated, or bit-flipped tails are truncated away,
/// never interpreted — and segments are loaded mmap(2)-ed read-only
/// when possible (falling back to a plain read).
///
/// Sharing (Options::stream_slot >= 0). One directory can be the
/// namespace for a whole worker fleet: every byte on disk has exactly
/// one writer because each worker appends only to its own stream of
/// segments, `segment-w<slot>-NNNNNN.seg`, while reading every other
/// stream lock-free. Exclusivity shrinks from the whole directory to
/// the stream (".lock-w<slot>"): two processes can never own the same
/// stream, but siblings coexist. Sibling segments are absorbed on Open
/// and re-absorbed incrementally by RefreshPeers(), which extends each
/// peer file's trusted prefix exactly as recovery would — a torn or
/// in-flight sibling tail is simply not absorbed yet, never
/// interpreted, and never modified on disk (its owner truncates it on
/// its own next Open). Entries paid by a sibling are flagged, so
/// Stats::peer_hits tells cross-worker reuse apart from own hits.
/// With stream_slot = -1 (default) the store is a single-writer
/// namespace using legacy `segment-NNNNNN.seg` names; stream-named
/// segments found in the directory (an ex-fleet store) are still
/// absorbed read-only as peers.
///
/// Compaction rewrites this writer's live entries into a single
/// next-numbered segment of its own stream via the append-then-rename
/// discipline (temp file + fsync + atomic rename + directory fsync,
/// util::AtomicWriteFile), then unlinks the stream's old segments —
/// never a sibling's. In shared mode the directory-wide flock'd
/// compaction lease (".compact-lease") serializes rewrites so at most
/// one worker churns the directory at a time; a busy lease skips the
/// compaction (it retries on a later call). A crash at any point
/// leaves either the old segments (rename not reached) or the new one
/// plus some not-yet-unlinked old ones (duplicate entries across
/// segments are harmless — deterministic scores agree); leftover temp
/// files are ignored and swept on the stream owner's next Open.
class ScoreStore {
 public:
  struct Options {
    /// Roll the active segment once it exceeds this many bytes (keeps
    /// any single recovery scan and compaction rewrite bounded).
    size_t max_segment_bytes = 8u << 20;
    /// When > 0, Put() self-syncs after this many buffered appends;
    /// 0 leaves durability entirely to explicit Sync() calls.
    int sync_every = 0;
    /// Load segments through mmap(2); disable to force the plain-read
    /// path (the two are byte-equivalent — see score_store_test).
    bool use_mmap = true;
    /// Hold a flock-based DirLock for the lifetime of the open store,
    /// so two processes can never attach the same writer namespace
    /// (serve and the fleet workers enable this; plain library use
    /// stays lock-free so read-only tooling can inspect a live store's
    /// segments). The lock file is ".lock" for a whole-directory store
    /// and ".lock-w<slot>" for a shared-mode stream — sibling streams
    /// in one directory never contend.
    bool exclusive_lock = false;
    /// >= 0 selects shared-stream mode (see class comment): appends go
    /// to this writer's own `segment-w<slot>-NNNNNN.seg` stream,
    /// sibling streams are absorbed read-only, and Compact() takes the
    /// directory's compaction lease. -1 = single-writer namespace.
    int stream_slot = -1;
  };

  struct Stats {
    /// Live unique (scope, pair) entries in memory.
    size_t entries = 0;
    /// Segment files of this writer's own stream currently on disk
    /// (including the active one). Sibling streams are not counted —
    /// each sibling reports its own.
    size_t segments = 0;
    /// CRC-valid records loaded by Open from this writer's own
    /// segments.
    long long replayed_records = 0;
    /// Torn/corrupt tail bytes discarded by Open (own segments only —
    /// an unabsorbed sibling tail is pending, not dropped).
    long long dropped_bytes = 0;
    /// Own segments whose tail failed CRC validation on Open.
    int corrupt_tails = 0;
    /// Segments whose header was unreadable or wrong; their contents
    /// are untrusted and skipped entirely.
    int bad_headers = 0;
    long long appends = 0;
    long long lookups = 0;
    long long hits = 0;
    /// Subset of `hits` served by an entry a sibling stream paid for
    /// (absorbed on Open or by RefreshPeers) — the cross-worker reuse
    /// the shared directory exists for.
    long long peer_hits = 0;
    /// Entries absorbed from sibling/foreign segments (Open +
    /// refreshes), counting only keys this store did not already hold.
    long long peer_records = 0;
    /// RefreshPeers passes that absorbed at least one new record.
    long long peer_refreshes = 0;
    long long compactions = 0;
  };

  ScoreStore() = default;
  ~ScoreStore();

  ScoreStore(const ScoreStore&) = delete;
  ScoreStore& operator=(const ScoreStore&) = delete;

  /// Opens (creating `dir` and a first segment when missing) and loads
  /// every valid record into the in-memory index. Returns false when
  /// the directory or active segment cannot be created/opened — and
  /// then always leaves open_error() describing why, with no lock
  /// held. A later Open on the same object (after the failure, or
  /// after Close) starts clean: stats, counters and the error text
  /// reset before anything is read.
  bool Open(const std::string& dir, const Options& options);
  bool Open(const std::string& dir) { return Open(dir, Options()); }

  bool is_open() const { return fd_ >= 0; }

  /// True (and *score set) on a hit. Thread-safe; counts one lookup
  /// and, on success, one hit. When `from_peer` is non-null it is set
  /// to whether the serving entry was paid for by a sibling stream
  /// (always false for entries this writer appended or loaded from its
  /// own segments).
  bool Lookup(uint64_t scope, const models::PairKey& key, double* score,
              bool* from_peer = nullptr);

  /// Records the score (buffered; durable after Sync). A key already
  /// present is skipped — scores are deterministic, so re-puts carry
  /// the same value and would only grow the segment. Thread-safe.
  bool Put(uint64_t scope, const models::PairKey& key, double score);

  /// Writes every buffered record through and fsyncs the active
  /// segment. The durability boundary: records Put before a returning
  /// Sync survive SIGKILL/power loss.
  bool Sync();

  /// Re-scans the directory for sibling/foreign segments and absorbs
  /// each one's newly CRC-valid prefix into the in-memory index —
  /// the read half of shared-stream mode. Cheap when nothing changed
  /// (one directory scan plus a size check per peer file). Never
  /// touches peer bytes on disk; a torn or in-flight tail stays
  /// unabsorbed until its owner completes or truncates it. A peer
  /// segment that vanished (its owner compacted) keeps its absorbed
  /// entries in memory and is re-discovered under the compacted name.
  /// No-op (true) outside shared mode. Thread-safe.
  bool RefreshPeers();

  /// Rewrites this writer's live entries into one fresh own-stream
  /// segment (atomic temp+rename) and unlinks the stream's old ones —
  /// sibling-paid entries stay where their owners keep them.
  /// Lookups/Puts are excluded for the duration. In shared mode the
  /// flock'd compaction lease serializes directory churn; a busy lease
  /// skips the compaction (returns true, stats unchanged). No-op
  /// (true) on an empty store.
  bool Compact();

  void Close();

  /// Mirrors lookups/hits/appends into registry counters (store.*
  /// catalog; null registry detaches). The store's own Stats stay
  /// authoritative.
  void BindMetrics(obs::MetricsRegistry* registry);

  Stats stats() const;
  size_t entry_count() const;
  const std::string& dir() const { return dir_; }

  /// Human-readable reason the last Open returned false (empty when the
  /// last Open succeeded). Lets callers distinguish "directory locked
  /// by another process" from plain I/O failure.
  const std::string& open_error() const { return open_error_; }

  /// Name of the flock'd lease file a shared-mode Compact() takes.
  static const char* CompactionLeaseFileName();

 private:
  struct StoreKey {
    uint64_t scope = 0;
    uint64_t lo = 0;
    uint64_t hi = 0;
    bool operator==(const StoreKey& other) const {
      return scope == other.scope && lo == other.lo && hi == other.hi;
    }
  };
  struct StoreKeyHasher {
    size_t operator()(const StoreKey& key) const {
      uint64_t h = key.scope * 0x9E3779B97F4A7C15ULL;
      h ^= key.lo + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
      h ^= key.hi + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
      return static_cast<size_t>(h);
    }
  };
  struct Entry {
    double score = 0.0;
    /// Paid by a sibling stream (vs appended/loaded by this writer).
    bool from_peer = false;
  };
  /// Incremental absorption state of one sibling/foreign segment file,
  /// keyed by file name. `absorbed` is the trusted prefix already
  /// merged; RefreshPeers extends it monotonically.
  struct PeerFile {
    size_t absorbed = 0;
    bool header_ok = false;
    /// Bad magic/version once the header was big enough to judge:
    /// never trusted, never re-read.
    bool ignored = false;
  };

  /// Parses one own-stream segment file into the index. Returns false
  /// only on an unreadable file (missing/IO error); corruption is
  /// handled by truncation-to-valid-prefix accounting, not failure.
  bool LoadSegment(const std::string& path);
  /// Validates `data` (header + records) and merges the valid prefix
  /// into `index_`; returns the number of valid bytes (0 on a bad
  /// header).
  size_t AbsorbSegment(const char* data, size_t size, bool* bad_header);
  /// Extends `peer`'s absorbed prefix from the file's current bytes.
  void AbsorbPeerTail(const std::string& name, PeerFile* peer);
  bool RefreshPeersLocked();
  bool OpenActiveSegment(long long number, bool truncate_to, size_t valid);
  bool RollSegmentLocked();
  bool SyncLocked();
  /// Records the failure reason (keeping an earlier, more specific one
  /// if already set), drops any held lock/fd, and returns false — the
  /// single exit for every Open failure path.
  bool FailOpen(const std::string& message);
  std::string SegmentPath(long long number) const;
  /// The lock file exclusive_lock guards: ".lock", or ".lock-w<slot>"
  /// in shared-stream mode.
  std::string StreamLockName() const;

  mutable std::mutex mutex_;
  std::string dir_;
  Options options_;
  DirLock dir_lock_;
  std::string open_error_;
  int fd_ = -1;
  long long active_segment_ = 0;
  size_t active_bytes_ = 0;
  /// Valid byte count reported by the most recent LoadSegment call
  /// (consulted for the active segment's truncation point on Open).
  size_t segment_valid_bytes_ = 0;
  std::string buffer_;
  int unsynced_appends_ = 0;
  std::unordered_map<StoreKey, Entry, StoreKeyHasher> index_;
  std::unordered_map<std::string, PeerFile> peers_;
  Stats stats_;
  obs::Counter* metric_lookups_ = nullptr;
  obs::Counter* metric_hits_ = nullptr;
  obs::Counter* metric_peer_hits_ = nullptr;
  obs::Counter* metric_peer_records_ = nullptr;
  obs::Counter* metric_appends_ = nullptr;
  obs::Counter* metric_syncs_ = nullptr;
  obs::Counter* metric_compactions_ = nullptr;
};

/// 64-bit scope hash of (matcher id, model fingerprint) — the
/// fixed-size model half of a score key. FNV-1a over both parts with a
/// separator, finalized with an avalanche mix.
uint64_t HashScope(const std::string& matcher_id, uint64_t model_fingerprint);

}  // namespace certa::persist

#endif  // CERTA_PERSIST_SCORE_STORE_H_
