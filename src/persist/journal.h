#ifndef CERTA_PERSIST_JOURNAL_H_
#define CERTA_PERSIST_JOURNAL_H_

#include <string>
#include <vector>

#include "models/scoring_engine.h"
#include "obs/metrics.h"

namespace certa::persist {

/// Crash-safe write-ahead journal of scored pairs (pair-hash → score).
///
/// An explanation job's only expensive, externally-paid work is its
/// model calls; everything else is cheap deterministic CPU. The journal
/// records every freshly computed score as it happens, so a job killed
/// at any instruction can be resumed by replaying the journal into the
/// PredictionCache (see ScoringEngine::Prewarm) and re-running — every
/// already-paid call becomes a cache hit and the result is bit-identical
/// to an uninterrupted run.
///
/// On-disk format (host-endian, single-machine durability):
///   header:  8-byte magic "CERTAWAL" + uint32 version (1)
///   record:  uint64 key.lo | uint64 key.hi | double score | uint32 crc
/// where crc is CRC-32 (util::Crc32) over the 24 payload bytes.
/// Records are append-only. Recovery trusts exactly the longest prefix
/// of CRC-valid records: a torn, truncated, or bit-flipped tail is
/// discarded, never interpreted.

/// One journaled score.
struct JournalEntry {
  models::PairKey key;
  double score = 0.0;
};

/// Outcome of replaying a journal file.
struct JournalReplay {
  /// The valid record prefix, in append order. Duplicate keys are
  /// possible (a resumed job may re-log) and harmless: scores are
  /// deterministic, so every duplicate carries the same value.
  std::vector<JournalEntry> entries;
  /// Keys seen more than once within `entries`.
  size_t duplicates = 0;
  /// Bytes of torn/corrupt tail that were discarded.
  size_t dropped_bytes = 0;
  /// True when a tail was discarded (truncated write or CRC mismatch).
  bool corrupt_tail = false;
  /// True when the file does not exist (fresh job; entries empty).
  bool missing = false;
  /// True when the header is unreadable or wrong — the whole file is
  /// untrusted and treated as empty.
  bool bad_header = false;
};

/// Reads and validates `path`; never throws, never trusts a bad byte.
JournalReplay ReplayJournal(const std::string& path);

/// Appender with an explicit durability boundary: Append buffers,
/// Sync() writes through and fsyncs. Open() recovers first — any
/// torn/corrupt tail is truncated away so new records always extend
/// the valid prefix (appending after garbage would strand them behind
/// the corruption forever).
class JournalWriter {
 public:
  JournalWriter() = default;
  ~JournalWriter();

  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  /// Opens (creating with a fresh header when missing, truncating an
  /// invalid tail otherwise). `replay`, when non-null, receives the
  /// valid prefix found on open — callers replay it into their cache.
  bool Open(const std::string& path, JournalReplay* replay = nullptr);

  bool is_open() const { return fd_ >= 0; }

  /// Buffers one record (no I/O guarantee until Sync).
  bool Append(const models::PairKey& key, double score);

  /// Writes buffered records and fsyncs; after a true return every
  /// appended record survives a crash.
  bool Sync();

  void Close();

  /// Records appended through this writer (not counting replayed ones).
  long long appended() const { return appended_; }

  /// Mirrors appends/bytes/sync latency into the journal.* metrics of
  /// `registry` (docs/OBSERVABILITY.md); nullptr detaches. Purely
  /// observational — journal bytes and appended() are unchanged.
  void BindMetrics(obs::MetricsRegistry* registry);

 private:
  int fd_ = -1;
  std::string buffer_;
  long long appended_ = 0;
  obs::Counter* metric_appends_ = nullptr;
  obs::Counter* metric_bytes_ = nullptr;
  obs::Counter* metric_syncs_ = nullptr;
  obs::Histogram* metric_fsync_us_ = nullptr;
};

/// Atomically rewrites `path` as a fresh journal containing exactly
/// `entries` — used on resume to compact duplicate records away. A
/// crash mid-compaction leaves the old journal intact.
bool CompactJournal(const std::string& path,
                    const std::vector<JournalEntry>& entries);

}  // namespace certa::persist

#endif  // CERTA_PERSIST_JOURNAL_H_
