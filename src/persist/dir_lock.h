#ifndef CERTA_PERSIST_DIR_LOCK_H_
#define CERTA_PERSIST_DIR_LOCK_H_

#include <string>

namespace certa::persist {

/// RAII advisory exclusivity lock on a directory, implemented as
/// flock(LOCK_EX | LOCK_NB) on `<dir>/.lock`. Guards the namespaces two
/// processes must never share: a serve job-root (or fleet partition), a
/// score-store directory, and an individual job dir mid-run. flock is
/// inherited across fork but released automatically when the last
/// holder's descriptor closes — including on SIGKILL — so a crashed
/// owner never wedges the directory. The lock file also records the
/// holder's pid for operator diagnostics; the pid is informational
/// only (never trusted for liveness — flock itself is the truth).
class DirLock {
 public:
  DirLock() = default;
  ~DirLock() { Release(); }

  DirLock(DirLock&& other) noexcept;
  DirLock& operator=(DirLock&& other) noexcept;
  DirLock(const DirLock&) = delete;
  DirLock& operator=(const DirLock&) = delete;

  /// Attempts to acquire the lock, creating `dir` and the lock file if
  /// needed. Non-blocking: returns false immediately when another
  /// process holds the lock (error describes the conflict, quoting the
  /// recorded holder pid when readable) or on I/O failure.
  bool Acquire(const std::string& dir, std::string* error);

  /// Same, but on a caller-named lock file inside `dir` instead of the
  /// default LockFileName(). Lets several cooperating lock files share
  /// one directory — a shared score store uses one per append stream
  /// (".lock-w<slot>") plus a compaction lease, so siblings coexist
  /// while two processes can still never own the same stream.
  bool AcquireFile(const std::string& dir, const std::string& lock_file_name,
                   std::string* error);

  /// Drops the lock and closes the descriptor. Idempotent. The lock
  /// file itself is left in place: unlinking would race a concurrent
  /// acquirer that already opened the old inode.
  void Release();

  bool held() const { return fd_ >= 0; }
  const std::string& path() const { return path_; }

  /// The lock file descriptor (-1 when not held). flock is shared
  /// across fork(), so a process that forks while holding a DirLock
  /// must close this fd in the child or the lock outlives the parent.
  int fd() const { return fd_; }

  /// Name of the lock file created inside a locked directory.
  static const char* LockFileName();

 private:
  int fd_ = -1;
  std::string path_;
};

}  // namespace certa::persist

#endif  // CERTA_PERSIST_DIR_LOCK_H_
