#ifndef CERTA_CORE_TOKEN_EXPLAINER_H_
#define CERTA_CORE_TOKEN_EXPLAINER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "explain/explainer.h"
#include "explain/explanation.h"

namespace certa::core {

/// Token-level saliency for one attribute of one record.
struct TokenExplanation {
  /// The attribute that was drilled into.
  explain::AttributeRef attribute;
  /// The attribute's tokens, in order.
  std::vector<std::string> tokens;
  /// Necessity score per token (parallel to `tokens`), in [0, 1].
  std::vector<double> scores;
  /// How many of the sampled perturbations flipped the prediction; when
  /// 0 the scores fall back to occlusion deltas (see below).
  int flips = 0;

  /// Token indices by descending score (deterministic tie-break).
  std::vector<int> Ranked() const;
};

/// Drills an attribute-level explanation down to tokens — the paper's
/// "extension of CERTA's principled explanation framework to
/// token-level explanations" (Sect. 6, future work). The estimator is
/// the token-granular analogue of Eq. 1: sample token-drop
/// perturbations of the target attribute, and score each token by the
/// probability it was dropped conditioned on the prediction flipping.
/// When the sampled perturbations never flip (common for confident
/// predictions), scores fall back to normalized occlusion deltas
/// (mean |score change| attributable to dropping the token), which
/// preserves the ranking semantics.
class TokenExplainer {
 public:
  struct Options {
    /// Sampled token-drop masks per explanation.
    int num_samples = 160;
    /// Per-token drop probability within a sample.
    double drop_probability = 0.4;
    uint64_t seed = 11;
  };

  TokenExplainer(explain::ExplainContext context, Options options);
  explicit TokenExplainer(explain::ExplainContext context)
      : TokenExplainer(context, Options()) {}

  /// Explains the contribution of each token of `attribute` (on record
  /// u or v per the ref's side) to the prediction M(<u, v>).
  TokenExplanation Explain(const data::Record& u, const data::Record& v,
                           explain::AttributeRef attribute) const;

 private:
  explain::ExplainContext context_;
  Options options_;
};

}  // namespace certa::core

#endif  // CERTA_CORE_TOKEN_EXPLAINER_H_
