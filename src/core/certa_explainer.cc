#include "core/certa_explainer.h"

#include <algorithm>
#include <map>
#include <optional>
#include <string>
#include <utility>

#include "core/lattice.h"
#include "explain/perturbation.h"
#include "models/scoring_engine.h"
#include "util/logging.h"

namespace certa::core {
namespace {

using explain::AttrMask;

/// Content hash of the pair, mixed into the explainer seed so triangle
/// sampling differs across inputs but is stable across runs.
uint64_t PairHash(const data::Record& u, const data::Record& v) {
  uint64_t hash = 0xcbf29ce484222325ULL;
  auto mix = [&hash](const std::string& value) {
    for (char c : value) {
      hash ^= static_cast<unsigned char>(c);
      hash *= 0x100000001b3ULL;
    }
    hash ^= 0x1f;
    hash *= 0x100000001b3ULL;
  };
  for (const std::string& value : u.values) mix(value);
  for (const std::string& value : v.values) mix(value);
  return hash;
}

}  // namespace

std::string ExplainStatusName(ExplainStatus status) {
  switch (status) {
    case ExplainStatus::kComplete:
      return "complete";
    case ExplainStatus::kDegraded:
      return "degraded";
    case ExplainStatus::kTruncated:
      return "truncated";
  }
  return "unknown";
}

CertaExplainer::CertaExplainer(explain::ExplainContext context,
                               Options options)
    : context_(context), options_(options) {
  CERTA_CHECK(context_.valid());
  CERTA_CHECK_GT(options_.num_triangles, 0);
  if (options_.num_threads > 1) {
    pool_ = std::make_unique<util::ThreadPool>(options_.num_threads);
  }
  if (options_.use_candidate_index) {
    // Build only for sources the partition threshold will ever consult
    // — indexing a small table would be pure constructor waste.
    const size_t min_pool = options_.support_partition_min_pool;
    if (static_cast<size_t>(context_.left->size()) >= min_pool) {
      left_index_ = std::make_unique<data::CandidateIndex>(*context_.left);
    }
    if (static_cast<size_t>(context_.right->size()) >= min_pool) {
      right_index_ = std::make_unique<data::CandidateIndex>(*context_.right);
    }
  }
}

CertaResult CertaExplainer::Explain(const data::Record& u,
                                    const data::Record& v) const {
  const int left_attributes = context_.left->schema().size();
  const int right_attributes = context_.right->schema().size();
  CertaResult result;
  result.saliency =
      explain::SaliencyExplanation(left_attributes, right_attributes);

  // Every model call of this run drains through one scoring engine:
  // batched featurization, per-run memoization, and (with num_threads
  // > 1) pool fan-out — all bit-identical to calling the model per
  // pair, so the result is invariant across thread/cache settings.
  models::ScoringEngine::Options engine_options;
  engine_options.enable_cache = options_.use_cache;
  engine_options.pool = pool_.get();
  engine_options.observer = options_.score_observer;
  engine_options.store_probe = options_.store_probe;
  engine_options.store_write = options_.store_write;
  engine_options.metrics = options_.metrics;
  // With resilience enabled the chain grows one layer: base model →
  // ResilientMatcher (retries, deadline, breaker, call budget) →
  // ScoringEngine. The decorator sits *below* the cache, so cache hits
  // never re-charge the budget; disabled, the chain is byte-for-byte
  // the non-resilient one.
  std::unique_ptr<models::ResilientMatcher> resilient;
  const models::Matcher* scored_model = context_.model;
  if (options_.resilience.enabled) {
    models::ResilienceOptions resilience_options = options_.resilience;
    if (resilience_options.metrics == nullptr) {
      resilience_options.metrics = options_.metrics;
    }
    resilient = std::make_unique<models::ResilientMatcher>(
        context_.model, resilience_options);
    scored_model = resilient.get();
  }
  models::ScoringEngine engine(scored_model, engine_options);
  explain::ExplainContext engine_context = context_;
  engine_context.model = &engine;

  // Journal replay: seed the cache with every already-paid score. The
  // prewarmed entries make the resumed run's model calls a subset of
  // the original's while keeping counters and results bit-identical.
  if (options_.replayed_scores != nullptr) {
    for (const auto& [key, score] : *options_.replayed_scores) {
      engine.Prewarm(key, score);
    }
  }

  // Observability: one span for the whole run plus one per phase, and
  // explain.phase.<name>.model_calls counters derived from the engine's
  // scores-computed stream. All of it is write-only — nothing below
  // reads these back into the result.
  obs::TraceSpan run_span(options_.trace, "explain");
  std::optional<obs::TraceSpan> phase_span;
  auto begin_phase_span = [&](const char* name) {
    phase_span.reset();  // record the previous phase first
    if (options_.trace != nullptr) {
      phase_span.emplace(options_.trace, std::string("phase:") + name);
    }
  };
  obs::Counter* computed_counter =
      options_.metrics != nullptr
          ? options_.metrics->counter("scoring.scores.computed")
          : nullptr;
  long long computed_seen =
      computed_counter != nullptr ? computed_counter->value() : 0;
  // Attributes the model calls since the previous boundary to `name`,
  // and mirrors the delta onto the current phase span.
  auto record_phase_calls = [&](const char* name) {
    if (computed_counter == nullptr) return;
    long long now = computed_counter->value();
    options_.metrics
        ->counter(std::string("explain.phase.") + name + ".model_calls")
        ->Add(now - computed_seen);
    if (phase_span.has_value()) {
      phase_span->AddArg("model_calls", now - computed_seen);
    }
    computed_seen = now;
  };

  auto cancelled = [&] {
    return options_.cancel != nullptr &&
           options_.cancel->load(std::memory_order_relaxed);
  };
  ExplainProgress progress;
  auto notify = [&](const char* phase) {
    if (!options_.progress) return;
    progress.phase = phase;
    progress.predictions_performed = result.predictions_performed;
    progress.last_lattice = nullptr;
    progress.last_tags = nullptr;
    options_.progress(progress);
  };

  auto record_cache_stats = [&] {
    models::PredictionCache::Stats stats = engine.cache_stats();
    result.cache_hits = stats.hits;
    result.cache_misses = stats.misses;
    result.cache_evictions = stats.evictions;
  };
  // Attributes the decorator's call/retry/failure deltas since the last
  // snapshot to one phase; cells_skipped is tracked at the call sites.
  models::ResilientMatcher::Stats seen;
  auto close_phase = [&](PhaseResilience* phase) {
    if (!resilient) return;
    models::ResilientMatcher::Stats now = resilient->stats();
    phase->calls += now.calls - seen.calls;
    phase->retries += now.retries - seen.retries;
    phase->failures += now.failures - seen.failures;
    seen = now;
  };
  bool truncated = false;
  auto finish_status = [&] {
    const bool degraded = result.triangle_phase.cells_skipped > 0 ||
                          result.lattice_phase.cells_skipped > 0 ||
                          result.cf_phase.cells_skipped > 0;
    result.status = truncated     ? ExplainStatus::kTruncated
                    : degraded    ? ExplainStatus::kDegraded
                                  : ExplainStatus::kComplete;
  };

  if (cancelled()) {
    truncated = true;
    finish_status();
    record_cache_stats();
    return result;
  }
  begin_phase_span("pivot");
  notify("pivot");
  bool original_prediction = false;
  try {
    original_prediction = engine.Predict(u, v);
  } catch (const models::ScoringError&) {
    // Without the pivot prediction nothing downstream is computable;
    // return an empty-but-honest result instead of propagating.
    ++result.triangle_phase.cells_skipped;
    close_phase(&result.triangle_phase);
    truncated = true;
    finish_status();
    record_cache_stats();
    return result;
  }
  record_phase_calls("pivot");
  Rng rng(options_.seed ^ PairHash(u, v));

  begin_phase_span("triangles");
  notify("triangles");
  TriangleOptions triangle_options;
  triangle_options.count = options_.num_triangles;
  triangle_options.allow_augmentation = options_.allow_augmentation;
  triangle_options.only_augmentation = options_.only_augmentation;
  triangle_options.left_index = left_index_.get();
  triangle_options.right_index = right_index_.get();
  triangle_options.support_partition_min_pool =
      options_.support_partition_min_pool;
  std::vector<OpenTriangle> triangles =
      CollectTriangles(engine_context, u, v, original_prediction,
                       triangle_options, &rng, &result.triangle_stats);
  result.triangles_used = static_cast<int>(triangles.size());
  if (phase_span.has_value()) {
    phase_span->AddArg("triangles", result.triangles_used);
  }
  record_phase_calls("triangles");
  close_phase(&result.triangle_phase);
  result.triangle_phase.cells_skipped += result.triangle_stats.failed_probes;
  if (result.triangle_stats.aborted) truncated = true;
  if (triangles.empty()) {
    finish_status();
    record_cache_stats();
    return result;
  }
  progress.triangles_total = static_cast<int>(triangles.size());
  begin_phase_span("lattice");
  notify("lattice");

  Lattice left_lattice(left_attributes);
  Lattice right_lattice(right_attributes);

  // Counters of Algorithm 1: N (necessity), f (total flips), S
  // (sufficiency per attribute set), C (flip provenance per set).
  std::vector<long long> necessity_left(left_attributes, 0);
  std::vector<long long> necessity_right(right_attributes, 0);
  long long total_flips = 0;
  std::map<std::pair<data::Side, AttrMask>, int> sufficiency_counts;
  std::map<std::pair<data::Side, AttrMask>, std::vector<int>> provenance;
  int left_triangles = 0;
  int right_triangles = 0;

  // Set when the model-call budget dies mid-lattice: the remaining
  // triangles cannot be tagged, so the loop stops and every Eq. 1/2
  // count below stays an honest partial over the tagged prefix.
  bool stop_lattice = false;

  // Group-lockstep tagging: triangles are tagged lattice_group_size at
  // a time, and each round merges the pending level of every unfinished
  // lattice in the group into ONE engine batch. Per-triangle node order
  // is exactly the batched Tag's, so the tags are bit-identical to
  // tagging each triangle alone — only the batch boundaries change,
  // which turns dozens of small per-level batches into a few large
  // ones the engine (memoized featurization, pool chunks) can amortize.
  const size_t group_size =
      static_cast<size_t>(std::max(1, options_.lattice_group_size));
  for (size_t g = 0; g < triangles.size(); g += group_size) {
    if (stop_lattice || cancelled()) {
      truncated = true;
      break;
    }
    const size_t group_end = std::min(triangles.size(), g + group_size);

    std::vector<Lattice::Tagger> taggers;
    taggers.reserve(group_end - g);
    for (size_t t = g; t < group_end; ++t) {
      const bool is_left = triangles[t].side == data::Side::kLeft;
      taggers.emplace_back(is_left ? left_lattice : right_lattice,
                           options_.assume_monotone);
    }

    // Lockstep rounds: gather every group member's pending masks (in
    // triangle order), score once, hand each tagger its slice.
    std::vector<data::Record> perturbed;
    std::vector<models::RecordPair> pairs;
    while (!stop_lattice) {
      size_t total = 0;
      for (const Lattice::Tagger& tagger : taggers) {
        if (!tagger.done()) total += tagger.pending().size();
      }
      if (total == 0) break;
      if (cancelled()) {
        truncated = true;
        break;
      }
      // Materialize all perturbations first (reserved, so the pair
      // pointers below stay stable), then the pair rows.
      perturbed.clear();
      perturbed.reserve(total);
      for (size_t k = 0; k < taggers.size(); ++k) {
        if (taggers[k].done()) continue;
        const OpenTriangle& triangle = triangles[g + k];
        const data::Record& free_record =
            triangle.side == data::Side::kLeft ? u : v;
        for (AttrMask mask : taggers[k].pending()) {
          perturbed.push_back(
              explain::CopyAttributes(free_record, triangle.support, mask));
        }
      }
      pairs.clear();
      pairs.reserve(total);
      size_t offset = 0;
      for (size_t k = 0; k < taggers.size(); ++k) {
        if (taggers[k].done()) continue;
        const bool is_left = triangles[g + k].side == data::Side::kLeft;
        for (size_t i = 0; i < taggers[k].pending().size(); ++i) {
          const data::Record& record = perturbed[offset++];
          pairs.push_back(is_left ? models::RecordPair{&record, &v}
                                  : models::RecordPair{&u, &record});
        }
      }

      models::ScoringEngine::BatchOutcome outcome =
          engine.TryScoreBatch(pairs);
      if (outcome.budget_exhausted) stop_lattice = true;
      result.lattice_phase.cells_skipped +=
          static_cast<long long>(outcome.failures);
      offset = 0;
      std::vector<uint8_t> flips_out;
      for (Lattice::Tagger& tagger : taggers) {
        if (tagger.done()) continue;  // finished before this round
        const size_t count = tagger.pending().size();
        flips_out.assign(count, 0);
        for (size_t i = 0; i < count; ++i) {
          // A failed cell conservatively counts as "no flip": it adds
          // nothing to the counters and never seeds monotone
          // propagation.
          flips_out[i] =
              (outcome.ok[offset + i] != 0 &&
               (outcome.scores[offset + i] >= 0.5) != original_prediction)
                  ? 1
                  : 0;
        }
        offset += count;
        tagger.Supply(flips_out);
      }
    }

    // Per-triangle accounting in triangle order — identical to the
    // one-triangle-at-a-time loop this replaces. A group cut short by
    // budget death or cancellation still accounts its (honest, partial)
    // tags; finish_status() reports the truncation.
    for (size_t t = g; t < group_end; ++t) {
      const OpenTriangle& triangle = triangles[t];
      const bool is_left = triangle.side == data::Side::kLeft;
      (is_left ? left_triangles : right_triangles) += 1;
      const data::Record& free_record = is_left ? u : v;
      const Lattice& lattice = is_left ? left_lattice : right_lattice;
      Lattice::TagResult tags = taggers[t - g].TakeTags();
      result.predictions_expected += lattice.node_count();
      result.predictions_performed += tags.performed;

      if (options_.audit_inferences && options_.assume_monotone) {
        // Re-test every inferred node; a disagreement is a monotonicity
        // violation that CERTA silently absorbed (Table 7's error rate).
        auto flips = [&](AttrMask mask) {
          data::Record single =
              explain::CopyAttributes(free_record, triangle.support, mask);
          bool prediction = is_left ? engine.Predict(single, v)
                                    : engine.Predict(u, single);
          return prediction != original_prediction;
        };
        const AttrMask full =
            (1u << (is_left ? left_attributes : right_attributes)) - 1u;
        for (AttrMask mask = 1; mask < full; ++mask) {
          if (!tags.flip[mask] || tags.tested[mask]) continue;
          try {
            if (!flips(mask)) ++result.inference_errors;
          } catch (const models::BudgetExhausted&) {
            ++result.lattice_phase.cells_skipped;
            stop_lattice = true;
            break;
          } catch (const models::ScoringError&) {
            // Unauditable cell; the inferred tag stands.
            ++result.lattice_phase.cells_skipped;
          }
        }
      }

      std::vector<AttrMask> flipped = lattice.FlippedNodes(tags);
      for (AttrMask mask : flipped) {
        ++total_flips;
        ++sufficiency_counts[{triangle.side, mask}];
        provenance[{triangle.side, mask}].push_back(static_cast<int>(t));
        for (int index : explain::MaskToIndices(mask)) {
          (is_left ? necessity_left : necessity_right)[index] += 1;
        }
      }
      // The supremum (full attribute set) is never tested (footnote 2
      // of the paper) but inherits a flip from any flipped proper
      // subset by monotone propagation, and the paper's Sect. 4 example
      // counts it among the flips for the necessity probabilities. It
      // stays excluded from the counterfactual argmax (Eq. 3 ranges
      // over proper subsets only).
      if (!flipped.empty()) {
        ++total_flips;
        const int attributes = is_left ? left_attributes : right_attributes;
        for (int index = 0; index < attributes; ++index) {
          (is_left ? necessity_left : necessity_right)[index] += 1;
        }
      }

      // Frontier notification: triangle t is fully tagged; its lattice
      // snapshot rides along so checkpoints can record the antichain.
      if (options_.progress) {
        progress.phase = "lattice";
        progress.triangles_tagged = static_cast<int>(t) + 1;
        progress.predictions_performed = result.predictions_performed;
        progress.total_flips = total_flips;
        progress.last_lattice = &lattice;
        progress.last_tags = &tags;
        progress.last_side = triangle.side;
        options_.progress(progress);
        progress.last_lattice = nullptr;
        progress.last_tags = nullptr;
      }
    }
  }
  if (stop_lattice) truncated = true;
  if (phase_span.has_value()) {
    phase_span->AddArg("flips", total_flips);
    phase_span->AddArg("predictions_performed", result.predictions_performed);
  }
  record_phase_calls("lattice");
  close_phase(&result.lattice_phase);
  if (options_.metrics != nullptr) {
    options_.metrics->counter("explain.flips")->Add(total_flips);
  }
  result.predictions_saved =
      result.predictions_expected - result.predictions_performed;

  // Saliency scores: probability of necessity φ_a = N[a] / f (Eq. 1).
  if (total_flips > 0) {
    for (int i = 0; i < left_attributes; ++i) {
      result.saliency.set_score(
          {data::Side::kLeft, i},
          static_cast<double>(necessity_left[i]) / total_flips);
    }
    for (int i = 0; i < right_attributes; ++i) {
      result.saliency.set_score(
          {data::Side::kRight, i},
          static_cast<double>(necessity_right[i]) / total_flips);
    }
  }

  // Sufficiency per set: χ_A = S[A] / |T_side| (Eq. 2) — normalized by
  // the triangles of the set's own side, matching the probabilistic
  // reading P(flip | attributes in A changed).
  double best_sufficiency = 0.0;
  int best_size = 1 << 30;
  data::Side best_side = data::Side::kLeft;
  AttrMask best_mask = 0;
  for (const auto& [key, count] : sufficiency_counts) {
    const auto& [side, mask] = key;
    int side_total =
        side == data::Side::kLeft ? left_triangles : right_triangles;
    if (side_total == 0) continue;
    double sufficiency = static_cast<double>(count) / side_total;
    result.set_sides.push_back(side);
    result.set_masks.push_back(mask);
    result.set_sufficiencies.push_back(sufficiency);
    int size = explain::MaskSize(mask);
    if (sufficiency > best_sufficiency ||
        (sufficiency == best_sufficiency && size < best_size)) {
      best_sufficiency = sufficiency;
      best_size = size;
      best_side = side;
      best_mask = mask;
    }
  }
  result.best_sufficiency = best_sufficiency;
  result.best_side = best_side;
  result.best_mask = best_mask;

  begin_phase_span("counterfactuals");
  notify("counterfactuals");
  if (cancelled()) {
    // Parked/shut down between phases: skip the counterfactual scoring
    // entirely — the resumed run redoes it from journaled scores.
    truncated = true;
    close_phase(&result.cf_phase);
    finish_status();
    record_cache_stats();
    return result;
  }
  // Counterfactual examples: every flipped input whose changed set is
  // the golden set A* (Algorithm 1 lines 30-33).
  if (best_mask != 0) {
    const bool is_left = best_side == data::Side::kLeft;
    const data::Record& free_record = is_left ? u : v;
    for (int t : provenance[{best_side, best_mask}]) {
      const OpenTriangle& triangle = triangles[static_cast<size_t>(t)];
      data::Record perturbed =
          explain::CopyAttributes(free_record, triangle.support, best_mask);
      explain::CounterfactualExample example;
      for (int index : explain::MaskToIndices(best_mask)) {
        example.changed_attributes.push_back({best_side, index});
      }
      example.sufficiency = best_sufficiency;
      if (is_left) {
        example.left = perturbed;
        example.right = v;
      } else {
        example.left = u;
        example.right = perturbed;
      }
      result.counterfactuals.push_back(std::move(example));
    }
    // Score all counterfactuals as one batch (after the pushes, so the
    // record addresses are stable).
    std::vector<models::RecordPair> pairs;
    pairs.reserve(result.counterfactuals.size());
    for (const explain::CounterfactualExample& example :
         result.counterfactuals) {
      pairs.push_back({&example.left, &example.right});
    }
    models::ScoringEngine::BatchOutcome outcome = engine.TryScoreBatch(pairs);
    if (outcome.budget_exhausted) truncated = true;
    result.cf_phase.cells_skipped += static_cast<long long>(outcome.failures);
    for (size_t i = 0; i < outcome.scores.size(); ++i) {
      // A failed score keeps the -1.0 "unknown" sentinel (JSON null).
      if (outcome.ok[i] != 0) {
        result.counterfactuals[i].score = outcome.scores[i];
      }
    }
  }
  if (phase_span.has_value()) {
    phase_span->AddArg("counterfactuals",
                       static_cast<long long>(result.counterfactuals.size()));
  }
  record_phase_calls("counterfactuals");
  close_phase(&result.cf_phase);
  finish_status();
  record_cache_stats();
  phase_span.reset();
  run_span.AddArg("flips", total_flips);
  run_span.AddArg("status", static_cast<long long>(result.status));
  if (options_.metrics != nullptr) {
    options_.metrics->counter("explain.runs")->Increment();
  }
  notify("done");
  return result;
}

explain::SaliencyExplanation CertaExplainer::ExplainSaliency(
    const data::Record& u, const data::Record& v) {
  return Explain(u, v).saliency;
}

std::vector<explain::CounterfactualExample>
CertaExplainer::ExplainCounterfactual(const data::Record& u,
                                      const data::Record& v) {
  return Explain(u, v).counterfactuals;
}

}  // namespace certa::core
