#include "core/triangles.h"

#include <algorithm>
#include <cstdint>
#include <string_view>
#include <unordered_map>

#include "explain/perturbation.h"
#include "models/matcher.h"
#include "models/resilience.h"
#include "text/similarity.h"
#include "util/logging.h"

namespace certa::core {
namespace {

/// Collects triangles for one side. The free/pivot roles swap with the
/// side: for left triangles the support pairs against the pivot v; for
/// right triangles against the pivot u.
void CollectSide(const explain::ExplainContext& context,
                 const data::Record& u, const data::Record& v,
                 bool original_prediction, data::Side side, int wanted,
                 const TriangleOptions& options, Rng* rng,
                 std::vector<OpenTriangle>* triangles,
                 TriangleStats* stats) {
  if (wanted <= 0 || stats->aborted) return;
  const data::Table& pool =
      side == data::Side::kLeft ? *context.left : *context.right;
  const data::Record& self = side == data::Side::kLeft ? u : v;

  int found = 0;
  std::vector<size_t> order;
  if (pool.size() > 0) {
    order = rng->SampleIndices(static_cast<size_t>(pool.size()),
                               static_cast<size_t>(pool.size()));
  }

  if (!options.only_augmentation) {
    // Chunked speculative screening: candidates are scored a batch at a
    // time through ScoreBatch (amortized featurization, shared cache),
    // but consumed strictly in the serial scan order, and `probes` is
    // counted only for candidates consumed before the quota fills — so
    // Table 8 probe counts match the one-at-a-time scan exactly. The
    // few over-scanned scores at the tail just warm the cache.
    std::vector<size_t> screen;
    screen.reserve(order.size());
    for (size_t index : order) {
      const data::Record& candidate = pool.record(static_cast<int>(index));
      if (candidate.values == self.values) continue;  // w ∈ U \ {u}
      screen.push_back(index);
    }
    if (screen.size() >= options.support_partition_min_pool) {
      // Screen the likely-flipping records first: sharers of a pivot
      // token when a Match flip is needed, non-sharers for a Non-Match
      // flip. The partition is stable over the shuffled order and the
      // sharer set is mechanism-independent (index == linear scan), so
      // the rng stream and the collected triangles are unchanged by
      // which mechanism answered — and on large pools the quota fills
      // before the unlikely tail is ever probed.
      const data::Record& pivot = side == data::Side::kLeft ? v : u;
      const data::CandidateIndex* index = side == data::Side::kLeft
                                              ? options.left_index
                                              : options.right_index;
      std::vector<uint8_t> shares(static_cast<size_t>(pool.size()), 0);
      for (int r : index != nullptr
                       ? index->Candidates(pivot)
                       : data::LinearScanCandidates(pool, pivot)) {
        shares[static_cast<size_t>(r)] = 1;
      }
      const uint8_t first = original_prediction ? 0 : 1;
      std::stable_partition(screen.begin(), screen.end(),
                            [&](size_t s) { return shares[s] == first; });
    }
    size_t next = 0;
    std::vector<models::RecordPair> pairs;
    while (found < wanted && next < screen.size()) {
      size_t chunk = std::clamp(static_cast<size_t>(wanted - found) * 2,
                                static_cast<size_t>(8),
                                static_cast<size_t>(64));
      chunk = std::min(chunk, screen.size() - next);
      pairs.clear();
      for (size_t k = 0; k < chunk; ++k) {
        const data::Record& candidate =
            pool.record(static_cast<int>(screen[next + k]));
        pairs.push_back(side == data::Side::kLeft
                            ? models::RecordPair{&candidate, &v}
                            : models::RecordPair{&u, &candidate});
      }
      models::ScoringEngine::BatchOutcome outcome =
          models::TryScoreBatch(*context.model, pairs);
      size_t consumed = 0;
      for (; consumed < chunk && found < wanted; ++consumed) {
        if (!outcome.ok[consumed]) {
          // Candidate lost to a model failure; keep scanning, the pool
          // usually has plenty more.
          ++stats->failed_probes;
          continue;
        }
        ++stats->probes;
        bool prediction = outcome.scores[consumed] >= 0.5;
        if (prediction == original_prediction) continue;
        triangles->push_back(
            {side, pool.record(static_cast<int>(screen[next + consumed])),
             /*augmented=*/false});
        ++stats->natural;
        ++found;
      }
      next += consumed;
      if (outcome.budget_exhausted) {
        stats->aborted = true;
        return;
      }
    }
  }

  if (!options.allow_augmentation && !options.only_augmentation) return;
  if (pool.size() == 0) return;
  // Screening already filled the quota: the sampling weights below are
  // O(pool * attributes) of similarity work that would feed zero draws.
  if (found >= wanted) return;

  // Data augmentation (Sect. 3.3): token-drop variants of pool records.
  // Base records are sampled with weights sharpened toward similarity
  // with the pivot record: when the scarce direction is "flip to
  // Match", only near-pivot variants have a chance of succeeding, so
  // uniform sampling would waste most of the attempt budget.
  const data::Record& pivot = side == data::Side::kLeft ? v : u;
  std::vector<double> weights(static_cast<size_t>(pool.size()), 1.0);
  if (pivot.values.size() == pool.record(0).values.size()) {
    // Pool columns repeat heavily (cities, categories, missing values),
    // and the pivot value is fixed per column, so memoizing
    // AttributeSimilarity per distinct column value turns the
    // O(pool × attributes) similarity scan into one evaluation per
    // distinct value. Same doubles, same summation order.
    std::vector<std::unordered_map<std::string_view, double>> value_memo(
        pivot.values.size());
    for (int r = 0; r < pool.size(); ++r) {
      double similarity = 0.0;
      const data::Record& candidate = pool.record(r);
      for (size_t a = 0; a < pivot.values.size(); ++a) {
        auto [it, inserted] =
            value_memo[a].try_emplace(candidate.values[a], 0.0);
        if (inserted) {
          it->second = text::AttributeSimilarity(candidate.values[a],
                                                 pivot.values[a]);
        }
        similarity += it->second;
      }
      similarity /= static_cast<double>(pivot.values.size());
      weights[static_cast<size_t>(r)] =
          1e-3 + similarity * similarity * similarity * similarity;
    }
  }

  const int num_attributes = pool.schema().size();
  long long budget =
      static_cast<long long>(wanted - found) *
      options.max_augmentation_attempts_per_triangle;
  // Probes run a chunk at a time through TryScoreBatch (amortized
  // featurization against the shared pivot side) but are consumed
  // strictly in generation order. Variant generation is a pure function
  // of the rng stream, so speculatively generating a chunk and — when
  // the quota fills mid-chunk — restoring the (rng, budget) snapshot
  // taken after the last consumed variant reproduces the one-at-a-time
  // loop's stream position exactly: triangles, stats and every
  // downstream random draw are bit-identical to serial probing.
  constexpr size_t kProbeChunk = 64;
  std::vector<data::Record> variants;
  std::vector<Rng> rng_after;
  std::vector<long long> budget_after;
  std::vector<models::RecordPair> probe_pairs;
  while (found < wanted && budget > 0) {
    variants.clear();
    rng_after.clear();
    budget_after.clear();
    while (variants.size() < kProbeChunk && budget > 0) {
      --budget;
      const data::Record& base =
          pool.record(static_cast<int>(rng->WeightedIndex(weights)));
      explain::AttrMask mask =
          num_attributes >= 2
              ? explain::RandomProperSubset(num_attributes, rng)
              : 1u;
      data::Record variant = explain::DropTokenRuns(base, mask, rng);
      if (variant.values == base.values) continue;  // nothing droppable
      if (variant.values == self.values) continue;
      variants.push_back(std::move(variant));
      rng_after.push_back(*rng);
      budget_after.push_back(budget);
    }
    if (variants.empty()) break;  // attempt budget spent on duds
    probe_pairs.clear();
    for (const data::Record& variant : variants) {
      probe_pairs.push_back(side == data::Side::kLeft
                                ? models::RecordPair{&variant, &v}
                                : models::RecordPair{&u, &variant});
    }
    models::ScoringEngine::BatchOutcome outcome =
        models::TryScoreBatch(*context.model, probe_pairs);
    size_t consumed = 0;
    for (; consumed < variants.size() && found < wanted; ++consumed) {
      if (!outcome.ok[consumed]) {
        ++stats->failed_probes;
        continue;
      }
      ++stats->probes;
      bool prediction = outcome.scores[consumed] >= 0.5;
      if (prediction == original_prediction) continue;
      triangles->push_back(
          {side, std::move(variants[consumed]), /*augmented=*/true});
      ++stats->augmented;
      ++found;
    }
    if (found >= wanted && consumed < variants.size()) {
      // Quota filled mid-chunk: unconsume the speculative tail.
      *rng = rng_after[consumed - 1];
      budget = budget_after[consumed - 1];
    }
    if (outcome.budget_exhausted) {
      stats->aborted = true;
      return;
    }
  }
}

}  // namespace

std::vector<OpenTriangle> CollectTriangles(
    const explain::ExplainContext& context, const data::Record& u,
    const data::Record& v, bool original_prediction,
    const TriangleOptions& options, Rng* rng, TriangleStats* stats) {
  CERTA_CHECK(context.valid());
  CERTA_CHECK(stats != nullptr);
  std::vector<OpenTriangle> triangles;
  int per_side = options.count / 2;
  CollectSide(context, u, v, original_prediction, data::Side::kLeft,
              per_side, options, rng, &triangles, stats);
  CollectSide(context, u, v, original_prediction, data::Side::kRight,
              options.count - per_side, options, rng, &triangles, stats);
  return triangles;
}

}  // namespace certa::core
