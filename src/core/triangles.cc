#include "core/triangles.h"

#include <algorithm>

#include "explain/perturbation.h"
#include "models/matcher.h"
#include "models/resilience.h"
#include "text/similarity.h"
#include "util/logging.h"

namespace certa::core {
namespace {

/// Collects triangles for one side. The free/pivot roles swap with the
/// side: for left triangles the support pairs against the pivot v; for
/// right triangles against the pivot u.
void CollectSide(const explain::ExplainContext& context,
                 const data::Record& u, const data::Record& v,
                 bool original_prediction, data::Side side, int wanted,
                 const TriangleOptions& options, Rng* rng,
                 std::vector<OpenTriangle>* triangles,
                 TriangleStats* stats) {
  if (wanted <= 0 || stats->aborted) return;
  const data::Table& pool =
      side == data::Side::kLeft ? *context.left : *context.right;
  const data::Record& self = side == data::Side::kLeft ? u : v;

  auto opposite_prediction = [&](const data::Record& candidate) {
    bool prediction = side == data::Side::kLeft
                          ? context.model->Predict(candidate, v)
                          : context.model->Predict(u, candidate);
    ++stats->probes;
    return prediction != original_prediction;
  };

  int found = 0;
  std::vector<size_t> order;
  if (pool.size() > 0) {
    order = rng->SampleIndices(static_cast<size_t>(pool.size()),
                               static_cast<size_t>(pool.size()));
  }

  if (!options.only_augmentation) {
    // Chunked speculative screening: candidates are scored a batch at a
    // time through ScoreBatch (amortized featurization, shared cache),
    // but consumed strictly in the serial scan order, and `probes` is
    // counted only for candidates consumed before the quota fills — so
    // Table 8 probe counts match the one-at-a-time scan exactly. The
    // few over-scanned scores at the tail just warm the cache.
    std::vector<size_t> screen;
    screen.reserve(order.size());
    for (size_t index : order) {
      const data::Record& candidate = pool.record(static_cast<int>(index));
      if (candidate.values == self.values) continue;  // w ∈ U \ {u}
      screen.push_back(index);
    }
    size_t next = 0;
    std::vector<models::RecordPair> pairs;
    while (found < wanted && next < screen.size()) {
      size_t chunk = std::clamp(static_cast<size_t>(wanted - found) * 2,
                                static_cast<size_t>(8),
                                static_cast<size_t>(64));
      chunk = std::min(chunk, screen.size() - next);
      pairs.clear();
      for (size_t k = 0; k < chunk; ++k) {
        const data::Record& candidate =
            pool.record(static_cast<int>(screen[next + k]));
        pairs.push_back(side == data::Side::kLeft
                            ? models::RecordPair{&candidate, &v}
                            : models::RecordPair{&u, &candidate});
      }
      models::ScoringEngine::BatchOutcome outcome =
          models::TryScoreBatch(*context.model, pairs);
      size_t consumed = 0;
      for (; consumed < chunk && found < wanted; ++consumed) {
        if (!outcome.ok[consumed]) {
          // Candidate lost to a model failure; keep scanning, the pool
          // usually has plenty more.
          ++stats->failed_probes;
          continue;
        }
        ++stats->probes;
        bool prediction = outcome.scores[consumed] >= 0.5;
        if (prediction == original_prediction) continue;
        triangles->push_back(
            {side, pool.record(static_cast<int>(screen[next + consumed])),
             /*augmented=*/false});
        ++stats->natural;
        ++found;
      }
      next += consumed;
      if (outcome.budget_exhausted) {
        stats->aborted = true;
        return;
      }
    }
  }

  if (!options.allow_augmentation && !options.only_augmentation) return;
  if (pool.size() == 0) return;

  // Data augmentation (Sect. 3.3): token-drop variants of pool records.
  // Base records are sampled with weights sharpened toward similarity
  // with the pivot record: when the scarce direction is "flip to
  // Match", only near-pivot variants have a chance of succeeding, so
  // uniform sampling would waste most of the attempt budget.
  const data::Record& pivot = side == data::Side::kLeft ? v : u;
  std::vector<double> weights(static_cast<size_t>(pool.size()), 1.0);
  if (pivot.values.size() == pool.record(0).values.size()) {
    for (int r = 0; r < pool.size(); ++r) {
      double similarity = 0.0;
      const data::Record& candidate = pool.record(r);
      for (size_t a = 0; a < pivot.values.size(); ++a) {
        similarity += text::AttributeSimilarity(candidate.values[a],
                                                pivot.values[a]);
      }
      similarity /= static_cast<double>(pivot.values.size());
      weights[static_cast<size_t>(r)] =
          1e-3 + similarity * similarity * similarity * similarity;
    }
  }

  const int num_attributes = pool.schema().size();
  long long budget =
      static_cast<long long>(wanted - found) *
      options.max_augmentation_attempts_per_triangle;
  while (found < wanted && budget > 0) {
    --budget;
    const data::Record& base =
        pool.record(static_cast<int>(rng->WeightedIndex(weights)));
    explain::AttrMask mask =
        num_attributes >= 2
            ? explain::RandomProperSubset(num_attributes, rng)
            : 1u;
    data::Record variant = explain::DropTokenRuns(base, mask, rng);
    if (variant.values == base.values) continue;  // nothing droppable
    if (variant.values == self.values) continue;
    bool opposite = false;
    try {
      opposite = opposite_prediction(variant);
    } catch (const models::BudgetExhausted&) {
      ++stats->failed_probes;
      stats->aborted = true;
      return;
    } catch (const models::ScoringError&) {
      ++stats->failed_probes;
      continue;
    }
    if (!opposite) continue;
    triangles->push_back({side, std::move(variant), /*augmented=*/true});
    ++stats->augmented;
    ++found;
  }
}

}  // namespace

std::vector<OpenTriangle> CollectTriangles(
    const explain::ExplainContext& context, const data::Record& u,
    const data::Record& v, bool original_prediction,
    const TriangleOptions& options, Rng* rng, TriangleStats* stats) {
  CERTA_CHECK(context.valid());
  CERTA_CHECK(stats != nullptr);
  std::vector<OpenTriangle> triangles;
  int per_side = options.count / 2;
  CollectSide(context, u, v, original_prediction, data::Side::kLeft,
              per_side, options, rng, &triangles, stats);
  CollectSide(context, u, v, original_prediction, data::Side::kRight,
              options.count - per_side, options, rng, &triangles, stats);
  return triangles;
}

}  // namespace certa::core
