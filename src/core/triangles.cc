#include "core/triangles.h"

#include "explain/perturbation.h"
#include "text/similarity.h"
#include "util/logging.h"

namespace certa::core {
namespace {

/// Collects triangles for one side. The free/pivot roles swap with the
/// side: for left triangles the support pairs against the pivot v; for
/// right triangles against the pivot u.
void CollectSide(const explain::ExplainContext& context,
                 const data::Record& u, const data::Record& v,
                 bool original_prediction, data::Side side, int wanted,
                 const TriangleOptions& options, Rng* rng,
                 std::vector<OpenTriangle>* triangles,
                 TriangleStats* stats) {
  if (wanted <= 0) return;
  const data::Table& pool =
      side == data::Side::kLeft ? *context.left : *context.right;
  const data::Record& self = side == data::Side::kLeft ? u : v;

  auto opposite_prediction = [&](const data::Record& candidate) {
    ++stats->probes;
    bool prediction = side == data::Side::kLeft
                          ? context.model->Predict(candidate, v)
                          : context.model->Predict(u, candidate);
    return prediction != original_prediction;
  };

  int found = 0;
  std::vector<size_t> order;
  if (pool.size() > 0) {
    order = rng->SampleIndices(static_cast<size_t>(pool.size()),
                               static_cast<size_t>(pool.size()));
  }

  if (!options.only_augmentation) {
    for (size_t index : order) {
      if (found >= wanted) break;
      const data::Record& candidate = pool.record(static_cast<int>(index));
      if (candidate.values == self.values) continue;  // w ∈ U \ {u}
      if (!opposite_prediction(candidate)) continue;
      triangles->push_back({side, candidate, /*augmented=*/false});
      ++stats->natural;
      ++found;
    }
  }

  if (!options.allow_augmentation && !options.only_augmentation) return;
  if (pool.size() == 0) return;

  // Data augmentation (Sect. 3.3): token-drop variants of pool records.
  // Base records are sampled with weights sharpened toward similarity
  // with the pivot record: when the scarce direction is "flip to
  // Match", only near-pivot variants have a chance of succeeding, so
  // uniform sampling would waste most of the attempt budget.
  const data::Record& pivot = side == data::Side::kLeft ? v : u;
  std::vector<double> weights(static_cast<size_t>(pool.size()), 1.0);
  if (pivot.values.size() == pool.record(0).values.size()) {
    for (int r = 0; r < pool.size(); ++r) {
      double similarity = 0.0;
      const data::Record& candidate = pool.record(r);
      for (size_t a = 0; a < pivot.values.size(); ++a) {
        similarity += text::AttributeSimilarity(candidate.values[a],
                                                pivot.values[a]);
      }
      similarity /= static_cast<double>(pivot.values.size());
      weights[static_cast<size_t>(r)] =
          1e-3 + similarity * similarity * similarity * similarity;
    }
  }

  const int num_attributes = pool.schema().size();
  long long budget =
      static_cast<long long>(wanted - found) *
      options.max_augmentation_attempts_per_triangle;
  while (found < wanted && budget > 0) {
    --budget;
    const data::Record& base =
        pool.record(static_cast<int>(rng->WeightedIndex(weights)));
    explain::AttrMask mask =
        num_attributes >= 2
            ? explain::RandomProperSubset(num_attributes, rng)
            : 1u;
    data::Record variant = explain::DropTokenRuns(base, mask, rng);
    if (variant.values == base.values) continue;  // nothing droppable
    if (variant.values == self.values) continue;
    if (!opposite_prediction(variant)) continue;
    triangles->push_back({side, std::move(variant), /*augmented=*/true});
    ++stats->augmented;
    ++found;
  }
}

}  // namespace

std::vector<OpenTriangle> CollectTriangles(
    const explain::ExplainContext& context, const data::Record& u,
    const data::Record& v, bool original_prediction,
    const TriangleOptions& options, Rng* rng, TriangleStats* stats) {
  CERTA_CHECK(context.valid());
  CERTA_CHECK(stats != nullptr);
  std::vector<OpenTriangle> triangles;
  int per_side = options.count / 2;
  CollectSide(context, u, v, original_prediction, data::Side::kLeft,
              per_side, options, rng, &triangles, stats);
  CollectSide(context, u, v, original_prediction, data::Side::kRight,
              options.count - per_side, options, rng, &triangles, stats);
  return triangles;
}

}  // namespace certa::core
