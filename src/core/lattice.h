#ifndef CERTA_CORE_LATTICE_H_
#define CERTA_CORE_LATTICE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "explain/perturbation.h"

namespace certa::core {

/// The lattice of attribute subsets used to tag one open triangle
/// (Sect. 4). Nodes are the non-empty proper subsets of the free
/// record's attribute set, ordered by inclusion; the paper's footnote 2
/// excludes the empty set and the full set, so a lattice over l
/// attributes has 2^l - 2 nodes.
class Lattice {
 public:
  /// Result of tagging every node with the flip operator γ.
  struct TagResult {
    /// flip[mask] == 1 iff perturbing exactly the attributes in `mask`
    /// flips the prediction (tested or inferred). Indexed by mask;
    /// entries at mask 0 and the full mask are unused.
    std::vector<uint8_t> flip;
    /// tested[mask] == 1 iff the model was actually invoked for `mask`
    /// (0 for nodes whose tag was inferred through monotonicity).
    std::vector<uint8_t> tested;
    /// Number of model invocations performed.
    int performed = 0;
    /// Total number of flipped nodes (tested + inferred).
    int total_flips = 0;
  };

  /// `num_attributes` in [1, 20]; 2^l lattice sizes beyond that are a
  /// usage error for attribute-level explanations.
  explicit Lattice(int num_attributes);

  int num_attributes() const { return num_attributes_; }

  /// Number of proper non-empty subsets: 2^l - 2 (0 when l == 1).
  int node_count() const;

  /// Tags every node bottom-up (breadth-first by subset size) with
  /// `flips(mask)`, which must invoke the model on the perturbation for
  /// `mask` and report whether the prediction flipped.
  ///
  /// With `assume_monotone` (the paper's optimization), any node with a
  /// flipped subset is inferred to flip without invoking the model —
  /// the flip is propagated along all upward chains. Without it, every
  /// node is tested (the exhaustive baseline of Sect. 5.6).
  TagResult Tag(const std::function<bool(explain::AttrMask)>& flips,
                bool assume_monotone) const;

  /// Batched variant of Tag for batched scoring backends: each BFS
  /// level's untested nodes are handed to `flips_batch` as one batch of
  /// ascending masks. Monotone inference only consults strictly lower
  /// levels (direct children have one fewer attribute), so per-level
  /// batching tests exactly the nodes the serial walk tests, in the
  /// same order — flip/tested/performed are identical. result[i] must
  /// be nonzero iff the perturbation for batch[i] flips the prediction.
  TagResult Tag(const std::function<std::vector<uint8_t>(
                    const std::vector<explain::AttrMask>&)>& flips_batch,
                bool assume_monotone) const;

  /// Incremental tagging: the control-flow of the batched Tag turned
  /// inside out, so a caller can interleave MANY lattices' levels into
  /// one shared model batch (the explainer's group-lockstep loop).
  ///
  ///   Tagger tagger(lattice, /*assume_monotone=*/true);
  ///   while (!tagger.done()) {
  ///     flips = score(tagger.pending());   // merge across taggers here
  ///     tagger.Supply(flips);
  ///   }
  ///   TagResult tags = tagger.TakeTags();
  ///
  /// The pending/Supply rounds visit exactly the nodes (in exactly the
  /// order) that the batched Tag hands to flips_batch, so the resulting
  /// flip/tested/performed are identical to Tag's.
  class Tagger {
   public:
    Tagger(const Lattice& lattice, bool assume_monotone);

    /// True once every node has been tagged (tested or inferred).
    bool done() const { return done_; }

    /// The untested nodes of the current level, ascending. Non-empty
    /// unless done(). Invalidated by Supply.
    const std::vector<explain::AttrMask>& pending() const { return pending_; }

    /// Supplies flip verdicts for pending() (same size, same order) and
    /// advances to the next level with untested nodes.
    void Supply(const std::vector<uint8_t>& flipped);

    /// Tags accumulated so far; complete once done().
    const TagResult& tags() const { return result_; }
    TagResult TakeTags() { return std::move(result_); }

   private:
    /// Applies monotone inference level by level and refills pending_
    /// with the next nodes that need the model; sets done_ when no
    /// level has any left.
    void Advance();

    int num_attributes_;
    bool assume_monotone_;
    bool done_ = false;
    size_t next_level_ = 0;
    std::vector<std::vector<explain::AttrMask>> levels_;
    std::vector<explain::AttrMask> pending_;
    TagResult result_;
  };

  /// The largest Minimal Flipping Antichain of a tagged lattice: all
  /// flipped nodes none of whose proper subsets flipped. Masks are
  /// returned ascending.
  std::vector<explain::AttrMask> MinimalFlippingAntichain(
      const TagResult& tags) const;

  /// All flipped nodes (tested or inferred), ascending by mask — the
  /// inputs get_flipped() derives from the antichain in Algorithm 1.
  std::vector<explain::AttrMask> FlippedNodes(const TagResult& tags) const;

  /// Compact single-token snapshot of a tagged lattice, for the
  /// durability checkpoints (src/persist): the flipped and tested mask
  /// sets plus the performed count, e.g. "v1;l=3;p=4;f=1,3,7;t=1,2,4"
  /// (masks in hex, no whitespace). total_flips is derivable and not
  /// stored.
  std::string SerializeTags(const TagResult& tags) const;

  /// Inverse of SerializeTags; false (and *tags untouched) on any
  /// malformation, mask out of range, or lattice-size mismatch.
  bool ParseTags(const std::string& text, TagResult* tags) const;

 private:
  int num_attributes_;
};

}  // namespace certa::core

#endif  // CERTA_CORE_LATTICE_H_
