#include "core/lattice.h"

#include <algorithm>

#include "util/logging.h"

namespace certa::core {

using explain::AttrMask;

Lattice::Lattice(int num_attributes) : num_attributes_(num_attributes) {
  CERTA_CHECK_GE(num_attributes, 1);
  CERTA_CHECK_LE(num_attributes, 20);
}

int Lattice::node_count() const {
  return num_attributes_ <= 1 ? 0 : (1 << num_attributes_) - 2;
}

Lattice::TagResult Lattice::Tag(
    const std::function<bool(AttrMask)>& flips, bool assume_monotone) const {
  const AttrMask full = (1u << num_attributes_) - 1u;
  TagResult result;
  result.flip.assign(full + 1u, 0);
  result.tested.assign(full + 1u, 0);

  // Visit levels bottom-up: all masks of size 1, then 2, ... l-1.
  std::vector<AttrMask> masks;
  masks.reserve(full > 0 ? full - 1 : 0);
  for (AttrMask mask = 1; mask < full; ++mask) masks.push_back(mask);
  std::stable_sort(masks.begin(), masks.end(), [](AttrMask a, AttrMask b) {
    int pa = __builtin_popcount(a);
    int pb = __builtin_popcount(b);
    if (pa != pb) return pa < pb;
    return a < b;
  });

  for (AttrMask mask : masks) {
    if (assume_monotone) {
      // If any direct subset (one attribute removed) flipped, the flip
      // propagates upward without testing; subset flips at lower levels
      // already propagated transitively.
      bool inferred = false;
      for (int bit = 0; bit < num_attributes_; ++bit) {
        AttrMask child = mask & ~(1u << bit);
        if (child == mask || child == 0u) continue;
        if (result.flip[child]) {
          inferred = true;
          break;
        }
      }
      if (inferred) {
        result.flip[mask] = 1;
        ++result.total_flips;
        continue;
      }
    }
    result.tested[mask] = 1;
    ++result.performed;
    if (flips(mask)) {
      result.flip[mask] = 1;
      ++result.total_flips;
    }
  }
  return result;
}

Lattice::TagResult Lattice::Tag(
    const std::function<std::vector<uint8_t>(const std::vector<AttrMask>&)>&
        flips_batch,
    bool assume_monotone) const {
  // The batched walk is the incremental walk driven to completion with
  // one flips_batch call per round, so both visit identical nodes.
  Tagger tagger(*this, assume_monotone);
  while (!tagger.done()) {
    tagger.Supply(flips_batch(tagger.pending()));
  }
  return tagger.TakeTags();
}

Lattice::Tagger::Tagger(const Lattice& lattice, bool assume_monotone)
    : num_attributes_(lattice.num_attributes()),
      assume_monotone_(assume_monotone) {
  const AttrMask full = (1u << num_attributes_) - 1u;
  result_.flip.assign(full + 1u, 0);
  result_.tested.assign(full + 1u, 0);

  // Same bottom-up level order as the serial walk: group masks by
  // subset size, ascending within each level.
  levels_.resize(static_cast<size_t>(num_attributes_));
  for (AttrMask mask = 1; mask < full; ++mask) {
    levels_[__builtin_popcount(mask) - 1].push_back(mask);
  }
  Advance();
}

void Lattice::Tagger::Advance() {
  pending_.clear();
  while (next_level_ < levels_.size()) {
    // Inference within a level is order-independent: direct children
    // live strictly one level down, never alongside.
    for (AttrMask mask : levels_[next_level_]) {
      if (assume_monotone_) {
        bool inferred = false;
        for (int bit = 0; bit < num_attributes_; ++bit) {
          AttrMask child = mask & ~(1u << bit);
          if (child == mask || child == 0u) continue;
          if (result_.flip[child]) {
            inferred = true;
            break;
          }
        }
        if (inferred) {
          result_.flip[mask] = 1;
          ++result_.total_flips;
          continue;
        }
      }
      pending_.push_back(mask);
    }
    ++next_level_;
    if (!pending_.empty()) return;  // this level needs the model
  }
  done_ = true;
}

void Lattice::Tagger::Supply(const std::vector<uint8_t>& flipped) {
  CERTA_CHECK(!done_);
  CERTA_CHECK_EQ(flipped.size(), pending_.size());
  for (size_t i = 0; i < pending_.size(); ++i) {
    AttrMask mask = pending_[i];
    result_.tested[mask] = 1;
    ++result_.performed;
    if (flipped[i]) {
      result_.flip[mask] = 1;
      ++result_.total_flips;
    }
  }
  Advance();
}

std::vector<AttrMask> Lattice::MinimalFlippingAntichain(
    const TagResult& tags) const {
  const AttrMask full = (1u << num_attributes_) - 1u;
  std::vector<AttrMask> antichain;
  for (AttrMask mask = 1; mask < full; ++mask) {
    if (!tags.flip[mask]) continue;
    // Minimal iff no proper non-empty subset flipped. Enumerate proper
    // submasks with the standard (sub - 1) & mask walk.
    bool minimal = true;
    for (AttrMask sub = (mask - 1) & mask; sub != 0u;
         sub = (sub - 1) & mask) {
      if (tags.flip[sub]) {
        minimal = false;
        break;
      }
    }
    if (minimal) antichain.push_back(mask);
  }
  return antichain;
}

std::vector<AttrMask> Lattice::FlippedNodes(const TagResult& tags) const {
  const AttrMask full = (1u << num_attributes_) - 1u;
  std::vector<AttrMask> flipped;
  for (AttrMask mask = 1; mask < full; ++mask) {
    if (tags.flip[mask]) flipped.push_back(mask);
  }
  return flipped;
}

namespace {

void AppendMaskList(const std::vector<uint8_t>& bits, AttrMask limit,
                    std::string* out) {
  char buffer[16];
  bool first = true;
  for (AttrMask mask = 1; mask <= limit && mask < bits.size(); ++mask) {
    if (!bits[mask]) continue;
    std::snprintf(buffer, sizeof(buffer), "%s%x", first ? "" : ",", mask);
    out->append(buffer);
    first = false;
  }
}

/// Parses "a,1f,3" hex masks into bits[]; empty text = empty set.
bool ParseMaskList(const std::string& text, AttrMask limit,
                   std::vector<uint8_t>* bits) {
  size_t pos = 0;
  while (pos < text.size()) {
    size_t comma = text.find(',', pos);
    if (comma == std::string::npos) comma = text.size();
    if (comma == pos) return false;  // empty element
    unsigned long mask = 0;
    size_t used = 0;
    try {
      mask = std::stoul(text.substr(pos, comma - pos), &used, 16);
    } catch (...) {
      return false;
    }
    if (used != comma - pos || mask == 0 || mask > limit) return false;
    (*bits)[mask] = 1;
    pos = comma + (comma < text.size() ? 1 : 0);
  }
  return true;
}

}  // namespace

std::string Lattice::SerializeTags(const TagResult& tags) const {
  const AttrMask full = (1u << num_attributes_) - 1u;
  std::string out;
  char buffer[48];
  std::snprintf(buffer, sizeof(buffer), "v1;l=%d;p=%d;f=", num_attributes_,
                tags.performed);
  out.append(buffer);
  AppendMaskList(tags.flip, full, &out);
  out.append(";t=");
  AppendMaskList(tags.tested, full, &out);
  return out;
}

bool Lattice::ParseTags(const std::string& text, TagResult* tags) const {
  // Layout: v1;l=<dec>;p=<dec>;f=<hex,...>;t=<hex,...>
  int attributes = 0;
  int performed = 0;
  int consumed = 0;
  if (std::sscanf(text.c_str(), "v1;l=%d;p=%d;f=%n", &attributes,
                  &performed, &consumed) != 2 ||
      consumed <= 0 || attributes != num_attributes_ || performed < 0) {
    return false;
  }
  const std::string rest = text.substr(static_cast<size_t>(consumed));
  size_t sep = rest.find(";t=");
  if (sep == std::string::npos) return false;

  const AttrMask full = (1u << num_attributes_) - 1u;
  TagResult parsed;
  parsed.flip.assign(full + 1u, 0);
  parsed.tested.assign(full + 1u, 0);
  parsed.performed = performed;
  if (!ParseMaskList(rest.substr(0, sep), full, &parsed.flip) ||
      !ParseMaskList(rest.substr(sep + 3), full, &parsed.tested)) {
    return false;
  }
  // The full mask is never a lattice node; reject snapshots claiming it.
  if (parsed.flip[full] || parsed.tested[full]) return false;
  parsed.total_flips = 0;
  for (AttrMask mask = 1; mask < full; ++mask) {
    if (parsed.flip[mask]) ++parsed.total_flips;
  }
  *tags = std::move(parsed);
  return true;
}

}  // namespace certa::core
