#ifndef CERTA_CORE_TRIANGLES_H_
#define CERTA_CORE_TRIANGLES_H_

#include <cstddef>
#include <vector>

#include "data/candidate_index.h"
#include "data/table.h"
#include "explain/explainer.h"
#include "util/random.h"

namespace certa::core {

/// One open triangle <u, v, w> (Sect. 3): `support` is the record w
/// whose pairing with the pivot yields the opposite prediction. For a
/// left open triangle the support comes from U (and the left record u
/// is the free record); for a right open triangle it comes from V.
struct OpenTriangle {
  data::Side side = data::Side::kLeft;
  data::Record support;
  /// True when the support was synthesized by the token-drop data
  /// augmentation of Sect. 3.3 rather than found naturally.
  bool augmented = false;
};

/// Knobs for triangle collection.
struct TriangleOptions {
  /// τ — total triangles wanted; τ/2 per side (Algorithm 1 line 8).
  int count = 100;
  /// Enable the Sect. 3.3 data augmentation fallback when a side runs
  /// out of natural support records.
  bool allow_augmentation = true;
  /// Force *only* augmented triangles (the Tables 9-10 ablation).
  bool only_augmentation = false;
  /// Cap on augmentation attempts per missing triangle, to bound work
  /// on datasets where opposite predictions are genuinely rare.
  int max_augmentation_attempts_per_triangle = 12;

  /// Support-candidate discovery. On pools with at least
  /// `support_partition_min_pool` screenable records, the shuffled
  /// screen order is stably partitioned so the likely-flipping side
  /// goes first: records sharing a normalized token with the pivot
  /// when the scarce direction is "flip to Match", non-sharers when it
  /// is "flip to Non-Match". The sharer set is answered by the
  /// inverted `left_index`/`right_index` when attached (the flag path
  /// — see CertaExplainer::Options::use_candidate_index), or by the
  /// reference linear scan otherwise; both return the identical set,
  /// so triangles, stats, and every downstream byte match across
  /// mechanisms — only discovery cost differs. Small pools skip the
  /// partition entirely (a linear screen already finishes in
  /// microseconds there), keeping the historical screen order.
  const data::CandidateIndex* left_index = nullptr;
  const data::CandidateIndex* right_index = nullptr;
  size_t support_partition_min_pool = 4096;
};

/// Tally of how triangle collection went (feeds Table 8).
struct TriangleStats {
  int natural = 0;
  int augmented = 0;
  /// Model invocations spent searching (candidate screening).
  int probes = 0;
  /// Candidates lost to model failures (ScoringError while screening or
  /// probing an augmented variant); always zero on a fault-free model.
  int failed_probes = 0;
  /// Collection stopped early: the model-call budget ran out (or the
  /// breaker stayed open) before the quota was met.
  bool aborted = false;
};

/// Collects up to `options.count` open triangles for the prediction
/// M(<u, v>) = `original_prediction`, half per side. Natural triangles
/// come from screening table records w with M(<w, v>) (left) or
/// M(<u, q>) (right) in deterministic shuffled order; augmentation
/// synthesizes token-dropped variants of table records until the quota
/// or the attempt budget is exhausted.
std::vector<OpenTriangle> CollectTriangles(
    const explain::ExplainContext& context, const data::Record& u,
    const data::Record& v, bool original_prediction,
    const TriangleOptions& options, Rng* rng, TriangleStats* stats);

}  // namespace certa::core

#endif  // CERTA_CORE_TRIANGLES_H_
