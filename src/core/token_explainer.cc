#include "core/token_explainer.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "text/tokenizer.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/string_utils.h"

namespace certa::core {

std::vector<int> TokenExplanation::Ranked() const {
  std::vector<int> order(tokens.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [this](int a, int b) {
    if (scores[a] != scores[b]) return scores[a] > scores[b];
    return a < b;
  });
  return order;
}

TokenExplainer::TokenExplainer(explain::ExplainContext context,
                               Options options)
    : context_(context), options_(options) {
  CERTA_CHECK(context_.valid());
  CERTA_CHECK_GT(options_.num_samples, 0);
  CERTA_CHECK_GT(options_.drop_probability, 0.0);
  CERTA_CHECK_LT(options_.drop_probability, 1.0);
}

TokenExplanation TokenExplainer::Explain(
    const data::Record& u, const data::Record& v,
    explain::AttributeRef attribute) const {
  TokenExplanation explanation;
  explanation.attribute = attribute;
  const bool is_left = attribute.side == data::Side::kLeft;
  const data::Record& target = is_left ? u : v;
  CERTA_CHECK_GE(attribute.index, 0);
  CERTA_CHECK_LT(static_cast<size_t>(attribute.index),
                 target.values.size());
  explanation.tokens = text::RawTokens(target.value(attribute.index));
  const int n = static_cast<int>(explanation.tokens.size());
  explanation.scores.assign(explanation.tokens.size(), 0.0);
  if (n == 0) return explanation;

  const double original_score = context_.model->Score(u, v);
  const bool original_prediction = original_score >= 0.5;

  uint64_t seed = options_.seed;
  for (const std::string& token : explanation.tokens) {
    for (char c : token) {
      seed = seed * 0x100000001b3ULL + static_cast<unsigned char>(c);
    }
  }
  Rng rng(seed);

  std::vector<long long> dropped_in_flip(explanation.tokens.size(), 0);
  std::vector<double> delta_sum(explanation.tokens.size(), 0.0);
  std::vector<long long> dropped_count(explanation.tokens.size(), 0);
  int flips = 0;

  std::vector<bool> dropped(explanation.tokens.size(), false);
  for (int s = 0; s < options_.num_samples; ++s) {
    int removed = 0;
    for (int t = 0; t < n; ++t) {
      dropped[t] = rng.Bernoulli(options_.drop_probability);
      if (dropped[t]) ++removed;
    }
    if (removed == 0 || removed == n) {
      // Degenerate masks carry no signal (identity / empty value).
      continue;
    }
    std::vector<std::string> kept;
    kept.reserve(explanation.tokens.size());
    for (int t = 0; t < n; ++t) {
      if (!dropped[t]) kept.push_back(explanation.tokens[t]);
    }
    data::Record perturbed = target;
    perturbed.values[attribute.index] = Join(kept, " ");
    double score = is_left ? context_.model->Score(perturbed, v)
                           : context_.model->Score(u, perturbed);
    bool flipped = (score >= 0.5) != original_prediction;
    double delta = std::fabs(score - original_score);
    if (flipped) ++flips;
    for (int t = 0; t < n; ++t) {
      if (!dropped[t]) continue;
      ++dropped_count[t];
      delta_sum[t] += delta;
      if (flipped) ++dropped_in_flip[t];
    }
  }
  explanation.flips = flips;

  if (flips > 0) {
    // Token-granular Eq. 1: P(token dropped | flip).
    for (size_t t = 0; t < explanation.scores.size(); ++t) {
      explanation.scores[t] =
          static_cast<double>(dropped_in_flip[t]) / flips;
    }
    return explanation;
  }
  // Fallback: occlusion attribution — mean |Δscore| over the samples
  // that dropped the token, normalized to [0, 1] across tokens.
  double max_delta = 0.0;
  for (size_t t = 0; t < explanation.scores.size(); ++t) {
    if (dropped_count[t] > 0) {
      explanation.scores[t] = delta_sum[t] / dropped_count[t];
      max_delta = std::max(max_delta, explanation.scores[t]);
    }
  }
  if (max_delta > 0.0) {
    for (double& score : explanation.scores) score /= max_delta;
  }
  return explanation;
}

}  // namespace certa::core
