#ifndef CERTA_CORE_CERTA_EXPLAINER_H_
#define CERTA_CORE_CERTA_EXPLAINER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/lattice.h"
#include "core/triangles.h"
#include "explain/explainer.h"
#include "explain/explanation.h"
#include "explain/perturbation.h"
#include "models/resilience.h"
#include "models/scoring_engine.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/thread_pool.h"

namespace certa::core {

/// How completely an Explain run covered its planned model calls when
/// the matcher can fail (see docs/RESILIENCE.md).
///   kComplete  — every planned call succeeded; the result is exactly
///                the fault-free answer.
///   kDegraded  — some cells were lost to model failures but every
///                phase ran to its end; counts are computed over the
///                surviving cells.
///   kTruncated — a phase stopped early (model-call budget exhausted,
///                circuit breaker open); later phases saw a prefix of
///                their planned work.
enum class ExplainStatus { kComplete = 0, kDegraded = 1, kTruncated = 2 };

/// "complete" / "degraded" / "truncated" (JSON and report labels).
std::string ExplainStatusName(ExplainStatus status);

/// Resilience accounting for one Explain phase. `calls`/`retries`/
/// `failures` come from the ResilientMatcher decorator (all zero when
/// Options::resilience is disabled); `cells_skipped` counts scoring
/// cells the phase abandoned (a lattice node, a screened candidate, a
/// counterfactual score) and is tracked even without the decorator.
struct PhaseResilience {
  long long calls = 0;
  long long retries = 0;
  long long failures = 0;
  long long cells_skipped = 0;
};

/// Full result of one CERTA run: the saliency explanation (probability
/// of necessity per attribute, Eq. 1), the counterfactual examples for
/// the golden attribute set A* (Eq. 3), and the bookkeeping the paper's
/// ablation experiments report.
struct CertaResult {
  explain::SaliencyExplanation saliency;
  std::vector<explain::CounterfactualExample> counterfactuals;

  /// χ_{A*}: probability of sufficiency of the winning attribute set.
  double best_sufficiency = 0.0;
  /// The winning changed-attribute set (side + mask); mask 0 when no
  /// flip was ever observed.
  data::Side best_side = data::Side::kLeft;
  explain::AttrMask best_mask = 0;

  /// Sufficiency χ_A per (side, mask), for every set that flipped at
  /// least once. Parallel vectors.
  std::vector<data::Side> set_sides;
  std::vector<explain::AttrMask> set_masks;
  std::vector<double> set_sufficiencies;

  /// Triangle collection stats (Table 8).
  TriangleStats triangle_stats;
  int triangles_used = 0;

  /// Lattice-tagging stats (Table 7), summed over triangles.
  long long predictions_expected = 0;   // Σ (2^l - 2)
  long long predictions_performed = 0;  // Σ tested nodes
  long long predictions_saved = 0;      // expected - performed
  /// Among saved (inferred) tags, how many disagree with the model's
  /// actual outcome; only populated when Options::audit_inferences.
  long long inference_errors = 0;

  /// Prediction-cache accounting for this run (all zero with
  /// Options::use_cache off). Deterministic: the engine probes and
  /// inserts sequentially regardless of the thread count.
  long long cache_hits = 0;
  long long cache_misses = 0;
  long long cache_evictions = 0;

  /// kComplete unless model calls failed or a budget/breaker stopped a
  /// phase early; the per-phase breakdown is below.
  ExplainStatus status = ExplainStatus::kComplete;
  PhaseResilience triangle_phase;
  PhaseResilience lattice_phase;
  PhaseResilience cf_phase;
};

/// Progress snapshot handed to Options::progress at every phase
/// boundary and after each triangle's lattice is tagged — the
/// durability layer (src/persist, src/service) checkpoints from these
/// without the explainer knowing files exist.
struct ExplainProgress {
  /// "pivot" | "triangles" | "lattice" | "counterfactuals" | "done".
  const char* phase = "pivot";
  int triangles_total = 0;
  /// Lattice frontier: triangles fully tagged so far.
  int triangles_tagged = 0;
  long long predictions_performed = 0;
  long long total_flips = 0;
  /// Set only on per-triangle notifications: the lattice and tag result
  /// of the triangle just finished (valid for the callback's duration —
  /// serialize, don't store).
  const Lattice* last_lattice = nullptr;
  const Lattice::TagResult* last_tags = nullptr;
  data::Side last_side = data::Side::kLeft;
};

/// The CERTA algorithm (Algorithm 1). Implements both explainer
/// interfaces so it drops into the shared evaluation harness alongside
/// the baselines.
class CertaExplainer : public explain::SaliencyExplainer,
                       public explain::CounterfactualExplainer {
 public:
  struct Options {
    /// τ — number of open triangles (the paper uses 100).
    int num_triangles = 100;
    /// Assume monotone classification and propagate flips (Sect. 4).
    bool assume_monotone = true;
    /// Data-augmentation fallback for triangle shortage (Sect. 3.3).
    bool allow_augmentation = true;
    /// Force augmented triangles only (Tables 9-10 ablation).
    bool only_augmentation = false;
    /// Additionally test every inferred node against the model to
    /// measure the monotonicity error rate (Table 7). Costly; off by
    /// default.
    bool audit_inferences = false;
    /// Seed for triangle sampling and augmentation.
    uint64_t seed = 7;
    /// Worker threads for batched model scoring; 1 keeps everything on
    /// the calling thread. Results are bit-identical at any value.
    int num_threads = 1;
    /// Lattice triangles tagged in lockstep: each scoring batch merges
    /// the pending level of up to this many triangles' lattices, so
    /// the engine (and its pool) sees a few hundred pairs per call
    /// instead of a few dozen. Tags are bit-identical at any value
    /// (the per-triangle node order never changes — only the batch
    /// boundaries do). Clamped to >= 1.
    int lattice_group_size = 16;
    /// Memoize perturbed-pair scores for the duration of each Explain
    /// call. Bit-identical on or off (the model is deterministic); off
    /// only the call counts change.
    bool use_cache = true;
    /// When enabled, every model call goes through a per-Explain
    /// ResilientMatcher (retries, deadlines, breaker, call budget) and
    /// failures degrade the result instead of propagating; disabled,
    /// Explain is bit-identical to the pre-resilience code path.
    models::ResilienceOptions resilience;

    // -- durability hooks (src/persist, docs/OPERATIONS.md) --

    /// Journal replay: (pair-hash, score) entries seeded into the
    /// per-Explain cache before any model call, so a resumed job skips
    /// every already-paid call while producing a bit-identical result
    /// (prewarmed entries count their first touch as a miss). Not
    /// owned; must outlive Explain. Ignored when use_cache is false.
    const std::vector<std::pair<models::PairKey, double>>* replayed_scores =
        nullptr;
    /// Invoked once per freshly computed score, sequentially, in
    /// deterministic order — the write-ahead journal's feed.
    models::ScoringEngine::ScoreObserver score_observer;
    /// Cross-job durable score store read-through (persist::ScoreStore
    /// bound by the service/CLI layer): `store_probe` may serve a
    /// cache miss without a model call, `store_write` records every
    /// freshly computed score. Byte-identity with the hooks detached
    /// is part of the engine contract — see
    /// models::ScoringEngine::Options.
    models::ScoringEngine::Options::StoreProbe store_probe;
    models::ScoringEngine::Options::StoreWrite store_write;
    /// Answer triangle support discovery from inverted candidate
    /// indexes built once over the sources (default), instead of the
    /// reference per-probe linear scan. Results are byte-identical
    /// either way; on large sources discovery drops from O(|source| ×
    /// tokens) per probe to the matched postings only. See
    /// TriangleOptions::support_partition_min_pool — sources smaller
    /// than that threshold skip the partition and never consult either
    /// mechanism.
    bool use_candidate_index = true;
    /// Pool-size floor for the partitioned screening (forwarded to
    /// TriangleOptions::support_partition_min_pool; tests set 0 to
    /// exercise the machinery on small tables).
    size_t support_partition_min_pool = 4096;
    /// Cooperative cancellation (watchdog parking, graceful shutdown):
    /// polled at phase boundaries and between triangles; when set,
    /// Explain stops issuing work and returns a kTruncated result.
    const std::atomic<bool>* cancel = nullptr;
    /// Phase/frontier notifications; empty = zero overhead.
    std::function<void(const ExplainProgress&)> progress;

    // -- observability (src/obs, docs/OBSERVABILITY.md) --

    /// Metrics registry (not owned; nullptr = uninstrumented). Flows
    /// down to the ScoringEngine and ResilientMatcher built per
    /// Explain; the explainer itself adds explain.* phase counters.
    /// Observation-only: CertaResult is bit-identical with or without
    /// a registry attached (its counters come from the engine's own
    /// Stats, never from here).
    obs::MetricsRegistry* metrics = nullptr;
    /// Phase-span trace recorder (not owned; nullptr = no tracing).
    obs::TraceRecorder* trace = nullptr;
  };

  CertaExplainer(explain::ExplainContext context, Options options);
  CertaExplainer(explain::ExplainContext context)
      : CertaExplainer(context, Options()) {}

  std::string name() const override { return "CERTA"; }

  /// Runs Algorithm 1 end to end.
  CertaResult Explain(const data::Record& u, const data::Record& v) const;

  // SaliencyExplainer / CounterfactualExplainer adapters.
  explain::SaliencyExplanation ExplainSaliency(
      const data::Record& u, const data::Record& v) override;
  std::vector<explain::CounterfactualExample> ExplainCounterfactual(
      const data::Record& u, const data::Record& v) override;

  const Options& options() const { return options_; }

 private:
  explain::ExplainContext context_;
  Options options_;
  /// Shared across Explain calls (worker startup is not free); null when
  /// num_threads <= 1.
  std::unique_ptr<util::ThreadPool> pool_;
  /// Inverted support-candidate indexes over the sources, built once
  /// at construction when use_candidate_index is on and a source is
  /// large enough to ever consult them; null otherwise (triangle
  /// collection falls back to the linear reference scan).
  std::unique_ptr<data::CandidateIndex> left_index_;
  std::unique_ptr<data::CandidateIndex> right_index_;
};

/// JSON export of a full CERTA result (saliency, counterfactuals,
/// sufficiency table, triangle/lattice bookkeeping); see
/// explain/json_export.h for the underlying building blocks.
std::string CertaResultToJson(const CertaResult& result,
                              const data::Schema& left,
                              const data::Schema& right);

}  // namespace certa::core

#endif  // CERTA_CORE_CERTA_EXPLAINER_H_
