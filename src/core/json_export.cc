#include "core/certa_explainer.h"

#include "api/version.h"
#include "explain/json_export.h"
#include "explain/perturbation.h"
#include "util/json_writer.h"

namespace certa::core {

std::string CertaResultToJson(const CertaResult& result,
                              const data::Schema& left,
                              const data::Schema& right) {
  JsonWriter json;
  json.BeginObject();

  // Consumers can gate on the same version the wire protocol and
  // checkpoints carry (api::kSchemaVersion).
  json.Key("schema_version");
  json.Int(api::kSchemaVersion);

  json.Key("saliency");
  explain::WriteSaliency(&json, result.saliency, left, right);

  json.Key("counterfactuals");
  json.BeginArray();
  for (const explain::CounterfactualExample& example :
       result.counterfactuals) {
    explain::WriteCounterfactual(&json, example, left, right);
  }
  json.EndArray();

  json.Key("best_sufficiency");
  json.Number(result.best_sufficiency);
  json.Key("best_attribute_set");
  json.BeginArray();
  for (int index : explain::MaskToIndices(result.best_mask)) {
    json.String(explain::QualifiedAttributeName(
        left, right, {result.best_side, index}));
  }
  json.EndArray();

  json.Key("sufficiency_per_set");
  json.BeginArray();
  for (size_t s = 0; s < result.set_masks.size(); ++s) {
    json.BeginObject();
    json.Key("attributes");
    json.BeginArray();
    for (int index : explain::MaskToIndices(result.set_masks[s])) {
      json.String(explain::QualifiedAttributeName(
          left, right, {result.set_sides[s], index}));
    }
    json.EndArray();
    json.Key("sufficiency");
    json.Number(result.set_sufficiencies[s]);
    json.EndObject();
  }
  json.EndArray();

  json.Key("triangles_used");
  json.Int(result.triangles_used);
  json.Key("triangles_natural");
  json.Int(result.triangle_stats.natural);
  json.Key("triangles_augmented");
  json.Int(result.triangle_stats.augmented);
  json.Key("predictions_expected");
  json.Int(result.predictions_expected);
  json.Key("predictions_performed");
  json.Int(result.predictions_performed);
  json.Key("predictions_saved");
  json.Int(result.predictions_saved);
  json.Key("cache_hits");
  json.Int(result.cache_hits);
  json.Key("cache_misses");
  json.Int(result.cache_misses);
  json.Key("cache_evictions");
  json.Int(result.cache_evictions);

  json.Key("status");
  json.String(ExplainStatusName(result.status));
  json.Key("resilience");
  json.BeginObject();
  auto write_phase = [&json](const char* name, const PhaseResilience& phase) {
    json.Key(name);
    json.BeginObject();
    json.Key("calls");
    json.Int(phase.calls);
    json.Key("retries");
    json.Int(phase.retries);
    json.Key("failures");
    json.Int(phase.failures);
    json.Key("cells_skipped");
    json.Int(phase.cells_skipped);
    json.EndObject();
  };
  write_phase("triangles", result.triangle_phase);
  write_phase("lattice", result.lattice_phase);
  write_phase("counterfactuals", result.cf_phase);
  json.EndObject();

  json.EndObject();
  return json.str();
}

}  // namespace certa::core
