#ifndef CERTA_ML_DENSE_H_
#define CERTA_ML_DENSE_H_

#include <cstddef>
#include <vector>

namespace certa::ml {

/// Dense feature vector (row) used across the ML substrate.
using Vector = std::vector<double>;

/// Dot product; vectors must be equal length.
double Dot(const Vector& a, const Vector& b);

/// out += alpha * x.
void Axpy(double alpha, const Vector& x, Vector* out);

/// In-place scaling.
void Scale(double alpha, Vector* v);

/// Euclidean norm.
double Norm(const Vector& v);

/// Numerically-stable logistic sigmoid.
double Sigmoid(double x);

/// Row-major dense matrix with minimal operations — enough for the
/// MLP forward/backward passes and the small least-squares solves the
/// explainers need (attribute counts are <= 16, so O(n^3) solvers are
/// perfectly adequate).
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  double& at(size_t r, size_t c) { return data_[r * cols_ + c]; }
  double at(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  /// y = M x  (x has cols() entries; result has rows()).
  Vector Multiply(const Vector& x) const;

  /// y = M^T x  (x has rows() entries; result has cols()).
  Vector MultiplyTransposed(const Vector& x) const;

  std::vector<double>& data() { return data_; }
  const std::vector<double>& data() const { return data_; }

 private:
  size_t rows_;
  size_t cols_;
  std::vector<double> data_;
};

/// Solves the symmetric positive-definite system A x = b in place via
/// Cholesky with a diagonal ridge fallback. Returns false if A is not
/// SPD even after regularization. A is n x n, b has n entries.
bool SolveSpd(Matrix a, Vector b, Vector* x);

/// Weighted ridge regression: given samples (rows of X), targets y and
/// per-sample weights w, solves argmin_beta sum_i w_i (x_i . beta - y_i)^2
/// + ridge * |beta|^2. X implicitly includes NO intercept; callers append
/// a constant-1 column when they want one. Returns false on failure.
bool WeightedRidge(const Matrix& x, const Vector& y, const Vector& w,
                   double ridge, Vector* beta);

}  // namespace certa::ml

#endif  // CERTA_ML_DENSE_H_
