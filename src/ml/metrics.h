#ifndef CERTA_ML_METRICS_H_
#define CERTA_ML_METRICS_H_

#include <vector>

namespace certa::ml {

/// Confusion-matrix counts for binary classification.
struct Confusion {
  int true_positive = 0;
  int true_negative = 0;
  int false_positive = 0;
  int false_negative = 0;

  int total() const {
    return true_positive + true_negative + false_positive + false_negative;
  }
};

/// Builds the confusion matrix from parallel label/prediction vectors.
Confusion ComputeConfusion(const std::vector<int>& labels,
                           const std::vector<int>& predictions);

/// Fraction of correct predictions; 0 on empty input.
double Accuracy(const Confusion& confusion);

/// TP / (TP + FP); defined as 0 when the denominator is 0.
double Precision(const Confusion& confusion);

/// TP / (TP + FN); defined as 0 when the denominator is 0.
double Recall(const Confusion& confusion);

/// Harmonic mean of precision and recall; 0 when both are 0.
double F1(const Confusion& confusion);

/// Convenience: F1 straight from labels and hard predictions.
double F1Score(const std::vector<int>& labels,
               const std::vector<int>& predictions);

/// Mean absolute error between two parallel real-valued vectors.
double MeanAbsoluteError(const std::vector<double>& truth,
                         const std::vector<double>& predicted);

/// ROC AUC from labels and real-valued scores (rank-based, handles
/// ties); returns 0.5 when a class is absent.
double RocAuc(const std::vector<int>& labels,
              const std::vector<double>& scores);

/// Spearman rank correlation of two parallel real-valued vectors
/// (midranks for ties). Returns 0 when either vector is constant or
/// shorter than 2.
double SpearmanCorrelation(const std::vector<double>& a,
                           const std::vector<double>& b);

/// Area under a piecewise-linear curve given by parallel x/y samples
/// (trapezoid rule). Points are sorted by x internally. Used for the
/// Faithfulness threshold-performance AUC (Sect. 5.3).
double TrapezoidAuc(std::vector<double> xs, std::vector<double> ys);

}  // namespace certa::ml

#endif  // CERTA_ML_METRICS_H_
