#include "ml/mlp.h"

#include <algorithm>
#include <cmath>

#include "ml/adam.h"
#include "util/logging.h"
#include "util/random.h"

namespace certa::ml {

double Mlp::Forward(const Vector& input,
                    std::vector<Vector>* activations) const {
  activations->clear();
  activations->push_back(input);
  Vector current = input;
  for (size_t l = 0; l < layers_.size(); ++l) {
    const Layer& layer = layers_[l];
    Vector next = layer.weights.Multiply(current);
    for (size_t i = 0; i < next.size(); ++i) next[i] += layer.bias[i];
    bool is_output = (l + 1 == layers_.size());
    if (!is_output) {
      for (double& x : next) x = std::max(0.0, x);  // ReLU
    }
    activations->push_back(next);
    current = std::move(next);
  }
  return Sigmoid(current[0]);
}

void Mlp::Fit(const std::vector<Vector>& features,
              const std::vector<int>& labels, Options options) {
  CERTA_CHECK_EQ(features.size(), labels.size());
  CERTA_CHECK(!features.empty());
  const size_t input_dim = features[0].size();
  for (const auto& row : features) CERTA_CHECK_EQ(row.size(), input_dim);

  Rng rng(options.seed);

  // Build layer stack: hidden sizes then a single output unit.
  layers_.clear();
  std::vector<int> sizes;
  sizes.push_back(static_cast<int>(input_dim));
  for (int h : options.hidden_sizes) {
    CERTA_CHECK_GT(h, 0);
    sizes.push_back(h);
  }
  sizes.push_back(1);
  for (size_t l = 0; l + 1 < sizes.size(); ++l) {
    Layer layer;
    layer.weights = Matrix(sizes[l + 1], sizes[l]);
    layer.bias = Vector(sizes[l + 1], 0.0);
    // He initialization for ReLU layers.
    double scale = std::sqrt(2.0 / static_cast<double>(sizes[l]));
    for (double& w : layer.weights.data()) w = rng.Gaussian(0.0, scale);
    layers_.push_back(std::move(layer));
  }

  // Adam state per parameter block.
  std::vector<Adam> weight_opts;
  std::vector<Adam> bias_opts;
  Adam::Options adam_options;
  adam_options.learning_rate = options.learning_rate;
  for (const Layer& layer : layers_) {
    weight_opts.emplace_back(layer.weights.data().size(), adam_options);
    bias_opts.emplace_back(layer.bias.size(), adam_options);
  }

  std::vector<size_t> order(features.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;

  std::vector<Vector> activations;
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    rng.Shuffle(&order);
    for (size_t start = 0; start < order.size();
         start += static_cast<size_t>(options.batch_size)) {
      size_t end = std::min(order.size(),
                            start + static_cast<size_t>(options.batch_size));
      // Accumulate gradients over the batch.
      std::vector<std::vector<double>> grad_weights(layers_.size());
      std::vector<Vector> grad_biases(layers_.size());
      for (size_t l = 0; l < layers_.size(); ++l) {
        grad_weights[l].assign(layers_[l].weights.data().size(), 0.0);
        grad_biases[l].assign(layers_[l].bias.size(), 0.0);
      }
      for (size_t k = start; k < end; ++k) {
        size_t i = order[k];
        double p = Forward(features[i], &activations);
        // dL/dz for sigmoid + BCE collapses to (p - y).
        Vector delta{p - static_cast<double>(labels[i])};
        for (size_t l = layers_.size(); l-- > 0;) {
          const Layer& layer = layers_[l];
          const Vector& input_act = activations[l];
          // Gradient wrt weights: delta outer input_act.
          for (size_t r = 0; r < layer.weights.rows(); ++r) {
            double d = delta[r];
            grad_biases[l][r] += d;
            double* grad_row = &grad_weights[l][r * layer.weights.cols()];
            for (size_t c = 0; c < layer.weights.cols(); ++c) {
              grad_row[c] += d * input_act[c];
            }
          }
          if (l == 0) break;
          // Propagate delta through weights and the ReLU derivative of
          // the previous layer's (post-activation) output.
          Vector next_delta = layer.weights.MultiplyTransposed(delta);
          const Vector& relu_act = activations[l];
          CERTA_CHECK_EQ(next_delta.size(), relu_act.size());
          for (size_t c = 0; c < next_delta.size(); ++c) {
            if (relu_act[c] <= 0.0) next_delta[c] = 0.0;
          }
          delta = std::move(next_delta);
        }
      }
      double batch = static_cast<double>(end - start);
      for (size_t l = 0; l < layers_.size(); ++l) {
        for (double& g : grad_weights[l]) g /= batch;
        for (double& g : grad_biases[l]) g /= batch;
        // L2 on weights.
        const auto& w = layers_[l].weights.data();
        for (size_t i = 0; i < w.size(); ++i) {
          grad_weights[l][i] += options.l2 * w[i];
        }
        weight_opts[l].Step(grad_weights[l], &layers_[l].weights.data());
        bias_opts[l].Step(grad_biases[l], &layers_[l].bias);
      }
    }
  }
  fitted_ = true;
}

double Mlp::PredictProbability(const Vector& features) const {
  CERTA_CHECK(fitted_);
  std::vector<Vector> activations;
  return Forward(features, &activations);
}

std::vector<double> Mlp::PredictProbabilityBatch(
    const std::vector<Vector>& rows) const {
  CERTA_CHECK(fitted_);
  std::vector<double> out;
  out.reserve(rows.size());
  // One activations buffer shared across the batch instead of a fresh
  // one per PredictProbability call.
  std::vector<Vector> activations;
  for (const Vector& row : rows) out.push_back(Forward(row, &activations));
  return out;
}

int Mlp::Predict(const Vector& features) const {
  return PredictProbability(features) >= 0.5 ? 1 : 0;
}

void Mlp::Save(TextArchive* archive, const std::string& prefix) const {
  CERTA_CHECK(fitted_);
  archive->PutInt(prefix + ".layers", static_cast<long long>(layers_.size()));
  for (size_t l = 0; l < layers_.size(); ++l) {
    std::string layer_prefix = prefix + ".layer" + std::to_string(l);
    archive->PutInt(layer_prefix + ".rows",
                    static_cast<long long>(layers_[l].weights.rows()));
    archive->PutInt(layer_prefix + ".cols",
                    static_cast<long long>(layers_[l].weights.cols()));
    archive->PutVector(layer_prefix + ".weights",
                       layers_[l].weights.data());
    archive->PutVector(layer_prefix + ".bias", layers_[l].bias);
  }
}

bool Mlp::Load(const TextArchive& archive, const std::string& prefix) {
  long long count = 0;
  if (!archive.GetInt(prefix + ".layers", &count) || count <= 0) {
    return false;
  }
  std::vector<Layer> layers;
  for (long long l = 0; l < count; ++l) {
    std::string layer_prefix = prefix + ".layer" + std::to_string(l);
    long long rows = 0;
    long long cols = 0;
    std::vector<double> weights;
    Layer layer;
    if (!archive.GetInt(layer_prefix + ".rows", &rows) ||
        !archive.GetInt(layer_prefix + ".cols", &cols) ||
        !archive.GetVector(layer_prefix + ".weights", &weights) ||
        !archive.GetVector(layer_prefix + ".bias", &layer.bias)) {
      return false;
    }
    if (rows <= 0 || cols <= 0 ||
        weights.size() != static_cast<size_t>(rows * cols) ||
        layer.bias.size() != static_cast<size_t>(rows)) {
      return false;
    }
    layer.weights = Matrix(static_cast<size_t>(rows),
                           static_cast<size_t>(cols));
    layer.weights.data() = std::move(weights);
    layers.push_back(std::move(layer));
  }
  layers_ = std::move(layers);
  fitted_ = true;
  return true;
}

}  // namespace certa::ml
