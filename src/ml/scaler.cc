#include "ml/scaler.h"

#include <cmath>

#include "util/logging.h"

namespace certa::ml {

void StandardScaler::Fit(const std::vector<Vector>& rows) {
  CERTA_CHECK(!rows.empty());
  const size_t dim = rows[0].size();
  mean_.assign(dim, 0.0);
  stddev_.assign(dim, 0.0);
  for (const Vector& row : rows) {
    CERTA_CHECK_EQ(row.size(), dim);
    for (size_t c = 0; c < dim; ++c) mean_[c] += row[c];
  }
  double n = static_cast<double>(rows.size());
  for (size_t c = 0; c < dim; ++c) mean_[c] /= n;
  for (const Vector& row : rows) {
    for (size_t c = 0; c < dim; ++c) {
      double delta = row[c] - mean_[c];
      stddev_[c] += delta * delta;
    }
  }
  for (size_t c = 0; c < dim; ++c) {
    stddev_[c] = std::sqrt(stddev_[c] / n);
    if (stddev_[c] < 1e-12) stddev_[c] = 0.0;  // constant feature
  }
  fitted_ = true;
}

Vector StandardScaler::Transform(const Vector& row) const {
  CERTA_CHECK(fitted_);
  CERTA_CHECK_EQ(row.size(), mean_.size());
  Vector out(row.size());
  for (size_t c = 0; c < row.size(); ++c) {
    out[c] = stddev_[c] > 0.0 ? (row[c] - mean_[c]) / stddev_[c] : 0.0;
  }
  return out;
}

void StandardScaler::TransformInPlace(Vector* row) const {
  CERTA_CHECK(fitted_);
  CERTA_CHECK_EQ(row->size(), mean_.size());
  for (size_t c = 0; c < row->size(); ++c) {
    (*row)[c] = stddev_[c] > 0.0 ? ((*row)[c] - mean_[c]) / stddev_[c] : 0.0;
  }
}

std::vector<Vector> StandardScaler::FitTransform(
    const std::vector<Vector>& rows) {
  Fit(rows);
  std::vector<Vector> out;
  out.reserve(rows.size());
  for (const Vector& row : rows) out.push_back(Transform(row));
  return out;
}

void StandardScaler::Save(TextArchive* archive,
                          const std::string& prefix) const {
  CERTA_CHECK(fitted_);
  archive->PutVector(prefix + ".mean", mean_);
  archive->PutVector(prefix + ".stddev", stddev_);
}

bool StandardScaler::Load(const TextArchive& archive,
                          const std::string& prefix) {
  if (!archive.GetVector(prefix + ".mean", &mean_)) return false;
  if (!archive.GetVector(prefix + ".stddev", &stddev_)) return false;
  if (mean_.size() != stddev_.size()) return false;
  fitted_ = true;
  return true;
}

}  // namespace certa::ml
