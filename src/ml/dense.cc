#include "ml/dense.h"

#include <cmath>

#include "util/logging.h"

namespace certa::ml {

double Dot(const Vector& a, const Vector& b) {
  CERTA_CHECK_EQ(a.size(), b.size());
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) sum += a[i] * b[i];
  return sum;
}

void Axpy(double alpha, const Vector& x, Vector* out) {
  CERTA_CHECK_EQ(x.size(), out->size());
  for (size_t i = 0; i < x.size(); ++i) (*out)[i] += alpha * x[i];
}

void Scale(double alpha, Vector* v) {
  for (double& x : *v) x *= alpha;
}

double Norm(const Vector& v) { return std::sqrt(Dot(v, v)); }

double Sigmoid(double x) {
  if (x >= 0.0) {
    double z = std::exp(-x);
    return 1.0 / (1.0 + z);
  }
  double z = std::exp(x);
  return z / (1.0 + z);
}

Vector Matrix::Multiply(const Vector& x) const {
  CERTA_CHECK_EQ(x.size(), cols_);
  Vector y(rows_, 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    double sum = 0.0;
    const double* row = &data_[r * cols_];
    for (size_t c = 0; c < cols_; ++c) sum += row[c] * x[c];
    y[r] = sum;
  }
  return y;
}

Vector Matrix::MultiplyTransposed(const Vector& x) const {
  CERTA_CHECK_EQ(x.size(), rows_);
  Vector y(cols_, 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    const double* row = &data_[r * cols_];
    for (size_t c = 0; c < cols_; ++c) y[c] += row[c] * x[r];
  }
  return y;
}

bool SolveSpd(Matrix a, Vector b, Vector* x) {
  const size_t n = a.rows();
  CERTA_CHECK_EQ(a.cols(), n);
  CERTA_CHECK_EQ(b.size(), n);
  // Try Cholesky with progressively stronger diagonal regularization.
  for (double jitter : {0.0, 1e-10, 1e-8, 1e-6, 1e-4}) {
    Matrix l = a;
    for (size_t i = 0; i < n; ++i) l.at(i, i) += jitter;
    bool ok = true;
    for (size_t i = 0; i < n && ok; ++i) {
      for (size_t j = 0; j <= i; ++j) {
        double sum = l.at(i, j);
        for (size_t k = 0; k < j; ++k) sum -= l.at(i, k) * l.at(j, k);
        if (i == j) {
          if (sum <= 0.0) {
            ok = false;
            break;
          }
          l.at(i, i) = std::sqrt(sum);
        } else {
          l.at(i, j) = sum / l.at(j, j);
        }
      }
    }
    if (!ok) continue;
    // Forward substitution: L z = b.
    Vector z(n, 0.0);
    for (size_t i = 0; i < n; ++i) {
      double sum = b[i];
      for (size_t k = 0; k < i; ++k) sum -= l.at(i, k) * z[k];
      z[i] = sum / l.at(i, i);
    }
    // Back substitution: L^T x = z.
    x->assign(n, 0.0);
    for (size_t ii = n; ii-- > 0;) {
      double sum = z[ii];
      for (size_t k = ii + 1; k < n; ++k) sum -= l.at(k, ii) * (*x)[k];
      (*x)[ii] = sum / l.at(ii, ii);
    }
    return true;
  }
  return false;
}

bool WeightedRidge(const Matrix& x, const Vector& y, const Vector& w,
                   double ridge, Vector* beta) {
  const size_t n = x.rows();
  const size_t d = x.cols();
  CERTA_CHECK_EQ(y.size(), n);
  CERTA_CHECK_EQ(w.size(), n);
  // Normal equations: (X^T W X + ridge I) beta = X^T W y.
  Matrix gram(d, d, 0.0);
  Vector rhs(d, 0.0);
  for (size_t i = 0; i < n; ++i) {
    double weight = w[i];
    if (weight <= 0.0) continue;
    for (size_t a = 0; a < d; ++a) {
      double xa = x.at(i, a) * weight;
      rhs[a] += xa * y[i];
      for (size_t b = a; b < d; ++b) {
        gram.at(a, b) += xa * x.at(i, b);
      }
    }
  }
  for (size_t a = 0; a < d; ++a) {
    for (size_t b = 0; b < a; ++b) gram.at(a, b) = gram.at(b, a);
    gram.at(a, a) += ridge;
  }
  return SolveSpd(gram, rhs, beta);
}

}  // namespace certa::ml
