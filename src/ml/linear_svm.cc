#include "ml/linear_svm.h"

#include <cmath>

#include "util/logging.h"
#include "util/random.h"

namespace certa::ml {

void LinearSvm::Fit(const std::vector<Vector>& features,
                    const std::vector<int>& labels, Options options) {
  CERTA_CHECK_EQ(features.size(), labels.size());
  CERTA_CHECK(!features.empty());
  const size_t dim = features[0].size();
  for (const Vector& row : features) CERTA_CHECK_EQ(row.size(), dim);

  weights_.assign(dim, 0.0);
  bias_ = 0.0;
  Rng rng(options.seed);
  std::vector<size_t> order(features.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;

  // Pegasos: step size 1 / (lambda * t).
  long long t = 0;
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    rng.Shuffle(&order);
    for (size_t i : order) {
      ++t;
      double eta = 1.0 / (options.lambda * static_cast<double>(t));
      double y = labels[i] == 1 ? 1.0 : -1.0;
      double margin = y * (Dot(weights_, features[i]) + bias_);
      // L2 shrink.
      Scale(1.0 - eta * options.lambda, &weights_);
      if (margin < 1.0) {
        Axpy(eta * y, features[i], &weights_);
        bias_ += eta * y;
      }
    }
  }

  // Platt scaling: logistic fit of labels on the margin (1-D Newton
  // iterations are overkill; a short gradient loop converges fine).
  platt_a_ = 1.0;
  platt_b_ = 0.0;
  std::vector<double> margins(features.size());
  for (size_t i = 0; i < features.size(); ++i) {
    margins[i] = Dot(weights_, features[i]) + bias_;
  }
  const double rate = 0.1;
  for (int step = 0; step < 500; ++step) {
    double grad_a = 0.0;
    double grad_b = 0.0;
    for (size_t i = 0; i < margins.size(); ++i) {
      double p = Sigmoid(platt_a_ * margins[i] + platt_b_);
      double error = p - static_cast<double>(labels[i]);
      grad_a += error * margins[i];
      grad_b += error;
    }
    double n = static_cast<double>(margins.size());
    platt_a_ -= rate * grad_a / n;
    platt_b_ -= rate * grad_b / n;
  }
  fitted_ = true;
}

double LinearSvm::DecisionValue(const Vector& features) const {
  CERTA_CHECK(fitted_);
  return Dot(weights_, features) + bias_;
}

double LinearSvm::PredictProbability(const Vector& features) const {
  return Sigmoid(platt_a_ * DecisionValue(features) + platt_b_);
}

std::vector<double> LinearSvm::PredictProbabilityBatch(
    const std::vector<Vector>& rows) const {
  CERTA_CHECK(fitted_);
  std::vector<double> out;
  out.reserve(rows.size());
  for (const Vector& row : rows) {
    out.push_back(Sigmoid(platt_a_ * (Dot(weights_, row) + bias_) + platt_b_));
  }
  return out;
}

int LinearSvm::Predict(const Vector& features) const {
  return PredictProbability(features) >= 0.5 ? 1 : 0;
}

void LinearSvm::Save(TextArchive* archive,
                     const std::string& prefix) const {
  CERTA_CHECK(fitted_);
  archive->PutVector(prefix + ".weights", weights_);
  archive->PutDouble(prefix + ".bias", bias_);
  archive->PutDouble(prefix + ".platt_a", platt_a_);
  archive->PutDouble(prefix + ".platt_b", platt_b_);
}

bool LinearSvm::Load(const TextArchive& archive,
                     const std::string& prefix) {
  if (!archive.GetVector(prefix + ".weights", &weights_)) return false;
  if (!archive.GetDouble(prefix + ".bias", &bias_)) return false;
  if (!archive.GetDouble(prefix + ".platt_a", &platt_a_)) return false;
  if (!archive.GetDouble(prefix + ".platt_b", &platt_b_)) return false;
  fitted_ = true;
  return true;
}

}  // namespace certa::ml
