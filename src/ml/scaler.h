#ifndef CERTA_ML_SCALER_H_
#define CERTA_ML_SCALER_H_

#include <string>
#include <vector>

#include "ml/dense.h"
#include "util/archive.h"

namespace certa::ml {

/// Per-feature standardization (zero mean, unit variance). Constant
/// features map to 0. Fit on training features, then applied to every
/// scoring call, so all ER models see consistently scaled inputs.
class StandardScaler {
 public:
  StandardScaler() = default;

  /// Computes per-column mean and standard deviation.
  void Fit(const std::vector<Vector>& rows);

  /// Returns (x - mean) / std per column. Requires a prior Fit.
  Vector Transform(const Vector& row) const;

  /// In-place Transform (no allocation); same arithmetic per column.
  void TransformInPlace(Vector* row) const;

  /// Fit followed by transforming every row.
  std::vector<Vector> FitTransform(const std::vector<Vector>& rows);

  /// Persists the fitted statistics under `prefix` in the archive.
  void Save(TextArchive* archive, const std::string& prefix) const;
  /// Restores a previously saved scaler; false on missing/invalid keys.
  bool Load(const TextArchive& archive, const std::string& prefix);

  bool is_fitted() const { return fitted_; }
  const Vector& mean() const { return mean_; }
  const Vector& stddev() const { return stddev_; }

 private:
  Vector mean_;
  Vector stddev_;
  bool fitted_ = false;
};

}  // namespace certa::ml

#endif  // CERTA_ML_SCALER_H_
