#ifndef CERTA_ML_MLP_H_
#define CERTA_ML_MLP_H_

#include <cstdint>
#include <string>
#include <vector>

#include "ml/dense.h"
#include "util/archive.h"

namespace certa::ml {

/// Fully-connected feed-forward network with ReLU hidden layers and a
/// sigmoid output, trained with mini-batch Adam on binary cross-entropy.
/// This is the trainable head of the DeepMatcher stand-in: it consumes
/// the per-attribute similarity summary block and learns how attribute
/// evidence composes into a match decision (mirroring DeepMatcher's
/// "Hybrid" classifier over attribute summarizations).
class Mlp {
 public:
  struct Options {
    std::vector<int> hidden_sizes = {16};
    int epochs = 300;
    int batch_size = 32;
    double learning_rate = 5e-3;
    double l2 = 1e-5;
    uint64_t seed = 29;
  };

  Mlp() = default;

  /// Trains from scratch on rows of `features` and binary `labels`.
  void Fit(const std::vector<Vector>& features, const std::vector<int>& labels,
           Options options);
  void Fit(const std::vector<Vector>& features,
           const std::vector<int>& labels) {
    Fit(features, labels, Options());
  }

  /// P(label = 1 | x). Requires a prior Fit.
  double PredictProbability(const Vector& features) const;

  /// Batched forward pass over all rows, reusing one activation buffer
  /// so the per-call allocations of PredictProbability are paid once
  /// per batch. result[i] == PredictProbability(rows[i]) bit-for-bit
  /// (the per-row arithmetic is unchanged; only buffer reuse differs).
  std::vector<double> PredictProbabilityBatch(
      const std::vector<Vector>& rows) const;

  /// Hard prediction at the 0.5 threshold.
  int Predict(const Vector& features) const;

  /// Persists the fitted layer stack under `prefix` in the archive.
  void Save(TextArchive* archive, const std::string& prefix) const;
  /// Restores a previously saved network; false on missing/invalid keys.
  bool Load(const TextArchive& archive, const std::string& prefix);

  bool is_fitted() const { return fitted_; }

 private:
  struct Layer {
    Matrix weights;   // out x in
    Vector bias;      // out
  };

  /// Forward pass storing post-activation values per layer (the input is
  /// activations[0]); returns the output probability.
  double Forward(const Vector& input,
                 std::vector<Vector>* activations) const;

  std::vector<Layer> layers_;
  bool fitted_ = false;
};

}  // namespace certa::ml

#endif  // CERTA_ML_MLP_H_
