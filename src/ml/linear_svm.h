#ifndef CERTA_ML_LINEAR_SVM_H_
#define CERTA_ML_LINEAR_SVM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "ml/dense.h"
#include "util/archive.h"

namespace certa::ml {

/// Linear support vector machine trained by SGD on the hinge loss with
/// L2 regularization (Pegasos-style step decay), plus Platt-style
/// sigmoid calibration so DecisionValue margins convert to the [0, 1]
/// matching probabilities the ER stack expects.
class LinearSvm {
 public:
  struct Options {
    int epochs = 60;
    double lambda = 1e-3;  ///< L2 regularization strength
    uint64_t seed = 53;
  };

  LinearSvm() = default;

  /// Trains the hinge-loss separator, then fits the Platt calibration
  /// sigmoid P(y=1|x) = sigmoid(a * margin + b) on the same data.
  void Fit(const std::vector<Vector>& features,
           const std::vector<int>& labels, Options options);
  void Fit(const std::vector<Vector>& features,
           const std::vector<int>& labels) {
    Fit(features, labels, Options());
  }

  /// Raw signed margin w.x + b.
  double DecisionValue(const Vector& features) const;

  /// Calibrated P(label = 1 | x).
  double PredictProbability(const Vector& features) const;

  /// Batched scoring: result[i] == PredictProbability(rows[i])
  /// bit-for-bit.
  std::vector<double> PredictProbabilityBatch(
      const std::vector<Vector>& rows) const;

  /// Hard prediction at the calibrated 0.5 probability threshold.
  int Predict(const Vector& features) const;

  /// Persists the fitted parameters under `prefix` in the archive.
  void Save(TextArchive* archive, const std::string& prefix) const;
  /// Restores a previously saved model; false on missing/invalid keys.
  bool Load(const TextArchive& archive, const std::string& prefix);

  bool is_fitted() const { return fitted_; }
  const Vector& weights() const { return weights_; }

 private:
  Vector weights_;
  double bias_ = 0.0;
  double platt_a_ = 1.0;
  double platt_b_ = 0.0;
  bool fitted_ = false;
};

}  // namespace certa::ml

#endif  // CERTA_ML_LINEAR_SVM_H_
