#ifndef CERTA_ML_LOGISTIC_REGRESSION_H_
#define CERTA_ML_LOGISTIC_REGRESSION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "ml/dense.h"
#include "util/archive.h"

namespace certa::ml {

/// Binary logistic regression trained with mini-batch Adam. Serves both
/// as the calibrated scoring head of the ER models and as the probe
/// classifier for the Confidence Indication metric (Sect. 5.3).
class LogisticRegression {
 public:
  struct Options {
    int epochs = 200;
    int batch_size = 32;
    double learning_rate = 5e-2;
    double l2 = 1e-4;
    uint64_t seed = 17;
  };

  LogisticRegression() = default;

  /// Fits on rows of `features` with binary `labels` (0/1). Feature rows
  /// must all share one dimension. Re-fitting resets the parameters.
  void Fit(const std::vector<Vector>& features,
           const std::vector<int>& labels, Options options);
  void Fit(const std::vector<Vector>& features,
           const std::vector<int>& labels) {
    Fit(features, labels, Options());
  }

  /// Weighted variant; `weights` scales each sample's loss.
  void FitWeighted(const std::vector<Vector>& features,
                   const std::vector<int>& labels,
                   const std::vector<double>& weights, Options options);
  void FitWeighted(const std::vector<Vector>& features,
                   const std::vector<int>& labels,
                   const std::vector<double>& weights) {
    FitWeighted(features, labels, weights, Options());
  }

  /// P(label = 1 | x). Requires a prior Fit.
  double PredictProbability(const Vector& features) const;

  /// Batched scoring: result[i] == PredictProbability(rows[i])
  /// bit-for-bit, with the fitted check and dispatch amortized.
  std::vector<double> PredictProbabilityBatch(
      const std::vector<Vector>& rows) const;

  /// Hard prediction at the 0.5 threshold.
  int Predict(const Vector& features) const;

  /// Persists the fitted parameters under `prefix` in the archive.
  void Save(TextArchive* archive, const std::string& prefix) const;
  /// Restores a previously saved model; false on missing/invalid keys.
  bool Load(const TextArchive& archive, const std::string& prefix);

  const Vector& weights() const { return weights_; }
  double bias() const { return bias_; }
  bool is_fitted() const { return fitted_; }

 private:
  Vector weights_;
  double bias_ = 0.0;
  bool fitted_ = false;
};

}  // namespace certa::ml

#endif  // CERTA_ML_LOGISTIC_REGRESSION_H_
