#include "ml/logistic_regression.h"

#include "ml/adam.h"
#include "util/logging.h"
#include "util/random.h"

namespace certa::ml {

void LogisticRegression::Fit(const std::vector<Vector>& features,
                             const std::vector<int>& labels,
                             Options options) {
  std::vector<double> weights(features.size(), 1.0);
  FitWeighted(features, labels, weights, options);
}

void LogisticRegression::FitWeighted(const std::vector<Vector>& features,
                                     const std::vector<int>& labels,
                                     const std::vector<double>& weights,
                                     Options options) {
  CERTA_CHECK_EQ(features.size(), labels.size());
  CERTA_CHECK_EQ(features.size(), weights.size());
  CERTA_CHECK(!features.empty());
  const size_t dim = features[0].size();
  for (const auto& row : features) CERTA_CHECK_EQ(row.size(), dim);

  weights_.assign(dim, 0.0);
  bias_ = 0.0;

  Rng rng(options.seed);
  Adam::Options adam_options;
  adam_options.learning_rate = options.learning_rate;
  Adam weight_opt(dim, adam_options);
  Adam bias_opt(1, adam_options);

  std::vector<size_t> order(features.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;

  Vector grad_w(dim, 0.0);
  std::vector<double> grad_b(1, 0.0);
  std::vector<double> bias_vec(1, 0.0);

  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    rng.Shuffle(&order);
    for (size_t start = 0; start < order.size();
         start += static_cast<size_t>(options.batch_size)) {
      size_t end = std::min(order.size(),
                            start + static_cast<size_t>(options.batch_size));
      std::fill(grad_w.begin(), grad_w.end(), 0.0);
      grad_b[0] = 0.0;
      double batch_weight = 0.0;
      for (size_t k = start; k < end; ++k) {
        size_t i = order[k];
        double margin = Dot(weights_, features[i]) + bias_;
        double p = Sigmoid(margin);
        double error = (p - static_cast<double>(labels[i])) * weights[i];
        Axpy(error, features[i], &grad_w);
        grad_b[0] += error;
        batch_weight += weights[i];
      }
      if (batch_weight <= 0.0) continue;
      Scale(1.0 / batch_weight, &grad_w);
      grad_b[0] /= batch_weight;
      // L2 regularization (on weights only, not bias).
      Axpy(options.l2, weights_, &grad_w);
      weight_opt.Step(grad_w, &weights_);
      bias_vec[0] = bias_;
      bias_opt.Step(grad_b, &bias_vec);
      bias_ = bias_vec[0];
    }
  }
  fitted_ = true;
}

double LogisticRegression::PredictProbability(const Vector& features) const {
  CERTA_CHECK(fitted_);
  return Sigmoid(Dot(weights_, features) + bias_);
}

std::vector<double> LogisticRegression::PredictProbabilityBatch(
    const std::vector<Vector>& rows) const {
  CERTA_CHECK(fitted_);
  std::vector<double> out;
  out.reserve(rows.size());
  for (const Vector& row : rows) {
    out.push_back(Sigmoid(Dot(weights_, row) + bias_));
  }
  return out;
}

int LogisticRegression::Predict(const Vector& features) const {
  return PredictProbability(features) >= 0.5 ? 1 : 0;
}

void LogisticRegression::Save(TextArchive* archive,
                              const std::string& prefix) const {
  CERTA_CHECK(fitted_);
  archive->PutVector(prefix + ".weights", weights_);
  archive->PutDouble(prefix + ".bias", bias_);
}

bool LogisticRegression::Load(const TextArchive& archive,
                              const std::string& prefix) {
  if (!archive.GetVector(prefix + ".weights", &weights_)) return false;
  if (!archive.GetDouble(prefix + ".bias", &bias_)) return false;
  fitted_ = true;
  return true;
}

}  // namespace certa::ml
