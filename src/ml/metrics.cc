#include "ml/metrics.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/logging.h"

namespace certa::ml {

Confusion ComputeConfusion(const std::vector<int>& labels,
                           const std::vector<int>& predictions) {
  CERTA_CHECK_EQ(labels.size(), predictions.size());
  Confusion confusion;
  for (size_t i = 0; i < labels.size(); ++i) {
    if (labels[i] == 1) {
      if (predictions[i] == 1) {
        ++confusion.true_positive;
      } else {
        ++confusion.false_negative;
      }
    } else {
      if (predictions[i] == 1) {
        ++confusion.false_positive;
      } else {
        ++confusion.true_negative;
      }
    }
  }
  return confusion;
}

double Accuracy(const Confusion& confusion) {
  int total = confusion.total();
  if (total == 0) return 0.0;
  return static_cast<double>(confusion.true_positive +
                             confusion.true_negative) /
         total;
}

double Precision(const Confusion& confusion) {
  int denom = confusion.true_positive + confusion.false_positive;
  if (denom == 0) return 0.0;
  return static_cast<double>(confusion.true_positive) / denom;
}

double Recall(const Confusion& confusion) {
  int denom = confusion.true_positive + confusion.false_negative;
  if (denom == 0) return 0.0;
  return static_cast<double>(confusion.true_positive) / denom;
}

double F1(const Confusion& confusion) {
  double p = Precision(confusion);
  double r = Recall(confusion);
  if (p + r <= 0.0) return 0.0;
  return 2.0 * p * r / (p + r);
}

double F1Score(const std::vector<int>& labels,
               const std::vector<int>& predictions) {
  return F1(ComputeConfusion(labels, predictions));
}

double MeanAbsoluteError(const std::vector<double>& truth,
                         const std::vector<double>& predicted) {
  CERTA_CHECK_EQ(truth.size(), predicted.size());
  if (truth.empty()) return 0.0;
  double total = 0.0;
  for (size_t i = 0; i < truth.size(); ++i) {
    total += std::fabs(truth[i] - predicted[i]);
  }
  return total / static_cast<double>(truth.size());
}

double RocAuc(const std::vector<int>& labels,
              const std::vector<double>& scores) {
  CERTA_CHECK_EQ(labels.size(), scores.size());
  // Rank-based (Mann-Whitney U) AUC with midranks for ties.
  std::vector<size_t> order(labels.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return scores[a] < scores[b];
  });
  std::vector<double> ranks(labels.size(), 0.0);
  size_t i = 0;
  while (i < order.size()) {
    size_t j = i;
    while (j + 1 < order.size() &&
           scores[order[j + 1]] == scores[order[i]]) {
      ++j;
    }
    double midrank = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 +
                     1.0;  // 1-based
    for (size_t k = i; k <= j; ++k) ranks[order[k]] = midrank;
    i = j + 1;
  }
  double positive_rank_sum = 0.0;
  size_t positives = 0;
  for (size_t k = 0; k < labels.size(); ++k) {
    if (labels[k] == 1) {
      positive_rank_sum += ranks[k];
      ++positives;
    }
  }
  size_t negatives = labels.size() - positives;
  if (positives == 0 || negatives == 0) return 0.5;
  double u = positive_rank_sum -
             static_cast<double>(positives) * (positives + 1) / 2.0;
  return u / (static_cast<double>(positives) * static_cast<double>(negatives));
}

namespace {

std::vector<double> Midranks(const std::vector<double>& values) {
  std::vector<size_t> order(values.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return values[a] < values[b]; });
  std::vector<double> ranks(values.size(), 0.0);
  size_t i = 0;
  while (i < order.size()) {
    size_t j = i;
    while (j + 1 < order.size() &&
           values[order[j + 1]] == values[order[i]]) {
      ++j;
    }
    double midrank =
        (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (size_t k = i; k <= j; ++k) ranks[order[k]] = midrank;
    i = j + 1;
  }
  return ranks;
}

}  // namespace

double SpearmanCorrelation(const std::vector<double>& a,
                           const std::vector<double>& b) {
  CERTA_CHECK_EQ(a.size(), b.size());
  if (a.size() < 2) return 0.0;
  std::vector<double> ranks_a = Midranks(a);
  std::vector<double> ranks_b = Midranks(b);
  double mean = (static_cast<double>(a.size()) + 1.0) / 2.0;
  double covariance = 0.0;
  double variance_a = 0.0;
  double variance_b = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    double da = ranks_a[i] - mean;
    double db = ranks_b[i] - mean;
    covariance += da * db;
    variance_a += da * da;
    variance_b += db * db;
  }
  if (variance_a <= 0.0 || variance_b <= 0.0) return 0.0;
  return covariance / std::sqrt(variance_a * variance_b);
}

double TrapezoidAuc(std::vector<double> xs, std::vector<double> ys) {
  CERTA_CHECK_EQ(xs.size(), ys.size());
  if (xs.size() < 2) return 0.0;
  std::vector<size_t> order(xs.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return xs[a] < xs[b]; });
  double area = 0.0;
  for (size_t k = 1; k < order.size(); ++k) {
    double dx = xs[order[k]] - xs[order[k - 1]];
    double avg_y = 0.5 * (ys[order[k]] + ys[order[k - 1]]);
    area += dx * avg_y;
  }
  return area;
}

}  // namespace certa::ml
