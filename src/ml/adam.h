#ifndef CERTA_ML_ADAM_H_
#define CERTA_ML_ADAM_H_

#include <cmath>
#include <vector>

#include "util/logging.h"

namespace certa::ml {

/// Adam optimizer state for one parameter vector. The MLP and logistic
/// trainers hold one instance per parameter block.
class Adam {
 public:
  struct Options {
    double learning_rate = 1e-2;
    double beta1 = 0.9;
    double beta2 = 0.999;
    double epsilon = 1e-8;
  };

  explicit Adam(size_t size) : Adam(size, Options()) {}
  Adam(size_t size, Options options)
      : options_(options), m_(size, 0.0), v_(size, 0.0) {}

  /// Applies one Adam update: params -= lr * m_hat / (sqrt(v_hat) + eps).
  void Step(const std::vector<double>& gradient, std::vector<double>* params) {
    CERTA_CHECK_EQ(gradient.size(), params->size());
    CERTA_CHECK_EQ(gradient.size(), m_.size());
    ++t_;
    const double bias1 = 1.0 - std::pow(options_.beta1, t_);
    const double bias2 = 1.0 - std::pow(options_.beta2, t_);
    for (size_t i = 0; i < gradient.size(); ++i) {
      m_[i] = options_.beta1 * m_[i] + (1.0 - options_.beta1) * gradient[i];
      v_[i] = options_.beta2 * v_[i] +
              (1.0 - options_.beta2) * gradient[i] * gradient[i];
      double m_hat = m_[i] / bias1;
      double v_hat = v_[i] / bias2;
      (*params)[i] -=
          options_.learning_rate * m_hat / (std::sqrt(v_hat) + options_.epsilon);
    }
  }

 private:
  Options options_;
  std::vector<double> m_;
  std::vector<double> v_;
  int t_ = 0;
};

}  // namespace certa::ml

#endif  // CERTA_ML_ADAM_H_
