#ifndef CERTA_EVAL_VALIDITY_H_
#define CERTA_EVAL_VALIDITY_H_

#include <vector>

#include "data/table.h"
#include "explain/explanation.h"
#include "models/matcher.h"

namespace certa::eval {

/// Validity (Mothilal et al.): the fraction of returned counterfactual
/// examples that *actually* flip the model's prediction. The paper
/// excludes it from the headline comparison because CERTA's examples
/// flip by construction while DiCE's may not (footnote 6); it is
/// provided here as an extra diagnostic (bench_extra_validity).
double Validity(const models::Matcher& model,
                const std::vector<explain::CounterfactualExample>& examples,
                const data::Record& original_u,
                const data::Record& original_v);

/// Accumulates validity over many explained inputs; mean over all
/// generated examples (inputs with no examples contribute nothing).
class ValidityAggregator {
 public:
  void Add(const models::Matcher& model,
           const std::vector<explain::CounterfactualExample>& examples,
           const data::Record& original_u, const data::Record& original_v);

  /// Fraction of all examples that flipped; 1.0 when no examples.
  double Result() const;

  int example_count() const { return total_; }

 private:
  int flipped_ = 0;
  int total_ = 0;
};

}  // namespace certa::eval

#endif  // CERTA_EVAL_VALIDITY_H_
