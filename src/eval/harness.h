#ifndef CERTA_EVAL_HARNESS_H_
#define CERTA_EVAL_HARNESS_H_

#include <memory>
#include <string>
#include <vector>

#include "core/certa_explainer.h"
#include "data/dataset.h"
#include "eval/cf_metrics.h"
#include "explain/explainer.h"
#include "models/resilience.h"
#include "models/scoring_engine.h"
#include "models/trainer.h"
#include "util/thread_pool.h"

namespace certa::eval {

/// One fully prepared experiment cell: a synthesized benchmark, a
/// trained model behind a batched/cached scoring engine, and the
/// explainer context. Heap allocated (via Prepare) so internal pointers
/// stay stable.
struct Setup {
  data::Dataset dataset;
  models::ModelKind model_kind = models::ModelKind::kDeepEr;
  std::unique_ptr<models::Matcher> model;
  /// Shared worker pool for the cell; null when options.num_threads <= 1.
  std::unique_ptr<util::ThreadPool> pool;
  /// Thread-safe scoring layer every explainer call drains through
  /// (replaces the old single-threaded CachingMatcher).
  std::unique_ptr<models::ScoringEngine> engine;
  /// Deterministic fault injector installed as the explainer's model
  /// when options.fault_rate > 0; null otherwise. It wraps the raw
  /// model un-cached — like the remote service it simulates — while
  /// `engine` and test_f1 stay on the clean model.
  std::unique_ptr<models::FaultInjectingMatcher> faulty;
  explain::ExplainContext context;
  double test_f1 = 0.0;

  Setup() = default;
  Setup(const Setup&) = delete;
  Setup& operator=(const Setup&) = delete;
};

/// Experiment-wide knobs shared by all bench binaries. Environment
/// variables override the defaults so the full grids can be scaled up
/// without rebuilding:
///   CERTA_BENCH_PAIRS  — explained test pairs per cell (default 20)
///   CERTA_BENCH_SCALE  — dataset scale factor (default 1.0)
///   CERTA_BENCH_TRIANGLES — CERTA's τ (default 100)
///   CERTA_BENCH_THREADS — scoring threads per cell (default 1)
///   CERTA_BENCH_BUDGET — model calls per Explain, 0 = unlimited
///   CERTA_BENCH_DEADLINE_MS — per-call deadline, 0 = none
///   CERTA_BENCH_FAULT_RATE — injected fault probability (default 0)
struct HarnessOptions {
  int max_pairs = 20;
  double scale = 1.0;
  int num_triangles = 100;
  uint64_t seed = 42;
  /// Scoring threads (pool size) per cell; 1 disables the pool.
  int num_threads = 1;
  /// Prediction cache in the scoring engine / CERTA runs.
  bool use_cache = true;
  /// Resilience knobs (inert by default). Any non-default value turns
  /// the CertaExplainer resilience layer on via CertaOptionsFor.
  long long budget = 0;
  int64_t deadline_micros = 0;
  double fault_rate = 0.0;
  uint64_t fault_seed = 99;
};

/// Options with environment overrides applied.
HarnessOptions OptionsFromEnv();

/// Generates the benchmark and trains the model for one cell.
std::unique_ptr<Setup> Prepare(const std::string& dataset_code,
                               models::ModelKind kind,
                               const HarnessOptions& options);

/// The first `max_pairs` test pairs of the setup's dataset (the slice
/// every experiment explains). Test pairs are pre-shuffled by the
/// generator, so a prefix is an unbiased sample.
std::vector<data::LabeledPair> ExplainedPairs(const Setup& setup,
                                              const HarnessOptions& options);

/// Saliency methods of Tables 2-3, in column order.
const std::vector<std::string>& SaliencyMethodNames();

/// Counterfactual methods of Tables 4-6, in column order.
const std::vector<std::string>& CfMethodNames();

/// Factory for a saliency explainer by table-column name ("CERTA",
/// "LandMark", "Mojito", "SHAP").
std::unique_ptr<explain::SaliencyExplainer> MakeSaliencyExplainer(
    const std::string& method, const Setup& setup,
    const HarnessOptions& options);

/// Factory for a counterfactual explainer by table-column name
/// ("CERTA", "DiCE", "SHAP-C", "LIME-C").
std::unique_ptr<explain::CounterfactualExplainer> MakeCfExplainer(
    const std::string& method, const Setup& setup,
    const HarnessOptions& options);

/// CERTA options derived from the harness options (shared by the
/// factories and the ablation benches).
core::CertaExplainer::Options CertaOptionsFor(const HarnessOptions& options);

/// Runs one counterfactual method over the explained pairs and returns
/// the aggregated CF metrics (one cell of Tables 4-6 / Fig. 10).
CfAggregate RunCfCell(explain::CounterfactualExplainer* explainer,
                      const Setup& setup,
                      const std::vector<data::LabeledPair>& pairs);

/// Runs one saliency method over the explained pairs (the shared inner
/// loop of Tables 2-3 and Fig. 11).
std::vector<explain::SaliencyExplanation> RunSaliencyCell(
    explain::SaliencyExplainer* explainer, const Setup& setup,
    const std::vector<data::LabeledPair>& pairs);

/// Parallel cell runners: explain the pairs concurrently on the setup's
/// pool (falling back to the serial runner when there is none), one
/// fresh explainer per pair so no explainer state is shared across
/// threads. Inner CERTA threading is forced to 1 — the outer fan-out
/// owns the pool. Results are assembled in pair order.
CfAggregate RunCfCellParallel(const std::string& method, const Setup& setup,
                              const std::vector<data::LabeledPair>& pairs,
                              const HarnessOptions& options);

std::vector<explain::SaliencyExplanation> RunSaliencyCellParallel(
    const std::string& method, const Setup& setup,
    const std::vector<data::LabeledPair>& pairs,
    const HarnessOptions& options);

}  // namespace certa::eval

#endif  // CERTA_EVAL_HARNESS_H_
