#include "eval/cf_metrics.h"

#include "text/similarity.h"
#include "util/logging.h"

namespace certa::eval {
namespace {

double MeanAttributeSimilarity(const data::Record& a_left,
                               const data::Record& a_right,
                               const data::Record& b_left,
                               const data::Record& b_right) {
  CERTA_CHECK_EQ(a_left.values.size(), b_left.values.size());
  CERTA_CHECK_EQ(a_right.values.size(), b_right.values.size());
  double total = 0.0;
  int count = 0;
  for (size_t i = 0; i < a_left.values.size(); ++i) {
    total += text::AttributeSimilarity(a_left.values[i], b_left.values[i]);
    ++count;
  }
  for (size_t i = 0; i < a_right.values.size(); ++i) {
    total += text::AttributeSimilarity(a_right.values[i], b_right.values[i]);
    ++count;
  }
  return count > 0 ? total / count : 0.0;
}

}  // namespace

double Proximity(const explain::CounterfactualExample& example,
                 const data::Record& original_u,
                 const data::Record& original_v) {
  return MeanAttributeSimilarity(example.left, example.right, original_u,
                                 original_v);
}

double Sparsity(const explain::CounterfactualExample& example,
                const data::Record& original_u,
                const data::Record& original_v) {
  CERTA_CHECK_EQ(example.left.values.size(), original_u.values.size());
  CERTA_CHECK_EQ(example.right.values.size(), original_v.values.size());
  int total = 0;
  int unchanged = 0;
  for (size_t i = 0; i < original_u.values.size(); ++i) {
    ++total;
    if (example.left.values[i] == original_u.values[i]) ++unchanged;
  }
  for (size_t i = 0; i < original_v.values.size(); ++i) {
    ++total;
    if (example.right.values[i] == original_v.values[i]) ++unchanged;
  }
  return total > 0 ? static_cast<double>(unchanged) / total : 1.0;
}

namespace {

/// Distance between two counterfactuals over the union of attributes
/// that either of them changed relative to the original pair.
double ChangedAttributeDistance(const explain::CounterfactualExample& a,
                                const explain::CounterfactualExample& b,
                                const data::Record& original_u,
                                const data::Record& original_v) {
  double total = 0.0;
  int changed = 0;
  auto accumulate = [&](const data::Record& record_a,
                        const data::Record& record_b,
                        const data::Record& original) {
    for (size_t i = 0; i < original.values.size(); ++i) {
      bool changed_a = record_a.values[i] != original.values[i];
      bool changed_b = record_b.values[i] != original.values[i];
      if (!changed_a && !changed_b) continue;
      total +=
          1.0 - text::AttributeSimilarity(record_a.values[i],
                                          record_b.values[i]);
      ++changed;
    }
  };
  accumulate(a.left, b.left, original_u);
  accumulate(a.right, b.right, original_v);
  return changed > 0 ? total / changed : 0.0;
}

}  // namespace

double Diversity(const std::vector<explain::CounterfactualExample>& examples,
                 const data::Record& original_u,
                 const data::Record& original_v) {
  if (examples.size() < 2) return 0.0;
  double total = 0.0;
  int pairs = 0;
  for (size_t a = 0; a < examples.size(); ++a) {
    for (size_t b = a + 1; b < examples.size(); ++b) {
      total += ChangedAttributeDistance(examples[a], examples[b],
                                        original_u, original_v);
      ++pairs;
    }
  }
  return total / pairs;
}

void CfAggregator::Add(
    const std::vector<explain::CounterfactualExample>& examples,
    const data::Record& original_u, const data::Record& original_v) {
  ++input_count_;
  for (const explain::CounterfactualExample& example : examples) {
    proximity_sum_ += Proximity(example, original_u, original_v);
    sparsity_sum_ += Sparsity(example, original_u, original_v);
    ++example_count_;
  }
  if (examples.size() >= 2) {
    diversity_sum_ += Diversity(examples, original_u, original_v);
    ++diversity_inputs_;
  }
}

CfAggregate CfAggregator::Result() const {
  CfAggregate aggregate;
  aggregate.inputs = input_count_;
  aggregate.examples = example_count_;
  if (example_count_ > 0) {
    aggregate.proximity = proximity_sum_ / example_count_;
    aggregate.sparsity = sparsity_sum_ / example_count_;
  }
  if (diversity_inputs_ > 0) {
    aggregate.diversity = diversity_sum_ / diversity_inputs_;
  }
  if (input_count_ > 0) {
    aggregate.mean_count =
        static_cast<double>(example_count_) / input_count_;
  }
  return aggregate;
}

}  // namespace certa::eval
