#ifndef CERTA_EVAL_CF_METRICS_H_
#define CERTA_EVAL_CF_METRICS_H_

#include <vector>

#include "data/table.h"
#include "explain/explanation.h"

namespace certa::eval {

/// Proximity of one counterfactual to the original pair: the mean
/// attribute-wise similarity across both records (Sect. 5.3, after
/// Mothilal et al.). Higher is better — counterfactuals should stay
/// close to the input.
double Proximity(const explain::CounterfactualExample& example,
                 const data::Record& original_u,
                 const data::Record& original_v);

/// Sparsity of one counterfactual: the fraction of attributes (over
/// both records) left unchanged. Higher is better.
double Sparsity(const explain::CounterfactualExample& example,
                const data::Record& original_u,
                const data::Record& original_v);

/// Diversity of a set of counterfactuals: mean pairwise attribute-wise
/// dissimilarity across all unordered example pairs, where each pair is
/// compared over the union of attributes that either example changed
/// relative to the original input (unchanged attributes are identical
/// across examples by construction and would only dilute the measure —
/// the paper's reported magnitudes are only reachable under this
/// changed-attribute reading). 0 for fewer than two examples. Higher is
/// better.
double Diversity(const std::vector<explain::CounterfactualExample>& examples,
                 const data::Record& original_u,
                 const data::Record& original_v);

/// Aggregates of one method over a test set (a cell of Tables 4-6 and
/// Fig. 10). Proximity/sparsity average over all generated examples;
/// diversity averages the per-input set diversity; mean_count is the
/// average number of examples per explained input.
struct CfAggregate {
  double proximity = 0.0;
  double sparsity = 0.0;
  double diversity = 0.0;
  double mean_count = 0.0;
  int inputs = 0;
  int examples = 0;
};

/// Accumulator for CfAggregate across explained inputs.
class CfAggregator {
 public:
  /// Folds in the counterfactual set produced for one input pair.
  void Add(const std::vector<explain::CounterfactualExample>& examples,
           const data::Record& original_u, const data::Record& original_v);

  /// Final averages.
  CfAggregate Result() const;

 private:
  double proximity_sum_ = 0.0;
  double sparsity_sum_ = 0.0;
  double diversity_sum_ = 0.0;
  int example_count_ = 0;
  int diversity_inputs_ = 0;
  int input_count_ = 0;
};

}  // namespace certa::eval

#endif  // CERTA_EVAL_CF_METRICS_H_
