#include "eval/saliency_metrics.h"

#include <algorithm>
#include <cmath>

#include "explain/perturbation.h"
#include "ml/dense.h"
#include "ml/metrics.h"
#include "util/logging.h"

namespace certa::eval {

const std::vector<double>& FaithfulnessThresholds() {
  static const auto& thresholds =
      *new std::vector<double>{0.1, 0.2, 0.33, 0.5, 0.7, 0.9};
  return thresholds;
}

void MaskTopAttributes(const data::Record& u, const data::Record& v,
                       const explain::SaliencyExplanation& explanation,
                       double fraction, data::Record* masked_u,
                       data::Record* masked_v) {
  const int total = explanation.left_size() + explanation.right_size();
  int to_mask = static_cast<int>(
      std::ceil(fraction * static_cast<double>(total)));
  to_mask = std::clamp(to_mask, 0, total);
  explain::AttrMask left_mask = 0;
  explain::AttrMask right_mask = 0;
  std::vector<explain::AttributeRef> ranked = explanation.Ranked();
  for (int k = 0; k < to_mask; ++k) {
    const explain::AttributeRef& ref = ranked[static_cast<size_t>(k)];
    if (ref.side == data::Side::kLeft) {
      left_mask |= 1u << ref.index;
    } else {
      right_mask |= 1u << ref.index;
    }
  }
  *masked_u = explain::DropAttributes(u, left_mask);
  *masked_v = explain::DropAttributes(v, right_mask);
}

double Faithfulness(
    const explain::ExplainContext& context,
    const std::vector<data::LabeledPair>& pairs, const data::Table& left,
    const data::Table& right,
    const std::vector<explain::SaliencyExplanation>& explanations) {
  CERTA_CHECK(context.valid());
  CERTA_CHECK_EQ(pairs.size(), explanations.size());
  if (pairs.empty()) return 0.0;

  std::vector<double> thresholds = FaithfulnessThresholds();
  std::vector<double> f1s;
  f1s.reserve(thresholds.size());
  for (double threshold : thresholds) {
    std::vector<int> labels;
    std::vector<int> predictions;
    labels.reserve(pairs.size());
    predictions.reserve(pairs.size());
    for (size_t p = 0; p < pairs.size(); ++p) {
      const data::Record& u = left.record(pairs[p].left_index);
      const data::Record& v = right.record(pairs[p].right_index);
      data::Record masked_u;
      data::Record masked_v;
      MaskTopAttributes(u, v, explanations[p], threshold, &masked_u,
                        &masked_v);
      labels.push_back(pairs[p].label);
      predictions.push_back(context.model->Predict(masked_u, masked_v) ? 1
                                                                       : 0);
    }
    f1s.push_back(ml::F1Score(labels, predictions));
  }
  return ml::TrapezoidAuc(thresholds, f1s);
}

double ConfidenceIndication(
    const explain::ExplainContext& context,
    const std::vector<data::LabeledPair>& pairs, const data::Table& left,
    const data::Table& right,
    const std::vector<explain::SaliencyExplanation>& explanations) {
  CERTA_CHECK(context.valid());
  CERTA_CHECK_EQ(pairs.size(), explanations.size());
  if (pairs.empty()) return 0.0;

  // Probe features: flattened saliency scores, the predicted class bit,
  // and an intercept. Target: the model's confidence in its prediction.
  const size_t n = pairs.size();
  std::vector<double> confidences(n, 0.0);
  std::vector<std::vector<double>> rows(n);
  size_t dim = 0;
  for (size_t p = 0; p < n; ++p) {
    const data::Record& u = left.record(pairs[p].left_index);
    const data::Record& v = right.record(pairs[p].right_index);
    double score = context.model->Score(u, v);
    confidences[p] = std::max(score, 1.0 - score);
    std::vector<double> features = explanations[p].Flattened();
    features.push_back(score >= 0.5 ? 1.0 : 0.0);
    features.push_back(1.0);  // intercept
    dim = features.size();
    rows[p] = std::move(features);
  }
  ml::Matrix design(n, dim, 0.0);
  ml::Vector targets(n, 0.0);
  ml::Vector weights(n, 1.0);
  for (size_t p = 0; p < n; ++p) {
    for (size_t c = 0; c < dim; ++c) design.at(p, c) = rows[p][c];
    targets[p] = confidences[p];
  }
  ml::Vector beta;
  if (!ml::WeightedRidge(design, targets, weights, 1e-4, &beta)) {
    return 1.0;  // probe failed entirely: worst-case indication
  }
  std::vector<double> predicted(n, 0.0);
  for (size_t p = 0; p < n; ++p) {
    double value = 0.0;
    for (size_t c = 0; c < dim; ++c) value += design.at(p, c) * beta[c];
    predicted[p] = std::clamp(value, 0.0, 1.0);
  }
  return ml::MeanAbsoluteError(confidences, predicted);
}

}  // namespace certa::eval
