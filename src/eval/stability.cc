#include "eval/stability.h"

#include "ml/metrics.h"
#include "util/logging.h"

namespace certa::eval {

double SaliencyStability(
    const std::vector<explain::SaliencyExplanation>& run_a,
    const std::vector<explain::SaliencyExplanation>& run_b) {
  CERTA_CHECK_EQ(run_a.size(), run_b.size());
  if (run_a.empty()) return 1.0;
  double total = 0.0;
  for (size_t p = 0; p < run_a.size(); ++p) {
    total += ml::SpearmanCorrelation(run_a[p].Flattened(),
                                     run_b[p].Flattened());
  }
  return total / static_cast<double>(run_a.size());
}

}  // namespace certa::eval
