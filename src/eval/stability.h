#ifndef CERTA_EVAL_STABILITY_H_
#define CERTA_EVAL_STABILITY_H_

#include <vector>

#include "explain/explanation.h"

namespace certa::eval {

/// Stability of a saliency method: the mean Spearman rank correlation
/// between the per-pair explanations produced by two independent runs
/// of the method (different sampling seeds) on the same inputs. 1.0
/// means the attribute ranking is identical run-to-run; explanations
/// users cannot reproduce are hard to trust. This is the
/// consistency-style diagnostic from the same toolkit as Confidence
/// Indication (Atanasova et al., EMNLP'20), provided as an extension —
/// the CERTA paper does not report it.
double SaliencyStability(
    const std::vector<explain::SaliencyExplanation>& run_a,
    const std::vector<explain::SaliencyExplanation>& run_b);

}  // namespace certa::eval

#endif  // CERTA_EVAL_STABILITY_H_
