#ifndef CERTA_EVAL_SALIENCY_METRICS_H_
#define CERTA_EVAL_SALIENCY_METRICS_H_

#include <vector>

#include "data/dataset.h"
#include "explain/explainer.h"
#include "explain/explanation.h"

namespace certa::eval {

/// The paper's masking thresholds for Faithfulness (Sect. 5.3).
const std::vector<double>& FaithfulnessThresholds();

/// Returns the pair with the top `fraction` of attributes (per the
/// explanation's ranking) masked out. Exposed for tests and the case
/// study.
void MaskTopAttributes(const data::Record& u, const data::Record& v,
                       const explain::SaliencyExplanation& explanation,
                       double fraction, data::Record* masked_u,
                       data::Record* masked_v);

/// Faithfulness (Atanasova et al., EMNLP'20, as instantiated in Sect.
/// 5.3): AUC of the threshold → model-F1 curve, where at each threshold
/// the top fraction of attributes by saliency is masked on every test
/// pair and the model is re-evaluated against the ground truth. Lower
/// is better (faithful explanations destroy performance fastest).
///
/// `explanations` are per-pair explanations parallel to `pairs`.
double Faithfulness(const explain::ExplainContext& context,
                    const std::vector<data::LabeledPair>& pairs,
                    const data::Table& left, const data::Table& right,
                    const std::vector<explain::SaliencyExplanation>&
                        explanations);

/// Confidence Indication (Sect. 5.3): how well the saliency scores
/// predict the model's confidence. A linear probe (ridge regression
/// with intercept) maps each pair's flattened saliency scores plus the
/// predicted class to the model's confidence max(score, 1 - score);
/// the metric is the probe's mean absolute error. Lower is better.
double ConfidenceIndication(const explain::ExplainContext& context,
                            const std::vector<data::LabeledPair>& pairs,
                            const data::Table& left,
                            const data::Table& right,
                            const std::vector<explain::SaliencyExplanation>&
                                explanations);

}  // namespace certa::eval

#endif  // CERTA_EVAL_SALIENCY_METRICS_H_
