#include "eval/validity.h"

namespace certa::eval {

double Validity(const models::Matcher& model,
                const std::vector<explain::CounterfactualExample>& examples,
                const data::Record& original_u,
                const data::Record& original_v) {
  if (examples.empty()) return 1.0;
  bool original = model.Predict(original_u, original_v);
  int flipped = 0;
  for (const explain::CounterfactualExample& example : examples) {
    if (model.Predict(example.left, example.right) != original) ++flipped;
  }
  return static_cast<double>(flipped) /
         static_cast<double>(examples.size());
}

void ValidityAggregator::Add(
    const models::Matcher& model,
    const std::vector<explain::CounterfactualExample>& examples,
    const data::Record& original_u, const data::Record& original_v) {
  bool original = model.Predict(original_u, original_v);
  for (const explain::CounterfactualExample& example : examples) {
    ++total_;
    if (model.Predict(example.left, example.right) != original) ++flipped_;
  }
}

double ValidityAggregator::Result() const {
  if (total_ == 0) return 1.0;
  return static_cast<double>(flipped_) / static_cast<double>(total_);
}

}  // namespace certa::eval
