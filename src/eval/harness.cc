#include "eval/harness.h"

#include <cstdlib>

#include "data/benchmarks.h"
#include "explain/dice.h"
#include "explain/landmark.h"
#include "explain/mojito.h"
#include "explain/sedc.h"
#include "explain/shap.h"
#include "util/logging.h"
#include "util/string_utils.h"

namespace certa::eval {

HarnessOptions OptionsFromEnv() {
  HarnessOptions options;
  if (const char* pairs = std::getenv("CERTA_BENCH_PAIRS")) {
    options.max_pairs = std::max(1, std::atoi(pairs));
  }
  if (const char* scale = std::getenv("CERTA_BENCH_SCALE")) {
    double value = 0.0;
    if (ParseDouble(scale, &value) && value > 0.0) options.scale = value;
  }
  if (const char* triangles = std::getenv("CERTA_BENCH_TRIANGLES")) {
    options.num_triangles = std::max(2, std::atoi(triangles));
  }
  if (const char* threads = std::getenv("CERTA_BENCH_THREADS")) {
    options.num_threads = std::max(1, std::atoi(threads));
  }
  if (const char* budget = std::getenv("CERTA_BENCH_BUDGET")) {
    options.budget = std::max(0LL, static_cast<long long>(std::atoll(budget)));
  }
  if (const char* deadline = std::getenv("CERTA_BENCH_DEADLINE_MS")) {
    options.deadline_micros =
        std::max(0LL, static_cast<long long>(std::atoll(deadline))) * 1000;
  }
  if (const char* rate = std::getenv("CERTA_BENCH_FAULT_RATE")) {
    double value = 0.0;
    if (ParseDouble(rate, &value) && value >= 0.0 && value <= 1.0) {
      options.fault_rate = value;
    }
  }
  return options;
}

std::unique_ptr<Setup> Prepare(const std::string& dataset_code,
                               models::ModelKind kind,
                               const HarnessOptions& options) {
  auto setup = std::make_unique<Setup>();
  setup->dataset = data::MakeBenchmark(dataset_code, options.scale);
  setup->model_kind = kind;
  setup->model = models::TrainMatcher(kind, setup->dataset, options.seed);
  if (options.num_threads > 1) {
    setup->pool = std::make_unique<util::ThreadPool>(options.num_threads);
  }
  models::ScoringEngine::Options engine_options;
  engine_options.enable_cache = options.use_cache;
  engine_options.pool = setup->pool.get();
  setup->engine = std::make_unique<models::ScoringEngine>(setup->model.get(),
                                                          engine_options);
  setup->context = {setup->engine.get(), &setup->dataset.left,
                    &setup->dataset.right};
  if (options.fault_rate > 0.0) {
    models::FaultOptions fault_options;
    fault_options.fault_rate = options.fault_rate;
    fault_options.seed = options.fault_seed;
    setup->faulty = std::make_unique<models::FaultInjectingMatcher>(
        setup->model.get(), fault_options);
    setup->context.model = setup->faulty.get();
  }
  setup->test_f1 = models::EvaluateF1(*setup->engine, setup->dataset.left,
                                      setup->dataset.right,
                                      setup->dataset.test);
  return setup;
}

std::vector<data::LabeledPair> ExplainedPairs(const Setup& setup,
                                              const HarnessOptions& options) {
  std::vector<data::LabeledPair> pairs = setup.dataset.test;
  if (static_cast<int>(pairs.size()) > options.max_pairs) {
    pairs.resize(static_cast<size_t>(options.max_pairs));
  }
  return pairs;
}

const std::vector<std::string>& SaliencyMethodNames() {
  static const auto& names = *new std::vector<std::string>{
      "CERTA", "LandMark", "Mojito", "SHAP"};
  return names;
}

const std::vector<std::string>& CfMethodNames() {
  static const auto& names = *new std::vector<std::string>{
      "CERTA", "DiCE", "SHAP-C", "LIME-C"};
  return names;
}

core::CertaExplainer::Options CertaOptionsFor(const HarnessOptions& options) {
  core::CertaExplainer::Options certa_options;
  certa_options.num_triangles = options.num_triangles;
  certa_options.seed = options.seed;
  certa_options.num_threads = options.num_threads;
  certa_options.use_cache = options.use_cache;
  certa_options.resilience.enabled = options.fault_rate > 0.0 ||
                                     options.budget > 0 ||
                                     options.deadline_micros > 0;
  certa_options.resilience.max_model_calls = options.budget;
  certa_options.resilience.deadline_micros = options.deadline_micros;
  return certa_options;
}

CfAggregate RunCfCell(explain::CounterfactualExplainer* explainer,
                      const Setup& setup,
                      const std::vector<data::LabeledPair>& pairs) {
  CfAggregator aggregator;
  for (const data::LabeledPair& pair : pairs) {
    const data::Record& u = setup.dataset.left.record(pair.left_index);
    const data::Record& v = setup.dataset.right.record(pair.right_index);
    aggregator.Add(explainer->ExplainCounterfactual(u, v), u, v);
  }
  return aggregator.Result();
}

std::vector<explain::SaliencyExplanation> RunSaliencyCell(
    explain::SaliencyExplainer* explainer, const Setup& setup,
    const std::vector<data::LabeledPair>& pairs) {
  std::vector<explain::SaliencyExplanation> explanations;
  explanations.reserve(pairs.size());
  for (const data::LabeledPair& pair : pairs) {
    explanations.push_back(explainer->ExplainSaliency(
        setup.dataset.left.record(pair.left_index),
        setup.dataset.right.record(pair.right_index)));
  }
  return explanations;
}

CfAggregate RunCfCellParallel(const std::string& method, const Setup& setup,
                              const std::vector<data::LabeledPair>& pairs,
                              const HarnessOptions& options) {
  HarnessOptions cell_options = options;
  cell_options.num_threads = 1;  // the outer fan-out owns the pool
  if (setup.pool == nullptr || setup.pool->size() < 2 || pairs.size() < 2) {
    auto explainer = MakeCfExplainer(method, setup, cell_options);
    return RunCfCell(explainer.get(), setup, pairs);
  }
  std::vector<std::vector<explain::CounterfactualExample>> per_pair(
      pairs.size());
  setup.pool->ParallelFor(pairs.size(), [&](size_t i) {
    auto explainer = MakeCfExplainer(method, setup, cell_options);
    per_pair[i] = explainer->ExplainCounterfactual(
        setup.dataset.left.record(pairs[i].left_index),
        setup.dataset.right.record(pairs[i].right_index));
  });
  CfAggregator aggregator;
  for (size_t i = 0; i < pairs.size(); ++i) {
    aggregator.Add(per_pair[i],
                   setup.dataset.left.record(pairs[i].left_index),
                   setup.dataset.right.record(pairs[i].right_index));
  }
  return aggregator.Result();
}

std::vector<explain::SaliencyExplanation> RunSaliencyCellParallel(
    const std::string& method, const Setup& setup,
    const std::vector<data::LabeledPair>& pairs,
    const HarnessOptions& options) {
  HarnessOptions cell_options = options;
  cell_options.num_threads = 1;
  if (setup.pool == nullptr || setup.pool->size() < 2 || pairs.size() < 2) {
    auto explainer = MakeSaliencyExplainer(method, setup, cell_options);
    return RunSaliencyCell(explainer.get(), setup, pairs);
  }
  std::vector<explain::SaliencyExplanation> explanations(pairs.size());
  setup.pool->ParallelFor(pairs.size(), [&](size_t i) {
    auto explainer = MakeSaliencyExplainer(method, setup, cell_options);
    explanations[i] = explainer->ExplainSaliency(
        setup.dataset.left.record(pairs[i].left_index),
        setup.dataset.right.record(pairs[i].right_index));
  });
  return explanations;
}

std::unique_ptr<explain::SaliencyExplainer> MakeSaliencyExplainer(
    const std::string& method, const Setup& setup,
    const HarnessOptions& options) {
  if (method == "CERTA") {
    return std::make_unique<core::CertaExplainer>(setup.context,
                                                  CertaOptionsFor(options));
  }
  if (method == "LandMark") {
    return std::make_unique<explain::LandmarkExplainer>(setup.context);
  }
  if (method == "Mojito") {
    return std::make_unique<explain::MojitoExplainer>(setup.context);
  }
  if (method == "SHAP") {
    return std::make_unique<explain::ShapExplainer>(setup.context);
  }
  CERTA_LOG(Fatal) << "Unknown saliency method: " << method;
  return nullptr;
}

std::unique_ptr<explain::CounterfactualExplainer> MakeCfExplainer(
    const std::string& method, const Setup& setup,
    const HarnessOptions& options) {
  if (method == "CERTA") {
    return std::make_unique<core::CertaExplainer>(setup.context,
                                                  CertaOptionsFor(options));
  }
  if (method == "DiCE") {
    return std::make_unique<explain::DiceExplainer>(setup.context);
  }
  if (method == "SHAP-C") {
    return std::make_unique<explain::SedcExplainer>(
        setup.context, explain::SedcExplainer::Base::kShapC);
  }
  if (method == "LIME-C") {
    return std::make_unique<explain::SedcExplainer>(
        setup.context, explain::SedcExplainer::Base::kLimeC);
  }
  CERTA_LOG(Fatal) << "Unknown counterfactual method: " << method;
  return nullptr;
}

}  // namespace certa::eval
